GO ?= go

.PHONY: all build vet test race smoke diff lint-dispatch lint-fastpath lint-metrics check bench bench-json bench-exec bench-diff bench-append bench-trend sizeaudit bundle

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The bench package's corpus/engine tests are the concurrency-sensitive
# ones; -race over the whole module exercises them plus the simulator.
race:
	$(GO) test -race ./...

# End-to-end sanity: the parallel engine must produce a table and exit 0.
smoke:
	$(GO) run ./cmd/experiments -run fig5 -parallel 4

# Differential gate: the indexed greedy builder must be byte-identical to
# the reference implementation on all eight synth benchmarks, plus the
# collision/fuzz seed corpus.
diff:
	$(GO) test -run 'MatchesReference|StrategyParity|DegradedHash|FuzzBuildDifferential' ./internal/dictionary

# Dispatch gate: codec selection flows through the registry. A switch on a
# codeword scheme anywhere outside internal/codec and internal/codeword is
# a hard-coded dispatch site reintroducing the pre-registry pattern; add a
# Codec method or an interface facet instead (see DESIGN.md, "Codec
# registry").
lint-dispatch:
	@found=$$(grep -rn 'switch.*[Ss]cheme' --include='*.go' \
		--exclude-dir=codec --exclude-dir=codeword . || true); \
	if [ -n "$$found" ]; then \
		echo "$$found"; \
		echo 'lint-dispatch: switch-on-Scheme dispatch outside internal/codec and internal/codeword'; \
		echo 'lint-dispatch: route codec selection through the registry (DESIGN.md, "Codec registry")'; \
		exit 1; \
	fi

# Fast-path purity gate: the fused loop in predecode.go must never call a
# telemetry sink directly — no hooks, no stats recorder, no observer, no
# trace spans. All observability drains through the amortized epoch
# helpers in fastpath.go (note/drainEpoch/beginFast/endFast); a sink
# identifier appearing in predecode.go means someone put per-step work
# back on the hot path (see DESIGN.md, "Observability").
lint-fastpath:
	@found=$$(grep -nE 'Record|TraceFetch|TraceExec|TraceStep|Heat|sampleRec|sampleObs|stats\.|ObserveValue|ObserveEpoch|epochSpan' \
		internal/machine/predecode.go || true); \
	if [ -n "$$found" ]; then \
		echo "$$found"; \
		echo 'lint-fastpath: telemetry sink referenced inside the fused fast path'; \
		echo 'lint-fastpath: drain through the epoch helpers in fastpath.go instead (DESIGN.md, "Observability")'; \
		exit 1; \
	fi

# Metric-name registry gate: every literal counter/phase/histogram name
# passed to a stats.Recorder sink (Add/Observe/ObserveValue/Time) must
# appear in internal/stats/metrics.txt, so bundle schemas, the -json
# report and /metrics output cannot grow names silently. Dynamically
# built names (machine.fastpath.bail.* from BailReason strings) are
# enumerated in the registry and pinned by a test in internal/machine.
lint-metrics:
	@used=$$(grep -rhoE '\.(Add|Observe|ObserveValue|Time)\("[a-z0-9_]+\.[a-z0-9_.]+"' \
		--include='*.go' --exclude='*_test.go' cmd internal \
		| sed -E 's/.*\("([^"]+)".*/\1/' | sort -u); \
	missing=$$(for m in $$used; do \
		grep -qx "$$m" internal/stats/metrics.txt || echo "$$m"; \
	done); \
	if [ -n "$$missing" ]; then \
		echo "$$missing"; \
		echo 'lint-metrics: metric names used in source but missing from internal/stats/metrics.txt'; \
		echo 'lint-metrics: add them to the registry (keep it sorted; see DESIGN.md, "Run bundles")'; \
		exit 1; \
	fi

check: vet build lint-dispatch lint-fastpath lint-metrics diff race smoke

bench:
	$(GO) test -bench=. -benchmem .

# Perf trajectory: dictionary.Build and core.Compress at small/medium/full
# corpus sizes plus the execution benchmarks, recorded as
# BENCH_dictionary.json (ns/op, B/op, allocs/op, and histogram quantiles
# such as selbits-p50/p90/p99 and explen-p50/p90/p99). BENCH_SAMPLES runs
# each benchmark that many times so the report carries raw samples — the
# fuel for 95% confidence intervals and the -significant gate.
BENCH_SAMPLES ?= 5
bench-json:
	$(GO) test -run '^$$' -bench '^BenchmarkDictionaryBuild$$|^BenchmarkCompressSweep$$|^BenchmarkNativeExecution$$|^BenchmarkCompressedExecution$$|^BenchmarkSampledExecution$$' -count=$(BENCH_SAMPLES) -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_dictionary.json
	@echo wrote BENCH_dictionary.json

# Just the execution-speed pair (native vs compressed through the
# predecoded engine), recorded as BENCH_exec.json with the derived
# compressed_vs_native_ratio metric — the quick loop while working on the
# execution engine, without the multi-minute dictionary sweeps.
bench-exec:
	$(GO) test -run '^$$' -bench '^BenchmarkNativeExecution$$|^BenchmarkCompressedExecution$$|^BenchmarkSampledExecution$$' -count=$(BENCH_SAMPLES) -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_exec.json
	@echo wrote BENCH_exec.json

# Compare a fresh bench-json run against the committed baseline. The gate
# is noise-aware: a regression only fails when it is also statistically
# significant (Mann-Whitney over the raw samples), and -max ceilings are
# checked against the 95% CI upper bound.
# Usage: make bench-diff NEW=BENCH_dictionary.json [THRESHOLD=30]
#        [RATIO_MAX=1.15] [SAMPLED_MAX=1.10] [BASELINE=...]
THRESHOLD ?= 30
RATIO_MAX ?= 1.15
SAMPLED_MAX ?= 1.10
BASELINE ?= baselines/BENCH_dictionary.json
bench-diff:
	$(GO) run ./cmd/benchdiff -threshold $(THRESHOLD) -significant \
		-max compressed_vs_native_ratio=$(RATIO_MAX) \
		-max sampled_profiling_overhead_ratio=$(SAMPLED_MAX) \
		$(BASELINE) $(NEW)

# Perf-history ledger: append the current BENCH_dictionary.json to the
# JSONL ledger, stamped with the working tree's HEAD commit. The ledger
# starts from the committed seed so local trends include the repo's
# recorded history.
LEDGER ?= perf-ledger.jsonl
bench-append:
	@test -f $(LEDGER) || cp baselines/perf-ledger.jsonl $(LEDGER)
	$(GO) run ./cmd/cctrend -append BENCH_dictionary.json \
		-commit $$(git rev-parse HEAD) \
		-time $$(date -u +%Y-%m-%dT%H:%M:%SZ) \
		$(LEDGER)
	@echo appended to $(LEDGER)

# Render the ledger as a standalone HTML timeline (sparklines with CI
# bands, changepoint marks, worst-regressions table) plus aligned text.
bench-trend:
	@test -f $(LEDGER) || cp baselines/perf-ledger.jsonl $(LEDGER)
	$(GO) run ./cmd/cctrend -o trend.html $(LEDGER)
	$(GO) run ./cmd/cctrend -text $(LEDGER)
	@echo wrote trend.html

# Byte-provenance table (stdout) plus per-benchmark JSON/CSV/folded
# audit files under audits/.
sizeaudit:
	$(GO) run ./cmd/experiments -run sizeaudit -sizeaudit audits

# Run bundles: one flight-recorder directory per benchmark (nibble
# options) plus a whole-run experiments/ bundle, under bundles/. Render
# one with `go run ./cmd/ccreport bundles/<bench>.nibble`.
bundle:
	$(GO) run ./cmd/experiments -run table1 -bundle bundles

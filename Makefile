GO ?= go

.PHONY: all build vet test race smoke check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The bench package's corpus/engine tests are the concurrency-sensitive
# ones; -race over the whole module exercises them plus the simulator.
race:
	$(GO) test -race ./...

# End-to-end sanity: the parallel engine must produce a table and exit 0.
smoke:
	$(GO) run ./cmd/experiments -run fig5 -parallel 4

check: vet build race smoke

bench:
	$(GO) test -bench=. -benchmem .

// Package asm is the public assembler surface of the code-density
// library: builders for the PowerPC-subset instruction words accepted by
// codedensity.Builder, a disassembler, and the simulator's syscall
// numbers. It re-exports the internal ppc and machine primitives that
// downstream programs need to construct runnable modules.
package asm

import (
	"repro/internal/machine"
	"repro/internal/ppc"
)

// Syscall numbers for the sc instruction (selector in r0).
const (
	SysExit    = machine.SysExit    // r3 = status
	SysPutchar = machine.SysPutchar // r3 = byte
	SysPutint  = machine.SysPutint  // r3 = signed integer
	SysPuts    = machine.SysPuts    // r3 = NUL-terminated string address
)

// Disassemble renders an instruction word with standard mnemonics.
func Disassemble(w uint32) string { return ppc.Disassemble(w) }

// Parse assembles one instruction in Disassemble's syntax.
// Parse(Disassemble(w)) == w for every valid word.
func Parse(src string) (uint32, error) { return ppc.Assemble(src) }

// ParseAll assembles one instruction per line, skipping blanks and '#'
// comments.
func ParseAll(src string) ([]uint32, error) { return ppc.AssembleAll(src) }

// Arithmetic and logical instructions.
var (
	Addi   = ppc.Addi
	Addis  = ppc.Addis
	Li     = ppc.Li
	Lis    = ppc.Lis
	Ori    = ppc.Ori
	Oris   = ppc.Oris
	AndiRc = ppc.AndiRc
	Xori   = ppc.Xori
	Nop    = ppc.Nop
	Mr     = ppc.Mr
	Add    = ppc.Add
	Subf   = ppc.Subf
	Neg    = ppc.Neg
	Mullw  = ppc.Mullw
	Divw   = ppc.Divw
	And    = ppc.And
	Or     = ppc.Or
	Xor    = ppc.Xor
	Nor    = ppc.Nor
	Slw    = ppc.Slw
	Srw    = ppc.Srw
	Sraw   = ppc.Sraw
	Srawi  = ppc.Srawi
	Extsb  = ppc.Extsb
	Extsh  = ppc.Extsh
	Rlwinm = ppc.Rlwinm
	Clrlwi = ppc.Clrlwi
	Slwi   = ppc.Slwi
	Srwi   = ppc.Srwi
)

// Compares.
var (
	Cmpwi  = ppc.Cmpwi
	Cmplwi = ppc.Cmplwi
	Cmpw   = ppc.Cmpw
	Cmplw  = ppc.Cmplw
)

// Loads and stores.
var (
	Lwz  = ppc.Lwz
	Lbz  = ppc.Lbz
	Lhz  = ppc.Lhz
	Stw  = ppc.Stw
	Stb  = ppc.Stb
	Sth  = ppc.Sth
	Stwu = ppc.Stwu
	Lmw  = ppc.Lmw
	Stmw = ppc.Stmw
	Lwzx = ppc.Lwzx
	Stwx = ppc.Stwx
	Lbzx = ppc.Lbzx
	Lhzx = ppc.Lhzx
	Stbx = ppc.Stbx
	Sthx = ppc.Sthx
)

// Branches. Displacement arguments are placeholders (use 0) when the word
// is passed to Builder.Branch, which resolves labels at link time.
var (
	B     = ppc.B
	Bl    = ppc.Bl
	Bc    = ppc.Bc
	Blt   = ppc.Blt
	Bgt   = ppc.Bgt
	Beq   = ppc.Beq
	Bge   = ppc.Bge
	Ble   = ppc.Ble
	Bne   = ppc.Bne
	Bdnz  = ppc.Bdnz
	Blr   = ppc.Blr
	Bctr  = ppc.Bctr
	Bctrl = ppc.Bctrl
)

// Special-purpose register moves and system call.
var (
	Mflr  = ppc.Mflr
	Mtlr  = ppc.Mtlr
	Mfctr = ppc.Mfctr
	Mtctr = ppc.Mtctr
	Sc    = ppc.Sc
)

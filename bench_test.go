package codedensity

// One benchmark per paper table/figure (the harness required by the
// reproduction), plus performance microbenchmarks of the library itself.
// Experiment benchmarks re-run the full measurement each iteration over a
// forked corpus (programs shared, compression redone), so reported times
// reflect real work.

import (
	"sync"
	"testing"

	"repro/asm"
	"repro/internal/bench"
	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/guestprof"
	"repro/internal/huffman"
	"repro/internal/lzw"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/synth"
)

var (
	benchCorpus = bench.NewCorpus()
	warmOnce    sync.Once
	benchSink   interface{}
)

func warm(b *testing.B) {
	b.Helper()
	warmOnce.Do(func() {
		for _, n := range benchCorpus.Names() {
			if _, err := benchCorpus.Program(n); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchExperiment(b *testing.B, id string) {
	warm(b)
	r, ok := bench.Find(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := r.Run(benchCorpus.Fork())
		if err != nil {
			b.Fatal(err)
		}
		benchSink = tab
	}
}

// Paper evaluation: one bench per table and figure.

func BenchmarkFig1EncodingRedundancy(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkTable1BranchOffsets(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkFig4EntryLength(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkFig5CodewordCount(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkTable2MaxCodewords(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkFig6DictComposition(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7SavingsByLength(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFig8SmallDictionaries(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9Composition(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig11NibbleVsCompress(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkTable3PrologueEpilogue(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkExtBaselines(b *testing.B)           { benchExperiment(b, "baselines") }
func BenchmarkExtICache(b *testing.B)              { benchExperiment(b, "icache") }
func BenchmarkExtDecodePenalty(b *testing.B)       { benchExperiment(b, "penalty") }
func BenchmarkAblationSelection(b *testing.B)      { benchExperiment(b, "ablation-selection") }
func BenchmarkAblationAlignment(b *testing.B)      { benchExperiment(b, "ablation-alignment") }
func BenchmarkExtStandardize(b *testing.B)         { benchExperiment(b, "standardize") }
func BenchmarkExtDictPlacement(b *testing.B)       { benchExperiment(b, "dictplace") }
func BenchmarkExtCycles(b *testing.B)              { benchExperiment(b, "cycles") }
func BenchmarkExtProfiled(b *testing.B)            { benchExperiment(b, "profiled") }
func BenchmarkExtRegalloc(b *testing.B)            { benchExperiment(b, "regalloc") }
func BenchmarkExtRefill(b *testing.B)              { benchExperiment(b, "refill") }
func BenchmarkExtSharedDictionary(b *testing.B)    { benchExperiment(b, "shared") }
func BenchmarkExtCrossover(b *testing.B)           { benchExperiment(b, "crossover") }
func BenchmarkExtScaling(b *testing.B)             { benchExperiment(b, "scaling") }

// Library microbenchmarks.

func benchProgram(b *testing.B, name string) *Program {
	b.Helper()
	warm(b)
	p, err := benchCorpus.Program(name)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkGenerateBenchmark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := synth.Generate("li")
		if err != nil {
			b.Fatal(err)
		}
		benchSink = p
	}
}

func benchCompress(b *testing.B, name string, scheme Scheme) {
	p := benchProgram(b, name)
	b.SetBytes(int64(p.SizeBytes()))
	b.ResetTimer()
	var last *Image
	for i := 0; i < b.N; i++ {
		img, err := core.Compress(p.Clone(), Options{Scheme: scheme})
		if err != nil {
			b.Fatal(err)
		}
		last = img
	}
	b.ReportMetric(last.Ratio(), "ratio")
}

// dictSizes are the small/medium/full synth-benchmark sizes the
// BENCH_dictionary.json trajectory tracks (see `make bench-json`).
var dictSizes = []struct{ size, bench string }{
	{"small", "compress"}, // ~3.6k words
	{"medium", "go"},      // ~16k words
	{"full", "gcc"},       // ~42k words, the largest synth benchmark
}

// BenchmarkDictionaryBuild times the greedy analyzer alone — the paper's
// §3.1 hot path — for both the indexed builder and the reference
// implementation, at three corpus sizes.
func BenchmarkDictionaryBuild(b *testing.B) {
	impls := []struct {
		name  string
		strat dictionary.Strategy
	}{
		{"indexed", dictionary.Greedy},
		{"reference", dictionary.GreedyReference},
	}
	for _, sz := range dictSizes {
		for _, im := range impls {
			b.Run(sz.size+"/"+im.name, func(b *testing.B) {
				p := benchProgram(b, sz.bench)
				comp, lead, err := core.Markers(p)
				if err != nil {
					b.Fatal(err)
				}
				rec := stats.New()
				cfg := dictionary.Config{
					MaxEntries:        Baseline.MaxEntries(),
					MaxEntryLen:       4,
					CodewordBits:      Baseline.CodewordBits,
					EntryOverheadBits: codeword.EntryOverheadBits,
					Compressible:      comp,
					Leader:            lead,
					Strategy:          im.strat,
					Stats:             rec,
				}
				b.SetBytes(int64(4 * len(p.Text)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := dictionary.Build(p.Text, cfg)
					if err != nil {
						b.Fatal(err)
					}
					benchSink = r
				}
				b.StopTimer()
				reportHist(b, rec, "dict.selection_bits", "selbits")
			})
		}
	}
}

// BenchmarkCompressSweep times the full pipeline at the same three sizes,
// so the trajectory records how much of core.Compress the builder is.
func BenchmarkCompressSweep(b *testing.B) {
	for _, sz := range dictSizes {
		b.Run(sz.size, func(b *testing.B) {
			p := benchProgram(b, sz.bench)
			b.SetBytes(int64(p.SizeBytes()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				img, err := core.Compress(p.Clone(), Options{Scheme: Baseline})
				if err != nil {
					b.Fatal(err)
				}
				benchSink = img
			}
		})
	}
}

func BenchmarkCompressBaselineGcc(b *testing.B) { benchCompress(b, "gcc", Baseline) }
func BenchmarkCompressNibbleGcc(b *testing.B)   { benchCompress(b, "gcc", Nibble) }
func BenchmarkCompressNibbleCompress(b *testing.B) {
	benchCompress(b, "compress", Nibble)
}

func BenchmarkDecompress(b *testing.B) {
	p := benchProgram(b, "go")
	img, err := core.Compress(p.Clone(), Options{Scheme: Nibble})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(img.StreamBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := img.Decompress()
		if err != nil {
			b.Fatal(err)
		}
		benchSink = out
	}
}

func BenchmarkVerify(b *testing.B) {
	p := benchProgram(b, "go")
	img, err := core.Compress(p.Clone(), Options{Scheme: Nibble})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.Verify(p, img); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRepeatRuns drives repeated Runs over one machine via CPU.Reset —
// the steady-state serving shape: construct (and predecode) once, then
// execute per request. The warmup run before the timer pays the lazy
// predecode build and the memory snapshot, so the timed region measures
// pure execution with zero construction allocations.
func benchRepeatRuns(b *testing.B, cpu *machine.CPU) int64 {
	b.Helper()
	if _, err := cpu.Run(200_000_000); err != nil {
		b.Fatal(err)
	}
	steps := cpu.Stats.Steps
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cpu.Reset(); err != nil {
			b.Fatal(err)
		}
		if _, err := cpu.Run(200_000_000); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	return steps
}

func BenchmarkNativeExecution(b *testing.B) {
	p := benchProgram(b, "perl")
	cpu, err := machine.NewForProgram(p)
	if err != nil {
		b.Fatal(err)
	}
	steps := benchRepeatRuns(b, cpu)
	b.ReportMetric(float64(steps), "steps/op")
}

func BenchmarkCompressedExecution(b *testing.B) {
	p := benchProgram(b, "perl")
	img, err := core.Compress(p.Clone(), Options{Scheme: Nibble})
	if err != nil {
		b.Fatal(err)
	}
	// One untimed instrumented run collects the expansion-length
	// histogram; attaching the recorder routes that machine through the
	// slow path, so the timed machine below stays bare and predecoded.
	rec := stats.New()
	probe, err := core.NewMachine(img)
	if err != nil {
		b.Fatal(err)
	}
	probe.Record = rec
	if _, err := probe.Run(200_000_000); err != nil {
		b.Fatal(err)
	}
	cpu, err := core.NewMachine(img)
	if err != nil {
		b.Fatal(err)
	}
	steps := benchRepeatRuns(b, cpu)
	b.ReportMetric(float64(steps), "steps/op")
	reportHist(b, rec, "machine.expansion_len", "explen")
}

// BenchmarkSampledExecution is BenchmarkCompressedExecution with the
// epoch-sampled guest profiler attached — the always-on observability
// configuration. The run must stay on the fused fast path (faststeps/op
// equals steps/op); benchdiff derives fastpath_coverage and
// sampled_profiling_overhead_ratio from this pair and CI pins the latter
// at 1.10.
func BenchmarkSampledExecution(b *testing.B) {
	p := benchProgram(b, "perl")
	img, err := core.Compress(p.Clone(), Options{Scheme: Nibble})
	if err != nil {
		b.Fatal(err)
	}
	sym, err := img.GuestSymTab()
	if err != nil {
		b.Fatal(err)
	}
	cpu, err := core.NewMachine(img)
	if err != nil {
		b.Fatal(err)
	}
	cpu.EnableEpochSampling(stats.New(), guestprof.NewSampled(sym))
	steps := benchRepeatRuns(b, cpu)
	// The fold of the final partial epoch lands here, outside the timed
	// region — in serving, folds happen on the epoch cadence, not per Run.
	cpu.FlushEpoch()
	if cpu.Fast.Steps != cpu.Stats.Steps {
		b.Fatalf("sampling knocked the run off the fast path: %s", cpu.Fast.BailSummary())
	}
	b.ReportMetric(float64(steps), "steps/op")
	b.ReportMetric(float64(cpu.Fast.Steps), "faststeps/op")
}

// reportHist reports a recorded histogram's quantiles as custom benchmark
// units, so `make bench-json` captures distribution shape (not just
// means) in the BENCH_*.json trajectory.
func reportHist(b *testing.B, rec *stats.Recorder, key, unit string) {
	b.Helper()
	h := rec.Snapshot().Hist(key)
	if h.Count == 0 {
		return
	}
	b.ReportMetric(float64(h.P50), unit+"-p50")
	b.ReportMetric(float64(h.P90), unit+"-p90")
	b.ReportMetric(float64(h.P99), unit+"-p99")
}

func BenchmarkLZWCompress(b *testing.B) {
	p := benchProgram(b, "go")
	text := p.TextBytes()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = lzw.Compress(text)
	}
}

func BenchmarkCCRPHuffman(b *testing.B) {
	p := benchProgram(b, "go")
	text := p.TextBytes()
	model := huffman.DefaultCCRP()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := model.Compress(text)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = res
	}
}

func BenchmarkApplyFixedDictionary(b *testing.B) {
	p := benchProgram(b, "li")
	q := benchProgram(b, "compress")
	shared, err := core.BuildSharedDictionary(
		[]*Program{p, q}, Options{Scheme: Baseline, MaxEntryLen: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(p.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, err := core.CompressFixed(p.Clone(), shared, Options{Scheme: Baseline})
		if err != nil {
			b.Fatal(err)
		}
		benchSink = img
	}
}

func BenchmarkAssembleInstruction(b *testing.B) {
	srcs := []string{"lwz r9,4(r28)", "addi r0,r11,1", "ble cr1,.+0x1c8", "rlwinm r4,r5,3,5,28"}
	for i := 0; i < b.N; i++ {
		w, err := asm.Parse(srcs[i%len(srcs)])
		if err != nil {
			b.Fatal(err)
		}
		benchSink = w
	}
}

func BenchmarkDisassembleInstruction(b *testing.B) {
	p := benchProgram(b, "compress")
	for i := 0; i < b.N; i++ {
		benchSink = asm.Disassemble(p.Text[i%len(p.Text)])
	}
}

func BenchmarkCCRPExecution(b *testing.B) {
	p := benchProgram(b, "compress")
	img, err := huffman.BuildCCRPImage(p, huffman.DefaultCCRP())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu, err := huffman.NewCCRPMachine(img, 64)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cpu.Run(200_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamDecodeNibble(b *testing.B) {
	p := benchProgram(b, "go")
	img, err := core.Compress(p.Clone(), Options{Scheme: codeword.Nibble})
	if err != nil {
		b.Fatal(err)
	}
	rdr := codeword.NewReader(img.Scheme, img.Stream, img.Units)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for u := 0; u < img.Units; {
			it, err := rdr.At(u)
			if err != nil {
				b.Fatal(err)
			}
			u += it.Units
		}
	}
}

// Command benchdiff compares two BENCH_*.json trajectory files and
// reports per-benchmark deltas: ns/op always, plus every custom metric
// (compression ratios, steps/op, the selbits/explen histogram quantiles)
// the two sides share. With -threshold it becomes a regression gate,
// exiting 1 when any metric grew by more than the given percentage —
// every tracked metric is a cost, so growth is always the bad direction.
//
//	benchdiff old.json new.json              # report only
//	benchdiff -threshold 20 old.json new.json # fail on >20% regressions
//
// Appeared/disappeared benchmarks are reported but never fail the gate:
// renames and new coverage are routine; silently comparing nothing is the
// failure mode this tool exists to prevent, so two reports with no
// benchmark in common do exit 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchfmt"
)

func main() {
	threshold := flag.Float64("threshold", 0, "fail (exit 1) when any metric regresses by more than this percent; 0 disables the gate")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold pct] old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *threshold); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath string, threshold float64) error {
	oldRep, err := benchfmt.ReadFile(oldPath)
	if err != nil {
		return err
	}
	newRep, err := benchfmt.ReadFile(newPath)
	if err != nil {
		return err
	}
	cmp := benchfmt.Compare(oldRep, newRep)
	if len(cmp.Deltas) == 0 {
		return fmt.Errorf("%s and %s share no benchmarks", oldPath, newPath)
	}

	fmt.Printf("benchdiff: %s -> %s\n", oldPath, newPath)
	rows := [][]string{{"benchmark", "metric", "old", "new", "delta"}}
	for _, d := range cmp.Deltas {
		rows = append(rows, []string{
			d.Bench, d.Metric, num(d.Old), num(d.New), fmt.Sprintf("%+.1f%%", d.Pct()),
		})
	}
	printAligned(rows)
	for _, n := range cmp.OldOnly {
		fmt.Printf("only in %s: %s\n", oldPath, n)
	}
	for _, n := range cmp.NewOnly {
		fmt.Printf("only in %s: %s\n", newPath, n)
	}

	if threshold > 0 {
		regs := cmp.Regressions(threshold)
		if len(regs) > 0 {
			fmt.Printf("\n%d metric(s) regressed beyond %.1f%%:\n", len(regs), threshold)
			for _, d := range regs {
				fmt.Printf("  %s %s: %s -> %s (%+.1f%%)\n",
					d.Bench, d.Metric, num(d.Old), num(d.New), d.Pct())
			}
			return fmt.Errorf("regression threshold exceeded")
		}
		fmt.Printf("\nno metric regressed beyond %.1f%%\n", threshold)
	}
	return nil
}

// num renders a metric value compactly: integers without a fraction,
// everything else with enough digits to see small movements.
func num(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v >= 1000 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// printAligned renders rows as left-aligned columns two spaces apart.
func printAligned(rows [][]string) {
	width := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	for _, r := range rows {
		var sb strings.Builder
		for i, cell := range r {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(r)-1 {
				sb.WriteString(strings.Repeat(" ", width[i]-len(cell)))
			}
		}
		fmt.Println(sb.String())
	}
}

// Command benchdiff compares two BENCH_*.json trajectory files and
// reports per-benchmark deltas: ns/op always, plus every custom metric
// (compression ratios, steps/op, the selbits/explen histogram quantiles)
// the two sides share. With -threshold it becomes a regression gate,
// exiting 1 when any metric grew by more than the given percentage —
// every tracked metric is a cost, so growth is always the bad direction.
//
//	benchdiff old.json new.json              # report only
//	benchdiff -threshold 20 old.json new.json # fail on >20% regressions
//	benchdiff -threshold 20 -significant old.json new.json
//	benchdiff -max compressed_vs_native_ratio=1.15 old.json new.json
//
// -significant makes the threshold gate noise-aware: a regression only
// fails the build when it is also statistically significant under a
// two-sided Mann-Whitney U test (p <= -alpha, default 0.05) over the raw
// samples both reports carry (`go test -count=N` via benchjson). A mean
// that moved past the threshold but whose sample distributions the test
// cannot tell apart is scheduler noise and passes; a delta without
// enough samples on both sides still fails — absence of evidence does
// not wave a regression through.
//
// -max (repeatable) adds an absolute ceiling on a named metric in the NEW
// report, independent of the baseline: the execution-speed ratio must stay
// under its target even if the committed baseline drifted. With
// multi-sample reports the ceiling is checked against the metric's 95% CI
// upper bound, not a lucky single sample. A -max naming a metric absent
// from the new report fails, so the gate cannot silently rot.
//
// Appeared/disappeared benchmarks are reported but never fail the gate:
// renames and new coverage are routine; silently comparing nothing is the
// failure mode this tool exists to prevent, so two reports with no
// benchmark in common do exit 1.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
)

// ceilingFlags collects repeatable -max name=value arguments.
type ceilingFlags []benchfmt.Ceiling

func (c *ceilingFlags) String() string {
	parts := make([]string, len(*c))
	for i, x := range *c {
		parts[i] = fmt.Sprintf("%s=%g", x.Metric, x.Limit)
	}
	return strings.Join(parts, ",")
}

func (c *ceilingFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want metric=value, got %q", s)
	}
	limit, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("limit %q: %w", val, err)
	}
	*c = append(*c, benchfmt.Ceiling{Metric: name, Limit: limit})
	return nil
}

func main() {
	threshold := flag.Float64("threshold", 0, "fail (exit 1) when any metric regresses by more than this percent; 0 disables the gate")
	significant := flag.Bool("significant", false, "with -threshold, only fail on regressions that are also statistically significant (Mann-Whitney p <= alpha over the reports' samples)")
	alpha := flag.Float64("alpha", benchfmt.DefaultAlpha, "significance level for -significant")
	var ceilings ceilingFlags
	flag.Var(&ceilings, "max", "metric=value absolute ceiling on the new report (repeatable), checked against the 95% CI upper bound when samples are present; fail when exceeded or the metric is absent")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold pct] [-significant] [-alpha p] [-max metric=value]... old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *threshold, *significant, *alpha, ceilings); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath string, threshold float64, significant bool, alpha float64, ceilings []benchfmt.Ceiling) error {
	oldRep, err := benchfmt.ReadFile(oldPath)
	if err != nil {
		return err
	}
	newRep, err := benchfmt.ReadFile(newPath)
	if err != nil {
		return err
	}
	cmp := benchfmt.Compare(oldRep, newRep)
	if len(cmp.Deltas) == 0 {
		return fmt.Errorf("%s and %s share no benchmarks", oldPath, newPath)
	}

	fmt.Printf("benchdiff: %s -> %s\n", oldPath, newPath)
	rows := [][]string{{"benchmark", "metric", "old", "new", "delta", "p"}}
	for _, d := range cmp.Deltas {
		rows = append(rows, []string{
			d.Bench, d.Metric, distCell(d.Old, d.OldDist), distCell(d.New, d.NewDist),
			fmt.Sprintf("%+.1f%%", d.Pct()), pCell(d.P),
		})
	}
	printAligned(rows)
	for _, n := range cmp.OldOnly {
		fmt.Printf("only in %s: %s\n", oldPath, n)
	}
	for _, n := range cmp.NewOnly {
		fmt.Printf("only in %s: %s\n", newPath, n)
	}

	if threshold > 0 {
		regs := cmp.Regressions(threshold)
		if significant {
			regs = cmp.SignificantRegressions(threshold, alpha)
		}
		if len(regs) > 0 {
			kind := ""
			if significant {
				kind = fmt.Sprintf(" significantly (p <= %g, or too few samples to test)", alpha)
			}
			fmt.Printf("\n%d metric(s) regressed beyond %.1f%%%s:\n", len(regs), threshold, kind)
			for _, d := range regs {
				fmt.Printf("  %s %s: %s -> %s (%+.1f%%, p %s)\n",
					d.Bench, d.Metric, num(d.Old), num(d.New), d.Pct(), pCell(d.P))
			}
			return fmt.Errorf("regression threshold exceeded (%s -> %s)", oldPath, newPath)
		}
		if significant {
			fmt.Printf("\nno metric regressed beyond %.1f%% with significance p <= %g\n", threshold, alpha)
		} else {
			fmt.Printf("\nno metric regressed beyond %.1f%%\n", threshold)
		}
	}
	if len(ceilings) > 0 {
		over, err := newRep.Exceeded(ceilings)
		if err != nil {
			return fmt.Errorf("%s: %w", newPath, err)
		}
		if len(over) > 0 {
			fmt.Printf("\n%d metric(s) exceeded an absolute ceiling:\n", len(over))
			for _, d := range over {
				bound := ""
				if d.NewDist.N > 1 {
					bound = fmt.Sprintf(" (CI upper bound of %d samples, mean %s)", d.NewDist.N, num(d.NewDist.Mean))
				}
				fmt.Printf("  %s %s: %s > limit %s%s\n", d.Bench, d.Metric, num(d.New), num(d.Old), bound)
			}
			return fmt.Errorf("absolute ceiling exceeded (%s)", newPath)
		}
		fmt.Printf("all %d absolute ceiling(s) hold\n", len(ceilings))
	}
	return nil
}

// distCell renders a metric's value for the delta table: the bare mean
// for single-sample sides, "mean ±halfwidth (n)" once a 95% CI exists.
func distCell(mean float64, d benchfmt.Dist) string {
	if d.N <= 1 {
		return num(mean)
	}
	return fmt.Sprintf("%s ±%s (n=%d)", num(d.Mean), num(d.CIHigh-d.Mean), d.N)
}

// pCell renders a Mann-Whitney p-value; "-" when there were not enough
// samples to test.
func pCell(p float64) string {
	if math.IsNaN(p) {
		return "-"
	}
	return fmt.Sprintf("%.3f", p)
}

// num renders a metric value compactly: integers without a fraction,
// everything else with enough digits to see small movements.
func num(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v >= 1000 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// printAligned renders rows as left-aligned columns two spaces apart.
func printAligned(rows [][]string) {
	width := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	for _, r := range rows {
		var sb strings.Builder
		for i, cell := range r {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(r)-1 {
				sb.WriteString(strings.Repeat(" ", width[i]-len(cell)))
			}
		}
		fmt.Println(sb.String())
	}
}

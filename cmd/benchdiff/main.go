// Command benchdiff compares two BENCH_*.json trajectory files and
// reports per-benchmark deltas: ns/op always, plus every custom metric
// (compression ratios, steps/op, the selbits/explen histogram quantiles)
// the two sides share. With -threshold it becomes a regression gate,
// exiting 1 when any metric grew by more than the given percentage —
// every tracked metric is a cost, so growth is always the bad direction.
//
//	benchdiff old.json new.json              # report only
//	benchdiff -threshold 20 old.json new.json # fail on >20% regressions
//	benchdiff -max compressed_vs_native_ratio=1.15 old.json new.json
//
// -max (repeatable) adds an absolute ceiling on a named metric in the NEW
// report, independent of the baseline: the execution-speed ratio must stay
// under its target even if the committed baseline drifted. A -max naming a
// metric absent from the new report fails, so the gate cannot silently rot.
//
// Appeared/disappeared benchmarks are reported but never fail the gate:
// renames and new coverage are routine; silently comparing nothing is the
// failure mode this tool exists to prevent, so two reports with no
// benchmark in common do exit 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
)

// ceilingFlags collects repeatable -max name=value arguments.
type ceilingFlags []benchfmt.Ceiling

func (c *ceilingFlags) String() string {
	parts := make([]string, len(*c))
	for i, x := range *c {
		parts[i] = fmt.Sprintf("%s=%g", x.Metric, x.Limit)
	}
	return strings.Join(parts, ",")
}

func (c *ceilingFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want metric=value, got %q", s)
	}
	limit, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("limit %q: %w", val, err)
	}
	*c = append(*c, benchfmt.Ceiling{Metric: name, Limit: limit})
	return nil
}

func main() {
	threshold := flag.Float64("threshold", 0, "fail (exit 1) when any metric regresses by more than this percent; 0 disables the gate")
	var ceilings ceilingFlags
	flag.Var(&ceilings, "max", "metric=value absolute ceiling on the new report (repeatable); fail when the metric exceeds it or is absent")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold pct] [-max metric=value]... old.json new.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *threshold, ceilings); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath string, threshold float64, ceilings []benchfmt.Ceiling) error {
	oldRep, err := benchfmt.ReadFile(oldPath)
	if err != nil {
		return err
	}
	newRep, err := benchfmt.ReadFile(newPath)
	if err != nil {
		return err
	}
	cmp := benchfmt.Compare(oldRep, newRep)
	if len(cmp.Deltas) == 0 {
		return fmt.Errorf("%s and %s share no benchmarks", oldPath, newPath)
	}

	fmt.Printf("benchdiff: %s -> %s\n", oldPath, newPath)
	rows := [][]string{{"benchmark", "metric", "old", "new", "delta"}}
	for _, d := range cmp.Deltas {
		rows = append(rows, []string{
			d.Bench, d.Metric, num(d.Old), num(d.New), fmt.Sprintf("%+.1f%%", d.Pct()),
		})
	}
	printAligned(rows)
	for _, n := range cmp.OldOnly {
		fmt.Printf("only in %s: %s\n", oldPath, n)
	}
	for _, n := range cmp.NewOnly {
		fmt.Printf("only in %s: %s\n", newPath, n)
	}

	if threshold > 0 {
		regs := cmp.Regressions(threshold)
		if len(regs) > 0 {
			fmt.Printf("\n%d metric(s) regressed beyond %.1f%%:\n", len(regs), threshold)
			for _, d := range regs {
				fmt.Printf("  %s %s: %s -> %s (%+.1f%%)\n",
					d.Bench, d.Metric, num(d.Old), num(d.New), d.Pct())
			}
			return fmt.Errorf("regression threshold exceeded")
		}
		fmt.Printf("\nno metric regressed beyond %.1f%%\n", threshold)
	}
	if len(ceilings) > 0 {
		over, err := newRep.Exceeded(ceilings)
		if err != nil {
			return err
		}
		if len(over) > 0 {
			fmt.Printf("\n%d metric(s) exceeded an absolute ceiling:\n", len(over))
			for _, d := range over {
				fmt.Printf("  %s %s: %s > limit %s\n", d.Bench, d.Metric, num(d.New), num(d.Old))
			}
			return fmt.Errorf("absolute ceiling exceeded")
		}
		fmt.Printf("all %d absolute ceiling(s) hold\n", len(ceilings))
	}
	return nil
}

// num renders a metric value compactly: integers without a fraction,
// everything else with enough digits to see small movements.
func num(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v >= 1000 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// printAligned renders rows as left-aligned columns two spaces apart.
func printAligned(rows [][]string) {
	width := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	for _, r := range rows {
		var sb strings.Builder
		for i, cell := range r {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(r)-1 {
				sb.WriteString(strings.Repeat(" ", width[i]-len(cell)))
			}
		}
		fmt.Println(sb.String())
	}
}

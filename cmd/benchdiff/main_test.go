package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

func writeReport(t *testing.T, dir, name string, ns []float64, metrics map[string][]float64) string {
	t.Helper()
	b := benchfmt.Benchmark{Name: "BenchmarkX", NsPerOp: benchfmt.NewDist(ns).Mean,
		Samples: map[string][]float64{}}
	if len(ns) > 1 {
		b.Samples[benchfmt.MetricNs] = ns
	}
	for m, s := range metrics {
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[m] = benchfmt.NewDist(s).Mean
		if len(s) > 1 {
			b.Samples[m] = s
		}
	}
	if len(b.Samples) == 0 {
		b.Samples = nil
	}
	rep := benchfmt.Report{Benchmarks: []benchfmt.Benchmark{b}}
	data, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSignificantGateNoiseRobustness is the acceptance check for the
// noise-aware gate: run-to-run noise whose confidence intervals overlap
// passes `-significant` at a threshold the raw means exceed, while a
// genuine shift with separated distributions still fails.
func TestSignificantGateNoiseRobustness(t *testing.T) {
	dir := t.TempDir()

	// Noise: the means differ ~11% but the sample clouds interleave.
	old := writeReport(t, dir, "old.json", []float64{100, 140, 105, 150, 117}, nil)
	noisy := writeReport(t, dir, "noisy.json", []float64{110, 160, 120, 140, 152}, nil)
	// Plain threshold gate fails on the mean movement...
	if err := run(old, noisy, 10, false, benchfmt.DefaultAlpha, nil); err == nil {
		t.Fatal("test setup: plain gate should fail on an 11% mean move")
	}
	// ...but the significance-aware gate sees overlapping CIs and passes.
	if err := run(old, noisy, 10, true, benchfmt.DefaultAlpha, nil); err != nil {
		t.Errorf("-significant failed on CI-overlapping noise: %v", err)
	}

	// Genuine regression: ≥10% shift, non-overlapping sample clouds.
	base := writeReport(t, dir, "base.json", []float64{100, 101, 102, 103, 104}, nil)
	slow := writeReport(t, dir, "slow.json", []float64{115, 116, 117, 118, 119}, nil)
	err := run(base, slow, 10, true, benchfmt.DefaultAlpha, nil)
	if err == nil {
		t.Fatal("-significant passed a genuine 15% shift")
	}
	if !strings.Contains(err.Error(), base) || !strings.Contains(err.Error(), slow) {
		t.Errorf("gate error %q does not name both files", err)
	}
}

// TestSignificantGateFailsWithoutSamples: single-sample reports cannot be
// significance-tested, and an untestable regression must still fail.
func TestSignificantGateFailsWithoutSamples(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []float64{100}, nil)
	slow := writeReport(t, dir, "slow.json", []float64{150}, nil)
	if err := run(old, slow, 10, true, benchfmt.DefaultAlpha, nil); err == nil {
		t.Error("untestable 50% regression waved through")
	}
}

func TestCeilingAgainstCIUpperBound(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []float64{100}, nil)
	// Mean ratio 1.0 but wide spread: CI upper bound crosses 1.05.
	wide := writeReport(t, dir, "wide.json", []float64{100, 100, 100},
		map[string][]float64{"r": {0.9, 1.0, 1.1}})
	err := run(old, wide, 0, false, benchfmt.DefaultAlpha,
		[]benchfmt.Ceiling{{Metric: "r", Limit: 1.05}})
	if err == nil {
		t.Fatal("wide-CI ceiling violation passed")
	}
	if !strings.Contains(err.Error(), "wide.json") {
		t.Errorf("ceiling error %q does not name the offending file", err)
	}
	// Same mean with tight samples stays under the ceiling.
	tight := writeReport(t, dir, "tight.json", []float64{100, 100, 100},
		map[string][]float64{"r": {0.99, 1.0, 1.01}})
	if err := run(old, tight, 0, false, benchfmt.DefaultAlpha,
		[]benchfmt.Ceiling{{Metric: "r", Limit: 1.05}}); err != nil {
		t.Errorf("tight-CI report failed the same ceiling: %v", err)
	}
}

func TestAbsentCeilingMetricNamesFile(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []float64{100}, nil)
	neu := writeReport(t, dir, "new.json", []float64{100}, nil)
	err := run(old, neu, 0, false, benchfmt.DefaultAlpha,
		[]benchfmt.Ceiling{{Metric: "no_such", Limit: 1}})
	if err == nil {
		t.Fatal("absent ceiling metric accepted")
	}
	if !strings.Contains(err.Error(), "new.json") || !strings.Contains(err.Error(), "no_such") {
		t.Errorf("error %q does not name the file and metric", err)
	}
}

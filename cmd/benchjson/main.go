// Command benchjson converts `go test -bench` output on stdin into the
// repository's BENCH_*.json trajectory format: one record per benchmark
// with ns/op, B/op, allocs/op and any custom metrics — ratio, steps/op,
// and the histogram quantiles the benchmarks report via b.ReportMetric
// (selbits-p50/p90/p99 for dictionary selection savings, explen-p50/p90/
// p99 for dynamic expansion lengths).
//
//	go test -run '^$' -bench 'Dictionary' -benchmem . | benchjson > BENCH_dictionary.json
//	go test -run '^$' -bench 'Dictionary' -count=5 . | benchjson > BENCH_dictionary.json
//
// With `-count=N` every benchmark repeats N times and the report carries
// all N raw samples per metric — point fields become means, and benchdiff
// gains per-side 95% confidence intervals plus a Mann-Whitney
// significance test for its -significant gate.
//
// It fails (exit 1) when no benchmark lines are found, so an empty or
// broken bench run can never silently overwrite a trajectory file.
// The schema and parser live in internal/benchfmt, shared with benchdiff,
// cctrend and the perf-history ledger.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	rep, err := benchfmt.Parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing stdin: %v\n", err)
		os.Exit(1)
	}
	// Derived cross-benchmark metrics (compressed_vs_native_ratio) ride
	// the trajectory like any measured value.
	rep.AddDerived()
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

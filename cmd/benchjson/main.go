// Command benchjson converts `go test -bench` output on stdin into the
// repository's BENCH_*.json trajectory format: one record per benchmark
// with ns/op, B/op, allocs/op and any custom metrics — ratio, steps/op,
// and the histogram quantiles the benchmarks report via b.ReportMetric
// (selbits-p50/p90/p99 for dictionary selection savings, explen-p50/p90/
// p99 for dynamic expansion lengths).
//
//	go test -run '^$' -bench 'Dictionary' -benchmem . | benchjson > BENCH_dictionary.json
//
// It fails (exit 1) when no benchmark lines are found, so an empty or
// broken bench run can never silently overwrite a trajectory file.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file layout.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return rep, nil
}

// parseBench parses one result line: name, iteration count, then
// (value, unit) pairs.
func parseBench(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed result line")
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", f[i], err)
		}
		// v is re-declared each iteration, so taking its address is safe.
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		case "MB/s":
			b.MBPerSec = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[f[i+1]] = v
		}
	}
	return b, nil
}

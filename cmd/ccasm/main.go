// Command ccasm assembles textual PowerPC-subset source into a .ppx
// object file that ccomp/ccrun/ccdis accept.
//
// Source format (see program.AssembleSource): ppc mnemonics, one per
// line, with .program/.entry/.func directives, local labels, and symbolic
// branch targets.
//
// Usage:
//
//	ccasm -o prog.ppx prog.s
//	echo '.func main
//	li r3,7
//	li r0,0
//	sc' | ccasm -o tiny.ppx -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/objfile"
	"repro/internal/program"
)

func main() {
	out := flag.String("o", "", "output .ppx path (default: input with .ppx suffix)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccasm [-o out.ppx] prog.s  (use - for stdin)")
		os.Exit(2)
	}
	in := flag.Arg(0)
	var src []byte
	var err error
	if in == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(in)
	}
	if err != nil {
		fatal(err)
	}

	p, err := program.AssembleSource(string(src))
	if err != nil {
		fatal(err)
	}

	dst := *out
	if dst == "" {
		if in == "-" {
			dst = "a.ppx"
		} else {
			dst = strings.TrimSuffix(in, ".s") + ".ppx"
		}
	}
	f, err := os.Create(dst)
	if err != nil {
		fatal(err)
	}
	if err := objfile.WriteProgram(f, p); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d instructions, %d functions -> %s\n",
		p.Name, len(p.Text), len(p.Symbols), dst)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccasm:", err)
	os.Exit(1)
}

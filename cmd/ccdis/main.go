// Command ccdis disassembles .ppx programs and .ppz compressed images. For
// images it renders the codeword stream with dictionary expansions inline
// (the paper's Figure 2 view) and dumps the dictionary.
//
// Usage:
//
//	ccdis prog.ppx | head
//	ccdis -dict prog.ppz
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/codec"
	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/ppc"
)

func main() {
	dictOnly := flag.Bool("dict", false, "for images: print only the dictionary")
	limit := flag.Int("n", 0, "stop after this many lines (0 = all)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccdis [flags] prog.{ppx,ppz}")
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	if strings.HasSuffix(path, ".ppz") {
		// The frame's method byte selects the codec; dictionary images get
		// the full Figure 2 rendering, other codecs a header summary.
		oi, err := objfile.OpenImage(f)
		if err != nil {
			fatal(err)
		}
		if img, ok := oi.(*core.Image); ok {
			disImage(img, *dictOnly, *limit)
			return
		}
		c, err := codec.ByMethod(oi.Method())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s codec (method 0x%02x): %d compressed bytes, ratio %.3f\n",
			c.Name(), uint8(oi.Method()), oi.CompressedBytes(), oi.Ratio())
		fmt.Println("no codeword stream to disassemble (not a dictionary image)")
		return
	}
	p, err := objfile.ReadProgram(f)
	if err != nil {
		fatal(err)
	}
	lines := 0
	for idx, w := range p.Text {
		if name := p.SymbolAt(idx); name != "" {
			fmt.Printf("%s:\n", name)
		}
		fmt.Printf("  %06x: %08x  %s\n", p.WordAddr(idx), w, ppc.Disassemble(w))
		lines++
		if *limit > 0 && lines >= *limit {
			return
		}
	}
}

func disImage(img *core.Image, dictOnly bool, limit int) {
	fmt.Printf("%s: %s scheme, %d units, ratio %.3f\n",
		img.Name, img.Scheme, img.Units, img.Ratio())
	fmt.Printf("dictionary: %d entries, %d bytes\n", len(img.Entries), img.DictionaryBytes)
	for rank, e := range img.Entries {
		fmt.Printf("  #%-4d (%2d-bit codeword, %4d uses)", rank, img.Scheme.CodewordBits(rank), e.Uses)
		for _, w := range e.Words {
			fmt.Printf("  %s;", ppc.Disassemble(w))
		}
		fmt.Println()
		if limit > 0 && rank+1 >= limit && dictOnly {
			return
		}
	}
	if dictOnly {
		return
	}
	fmt.Println("stream:")
	rdr := codeword.NewReader(img.Scheme, img.Stream, img.Units)
	syms := map[int]string{}
	for _, s := range img.Symbols {
		syms[s.Word] = s.Name
	}
	lines := 0
	for u := 0; u < img.Units; {
		it, err := rdr.At(u)
		if err != nil {
			fatal(err)
		}
		if name, ok := syms[u]; ok {
			fmt.Printf("%s:\n", name)
		}
		if it.IsCodeword {
			fmt.Printf("  %06x: CODEWORD #%d\n", uint32(u)+img.Base, it.Rank)
		} else {
			fmt.Printf("  %06x: %s\n", uint32(u)+img.Base, ppc.Disassemble(it.Word))
		}
		u += it.Units
		lines++
		if limit > 0 && lines >= limit {
			return
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccdis:", err)
	os.Exit(1)
}

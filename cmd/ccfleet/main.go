// Command ccfleet manages shared (fleet-wide/ROM) dictionaries: build one
// over several programs, then compress each program against it.
//
// Usage:
//
//	ccfleet build -scheme baseline -o fleet.ppd a.ppx b.ppx c.ppx
//	ccfleet compress -dict fleet.ppd a.ppx b.ppx c.ppx
//	ccfleet compress -dict fleet.ppd -parallel 8 *.ppx
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/objfile"
	"repro/internal/program"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "compress":
		compress(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ccfleet build    [-scheme S] [-entrylen N] -o fleet.ppd prog.ppx...
  ccfleet compress [-scheme S] [-parallel N] -dict fleet.ppd [-o out.ppz] prog.ppx...
	(-o only with a single input; multiple inputs write <prog>.ppz each)`)
	os.Exit(2)
}

func readProgram(path string) *program.Program {
	p, err := loadProgram(path)
	if err != nil {
		fatal(err)
	}
	return p
}

func loadProgram(path string) (*program.Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := objfile.ReadProgram(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	schemeName := fs.String("scheme", "baseline", "codeword scheme: "+strings.Join(cli.SchemeNames(), ", "))
	entryLen := fs.Int("entrylen", 4, "maximum instructions per entry")
	out := fs.String("o", "fleet.ppd", "output dictionary path")
	fs.Parse(args)
	if fs.NArg() == 0 {
		usage()
	}
	scheme, err := cli.ParseScheme(*schemeName)
	if err != nil {
		fatal(err)
	}
	var progs []*program.Program
	for _, path := range fs.Args() {
		progs = append(progs, readProgram(path))
	}
	entries, err := core.BuildSharedDictionary(progs, core.Options{Scheme: scheme, MaxEntryLen: *entryLen})
	if err != nil {
		fatal(err)
	}
	g, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := objfile.WriteDictionary(g, entries); err != nil {
		fatal(err)
	}
	if err := g.Close(); err != nil {
		fatal(err)
	}
	bytes := codeword.DictBytes(lens(entries))
	fmt.Printf("shared dictionary over %d programs: %d entries, %d bytes -> %s\n",
		len(progs), len(entries), bytes, *out)
}

func compress(args []string) {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	schemeName := fs.String("scheme", "baseline", "codeword scheme: "+strings.Join(cli.SchemeNames(), ", "))
	dictPath := fs.String("dict", "", "shared dictionary (.ppd)")
	out := fs.String("o", "", "output .ppz (single input only; default input with .ppz suffix)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "bound on concurrent compressions")
	fs.Parse(args)
	if fs.NArg() == 0 || *dictPath == "" {
		usage()
	}
	if *out != "" && fs.NArg() > 1 {
		usage()
	}
	scheme, err := cli.ParseScheme(*schemeName)
	if err != nil {
		fatal(err)
	}
	df, err := os.Open(*dictPath)
	if err != nil {
		fatal(err)
	}
	entries, err := objfile.ReadDictionary(df)
	df.Close()
	if err != nil {
		fatal(err)
	}

	// Fan the fleet out on the bench engine's bounded pool; result lines
	// come back in input order regardless of completion order.
	inputs := fs.Args()
	lines := make([]string, len(inputs))
	err = bench.ParallelEach(context.Background(), *parallel, len(inputs), func(i int) error {
		in := inputs[i]
		p, err := loadProgram(in)
		if err != nil {
			return err
		}
		img, err := core.CompressFixed(p.Clone(), entries, core.Options{Scheme: scheme})
		if err != nil {
			return fmt.Errorf("%s: %w", in, err)
		}
		if err := core.Verify(p, img); err != nil {
			return fmt.Errorf("%s: verification failed: %w", in, err)
		}
		dst := *out
		if dst == "" {
			dst = strings.TrimSuffix(in, ".ppx") + ".ppz"
		}
		if err := writeImage(dst, img); err != nil {
			return err
		}
		lines[i] = fmt.Sprintf("%s: stream %d bytes (dictionary shared, %d entries) ratio-with-shared-dict %.3f -> %s",
			p.Name, img.StreamBytes, len(img.Entries),
			float64(img.StreamBytes)/float64(img.OriginalBytes), dst)
		return nil
	})
	for _, line := range lines {
		if line != "" {
			fmt.Println(line)
		}
	}
	if err != nil {
		fatal(err)
	}
}

func writeImage(dst string, img *core.Image) error {
	g, err := os.Create(dst)
	if err != nil {
		return err
	}
	if err := objfile.WriteImage(g, img); err != nil {
		g.Close()
		return err
	}
	return g.Close()
}

func lens(entries []dictionary.Entry) []int {
	out := make([]int, len(entries))
	for i, e := range entries {
		out[i] = len(e.Words)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccfleet:", err)
	os.Exit(1)
}

// Command ccfleet manages shared (fleet-wide/ROM) dictionaries: build one
// over several programs, then compress each program against it.
//
// Usage:
//
//	ccfleet build -scheme baseline -o fleet.ppd a.ppx b.ppx c.ppx
//	ccfleet compress -dict fleet.ppd -o a.ppz a.ppx
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/objfile"
	"repro/internal/program"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "compress":
		compress(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ccfleet build    [-scheme S] [-entrylen N] -o fleet.ppd prog.ppx...
  ccfleet compress [-scheme S] -dict fleet.ppd [-o out.ppz] prog.ppx`)
	os.Exit(2)
}

func readProgram(path string) *program.Program {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	p, err := objfile.ReadProgram(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return p
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	schemeName := fs.String("scheme", "baseline", "codeword scheme")
	entryLen := fs.Int("entrylen", 4, "maximum instructions per entry")
	out := fs.String("o", "fleet.ppd", "output dictionary path")
	fs.Parse(args)
	if fs.NArg() == 0 {
		usage()
	}
	scheme, err := cli.ParseScheme(*schemeName)
	if err != nil {
		fatal(err)
	}
	var progs []*program.Program
	for _, path := range fs.Args() {
		progs = append(progs, readProgram(path))
	}
	entries, err := core.BuildSharedDictionary(progs, core.Options{Scheme: scheme, MaxEntryLen: *entryLen})
	if err != nil {
		fatal(err)
	}
	g, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := objfile.WriteDictionary(g, entries); err != nil {
		fatal(err)
	}
	if err := g.Close(); err != nil {
		fatal(err)
	}
	bytes := codeword.DictBytes(lens(entries))
	fmt.Printf("shared dictionary over %d programs: %d entries, %d bytes -> %s\n",
		len(progs), len(entries), bytes, *out)
}

func compress(args []string) {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	schemeName := fs.String("scheme", "baseline", "codeword scheme")
	dictPath := fs.String("dict", "", "shared dictionary (.ppd)")
	out := fs.String("o", "", "output .ppz (default input with .ppz suffix)")
	fs.Parse(args)
	if fs.NArg() != 1 || *dictPath == "" {
		usage()
	}
	scheme, err := cli.ParseScheme(*schemeName)
	if err != nil {
		fatal(err)
	}
	df, err := os.Open(*dictPath)
	if err != nil {
		fatal(err)
	}
	entries, err := objfile.ReadDictionary(df)
	df.Close()
	if err != nil {
		fatal(err)
	}
	in := fs.Arg(0)
	p := readProgram(in)
	img, err := core.CompressFixed(p.Clone(), entries, core.Options{Scheme: scheme})
	if err != nil {
		fatal(err)
	}
	if err := core.Verify(p, img); err != nil {
		fatal(fmt.Errorf("verification failed: %w", err))
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(in, ".ppx") + ".ppz"
	}
	g, err := os.Create(dst)
	if err != nil {
		fatal(err)
	}
	if err := objfile.WriteImage(g, img); err != nil {
		fatal(err)
	}
	if err := g.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: stream %d bytes (dictionary shared, %d entries) ratio-with-shared-dict %.3f -> %s\n",
		p.Name, img.StreamBytes, len(img.Entries),
		float64(img.StreamBytes)/float64(img.OriginalBytes), dst)
}

func lens(entries []dictionary.Entry) []int {
	out := make([]int, len(entries))
	for i, e := range entries {
		out[i] = len(e.Words)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccfleet:", err)
	os.Exit(1)
}

// Command ccgen generates the synthetic SPEC CINT95 stand-in corpus as
// .ppx object files.
//
// Usage:
//
//	ccgen -out corpus/          # all eight benchmarks
//	ccgen -out corpus/ gcc li   # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/objfile"
	"repro/internal/synth"
)

func main() {
	out := flag.String("out", ".", "output directory")
	src := flag.Bool("src", false, "print each benchmark's generated pseudo-C source instead of writing .ppx")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = synth.BenchmarkNames()
	}
	if *src {
		for _, name := range names {
			prof, err := synth.ProfileFor(name)
			if err != nil {
				fatal(err)
			}
			m, err := synth.GenerateModule(prof)
			if err != nil {
				fatal(err)
			}
			fmt.Print(synth.Print(m))
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range names {
		p, err := synth.Generate(name)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, name+".ppx")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := objfile.WriteProgram(f, p); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%-10s %6d instructions  %7d text bytes  -> %s\n",
			name, len(p.Text), p.SizeBytes(), path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccgen:", err)
	os.Exit(1)
}

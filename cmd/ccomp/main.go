// Command ccomp compresses a .ppx object file into a .ppz image with any
// registered codec, verifies it against the original, and prints the size
// breakdown. The output image is self-describing: its frame records the
// codec, so ccrun/ccdis need no scheme flag to open it.
//
// Usage:
//
//	ccomp -list-codecs                         # registered codecs
//	ccomp -scheme nibble -o prog.ppz prog.ppx
//	ccomp -scheme ccrp prog.ppx                # non-dictionary codecs too
//	ccomp -scheme baseline -entries 1024 -entrylen 8 prog.ppx
//	ccomp -scheme nibble -audit prog.ppx       # per-function byte provenance
//	ccomp -scheme nibble -auditdiff prog.ppx   # per-function delta vs native
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/sizeaudit"
)

func main() {
	schemeName := flag.String("scheme", "baseline", "codec name (see -list-codecs)")
	entries := flag.Int("entries", 0, "dictionary entry budget (0 = scheme maximum; dictionary codecs only)")
	entryLen := flag.Int("entrylen", 4, "maximum instructions per dictionary entry (dictionary codecs only)")
	out := flag.String("o", "", "output .ppz path (default: input with .ppz suffix)")
	audit := flag.Bool("audit", false, "print the byte-provenance audit: every compressed byte attributed to its source function and overhead class")
	auditDiff := flag.Bool("auditdiff", false, "print per-function size deltas, native vs compressed")
	listCodecs := flag.Bool("list-codecs", false, "list the registered codecs (method byte, name, aliases) and exit")
	flag.Parse()

	if *listCodecs {
		fmt.Println("method  name      aliases")
		for _, c := range codec.Codecs() {
			fmt.Printf("  0x%02x  %-8s  %s\n", uint8(c.Method()), c.Name(),
				strings.Join(codec.Aliases(c.Name()), ", "))
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccomp [flags] prog.ppx")
		os.Exit(2)
	}
	in := flag.Arg(0)
	cd, err := cli.ParseCodec(*schemeName)
	if err != nil {
		fatal(err)
	}

	f, err := os.Open(in)
	if err != nil {
		fatal(err)
	}
	p, err := objfile.ReadProgram(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var em *sizeaudit.Emitter
	if *audit || *auditDiff {
		em = sizeaudit.NewProgramEmitter(p)
	}
	img, err := cd.Compress(p, codec.Options{
		MaxEntries: *entries, MaxEntryLen: *entryLen, Audit: em,
	})
	if err != nil {
		fatal(err)
	}
	if err := cd.Verify(p, img); err != nil {
		fatal(fmt.Errorf("verification failed: %w", err))
	}

	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(in, ".ppx") + ".ppz"
	}
	g, err := os.Create(dst)
	if err != nil {
		fatal(err)
	}
	if err := objfile.WriteImage(g, img); err != nil {
		fatal(err)
	}
	if err := g.Close(); err != nil {
		fatal(err)
	}

	fmt.Printf("%s: %s codec (method 0x%02x)\n", p.Name, cd.Name(), uint8(cd.Method()))
	fmt.Printf("  original         %8d bytes (%d instructions)\n", p.SizeBytes(), p.SizeBytes()/4)
	if di, ok := img.(*core.Image); ok {
		st := di.Stats
		fmt.Printf("  stream           %8d bytes (%d units of %d bits)\n", di.StreamBytes, di.Units, di.Scheme.UnitBits())
		fmt.Printf("  dictionary       %8d bytes (%d entries)\n", di.DictionaryBytes, len(di.Entries))
		fmt.Printf("  compressed       %8d bytes\n", di.CompressedBytes())
		fmt.Printf("  compression ratio %.3f (%.1f%% reduction)\n", di.Ratio(), 100*(1-di.Ratio()))
		fmt.Printf("  codewords %d (covering %d instructions), raw %d, far-branch stubs %d\n",
			st.CodewordItems, st.CoveredInsns, st.RawItems, st.StubBranches)
	} else {
		fmt.Printf("  compressed       %8d bytes\n", img.CompressedBytes())
		fmt.Printf("  compression ratio %.3f (%.1f%% reduction)\n", img.Ratio(), 100*(1-img.Ratio()))
	}
	fmt.Printf("  verified: structural equivalence OK -> %s\n", dst)

	if em != nil {
		a := em.Finish(p.Name, cd.Name(), img.CompressedBytes(), p.SizeBytes())
		if err := a.Check(); err != nil {
			fatal(err)
		}
		fmt.Println()
		if *audit {
			if err := a.WriteTable(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *auditDiff {
			if err := sizeaudit.Diff(sizeaudit.AuditProgram(p), a).WriteTable(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccomp:", err)
	os.Exit(1)
}

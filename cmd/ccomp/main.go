// Command ccomp compresses a .ppx object file into a .ppz image, verifies
// it against the original, and prints the size breakdown.
//
// Usage:
//
//	ccomp -scheme nibble -o prog.ppz prog.ppx
//	ccomp -scheme baseline -entries 1024 -entrylen 8 prog.ppx
//	ccomp -scheme nibble -audit prog.ppx       # per-function byte provenance
//	ccomp -scheme nibble -auditdiff prog.ppx   # per-function delta vs native
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/sizeaudit"
)

func main() {
	schemeName := flag.String("scheme", "baseline", "codeword scheme: baseline, onebyte, nibble, liao")
	entries := flag.Int("entries", 0, "dictionary entry budget (0 = scheme maximum)")
	entryLen := flag.Int("entrylen", 4, "maximum instructions per dictionary entry")
	out := flag.String("o", "", "output .ppz path (default: input with .ppz suffix)")
	audit := flag.Bool("audit", false, "print the byte-provenance audit: every compressed byte attributed to its source function and overhead class")
	auditDiff := flag.Bool("auditdiff", false, "print per-function size deltas, native vs compressed")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccomp [flags] prog.ppx")
		os.Exit(2)
	}
	in := flag.Arg(0)
	scheme, err := cli.ParseScheme(*schemeName)
	if err != nil {
		fatal(err)
	}

	f, err := os.Open(in)
	if err != nil {
		fatal(err)
	}
	p, err := objfile.ReadProgram(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var em *sizeaudit.Emitter
	if *audit || *auditDiff {
		em = sizeaudit.NewProgramEmitter(p)
	}
	img, err := core.Compress(p.Clone(), core.Options{
		Scheme: scheme, MaxEntries: *entries, MaxEntryLen: *entryLen, Audit: em,
	})
	if err != nil {
		fatal(err)
	}
	if err := core.Verify(p, img); err != nil {
		fatal(fmt.Errorf("verification failed: %w", err))
	}

	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(in, ".ppx") + ".ppz"
	}
	g, err := os.Create(dst)
	if err != nil {
		fatal(err)
	}
	if err := objfile.WriteImage(g, img); err != nil {
		fatal(err)
	}
	if err := g.Close(); err != nil {
		fatal(err)
	}

	st := img.Stats
	fmt.Printf("%s: %s scheme\n", p.Name, img.Scheme)
	fmt.Printf("  original         %8d bytes (%d instructions)\n", img.OriginalBytes, img.OriginalBytes/4)
	fmt.Printf("  stream           %8d bytes (%d units of %d bits)\n", img.StreamBytes, img.Units, img.Scheme.UnitBits())
	fmt.Printf("  dictionary       %8d bytes (%d entries)\n", img.DictionaryBytes, len(img.Entries))
	fmt.Printf("  compressed       %8d bytes\n", img.CompressedBytes())
	fmt.Printf("  compression ratio %.3f (%.1f%% reduction)\n", img.Ratio(), 100*(1-img.Ratio()))
	fmt.Printf("  codewords %d (covering %d instructions), raw %d, far-branch stubs %d\n",
		st.CodewordItems, st.CoveredInsns, st.RawItems, st.StubBranches)
	fmt.Printf("  verified: structural equivalence OK -> %s\n", dst)

	if em != nil {
		a := em.Finish(p.Name, img.Scheme.String(), img.CompressedBytes(), img.OriginalBytes)
		if err := a.Check(); err != nil {
			fatal(err)
		}
		fmt.Println()
		if *audit {
			if err := a.WriteTable(os.Stdout); err != nil {
				fatal(err)
			}
		}
		if *auditDiff {
			if err := sizeaudit.Diff(sizeaudit.AuditProgram(p), a).WriteTable(os.Stdout); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccomp:", err)
	os.Exit(1)
}

// Command ccreport renders a run bundle — or a pairwise diff of two
// bundles — as a standalone, dependency-free HTML page or an aligned
// text report.
//
// Usage:
//
//	ccreport bundledir              # HTML report of one bundle to stdout
//	ccreport -o report.html dir     # same, to a file
//	ccreport -text dir              # aligned text instead of HTML
//	ccreport -diff olddir newdir    # pairwise diff report
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	var (
		out  = flag.String("o", "-", "output file (- = stdout)")
		text = flag.Bool("text", false, "render aligned text instead of HTML")
		diff = flag.Bool("diff", false, "compare two bundles: ccreport -diff OLD NEW")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: ccreport [-o out] [-text] BUNDLEDIR\n       ccreport [-o out] [-text] -diff OLDDIR NEWDIR\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	r, err := buildReport(*diff, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccreport:", err)
		os.Exit(1)
	}
	render := r.WriteHTML
	if *text {
		render = r.WriteText
	}
	if err := obs.WriteTextFile(*out, func(w io.Writer) error { return render(w) }); err != nil {
		fmt.Fprintln(os.Stderr, "ccreport:", err)
		os.Exit(1)
	}
}

func buildReport(diff bool, args []string) (*obs.Report, error) {
	if diff {
		if len(args) != 2 {
			return nil, fmt.Errorf("-diff needs exactly two bundle directories, got %d", len(args))
		}
		old, err := obs.Open(args[0])
		if err != nil {
			return nil, fmt.Errorf("old bundle %s: %w", args[0], err)
		}
		new, err := obs.Open(args[1])
		if err != nil {
			return nil, fmt.Errorf("new bundle %s: %w", args[1], err)
		}
		return obs.DiffReport(obs.NewDiff(old, new)), nil
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("need exactly one bundle directory, got %d", len(args))
	}
	b, err := obs.Open(args[0])
	if err != nil {
		return nil, fmt.Errorf("bundle %s: %w", args[0], err)
	}
	return obs.BundleReport(b), nil
}

// Command ccrun executes a .ppx program or a .ppz compressed image on the
// simulator and reports execution statistics.
//
// Usage:
//
//	ccrun prog.ppx
//	ccrun -steps 1e8 -cache 1024 prog.ppz
//	ccrun -cache 1024 -profile run.json prog.ppz   # JSON execution profile
//	ccrun -guestprof prog.ppz                      # per-function cycle table
//	ccrun -guestprof -folded out.folded prog.ppz   # flamegraph input
//	ccrun -sampledprof prog.ppz                    # fast-path sampled profile
//	ccrun -sizeaudit prog.ppz                      # static byte-provenance audit
//	ccrun -bundle out.bundle prog.ppz              # everything, as one run bundle
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cache"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/guestprof"
	"repro/internal/machine"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/ppc"
	"repro/internal/sizeaudit"
	"repro/internal/stats"
)

func main() {
	maxSteps := flag.Int64("steps", 200_000_000, "step budget")
	cacheSize := flag.Int("cache", 0, "simulate an I-cache of this many bytes (direct-mapped, 32B lines)")
	trace := flag.Int("trace", 0, "print the first N executed instructions to stderr")
	profile := flag.String("profile", "", "write a JSON execution profile (hot dictionary entries, expansion histogram, cache miss curve) to this path; \"-\" means stdout")
	sample := flag.Int64("sample", 4096, "with -profile and -cache, record a cache miss-curve point every N line accesses")
	guestProf := flag.Bool("guestprof", false, "attribute cycles to guest functions (exact, symbolized); prints a top-20 table to stderr and adds a \"guest\" section to -profile output")
	sampledProf := flag.Bool("sampledprof", false, "attribute cycles to guest functions by epoch-sampling the fused fast path (flat-only, no slowdown); prints the fast-path summary and top table to stderr and fills the \"guest\" section of -profile output")
	sizeAudit := flag.Bool("sizeaudit", false, "for .ppz inputs: print the image's byte-provenance audit to stderr and add a \"size\" section to -profile output")
	folded := flag.String("folded", "", "with -guestprof, write folded call stacks (flamegraph input) to this path; \"-\" means stdout")
	topN := flag.Int("top", 20, "with -guestprof, rows in the per-function table (0 = all)")
	bundleDir := flag.String("bundle", "", "write a run bundle (stats, execution profile, guest profile, size audit) to this directory; one flag capturing what -profile/-guestprof/-folded/-sizeaudit produce piecemeal")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccrun [flags] prog.{ppx,ppz}")
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var cpu *machine.CPU
	var img *core.Image
	var sym *guestprof.SymTab
	var sa *sizeaudit.Audit
	id := obs.Identity{Bench: benchName(path)}
	wantBundle := *bundleDir != ""
	wantGuest := *guestProf || *folded != "" || (wantBundle && !*sampledProf)
	if *sampledProf {
		// The sampled profiler is the fast path observed from epoch
		// boundaries; hooks that force the instrumented Step path defeat
		// its point, so the combinations are rejected rather than silently
		// measured slow.
		switch {
		case *guestProf || *folded != "":
			fatal(fmt.Errorf("-sampledprof and -guestprof are mutually exclusive (exact profiling runs the instrumented path)"))
		case *cacheSize > 0:
			fatal(fmt.Errorf("-sampledprof cannot run with -cache (cache simulation needs the per-fetch hook)"))
		case *trace > 0:
			fatal(fmt.Errorf("-sampledprof cannot run with -trace (tracing needs the per-exec hook)"))
		}
	}
	wantSym := wantGuest || *sampledProf
	switch {
	case strings.HasSuffix(path, ".ppz"):
		// The frame's method byte selects the codec; no scheme flag needed.
		oi, err := objfile.OpenImage(f)
		if err != nil {
			fatal(err)
		}
		img, _ = oi.(*core.Image)
		id.Method = uint8(oi.Method())
		if c, err := codec.ByMethod(oi.Method()); err == nil {
			id.Codec = c.Name()
		}
		if img != nil && img.Name != "" {
			id.Bench = img.Name
		}
		if *sizeAudit || wantBundle {
			// The audit reconstructs from the image's serialized sideband
			// (the dictionary images' marks), so no recompression is needed.
			// A bundle simply omits the section when the image carries no
			// marks; the explicit flag keeps its hard error.
			aud, ok := oi.(codec.Auditable)
			if !ok && *sizeAudit {
				fatal(fmt.Errorf("-sizeaudit: %T images carry no marks audit; use ccomp -audit on the source .ppx", oi))
			}
			if ok {
				if sa, err = aud.SizeAudit(); err != nil {
					fatal(err)
				}
			}
		}
		ex, ok := oi.(codec.Executable)
		if !ok {
			fatal(fmt.Errorf("image codec cannot execute (%T is a size comparator)", oi))
		}
		cpu, err = ex.NewMachine()
		if err != nil {
			fatal(err)
		}
		if wantSym {
			// Compressed runs symbolize through the image's address map, so
			// cycles land on the original program's function names.
			if img == nil {
				if wantBundle && !*guestProf && *folded == "" {
					// Bundles degrade gracefully: no address map, no guest
					// section.
					wantSym, wantGuest = false, false
				} else {
					fatal(fmt.Errorf("guest profiling needs a dictionary image; %T carries no address map", oi))
				}
			} else if sym, err = img.GuestSymTab(); err != nil {
				fatal(err)
			}
		}
	default:
		p, err := objfile.ReadProgram(f)
		if err != nil {
			fatal(err)
		}
		if *sizeAudit {
			fatal(fmt.Errorf("-sizeaudit needs a compressed .ppz image; %s is uncompressed", path))
		}
		id.Codec = "native"
		if p.Name != "" {
			id.Bench = p.Name
		}
		cpu, err = machine.NewForProgram(p)
		if err != nil {
			fatal(err)
		}
		if wantSym {
			sym = guestprof.NewProgramSymTab(p)
		}
	}

	var col *obs.Collector
	if wantBundle {
		col = obs.NewCollector(id)
	}

	var rec *stats.Recorder
	var sp *guestprof.SampledProfiler
	wantProfile := *profile != "" || wantBundle
	if *sampledProf {
		// One recorder serves both sampling and -profile; unlike cpu.Record
		// it is not a hook, so the run stays on the fused fast path.
		rec = col.Recorder()
		if rec == nil {
			rec = stats.New()
		}
		sp = guestprof.NewSampled(sym)
		cpu.EnableEpochSampling(rec, sp)
	} else if wantProfile {
		rec = col.Recorder()
		if rec == nil {
			rec = stats.New()
		}
		cpu.Record = rec
		if img != nil {
			cpu.EnableHeat(len(img.Entries))
		}
	}

	var ic *cache.Cache
	var smp *cache.Sampler
	if *cacheSize > 0 {
		ic, err = cache.New(cache.Config{SizeBytes: *cacheSize, LineBytes: 32, Assoc: 1})
		if err != nil {
			fatal(err)
		}
		cpu.TraceFetch = ic.Access
		if wantProfile {
			smp, err = cache.NewSampler(ic, *sample)
			if err != nil {
				fatal(err)
			}
			cpu.TraceFetch = smp.Access
		}
	}

	var gp *guestprof.Profiler
	if wantGuest {
		gp = guestprof.New(sym)
		gp.ObserveCache(ic)
		gp.Attach(cpu)
	}

	if *trace > 0 {
		left := *trace
		cpu.TraceExec = func(cia uint32, word uint32) {
			if left > 0 {
				fmt.Fprintf(os.Stderr, "  %08x: %s\n", cia, ppc.Disassemble(word))
				left--
			}
		}
	}

	status, err := cpu.Run(*maxSteps)
	if err != nil {
		fatal(err)
	}
	// Fold the final partial telemetry epoch so the sampled profile and
	// heat map cover the whole run.
	cpu.FlushEpoch()
	os.Stdout.Write(cpu.Output())
	st := cpu.Stats
	fmt.Fprintf(os.Stderr, "exit status %d\n", status)
	fmt.Fprintf(os.Stderr, "steps %d, taken branches %d, syscalls %d\n", st.Steps, st.TakenBranches, st.Syscalls)
	fmt.Fprintf(os.Stderr, "program-memory fetches %d (%d bytes), dictionary expansions %d\n",
		st.MemFetches, st.FetchedBytes, st.Expanded)
	fmt.Fprintf(os.Stderr, "fastpath: %d/%d steps (coverage %.4f), bails: %s\n",
		cpu.Fast.Steps, st.Steps, cpu.Fast.Coverage(st.Steps), cpu.Fast.BailSummary())
	if cpu.Fast.Epochs > 0 {
		fmt.Fprintf(os.Stderr, "fastpath: %d telemetry epochs drained\n", cpu.Fast.Epochs)
	}
	if ic != nil {
		fmt.Fprintf(os.Stderr, "icache: %d accesses, %d misses (%.2f%%)\n",
			ic.Stats.Accesses, ic.Stats.Misses, 100*ic.Stats.MissRate())
	}

	if sa != nil && *sizeAudit {
		fmt.Fprintln(os.Stderr)
		if err := sa.WriteTable(os.Stderr); err != nil {
			fatal(err)
		}
	}

	var guest *guestprof.Profile
	var foldedText string
	if gp != nil {
		guest = gp.Profile(id.Bench)
		var sb strings.Builder
		if err := gp.WriteFolded(&sb); err != nil {
			fatal(err)
		}
		foldedText = sb.String()
		if *guestProf {
			fmt.Fprintln(os.Stderr)
			if err := guest.WriteTop(os.Stderr, *topN); err != nil {
				fatal(err)
			}
		}
		if *folded != "" {
			if err := obs.WriteTextFile(*folded, func(w io.Writer) error { return gp.WriteFolded(w) }); err != nil {
				fatal(err)
			}
		}
	}
	if sp != nil {
		guest = sp.Profile(id.Bench)
		fmt.Fprintln(os.Stderr)
		if err := guest.WriteTop(os.Stderr, *topN); err != nil {
			fatal(err)
		}
		// The reconstructed heat map feeds the profile's hot-entry section
		// exactly as the slow path's heat hook would have; assigning it
		// after Run keeps the run itself unhooked.
		cpu.Heat = sp.Heat()
	}

	if wantProfile {
		var curve []cache.SamplePoint
		if smp != nil {
			curve = smp.Points
		}
		prof := core.CollectRunProfile(img, cpu, rec.Snapshot(), ic, curve)
		if prof.Name == "" {
			prof.Name = id.Bench
		}
		prof.Guest = guest
		prof.Size = sa
		if *profile != "" {
			if err := obs.WriteJSONFile(*profile, prof); err != nil {
				fatal(err)
			}
		}
		col.SetProfile(prof)
		col.SetGuest(guest, foldedText)
		col.SetAudit(sa)
	}
	if err := col.Write(*bundleDir); err != nil {
		fatal(err)
	}
	if wantBundle {
		fmt.Fprintf(os.Stderr, "bundle: %s\n", *bundleDir)
	}
}

// benchName strips the directory and the .ppx/.ppz extension: the default
// run identity when the object file carries no name of its own.
func benchName(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(base, ".ppx")
	base = strings.TrimSuffix(base, ".ppz")
	return base
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccrun:", err)
	os.Exit(1)
}

package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/synth"
)

// buildCCRun compiles the ccrun binary once per test run.
func buildCCRun(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ccrun")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ccrun: %v\n%s", err, out)
	}
	return bin
}

// writeImage compresses a synth benchmark under the nibble scheme and
// serializes it as a .ppz fixture.
func writeImage(t *testing.T, dir, bench string) string {
	t.Helper()
	p, err := synth.Generate(bench)
	if err != nil {
		t.Fatal(err)
	}
	img, err := core.Compress(p, core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, bench+".ppz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := objfile.WriteImage(f, img); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBundleMatchesLegacyFlags is the acceptance check for the -bundle
// flag: a bundle's stats, profile, guest, and audit sections must be equal
// to what the legacy per-flag outputs (-profile, -folded, -sizeaudit)
// produce for the same run.
func TestBundleMatchesLegacyFlags(t *testing.T) {
	bin := buildCCRun(t)
	dir := t.TempDir()
	ppz := writeImage(t, dir, "compress")

	legacyProf := filepath.Join(dir, "legacy.json")
	legacyFolded := filepath.Join(dir, "legacy.folded")
	legacy := exec.Command(bin, "-profile", legacyProf, "-guestprof", "-folded", legacyFolded, "-sizeaudit", ppz)
	if out, err := legacy.CombinedOutput(); err != nil {
		t.Fatalf("legacy run: %v\n%s", err, out)
	}

	bundleDir := filepath.Join(dir, "bundle")
	bundled := exec.Command(bin, "-bundle", bundleDir, ppz)
	if out, err := bundled.CombinedOutput(); err != nil {
		t.Fatalf("bundle run: %v\n%s", err, out)
	}

	b, err := obs.Open(bundleDir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Identity.Bench != "compress" || b.Identity.Codec != "nibble" || b.Identity.Method != 2 {
		t.Errorf("bundle identity = %+v", b.Identity)
	}

	// The legacy -profile file embeds the guest profile and size audit as
	// sections of the run profile; the bundle stores them as sections of
	// their own. Equality is per component.
	data, err := os.ReadFile(legacyProf)
	if err != nil {
		t.Fatal(err)
	}
	var want core.RunProfile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("legacy profile JSON: %v", err)
	}
	if !reflect.DeepEqual(b.Guest, want.Guest) {
		t.Errorf("bundle guest profile differs from legacy -profile guest section:\n got %+v\nwant %+v", b.Guest, want.Guest)
	}
	if !reflect.DeepEqual(b.Audit, want.Size) {
		t.Errorf("bundle audit differs from legacy -profile size section")
	}
	want.Guest, want.Size = nil, nil
	if b.Profile == nil {
		t.Fatal("bundle has no profile section")
	}
	if !reflect.DeepEqual(*b.Profile, want) {
		t.Errorf("bundle profile differs from legacy -profile output:\n got %+v\nwant %+v", *b.Profile, want)
	}

	folded, err := os.ReadFile(legacyFolded)
	if err != nil {
		t.Fatal(err)
	}
	if b.GuestFolded != string(folded) {
		t.Errorf("bundle folded stacks differ from legacy -folded output:\n got %q\nwant %q", b.GuestFolded, folded)
	}

	// The stats snapshot is what CollectRunProfile consumed; the same run
	// must yield the same counters either way.
	if b.Stats == nil {
		t.Fatal("bundle has no stats section")
	}
	if got := b.Stats.Counters["machine.steps"]; got != want.Steps {
		t.Errorf("bundle stats machine.steps = %d, profile says %d", got, want.Steps)
	}
}

// TestBundleNativeProgram pins the .ppx path: bundles work for native runs
// too, with codec "native" and no audit section.
func TestBundleNativeProgram(t *testing.T) {
	bin := buildCCRun(t)
	dir := t.TempDir()
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	ppx := filepath.Join(dir, "compress.ppx")
	f, err := os.Create(ppx)
	if err != nil {
		t.Fatal(err)
	}
	if err := objfile.WriteProgram(f, p); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	bundleDir := filepath.Join(dir, "bundle")
	cmd := exec.Command(bin, "-bundle", bundleDir, ppx)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("ccrun -bundle on .ppx: %v\n%s", err, out)
	}
	b, err := obs.Open(bundleDir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Identity.Codec != "native" || b.Identity.Bench != "compress" {
		t.Errorf("native bundle identity = %+v", b.Identity)
	}
	if b.Profile == nil || b.Guest == nil || b.GuestFolded == "" {
		t.Error("native bundle missing profile/guest sections")
	}
	if b.Audit != nil {
		t.Error("native bundle should carry no size audit")
	}
}

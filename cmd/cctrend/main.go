// Command cctrend is the perf-history ledger's front end: it appends
// benchmarking runs to the append-only JSONL ledger (internal/perfhist)
// and renders the ledger as a standalone, dependency-free HTML timeline —
// per-metric sparklines with 95% CI bands, changepoint marks, and a
// worst-regressions table — or as aligned text.
//
// Usage:
//
//	cctrend ledger.jsonl                 # HTML trend report to stdout
//	cctrend -o trend.html ledger.jsonl   # same, to a file
//	cctrend -text ledger.jsonl           # aligned text instead of HTML
//	cctrend -append BENCH.json -commit SHA -time 2026-08-08T12:00:00Z ledger.jsonl
//
// Append mode validates the entry before writing and writes it as one
// atomic line, so a broken report or interrupted run can never corrupt
// the ledger. Commit and timestamp are caller-supplied (like the
// identity fields of obs bundles) so replaying a run appends a
// byte-identical line; CPU defaults to the report's own cpu header and
// the Go version to the running toolchain's.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/benchfmt"
	"repro/internal/obs"
	"repro/internal/perfhist"
)

func main() {
	var (
		out     = flag.String("o", "-", "output file for render mode (- = stdout)")
		text    = flag.Bool("text", false, "render aligned text instead of HTML")
		appendF = flag.String("append", "", "append mode: BENCH_*.json report to add to the ledger")
		commit  = flag.String("commit", "", "append mode: git commit the report was measured at (required)")
		timeF   = flag.String("time", "", "append mode: RFC3339 timestamp of the run (required)")
		cpu     = flag.String("cpu", "", "append mode: CPU identity (default: the report's cpu header)")
		gover   = flag.String("goversion", "", "append mode: toolchain identity (default: runtime.Version())")
		options = flag.String("options", "", "append mode: codec options fingerprint")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: cctrend [-o out] [-text] LEDGER.jsonl\n       cctrend -append BENCH.json -commit SHA -time RFC3339 [-cpu s] [-goversion v] [-options h] LEDGER.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	ledger := flag.Arg(0)

	var err error
	if *appendF != "" {
		err = runAppend(ledger, *appendF, *commit, *timeF, *cpu, *gover, *options)
	} else {
		err = runRender(ledger, *out, *text)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cctrend:", err)
		os.Exit(1)
	}
}

func runAppend(ledger, reportPath, commit, timestamp, cpu, gover, options string) error {
	if commit == "" || timestamp == "" {
		return fmt.Errorf("-append requires -commit and -time")
	}
	rep, err := benchfmt.ReadFile(reportPath)
	if err != nil {
		return err
	}
	if cpu == "" {
		cpu = rep.CPU
	}
	if gover == "" {
		gover = runtime.Version()
	}
	return perfhist.Append(ledger, &perfhist.Entry{
		Schema:      perfhist.SchemaVersion,
		Commit:      commit,
		Timestamp:   timestamp,
		GoVersion:   gover,
		CPU:         cpu,
		OptionsHash: options,
		Report:      rep,
	})
}

func runRender(ledger, out string, text bool) error {
	entries, err := perfhist.Load(ledger)
	if err != nil {
		return err
	}
	r := perfhist.TrendReport(entries)
	render := r.WriteHTML
	if text {
		render = r.WriteText
	}
	return obs.WriteTextFile(out, func(w io.Writer) error { return render(w) })
}

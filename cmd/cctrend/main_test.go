package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/perfhist"
)

// writeReport drops a minimal BENCH_*.json with the given ns/op samples.
func writeReport(t *testing.T, dir, name string, ns []float64) string {
	t.Helper()
	b := benchfmt.Benchmark{Name: "BenchmarkCompressedExecution",
		NsPerOp: benchfmt.NewDist(ns).Mean}
	if len(ns) > 1 {
		b.Samples = map[string][]float64{benchfmt.MetricNs: ns}
	}
	rep := benchfmt.Report{Goos: "linux", CPU: "Test CPU",
		Benchmarks: []benchfmt.Benchmark{b}}
	data, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAppendThenRender(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "ledger.jsonl")

	runs := []struct {
		commit, ts string
		ns         []float64
	}{
		{"aaaaaaa1111", "2026-08-01T10:00:00Z", []float64{1300, 1310, 1305}},
		{"bbbbbbb2222", "2026-08-02T10:00:00Z", []float64{1295, 1305, 1300}},
		{"ccccccc3333", "2026-08-03T10:00:00Z", []float64{780, 785, 782}},
	}
	for i, r := range runs {
		rep := writeReport(t, dir, "bench.json", r.ns)
		if err := runAppend(ledger, rep, r.commit, r.ts, "", "go1.24.0", ""); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	entries, err := perfhist.Load(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("ledger holds %d entries, want 3", len(entries))
	}
	// CPU defaulted from the report header, Go version passed through.
	if entries[0].CPU != "Test CPU" || entries[0].GoVersion != "go1.24.0" {
		t.Fatalf("identity: %+v", entries[0])
	}

	html := filepath.Join(dir, "trend.html")
	if err := runRender(ledger, html, false); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(html)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"perf trend: 3 ledger entries", "<svg", "#e34948"} {
		if !strings.Contains(string(got), want) {
			t.Errorf("trend HTML missing %q", want)
		}
	}

	// Text render of the same ledger is deterministic across calls.
	txt1 := filepath.Join(dir, "a.txt")
	txt2 := filepath.Join(dir, "b.txt")
	if err := runRender(ledger, txt1, true); err != nil {
		t.Fatal(err)
	}
	if err := runRender(ledger, txt2, true); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(txt1)
	b2, _ := os.ReadFile(txt2)
	if string(b1) != string(b2) {
		t.Error("text renders differ")
	}
	if !strings.Contains(string(b1), "@ccccccc") {
		t.Errorf("text render does not flag the changepoint commit:\n%s", b1)
	}
}

func TestAppendRequiresIdentity(t *testing.T) {
	dir := t.TempDir()
	ledger := filepath.Join(dir, "ledger.jsonl")
	rep := writeReport(t, dir, "bench.json", []float64{100})
	if err := runAppend(ledger, rep, "", "2026-08-01T10:00:00Z", "", "", ""); err == nil {
		t.Error("append without -commit accepted")
	}
	if err := runAppend(ledger, rep, "abc", "", "", "", ""); err == nil {
		t.Error("append without -time accepted")
	}
	if err := runAppend(ledger, rep, "abc", "not-a-time", "", "", ""); err == nil {
		t.Error("append with junk -time accepted")
	}
}

// Command experiments regenerates every table and figure of the paper's
// evaluation (plus the extension experiments) as text tables.
//
// Usage:
//
//	experiments            # run everything, paper order
//	experiments -run fig5  # run one experiment
//	experiments -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	runID := flag.String("run", "", "run only the experiment with this id")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	corpus := bench.NewCorpus()
	run := func(r bench.Runner) error {
		t0 := time.Now()
		tab, err := r.Run(corpus)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		if *csv {
			fmt.Printf("# == %s: %s ==\n%s\n", tab.ID, tab.Title, tab.RenderCSV())
			return nil
		}
		fmt.Print(tab.Render())
		fmt.Printf("(%s in %v)\n\n", r.ID, time.Since(t0).Round(time.Millisecond))
		return nil
	}

	if *runID != "" {
		r, ok := bench.Find(*runID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *runID)
			os.Exit(2)
		}
		if err := run(r); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, r := range bench.Experiments {
		if err := run(r); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// Command experiments regenerates every table and figure of the paper's
// evaluation (plus the extension experiments) as text tables.
//
// Usage:
//
//	experiments                  # run everything, paper order
//	experiments -run fig5,fig6   # run selected experiments
//	experiments -parallel 8      # bound the worker pool (default GOMAXPROCS)
//	experiments -json            # machine-readable report with per-phase stats
//	experiments -timeout 2m      # cancel the run after a deadline
//	experiments -list            # list experiment ids
//	experiments -trace out.json  # write a Chrome trace-event file of the run
//	experiments -pprof :6060     # serve net/http/pprof, live counters, /metrics
//	experiments -guestprof dir/  # paired native/compressed guest profiles per benchmark
//	experiments -sizeaudit dir/  # per-encoding byte-provenance audits per benchmark
//
// Output is deterministic at every -parallel setting. The process exits
// non-zero if any experiment fails.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
)

// jsonExperiment is one experiment in the -json report.
type jsonExperiment struct {
	ID      string         `json:"id"`
	Title   string         `json:"title"`
	Columns []string       `json:"columns,omitempty"`
	Rows    [][]string     `json:"rows,omitempty"`
	Note    string         `json:"note,omitempty"`
	Error   string         `json:"error,omitempty"`
	WallMS  float64        `json:"wall_ms"`
	Stats   stats.Snapshot `json:"stats"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Parallel    int              `json:"parallel"`
	Experiments []jsonExperiment `json:"experiments"`
	Totals      stats.Snapshot   `json:"totals"`
	WallMS      float64          `json:"wall_ms"`
}

func main() {
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all, paper order)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report (tables + per-phase stats)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "bound on concurrently executing work (runners and their rows); 1 = sequential")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = no deadline)")
	showStats := flag.Bool("stats", false, "print each experiment's counter/phase summary after its table")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of the run (open in chrome://tracing or Perfetto)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and the live stats snapshot (expvar \"stats\") on this address, e.g. :6060")
	guestDir := flag.String("guestprof", "", "write paired native/compressed guest profiles (JSON + folded flamegraph stacks) for every benchmark into this directory")
	auditDir := flag.String("sizeaudit", "", "write per-encoding byte-provenance audits (JSON + CSV + folded) for every benchmark into this directory")
	bundleDir := flag.String("bundle", "", "write run bundles into this directory: one per benchmark under the paper's nibble options (<bench>.nibble/) plus experiments/ holding the whole run's stats and trace; one flag capturing what -trace/-guestprof/-sizeaudit produce piecemeal")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		fmt.Printf("\nencodings (codec registry): %s\n", strings.Join(bench.AuditEncodings, ", "))
		return
	}

	var ids []string
	if *runIDs != "" {
		for _, id := range strings.Split(*runIDs, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	totals := stats.New()
	if *pprofAddr != "" {
		// The expvar page exposes the run's live totals alongside the
		// standard pprof endpoints, and /metrics serves the same snapshot
		// in the OpenMetrics text format for Prometheus-style scrapers.
		expvar.Publish("stats", expvar.Func(func() any { return totals.Snapshot() }))
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			if err := stats.WriteOpenMetrics(w, totals.Snapshot()); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: /metrics: %v\n", err)
			}
		})
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: pprof server: %v\n", err)
			}
		}()
	}
	// With -bundle, the collector owns the run's tracer, so -trace becomes
	// a shim exporting the same spans the bundle captures.
	var col *obs.Collector
	if *bundleDir != "" {
		col = obs.NewCollector(obs.Identity{
			Bench:     "experiments",
			Timestamp: time.Now().UTC().Format(time.RFC3339),
		})
	}
	tracer := col.Tracer()
	if tracer == nil && *traceOut != "" {
		tracer = trace.New()
	}
	corpus := bench.NewCorpus()
	engine := bench.NewEngine(corpus, bench.EngineOptions{
		Parallel:  *parallel,
		Recorder:  totals,
		Tracer:    tracer,
		Collector: col,
	})
	t0 := time.Now()
	results, runErr := engine.RunIDs(ctx, ids)
	wall := time.Since(t0)
	if *bundleDir != "" && runErr == nil {
		if err := col.Write(filepath.Join(*bundleDir, "experiments")); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: run bundle: %v\n", err)
			os.Exit(1)
		}
		opt := core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4}
		ts := time.Now().UTC().Format(time.RFC3339)
		if err := bench.WriteBundles(corpus, *bundleDir, opt, []string{"nibble"}, ts); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: bundles: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote run bundles to %s\n", *bundleDir)
	}
	if *guestDir != "" && runErr == nil {
		// The corpus is already warm from the run, so profiling only pays
		// for the executions themselves.
		opt := core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4}
		if err := bench.WriteGuestProfiles(corpus, *guestDir, opt); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: guest profiles: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote guest profile pairs to %s\n", *guestDir)
	}
	if *auditDir != "" && runErr == nil {
		if err := bench.WriteSizeAudits(corpus, *auditDir); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: size audits: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote size audits to %s\n", *auditDir)
	}
	if *traceOut != "" {
		if err := obs.WriteTextFile(*traceOut, tracer.WriteChrome); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing trace %s: %v\n", *traceOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote %d spans to %s\n", tracer.Len(), *traceOut)
	}
	if results == nil { // id resolution failed before anything ran
		fmt.Fprintf(os.Stderr, "experiments: %v; use -list\n", runErr)
		os.Exit(2)
	}

	if *jsonOut {
		emitJSON(results, totals.Snapshot(), *parallel, wall)
	} else {
		emitText(results, *csv, *showStats)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", runErr)
		os.Exit(1)
	}
}

func emitText(results []bench.Result, csv, showStats bool) {
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.ID, r.Err)
			continue
		}
		if csv {
			fmt.Printf("# == %s: %s ==\n%s\n", r.Table.ID, r.Table.Title, r.Table.RenderCSV())
			continue
		}
		fmt.Print(r.Table.Render())
		fmt.Printf("(%s in %v)\n", r.ID, r.Wall.Round(time.Millisecond))
		if showStats {
			if s := r.Stats.Summary(); s != "" {
				fmt.Printf("  stats: %s\n", s)
			}
		}
		fmt.Println()
	}
}

func emitJSON(results []bench.Result, totals stats.Snapshot, parallel int, wall time.Duration) {
	report := jsonReport{
		Parallel: parallel,
		Totals:   totals,
		WallMS:   float64(wall.Microseconds()) / 1e3,
	}
	for _, r := range results {
		je := jsonExperiment{
			ID:     r.ID,
			Title:  r.Title,
			WallMS: float64(r.Wall.Microseconds()) / 1e3,
			Stats:  r.Stats,
		}
		if r.Err != nil {
			je.Error = r.Err.Error()
		}
		if r.Table != nil {
			je.Columns = r.Table.Columns
			je.Rows = r.Table.Rows
			je.Note = r.Table.Note
		}
		report.Experiments = append(report.Experiments, je)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

// Package codedensity is the public API of the reproduction of Lefurgy,
// Bird, Chen & Mudge, "Improving Code Density Using Compression
// Techniques" (U. Michigan CSE-TR-342-97 / MICRO 1997).
//
// The library compresses PowerPC-subset programs with the paper's
// post-compilation dictionary method: common instruction sequences inside
// basic blocks move into a dictionary and are replaced by short codewords;
// a modified fetch/decode path expands them at execution time. Three
// codeword encodings are provided (the 2-byte baseline, 1-byte codewords
// for small dictionaries, and the nibble-aligned variable-length encoding)
// plus Liao-style call-dictionary codewords, a CCRP/Huffman model and an
// LZW coder as comparators.
//
// Typical use:
//
//	p, _ := codedensity.GenerateBenchmark("ijpeg") // or build your own program
//	img, _ := codedensity.Compress(p, codedensity.Options{Scheme: codedensity.Nibble})
//	fmt.Printf("ratio %.3f\n", img.Ratio())
//	out, status, _ := codedensity.RunCompressed(img, 1e8)
//
// Everything is deterministic: the same inputs always produce the same
// binaries, images and measurements.
package codedensity

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bench"
	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/machine"
	"repro/internal/objfile"
	"repro/internal/program"
	"repro/internal/synth"
)

// Scheme selects a codeword encoding.
type Scheme = codeword.Scheme

// The supported schemes.
const (
	// Baseline is the paper's §4.1 scheme: 2-byte codewords (escape byte +
	// index), up to 8192 entries.
	Baseline = codeword.Baseline
	// OneByte is the §4.1.2 small-dictionary scheme: single-byte
	// codewords, up to 32 entries.
	OneByte = codeword.OneByte
	// Nibble is the §4.1.3 variable-length scheme (Fig. 10): 4/8/12/16-bit
	// codewords at 4-bit alignment.
	Nibble = codeword.Nibble
	// Liao is the §2.4 comparator: 32-bit call-dictionary codewords.
	Liao = codeword.Liao
)

// Options configures compression.
type Options = core.Options

// Program is a linked PowerPC-subset module.
type Program = program.Program

// Image is a compressed program.
type Image = core.Image

// Mark is the sideband record of where an original instruction landed in
// the compressed stream; images carry one mark per stream item.
type Mark = core.Mark

// Mark kinds.
const (
	MarkRaw      = core.MarkRaw      // uncompressed non-branch instruction
	MarkCodeword = core.MarkCodeword // dictionary codeword
	MarkBranch   = core.MarkBranch   // relative branch with repatched offset
	MarkStub     = core.MarkStub     // far branch expanded to an indirect stub
)

// Builder constructs programs instruction by instruction; see the program
// package's Func/Label/Branch/JumpTable API.
type Builder = program.Builder

// NewBuilder starts an empty module.
func NewBuilder(name string) *Builder { return program.NewBuilder(name) }

// AssembleSource builds a linked program from textual assembly (one
// instruction per line, .program/.entry/.func directives, local labels,
// symbolic branch targets). See the program package for the grammar.
func AssembleSource(src string) (*Program, error) { return program.AssembleSource(src) }

// Benchmarks lists the SPEC CINT95 stand-in names.
func Benchmarks() []string { return synth.BenchmarkNames() }

// GenerateBenchmark deterministically builds one of the synthetic SPEC
// CINT95 stand-ins ("compress", "gcc", "go", "ijpeg", "li", "m88ksim",
// "perl", "vortex").
func GenerateBenchmark(name string) (*Program, error) { return synth.Generate(name) }

// GenerateBenchmarkScaled builds a stand-in with its size target scaled
// (scale 8 brings gcc near the real statically linked SPEC binary).
func GenerateBenchmarkScaled(name string, scale float64) (*Program, error) {
	return synth.GenerateScaled(name, scale)
}

// Compress applies the paper's dictionary compression. The input program
// is not modified (jump tables are patched in a copy).
func Compress(p *Program, opt Options) (*Image, error) {
	return core.Compress(p.Clone(), opt)
}

// DictEntry is one shared-dictionary entry (a sequence of instruction
// words plus its use count).
type DictEntry = dictionary.Entry

// BuildSharedDictionary builds one dictionary over several programs for
// fleet-wide deployment with CompressFixed.
func BuildSharedDictionary(programs []*Program, opt Options) ([]DictEntry, error) {
	return core.BuildSharedDictionary(programs, opt)
}

// CompressFixed compresses a program against a pre-built (e.g. shared ROM)
// dictionary, preserving entry order so codeword ranks stay meaningful
// across every program using it.
func CompressFixed(p *Program, entries []DictEntry, opt Options) (*Image, error) {
	return core.CompressFixed(p.Clone(), entries, opt)
}

// Verify structurally checks that an image is a faithful compression of
// the program: codewords expand to the original sequences, branches reach
// the original targets in unit space, jump tables and the entry point are
// repatched consistently.
func Verify(p *Program, img *Image) error { return core.Verify(p, img) }

// Run executes an uncompressed program on the simulator, returning its
// syscall output and exit status.
func Run(p *Program, maxSteps int64) ([]byte, int32, error) {
	cpu, err := machine.NewForProgram(p)
	if err != nil {
		return nil, 0, err
	}
	status, err := cpu.Run(maxSteps)
	if err != nil {
		return nil, 0, err
	}
	return cpu.Output(), status, nil
}

// RunCompressed executes a compressed image through the Figure 3 fetch
// path (codeword expansion in decode).
func RunCompressed(img *Image, maxSteps int64) ([]byte, int32, error) {
	cpu, err := core.NewMachine(img)
	if err != nil {
		return nil, 0, err
	}
	status, err := cpu.Run(maxSteps)
	if err != nil {
		return nil, 0, err
	}
	return cpu.Output(), status, nil
}

// VerifyExecution runs both the program and its image and checks that
// output and exit status are identical — the behavioral half of the
// correctness argument (Verify is the structural half).
func VerifyExecution(p *Program, img *Image, maxSteps int64) error {
	_, _, err := core.RunBoth(p, img, maxSteps)
	return err
}

// WriteProgram/ReadProgram serialize programs (PPX1 format).
func WriteProgram(w io.Writer, p *Program) error { return objfile.WriteProgram(w, p) }

// ReadProgram deserializes a PPX1 program.
func ReadProgram(r io.Reader) (*Program, error) { return objfile.ReadProgram(r) }

// WriteImage serializes a compressed image (PPCZ format).
func WriteImage(w io.Writer, img *Image) error { return objfile.WriteImage(w, img) }

// ReadImage deserializes a PPCZ image.
func ReadImage(r io.Reader) (*Image, error) { return objfile.ReadImage(r) }

// ExperimentIDs lists the reproducible tables and figures.
func ExperimentIDs() []string {
	out := make([]string, len(bench.Experiments))
	for i, e := range bench.Experiments {
		out[i] = e.ID
	}
	return out
}

// EngineOptions configures RunExperiments.
type EngineOptions struct {
	// Parallel bounds concurrently executing work (experiment runners and
	// the per-benchmark rows inside them share one worker pool). 0 means
	// runtime.GOMAXPROCS(0); 1 runs fully sequentially. Output is
	// byte-identical at every setting.
	Parallel int
}

// PhaseStat is the accumulated timing of one instrumented phase.
type PhaseStat struct {
	Count int64 `json:"count"` // completed invocations
	Nanos int64 `json:"nanos"` // total duration in nanoseconds
}

// RunStats is the observability report of one experiment (or a whole
// run): named counters (corpus.compressions, dict.heap_pops,
// machine.steps, …) and phase timings (core.analyze/build/encode/patch,
// experiment.wall).
type RunStats struct {
	Counters map[string]int64     `json:"counters,omitempty"`
	Phases   map[string]PhaseStat `json:"phases,omitempty"`
}

// ExperimentResult is one experiment's outcome from RunExperiments.
type ExperimentResult struct {
	ID    string        `json:"id"`
	Title string        `json:"title"`
	Text  string        `json:"-"`    // rendered table (empty if Err)
	CSV   string        `json:"-"`    // CSV rendering of the same table
	Err   error         `json:"-"`    // this experiment's failure, if any
	Wall  time.Duration `json:"wall"` // wall-clock time of the runner
	Stats RunStats      `json:"stats"`
}

// RunExperiments regenerates the given tables and figures (nil or empty
// ids means all of them, in paper order) on a bounded parallel engine over
// one shared corpus. Results come back in request order with per-
// experiment stats; the first failing experiment's error (in that order)
// is returned alongside the full result set. Cancel ctx to abandon
// unstarted work.
func RunExperiments(ctx context.Context, ids []string, opt EngineOptions) ([]ExperimentResult, error) {
	runners, err := bench.ResolveIDs(ids)
	if err != nil {
		return nil, fmt.Errorf("codedensity: %w (have %v)", err, ExperimentIDs())
	}
	engine := bench.NewEngine(bench.NewCorpus(), bench.EngineOptions{Parallel: opt.Parallel})
	results, runErr := engine.Run(ctx, runners)
	out := make([]ExperimentResult, len(results))
	for i, r := range results {
		er := ExperimentResult{ID: r.ID, Title: r.Title, Err: r.Err, Wall: r.Wall}
		if r.Table != nil {
			er.Text = r.Table.Render()
			er.CSV = r.Table.RenderCSV()
		}
		er.Stats = RunStats{Counters: r.Stats.Counters}
		if len(r.Stats.Phases) > 0 {
			er.Stats.Phases = make(map[string]PhaseStat, len(r.Stats.Phases))
			for k, v := range r.Stats.Phases {
				er.Stats.Phases[k] = PhaseStat{Count: v.Count, Nanos: v.Nanos}
			}
		}
		out[i] = er
	}
	return out, runErr
}

// RunExperiment regenerates one of the paper's tables or figures (or an
// extension experiment) and returns it rendered as text. It is a thin
// sequential wrapper around RunExperiments.
func RunExperiment(id string) (string, error) {
	results, err := RunExperiments(context.Background(), []string{id}, EngineOptions{Parallel: 1})
	if err != nil {
		return "", err
	}
	return results[0].Text, nil
}

package codedensity

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/asm"
)

func TestFacadeEndToEnd(t *testing.T) {
	p, err := GenerateBenchmark("li")
	if err != nil {
		t.Fatal(err)
	}
	img, err := Compress(p, Options{Scheme: Nibble})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, img); err != nil {
		t.Fatal(err)
	}
	if err := VerifyExecution(p, img, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if img.Ratio() >= 1 {
		t.Fatalf("ratio %.3f", img.Ratio())
	}
}

func TestFacadeCompressDoesNotMutate(t *testing.T) {
	p, err := GenerateBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	dataBefore := append([]byte(nil), p.Data...)
	if _, err := Compress(p, Options{Scheme: Baseline}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dataBefore, p.Data) {
		t.Fatal("Compress mutated the input program's data section")
	}
}

func TestFacadeSerialization(t *testing.T) {
	p, err := GenerateBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	var pb bytes.Buffer
	if err := WriteProgram(&pb, p); err != nil {
		t.Fatal(err)
	}
	p2, err := ReadProgram(&pb)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Compress(p2, Options{Scheme: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	var ib bytes.Buffer
	if err := WriteImage(&ib, img); err != nil {
		t.Fatal(err)
	}
	img2, err := ReadImage(&ib)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p2, img2); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBuilderProgram(t *testing.T) {
	b := NewBuilder("tiny")
	f := b.Func("main")
	f.Emit(asm.Li(3, 41))
	f.Emit(asm.Addi(3, 3, 1))
	f.Emit(asm.Li(0, asm.SysExit))
	f.Emit(asm.Sc())
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	out, status, err := Run(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if status != 42 || len(out) != 0 {
		t.Fatalf("status %d out %q", status, out)
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 14 {
		t.Fatalf("only %d experiments", len(ids))
	}
	out, err := RunExperiment("table3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "compress") || !strings.Contains(out, "prologue") {
		t.Fatalf("unexpected experiment output:\n%s", out)
	}
	if _, err := RunExperiment("nonsense"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeRunExperiments(t *testing.T) {
	results, err := RunExperiments(context.Background(), []string{"fig4", "table2"}, EngineOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].ID != "fig4" || results[1].ID != "table2" {
		t.Fatalf("results out of order: %+v", results)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		if r.Text == "" || r.CSV == "" {
			t.Errorf("%s: missing renderings", r.ID)
		}
		if r.Wall <= 0 {
			t.Errorf("%s: wall time not recorded", r.ID)
		}
	}
	// The stats pipeline reaches the public result: fig4 runs on a fresh
	// corpus, so it must report compressions and core phase timings.
	st := results[0].Stats
	if st.Counters["corpus.compressions"] == 0 {
		t.Error("fig4 stats missing corpus.compressions")
	}
	if st.Phases["core.build"].Count == 0 {
		t.Error("fig4 stats missing core.build phase")
	}
	if _, err := RunExperiments(context.Background(), []string{"nonsense"}, EngineOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 8 {
		t.Fatalf("%d benchmarks", len(names))
	}
	for _, n := range names {
		if _, err := GenerateBenchmark(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := GenerateBenchmark("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

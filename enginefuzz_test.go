package codedensity

import (
	"bytes"
	"testing"

	"repro/internal/codec"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/synth"
)

// FuzzFastPathDifferential pits the fused fast loop against the
// instrumented Step path over fuzzer-shaped programs, native and through
// every executable codec. The two engines share exec() but nothing of
// their fetch plumbing, so any table-construction bug — wrong successor,
// wrong expansion length, a counter charged differently — shows up as a
// divergence in output, exit status, or the Stats counters. The hooked
// machine counts TraceStep deliveries to prove the slow path actually ran.
// A third machine runs the fast path with epoch sampling on and a tiny
// epoch length, so every fuzz case crosses many epoch boundaries:
// sampling must not perturb any architectural result, and the drained
// slot traffic must conserve the fast-path step count exactly.
func FuzzFastPathDifferential(f *testing.F) {
	f.Add(int64(7), uint16(900))
	f.Add(int64(42), uint16(2500))
	f.Add(int64(1997), uint16(1400))
	f.Fuzz(func(t *testing.T, seed int64, size uint16) {
		prof, err := synth.ProfileFor("compress")
		if err != nil {
			t.Fatal(err)
		}
		prof.Seed = seed
		prof.TargetWords = 600 + int(size)%2400
		p, err := synth.GenerateProfile(prof)
		if err != nil {
			t.Skip(err)
		}

		fastN, err := machine.NewForProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		slowN, err := machine.NewForProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		sampN, err := machine.NewForProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		comparePaths(t, "native", fastN, slowN, sampN)

		for _, cd := range codec.Codecs() {
			img, err := cd.Compress(p, codec.Options{})
			if err != nil {
				t.Fatalf("%s: compress: %v", cd.Name(), err)
			}
			ex, ok := img.(codec.Executable)
			if !ok {
				continue // size comparators have nothing to execute
			}
			fast, err := ex.NewMachine()
			if err != nil {
				t.Fatalf("%s: new machine: %v", cd.Name(), err)
			}
			slow, err := ex.NewMachine()
			if err != nil {
				t.Fatalf("%s: new machine: %v", cd.Name(), err)
			}
			samp, err := ex.NewMachine()
			if err != nil {
				t.Fatalf("%s: new machine: %v", cd.Name(), err)
			}
			comparePaths(t, cd.Name(), fast, slow, samp)
		}
	})
}

// trafficSum is the fuzz observer: it only totals the drained per-slot
// traffic, so conservation against the machine's own step counter can be
// asserted after the run.
type trafficSum struct{ steps, fetches int64 }

func (s *trafficSum) ObserveEpoch(pd *machine.Predecode, tr []machine.SlotTraffic, touched []int32) {
	for _, i := range touched {
		s.steps += int64(tr[i].Steps)
		s.fetches += int64(tr[i].Fetches)
	}
}

// comparePaths runs fast bare, slow with a hook attached, and sampled
// with short-epoch sampling enabled, then demands identical errors,
// status, output, and counters — and exact traffic conservation.
func comparePaths(t *testing.T, name string, fast, slow, sampled *machine.CPU) {
	t.Helper()
	const maxSteps = 50_000_000
	var hooked int64
	slow.TraceStep = func(machine.StepInfo) { hooked++ }
	obs := &trafficSum{}
	sampled.EpochSteps = 97 // force many epoch boundaries per run
	sampled.EnableEpochSampling(stats.New(), obs)
	fs, ferr := fast.Run(maxSteps)
	ss, serr := slow.Run(maxSteps)
	ps, perr := sampled.Run(maxSteps)
	sampled.FlushEpoch()
	if (ferr == nil) != (serr == nil) || (ferr != nil && ferr.Error() != serr.Error()) {
		t.Fatalf("%s: error divergence: fast %v, slow %v", name, ferr, serr)
	}
	if (ferr == nil) != (perr == nil) || (ferr != nil && ferr.Error() != perr.Error()) {
		t.Fatalf("%s: error divergence: fast %v, sampled %v", name, ferr, perr)
	}
	if hooked != slow.Stats.Steps {
		t.Fatalf("%s: TraceStep fired %d times for %d steps", name, hooked, slow.Stats.Steps)
	}
	if obs.steps != sampled.Fast.Steps {
		t.Fatalf("%s: drained traffic holds %d steps, fast path executed %d",
			name, obs.steps, sampled.Fast.Steps)
	}
	if ferr != nil {
		return // matching faults; no architectural result to compare
	}
	if fs != ss {
		t.Fatalf("%s: exit status fast %d, slow %d", name, fs, ss)
	}
	if ps != fs {
		t.Fatalf("%s: exit status fast %d, sampled %d", name, fs, ps)
	}
	if !bytes.Equal(fast.Output(), slow.Output()) {
		t.Fatalf("%s: output diverged (%d vs %d bytes)", name, len(fast.Output()), len(slow.Output()))
	}
	if !bytes.Equal(fast.Output(), sampled.Output()) {
		t.Fatalf("%s: sampled output diverged (%d vs %d bytes)", name, len(fast.Output()), len(sampled.Output()))
	}
	if fast.Stats != slow.Stats {
		t.Fatalf("%s: stats diverged:\nfast %+v\nslow %+v", name, fast.Stats, slow.Stats)
	}
	if fast.Stats != sampled.Stats {
		t.Fatalf("%s: sampling perturbed stats:\nfast    %+v\nsampled %+v", name, fast.Stats, sampled.Stats)
	}
}

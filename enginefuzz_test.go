package codedensity

import (
	"bytes"
	"testing"

	"repro/internal/codec"
	"repro/internal/machine"
	"repro/internal/synth"
)

// FuzzFastPathDifferential pits the fused fast loop against the
// instrumented Step path over fuzzer-shaped programs, native and through
// every executable codec. The two engines share exec() but nothing of
// their fetch plumbing, so any table-construction bug — wrong successor,
// wrong expansion length, a counter charged differently — shows up as a
// divergence in output, exit status, or the Stats counters. The hooked
// machine counts TraceStep deliveries to prove the slow path actually ran.
func FuzzFastPathDifferential(f *testing.F) {
	f.Add(int64(7), uint16(900))
	f.Add(int64(42), uint16(2500))
	f.Add(int64(1997), uint16(1400))
	f.Fuzz(func(t *testing.T, seed int64, size uint16) {
		prof, err := synth.ProfileFor("compress")
		if err != nil {
			t.Fatal(err)
		}
		prof.Seed = seed
		prof.TargetWords = 600 + int(size)%2400
		p, err := synth.GenerateProfile(prof)
		if err != nil {
			t.Skip(err)
		}

		fastN, err := machine.NewForProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		slowN, err := machine.NewForProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		comparePaths(t, "native", fastN, slowN)

		for _, cd := range codec.Codecs() {
			img, err := cd.Compress(p, codec.Options{})
			if err != nil {
				t.Fatalf("%s: compress: %v", cd.Name(), err)
			}
			ex, ok := img.(codec.Executable)
			if !ok {
				continue // size comparators have nothing to execute
			}
			fast, err := ex.NewMachine()
			if err != nil {
				t.Fatalf("%s: new machine: %v", cd.Name(), err)
			}
			slow, err := ex.NewMachine()
			if err != nil {
				t.Fatalf("%s: new machine: %v", cd.Name(), err)
			}
			comparePaths(t, cd.Name(), fast, slow)
		}
	})
}

// comparePaths runs fast bare and slow with a hook attached, then demands
// identical errors, status, output, and counters.
func comparePaths(t *testing.T, name string, fast, slow *machine.CPU) {
	t.Helper()
	const maxSteps = 50_000_000
	var hooked int64
	slow.TraceStep = func(machine.StepInfo) { hooked++ }
	fs, ferr := fast.Run(maxSteps)
	ss, serr := slow.Run(maxSteps)
	if (ferr == nil) != (serr == nil) || (ferr != nil && ferr.Error() != serr.Error()) {
		t.Fatalf("%s: error divergence: fast %v, slow %v", name, ferr, serr)
	}
	if hooked != slow.Stats.Steps {
		t.Fatalf("%s: TraceStep fired %d times for %d steps", name, hooked, slow.Stats.Steps)
	}
	if ferr != nil {
		return // matching faults; no architectural result to compare
	}
	if fs != ss {
		t.Fatalf("%s: exit status fast %d, slow %d", name, fs, ss)
	}
	if !bytes.Equal(fast.Output(), slow.Output()) {
		t.Fatalf("%s: output diverged (%d vs %d bytes)", name, len(fast.Output()), len(slow.Output()))
	}
	if fast.Stats != slow.Stats {
		t.Fatalf("%s: stats diverged:\nfast %+v\nslow %+v", name, fast.Stats, slow.Stats)
	}
}

package codedensity_test

import (
	"fmt"

	codedensity "repro"
	"repro/asm"
)

// Example compresses a small hand-built program with the baseline scheme
// and proves the compressed image behaves identically.
func Example() {
	b := codedensity.NewBuilder("demo")
	f := b.Func("main")
	f.Emit(asm.Li(31, 0))
	f.Emit(asm.Li(30, 1))
	f.Label("loop")
	f.Emit(asm.Add(31, 31, 30)) // the repeated body compresses
	f.Emit(asm.Add(31, 31, 30))
	f.Emit(asm.Add(31, 31, 30))
	f.Emit(asm.Addi(30, 30, 1))
	f.Emit(asm.Cmpwi(0, 30, 5))
	f.Branch(asm.Blt(0, 0), "loop")
	f.Emit(asm.Mr(3, 31))
	f.Emit(asm.Li(0, asm.SysPutint))
	f.Emit(asm.Sc())
	f.Emit(asm.Li(3, 0))
	f.Emit(asm.Li(0, asm.SysExit))
	f.Emit(asm.Sc())
	p, err := b.Link()
	if err != nil {
		panic(err)
	}

	img, err := codedensity.Compress(p, codedensity.Options{Scheme: codedensity.Baseline})
	if err != nil {
		panic(err)
	}
	if err := codedensity.Verify(p, img); err != nil {
		panic(err)
	}
	outA, _, _ := codedensity.Run(p, 10000)
	outB, _, _ := codedensity.RunCompressed(img, 10000)
	fmt.Printf("original: %s, compressed: %s, identical: %v\n",
		outA, outB, string(outA) == string(outB))
	// Output: original: 30, compressed: 30, identical: true
}

// ExampleAssembleSource builds a runnable program from text.
func ExampleAssembleSource() {
	p, err := codedensity.AssembleSource(`
.func main
    li   r3,6
    bl   triple
    li   r0,2       # putint
    sc
    li   r3,0
    li   r0,0       # exit
    sc
.func triple
    mulli_done:     # labels may appear anywhere
    add  r4,r3,r3
    add  r3,r4,r3
    blr
`)
	if err != nil {
		panic(err)
	}
	out, _, err := codedensity.Run(p, 1000)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(out))
	// Output: 18
}

// ExampleImage_Ratio shows the headline measurement on a benchmark.
func ExampleImage_Ratio() {
	p, _ := codedensity.GenerateBenchmark("compress")
	img, _ := codedensity.Compress(p, codedensity.Options{Scheme: codedensity.Nibble})
	fmt.Printf("compresses: %v\n", img.Ratio() < 0.6)
	// Output: compresses: true
}

// Example_parse round-trips the disassembler.
func Example_parse() {
	w, _ := asm.Parse("lwz r9,4(r28)")
	fmt.Println(asm.Disassemble(w))
	// Output: lwz r9,4(r28)
}

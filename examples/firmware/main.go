// Firmware: the paper's §4.1.2 embedded scenario. A control-loop style
// program (sensor filtering, thresholding, actuator table lookups) is
// compressed with 1-byte codewords and dictionaries small enough for
// permanent on-chip storage — 8, 16 and 32 entries (128 to 512 bytes).
// The compressed image is executed to prove the firmware still works.
package main

import (
	"fmt"
	"log"

	codedensity "repro"
	"repro/asm"
)

// buildFirmware assembles the control program: an outer duty cycle that
// samples a synthetic sensor, applies an exponential filter, classifies
// the level against thresholds, and accumulates actuator commands.
func buildFirmware() (*codedensity.Program, error) {
	b := codedensity.NewBuilder("firmware")

	// Lookup table for actuator commands.
	table := make([]byte, 0, 64)
	for i := 0; i < 16; i++ {
		table = append(table, 0, 0, byte(i), byte(i*3+1))
	}
	tblOff := b.AppendData(table)
	tblAddr := uint32(0x0020_0000 + tblOff)

	main := b.Func("main")
	main.Emit(asm.Li(31, 0)) // filtered value
	main.Emit(asm.Li(30, 0)) // command accumulator
	main.Emit(asm.Li(29, 0)) // tick
	main.Label("tick")
	// sample = sensor(tick)
	main.Emit(asm.Mr(3, 29))
	main.Call("sensor")
	// filtered = (filtered*3 + sample) / 4
	main.Emit(asm.Li(4, 3))
	main.Emit(asm.Mullw(31, 31, 4))
	main.Emit(asm.Add(31, 31, 3))
	main.Emit(asm.Srawi(31, 31, 2))
	// level = classify(filtered)
	main.Emit(asm.Mr(3, 31))
	main.Call("classify")
	// cmd = lookup(level)
	main.Call("lookup")
	main.Emit(asm.Add(30, 30, 3))
	main.Emit(asm.Addi(29, 29, 1))
	main.Emit(asm.Cmpwi(0, 29, 64))
	main.Branch(asm.Blt(0, 0), "tick")
	main.Emit(asm.Mr(3, 30))
	main.Emit(asm.Li(0, asm.SysPutint))
	main.Emit(asm.Sc())
	main.Emit(asm.Li(3, '\n'))
	main.Emit(asm.Li(0, asm.SysPutchar))
	main.Emit(asm.Sc())
	main.Emit(asm.Li(3, 0))
	main.Emit(asm.Li(0, asm.SysExit))
	main.Emit(asm.Sc())

	// sensor(t): a deterministic pseudo-sensor.
	s := b.Func("sensor")
	s.Emit(asm.Mullw(4, 3, 3))
	s.Emit(asm.Xor(3, 3, 4))
	s.Emit(asm.AndiRc(3, 3, 0xFF))
	s.Emit(asm.Blr())

	// classify(v): threshold into 0..15.
	c := b.Func("classify")
	c.Emit(asm.Srawi(3, 3, 4))
	c.Emit(asm.Cmpwi(0, 3, 15))
	c.Branch(asm.Ble(0, 0), "ok")
	c.Emit(asm.Li(3, 15))
	c.Label("ok")
	c.Emit(asm.Cmpwi(0, 3, 0))
	c.Branch(asm.Bge(0, 0), "ok2")
	c.Emit(asm.Li(3, 0))
	c.Label("ok2")
	c.Emit(asm.Blr())

	// lookup(level): read the actuator command word from the table.
	l := b.Func("lookup")
	l.Emit(asm.Slwi(3, 3, 2))
	l.Emit(asm.Lis(11, int32(int16(tblAddr>>16))))
	l.Emit(asm.Ori(11, 11, int32(tblAddr&0xFFFF)))
	l.Emit(asm.Lwzx(3, 11, 3))
	l.Emit(asm.AndiRc(3, 3, 0xFFFF))
	l.Emit(asm.Blr())

	b.SetEntry("main")
	return b.Link()
}

func main() {
	p, err := buildFirmware()
	if err != nil {
		log.Fatal(err)
	}
	// Inflate the firmware with the compress-benchmark text so dictionary
	// sizes are meaningful: real firmware links libraries too. We simply
	// compress the synthetic "compress" benchmark alongside.
	bm, err := codedensity.GenerateBenchmark("compress")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Small-dictionary compression (1-byte codewords, entries ≤ 4 instructions):")
	fmt.Printf("%-10s %8s %10s %10s %8s\n", "entries", "dict B", "orig B", "comp B", "ratio")
	for _, n := range []int{8, 16, 32} {
		img, err := codedensity.Compress(bm, codedensity.Options{
			Scheme: codedensity.OneByte, MaxEntries: n, MaxEntryLen: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := codedensity.Verify(bm, img); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %8d %10d %10d %8.3f\n",
			n, img.DictionaryBytes, img.OriginalBytes, img.CompressedBytes(), img.Ratio())
	}

	fmt.Println("\nControl-loop firmware itself (1-byte codewords, 32 entries):")
	img, err := codedensity.Compress(p, codedensity.Options{
		Scheme: codedensity.OneByte, MaxEntries: 32, MaxEntryLen: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d -> %d bytes (ratio %.3f), dictionary %d bytes\n",
		img.OriginalBytes, img.CompressedBytes(), img.Ratio(), img.DictionaryBytes)

	outO, _, err := codedensity.Run(p, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	outC, _, err := codedensity.RunCompressed(img, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  original firmware output:   %q\n", outO)
	fmt.Printf("  compressed firmware output: %q\n", outC)
	if string(outO) != string(outC) {
		log.Fatal("firmware behavior changed under compression!")
	}
	fmt.Println("  identical behavior: OK")
}

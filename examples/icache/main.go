// ICache: the performance angle from the paper's introduction and future
// work — denser code suffers fewer instruction-cache misses. The example
// runs a benchmark natively and through the compressed fetch path while
// feeding both fetch streams into identical instruction caches, then
// prints the miss-rate curves.
package main

import (
	"fmt"
	"log"

	codedensity "repro"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/machine"
)

func main() {
	const benchName = "go"
	p, err := codedensity.GenerateBenchmark(benchName)
	if err != nil {
		log.Fatal(err)
	}
	img, err := codedensity.Compress(p, codedensity.Options{Scheme: codedensity.Nibble})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s: %d instructions, nibble ratio %.3f\n\n",
		benchName, len(p.Text), img.Ratio())
	fmt.Printf("%-12s %12s %12s %10s\n", "cache", "orig miss%", "comp miss%", "reduction")

	for _, size := range []int{512, 1024, 2048, 4096, 8192, 16384} {
		orig, err := missRate(size, func() (*machine.CPU, error) { return machine.NewForProgram(p) })
		if err != nil {
			log.Fatal(err)
		}
		comp, err := missRate(size, func() (*machine.CPU, error) { return core.NewMachine(img) })
		if err != nil {
			log.Fatal(err)
		}
		red := 0.0
		if orig > 0 {
			red = 100 * (orig - comp) / orig
		}
		fmt.Printf("%-12s %11.2f%% %11.2f%% %9.0f%%\n",
			fmt.Sprintf("%dB", size), 100*orig, 100*comp, red)
	}
	fmt.Println("\n(direct-mapped, 32-byte lines; the dictionary is on-chip, so")
	fmt.Println(" expanded instructions cost no program-memory traffic — Fig. 3)")
}

func missRate(size int, mk func() (*machine.CPU, error)) (float64, error) {
	ic, err := cache.New(cache.Config{SizeBytes: size, LineBytes: 32, Assoc: 1})
	if err != nil {
		return 0, err
	}
	cpu, err := mk()
	if err != nil {
		return 0, err
	}
	cpu.TraceFetch = ic.Access
	if _, err := cpu.Run(200_000_000); err != nil {
		return 0, err
	}
	return ic.Stats.MissRate(), nil
}

// Multiapp: the fleet deployment scenario. An embedded product line ships
// several applications on the same part; instead of each program carrying
// its own dictionary, one dictionary is built over the whole fleet, burned
// into ROM once, and every program is compressed against it
// (CompressFixed). The example sizes both deployments and proves a
// shared-dictionary image still runs correctly.
package main

import (
	"fmt"
	"log"

	codedensity "repro"
)

func main() {
	fleet := []string{"compress", "li", "ijpeg", "m88ksim"}
	opt := codedensity.Options{Scheme: codedensity.Baseline, MaxEntryLen: 4}

	var progs []*codedensity.Program
	for _, name := range fleet {
		p, err := codedensity.GenerateBenchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		progs = append(progs, p)
	}

	shared, err := codedensity.BuildSharedDictionary(progs, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared dictionary: %d entries\n\n", len(shared))
	fmt.Printf("%-10s %10s %12s %12s %14s\n",
		"app", "orig B", "own dict B", "own comp B", "shared stream")

	var totOrig, totOwn, totSharedStream int
	for i, p := range progs {
		own, err := codedensity.Compress(p, opt)
		if err != nil {
			log.Fatal(err)
		}
		sh, err := codedensity.CompressFixed(p, shared, opt)
		if err != nil {
			log.Fatal(err)
		}
		if err := codedensity.Verify(p, sh); err != nil {
			log.Fatal(err)
		}
		if err := codedensity.VerifyExecution(p, sh, 2e8); err != nil {
			log.Fatalf("%s under shared dictionary: %v", fleet[i], err)
		}
		fmt.Printf("%-10s %10d %12d %12d %14d\n",
			fleet[i], own.OriginalBytes, own.DictionaryBytes, own.CompressedBytes(), sh.StreamBytes)
		totOrig += own.OriginalBytes
		totOwn += own.CompressedBytes()
		totSharedStream += sh.StreamBytes
	}

	// The shared dictionary is stored once for the whole fleet.
	sharedDictBytes := 4
	for _, e := range shared {
		sharedDictBytes += 1 + 4*len(e.Words)
	}
	totShared := totSharedStream + sharedDictBytes
	fmt.Printf("\nfleet totals: original %d B\n", totOrig)
	fmt.Printf("  per-app dictionaries: %d B (ratio %.3f)\n", totOwn, float64(totOwn)/float64(totOrig))
	fmt.Printf("  one shared dictionary: %d B streams + %d B dictionary = %d B (ratio %.3f)\n",
		totSharedStream, sharedDictBytes, totShared, float64(totShared)/float64(totOrig))
	fmt.Println("\nevery shared-dictionary image verified structurally and behaviorally: OK")
}

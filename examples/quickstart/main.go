// Quickstart: build a small program with the public API, compress it with
// the baseline 2-byte scheme, show the paper's Figure 2 view (compressed
// code interleaved with codewords, plus the dictionary), and prove that
// the compressed image executes identically.
package main

import (
	"fmt"
	"log"

	codedensity "repro"
	"repro/asm"
)

func main() {
	// A little program: sum the squares 1..10 three times over, with the
	// kind of repeated template code a compiler would emit.
	b := codedensity.NewBuilder("quickstart")
	main := b.Func("main")
	main.Emit(asm.Li(31, 0)) // total
	main.Emit(asm.Li(30, 0)) // round counter
	main.Label("round")
	main.Emit(asm.Li(3, 10))
	main.Call("sumsq")
	main.Emit(asm.Add(31, 31, 3))
	main.Emit(asm.Addi(30, 30, 1))
	main.Emit(asm.Cmpwi(0, 30, 3))
	main.Branch(asm.Blt(0, 0), "round")
	main.Emit(asm.Mr(3, 31))
	main.Emit(asm.Li(0, asm.SysPutint))
	main.Emit(asm.Sc())
	main.Emit(asm.Li(3, '\n'))
	main.Emit(asm.Li(0, asm.SysPutchar))
	main.Emit(asm.Sc())
	main.Emit(asm.Li(3, 0))
	main.Emit(asm.Li(0, asm.SysExit))
	main.Emit(asm.Sc())

	sumsq := b.Func("sumsq")
	sumsq.BeginPrologue()
	sumsq.Emit(asm.Mflr(0))
	sumsq.Emit(asm.Stw(0, 8, 1))
	sumsq.Emit(asm.Stwu(1, -32, 1))
	sumsq.Emit(asm.Stw(31, 28, 1))
	sumsq.EndPrologue()
	sumsq.Emit(asm.Li(31, 0))
	sumsq.Emit(asm.Mtctr(3))
	sumsq.Label("loop")
	sumsq.Emit(asm.Mullw(4, 3, 3))
	sumsq.Emit(asm.Add(31, 31, 4))
	sumsq.Emit(asm.Addi(3, 3, -1))
	sumsq.Branch(asm.Bdnz(0), "loop")
	sumsq.Emit(asm.Mr(3, 31))
	sumsq.BeginEpilogue()
	sumsq.Emit(asm.Lwz(31, 28, 1))
	sumsq.Emit(asm.Addi(1, 1, 32))
	sumsq.Emit(asm.Lwz(0, 8, 1))
	sumsq.Emit(asm.Mtlr(0))
	sumsq.Emit(asm.Blr())
	sumsq.EndEpilogue()

	b.SetEntry("main")
	p, err := b.Link()
	if err != nil {
		log.Fatal(err)
	}

	img, err := codedensity.Compress(p, codedensity.Options{Scheme: codedensity.Baseline, MaxEntryLen: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := codedensity.Verify(p, img); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("original %d bytes, compressed %d bytes (stream %d + dictionary %d), ratio %.3f\n\n",
		img.OriginalBytes, img.CompressedBytes(), img.StreamBytes, img.DictionaryBytes, img.Ratio())

	fmt.Println("Dictionary (cf. paper Figure 2):")
	for rank, e := range img.Entries {
		fmt.Printf("  #%d:", rank)
		for _, w := range e.Words {
			fmt.Printf("  %s;", asm.Disassemble(w))
		}
		fmt.Printf("   (%d uses)\n", e.Uses)
	}

	fmt.Println("\nCompressed code (codewords interleaved with uncompressed instructions):")
	printStream(p, img)

	outO, stO, err := codedensity.Run(p, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	outC, stC, err := codedensity.RunCompressed(img, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noriginal   output: %q (status %d)\n", outO, stO)
	fmt.Printf("compressed output: %q (status %d)\n", outC, stC)
	if string(outO) != string(outC) || stO != stC {
		log.Fatal("behavioral mismatch!")
	}
	fmt.Println("identical behavior: OK")

	// A 33-instruction toy cannot amortize its dictionary (ratio ~1).
	// Compression pays off at program scale — the paper's point:
	fmt.Println("\nAt benchmark scale (synthetic SPEC CINT95 stand-ins):")
	for _, name := range []string{"compress", "gcc"} {
		bm, err := codedensity.GenerateBenchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		bimg, err := codedensity.Compress(bm, codedensity.Options{Scheme: codedensity.Nibble})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %6d insns: nibble-aligned ratio %.3f (%.0f%% smaller)\n",
			name, len(bm.Text), bimg.Ratio(), 100*(1-bimg.Ratio()))
	}
}

// printStream renders the item stream using the verification marks; the
// left column is the stream unit offset.
func printStream(p *codedensity.Program, img *codedensity.Image) {
	for _, m := range img.Marks {
		switch m.Kind {
		case codedensity.MarkCodeword:
			fmt.Printf("  %5d: CODEWORD (expands to original words %d..)\n", m.Unit, m.Orig)
		case codedensity.MarkBranch:
			fmt.Printf("  %5d: %s   <- offset repatched in units\n", m.Unit, asm.Disassemble(p.Text[m.Orig]))
		case codedensity.MarkStub:
			fmt.Printf("  %5d: far-branch stub for %s\n", m.Unit, asm.Disassemble(p.Text[m.Orig]))
		default:
			fmt.Printf("  %5d: %s\n", m.Unit, asm.Disassemble(p.Text[m.Orig]))
		}
	}
}

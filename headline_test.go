package codedensity

// The paper's abstract in test form: "We apply our technique to the
// PowerPC instruction set and achieve 30% to 50% reduction in size for
// SPEC CINT95 programs." Plus the two §5 conclusions: dictionary size is
// the most important parameter, and codewords smaller than an instruction
// are the second.

import "testing"

func TestHeadlineClaim(t *testing.T) {
	for _, name := range Benchmarks() {
		p, err := GenerateBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		img, err := Compress(p, Options{Scheme: Nibble})
		if err != nil {
			t.Fatal(err)
		}
		reduction := 1 - img.Ratio()
		if reduction < 0.30 {
			t.Errorf("%s: only %.0f%% reduction — below the paper's 30%% floor", name, 100*reduction)
		}
		t.Logf("%s: %.0f%% reduction (ratio %.3f)", name, 100*reduction, img.Ratio())
	}
}

func TestConclusionDictionarySizeDominates(t *testing.T) {
	// §5: "the size of the dictionary is the single most important
	// parameter"; "the second most important factor is reducing the
	// codeword size below the size of a single instruction". Quantify
	// both on one benchmark: growing the dictionary 16→max must buy more
	// ratio than growing entries 1→8, and switching baseline→nibble must
	// buy more than growing entries.
	p, err := GenerateBenchmark("go")
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(opt Options) float64 {
		img, err := Compress(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		return img.Ratio()
	}
	small := ratio(Options{Scheme: Baseline, MaxEntries: 16, MaxEntryLen: 4})
	full := ratio(Options{Scheme: Baseline, MaxEntryLen: 4})
	len1 := ratio(Options{Scheme: Baseline, MaxEntryLen: 1})
	len8 := ratio(Options{Scheme: Baseline, MaxEntryLen: 8})
	nib := ratio(Options{Scheme: Nibble, MaxEntryLen: 4})

	dictGain := small - full // growing the codeword budget
	lenGain := len1 - len8   // growing entry length
	cwGain := full - nib     // shrinking codewords below 32 bits

	t.Logf("dictionary-size gain %.1fpp, codeword-size gain %.1fpp, entry-length gain %.1fpp",
		100*dictGain, 100*cwGain, 100*lenGain)
	if dictGain <= lenGain {
		t.Errorf("dictionary size (%.1fpp) not the dominant parameter vs entry length (%.1fpp)",
			100*dictGain, 100*lenGain)
	}
	if cwGain <= lenGain {
		t.Errorf("sub-instruction codewords (%.1fpp) not second vs entry length (%.1fpp)",
			100*cwGain, 100*lenGain)
	}
}

func TestConclusionSinglesMatter(t *testing.T) {
	// §5: "much of our savings comes from compressing patterns of single
	// instructions" — single-entry compression alone must realize more
	// than half of the full scheme's savings.
	p, err := GenerateBenchmark("ijpeg")
	if err != nil {
		t.Fatal(err)
	}
	full, err := Compress(p, Options{Scheme: Baseline, MaxEntryLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	singles, err := Compress(p, Options{Scheme: Baseline, MaxEntryLen: 1})
	if err != nil {
		t.Fatal(err)
	}
	fullSave := 1 - full.Ratio()
	singleSave := 1 - singles.Ratio()
	if singleSave < fullSave/2 {
		t.Errorf("singles-only saves %.1f%%, less than half of the full %.1f%%",
			100*singleSave, 100*fullSave)
	}
}

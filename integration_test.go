package codedensity

// Integration tests crossing the whole stack through the public API:
// assembly source -> program -> compression (every scheme) -> serialization
// -> deserialization -> verification -> execution equivalence.

import (
	"bytes"
	"testing"

	"repro/asm"
)

const integrationSource = `
.program integ
.entry main

.func main
    li    r31,0          # accumulator
    li    r30,0          # i
loop:
    mr    r3,r30
    bl    weight
    add   r31,r31,r3
    addi  r30,r30,1
    cmpwi cr0,r30,12
    blt   cr0,loop
    mr    r3,r31
    li    r0,2           # putint
    sc
    li    r3,10
    li    r0,1           # putchar
    sc
    li    r3,0
    li    r0,0           # exit
    sc

.func weight
    cmpwi cr0,r3,6
    blt   cr0,small
    mullw r3,r3,r3
    b     out
small:
    slwi  r3,r3,1
out:
    blr
`

func TestIntegrationPipeline(t *testing.T) {
	p, err := AssembleSource(integrationSource)
	if err != nil {
		t.Fatal(err)
	}
	wantOut, wantStatus, err := Run(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: sum of 2i for i<6 plus i^2 for 6..11.
	want := 0
	for i := 0; i < 12; i++ {
		if i < 6 {
			want += 2 * i
		} else {
			want += i * i
		}
	}
	if string(wantOut) != itoa(want)+"\n" || wantStatus != 0 {
		t.Fatalf("native run: %q status %d (want %d)", wantOut, wantStatus, want)
	}

	for _, scheme := range []Scheme{Baseline, OneByte, Nibble, Liao} {
		opt := Options{Scheme: scheme}
		if scheme == OneByte {
			opt.MaxEntries = 32
		}
		img, err := Compress(p, opt)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if err := Verify(p, img); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}

		// Serialize both artifacts and reload.
		var pb, ib bytes.Buffer
		if err := WriteProgram(&pb, p); err != nil {
			t.Fatal(err)
		}
		if err := WriteImage(&ib, img); err != nil {
			t.Fatal(err)
		}
		p2, err := ReadProgram(&pb)
		if err != nil {
			t.Fatal(err)
		}
		img2, err := ReadImage(&ib)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(p2, img2); err != nil {
			t.Fatalf("%v after round trip: %v", scheme, err)
		}
		out, status, err := RunCompressed(img2, 100000)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if string(out) != string(wantOut) || status != wantStatus {
			t.Fatalf("%v: output %q status %d, want %q %d", scheme, out, status, wantOut, wantStatus)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// TestIntegrationDisassembleReassemble: the full gcc stand-in survives a
// disassemble/reassemble round trip word for word.
func TestIntegrationDisassembleReassemble(t *testing.T) {
	p, err := GenerateBenchmark("li")
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range p.Text {
		s := asm.Disassemble(w)
		back, err := asm.Parse(s)
		if err != nil {
			t.Fatalf("word %d %q: %v", i, s, err)
		}
		if back != w {
			t.Fatalf("word %d: %08x -> %q -> %08x", i, w, s, back)
		}
	}
}

// TestIntegrationCorpusGolden pins the corpus: sizes and a cheap checksum
// per benchmark. Any change to generation is an intentional, reviewed
// event — it invalidates every number in EXPERIMENTS.md.
func TestIntegrationCorpusGolden(t *testing.T) {
	type golden struct {
		words int
		sum   uint32
	}
	got := map[string]golden{}
	for _, name := range Benchmarks() {
		p, err := GenerateBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		var sum uint32
		for _, w := range p.Text {
			sum = sum*1664525 + w + 1013904223
		}
		got[name] = golden{len(p.Text), sum}
	}
	// Log for regeneration convenience; assert only stability between the
	// two generations in this process.
	for _, name := range Benchmarks() {
		p2, err := GenerateBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		var sum uint32
		for _, w := range p2.Text {
			sum = sum*1664525 + w + 1013904223
		}
		if got[name].words != len(p2.Text) || got[name].sum != sum {
			t.Errorf("%s: generation not reproducible within process", name)
		}
		t.Logf("%s: %d words, checksum %08x", name, len(p2.Text), sum)
	}
}

package bench

import (
	"strconv"
	"strings"
	"testing"
)

// sharedCorpus keeps test runtime down; runners are read-only over it.
var sharedCorpus = NewCorpus()

func runExp(t *testing.T, id string) *Table {
	t.Helper()
	r, ok := Find(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	tab, err := r.Run(sharedCorpus)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("%s: row width %d vs %d columns", id, len(row), len(tab.Columns))
		}
	}
	return tab
}

// cell parses a ratio or percent cell back to float64.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimPrefix(s, "+"), "pp")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparsable cell %q", s)
	}
	return v
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"fig1", "table1", "fig4", "fig5", "table2", "fig6", "fig7",
		"fig8", "fig9", "fig11", "table3", "baselines", "icache", "penalty",
		"ablation-selection", "ablation-alignment",
		"standardize", "dictplace", "cycles", "profiled", "regalloc", "refill", "shared", "crossover", "scaling",
		"guestprof", "sizeaudit", "exec", "fastprof"}
	for _, id := range want {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	if len(Experiments) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Experiments), len(want))
	}
}

func TestFig1Shapes(t *testing.T) {
	tab := runExp(t, "fig1")
	for _, row := range tab.Rows {
		single := cell(t, row[4])
		multi := cell(t, row[3])
		if single+multi < 99.0 || single+multi > 101.0 {
			t.Errorf("%s: fractions do not partition: %v + %v", row[0], multi, single)
		}
		if single > 35 {
			t.Errorf("%s: single-use %v%% too high vs paper's <20%% average", row[0], single)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tab := runExp(t, "fig4")
	for _, row := range tab.Rows {
		l1, l4 := cell(t, row[1]), cell(t, row[3])
		if l4 > l1+0.001 {
			t.Errorf("%s: len-4 ratio %v worse than len-1 %v", row[0], l4, l1)
		}
	}
}

func TestFig5Monotone(t *testing.T) {
	tab := runExp(t, "fig5")
	for _, row := range tab.Rows {
		prev := 10.0
		for _, c := range row[1:] {
			v := cell(t, c)
			if v > prev+1e-9 {
				t.Errorf("%s: ratio not monotone in codeword count: %v after %v", row[0], v, prev)
			}
			prev = v
		}
	}
}

func TestTable2Ordering(t *testing.T) {
	tab := runExp(t, "table2")
	counts := map[string]float64{}
	for _, row := range tab.Rows {
		counts[row[0]] = cell(t, row[1])
	}
	if !(counts["gcc"] > counts["vortex"] && counts["vortex"] > counts["li"] && counts["li"] > counts["compress"]) {
		t.Errorf("max-codeword ordering does not track size: %v", counts)
	}
}

func TestFig6SinglesDominate(t *testing.T) {
	tab := runExp(t, "fig6")
	last := tab.Rows[len(tab.Rows)-1]
	if frac := cell(t, last[6]); frac < 40 {
		t.Errorf("largest dictionary: single-instruction entries only %v%%", frac)
	}
}

func TestFig8SmallDictHelps(t *testing.T) {
	tab := runExp(t, "fig8")
	mean := tab.Rows[len(tab.Rows)-1]
	if mean[0] != "mean" {
		t.Fatal("mean row missing")
	}
	if v := cell(t, mean[3]); v > 0.95 {
		t.Errorf("512B dictionary mean ratio %v — paper reports ~15%% reduction", v)
	}
}

func TestFig9SumsToOne(t *testing.T) {
	tab := runExp(t, "fig9")
	for _, row := range tab.Rows {
		sum := 0.0
		for _, c := range row[1:] {
			sum += cell(t, c)
		}
		if sum < 99.0 || sum > 101.0 {
			t.Errorf("%s: composition sums to %v%%", row[0], sum)
		}
	}
}

func TestFig11Band(t *testing.T) {
	tab := runExp(t, "fig11")
	for _, row := range tab.Rows {
		nib := cell(t, row[1])
		if nib < 0.25 || nib > 0.80 {
			t.Errorf("%s: nibble ratio %v outside the paper's 30–50%%-reduction neighborhood", row[0], nib)
		}
	}
}

func TestBaselinesOrdering(t *testing.T) {
	tab := runExp(t, "baselines")
	// Columns follow the codec registry's method-byte order plus thumb16:
	// bench, baseline, onebyte, nibble, liao, ccrp, lzw, thumb16.
	if want := append(append([]string{"bench"}, AuditEncodings...), "thumb16"); len(tab.Columns) != len(want) {
		t.Fatalf("baselines columns %v, want %v", tab.Columns, want)
	}
	for _, row := range tab.Rows {
		base, nib, liao := cell(t, row[1]), cell(t, row[3]), cell(t, row[4])
		ccrp, thumb16 := cell(t, row[5]), cell(t, row[7])
		if nib >= base {
			t.Errorf("%s: nibble %v not better than baseline %v", row[0], nib, base)
		}
		if base >= liao {
			t.Errorf("%s: baseline %v not better than liao %v", row[0], base, liao)
		}
		if base >= thumb16 {
			t.Errorf("%s: baseline %v not better than thumb %v", row[0], base, thumb16)
		}
		// Thumb16 and CCRP land in the same neighborhood (the note's "≈");
		// only require both to actually compress.
		if thumb16 >= 1.0 || ccrp >= 1.0 {
			t.Errorf("%s: thumb %v / ccrp %v failed to compress", row[0], thumb16, ccrp)
		}
	}
}

func TestICacheCompressedMissesLess(t *testing.T) {
	tab := runExp(t, "icache")
	for _, row := range tab.Rows {
		// Compare the smallest cache column pair.
		orig, comp := cell(t, row[1]), cell(t, row[2])
		if comp > orig+0.5 {
			t.Errorf("%s: compressed misses more (%v%% vs %v%%) in the smallest cache", row[0], comp, orig)
		}
	}
}

func TestPenaltyTrafficWins(t *testing.T) {
	tab := runExp(t, "penalty")
	for _, row := range tab.Rows {
		if v := cell(t, row[6]); v >= 100 {
			t.Errorf("%s: compressed fetch traffic %v%% of original — no win", row[0], v)
		}
	}
}

func TestAblationSelectionGreedyWins(t *testing.T) {
	tab := runExp(t, "ablation-selection")
	for _, row := range tab.Rows {
		if d := cell(t, row[4]); d > 0.5 {
			t.Errorf("%s: greedy worse than static by %vpp", row[0], d)
		}
		if row[1] != row[2] {
			t.Errorf("%s: indexed greedy ratio %s != reference greedy ratio %s", row[0], row[1], row[2])
		}
	}
}

func TestAblationAlignmentCostsSomething(t *testing.T) {
	tab := runExp(t, "ablation-alignment")
	worse := 0
	for _, row := range tab.Rows {
		if cell(t, row[3]) > 0 {
			worse++
		}
	}
	if worse == 0 {
		t.Error("padding never cost anything — ablation is vacuous")
	}
}

func TestRenderProducesAlignedOutput(t *testing.T) {
	tab := runExp(t, "table3")
	out := tab.Render()
	if !strings.Contains(out, "table3") || !strings.Contains(out, "compress") {
		t.Error("render missing expected content")
	}
	if !strings.Contains(out, "note:") {
		t.Error("render missing the note")
	}
}

func TestRemainingRunnersExecute(t *testing.T) {
	for _, id := range []string{"table1", "fig7"} {
		runExp(t, id)
	}
}

func TestTable1HasTails(t *testing.T) {
	tab := runExp(t, "table1")
	any4bit := false
	for _, row := range tab.Rows {
		n2 := cell(t, row[2])
		n1 := cell(t, row[4])
		n4 := cell(t, row[6])
		if n2 > n1 || n1 > n4 {
			t.Errorf("%s: overflow counts not monotone in resolution", row[0])
		}
		if n4 > 0 {
			any4bit = true
		}
	}
	if !any4bit {
		t.Error("no benchmark has 4-bit-resolution overflows — mega functions missing?")
	}
}

func TestStandardizeNetWins(t *testing.T) {
	tab := runExp(t, "standardize")
	wins := 0
	for _, row := range tab.Rows {
		if v := cell(t, row[6]); v < 0 {
			wins++
		}
	}
	if wins < len(tab.Rows)/2 {
		t.Errorf("standardized prologues won on only %d of %d benchmarks", wins, len(tab.Rows))
	}
}

func TestDictPlacementTrafficGrows(t *testing.T) {
	tab := runExp(t, "dictplace")
	for _, row := range tab.Rows {
		onChip := cell(t, row[1])
		inMem := cell(t, row[2])
		if inMem <= onChip {
			t.Errorf("%s: in-memory dictionary did not add fetch traffic", row[0])
		}
	}
}

func TestProfiledReducesTraffic(t *testing.T) {
	tab := runExp(t, "profiled")
	better := 0
	for _, row := range tab.Rows {
		fs, fd := cell(t, row[3]), cell(t, row[4])
		if fd < fs {
			better++
		}
		// Static size may pay a little, but not collapse.
		if cell(t, row[2]) > cell(t, row[1])+0.05 {
			t.Errorf("%s: profiled static ratio regressed too far", row[0])
		}
	}
	if better == 0 {
		t.Error("profile-guided ranking never reduced fetch traffic")
	}
}

func TestScalingShape(t *testing.T) {
	tab := runExp(t, "scaling")
	var prevCW float64
	var prevBench string
	for _, row := range tab.Rows {
		if row[0] != prevBench {
			prevCW = 0
			prevBench = row[0]
		}
		ratio := cell(t, row[3])
		if ratio < 0.35 || ratio > 0.75 {
			t.Errorf("%s@%s: ratio %v drifted outside the band", row[0], row[1], ratio)
		}
		cw := cell(t, row[4])
		if cw <= prevCW {
			t.Errorf("%s@%s: max codewords %v did not grow with scale", row[0], row[1], cw)
		}
		prevCW = cw
	}
}

func TestCrossoverShape(t *testing.T) {
	tab := runExp(t, "crossover")
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
		if err != nil {
			t.Fatalf("unparsable speedup %q", s)
		}
		return v
	}
	for _, row := range tab.Rows {
		free := parse(row[1])
		slow := parse(row[len(row)-1])
		if free > 1.0 {
			t.Errorf("%s: compression free with zero-cost memory (%.2fx) — decode penalty unmodeled?", row[0], free)
		}
		if slow <= 1.0 {
			t.Errorf("%s: no win even at the slowest memory (%.2fx)", row[0], slow)
		}
		// Monotone non-decreasing speedup across the sweep.
		prev := 0.0
		for _, c := range row[1:] {
			v := parse(c)
			if v < prev-1e-9 {
				t.Errorf("%s: speedup not monotone in miss penalty", row[0])
			}
			prev = v
		}
	}
}

func TestSharedDictionaryFleet(t *testing.T) {
	tab := runExp(t, "shared")
	fleet := tab.Rows[len(tab.Rows)-1]
	if fleet[0] != "fleet" {
		t.Fatal("fleet row missing")
	}
	own, shared := cell(t, fleet[1]), cell(t, fleet[2])
	if own >= 1 || shared >= 1 {
		t.Fatalf("fleet ratios did not compress: own %v shared %v", own, shared)
	}
	// Every per-program shared image verified inside the runner; here just
	// confirm the table covered all benchmarks plus the fleet row.
	if len(tab.Rows) != len(sharedCorpus.Names())+1 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestRefillDictionaryWins(t *testing.T) {
	tab := runExp(t, "refill")
	for _, row := range tab.Rows {
		dictPct := cell(t, row[4])
		ccrpPct := cell(t, row[5])
		if dictPct >= 100 {
			t.Errorf("%s: dictionary refill traffic not below original", row[0])
		}
		if ccrpPct >= 100 {
			t.Errorf("%s: CCRP refill traffic not below original", row[0])
		}
		if dictPct >= ccrpPct {
			t.Errorf("%s: dictionary (%v%%) did not beat CCRP (%v%%)", row[0], dictPct, ccrpPct)
		}
	}
}

func TestRegallocScrambleHurts(t *testing.T) {
	tab := runExp(t, "regalloc")
	for _, row := range tab.Rows {
		if cell(t, row[3]) <= 0 {
			t.Errorf("%s: scrambled allocation did not hurt compression", row[0])
		}
	}
}

func TestSizeAuditShape(t *testing.T) {
	tab := runExp(t, "sizeaudit")
	if len(tab.Rows) != len(sharedCorpus.Names())*len(AuditEncodings) {
		t.Fatalf("%d rows, want %d benchmarks x %d encodings",
			len(tab.Rows), len(sharedCorpus.Names()), len(AuditEncodings))
	}
	for _, row := range tab.Rows {
		// Class shares must partition the image: the runner conservation-
		// checks every audit in bits, so the rendered row sums to ~100%
		// within rounding of the seven printed cells.
		sum := 0.0
		for _, c := range row[4:] {
			sum += cell(t, c)
		}
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("%s/%s: class shares sum to %v%%", row[0], row[1], sum)
		}
		ratio := cell(t, row[3])
		if ratio <= 0 || ratio >= 1.0 {
			t.Errorf("%s/%s: ratio %v did not compress", row[0], row[1], ratio)
		}
	}
	// The dictionary schemes must surface dictionary storage; CCRP its
	// tables; LZW has neither a stub nor a header class.
	for _, row := range tab.Rows {
		enc := row[1]
		dict := cell(t, row[8])
		tbl := cell(t, row[9])
		switch enc {
		case "baseline", "onebyte", "nibble", "liao":
			if dict <= 0 {
				t.Errorf("%s/%s: dictionary share %v not positive", row[0], enc, dict)
			}
		case "ccrp":
			if tbl <= 0 {
				t.Errorf("%s/%s: table share %v not positive (LAT + code table)", row[0], enc, tbl)
			}
		}
	}
}

func TestCyclesSpeedup(t *testing.T) {
	tab := runExp(t, "cycles")
	for _, row := range tab.Rows {
		sp := strings.TrimSuffix(row[3], "x")
		v, err := strconv.ParseFloat(sp, 64)
		if err != nil {
			t.Fatalf("unparsable speedup %q", row[3])
		}
		if v < 1.0 {
			t.Errorf("%s: compression slowed execution (%.2fx) under the small-cache model", row[0], v)
		}
	}
}

package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/guestprof"
	"repro/internal/obs"
)

// bundleStepBudget is the execution budget of a bundle collection run,
// matching the profiled-run budget used everywhere else in the package.
const bundleStepBudget = 200_000_000

// CollectBundle runs one benchmark under one registered codec with a full
// collector attached and returns the assembled run bundle: stats and the
// size audit always; execution profile, symbolized guest profile and
// folded stacks when the codec's images execute on the simulator (the
// size-only comparators contribute their compression telemetry and audit
// only). The benchmark's dictionary-shape options matter only to schemed
// codecs; the codec's own scheme always overrides opt.Scheme.
func CollectBundle(c *Corpus, name, enc string, opt core.Options) (*obs.Bundle, error) {
	cd, err := codec.ByName(enc)
	if err != nil {
		return nil, err
	}
	id := obs.Identity{
		Bench:  name,
		Codec:  strings.ToLower(cd.Name()),
		Method: uint8(cd.Method()),
	}

	var img *core.Image
	if sc, ok := cd.(codec.Schemed); ok {
		o := opt
		o.Scheme = sc.Scheme()
		if o.MaxEntryLen == 0 {
			o.MaxEntryLen = 4
		}
		id.OptionsHash = o.Fingerprint()
		if img, err = c.Image(name, o); err != nil {
			return nil, err
		}
	}
	col := obs.NewCollector(id)

	// The size audit: dictionary images reconstruct it from their marks;
	// other codecs compress once with a live emitter.
	var cpu *machineCPU
	var sym *guestprof.SymTab
	if img != nil {
		sa, err := img.SizeAudit()
		if err != nil {
			return nil, err
		}
		col.SetAudit(sa)
		if cpu, err = core.NewMachine(img); err != nil {
			return nil, err
		}
		if sym, err = img.GuestSymTab(); err != nil {
			return nil, err
		}
	} else {
		p, err := c.Program(name)
		if err != nil {
			return nil, err
		}
		sa, err := cd.Audit(p, codec.Options{})
		if err != nil {
			return nil, err
		}
		col.SetAudit(sa)
		ci, err := cd.Compress(p, codec.Options{Stats: col.Recorder()})
		if err != nil {
			return nil, err
		}
		ex, ok := ci.(codec.Executable)
		if !ok {
			// Size comparator: the bundle carries compression stats and the
			// audit, nothing execution-shaped.
			return col.Bundle()
		}
		if cpu, err = ex.NewMachine(); err != nil {
			return nil, err
		}
		// Executable comparators run at native addresses, so the original
		// program's symbol table attributes their cycles.
		sym = guestprof.NewProgramSymTab(p)
	}

	rec := col.Recorder()
	cpu.Record = rec
	if img != nil {
		cpu.EnableHeat(len(img.Entries))
	}
	gp := guestprof.New(sym)
	gp.Attach(cpu)
	if _, err := cpu.Run(bundleStepBudget); err != nil {
		return nil, fmt.Errorf("bench: bundle run of %s/%s: %w", name, enc, err)
	}
	cpu.FlushEpoch()

	prof := core.CollectRunProfile(img, cpu, rec.Snapshot(), nil, nil)
	if prof.Name == "" {
		prof.Name = name
	}
	col.SetProfile(prof)
	guest := gp.Profile(name)
	var sb strings.Builder
	if err := gp.WriteFolded(&sb); err != nil {
		return nil, err
	}
	col.SetGuest(guest, sb.String())
	return col.Bundle()
}

// WriteBundles collects and writes one bundle per (benchmark, codec) pair
// into dir/<bench>.<codec>/. A nil or empty encs selects every registered
// codec. The timestamp is stamped verbatim into each bundle's identity;
// pass "" for reproducible output.
func WriteBundles(c *Corpus, dir string, opt core.Options, encs []string, timestamp string) error {
	if len(encs) == 0 {
		encs = AuditEncodings
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	names := c.Names()
	return c.each(len(names)*len(encs), func(k int) error {
		name, enc := names[k/len(encs)], encs[k%len(encs)]
		b, err := CollectBundle(c, name, enc, opt)
		if err != nil {
			return err
		}
		b.Identity.Timestamp = timestamp
		return obs.Write(filepath.Join(dir, name+"."+enc), b)
	})
}

package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestBundleRoundTrip is the flight-recorder contract over the full
// matrix: for every benchmark under every registered codec, the collected
// bundle survives Write → Open with every section reflect.DeepEqual, and
// rewriting the reopened bundle reproduces every file byte for byte
// (canonical encoding: checksums are stable across round trips).
func TestBundleRoundTrip(t *testing.T) {
	c := NewCorpus()
	for _, name := range c.Names() {
		for _, enc := range AuditEncodings {
			t.Run(name+"/"+enc, func(t *testing.T) {
				t.Parallel()
				b, err := CollectBundle(c, name, enc, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				base := t.TempDir()
				dir := filepath.Join(base, "bundle")
				if err := obs.Write(dir, b); err != nil {
					t.Fatal(err)
				}
				got, err := obs.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Identity, b.Identity) {
					t.Errorf("identity changed across round trip:\n got %+v\nwant %+v", got.Identity, b.Identity)
				}
				if !reflect.DeepEqual(got.Stats, b.Stats) {
					t.Errorf("stats section changed across round trip")
				}
				if !reflect.DeepEqual(got.Profile, b.Profile) {
					t.Errorf("profile section changed across round trip:\n got %+v\nwant %+v", got.Profile, b.Profile)
				}
				if !reflect.DeepEqual(got.Guest, b.Guest) {
					t.Errorf("guest section changed across round trip")
				}
				if got.GuestFolded != b.GuestFolded {
					t.Errorf("folded stacks changed across round trip")
				}
				if !reflect.DeepEqual(got.Audit, b.Audit) {
					t.Errorf("audit section changed across round trip")
				}
				if got.AuditCSV != b.AuditCSV {
					t.Errorf("audit CSV changed across round trip")
				}
				if !reflect.DeepEqual(got.Trace, b.Trace) {
					t.Errorf("trace section changed across round trip")
				}

				// Rewriting the reopened bundle must reproduce every file
				// byte-identically — the property bundle checksums and diffs
				// rest on.
				dir2 := filepath.Join(base, "rewrite")
				if err := obs.Write(dir2, got); err != nil {
					t.Fatal(err)
				}
				entries, err := os.ReadDir(dir)
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range entries {
					want, err := os.ReadFile(filepath.Join(dir, e.Name()))
					if err != nil {
						t.Fatal(err)
					}
					gotData, err := os.ReadFile(filepath.Join(dir2, e.Name()))
					if err != nil {
						t.Fatalf("rewrite lost %s: %v", e.Name(), err)
					}
					if string(gotData) != string(want) {
						t.Errorf("%s: rewrite is not byte-identical", e.Name())
					}
				}
			})
		}
	}
}

// TestBundleSectionsByCodec pins which sections each codec family
// contributes: executable codecs produce the full flight-record, the
// size-only comparator stays stats+audit.
func TestBundleSectionsByCodec(t *testing.T) {
	c := NewCorpus()
	for _, enc := range AuditEncodings {
		b, err := CollectBundle(c, "compress", enc, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", enc, err)
		}
		if b.Audit == nil || b.AuditCSV == "" {
			t.Errorf("%s: bundle carries no size audit", enc)
		}
		if b.Stats == nil {
			t.Errorf("%s: bundle carries no stats snapshot", enc)
		}
		executable := enc != "lzw"
		if (b.Profile != nil) != executable {
			t.Errorf("%s: profile section present=%v, want %v", enc, b.Profile != nil, executable)
		}
		if (b.Guest != nil) != executable {
			t.Errorf("%s: guest section present=%v, want %v", enc, b.Guest != nil, executable)
		}
		if executable && b.GuestFolded == "" {
			t.Errorf("%s: executable bundle has no folded stacks", enc)
		}
	}
}

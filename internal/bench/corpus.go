// Package bench runs the paper's experiments: one runner per table and
// figure of the evaluation (plus the extension experiments), shared
// between the experiments command and the testing.B benchmarks at the
// repository root. Results come back as renderable tables so both callers
// print identical rows. The Engine executes runners — and the
// per-benchmark rows inside them — on a bounded worker pool over a corpus
// whose caches deduplicate in-flight work, so sweeps scale with cores
// while producing byte-identical output to a sequential run.
package bench

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/trace"
)

// flight is one singleflight cache slot: the first requester computes the
// value while later requesters wait on done. Completed flights stay in the
// cache as the memoized result, so deduplication and memoization are the
// same mechanism.
type flight[T any] struct {
	done chan struct{}
	val  T
	err  error
}

func newFlight[T any]() *flight[T] { return &flight[T]{done: make(chan struct{})} }

// corpusState is the cache shared by every view of a corpus.
type corpusState struct {
	mu     sync.Mutex
	progs  map[string]*flight[*program.Program]
	images map[imageKey]*flight[*core.Image]
}

// Corpus memoizes generated benchmarks and compression results so sweeps
// that revisit configurations do not recompute them. It is safe for
// concurrent use: parallel callers asking for the same key never duplicate
// a generation or compression (the loser waits for the winner's result),
// and no lock is held across the underlying computation.
//
// A Corpus value is a view: Bound returns a view sharing the same caches
// but carrying a context for cancellation, a worker pool for row-level
// parallelism, and a stats recorder. The zero-configured view from
// NewCorpus runs sequentially and records nothing.
type Corpus struct {
	state *corpusState

	// Engine-bound view configuration (nil/zero on a plain corpus).
	ctx context.Context
	sem chan struct{} // bounded worker pool; nil means sequential rows
	rec *stats.Recorder
	sp  *trace.Span // parent span for work done through this view
}

// imageKey captures the cacheable compression parameters. Profile-guided
// runs (Options.DynProfile) are never cached; callers compress directly.
// Keys are computed over core-normalized Options so configurations that
// produce identical images (e.g. MaxEntries 0 vs an explicit scheme
// maximum) share one cache entry.
type imageKey struct {
	name        string
	scheme      codeword.Scheme
	maxEntries  int
	maxEntryLen int
	strategy    dictionary.Strategy
}

func keyFor(name string, opt core.Options) imageKey {
	opt = opt.Normalized()
	return imageKey{
		name:        name,
		scheme:      opt.Scheme,
		maxEntries:  opt.MaxEntries,
		maxEntryLen: opt.MaxEntryLen,
		strategy:    opt.Strategy,
	}
}

// NewCorpus creates an empty cache.
func NewCorpus() *Corpus {
	return &Corpus{state: &corpusState{
		progs:  map[string]*flight[*program.Program]{},
		images: map[imageKey]*flight[*core.Image]{},
	}}
}

// Bound returns a view of the corpus sharing its caches but carrying the
// engine's context (checked before starting and while waiting for work),
// worker pool (used by runners for row-level parallelism) and recorder
// (receives corpus, pipeline and machine counters). Any argument may be
// nil.
func (c *Corpus) Bound(ctx context.Context, sem chan struct{}, rec *stats.Recorder) *Corpus {
	return &Corpus{state: c.state, ctx: ctx, sem: sem, rec: rec, sp: c.sp}
}

// WithSpan returns a view whose corpus work (generations, compressions,
// rows) emits child spans under sp. A nil span disables tracing for the
// view.
func (c *Corpus) WithSpan(sp *trace.Span) *Corpus {
	v := *c
	v.sp = sp
	return &v
}

// Recorder returns the view's stats recorder (nil on an unbound corpus —
// still a valid sink).
func (c *Corpus) Recorder() *stats.Recorder { return c.rec }

// Span returns the view's parent trace span (nil on an untraced view —
// still a valid parent).
func (c *Corpus) Span() *trace.Span { return c.sp }

// err reports the view's cancellation state.
func (c *Corpus) err() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// Names lists the benchmarks in the paper's order.
func (c *Corpus) Names() []string { return synth.BenchmarkNames() }

// Fork returns a corpus sharing the generated programs but with an empty
// image cache — benchmarks use it so each timed iteration re-runs the
// compression being measured while amortizing program generation.
func (c *Corpus) Fork() *Corpus {
	c.state.mu.Lock()
	defer c.state.mu.Unlock()
	f := NewCorpus()
	for k, v := range c.state.progs {
		f.state.progs[k] = v
	}
	return f
}

// wait blocks until the flight completes or the view is cancelled.
func waitFlight[T any](c *Corpus, f *flight[T]) (T, error) {
	if c.ctx == nil {
		<-f.done
	} else {
		select {
		case <-f.done:
		case <-c.ctx.Done():
			var zero T
			return zero, c.ctx.Err()
		}
	}
	return f.val, f.err
}

// Program returns the named benchmark, generating it on first use. Only
// one caller generates a given benchmark; concurrent requesters share the
// result.
func (c *Corpus) Program(name string) (*program.Program, error) {
	if err := c.err(); err != nil {
		return nil, err
	}
	st := c.state
	st.mu.Lock()
	f, ok := st.progs[name]
	if ok {
		st.mu.Unlock()
		return waitFlight(c, f)
	}
	f = newFlight[*program.Program]()
	st.progs[name] = f
	st.mu.Unlock()

	stop := c.rec.Time("corpus.generate")
	sp := c.sp.Child("corpus.generate").Set("bench", name)
	f.val, f.err = synth.Generate(name)
	sp.End()
	stop()
	c.rec.Add("corpus.generations", 1)
	close(f.done)
	return f.val, f.err
}

// Image compresses the named benchmark under the options, memoized on the
// normalized parameters. Only one caller compresses a given configuration;
// concurrent requesters share the result. Options carrying a DynProfile
// are rejected — profile-guided images are not cacheable by parameters
// alone.
func (c *Corpus) Image(name string, opt core.Options) (*core.Image, error) {
	if opt.DynProfile != nil {
		return nil, fmt.Errorf("bench: profile-guided compression is not cacheable; call core.Compress directly")
	}
	if err := c.err(); err != nil {
		return nil, err
	}
	key := keyFor(name, opt)
	st := c.state
	st.mu.Lock()
	f, ok := st.images[key]
	if ok {
		st.mu.Unlock()
		return waitFlight(c, f)
	}
	f = newFlight[*core.Image]()
	st.images[key] = f
	st.mu.Unlock()

	f.val, f.err = c.compress(name, opt)
	close(f.done)
	return f.val, f.err
}

// compress is the flight body: generate (or fetch) the program, then run
// the pipeline with the view's recorder threaded through.
func (c *Corpus) compress(name string, opt core.Options) (*core.Image, error) {
	p, err := c.Program(name)
	if err != nil {
		return nil, err
	}
	opt.Stats = c.rec
	sp := c.sp.Child("corpus.compress").Set("bench", name).Set("scheme", opt.Scheme.String())
	opt.Trace = sp
	stop := c.rec.Time("corpus.compress")
	img, err := core.Compress(p.Clone(), opt)
	stop()
	sp.End()
	c.rec.Add("corpus.compressions", 1)
	if err != nil {
		return nil, fmt.Errorf("bench: compressing %s: %w", name, err)
	}
	return img, nil
}

// each runs fn(0..n-1) and returns the first error. On an engine-bound
// view it distributes the indices over the shared worker pool: the calling
// goroutine always participates (it already owns a pool slot, so progress
// is guaranteed even when the pool is saturated), and helper goroutines
// join for any additional slots they can acquire. On a plain corpus it is
// a sequential loop. Completion order is arbitrary; callers index into
// pre-sized result slices to keep output deterministic.
func (c *Corpus) each(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	// run wraps one unit of work in a row span attributing it to the pool
	// worker that executed it (0 = the calling goroutine, 1.. = helpers).
	run := fn
	if c.sp != nil {
		run = func(i int) error { return c.tracedItem(i, 0, fn) }
	}
	if c.sem == nil || cap(c.sem) <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := c.err(); err != nil {
				return err
			}
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		next     int
		firstErr error
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	work := func(worker int) {
		for {
			if err := c.err(); err != nil {
				fail(err)
				return
			}
			i, ok := claim()
			if !ok {
				return
			}
			var err error
			if c.sp != nil {
				err = c.tracedItem(i, worker, fn)
			} else {
				err = fn(i)
			}
			if err != nil {
				fail(err)
			}
		}
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	helpers := cap(c.sem)
	if helpers > n-1 {
		helpers = n - 1
	}
	var ctxDone <-chan struct{}
	if c.ctx != nil {
		ctxDone = c.ctx.Done()
	}
	for h := 0; h < helpers; h++ {
		h := h
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case c.sem <- struct{}{}:
				defer func() { <-c.sem }()
				work(h + 1)
			case <-done:
			case <-ctxDone:
			}
		}()
	}
	work(0) // caller participates on its own pool slot
	close(done)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// tracedItem runs one unit of pool work under a row span carrying the
// item index and the executing worker.
func (c *Corpus) tracedItem(i, worker int, fn func(i int) error) error {
	sp := c.sp.Child("row").SetInt("row", int64(i)).SetInt("worker", int64(worker))
	err := fn(i)
	sp.End()
	return err
}

// rowsInOrder builds n table rows concurrently on the corpus's pool and
// appends them to t in index order, so parallel execution renders
// byte-identically to sequential.
func rowsInOrder(c *Corpus, t *Table, n int, fn func(i int) ([]string, error)) error {
	rows := make([][]string, n)
	if err := c.each(n, func(i int) error {
		row, err := fn(i)
		rows[i] = row
		return err
	}); err != nil {
		return err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return nil
}

// Package bench runs the paper's experiments: one runner per table and
// figure of the evaluation (plus the extension experiments), shared
// between the experiments command and the testing.B benchmarks at the
// repository root. Results come back as renderable tables so both callers
// print identical rows.
package bench

import (
	"fmt"
	"sync"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/program"
	"repro/internal/synth"
)

// Corpus memoizes generated benchmarks and compression results so sweeps
// that revisit configurations do not recompute them.
type Corpus struct {
	mu     sync.Mutex
	progs  map[string]*program.Program
	images map[imageKey]*core.Image
}

// imageKey captures the cacheable compression parameters. Profile-guided
// runs (Options.DynProfile) are never cached; callers compress directly.
type imageKey struct {
	name        string
	scheme      codeword.Scheme
	maxEntries  int
	maxEntryLen int
	strategy    dictionary.Strategy
}

func keyFor(name string, opt core.Options) imageKey {
	return imageKey{
		name:        name,
		scheme:      opt.Scheme,
		maxEntries:  opt.MaxEntries,
		maxEntryLen: opt.MaxEntryLen,
		strategy:    opt.Strategy,
	}
}

// NewCorpus creates an empty cache.
func NewCorpus() *Corpus {
	return &Corpus{
		progs:  map[string]*program.Program{},
		images: map[imageKey]*core.Image{},
	}
}

// Names lists the benchmarks in the paper's order.
func (c *Corpus) Names() []string { return synth.BenchmarkNames() }

// Fork returns a corpus sharing the generated programs but with an empty
// image cache — benchmarks use it so each timed iteration re-runs the
// compression being measured while amortizing program generation.
func (c *Corpus) Fork() *Corpus {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := NewCorpus()
	for k, v := range c.progs {
		f.progs[k] = v
	}
	return f
}

// Program returns the named benchmark, generating it on first use.
func (c *Corpus) Program(name string) (*program.Program, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.progs[name]; ok {
		return p, nil
	}
	p, err := synth.Generate(name)
	if err != nil {
		return nil, err
	}
	c.progs[name] = p
	return p, nil
}

// Image compresses the named benchmark under the options, memoized.
// Options carrying a DynProfile are rejected — profile-guided images are
// not cacheable by parameters alone.
func (c *Corpus) Image(name string, opt core.Options) (*core.Image, error) {
	if opt.DynProfile != nil {
		return nil, fmt.Errorf("bench: profile-guided compression is not cacheable; call core.Compress directly")
	}
	key := keyFor(name, opt)
	c.mu.Lock()
	if img, ok := c.images[key]; ok {
		c.mu.Unlock()
		return img, nil
	}
	c.mu.Unlock()

	p, err := c.Program(name)
	if err != nil {
		return nil, err
	}
	img, err := core.Compress(p.Clone(), opt)
	if err != nil {
		return nil, fmt.Errorf("bench: compressing %s: %w", name, err)
	}
	c.mu.Lock()
	c.images[key] = img
	c.mu.Unlock()
	return img, nil
}

package bench

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/stats"
)

// TestImageKeyNormalization: MaxEntries 0 and an explicit scheme maximum
// must share one cache entry (they produce identical images), as must
// MaxEntryLen 0 and the explicit default of 4.
func TestImageKeyNormalization(t *testing.T) {
	zero := core.Options{Scheme: codeword.Baseline}
	explicit := core.Options{
		Scheme:      codeword.Baseline,
		MaxEntries:  codeword.Baseline.MaxEntries(),
		MaxEntryLen: 4,
	}
	if keyFor("x", zero) != keyFor("x", explicit) {
		t.Errorf("normalized keys differ: %+v vs %+v", keyFor("x", zero), keyFor("x", explicit))
	}
	over := core.Options{Scheme: codeword.OneByte, MaxEntries: 1 << 20, MaxEntryLen: 4}
	max := core.Options{Scheme: codeword.OneByte, MaxEntries: codeword.OneByte.MaxEntries(), MaxEntryLen: 4}
	if keyFor("x", over) != keyFor("x", max) {
		t.Error("beyond-maximum MaxEntries does not collapse onto the scheme maximum")
	}
	if keyFor("x", zero) == keyFor("y", zero) {
		t.Error("different benchmarks share a key")
	}
}

func TestAliasedOptionsCompressOnce(t *testing.T) {
	rec := stats.New()
	c := NewCorpus().Bound(context.Background(), nil, rec)
	a, err := c.Image("compress", core.Options{Scheme: codeword.Baseline, MaxEntryLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Image("compress", core.Options{
		Scheme:      codeword.Baseline,
		MaxEntries:  codeword.Baseline.MaxEntries(),
		MaxEntryLen: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("aliased options did not share the cached image")
	}
	if got := rec.Snapshot().Counter("corpus.compressions"); got != 1 {
		t.Errorf("compressions = %d, want 1", got)
	}
}

// TestCorpusConcurrentImage hammers Corpus.Image from many goroutines with
// overlapping keys (including aliases of the same normalized key) and
// asserts exactly one compression per distinct key plus identical results
// for every requester. Run with -race to exercise the synchronization.
func TestCorpusConcurrentImage(t *testing.T) {
	rec := stats.New()
	c := NewCorpus().Bound(context.Background(), nil, rec)
	names := []string{"compress", "li"}
	opts := []core.Options{
		{Scheme: codeword.Baseline, MaxEntryLen: 4},
		{Scheme: codeword.Baseline, MaxEntries: codeword.Baseline.MaxEntries(), MaxEntryLen: 4}, // alias of the previous
		{Scheme: codeword.Baseline, MaxEntries: 64, MaxEntryLen: 4},
		{Scheme: codeword.Nibble, MaxEntryLen: 4},
		{Scheme: codeword.Nibble}, // alias of the previous (MaxEntryLen 0 -> 4)
		{Scheme: codeword.OneByte, MaxEntries: 16, MaxEntryLen: 4},
	}
	distinctKeys := map[imageKey]bool{}
	for _, name := range names {
		for _, opt := range opts {
			distinctKeys[keyFor(name, opt)] = true
		}
	}

	const workers = 16
	images := make([][]*core.Image, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, name := range names {
				for _, opt := range opts {
					img, err := c.Image(name, opt)
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					images[w] = append(images[w], img)
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	snap := rec.Snapshot()
	if got := snap.Counter("corpus.compressions"); got != int64(len(distinctKeys)) {
		t.Errorf("compressions = %d, want %d (one per distinct normalized key)", got, len(distinctKeys))
	}
	if got := snap.Counter("corpus.generations"); got != int64(len(names)) {
		t.Errorf("generations = %d, want %d", got, len(names))
	}
	for w := 1; w < workers; w++ {
		for i := range images[0] {
			a, b := images[0][i], images[w][i]
			if a != b {
				t.Fatalf("worker %d item %d: got a different image pointer", w, i)
			}
			if !bytes.Equal(a.Stream, b.Stream) {
				t.Fatalf("worker %d item %d: streams differ", w, i)
			}
		}
	}
}

func TestCorpusCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCorpus().Bound(ctx, nil, nil)
	if _, err := c.Program("compress"); err == nil {
		t.Error("Program on a cancelled view did not fail")
	}
	if _, err := c.Image("compress", core.Options{Scheme: codeword.Baseline}); err == nil {
		t.Error("Image on a cancelled view did not fail")
	}
	// The caches must not have latched the cancellation: a fresh view over
	// the same state works.
	fresh := NewCorpus()
	fresh.state = c.state
	if _, err := fresh.Program("compress"); err != nil {
		t.Errorf("cache poisoned by cancellation: %v", err)
	}
}

func TestEachParallelMatchesSequential(t *testing.T) {
	sem := make(chan struct{}, 4)
	sem <- struct{}{} // the caller's slot, as the engine would hold it
	c := NewCorpus().Bound(context.Background(), sem, nil)
	const n = 100
	seen := make([]int, n)
	if err := c.each(n, func(i int) error { seen[i] = i * i; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		if v != i*i {
			t.Fatalf("item %d not executed (got %d)", i, v)
		}
	}
}

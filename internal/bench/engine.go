package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
)

// EngineOptions configures a parallel experiment run.
type EngineOptions struct {
	// Parallel bounds the number of concurrently executing units of work —
	// experiment runners and the per-benchmark rows inside them share one
	// pool. 0 means runtime.GOMAXPROCS(0); 1 runs fully sequentially.
	Parallel int

	// Recorder, when non-nil, accumulates the totals of every experiment's
	// per-run recorder (for a whole-run report). Each Result additionally
	// carries its own per-experiment snapshot.
	Recorder *stats.Recorder

	// Tracer, when non-nil, collects one span tree per experiment
	// (experiment:<id> at the root; corpus, pipeline and row spans below)
	// for Chrome trace-event export. Nil disables tracing at zero cost.
	Tracer *trace.Tracer

	// Collector, when non-nil, is the engine run's bundle sink: every
	// experiment's snapshot merges into its recorder (in addition to
	// Recorder), and when no Tracer was given the collector's tracer
	// gathers the span trees, so one bundle captures the whole run.
	Collector *obs.Collector
}

// Result is one experiment's outcome.
type Result struct {
	ID    string
	Title string
	Table *Table // nil when Err is set
	Err   error

	// Wall is the experiment's wall-clock time, as measured by the
	// recorder's experiment.wall phase.
	Wall time.Duration

	// Stats is the experiment's own recorder snapshot: corpus activity
	// (generations, compressions — cache hits perform neither), pipeline
	// phase timings, dictionary-builder counters and machine counters
	// attributable to this experiment's cache misses and runs.
	Stats stats.Snapshot
}

// Engine runs experiment runners over one shared corpus on a bounded
// worker pool. Output is deterministic: results come back in input order
// and each table's rows are built in paper order regardless of which
// worker finished first, so a parallel run renders byte-identically to a
// sequential one.
type Engine struct {
	corpus *Corpus
	opt    EngineOptions
}

// NewEngine wraps a corpus. The corpus may be shared with other engines or
// direct callers; its caches deduplicate concurrent work.
func NewEngine(c *Corpus, opt EngineOptions) *Engine {
	if opt.Parallel <= 0 {
		opt.Parallel = runtime.GOMAXPROCS(0)
	}
	if opt.Tracer == nil {
		opt.Tracer = opt.Collector.Tracer() // nil on a nil collector
	}
	return &Engine{corpus: c, opt: opt}
}

// Run executes the runners and returns one Result per runner, in input
// order. The first runner error (in input order) is also returned as the
// engine error; remaining experiments still run to completion unless the
// context is cancelled. A cancelled context abandons unstarted work and
// returns the context error.
func (e *Engine) Run(ctx context.Context, runners []Runner) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sem := make(chan struct{}, e.opt.Parallel)
	results := make([]Result, len(runners))
	var wg sync.WaitGroup

launch:
	for i, r := range runners {
		// Each runner occupies one pool slot; its rows borrow further slots
		// through the corpus view's worker pool.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			for j := i; j < len(runners); j++ {
				results[j] = Result{ID: runners[j].ID, Title: runners[j].Title, Err: ctx.Err()}
			}
			break launch
		}
		wg.Add(1)
		go func(i int, r Runner) {
			defer wg.Done()
			defer func() { <-sem }()
			rec := stats.New()
			sp := e.opt.Tracer.Root("experiment:"+r.ID).
				Set("id", r.ID).Set("title", r.Title).SetInt("slot", int64(i))
			view := e.corpus.Bound(ctx, sem, rec).WithSpan(sp)
			stop := rec.Time("experiment.wall")
			tab, err := r.Run(view)
			stop()
			sp.End()
			snap := rec.Snapshot()
			results[i] = Result{
				ID:    r.ID,
				Title: r.Title,
				Table: tab,
				Err:   err,
				Wall:  snap.Phase("experiment.wall").Duration(),
				Stats: snap,
			}
			e.opt.Recorder.Merge(snap)
			e.opt.Collector.Recorder().Merge(snap)
		}(i, r)
	}
	wg.Wait()

	for _, res := range results {
		if res.Err != nil {
			return results, fmt.Errorf("%s: %w", res.ID, res.Err)
		}
	}
	return results, nil
}

// RunIDs resolves experiment ids (nil or empty means all, in paper order)
// and runs them.
func (e *Engine) RunIDs(ctx context.Context, ids []string) ([]Result, error) {
	runners, err := ResolveIDs(ids)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, runners)
}

// ResolveIDs maps experiment ids to runners; nil or empty selects every
// deterministic experiment in paper order (Timing experiments, whose
// numbers are host-dependent, run only when named explicitly).
func ResolveIDs(ids []string) ([]Runner, error) {
	if len(ids) == 0 {
		return Deterministic(), nil
	}
	out := make([]Runner, 0, len(ids))
	for _, id := range ids {
		r, ok := Find(id)
		if !ok {
			return nil, fmt.Errorf("bench: unknown experiment %q", id)
		}
		out = append(out, r)
	}
	return out, nil
}

// ParallelEach runs fn(0..n-1) on its own bounded pool of the given width
// — the same caller-participates scheduler experiment rows use — and
// returns the first error encountered (all started work completes first).
// It serves callers outside an engine run, like ccfleet's fleet
// compressions.
func ParallelEach(ctx context.Context, parallel, n int, fn func(i int) error) error {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, parallel)
	select {
	case sem <- struct{}{}: // the caller's slot
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-sem }()
	c := &Corpus{ctx: ctx, sem: sem}
	return c.each(n, fn)
}

package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// renderAll concatenates the rendered tables of a result set.
func renderAll(t *testing.T, results []Result) string {
	t.Helper()
	var sb strings.Builder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		sb.WriteString(r.Table.Render())
	}
	return sb.String()
}

// TestEngineDeterministic is the acceptance check for the parallel engine:
// running every experiment with a parallel pool must render byte-identical
// output to the sequential path. Both runs share the corpus, so the second
// pass re-executes only the non-cacheable work.
func TestEngineDeterministic(t *testing.T) {
	ctx := context.Background()
	par := NewEngine(sharedCorpus, EngineOptions{Parallel: 4})
	parResults, err := par.RunIDs(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	seq := NewEngine(sharedCorpus, EngineOptions{Parallel: 1})
	seqResults, err := seq.RunIDs(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	det := Deterministic()
	if len(parResults) != len(det) || len(seqResults) != len(det) {
		t.Fatalf("result counts: parallel %d sequential %d want %d",
			len(parResults), len(seqResults), len(det))
	}
	for i, r := range parResults {
		if r.ID != det[i].ID {
			t.Errorf("result %d out of order: %s want %s", i, r.ID, det[i].ID)
		}
	}
	p, s := renderAll(t, parResults), renderAll(t, seqResults)
	if p != s {
		t.Errorf("parallel output differs from sequential:\n--- parallel ---\n%s\n--- sequential ---\n%s", p, s)
	}
}

func TestEngineRecordsStats(t *testing.T) {
	totals := stats.New()
	e := NewEngine(NewCorpus(), EngineOptions{Parallel: 4, Recorder: totals})
	// Two separate engine passes so the cache-attribution assertions below
	// are deterministic (concurrent experiments race for cache misses).
	results, err := e.RunIDs(context.Background(), []string{"fig4"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.RunIDs(context.Background(), []string{"table2"})
	if err != nil {
		t.Fatal(err)
	}
	results = append(results, r2...)
	// fig4 compresses 8 benchmarks at 4 entry lengths; everything it needs
	// is a cache miss on a fresh corpus.
	fig4 := results[0]
	if got := fig4.Stats.Counter("corpus.compressions"); got != 32 {
		t.Errorf("fig4 compressions = %d, want 32", got)
	}
	if fig4.Stats.Counter("dict.heap_pops") == 0 {
		t.Error("dictionary builder counters missing from fig4 stats")
	}
	if fig4.Stats.Phase("core.build").Count == 0 || fig4.Stats.Phase("core.encode").Count == 0 {
		t.Error("core phase timers missing from fig4 stats")
	}
	if fig4.Wall <= 0 {
		t.Error("experiment wall time not recorded")
	}
	// table2's baseline configuration is len=4, already compressed by fig4:
	// the shared cache means zero new compressions.
	if got := results[1].Stats.Counter("corpus.compressions"); got != 0 {
		t.Errorf("table2 compressions = %d, want 0 (cache hits)", got)
	}
	// Engine totals aggregate both experiments.
	if got := totals.Snapshot().Counter("corpus.compressions"); got != 32 {
		t.Errorf("total compressions = %d, want 32", got)
	}
	if totals.Snapshot().Phase("experiment.wall").Count != 2 {
		t.Error("totals missing per-experiment wall phases")
	}
}

func TestEngineErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	runners := []Runner{
		{ID: "ok1", Title: "ok", Run: func(c *Corpus) (*Table, error) {
			tb := &Table{ID: "ok1", Columns: []string{"x"}}
			tb.AddRow("1")
			return tb, nil
		}},
		{ID: "bad", Title: "bad", Run: func(c *Corpus) (*Table, error) { return nil, boom }},
		{ID: "ok2", Title: "ok", Run: func(c *Corpus) (*Table, error) {
			tb := &Table{ID: "ok2", Columns: []string{"x"}}
			tb.AddRow("2")
			return tb, nil
		}},
	}
	e := NewEngine(NewCorpus(), EngineOptions{Parallel: 2})
	results, err := e.Run(context.Background(), runners)
	if !errors.Is(err, boom) {
		t.Fatalf("engine error = %v, want wrapped boom", err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("healthy experiments were poisoned by the failing one")
	}
	if results[1].Err == nil {
		t.Error("failing experiment's result lost its error")
	}
	if results[0].Table == nil || results[2].Table == nil {
		t.Error("healthy experiments missing tables")
	}
}

func TestEngineCancellation(t *testing.T) {
	started := make(chan struct{})
	block := make(chan struct{})
	var runners []Runner
	runners = append(runners, Runner{ID: "slow", Title: "slow", Run: func(c *Corpus) (*Table, error) {
		close(started)
		<-block
		return nil, errors.New("should have been cancelled first")
	}})
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("later%d", i)
		runners = append(runners, Runner{ID: id, Title: id, Run: func(c *Corpus) (*Table, error) {
			tb := &Table{ID: id, Columns: []string{"x"}}
			tb.AddRow("v")
			return tb, nil
		}})
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := NewEngine(NewCorpus(), EngineOptions{Parallel: 1})
	done := make(chan struct{})
	var results []Result
	var err error
	go func() {
		results, err = e.Run(ctx, runners)
		close(done)
	}()
	<-started
	cancel()
	close(block)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("engine did not return after cancellation")
	}
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	cancelled := 0
	for _, r := range results[1:] {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no unstarted experiment reported context.Canceled")
	}
}

func TestResolveIDs(t *testing.T) {
	all, err := ResolveIDs(nil)
	if err != nil || len(all) != len(Deterministic()) {
		t.Fatalf("ResolveIDs(nil) = %d runners, err %v", len(all), err)
	}
	for _, r := range all {
		if r.Timing {
			t.Errorf("ResolveIDs(nil) included timing experiment %q", r.ID)
		}
	}
	if _, err := ResolveIDs([]string{"exec"}); err != nil {
		t.Errorf("timing experiment not resolvable by name: %v", err)
	}
	two, err := ResolveIDs([]string{"fig5", "fig4"})
	if err != nil || len(two) != 2 || two[0].ID != "fig5" || two[1].ID != "fig4" {
		t.Fatalf("ResolveIDs order not preserved: %v err %v", two, err)
	}
	if _, err := ResolveIDs([]string{"nope"}); err == nil {
		t.Error("unknown id did not error")
	}
}

func TestParallelEach(t *testing.T) {
	const n = 50
	out := make([]int, n)
	if err := ParallelEach(context.Background(), 4, n, func(i int) error {
		out[i] = i + 1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("item %d not executed", i)
		}
	}
	wantErr := errors.New("stop")
	err := ParallelEach(context.Background(), 4, n, func(i int) error {
		if i == 7 {
			return wantErr
		}
		return nil
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("error not propagated: %v", err)
	}
}

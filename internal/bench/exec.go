package bench

import (
	"fmt"
	"time"

	"repro/internal/codeword"
	"repro/internal/core"
)

func init() {
	Experiments = append(Experiments, Runner{
		ID:     "exec",
		Title:  "Ext. O: wall-clock execution speed of the predecoded engine",
		Run:    ExtExec,
		Timing: true,
	})
}

// execBudget bounds every timed run; the corpus benchmarks finish far
// below it.
const execBudget = 200_000_000

// measureRuns times repeated Runs of one already-constructed machine,
// Reset between runs — the predecoded engine's steady-state shape. The
// first (untimed) run pays the lazy predecode build; best-of-5 suppresses
// scheduler noise. Returns the best wall time and the steps of one run.
func measureRuns(cpu *machineCPU) (time.Duration, int64, error) {
	if _, err := cpu.Run(execBudget); err != nil {
		return 0, 0, err
	}
	steps := cpu.Stats.Steps
	var best time.Duration
	for r := 0; r < 5; r++ {
		if err := cpu.Reset(); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		if _, err := cpu.Run(execBudget); err != nil {
			return 0, 0, err
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return best, steps, nil
}

// ExtExec measures native vs compressed execution speed per dictionary
// scheme through the fused fast loop. Steps are identical by construction
// (the equivalence tests prove it); the interesting number is the ratio —
// the paper's premise is that dictionary decompression in the fetch stage
// costs ~nothing, and with predecoded tables the simulator now shows
// that. Rows run sequentially on purpose: parallel timing on a shared
// pool would measure contention, not the engine.
func ExtExec(c *Corpus) (*Table, error) {
	names := []string{"compress", "perl"}
	schemes := []codeword.Scheme{
		codeword.Baseline, codeword.OneByte, codeword.Nibble, codeword.Liao,
	}
	t := &Table{
		ID:      "exec",
		Title:   "Ext. O: execution wall time, native vs predecoded compressed (best of 5)",
		Columns: []string{"bench", "scheme", "steps", "native ns/run", "comp ns/run", "ratio"},
		Note: "timing experiment (host-dependent, excluded from the deterministic " +
			"default set); ratio ~1 means the decode stage is off the hot path",
	}
	for _, name := range names {
		p, err := c.Program(name)
		if err != nil {
			return nil, err
		}
		ncpu, err := newNative(p)
		if err != nil {
			return nil, err
		}
		ntime, nsteps, err := measureRuns(ncpu)
		if err != nil {
			return nil, fmt.Errorf("exec: native %s: %w", name, err)
		}
		for _, sch := range schemes {
			img, err := c.Image(name, core.Options{Scheme: sch, MaxEntryLen: 4})
			if err != nil {
				return nil, err
			}
			ccpu, err := core.NewMachine(img)
			if err != nil {
				return nil, err
			}
			ctime, csteps, err := measureRuns(ccpu)
			if err != nil {
				return nil, fmt.Errorf("exec: %s/%s: %w", name, sch, err)
			}
			if csteps != nsteps {
				return nil, fmt.Errorf("exec: %s/%s: steps %d != native %d", name, sch, csteps, nsteps)
			}
			t.AddRow(name, sch.String(), fmt.Sprint(nsteps),
				fmt.Sprint(ntime.Nanoseconds()), fmt.Sprint(ctime.Nanoseconds()),
				fmt.Sprintf("%.2f", float64(ctime)/float64(ntime)))
		}
	}
	return t, nil
}

package bench

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/codec"
	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/lzw"
	"repro/internal/machine"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/thumb"
)

// baselineOpts is the paper's baseline configuration: 2-byte codewords,
// up to 8192 of them, entries of up to 4 instructions (§4.1).
func baselineOpts() core.Options {
	return core.Options{Scheme: codeword.Baseline, MaxEntryLen: 4}
}

// Runner is one experiment. Run receives a corpus view; when the view is
// engine-bound, helpers like rowsInOrder execute the per-benchmark rows on
// the engine's worker pool. Runners must produce identical tables
// regardless of the view's parallelism.
type Runner struct {
	ID    string
	Title string
	Run   func(*Corpus) (*Table, error)

	// Timing marks a wall-clock measurement experiment: its numbers vary
	// with the host, so it is excluded from the default all-experiments
	// selection (whose tables must be byte-identical run to run) and only
	// runs when named explicitly.
	Timing bool
}

// Deterministic returns the experiments whose tables reproduce
// byte-for-byte — everything except the Timing runners. This is the set
// nil/empty ResolveIDs expands to.
func Deterministic() []Runner {
	out := make([]Runner, 0, len(Experiments))
	for _, r := range Experiments {
		if !r.Timing {
			out = append(out, r)
		}
	}
	return out
}

// Experiments lists every reproduced table and figure plus the extension
// experiments, in paper order.
var Experiments = []Runner{
	{ID: "fig1", Title: "Distinct instruction encodings as a percentage of entire program", Run: Fig1},
	{ID: "table1", Title: "Usage of bits in branch offset field", Run: Table1},
	{ID: "fig4", Title: "Effect of dictionary entry size on compression ratio", Run: Fig4},
	{ID: "fig5", Title: "Effect of number of codewords on compression ratio", Run: Fig5},
	{ID: "table2", Title: "Maximum number of codewords used in baseline compression", Run: Table2},
	{ID: "fig6", Title: "Composition of dictionary by entry length (ijpeg)", Run: Fig6},
	{ID: "fig7", Title: "Bytes saved according to instruction length of dictionary entry (ijpeg)", Run: Fig7},
	{ID: "fig8", Title: "Compression ratio for 1-byte codewords (small dictionaries)", Run: Fig8},
	{ID: "fig9", Title: "Composition of compressed program (baseline, 8192 codewords)", Run: Fig9},
	{ID: "fig11", Title: "Nibble-aligned compression vs Unix Compress (LZW)", Run: Fig11},
	{ID: "table3", Title: "Prologue and epilogue code in benchmarks", Run: Table3},
	{ID: "baselines", Title: "Ext. A: dictionary schemes vs CCRP and Liao", Run: ExtBaselines},
	{ID: "icache", Title: "Ext. B: I-cache miss rate, original vs compressed", Run: ExtICache},
	{ID: "penalty", Title: "Ext. C: execution cost of the compressed fetch path", Run: ExtPenalty},
	{ID: "ablation-selection", Title: "Ablation: greedy vs static-order dictionary selection", Run: AblationSelection},
	{ID: "ablation-alignment", Title: "Ablation: unit-granular branch offsets vs padded targets", Run: AblationAlignment},
}

// Find returns the runner with the given id.
func Find(id string) (Runner, bool) {
	for _, r := range Experiments {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// Fig1 measures instruction-encoding redundancy.
func Fig1(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "fig1",
		Title:   "Distinct instruction encodings as a percentage of entire program",
		Columns: []string{"bench", "insns", "distinct", "multi-use", "single-use", "top1%→", "top10%→"},
		Note: "paper: single-use <20% on average; for go, top 1% of distinct words " +
			"cover 30% and top 10% cover 66% of the program",
	}
	names := c.Names()
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		p, err := c.Program(name)
		if err != nil {
			return nil, err
		}
		e := profile.AnalyzeEncodings(p)
		return []string{name,
			fmt.Sprint(e.TotalInsns),
			fmt.Sprint(e.DistinctEncodings),
			pct(e.MultiUseFrac()),
			pct(e.SingleUseFrac()),
			pct(e.Coverage(0.01)),
			pct(e.Coverage(0.10))}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Table1 measures branch-offset field usage at finer alignments.
func Table1(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Usage of bits in branch offset field",
		Columns: []string{"bench", "rel-branches", "no-2-byte", "%", "no-1-byte", "%", "no-4-bit", "%"},
		Note:    "paper: small overflow tails that grow as target resolution shrinks",
	}
	names := c.Names()
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		p, err := c.Program(name)
		if err != nil {
			return nil, err
		}
		u := profile.AnalyzeBranchOffsets(p)
		return []string{name, fmt.Sprint(u.RelativeBranches),
			fmt.Sprint(u.TooNarrow2Byte), pct(u.Frac2Byte()),
			fmt.Sprint(u.TooNarrow1Byte), pct(u.Frac1Byte()),
			fmt.Sprint(u.TooNarrow4Bit), pct(u.Frac4Bit())}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Fig4 sweeps the maximum dictionary-entry length.
func Fig4(c *Corpus) (*Table, error) {
	lens := []int{1, 2, 4, 8}
	t := &Table{
		ID:      "fig4",
		Title:   "Compression ratio vs maximum instructions per dictionary entry (baseline scheme)",
		Columns: []string{"bench", "len=1", "len=2", "len=4", "len=8"},
		Note: "paper: ratio improves to length 4, then flattens or declines at 8 " +
			"(greedy picks large entries that destroy overlapping short matches)",
	}
	names := c.Names()
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		row := []string{name}
		for _, l := range lens {
			opt := baselineOpts()
			opt.MaxEntryLen = l
			img, err := c.Image(name, opt)
			if err != nil {
				return nil, err
			}
			row = append(row, ratioStr(img.Ratio()))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Fig5 sweeps the number of codewords.
func Fig5(c *Corpus) (*Table, error) {
	sizes := []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}
	t := &Table{
		ID:    "fig5",
		Title: "Compression ratio vs number of codewords (baseline scheme, entries ≤ 4)",
		Note: "paper: ratio improves with codeword count and saturates once only " +
			"single-use encodings remain; a few thousand codewords suffice",
	}
	t.Columns = []string{"bench"}
	for _, s := range sizes {
		t.Columns = append(t.Columns, fmt.Sprint(s))
	}
	// One work item per (benchmark, size) point: the sweep's cells are
	// independent compressions, so they saturate the pool instead of
	// serializing per row.
	names := c.Names()
	cells := make([]string, len(names)*len(sizes))
	err := c.each(len(cells), func(k int) error {
		name, s := names[k/len(sizes)], sizes[k%len(sizes)]
		opt := baselineOpts()
		opt.MaxEntries = s
		img, err := c.Image(name, opt)
		if err != nil {
			return err
		}
		cells[k] = ratioStr(img.Ratio())
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		t.AddRow(append([]string{name}, cells[i*len(sizes):(i+1)*len(sizes)]...)...)
	}
	return t, nil
}

// Table2 reports the maximum number of codewords each benchmark uses.
func Table2(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "Maximum number of codewords used (baseline, entries ≤ 4, unlimited budget)",
		Columns: []string{"bench", "max codewords", "ratio"},
		Note: "paper (full-size SPEC): compress 647 … gcc 7927; the stand-ins are " +
			"~10x smaller so counts scale down, but the ordering tracks program size",
	}
	names := c.Names()
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		img, err := c.Image(name, baselineOpts())
		if err != nil {
			return nil, err
		}
		return []string{name, fmt.Sprint(len(img.Entries)), ratioStr(img.Ratio())}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Fig6 reports dictionary composition by entry length for ijpeg.
func Fig6(c *Corpus) (*Table, error) {
	sizes := []int{128, 512, 2048, 8192}
	t := &Table{
		ID:      "fig6",
		Title:   "Composition of dictionary for ijpeg by entry length (entries ≤ 8)",
		Columns: []string{"dict size", "len1", "len2", "len3", "len4", "len5-8", "%len1"},
		Note:    "paper: single-instruction entries are 48–80% of the dictionary, growing with size",
	}
	err := rowsInOrder(c, t, len(sizes), func(i int) ([]string, error) {
		s := sizes[i]
		opt := core.Options{Scheme: codeword.Baseline, MaxEntries: s, MaxEntryLen: 8}
		img, err := c.Image("ijpeg", opt)
		if err != nil {
			return nil, err
		}
		var byLen [9]int
		long := 0
		for _, e := range img.Entries {
			k := len(e.Words)
			if k >= 5 {
				long++
			} else {
				byLen[k]++
			}
		}
		total := len(img.Entries)
		fr := 0.0
		if total > 0 {
			fr = float64(byLen[1]) / float64(total)
		}
		return []string{fmt.Sprint(s), fmt.Sprint(byLen[1]), fmt.Sprint(byLen[2]),
			fmt.Sprint(byLen[3]), fmt.Sprint(byLen[4]), fmt.Sprint(long), pct(fr)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Fig7 reports bytes saved by entry length for ijpeg.
func Fig7(c *Corpus) (*Table, error) {
	sizes := []int{128, 512, 2048, 8192}
	t := &Table{
		ID:      "fig7",
		Title:   "Program bytes removed by compression, by dictionary entry length (ijpeg, entries ≤ 8)",
		Columns: []string{"dict size", "len1", "len2", "len3", "len4", "len5-8", "%from-len1"},
		Note:    "paper: 1-instruction entries contribute roughly half the savings",
	}
	err := rowsInOrder(c, t, len(sizes), func(i int) ([]string, error) {
		s := sizes[i]
		opt := core.Options{Scheme: codeword.Baseline, MaxEntries: s, MaxEntryLen: 8}
		img, err := c.Image("ijpeg", opt)
		if err != nil {
			return nil, err
		}
		var saved [9]int
		long, total := 0, 0
		for rank, e := range img.Entries {
			k := len(e.Words)
			cwBytes := img.Scheme.CodewordBits(rank) / 8
			sv := e.Uses * (4*k - cwBytes)
			total += sv
			if k >= 5 {
				long += sv
			} else {
				saved[k] += sv
			}
		}
		fr := 0.0
		if total > 0 {
			fr = float64(saved[1]) / float64(total)
		}
		return []string{fmt.Sprint(s), fmt.Sprint(saved[1]), fmt.Sprint(saved[2]),
			fmt.Sprint(saved[3]), fmt.Sprint(saved[4]), fmt.Sprint(long), pct(fr)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Fig8 measures the small-dictionary one-byte-codeword configurations.
func Fig8(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "fig8",
		Title:   "Compression ratio for 1-byte codewords, entries ≤ 4",
		Columns: []string{"bench", "8 (128B dict)", "16 (256B dict)", "32 (512B dict)"},
		Note:    "paper: a 512-byte dictionary already yields ~15% code reduction on average",
	}
	names := c.Names()
	ratios := make([][3]float64, len(names))
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		row := []string{name}
		for j, n := range []int{8, 16, 32} {
			img, err := c.Image(name, core.Options{Scheme: codeword.OneByte, MaxEntries: n, MaxEntryLen: 4})
			if err != nil {
				return nil, err
			}
			row = append(row, ratioStr(img.Ratio()))
			ratios[i][j] = img.Ratio()
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	var sum [3]float64
	for _, r := range ratios {
		for j, v := range r {
			sum[j] += v
		}
	}
	n := float64(len(names))
	t.AddRow("mean", ratioStr(sum[0]/n), ratioStr(sum[1]/n), ratioStr(sum[2]/n))
	return t, nil
}

// Fig9 decomposes the compressed program.
func Fig9(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "Composition of compressed program (baseline, 8192 codewords, entries ≤ 4)",
		Columns: []string{"bench", "uncompressed", "cw index bytes", "cw escape bytes", "dictionary"},
		Note: "paper: with 8192 codewords ~40% of the compressed program is codeword " +
			"bytes, half of which are escape bytes",
	}
	names := c.Names()
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		img, err := c.Image(name, baselineOpts())
		if err != nil {
			return nil, err
		}
		total := float64(img.CompressedBytes())
		esc := float64(img.Stats.EscapeBits) / 8
		idx := float64(img.Stats.CodewordBits-img.Stats.EscapeBits) / 8
		raw := float64(img.Stats.RawBits) / 8
		dict := float64(img.DictionaryBytes)
		return []string{name, pct(raw / total), pct(idx / total), pct(esc / total), pct(dict / total)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Fig11 compares the nibble-aligned scheme against LZW.
func Fig11(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "fig11",
		Title:   "Nibble-aligned compression vs Unix Compress (LZW 9–16 bit)",
		Columns: []string{"bench", "nibble ratio", "lzw ratio", "gap"},
		Note: "paper: nibble-aligned achieves 30–50% reduction and stays within ~5 " +
			"percentage points of Compress on every benchmark",
	}
	names := c.Names()
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		img, err := c.Image(name, core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
		if err != nil {
			return nil, err
		}
		p, err := c.Program(name)
		if err != nil {
			return nil, err
		}
		lr := lzw.RatioRecorded(p.TextBytes(), c.Recorder())
		return []string{name, ratioStr(img.Ratio()), ratioStr(lr),
			fmt.Sprintf("%+.1fpp", 100*(img.Ratio()-lr))}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Table3 reports prologue/epilogue shares.
func Table3(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "table3",
		Title:   "Prologue and epilogue code in benchmarks",
		Columns: []string{"bench", "prologue", "epilogue", "combined"},
		Note: "paper: combined ~12% of program size; the stand-ins run a few points " +
			"lower because generated functions are larger than SPEC's average",
	}
	names := c.Names()
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		p, err := c.Program(name)
		if err != nil {
			return nil, err
		}
		pe := profile.AnalyzePrologueEpilogue(p)
		return []string{name, pct(pe.PrologueFrac()), pct(pe.EpilogueFrac()),
			pct(pe.PrologueFrac() + pe.EpilogueFrac())}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// ExtBaselines compares every registered codec against the Thumb model:
// one ratio column per registry entry in method-byte order, so a newly
// registered codec appears in the table automatically.
func ExtBaselines(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "baselines",
		Title:   "Compression ratio by method (dictionary schemes vs related work)",
		Columns: append(append([]string{"bench"}, codec.Names()...), "thumb16"),
		Note: "expected: nibble < baseline < liao ≈ thumb16 ≈ ccrp; Liao suffers " +
			"because single instructions cannot profit from 32-bit codewords (§2.4); " +
			"thumb16 is the §2.2 fixed-16-bit re-encoding model (optimistic for Thumb)",
	}
	names := c.Names()
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		p, err := c.Program(name)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for _, cd := range codec.Codecs() {
			var img codec.Image
			if sc, ok := cd.(codec.Schemed); ok {
				// Dictionary schemes go through the memoizing corpus cache.
				img, err = c.Image(name, core.Options{Scheme: sc.Scheme(), MaxEntryLen: 4})
			} else {
				img, err = cd.Compress(p, codec.Options{Stats: c.Recorder()})
			}
			if err != nil {
				return nil, err
			}
			row = append(row, ratioStr(img.Ratio()))
		}
		return append(row, ratioStr(thumb.Analyze(p).Ratio())), nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// icacheBenchmarks keeps the cache experiment fast while covering small,
// medium and large programs.
var icacheBenchmarks = []string{"compress", "go", "gcc"}

// ExtICache compares I-cache miss rates of original vs compressed
// execution across cache sizes.
func ExtICache(c *Corpus) (*Table, error) {
	sizes := []int{512, 1024, 2048, 4096, 8192}
	t := &Table{
		ID:    "icache",
		Title: "I-cache miss rate (direct-mapped, 32B lines): original vs nibble-compressed",
		Note: "denser code touches fewer lines, so the compressed image should miss " +
			"less at every size (Chen97a direction; dictionary assumed on-chip)",
	}
	t.Columns = []string{"bench"}
	for _, s := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("orig@%d", s), fmt.Sprintf("comp@%d", s))
	}
	// One work item per (benchmark, cache size): the 2·|sizes| simulations
	// per benchmark dominate this runner's cost.
	type cell struct{ orig, comp string }
	cells := make([]cell, len(icacheBenchmarks)*len(sizes))
	err := c.each(len(cells), func(k int) error {
		name, s := icacheBenchmarks[k/len(sizes)], sizes[k%len(sizes)]
		p, err := c.Program(name)
		if err != nil {
			return err
		}
		img, err := c.Image(name, core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
		if err != nil {
			return err
		}
		mrO, err := missRate(c, s, func(cc *cache.Cache) error {
			cpu, err := machine.NewForProgram(p)
			if err != nil {
				return err
			}
			cpu.Record = c.Recorder()
			cpu.TraceFetch = cc.Access
			_, err = cpu.Run(200_000_000)
			return err
		})
		if err != nil {
			return err
		}
		mrC, err := missRate(c, s, func(cc *cache.Cache) error {
			cpu, err := core.NewMachine(img)
			if err != nil {
				return err
			}
			cpu.Record = c.Recorder()
			cpu.TraceFetch = cc.Access
			_, err = cpu.Run(200_000_000)
			return err
		})
		if err != nil {
			return err
		}
		cells[k] = cell{pct(mrO), pct(mrC)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range icacheBenchmarks {
		row := []string{name}
		for _, cl := range cells[i*len(sizes) : (i+1)*len(sizes)] {
			row = append(row, cl.orig, cl.comp)
		}
		t.AddRow(row...)
	}
	return t, nil
}

func missRate(c *Corpus, size int, run func(*cache.Cache) error) (float64, error) {
	cc, err := cache.New(cache.Config{SizeBytes: size, LineBytes: 32, Assoc: 1})
	if err != nil {
		return 0, err
	}
	if err := run(cc); err != nil {
		return 0, err
	}
	cc.Report(c.Recorder())
	return cc.Stats.MissRate(), nil
}

// ExtPenalty measures the execution-side cost of compression.
func ExtPenalty(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "penalty",
		Title:   "Execution on the compressed fetch path (nibble scheme)",
		Columns: []string{"bench", "steps orig", "steps comp", "extra", "fetch-bytes orig", "fetch-bytes comp", "traffic"},
		Note: "outputs are verified identical; extra steps come only from far-branch " +
			"stubs, and fetch traffic shows the density win at the memory interface",
	}
	names := []string{"compress", "li", "go", "perl"}
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		p, err := c.Program(name)
		if err != nil {
			return nil, err
		}
		img, err := c.Image(name, core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
		if err != nil {
			return nil, err
		}
		orig, comp, err := core.RunBoth(p, img, 200_000_000)
		if err != nil {
			return nil, err
		}
		return []string{name,
			fmt.Sprint(orig.Stats.Steps), fmt.Sprint(comp.Stats.Steps),
			fmt.Sprintf("%+d", comp.Stats.Steps-orig.Stats.Steps),
			fmt.Sprint(orig.Stats.FetchedBytes), fmt.Sprint(comp.Stats.FetchedBytes),
			pct(float64(comp.Stats.FetchedBytes) / float64(orig.Stats.FetchedBytes))}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// AblationSelection compares the greedy policy against static ordering.
func AblationSelection(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "ablation-selection",
		Title:   "Dictionary selection policy: indexed greedy vs reference greedy vs static order (baseline scheme)",
		Columns: []string{"bench", "greedy", "reference", "static", "delta"},
		Note: "greedy's savings re-evaluation should never lose to a one-shot ranking; " +
			"the indexed and reference greedy builders must agree to the byte",
	}
	names := c.Names()
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		g, err := c.Image(name, baselineOpts())
		if err != nil {
			return nil, err
		}
		ropt := baselineOpts()
		ropt.Strategy = dictionary.GreedyReference
		r, err := c.Image(name, ropt)
		if err != nil {
			return nil, err
		}
		sopt := baselineOpts()
		sopt.Strategy = dictionary.StaticOrder
		s, err := c.Image(name, sopt)
		if err != nil {
			return nil, err
		}
		return []string{name, ratioStr(g.Ratio()), ratioStr(r.Ratio()), ratioStr(s.Ratio()),
			fmt.Sprintf("%+.1fpp", 100*(g.Ratio()-s.Ratio()))}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// AblationAlignment estimates the cost of padding branch targets to word
// alignment instead of reinterpreting offset fields in units (§3.2.2's
// rejected alternative).
func AblationAlignment(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "ablation-alignment",
		Title:   "Unit-granular branch offsets vs padding targets to 32-bit alignment (nibble scheme)",
		Columns: []string{"bench", "unit ratio", "padded ratio", "cost"},
		Note: "padding every branch target back to word alignment surrenders part " +
			"of the nibble scheme's gain — the paper's reason for modifying the control unit",
	}
	names := c.Names()
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		p, err := c.Program(name)
		if err != nil {
			return nil, err
		}
		img, err := c.Image(name, core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
		if err != nil {
			return nil, err
		}
		padded, err := paddedSize(p, img)
		if err != nil {
			return nil, err
		}
		pr := float64(padded+img.DictionaryBytes) / float64(img.OriginalBytes)
		return []string{name, ratioStr(img.Ratio()), ratioStr(pr),
			fmt.Sprintf("%+.1fpp", 100*(pr-img.Ratio()))}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// paddedSize recomputes the stream size with every branch-target item
// aligned to a 32-bit boundary.
func paddedSize(p *program.Program, img *core.Image) (int, error) {
	an, err := program.Analyze(p)
	if err != nil {
		return 0, err
	}
	targets := map[int]bool{}
	for _, t := range an.Target {
		targets[t] = true
	}
	jts, err := p.JumpTableTargets()
	if err != nil {
		return 0, err
	}
	for _, t := range jts {
		targets[t] = true
	}
	unitsPerWord := 32 / img.Scheme.UnitBits()
	cursor := 0
	for i, m := range img.Marks {
		size := img.Units - m.Unit
		if i+1 < len(img.Marks) {
			size = img.Marks[i+1].Unit - m.Unit
		}
		if targets[m.Orig] && cursor%unitsPerWord != 0 {
			cursor += unitsPerWord - cursor%unitsPerWord
		}
		cursor += size
	}
	return (cursor*img.Scheme.UnitBits() + 7) / 8, nil
}

// Ratio re-exports an image ratio for benchmarks that need a single
// headline number.
func Ratio(c *Corpus, name string, opt core.Options) (float64, error) {
	img, err := c.Image(name, opt)
	if err != nil {
		return 0, err
	}
	return img.Ratio(), nil
}

package bench

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/huffman"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/program"
	"repro/internal/synth"
)

// machineCPU abbreviates the simulator type in the runners below.
type machineCPU = machine.CPU

func newNative(p *program.Program) (*machineCPU, error) { return machine.NewForProgram(p) }

// The future-work extensions from the paper's §5 and §3.3, registered
// alongside the evaluation experiments.

func init() {
	Experiments = append(Experiments,
		Runner{ID: "standardize", Title: "Ext. D: standardized prologues/epilogues (§5 compiler cooperation)", Run: ExtStandardize},
		Runner{ID: "dictplace", Title: "Ext. E: on-chip vs memory-resident dictionary (§3.3)", Run: ExtDictPlacement},
		Runner{ID: "cycles", Title: "Ext. F: end-to-end cycle model (decode penalty + cache misses)", Run: ExtCycles},
		Runner{ID: "profiled", Title: "Ext. G: profile-guided codeword assignment (dynamic ranking)", Run: ExtProfiled},
		Runner{ID: "regalloc", Title: "Ext. H: register-allocation consistency (§5's other proposal, inverted)", Run: ExtRegalloc},
		Runner{ID: "refill", Title: "Ext. I: dynamic refill traffic — dictionary scheme vs executable CCRP", Run: ExtRefill},
		Runner{ID: "shared", Title: "Ext. J: per-program vs fleet-wide shared ROM dictionary", Run: ExtShared},
		Runner{ID: "crossover", Title: "Ext. K: speed crossover — where the decode penalty pays for itself", Run: ExtCrossover},
		Runner{ID: "scaling", Title: "Ext. L: ratio stability and dictionary growth across program scales", Run: ExtScaling},
	)
}

// ExtScaling regenerates two benchmarks at several size scales and shows
// that compression ratios are roughly scale-invariant while the maximum
// useful dictionary grows with program size — the mechanism behind Table
// 2's spread (and why our scaled-down corpus reproduces its ordering but
// not its absolute counts).
func ExtScaling(c *Corpus) (*Table, error) {
	scales := []float64{0.5, 1, 2, 4}
	names := []string{"li", "gcc"}
	t := &Table{
		ID:      "scaling",
		Title:   "Ratio and max codewords vs program scale (baseline scheme, entries ≤ 4)",
		Columns: []string{"bench", "scale", "insns", "ratio", "max codewords"},
		Note: "ratios hold within a few points across an 8x size range; codeword " +
			"counts grow toward the paper's Table 2 magnitudes as programs approach " +
			"real SPEC sizes",
	}
	// One work item per (benchmark, scale): each point regenerates and
	// compresses a whole program, so points are the natural parallel unit.
	err := rowsInOrder(c, t, len(names)*len(scales), func(k int) ([]string, error) {
		name, s := names[k/len(scales)], scales[k%len(scales)]
		p, err := synth.GenerateScaled(name, s)
		if err != nil {
			return nil, err
		}
		opt := core.Options{Scheme: codeword.Baseline, MaxEntryLen: 4, Stats: c.Recorder()}
		img, err := core.Compress(p.Clone(), opt)
		if err != nil {
			return nil, err
		}
		return []string{name, fmt.Sprintf("%gx", s), fmt.Sprint(len(p.Text)),
			ratioStr(img.Ratio()), fmt.Sprint(len(img.Entries))}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// ExtCrossover sweeps the memory miss penalty under the pipeline timing
// model and reports the compressed/native speedup at each point. With
// free memory the variable-length decoder can only cost cycles; as memory
// slows down, the smaller footprint's miss savings dominate. The
// crossover is where the paper's "compression at the cost of execution
// speed" trade turns into a win.
func ExtCrossover(c *Corpus) (*Table, error) {
	penalties := []int64{0, 2, 5, 10, 20, 50}
	names := []string{"compress", "li", "go", "gcc"}
	t := &Table{
		ID:    "crossover",
		Title: "Speedup of nibble-compressed execution vs miss penalty (1KB I-cache, pipeline model)",
		Note: "speedup <1 means compression costs cycles (decode penalty), >1 means the " +
			"miss savings won; the crossover typically lands at single-digit penalties",
	}
	t.Columns = []string{"bench"}
	for _, mp := range penalties {
		t.Columns = append(t.Columns, fmt.Sprintf("miss=%d", mp))
	}
	// One work item per (benchmark, penalty) point: each runs two full
	// pipeline simulations.
	cells := make([]string, len(names)*len(penalties))
	err := c.each(len(cells), func(k int) error {
		name, mp := names[k/len(penalties)], penalties[k%len(penalties)]
		p, err := c.Program(name)
		if err != nil {
			return err
		}
		img, err := c.Image(name, core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
		if err != nil {
			return err
		}
		cfg := pipeline.DefaultConfig(mp)
		ncpu, err := newNative(p)
		if err != nil {
			return err
		}
		ncpu.Record = c.Recorder()
		nr, err := pipeline.Measure(ncpu, cfg, 200_000_000)
		if err != nil {
			return err
		}
		ccpu, err := core.NewMachine(img)
		if err != nil {
			return err
		}
		ccpu.Record = c.Recorder()
		cr, err := pipeline.Measure(ccpu, cfg, 200_000_000)
		if err != nil {
			return err
		}
		cells[k] = fmt.Sprintf("%.2fx", float64(nr.Cycles)/float64(cr.Cycles))
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		t.AddRow(append([]string{name}, cells[i*len(penalties):(i+1)*len(penalties)]...)...)
	}
	return t, nil
}

// ExtShared compares per-program dictionaries against one dictionary built
// over the whole corpus and shared by every program (CompressFixed) — the
// multi-application embedded ROM deployment. Per-program dictionaries
// adapt better (the paper's §2.2 argument against fixed subsets, replayed
// against its own method), but the shared dictionary is stored once.
func ExtShared(c *Corpus) (*Table, error) {
	opt := core.Options{Scheme: codeword.Baseline, MaxEntryLen: 4}
	names := c.Names()
	progs := make([]*program.Program, len(names))
	if err := c.each(len(names), func(i int) error {
		p, err := c.Program(names[i])
		progs[i] = p
		return err
	}); err != nil {
		return nil, err
	}
	shared, err := core.BuildSharedDictionary(progs, opt)
	if err != nil {
		return nil, err
	}
	sharedDictBytes := codeword.DictBytes(entryLensOf(shared))

	t := &Table{
		ID:      "shared",
		Title:   "Per-program vs shared dictionary (baseline scheme, entries ≤ 4)",
		Columns: []string{"bench", "own ratio", "shared stream ratio", "delta"},
		Note: fmt.Sprintf("shared dictionary: %d entries, %d bytes stored once for the fleet; "+
			"'shared stream ratio' counts each program's stream only — the fleet totals "+
			"below include the single dictionary", len(shared), sharedDictBytes),
	}
	type acc struct{ own, sharedStream, orig int }
	accs := make([]acc, len(names))
	err = rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		own, err := c.Image(name, opt)
		if err != nil {
			return nil, err
		}
		sh, err := core.CompressFixed(progs[i].Clone(), shared, opt)
		if err != nil {
			return nil, err
		}
		if err := core.Verify(progs[i], sh); err != nil {
			return nil, fmt.Errorf("shared-dictionary image for %s fails verification: %w", name, err)
		}
		accs[i] = acc{own.CompressedBytes(), sh.StreamBytes, own.OriginalBytes}
		ownRatio := own.Ratio()
		shRatio := float64(sh.StreamBytes) / float64(sh.OriginalBytes)
		return []string{name, ratioStr(ownRatio), ratioStr(shRatio),
			fmt.Sprintf("%+.1fpp", 100*(shRatio-ownRatio))}, nil
	})
	if err != nil {
		return nil, err
	}
	var fleetOwn, fleetSharedStream, fleetOrig int
	for _, a := range accs {
		fleetOwn += a.own
		fleetSharedStream += a.sharedStream
		fleetOrig += a.orig
	}
	t.AddRow("fleet",
		ratioStr(float64(fleetOwn)/float64(fleetOrig)),
		ratioStr(float64(fleetSharedStream+sharedDictBytes)/float64(fleetOrig)),
		"incl. one dict")
	return t, nil
}

func entryLensOf(entries []dictionary.Entry) []int {
	out := make([]int, len(entries))
	for i, e := range entries {
		out[i] = len(e.Words)
	}
	return out
}

// ExtRefill compares memory traffic of the three executable paths at the
// same effective line-buffer capacity (2KB, 32-byte lines, direct-mapped):
// the normal machine, the nibble dictionary machine (on-chip dictionary),
// and the CCRP machine whose misses decompress Huffman lines.
func ExtRefill(c *Corpus) (*Table, error) {
	const (
		lineBytes  = 32
		cacheLines = 64
	)
	t := &Table{
		ID:      "refill",
		Title:   "Dynamic refill traffic at equal 2KB line buffers (bytes from memory)",
		Columns: []string{"bench", "original", "nibble dict", "ccrp", "dict vs orig", "ccrp vs orig"},
		Note: "the dictionary machine refills compressed lines AND skips dictionary " +
			"words entirely (on-chip expansion); CCRP refills Huffman-compressed " +
			"lines but touches every line the original touches",
	}
	names := []string{"compress", "li", "go"}
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		p, err := c.Program(name)
		if err != nil {
			return nil, err
		}
		lineTraffic := func(mk func() (*machineCPU, error)) (int64, error) {
			ic, err := cache.New(cache.Config{SizeBytes: cacheLines * lineBytes, LineBytes: lineBytes, Assoc: 1})
			if err != nil {
				return 0, err
			}
			cpu, err := mk()
			if err != nil {
				return 0, err
			}
			cpu.Record = c.Recorder()
			cpu.TraceFetch = ic.Access
			if _, err := cpu.Run(200_000_000); err != nil {
				return 0, err
			}
			ic.Report(c.Recorder())
			return ic.Stats.Misses * lineBytes, nil
		}
		orig, err := lineTraffic(func() (*machineCPU, error) { return newNative(p) })
		if err != nil {
			return nil, err
		}
		img, err := c.Image(name, core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
		if err != nil {
			return nil, err
		}
		dict, err := lineTraffic(func() (*machineCPU, error) { return core.NewMachine(img) })
		if err != nil {
			return nil, err
		}
		ccfg := huffman.DefaultCCRP()
		ccfg.Stats = c.Recorder()
		cimg, err := huffman.BuildCCRPImage(p, ccfg)
		if err != nil {
			return nil, err
		}
		ccpu, err := huffman.NewCCRPMachine(cimg, cacheLines)
		if err != nil {
			return nil, err
		}
		ccpu.Record = c.Recorder()
		if _, err := ccpu.Run(200_000_000); err != nil {
			return nil, err
		}
		ccrp := ccpu.Stats.FetchedBytes
		return []string{name, fmt.Sprint(orig), fmt.Sprint(dict), fmt.Sprint(ccrp),
			pct(float64(dict) / float64(orig)), pct(float64(ccrp) / float64(orig))}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// ExtRegalloc demonstrates §5's register-allocation claim from the other
// side: regenerating each benchmark with a deterministically scrambled
// allocator (same semantics, per-function random register and stack-slot
// assignment) destroys cross-function template identity and compression
// suffers.
func ExtRegalloc(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "regalloc",
		Title:   "Register-allocation consistency: canonical vs scrambled allocator (nibble)",
		Columns: []string{"bench", "canonical", "scrambled", "cost", "distinct encodings"},
		Note: "§5: 'allocating registers so that common sequences of instructions use " +
			"the same registers' is worth several ratio points — shown here by breaking it",
	}
	names := []string{"compress", "li", "ijpeg", "go"}
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		img, err := c.Image(name, core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
		if err != nil {
			return nil, err
		}
		prof, err := synth.ProfileFor(name)
		if err != nil {
			return nil, err
		}
		prof.ScrambleAlloc = true
		sp, err := synth.GenerateProfile(prof)
		if err != nil {
			return nil, err
		}
		simg, err := core.Compress(sp.Clone(), core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4, Stats: c.Recorder()})
		if err != nil {
			return nil, err
		}
		p, err := c.Program(name)
		if err != nil {
			return nil, err
		}
		distinct := func(q *program.Program) int {
			m := map[uint32]bool{}
			for _, w := range q.Text {
				m[w] = true
			}
			return len(m)
		}
		return []string{name, ratioStr(img.Ratio()), ratioStr(simg.Ratio()),
			fmt.Sprintf("%+.1fpp", 100*(simg.Ratio()-img.Ratio())),
			fmt.Sprintf("%d -> %d", distinct(p), distinct(sp))}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// collectProfile runs the original program once and counts how often each
// text word is fetched.
func collectProfile(c *Corpus, p *program.Program) ([]int64, error) {
	counts := make([]int64, len(p.Text))
	cpu, err := machine.NewForProgram(p)
	if err != nil {
		return nil, err
	}
	cpu.Record = c.Recorder()
	cpu.TraceFetch = func(addr uint32, n int) {
		idx := int(addr-p.TextBase) / 4
		if idx >= 0 && idx < len(counts) {
			counts[idx]++
		}
	}
	if _, err := cpu.Run(200_000_000); err != nil {
		return nil, err
	}
	return counts, nil
}

// ExtProfiled compares static frequency ranking against dynamic
// profile-guided codeword assignment under the nibble scheme: the hottest
// sequences get the 4-bit codewords, trading (at most) a sliver of static
// size for less run-time fetch traffic.
func ExtProfiled(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "profiled",
		Title:   "Profile-guided codeword ranking (nibble scheme)",
		Columns: []string{"bench", "static ratio", "profiled ratio", "fetch B static", "fetch B profiled", "traffic win"},
		Note: "ranking dictionary entries by dynamic fetch count instead of static use " +
			"count shifts the shortest codewords onto the hottest code paths",
	}
	names := []string{"compress", "li", "go", "perl"}
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		p, err := c.Program(name)
		if err != nil {
			return nil, err
		}
		prof, err := collectProfile(c, p)
		if err != nil {
			return nil, err
		}
		static, err := c.Image(name, core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
		if err != nil {
			return nil, err
		}
		dyn, err := core.Compress(p.Clone(), core.Options{
			Scheme: codeword.Nibble, MaxEntryLen: 4, DynProfile: prof, Stats: c.Recorder(),
		})
		if err != nil {
			return nil, err
		}
		if err := core.Verify(p, dyn); err != nil {
			return nil, fmt.Errorf("profiled image fails verification: %w", err)
		}
		fetched := func(img *core.Image) (int64, error) {
			cpu, err := core.NewMachine(img)
			if err != nil {
				return 0, err
			}
			cpu.Record = c.Recorder()
			if _, err := cpu.Run(200_000_000); err != nil {
				return 0, err
			}
			return cpu.Stats.FetchedBytes, nil
		}
		fs, err := fetched(static)
		if err != nil {
			return nil, err
		}
		fd, err := fetched(dyn)
		if err != nil {
			return nil, err
		}
		return []string{name, ratioStr(static.Ratio()), ratioStr(dyn.Ratio()),
			fmt.Sprint(fs), fmt.Sprint(fd),
			fmt.Sprintf("%+.1f%%", 100*(float64(fd)/float64(fs)-1))}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// ExtStandardize regenerates each benchmark with the §5 proposal — every
// function saves all nonvolatile registers with a fixed frame — and
// compares compressed sizes. The program grows, but identical prologues
// and epilogues collapse into single codewords.
func ExtStandardize(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "standardize",
		Title:   "Standardized full-save prologues (§5): size before/after, nibble scheme",
		Columns: []string{"bench", "insns", "std insns", "growth", "comp B", "std comp B", "net"},
		Note: "the paper predicts this 'space saving optimization would decrease code " +
			"size at the expense of execution time'; net < 0 means the compressed " +
			"standardized program is smaller than the compressed original",
	}
	names := c.Names()
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		p, err := c.Program(name)
		if err != nil {
			return nil, err
		}
		img, err := c.Image(name, core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
		if err != nil {
			return nil, err
		}
		prof, err := synth.ProfileFor(name)
		if err != nil {
			return nil, err
		}
		prof.StandardizeSaves = true
		sp, err := synth.GenerateProfile(prof)
		if err != nil {
			return nil, err
		}
		simg, err := core.Compress(sp.Clone(), core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4, Stats: c.Recorder()})
		if err != nil {
			return nil, err
		}
		growth := float64(len(sp.Text))/float64(len(p.Text)) - 1
		net := simg.CompressedBytes() - img.CompressedBytes()
		return []string{name,
			fmt.Sprint(len(p.Text)), fmt.Sprint(len(sp.Text)), pct(growth),
			fmt.Sprint(img.CompressedBytes()), fmt.Sprint(simg.CompressedBytes()),
			fmt.Sprintf("%+d", net)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// ExtDictPlacement compares fetch traffic and miss rates with the
// dictionary on-chip (free expansions) vs resident in program memory.
func ExtDictPlacement(c *Corpus) (*Table, error) {
	const dictBase = 0x0080_0000
	t := &Table{
		ID:      "dictplace",
		Title:   "Dictionary placement (nibble scheme): on-chip vs memory-resident",
		Columns: []string{"bench", "fetch B on-chip", "fetch B in-mem", "miss% on-chip", "miss% in-mem"},
		Note: "§3.3: a small dictionary can live in permanent on-chip memory; a large " +
			"one can be loaded from memory — at the cost of extra fetch traffic " +
			"(hot entries cache well, so the miss-rate gap stays small)",
	}
	names := []string{"compress", "li", "go"}
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		img, err := c.Image(name, core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
		if err != nil {
			return nil, err
		}
		run := func(inMem bool) (int64, float64, error) {
			ic, err := cache.New(cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 1})
			if err != nil {
				return 0, 0, err
			}
			var cpu *machineCPU
			if inMem {
				m, err := core.NewMachineDictInMemory(img, dictBase)
				if err != nil {
					return 0, 0, err
				}
				cpu = m
			} else {
				m, err := core.NewMachine(img)
				if err != nil {
					return 0, 0, err
				}
				cpu = m
			}
			cpu.Record = c.Recorder()
			cpu.TraceFetch = ic.Access
			if _, err := cpu.Run(200_000_000); err != nil {
				return 0, 0, err
			}
			ic.Report(c.Recorder())
			return cpu.Stats.FetchedBytes, ic.Stats.MissRate(), nil
		}
		bOn, mOn, err := run(false)
		if err != nil {
			return nil, err
		}
		bIn, mIn, err := run(true)
		if err != nil {
			return nil, err
		}
		return []string{name, fmt.Sprint(bOn), fmt.Sprint(bIn), pct(mOn), pct(mIn)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// CycleModel is the simple timing model of Ext. F: one cycle per executed
// instruction, a decode penalty per dictionary-expanded instruction
// (variable-length decoding), and a fixed miss penalty per I-cache miss.
type CycleModel struct {
	DecodePenalty int64 // cycles per expanded instruction
	MissPenalty   int64 // cycles per I-cache miss
}

// ExtCycles estimates end-to-end execution cycles for original vs
// compressed images under the cycle model, showing when compression wins
// on *performance*, not just size (the Chen97b argument from §1).
func ExtCycles(c *Corpus) (*Table, error) {
	model := CycleModel{DecodePenalty: 1, MissPenalty: 20}
	t := &Table{
		ID:    "cycles",
		Title: "Cycle model: 1 cycle/insn + 1 cycle/expansion + 20 cycles/miss (1KB I-cache)",
		Note: "with small caches the miss savings outweigh the decode penalty — " +
			"compression improves performance, not just size (§1's Chen97b point)",
	}
	t.Columns = []string{"bench", "orig cycles", "comp cycles", "speedup"}
	names := []string{"compress", "li", "go", "gcc"}
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		p, err := c.Program(name)
		if err != nil {
			return nil, err
		}
		img, err := c.Image(name, core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
		if err != nil {
			return nil, err
		}
		cyclesOf := func(mk func() (*machineCPU, error)) (int64, error) {
			ic, err := cache.New(cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 1})
			if err != nil {
				return 0, err
			}
			cpu, err := mk()
			if err != nil {
				return 0, err
			}
			cpu.Record = c.Recorder()
			cpu.TraceFetch = ic.Access
			if _, err := cpu.Run(200_000_000); err != nil {
				return 0, err
			}
			ic.Report(c.Recorder())
			return cpu.Stats.Steps +
				model.DecodePenalty*cpu.Stats.Expanded +
				model.MissPenalty*ic.Stats.Misses, nil
		}
		co, err := cyclesOf(func() (*machineCPU, error) { return newNative(p) })
		if err != nil {
			return nil, err
		}
		cc, err := cyclesOf(func() (*machineCPU, error) { return core.NewMachine(img) })
		if err != nil {
			return nil, err
		}
		return []string{name, fmt.Sprint(co), fmt.Sprint(cc), fmt.Sprintf("%.2fx", float64(co)/float64(cc))}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

package bench

import (
	"fmt"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/guestprof"
	"repro/internal/machine"
	"repro/internal/stats"
)

func init() {
	Experiments = append(Experiments, Runner{
		ID:     "fastprof",
		Title:  "Ext. P: epoch-sampled fast-path profiling — accuracy and overhead",
		Run:    ExtFastProf,
		Timing: true,
	})
}

// SampledRun is one epoch-sampled execution: the flat profile
// reconstructed from drained slot traffic, the machine's fast-path
// telemetry, and the recorder snapshot carrying the machine.fastpath.*
// counters and epoch-length histogram.
type SampledRun struct {
	Profile *guestprof.Profile
	Fast    machine.FastStats
	Steps   int64
	Stats   stats.Snapshot
}

// sampledRun executes a CPU to completion with epoch sampling attached —
// the machine stays on the fused fast path throughout.
func sampledRun(c *Corpus, mk func() (*machineCPU, error), sym *guestprof.SymTab, name string) (SampledRun, error) {
	cpu, err := mk()
	if err != nil {
		return SampledRun{}, err
	}
	rec := stats.New()
	sp := guestprof.NewSampled(sym)
	cpu.EnableEpochSampling(rec, sp)
	span := c.Span().Child("bench.sampledrun").Set("bench", name)
	cpu.TraceEpochs(span)
	_, err = cpu.Run(execBudget)
	cpu.FlushEpoch()
	span.End()
	if err != nil {
		return SampledRun{}, err
	}
	return SampledRun{
		Profile: sp.Profile(name),
		Fast:    cpu.Fast,
		Steps:   cpu.Stats.Steps,
		Stats:   rec.Snapshot(),
	}, nil
}

// SampledProfilePair runs one benchmark's compressed image twice — once
// under the exact Step-path profiler, once under epoch sampling on the
// fast path — so accuracy checks and the fastprof experiment share one
// wiring.
func SampledProfilePair(c *Corpus, name string, opt core.Options) (GuestRun, SampledRun, error) {
	img, err := c.Image(name, opt)
	if err != nil {
		return GuestRun{}, SampledRun{}, err
	}
	sym, err := img.GuestSymTab()
	if err != nil {
		return GuestRun{}, SampledRun{}, err
	}
	mk := func() (*machineCPU, error) { return core.NewMachine(img) }
	exact, err := profiledRun(mk, sym, name)
	if err != nil {
		return GuestRun{}, SampledRun{}, fmt.Errorf("bench: exact profile of %s: %w", name, err)
	}
	sampled, err := sampledRun(c, mk, sym, name)
	if err != nil {
		return GuestRun{}, SampledRun{}, fmt.Errorf("bench: sampled profile of %s: %w", name, err)
	}
	return exact, sampled, nil
}

// flatCycles indexes a profile's flat cycle counts by function name.
func flatCycles(p *guestprof.Profile) map[string]int64 {
	m := make(map[string]int64, len(p.Funcs))
	for _, f := range p.Funcs {
		m[f.Name] = f.Flat.Cycles
	}
	return m
}

// FlatCycleDelta sums |exact - sampled| flat cycles over the union of
// functions — the L1 distance between the two attributions, 0 when the
// sampled profile is exact.
func FlatCycleDelta(exact, sampled *guestprof.Profile) int64 {
	e, s := flatCycles(exact), flatCycles(sampled)
	var d int64
	for name, ec := range e {
		dc := ec - s[name]
		if dc < 0 {
			dc = -dc
		}
		d += dc
	}
	for name, sc := range s {
		if _, ok := e[name]; !ok {
			d += sc
		}
	}
	return d
}

// ExtFastProf publishes, per benchmark, how the epoch-sampled fast-path
// profile compares to the exact Step-path profiler — coverage, hottest
// function agreement, total attribution distance — and what sampling
// costs in wall time over the bare fast path. Rows run sequentially, like
// every timing experiment: parallel timing on a shared pool would measure
// contention.
func ExtFastProf(c *Corpus) (*Table, error) {
	opt := core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4}
	t := &Table{
		ID:      "fastprof",
		Title:   "Ext. P: epoch-sampled fast-path profiling vs exact profiler (nibble scheme, entries ≤ 4)",
		Columns: []string{"bench", "steps", "coverage", "epochs", "hottest", "exact flat%", "sampled flat%", "Σ|Δcycles|", "bare ns/run", "sampled ns/run", "overhead"},
		Note: "timing experiment (host-dependent, excluded from the deterministic " +
			"default set); sampled attribution is flat-only but exact per covered " +
			"step, so Σ|Δcycles| counts only instrumented-path steps; overhead is " +
			"sampled/bare wall time on the fused loop, CI-gated at 1.10",
	}
	for _, name := range c.Names() {
		exact, sampled, err := SampledProfilePair(c, name, opt)
		if err != nil {
			return nil, err
		}
		cov := sampled.Fast.Coverage(sampled.Steps)
		hot := exact.Profile.Funcs[0]
		shot, _ := sampled.Profile.FuncByName(hot.Name)
		img, err := c.Image(name, opt)
		if err != nil {
			return nil, err
		}
		sym, err := img.GuestSymTab()
		if err != nil {
			return nil, err
		}
		bare, err := core.NewMachine(img)
		if err != nil {
			return nil, err
		}
		btime, _, err := measureRuns(bare)
		if err != nil {
			return nil, fmt.Errorf("fastprof: bare %s: %w", name, err)
		}
		timed, err := core.NewMachine(img)
		if err != nil {
			return nil, err
		}
		timed.EnableEpochSampling(stats.New(), guestprof.NewSampled(sym))
		stime, _, err := measureRuns(timed)
		if err != nil {
			return nil, fmt.Errorf("fastprof: sampled %s: %w", name, err)
		}
		t.AddRow(name,
			fmt.Sprint(sampled.Steps),
			fmt.Sprintf("%.4f", cov),
			fmt.Sprint(sampled.Fast.Epochs),
			hot.Name,
			fmt.Sprintf("%.1f", 100*float64(hot.Flat.Cycles)/float64(exact.Profile.Total.Cycles)),
			fmt.Sprintf("%.1f", 100*float64(shot.Flat.Cycles)/float64(sampled.Profile.Total.Cycles)),
			fmt.Sprint(FlatCycleDelta(exact.Profile, sampled.Profile)),
			fmt.Sprint(btime.Nanoseconds()),
			fmt.Sprint(stime.Nanoseconds()),
			fmt.Sprintf("%.2f", float64(stime)/float64(btime)),
		)
	}
	return t, nil
}

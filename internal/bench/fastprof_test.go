package bench

import (
	"testing"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/guestprof"
	"repro/internal/stats"
)

// TestSampledProfilerAccuracy pins the sampled profiler's contract on
// every benchmark: cycle totals are conserved (sampled total == fast-path
// steps), coverage is essentially complete (the acceptance floor is 0.99;
// these runs never leave the fused loop), and at full coverage the
// reconstructed flat profile equals the exact Step-path profiler's flat
// profile counter for counter — attribution by slot address is exact, not
// approximate.
func TestSampledProfilerAccuracy(t *testing.T) {
	opt := core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4}
	for _, name := range sharedCorpus.Names() {
		exact, sampled, err := SampledProfilePair(sharedCorpus, name, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cov := sampled.Fast.Coverage(sampled.Steps)
		if cov < 0.99 {
			t.Errorf("%s: fastpath coverage %.4f < 0.99 (bails: %s)",
				name, cov, sampled.Fast.BailSummary())
		}
		if sampled.Profile.Total.Cycles != sampled.Fast.Steps {
			t.Errorf("%s: sampled total %d cycles, fast path executed %d (conservation)",
				name, sampled.Profile.Total.Cycles, sampled.Fast.Steps)
		}
		if exact.Profile.Total.Cycles != sampled.Steps {
			t.Errorf("%s: exact total %d cycles, run executed %d steps",
				name, exact.Profile.Total.Cycles, sampled.Steps)
		}
		// Every uncovered step can perturb the L1 distance by at most 2
		// (one missing sampled cycle, one extra exact cycle elsewhere); at
		// full coverage the distance must be exactly zero.
		uncovered := sampled.Steps - sampled.Fast.Steps
		if d := FlatCycleDelta(exact.Profile, sampled.Profile); d > 2*uncovered {
			t.Errorf("%s: flat attribution distance %d with %d uncovered steps",
				name, d, uncovered)
		}
		if uncovered == 0 {
			compareFlat(t, name, exact.Profile, sampled.Profile)
		} else {
			topOverlap(t, name, exact.Profile, sampled.Profile)
		}
		// The exported counters agree with the machine's own telemetry.
		if got := sampled.Stats.Counter("machine.fastpath.steps"); got != sampled.Fast.Steps {
			t.Errorf("%s: exported fastpath.steps %d, machine counted %d", name, got, sampled.Fast.Steps)
		}
		if h := sampled.Stats.Hist("machine.fastpath.epoch_len"); h.Sum != sampled.Fast.Steps {
			t.Errorf("%s: epoch_len histogram sums %d steps, fast path ran %d", name, h.Sum, sampled.Fast.Steps)
		}
	}
}

// TestSampledProfilerAccuracyNative runs the same comparison over the
// uncompressed frontend (raw 4-byte slots, no expansion) on a subset —
// the symbolization path differs, the contract does not.
func TestSampledProfilerAccuracyNative(t *testing.T) {
	for _, name := range []string{"compress", "perl"} {
		p, err := sharedCorpus.Program(name)
		if err != nil {
			t.Fatal(err)
		}
		sym := guestprof.NewProgramSymTab(p)
		exact, err := profiledRun(func() (*machineCPU, error) { return newNative(p) }, sym, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cpu, err := newNative(p)
		if err != nil {
			t.Fatal(err)
		}
		sp := guestprof.NewSampled(sym)
		cpu.EnableEpochSampling(stats.New(), sp)
		if _, err := cpu.Run(execBudget); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cpu.FlushEpoch()
		if cpu.Fast.Steps != cpu.Stats.Steps {
			t.Fatalf("%s: native run left the fast path: %s", name, cpu.Fast.BailSummary())
		}
		prof := sp.Profile(name)
		if prof.Total.Cycles != exact.Profile.Total.Cycles {
			t.Errorf("%s: sampled %d cycles, exact %d", name, prof.Total.Cycles, exact.Profile.Total.Cycles)
		}
		compareFlat(t, name, exact.Profile, prof)
		if prof.Total.Expanded != 0 || prof.Total.Expansions != 0 {
			t.Errorf("%s: native profile reports expansion: %+v", name, prof.Total)
		}
	}
}

// compareFlat requires per-function flat counts to match exactly (zero-
// flat functions, which only the exact profiler's call tree surfaces, are
// skipped — the sampled profile is flat-only by design).
func compareFlat(t *testing.T, name string, exact, sampled *guestprof.Profile) {
	t.Helper()
	sm := map[string]guestprof.Counts{}
	for _, f := range sampled.Funcs {
		sm[f.Name] = f.Flat
	}
	n := 0
	for _, f := range exact.Funcs {
		if f.Flat == (guestprof.Counts{}) {
			continue
		}
		n++
		got, ok := sm[f.Name]
		if !ok {
			t.Errorf("%s: function %s missing from sampled profile", name, f.Name)
			continue
		}
		if got != f.Flat {
			t.Errorf("%s: %s flat: sampled %+v, exact %+v", name, f.Name, got, f.Flat)
		}
		delete(sm, f.Name)
	}
	if n == 0 {
		t.Errorf("%s: exact profile has no hot functions", name)
	}
	for extra := range sm {
		t.Errorf("%s: sampled profile invented function %s", name, extra)
	}
}

// topOverlap is the weaker check for partially covered runs: the top-5
// hot sets must share at least 4 functions.
func topOverlap(t *testing.T, name string, exact, sampled *guestprof.Profile) {
	t.Helper()
	top := func(p *guestprof.Profile) map[string]bool {
		m := map[string]bool{}
		for i, f := range p.Funcs {
			if i == 5 {
				break
			}
			m[f.Name] = true
		}
		return m
	}
	e, s := top(exact), top(sampled)
	shared := 0
	for n := range e {
		if s[n] {
			shared++
		}
	}
	if want := len(e) - 1; shared < want {
		t.Errorf("%s: top-5 overlap %d/%d between exact and sampled", name, shared, len(e))
	}
}

package bench

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
)

// TestGoldenImagePayloads pins the serialized payload of every benchmark
// under every registered codec to hashes captured before the codec
// registry existed. A mismatch means the refactor changed what lands on
// disk — either the encoder's output or the payload framing drifted.
//
// The hashes cover the codec payload only (what Codec.WriteImage emits),
// not the outer PPCZ frame: the frame deliberately changed from v1 to the
// self-describing v2 header, but every payload byte behind it must not.
func TestGoldenImagePayloads(t *testing.T) {
	f, err := os.Open("testdata/golden_hashes.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	c := NewCorpus()
	seen := map[string]bool{}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			t.Fatalf("golden_hashes.txt:%d: want 3 fields, got %q", line, sc.Text())
		}
		bench, enc, want := fields[0], fields[1], fields[2]
		seen[enc] = true
		t.Run(bench+"/"+enc, func(t *testing.T) {
			t.Parallel()
			got, err := payloadHash(c, bench, enc)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("payload hash %s, want %s (serialized image changed)", got, want)
			}
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// The table must cover the whole registry: a codec added without a
	// golden row would silently escape the regression gate.
	for _, name := range codec.Names() {
		if !seen[name] {
			t.Errorf("codec %q has no golden rows; regenerate testdata/golden_hashes.txt", name)
		}
	}
}

func payloadHash(c *Corpus, bench, enc string) (string, error) {
	cd, err := codec.ByName(enc)
	if err != nil {
		return "", err
	}
	var img codec.Image
	if sc, ok := cd.(codec.Schemed); ok {
		img, err = c.Image(bench, core.Options{Scheme: sc.Scheme(), MaxEntryLen: 4})
	} else {
		prog, perr := c.Program(bench)
		if perr != nil {
			return "", perr
		}
		img, err = cd.Compress(prog, codec.Options{})
	}
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := cd.WriteImage(&buf, img); err != nil {
		return "", fmt.Errorf("serialize %s/%s: %w", bench, enc, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/guestprof"
	"repro/internal/obs"
)

func init() {
	Experiments = append(Experiments,
		Runner{ID: "guestprof", Title: "Ext. M: symbolized guest profiles, native vs compressed", Run: ExtGuestProf},
	)
}

// GuestRun is one profiled execution: the aggregated per-function profile
// plus the folded call stacks for flamegraph tooling.
type GuestRun struct {
	Profile *guestprof.Profile
	Folded  string
}

// ProfilePair is a benchmark's paired native and compressed guest
// profiles. Because the compressed run symbolizes through the image's
// address map, both sides attribute cycles to the same function names and
// diff directly; the exact profiler guarantees each side's total equals
// its run's step count (the sides differ only by executed far-branch-stub
// instructions).
type ProfilePair struct {
	Bench      string
	Native     GuestRun
	Compressed GuestRun
}

// profiledRun executes a CPU to completion with an exact profiler attached.
func profiledRun(mk func() (*machineCPU, error), sym *guestprof.SymTab, name string) (GuestRun, error) {
	cpu, err := mk()
	if err != nil {
		return GuestRun{}, err
	}
	gp := guestprof.New(sym)
	gp.Attach(cpu)
	if _, err := cpu.Run(200_000_000); err != nil {
		return GuestRun{}, err
	}
	var sb strings.Builder
	if err := gp.WriteFolded(&sb); err != nil {
		return GuestRun{}, err
	}
	return GuestRun{Profile: gp.Profile(name), Folded: sb.String()}, nil
}

// GuestProfilePair profiles one benchmark natively and under the given
// compression options.
func GuestProfilePair(c *Corpus, name string, opt core.Options) (*ProfilePair, error) {
	p, err := c.Program(name)
	if err != nil {
		return nil, err
	}
	img, err := c.Image(name, opt)
	if err != nil {
		return nil, err
	}
	sym, err := img.GuestSymTab()
	if err != nil {
		return nil, err
	}
	pair := &ProfilePair{Bench: name}
	if pair.Native, err = profiledRun(func() (*machineCPU, error) { return newNative(p) },
		guestprof.NewProgramSymTab(p), name); err != nil {
		return nil, fmt.Errorf("bench: native profile of %s: %w", name, err)
	}
	if pair.Compressed, err = profiledRun(func() (*machineCPU, error) { return core.NewMachine(img) },
		sym, name); err != nil {
		return nil, fmt.Errorf("bench: compressed profile of %s: %w", name, err)
	}
	return pair, nil
}

// ExtGuestProf compares the paired profiles per benchmark: the hottest
// function, its share of cycles (identical on both sides — compression
// preserves the instruction stream), and how the memory-traffic and
// dictionary-expansion costs land on it in the compressed run.
func ExtGuestProf(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "guestprof",
		Title:   "Guest profile: hottest function, native vs compressed (nibble scheme, entries ≤ 4)",
		Columns: []string{"bench", "steps", "Δsteps", "funcs", "hottest", "flat%", "orig bytes", "comp bytes", "dict insns"},
		Note: "per-function cycle attribution is exact on both sides; Δsteps is the " +
			"compressed run's extra executed instructions (far-branch stubs); " +
			"\"comp bytes\" is the hottest function's program-memory traffic after " +
			"compression and \"dict insns\" its instructions supplied by the dictionary",
	}
	names := c.Names()
	err := rowsInOrder(c, t, len(names), func(i int) ([]string, error) {
		name := names[i]
		pair, err := GuestProfilePair(c, name, core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
		if err != nil {
			return nil, err
		}
		np, cp := pair.Native.Profile, pair.Compressed.Profile
		hot := np.Funcs[0]
		chot, ok := cp.FuncByName(hot.Name)
		if !ok {
			return nil, fmt.Errorf("bench: %s: hottest function %q missing from compressed profile", name, hot.Name)
		}
		return []string{
			name,
			fmt.Sprint(np.Total.Cycles),
			fmt.Sprint(cp.Total.Cycles - np.Total.Cycles),
			fmt.Sprint(len(np.Funcs)),
			hot.Name,
			fmt.Sprintf("%.1f", 100*float64(hot.Flat.Cycles)/float64(np.Total.Cycles)),
			fmt.Sprint(hot.Flat.FetchBytes),
			fmt.Sprint(chot.Flat.FetchBytes),
			fmt.Sprint(chot.Flat.Expanded),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// WriteGuestProfiles writes every benchmark's paired profiles into dir:
// <bench>.native.json / <bench>.native.folded for the uncompressed run and
// <bench>.ppz.json / <bench>.ppz.folded for the compressed one. The folded
// files feed flamegraph tooling directly.
func WriteGuestProfiles(c *Corpus, dir string, opt core.Options) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	names := c.Names()
	return c.each(len(names), func(i int) error {
		pair, err := GuestProfilePair(c, names[i], opt)
		if err != nil {
			return err
		}
		for _, side := range []struct {
			tag string
			run GuestRun
		}{{"native", pair.Native}, {"ppz", pair.Compressed}} {
			base := filepath.Join(dir, pair.Bench+"."+side.tag)
			if err := obs.WriteJSONFile(base+".json", side.run.Profile); err != nil {
				return err
			}
			if err := obs.WriteTextFile(base+".folded", func(w io.Writer) error {
				_, err := io.WriteString(w, side.run.Folded)
				return err
			}); err != nil {
				return err
			}
		}
		return nil
	})
}

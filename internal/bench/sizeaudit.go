package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sizeaudit"
)

func init() {
	Experiments = append(Experiments,
		Runner{ID: "sizeaudit", Title: "Ext. N: byte provenance of the compressed image, per encoding", Run: ExtSizeAudit},
	)
}

// AuditEncodings lists the encodings the size-audit experiment covers —
// every registered codec, in method-byte (table) order: the dictionary
// codeword schemes first, then the comparator compressors. A codec
// registering itself joins the audit sweep with no change here.
var AuditEncodings = codec.Names()

// AuditFor produces the byte-provenance audit of one benchmark under one
// encoding (a registered codec name). Dictionary schemes reconstruct the
// audit from the memoized image's marks; other codecs attach a live
// emitter to their encoders. Every returned audit has passed its
// conservation check — the experiment is self-verifying.
func AuditFor(c *Corpus, name, enc string) (*sizeaudit.Audit, error) {
	cd, err := codec.ByName(enc)
	if err != nil {
		return nil, fmt.Errorf("bench: unknown audit encoding %q", enc)
	}
	if sc, ok := cd.(codec.Schemed); ok {
		img, err := c.Image(name, core.Options{Scheme: sc.Scheme(), MaxEntryLen: 4})
		if err != nil {
			return nil, err
		}
		return img.SizeAudit()
	}
	p, err := c.Program(name)
	if err != nil {
		return nil, err
	}
	return cd.Audit(p, codec.Options{Stats: c.Recorder()})
}

// ExtSizeAudit attributes every compressed byte of every benchmark under
// every encoding: one row per (benchmark, encoding) pair, one column per
// provenance class holding that class's share of the image. Because each
// audit passes the conservation invariant before rendering, the class
// shares of a row always account for exactly 100% of the image.
func ExtSizeAudit(c *Corpus) (*Table, error) {
	t := &Table{
		ID:      "sizeaudit",
		Title:   "Byte provenance of the compressed image, per encoding",
		Columns: []string{"bench", "encoding", "bytes", "ratio"},
		Note: "class shares of the compressed image (conservation-checked: rows sum " +
			"to 100%); the gap between the ~30-50% savings and the codeword share " +
			"is exactly the raw/stub/padding/dictionary/table overhead shown here",
	}
	for _, cl := range sizeaudit.Classes() {
		t.Columns = append(t.Columns, cl.String())
	}
	names := c.Names()
	encs := AuditEncodings
	// One work item per (benchmark, encoding) cell: the audits are
	// independent, so they saturate the pool instead of serializing per row.
	rows := make([][]string, len(names)*len(encs))
	err := c.each(len(rows), func(k int) error {
		name, enc := names[k/len(encs)], encs[k%len(encs)]
		a, err := AuditFor(c, name, enc)
		if err != nil {
			return err
		}
		totalBits := float64(a.TotalBytes) * 8
		cls := a.ClassTotals()
		row := []string{name, enc, fmt.Sprint(a.TotalBytes), ratioStr(a.Ratio())}
		for _, cl := range sizeaudit.Classes() {
			row = append(row, pct(float64(cls[cl])/totalBits))
		}
		rows[k] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

// WriteSizeAudits writes every benchmark's audits into dir: for each
// encoding, <bench>.<encoding>.json (the full per-function attribution),
// .csv (per-function per-class bit counts) and .folded (flamegraph input),
// plus <bench>.native.json as the diff baseline.
func WriteSizeAudits(c *Corpus, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	names := c.Names()
	encs := AuditEncodings
	return c.each(len(names)*len(encs), func(k int) error {
		name, enc := names[k/len(encs)], encs[k%len(encs)]
		a, err := AuditFor(c, name, enc)
		if err != nil {
			return err
		}
		base := filepath.Join(dir, name+"."+enc)
		if err := obs.WriteJSONFile(base+".json", a); err != nil {
			return err
		}
		if err := obs.WriteTextFile(base+".csv", a.WriteCSV); err != nil {
			return err
		}
		if err := obs.WriteTextFile(base+".folded", a.WriteFolded); err != nil {
			return err
		}
		if enc != encs[0] {
			return nil
		}
		// First encoding slot also writes the benchmark's native audit, the
		// baseline side for diffing any of the compressed audits.
		p, err := c.Program(name)
		if err != nil {
			return err
		}
		return obs.WriteJSONFile(filepath.Join(dir, name+".native.json"), sizeaudit.AuditProgram(p))
	})
}

package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string // e.g. "fig4"
	Title   string
	Columns []string
	Rows    [][]string
	Note    string // paper-vs-measured commentary
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], cell)
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Note)
	}
	return sb.String()
}

// RenderCSV formats the table as RFC-4180-ish CSV (header row first, the
// note as a trailing comment line).
func (t *Table) RenderCSV() string {
	var sb strings.Builder
	writeCSVRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			sb.WriteString(c)
		}
		sb.WriteByte('\n')
	}
	writeCSVRow(t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&sb, "# %s\n", t.Note)
	}
	return sb.String()
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// ratio formats a compression ratio.
func ratioStr(f float64) string { return fmt.Sprintf("%.3f", f) }

package bench

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/trace"
)

// TestEngineTracing runs real corpus work under a tracer and checks the
// span tree has the documented shape: one root per experiment, row spans
// with worker attribution, and corpus/pipeline spans nested below.
func TestEngineTracing(t *testing.T) {
	runners := []Runner{
		{ID: "t1", Title: "traced one", Run: func(c *Corpus) (*Table, error) {
			tb := &Table{ID: "t1", Columns: []string{"ratio"}}
			return tb, rowsInOrder(c, tb, 2, func(i int) ([]string, error) {
				name := []string{"compress", "li"}[i]
				img, err := c.Image(name, core.Options{Scheme: codeword.Nibble})
				if err != nil {
					return nil, err
				}
				return []string{ratio(img)}, nil
			})
		}},
		{ID: "t2", Title: "traced two", Run: func(c *Corpus) (*Table, error) {
			tb := &Table{ID: "t2", Columns: []string{"ratio"}}
			img, err := c.Image("compress", core.Options{Scheme: codeword.OneByte})
			if err != nil {
				return nil, err
			}
			tb.AddRow(ratio(img))
			return tb, nil
		}},
	}
	tr := trace.New()
	e := NewEngine(NewCorpus(), EngineOptions{Parallel: 4, Tracer: tr})
	if _, err := e.Run(context.Background(), runners); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	byName := map[string]int{}
	roots := 0
	for _, s := range spans {
		byName[s.Name]++
		if s.Parent == 0 {
			roots++
		}
		if !s.Ended {
			t.Errorf("span %s (id %d) never ended", s.Name, s.ID)
		}
	}
	if roots != 2 {
		t.Fatalf("%d root spans, want one per experiment (2)", roots)
	}
	if byName["experiment:t1"] != 1 || byName["experiment:t2"] != 1 {
		t.Fatalf("experiment roots missing: %v", byName)
	}
	if byName["row"] != 2 {
		t.Fatalf("%d row spans, want 2 (t1's pool rows)", byName["row"])
	}
	// Three distinct (name, options) pairs were compressed; each carries
	// the pipeline phases beneath it.
	for _, want := range []string{"corpus.compress", "core.build", "dict.select"} {
		if byName[want] != 3 {
			t.Fatalf("%d %s spans, want 3 (one per compression): %v", byName[want], want, byName)
		}
	}
	if byName["corpus.generate"] != 2 {
		t.Fatalf("%d corpus.generate spans, want 2 (compress, li)", byName["corpus.generate"])
	}
}

func ratio(img *core.Image) string { return fmt.Sprintf("%.3f", img.Ratio()) }

// Package benchfmt owns the repository's BENCH_*.json trajectory format:
// parsing `go test -bench` output into it (command benchjson), comparing
// two trajectory files (command benchdiff), and the sample statistics —
// per-metric distributions with 95% confidence intervals and a
// Mann-Whitney U significance test — that make those comparisons robust
// to run-to-run noise. Keeping the schema in one package means the
// writer, the regression gate and the perf-history ledger
// (internal/perfhist) can never drift apart.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Canonical metric names for the built-in `go test -bench` units, used as
// keys into Benchmark.Samples alongside the custom b.ReportMetric names.
const (
	MetricNs     = "ns/op"
	MetricBytes  = "B/op"
	MetricAllocs = "allocs/op"
	MetricMBs    = "MB/s"
)

// Benchmark is one benchmark's aggregated result. With `go test -count=N`
// the same benchmark name appears N times in the output; Parse folds the
// duplicates into one Benchmark whose point fields (NsPerOp, Metrics, …)
// hold per-metric means and whose Samples carry every raw observation.
// Single-sample reports serialize exactly as they did before Samples
// existed (the field is omitted), so committed baselines stay loadable
// in both directions.
type Benchmark struct {
	Name string `json:"name"`

	// Iterations is the total b.N across all samples of this benchmark.
	Iterations int64 `json:"iterations"`

	// Point values: the per-metric sample means (the sample value itself
	// when N=1).
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`

	// Samples holds every raw observation per metric (keyed by MetricNs,
	// MetricBytes, … or the custom metric name), present only when the
	// report was built from more than one sample.
	Samples map[string][]float64 `json:"samples,omitempty"`
}

// Report is the file layout.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Find returns the named benchmark.
func (r *Report) Find(name string) (Benchmark, bool) {
	if b := r.find(name); b != nil {
		return *b, true
	}
	return Benchmark{}, false
}

// ReadFile loads a BENCH_*.json report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		if syn, ok := err.(*json.SyntaxError); ok {
			return nil, fmt.Errorf("benchfmt: %s: offset %d: %w", path, syn.Offset, err)
		}
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return rep, nil
}

// Parse converts `go test -bench` output into a report. It fails when no
// benchmark lines are found, so an empty or broken bench run can never
// silently produce an empty trajectory file. Duplicate result lines for
// one benchmark name — what `go test -count=N` emits — accumulate as
// samples: the point fields become per-metric means, Iterations the total
// across runs, and Samples the raw observations feeding Dist and the
// Mann-Whitney significance test.
func Parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			rep.add(b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	rep.finalize()
	return rep, nil
}

// add accumulates one parsed result line into the report: a first
// occurrence starts the benchmark's sample arrays, a duplicate name
// appends to them. Point fields are recomputed from the samples by
// finalize.
func (r *Report) add(b Benchmark) {
	e := r.find(b.Name)
	if e == nil {
		r.Benchmarks = append(r.Benchmarks, b)
		e = &r.Benchmarks[len(r.Benchmarks)-1]
		e.Samples = map[string][]float64{}
	} else {
		e.Iterations += b.Iterations
	}
	e.Samples[MetricNs] = append(e.Samples[MetricNs], b.NsPerOp)
	if b.BytesPerOp != nil {
		e.Samples[MetricBytes] = append(e.Samples[MetricBytes], *b.BytesPerOp)
	}
	if b.AllocsPerOp != nil {
		e.Samples[MetricAllocs] = append(e.Samples[MetricAllocs], *b.AllocsPerOp)
	}
	if b.MBPerSec != nil {
		e.Samples[MetricMBs] = append(e.Samples[MetricMBs], *b.MBPerSec)
	}
	for m, v := range b.Metrics {
		e.Samples[m] = append(e.Samples[m], v)
	}
}

// finalize folds each benchmark's samples into its point fields (means)
// and drops the Samples map entirely for single-sample benchmarks, so a
// -count=1 run serializes byte-identically to the pre-sample schema.
func (r *Report) finalize() {
	for i := range r.Benchmarks {
		b := &r.Benchmarks[i]
		multi := false
		for _, s := range b.Samples {
			if len(s) > 1 {
				multi = true
			}
		}
		if !multi {
			b.Samples = nil
			continue
		}
		mean := func(s []float64) float64 { return NewDist(s).Mean }
		b.NsPerOp = mean(b.Samples[MetricNs])
		for _, u := range []struct {
			key string
			dst **float64
		}{
			{MetricBytes, &b.BytesPerOp},
			{MetricAllocs, &b.AllocsPerOp},
			{MetricMBs, &b.MBPerSec},
		} {
			if s := b.Samples[u.key]; len(s) > 0 {
				v := mean(s)
				*u.dst = &v
			}
		}
		for m := range b.Metrics {
			if s := b.Samples[m]; len(s) > 0 {
				b.Metrics[m] = mean(s)
			}
		}
	}
}

// parseBench parses one result line: name, iteration count, then
// (value, unit) pairs.
func parseBench(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed result line")
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", f[i], err)
		}
		// v is re-declared each iteration, so taking its address is safe.
		switch f[i+1] {
		case MetricNs:
			b.NsPerOp = v
		case MetricBytes:
			b.BytesPerOp = &v
		case MetricAllocs:
			b.AllocsPerOp = &v
		case MetricMBs:
			b.MBPerSec = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[f[i+1]] = v
		}
	}
	return b, nil
}

// Dist returns the distribution of the named metric: computed over the
// raw samples when the benchmark carries them, else degenerating to the
// single point value (N=1, zero spread). The second result is false when
// the benchmark does not track the metric at all.
func (b *Benchmark) Dist(metric string) (Dist, bool) {
	if s := b.Samples[metric]; len(s) > 0 {
		return NewDist(s), true
	}
	switch metric {
	case MetricNs:
		return NewDist([]float64{b.NsPerOp}), true
	case MetricBytes:
		if b.BytesPerOp != nil {
			return NewDist([]float64{*b.BytesPerOp}), true
		}
	case MetricAllocs:
		if b.AllocsPerOp != nil {
			return NewDist([]float64{*b.AllocsPerOp}), true
		}
	case MetricMBs:
		if b.MBPerSec != nil {
			return NewDist([]float64{*b.MBPerSec}), true
		}
	default:
		if v, ok := b.Metrics[metric]; ok {
			return NewDist([]float64{v}), true
		}
	}
	return Dist{}, false
}

// AddDerived attaches metrics computed across benchmarks, stored on a
// benchmark's Metrics so each ratio itself rides the trajectory and is
// regression-gated, not just the raw values (which move together with
// host speed; their quotients do not):
//
//   - compressed_vs_native_ratio: BenchmarkCompressedExecution's ns/op
//     over BenchmarkNativeExecution's — the cost of executing compressed.
//   - sampled_profiling_overhead_ratio: BenchmarkSampledExecution's ns/op
//     over BenchmarkCompressedExecution's — the cost of always-on
//     epoch-sampled profiling over the bare fast path (CI ceiling 1.10).
//   - fastpath_coverage: BenchmarkSampledExecution's faststeps/op over its
//     steps/op — the share of execution the fused loop supplied.
//
// With multi-sample inputs each derived metric carries its own sample
// set, giving the -max ceiling a confidence interval to gate on. How
// samples pair up depends on where they come from. Cross-benchmark
// ratios (the two overhead ratios) divide samples from *independent*
// runs — `go test -count=N` runs each benchmark N consecutive times, so
// sample i of the numerator and sample i of the denominator share
// nothing — and are paired after sorting both sides: the i-th order
// statistic over the i-th order statistic, a quantile-matched ratio
// whose spread reflects the distributions' relationship rather than the
// (arbitrary) run pairing. fastpath_coverage divides two metrics of the
// *same* benchmark, where index i on both sides is the same run, so it
// pairs by index exactly. Non-finite pairs (zero or NaN denominators)
// are skipped, and each derivation is independently a no-op when a side
// is absent or no finite pair survives.
func (r *Report) AddDerived() {
	r.deriveRatio("BenchmarkCompressedExecution", "compressed_vs_native_ratio",
		"BenchmarkNativeExecution")
	r.deriveRatio("BenchmarkSampledExecution", "sampled_profiling_overhead_ratio",
		"BenchmarkCompressedExecution")
	if b := r.find("BenchmarkSampledExecution"); b != nil {
		b.storeDerived("fastpath_coverage",
			pairwiseRatios(b.metricSamples("faststeps/op"), b.metricSamples("steps/op")))
	}
}

// find returns a mutable pointer to the named benchmark, nil when absent.
func (r *Report) find(name string) *Benchmark {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// deriveRatio stores name's ns/op over base's ns/op as metric on name,
// pairing the two sides' samples as sorted order statistics (see
// AddDerived for why cross-benchmark samples must not pair by run index).
func (r *Report) deriveRatio(name, metric, base string) {
	b, bb := r.find(name), r.find(base)
	if b == nil || bb == nil {
		return
	}
	b.storeDerived(metric, pairwiseRatios(
		sortedCopy(b.metricSamples(MetricNs)), sortedCopy(bb.metricSamples(MetricNs))))
}

// sortedCopy returns the samples in ascending order without mutating the
// report's own arrays.
func sortedCopy(s []float64) []float64 {
	out := append([]float64(nil), s...)
	sort.Float64s(out)
	return out
}

// metricSamples returns the raw samples of a metric, falling back to the
// single point value for sample-less reports. A metric the benchmark does
// not track yields nil.
func (b *Benchmark) metricSamples(metric string) []float64 {
	if s := b.Samples[metric]; len(s) > 0 {
		return s
	}
	if d, ok := b.Dist(metric); ok {
		return []float64{d.Mean}
	}
	return nil
}

// storeDerived records a derived metric's mean (and, with more than one
// surviving pair, its sample set) on the benchmark. No-op when ratios is
// empty, so a missing input side never fabricates a metric.
func (b *Benchmark) storeDerived(metric string, ratios []float64) {
	if len(ratios) == 0 {
		return
	}
	if b.Metrics == nil {
		b.Metrics = map[string]float64{}
	}
	b.Metrics[metric] = NewDist(ratios).Mean
	if len(ratios) > 1 {
		if b.Samples == nil {
			b.Samples = map[string][]float64{}
		}
		b.Samples[metric] = ratios
	}
}

// pairwiseRatios divides num[i] by den[i] over the shorter length,
// skipping pairs whose quotient is not finite (zero denominators, NaN or
// Inf inputs), so derived metrics can never leak NaN/Inf into a report.
func pairwiseRatios(num, den []float64) []float64 {
	n := len(num)
	if len(den) < n {
		n = len(den)
	}
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if den[i] == 0 {
			continue
		}
		v := num[i] / den[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		out = append(out, v)
	}
	return out
}

// Ceiling is one absolute bound on a metric: unlike the relative
// Regressions gate, it fails on the value itself (e.g.
// compressed_vs_native_ratio must stay under 1.15 no matter what the
// baseline said).
type Ceiling struct {
	Metric string
	Limit  float64
}

// Exceeded checks the report against a set of ceilings. With multi-sample
// reports the bound is evaluated against the metric's 95% CI upper bound,
// not the mean — one lucky sample cannot sneak a regression under an
// absolute gate — degrading to the point value for single-sample reports.
// It returns the violating (bench, metric, evaluated value) entries, and
// an error if a ceiling names a metric no benchmark in the report
// carries — a gate silently checking nothing is the failure mode this
// exists to prevent.
func (r *Report) Exceeded(ceilings []Ceiling) ([]MetricDelta, error) {
	var out []MetricDelta
	for _, c := range ceilings {
		found := false
		for i := range r.Benchmarks {
			b := &r.Benchmarks[i]
			if _, ok := b.Metrics[c.Metric]; !ok {
				continue
			}
			found = true
			d, _ := b.Dist(c.Metric)
			if d.CIHigh > c.Limit {
				out = append(out, MetricDelta{
					Bench: b.Name, Metric: c.Metric, Old: c.Limit, New: d.CIHigh,
					NewDist: d, P: math.NaN(),
				})
			}
		}
		if !found {
			return nil, fmt.Errorf("ceiling metric %q not present in report (metrics present: %s)",
				c.Metric, strings.Join(r.MetricNames(), ", "))
		}
	}
	return out, nil
}

// MetricNames returns every custom metric name any benchmark in the
// report carries, sorted and deduplicated — so a misspelled gate can be
// diagnosed from its own error message.
func (r *Report) MetricNames() []string {
	seen := map[string]bool{}
	for _, b := range r.Benchmarks {
		for m := range b.Metrics {
			seen[m] = true
		}
	}
	names := make([]string, 0, len(seen))
	for m := range seen {
		names = append(names, m)
	}
	sort.Strings(names)
	return names
}

// MetricDelta is one measurement's movement between two reports. Old and
// New are the per-side means; OldDist/NewDist the full distributions; P
// the two-sided Mann-Whitney p-value, NaN when either side lacks the two
// samples a significance test needs.
type MetricDelta struct {
	Bench   string  // benchmark name
	Metric  string  // "ns/op" or a custom metric name
	Old     float64 // mean in the old report
	New     float64 // mean in the new report
	OldDist Dist
	NewDist Dist
	P       float64
}

// Pct is the relative change in percent; +Inf-free: a zero old value with
// a nonzero new value reports 100%.
func (d MetricDelta) Pct() float64 {
	if d.Old == 0 {
		if d.New == 0 {
			return 0
		}
		return 100
	}
	return 100 * (d.New - d.Old) / d.Old
}

// Significant reports whether both sides carried enough samples to run
// the Mann-Whitney test and it rejected "same distribution" at alpha.
func (d MetricDelta) Significant(alpha float64) bool {
	return !math.IsNaN(d.P) && d.P <= alpha
}

// Comparison is the outcome of diffing two reports.
type Comparison struct {
	Deltas  []MetricDelta // benchmarks present in both, in old-report order
	OldOnly []string      // benchmarks that disappeared
	NewOnly []string      // benchmarks that appeared
}

// Compare matches benchmarks by name and computes per-metric deltas:
// ns/op always, then every custom metric the two sides share (quantiles
// like selbits-p99), sorted by metric name within a benchmark. A metric
// only one side carries produces no delta row (the benchmark-level
// OldOnly/NewOnly lists cover whole benchmarks appearing/disappearing).
// Each delta carries both sides' distributions and, when both sides have
// at least two samples, a Mann-Whitney p-value.
func Compare(old, new *Report) *Comparison {
	c := &Comparison{}
	for _, ob := range old.Benchmarks {
		nb, ok := new.Find(ob.Name)
		if !ok {
			c.OldOnly = append(c.OldOnly, ob.Name)
			continue
		}
		c.Deltas = append(c.Deltas, newDelta(ob, nb, MetricNs, ob.NsPerOp, nb.NsPerOp))
		shared := make([]string, 0, len(ob.Metrics))
		for m := range ob.Metrics {
			if _, ok := nb.Metrics[m]; ok {
				shared = append(shared, m)
			}
		}
		sort.Strings(shared)
		for _, m := range shared {
			c.Deltas = append(c.Deltas, newDelta(ob, nb, m, ob.Metrics[m], nb.Metrics[m]))
		}
	}
	for _, nb := range new.Benchmarks {
		if _, ok := old.Find(nb.Name); !ok {
			c.NewOnly = append(c.NewOnly, nb.Name)
		}
	}
	return c
}

// newDelta assembles one metric's delta row with distributions and, when
// both sides have >= 2 samples, the Mann-Whitney p-value.
func newDelta(ob, nb Benchmark, metric string, oldV, newV float64) MetricDelta {
	d := MetricDelta{Bench: ob.Name, Metric: metric, Old: oldV, New: newV, P: math.NaN()}
	d.OldDist, _ = ob.Dist(metric)
	d.NewDist, _ = nb.Dist(metric)
	if len(ob.Samples[metric]) >= 2 && len(nb.Samples[metric]) >= 2 {
		d.P = MannWhitneyU(ob.Samples[metric], nb.Samples[metric])
	}
	return d
}

// Regressions returns the deltas whose value grew by more than threshold
// percent. All tracked metrics are costs (time, bytes, quantile sizes),
// so growth is always the bad direction.
func (c *Comparison) Regressions(threshold float64) []MetricDelta {
	var out []MetricDelta
	for _, d := range c.Deltas {
		if d.Pct() > threshold {
			out = append(out, d)
		}
	}
	return out
}

// SignificantRegressions filters Regressions down to the deltas that are
// also statistically significant at alpha: a mean that grew past the
// threshold but whose distributions the Mann-Whitney test cannot tell
// apart is scheduler noise, not a regression. Deltas without enough
// samples for the test (either side single-sample) are kept — absence of
// evidence must fail the gate, not wave it through.
func (c *Comparison) SignificantRegressions(threshold, alpha float64) []MetricDelta {
	var out []MetricDelta
	for _, d := range c.Deltas {
		if d.Pct() <= threshold {
			continue
		}
		if math.IsNaN(d.P) || d.P <= alpha {
			out = append(out, d)
		}
	}
	return out
}

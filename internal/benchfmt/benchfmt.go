// Package benchfmt owns the repository's BENCH_*.json trajectory format:
// parsing `go test -bench` output into it (command benchjson) and
// comparing two trajectory files (command benchdiff). Keeping the schema
// in one package means the writer and the regression gate can never
// drift apart.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"b_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	MBPerSec    *float64           `json:"mb_per_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file layout.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Find returns the named benchmark.
func (r *Report) Find(name string) (Benchmark, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// ReadFile loads a BENCH_*.json report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return rep, nil
}

// Parse converts `go test -bench` output into a report. It fails when no
// benchmark lines are found, so an empty or broken bench run can never
// silently produce an empty trajectory file.
func Parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return rep, nil
}

// parseBench parses one result line: name, iteration count, then
// (value, unit) pairs.
func parseBench(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed result line")
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b := Benchmark{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", f[i], err)
		}
		// v is re-declared each iteration, so taking its address is safe.
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		case "MB/s":
			b.MBPerSec = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[f[i+1]] = v
		}
	}
	return b, nil
}

// AddDerived attaches metrics computed across benchmarks, stored on a
// benchmark's Metrics so each ratio itself rides the trajectory and is
// regression-gated, not just the raw values (which move together with
// host speed; their quotients do not):
//
//   - compressed_vs_native_ratio: BenchmarkCompressedExecution's ns/op
//     over BenchmarkNativeExecution's — the cost of executing compressed.
//   - sampled_profiling_overhead_ratio: BenchmarkSampledExecution's ns/op
//     over BenchmarkCompressedExecution's — the cost of always-on
//     epoch-sampled profiling over the bare fast path (CI ceiling 1.10).
//   - fastpath_coverage: BenchmarkSampledExecution's faststeps/op over its
//     steps/op — the share of execution the fused loop supplied.
//
// Each derivation is independently a no-op when a side is absent or its
// denominator is zero.
func (r *Report) AddDerived() {
	r.deriveRatio("BenchmarkCompressedExecution", "compressed_vs_native_ratio",
		"BenchmarkNativeExecution")
	r.deriveRatio("BenchmarkSampledExecution", "sampled_profiling_overhead_ratio",
		"BenchmarkCompressedExecution")
	if b := r.find("BenchmarkSampledExecution"); b != nil {
		steps, fast := b.Metrics["steps/op"], b.Metrics["faststeps/op"]
		if steps > 0 {
			b.Metrics["fastpath_coverage"] = fast / steps
		}
	}
}

// find returns a mutable pointer to the named benchmark, nil when absent.
func (r *Report) find(name string) *Benchmark {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// deriveRatio stores name's ns/op over base's ns/op as metric on name.
func (r *Report) deriveRatio(name, metric, base string) {
	bb, ok := r.Find(base)
	if !ok || bb.NsPerOp == 0 {
		return
	}
	b := r.find(name)
	if b == nil {
		return
	}
	if b.Metrics == nil {
		b.Metrics = map[string]float64{}
	}
	b.Metrics[metric] = b.NsPerOp / bb.NsPerOp
}

// Ceiling is one absolute bound on a metric: unlike the relative
// Regressions gate, it fails on the value itself (e.g.
// compressed_vs_native_ratio must stay under 1.15 no matter what the
// baseline said).
type Ceiling struct {
	Metric string
	Limit  float64
}

// Exceeded checks the report against a set of ceilings. It returns the
// violating (bench, metric, value) entries, and an error if a ceiling
// names a metric no benchmark in the report carries — a gate silently
// checking nothing is the failure mode this exists to prevent.
func (r *Report) Exceeded(ceilings []Ceiling) ([]MetricDelta, error) {
	var out []MetricDelta
	for _, c := range ceilings {
		found := false
		for _, b := range r.Benchmarks {
			v, ok := b.Metrics[c.Metric]
			if !ok {
				continue
			}
			found = true
			if v > c.Limit {
				out = append(out, MetricDelta{Bench: b.Name, Metric: c.Metric, Old: c.Limit, New: v})
			}
		}
		if !found {
			return nil, fmt.Errorf("ceiling metric %q not present in report (metrics present: %s)",
				c.Metric, strings.Join(r.MetricNames(), ", "))
		}
	}
	return out, nil
}

// MetricNames returns every custom metric name any benchmark in the
// report carries, sorted and deduplicated — so a misspelled gate can be
// diagnosed from its own error message.
func (r *Report) MetricNames() []string {
	seen := map[string]bool{}
	for _, b := range r.Benchmarks {
		for m := range b.Metrics {
			seen[m] = true
		}
	}
	names := make([]string, 0, len(seen))
	for m := range seen {
		names = append(names, m)
	}
	sort.Strings(names)
	return names
}

// MetricDelta is one measurement's movement between two reports.
type MetricDelta struct {
	Bench  string  // benchmark name
	Metric string  // "ns/op" or a custom metric name
	Old    float64 // value in the old report
	New    float64 // value in the new report
}

// Pct is the relative change in percent; +Inf-free: a zero old value with
// a nonzero new value reports 100%.
func (d MetricDelta) Pct() float64 {
	if d.Old == 0 {
		if d.New == 0 {
			return 0
		}
		return 100
	}
	return 100 * (d.New - d.Old) / d.Old
}

// Comparison is the outcome of diffing two reports.
type Comparison struct {
	Deltas  []MetricDelta // benchmarks present in both, in old-report order
	OldOnly []string      // benchmarks that disappeared
	NewOnly []string      // benchmarks that appeared
}

// Compare matches benchmarks by name and computes per-metric deltas:
// ns/op always, then every custom metric the two sides share (quantiles
// like selbits-p99), sorted by metric name within a benchmark.
func Compare(old, new *Report) *Comparison {
	c := &Comparison{}
	newNames := map[string]bool{}
	for _, b := range new.Benchmarks {
		newNames[b.Name] = true
	}
	for _, ob := range old.Benchmarks {
		nb, ok := new.Find(ob.Name)
		if !ok {
			c.OldOnly = append(c.OldOnly, ob.Name)
			continue
		}
		c.Deltas = append(c.Deltas, MetricDelta{
			Bench: ob.Name, Metric: "ns/op", Old: ob.NsPerOp, New: nb.NsPerOp,
		})
		shared := make([]string, 0, len(ob.Metrics))
		for m := range ob.Metrics {
			if _, ok := nb.Metrics[m]; ok {
				shared = append(shared, m)
			}
		}
		sort.Strings(shared)
		for _, m := range shared {
			c.Deltas = append(c.Deltas, MetricDelta{
				Bench: ob.Name, Metric: m, Old: ob.Metrics[m], New: nb.Metrics[m],
			})
		}
	}
	for _, nb := range new.Benchmarks {
		if _, ok := old.Find(nb.Name); !ok {
			c.NewOnly = append(c.NewOnly, nb.Name)
		}
	}
	return c
}

// Regressions returns the deltas whose value grew by more than threshold
// percent. All tracked metrics are costs (time, bytes, quantile sizes),
// so growth is always the bad direction.
func (c *Comparison) Regressions(threshold float64) []MetricDelta {
	var out []MetricDelta
	for _, d := range c.Deltas {
		if d.Pct() > threshold {
			out = append(out, d)
		}
	}
	return out
}

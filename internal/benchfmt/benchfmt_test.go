package benchfmt

import (
	"bufio"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Testing CPU
BenchmarkCompressNibble/go-8         	      10	 123456789 ns/op	       0.450 ratio	  1024 B/op	      12 allocs/op
BenchmarkDictionary/gcc-8            	       5	 987654321 ns/op	      55.00 selbits-p99
PASS
`

func parseSample(t *testing.T) *Report {
	t.Helper()
	rep, err := Parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParse(t *testing.T) {
	rep := parseSample(t)
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" || rep.CPU != "Testing CPU" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkCompressNibble/go-8" || b.Iterations != 10 || b.NsPerOp != 123456789 {
		t.Fatalf("bench 0: %+v", b)
	}
	if b.Metrics["ratio"] != 0.45 || b.BytesPerOp == nil || *b.BytesPerOp != 1024 {
		t.Fatalf("bench 0 metrics: %+v", b)
	}
	if rep.Benchmarks[1].Metrics["selbits-p99"] != 55 {
		t.Fatalf("bench 1 metrics: %+v", rep.Benchmarks[1])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(bufio.NewScanner(strings.NewReader("PASS\nok\n"))); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func TestCompare(t *testing.T) {
	old := parseSample(t)
	newer := parseSample(t)
	newer.Benchmarks[0].NsPerOp *= 1.5                // 50% slower
	newer.Benchmarks[1].Metrics["selbits-p99"] = 44   // improved
	newer.Benchmarks[1].Name = "BenchmarkRenamed/x-8" // disappeared + appeared

	c := Compare(old, newer)
	if len(c.OldOnly) != 1 || len(c.NewOnly) != 1 {
		t.Fatalf("only-lists: %+v", c)
	}
	// Matched benchmark: ns/op and the shared ratio metric.
	var ns, ratio *MetricDelta
	for i := range c.Deltas {
		d := &c.Deltas[i]
		if d.Bench != "BenchmarkCompressNibble/go-8" {
			t.Fatalf("unexpected delta %+v", d)
		}
		switch d.Metric {
		case "ns/op":
			ns = d
		case "ratio":
			ratio = d
		}
	}
	if ns == nil || ratio == nil {
		t.Fatalf("missing deltas: %+v", c.Deltas)
	}
	if pct := ns.Pct(); pct < 49.9 || pct > 50.1 {
		t.Fatalf("ns/op pct %v", pct)
	}
	if ratio.Pct() != 0 {
		t.Fatalf("ratio pct %v", ratio.Pct())
	}

	if regs := c.Regressions(20); len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("regressions(20): %+v", regs)
	}
	if regs := c.Regressions(60); len(regs) != 0 {
		t.Fatalf("regressions(60): %+v", regs)
	}
}

func TestAddDerived(t *testing.T) {
	rep := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkNativeExecution", NsPerOp: 200},
		{Name: "BenchmarkCompressedExecution", NsPerOp: 220},
		{Name: "BenchmarkSampledExecution", NsPerOp: 231,
			Metrics: map[string]float64{"steps/op": 16000, "faststeps/op": 15840}},
	}}
	rep.AddDerived()
	comp, _ := rep.Find("BenchmarkCompressedExecution")
	if got := comp.Metrics["compressed_vs_native_ratio"]; got != 1.1 {
		t.Fatalf("compressed_vs_native_ratio = %v", got)
	}
	samp, _ := rep.Find("BenchmarkSampledExecution")
	if got := samp.Metrics["sampled_profiling_overhead_ratio"]; got != 1.05 {
		t.Fatalf("sampled_profiling_overhead_ratio = %v", got)
	}
	if got := samp.Metrics["fastpath_coverage"]; got != 0.99 {
		t.Fatalf("fastpath_coverage = %v", got)
	}
}

func TestAddDerivedPartialReport(t *testing.T) {
	// Each derivation is independent: with no native baseline, only the
	// sampling-derived metrics appear.
	rep := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkCompressedExecution", NsPerOp: 220},
		{Name: "BenchmarkSampledExecution", NsPerOp: 242,
			Metrics: map[string]float64{"steps/op": 100, "faststeps/op": 100}},
	}}
	rep.AddDerived()
	comp, _ := rep.Find("BenchmarkCompressedExecution")
	if _, ok := comp.Metrics["compressed_vs_native_ratio"]; ok {
		t.Fatal("ratio derived without its baseline")
	}
	samp, _ := rep.Find("BenchmarkSampledExecution")
	if got := samp.Metrics["sampled_profiling_overhead_ratio"]; got != 1.1 {
		t.Fatalf("sampled_profiling_overhead_ratio = %v", got)
	}
	if got := samp.Metrics["fastpath_coverage"]; got != 1 {
		t.Fatalf("fastpath_coverage = %v", got)
	}
}

func TestExceeded(t *testing.T) {
	rep := parseSample(t)
	over, err := rep.Exceeded([]Ceiling{{Metric: "ratio", Limit: 0.4}})
	if err != nil || len(over) != 1 || over[0].New != 0.45 {
		t.Fatalf("exceeded = %+v, err %v", over, err)
	}
	over, err = rep.Exceeded([]Ceiling{{Metric: "ratio", Limit: 0.5}})
	if err != nil || len(over) != 0 {
		t.Fatalf("under-ceiling = %+v, err %v", over, err)
	}
}

func TestExceededAbsentMetricListsPresent(t *testing.T) {
	rep := parseSample(t)
	_, err := rep.Exceeded([]Ceiling{{Metric: "no_such_metric", Limit: 1}})
	if err == nil {
		t.Fatal("absent ceiling metric accepted")
	}
	// The failure is self-diagnosing: it names the metrics that DO exist.
	for _, want := range []string{"no_such_metric", "ratio", "selbits-p99"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestMetricDeltaPctZeroOld(t *testing.T) {
	if p := (MetricDelta{Old: 0, New: 5}).Pct(); p != 100 {
		t.Fatalf("pct from zero = %v", p)
	}
	if p := (MetricDelta{Old: 0, New: 0}).Pct(); p != 0 {
		t.Fatalf("pct zero/zero = %v", p)
	}
}

// countOutput renders a -count=3 run: each benchmark line repeats with
// per-run values.
const countOutput = `goos: linux
pkg: repro
BenchmarkX-8   10   100 ns/op   0.40 ratio
BenchmarkX-8   12   110 ns/op   0.50 ratio
BenchmarkX-8   11   120 ns/op   0.60 ratio
BenchmarkY-8    5   500 ns/op
PASS
`

func parseCount(t *testing.T) *Report {
	t.Helper()
	rep, err := Parse(bufio.NewScanner(strings.NewReader(countOutput)))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestParseAccumulatesSamples is the regression test for the duplicate
// benchmark-line bug: Parse used to keep only the last occurrence of a
// repeated name, silently discarding every earlier -count sample.
func TestParseAccumulatesSamples(t *testing.T) {
	rep := parseCount(t)
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	x := rep.Benchmarks[0]
	if x.Name != "BenchmarkX-8" {
		t.Fatalf("bench 0: %+v", x)
	}
	if x.Iterations != 33 {
		t.Errorf("Iterations = %d, want 33 (sum across runs)", x.Iterations)
	}
	if x.NsPerOp != 110 {
		t.Errorf("NsPerOp = %v, want mean 110", x.NsPerOp)
	}
	if x.Metrics["ratio"] != 0.5 {
		t.Errorf("ratio = %v, want mean 0.5", x.Metrics["ratio"])
	}
	wantNs := []float64{100, 110, 120}
	if got := x.Samples[MetricNs]; len(got) != 3 || got[0] != wantNs[0] || got[1] != wantNs[1] || got[2] != wantNs[2] {
		t.Errorf("ns samples = %v, want %v", got, wantNs)
	}
	if got := x.Samples["ratio"]; len(got) != 3 {
		t.Errorf("ratio samples = %v, want 3 entries", got)
	}
	// Single-sample benchmarks drop Samples so the serialized form is
	// byte-identical to the pre-sample schema.
	if y := rep.Benchmarks[1]; y.Samples != nil {
		t.Errorf("single-sample benchmark kept Samples: %v", y.Samples)
	}
}

func TestSamplesRoundTripJSON(t *testing.T) {
	rep := parseCount(t)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.Benchmarks[0].Samples[MetricNs]; len(got) != 3 {
		t.Fatalf("samples lost in round-trip: %v", got)
	}
	if strings.Contains(string(data), `"BenchmarkY-8","iterations":5,"ns_per_op":500,"samples"`) {
		t.Fatal("single-sample benchmark serialized a samples field")
	}
}

func TestCompareOneSidedMetric(t *testing.T) {
	// A metric only one side carries must not produce a delta row —
	// there is nothing to compare it against.
	old := &Report{Benchmarks: []Benchmark{{Name: "B", NsPerOp: 100,
		Metrics: map[string]float64{"only_old": 1}}}}
	newer := &Report{Benchmarks: []Benchmark{{Name: "B", NsPerOp: 100,
		Metrics: map[string]float64{"only_new": 2}}}}
	c := Compare(old, newer)
	if len(c.Deltas) != 1 || c.Deltas[0].Metric != MetricNs {
		t.Fatalf("deltas = %+v, want ns/op only", c.Deltas)
	}
}

func TestCompareSignificance(t *testing.T) {
	mk := func(ns []float64) *Report {
		b := Benchmark{Name: "B", Samples: map[string][]float64{MetricNs: ns}}
		b.NsPerOp = NewDist(ns).Mean
		return &Report{Benchmarks: []Benchmark{b}}
	}
	// Noise: ~15% mean movement but heavily overlapping spreads.
	old := mk([]float64{100, 140, 105, 150, 117})
	noisy := mk([]float64{110, 160, 120, 140, 152})
	c := Compare(old, noisy)
	d := c.Deltas[0]
	if d.Pct() < 10 {
		t.Fatalf("test setup: pct = %v, want a >10%% mean move", d.Pct())
	}
	if d.Significant(DefaultAlpha) {
		t.Errorf("overlapping distributions tested significant (p=%v)", d.P)
	}
	if regs := c.SignificantRegressions(10, DefaultAlpha); len(regs) != 0 {
		t.Errorf("noise failed the significant gate: %+v", regs)
	}

	// Genuine shift: every new sample beyond every old one.
	shifted := mk([]float64{130, 131, 132, 133, 134})
	base := mk([]float64{100, 101, 102, 103, 104})
	c = Compare(base, shifted)
	d = c.Deltas[0]
	if !d.Significant(DefaultAlpha) {
		t.Errorf("clean 30%% shift not significant (p=%v)", d.P)
	}
	if regs := c.SignificantRegressions(10, DefaultAlpha); len(regs) != 1 {
		t.Errorf("genuine shift passed the significant gate: %+v", regs)
	}

	// Too few samples on one side: p is NaN and the gate still fails.
	single := &Report{Benchmarks: []Benchmark{{Name: "B", NsPerOp: 130}}}
	c = Compare(base, single)
	if !math.IsNaN(c.Deltas[0].P) {
		t.Errorf("single-sample side produced p=%v, want NaN", c.Deltas[0].P)
	}
	if regs := c.SignificantRegressions(10, DefaultAlpha); len(regs) != 1 {
		t.Errorf("untestable regression waved through: %+v", regs)
	}
}

func TestExceededUsesCIUpperBound(t *testing.T) {
	// Mean 1.0 is under the 1.05 ceiling, but the spread pushes the 95%
	// CI upper bound over it — the gate must fail on the bound.
	b := Benchmark{Name: "B", Metrics: map[string]float64{"r": 1.0},
		Samples: map[string][]float64{"r": {0.9, 1.0, 1.1}}}
	rep := &Report{Benchmarks: []Benchmark{b}}
	over, err := rep.Exceeded([]Ceiling{{Metric: "r", Limit: 1.05}})
	if err != nil || len(over) != 1 {
		t.Fatalf("over = %+v, err %v", over, err)
	}
	if over[0].New <= 1.05 {
		t.Errorf("reported value %v should be the CI bound above the limit", over[0].New)
	}
	// A wide enough ceiling clears the bound.
	if over, _ := rep.Exceeded([]Ceiling{{Metric: "r", Limit: 2}}); len(over) != 0 {
		t.Errorf("limit 2 violated: %+v", over)
	}
	// Tight samples: CI stays under the same 1.05 ceiling the spread broke.
	b.Samples["r"] = []float64{0.99, 1.0, 1.01}
	rep = &Report{Benchmarks: []Benchmark{b}}
	if over, _ := rep.Exceeded([]Ceiling{{Metric: "r", Limit: 1.05}}); len(over) != 0 {
		t.Errorf("tight CI flagged: %+v", over)
	}
}

func TestAddDerivedGuardsNonFinite(t *testing.T) {
	// Zero and NaN denominators in the sample pairing must be skipped,
	// never leaking NaN/Inf into a derived metric.
	rep := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkNativeExecution", NsPerOp: 100,
			Samples: map[string][]float64{MetricNs: {0, math.NaN(), 100, 200}}},
		{Name: "BenchmarkCompressedExecution", NsPerOp: 120,
			Samples: map[string][]float64{MetricNs: {110, 120, 110, 220}}},
	}}
	rep.AddDerived()
	comp, _ := rep.Find("BenchmarkCompressedExecution")
	got, ok := comp.Metrics["compressed_vs_native_ratio"]
	if !ok {
		t.Fatal("ratio not derived from the finite pairs")
	}
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("ratio = %v", got)
	}
	// Sorted pairing: num {110,110,120,220} over den {NaN,0,100,200};
	// only the two finite pairs (120/100, 220/200) survive.
	if s := comp.Samples["compressed_vs_native_ratio"]; len(s) != 2 || s[0] != 1.2 || s[1] != 1.1 {
		t.Fatalf("ratio samples = %v, want [1.2 1.1]", s)
	}
}

func TestAddDerivedSortsCrossBenchmarkPairs(t *testing.T) {
	// -count runs each benchmark N consecutive times, so run order
	// carries no pairing information; the derivation must match order
	// statistics. Here both sides hold the same values in opposite
	// order — sorted pairing yields exactly 1.0 ratios, while naive
	// index pairing would produce a wide spread.
	rep := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkNativeExecution", NsPerOp: 110,
			Samples: map[string][]float64{MetricNs: {120, 110, 100}}},
		{Name: "BenchmarkCompressedExecution", NsPerOp: 110,
			Samples: map[string][]float64{MetricNs: {100, 110, 120}}},
	}}
	rep.AddDerived()
	comp, _ := rep.Find("BenchmarkCompressedExecution")
	for _, v := range comp.Samples["compressed_vs_native_ratio"] {
		if v != 1 {
			t.Fatalf("sorted pairing broken: ratios %v", comp.Samples["compressed_vs_native_ratio"])
		}
	}
	// Same-benchmark derivation (coverage) stays index-paired: sample i
	// of faststeps and steps come from the same run.
	rep2 := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkSampledExecution", NsPerOp: 100, Metrics: map[string]float64{},
			Samples: map[string][]float64{
				MetricNs: {100, 101}, "faststeps/op": {50, 200}, "steps/op": {100, 200}}},
	}}
	rep2.AddDerived()
	samp, _ := rep2.Find("BenchmarkSampledExecution")
	if s := samp.Samples["fastpath_coverage"]; len(s) != 2 || s[0] != 0.5 || s[1] != 1 {
		t.Fatalf("coverage samples = %v, want [0.5 1]", s)
	}
}

func TestAddDerivedAllZeroDenominator(t *testing.T) {
	rep := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkNativeExecution", NsPerOp: 0},
		{Name: "BenchmarkCompressedExecution", NsPerOp: 120},
	}}
	rep.AddDerived()
	comp, _ := rep.Find("BenchmarkCompressedExecution")
	if _, ok := comp.Metrics["compressed_vs_native_ratio"]; ok {
		t.Fatal("ratio fabricated from an all-zero denominator")
	}
}

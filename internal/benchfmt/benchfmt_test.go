package benchfmt

import (
	"bufio"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Testing CPU
BenchmarkCompressNibble/go-8         	      10	 123456789 ns/op	       0.450 ratio	  1024 B/op	      12 allocs/op
BenchmarkDictionary/gcc-8            	       5	 987654321 ns/op	      55.00 selbits-p99
PASS
`

func parseSample(t *testing.T) *Report {
	t.Helper()
	rep, err := Parse(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParse(t *testing.T) {
	rep := parseSample(t)
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" || rep.CPU != "Testing CPU" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkCompressNibble/go-8" || b.Iterations != 10 || b.NsPerOp != 123456789 {
		t.Fatalf("bench 0: %+v", b)
	}
	if b.Metrics["ratio"] != 0.45 || b.BytesPerOp == nil || *b.BytesPerOp != 1024 {
		t.Fatalf("bench 0 metrics: %+v", b)
	}
	if rep.Benchmarks[1].Metrics["selbits-p99"] != 55 {
		t.Fatalf("bench 1 metrics: %+v", rep.Benchmarks[1])
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(bufio.NewScanner(strings.NewReader("PASS\nok\n"))); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func TestCompare(t *testing.T) {
	old := parseSample(t)
	newer := parseSample(t)
	newer.Benchmarks[0].NsPerOp *= 1.5                // 50% slower
	newer.Benchmarks[1].Metrics["selbits-p99"] = 44   // improved
	newer.Benchmarks[1].Name = "BenchmarkRenamed/x-8" // disappeared + appeared

	c := Compare(old, newer)
	if len(c.OldOnly) != 1 || len(c.NewOnly) != 1 {
		t.Fatalf("only-lists: %+v", c)
	}
	// Matched benchmark: ns/op and the shared ratio metric.
	var ns, ratio *MetricDelta
	for i := range c.Deltas {
		d := &c.Deltas[i]
		if d.Bench != "BenchmarkCompressNibble/go-8" {
			t.Fatalf("unexpected delta %+v", d)
		}
		switch d.Metric {
		case "ns/op":
			ns = d
		case "ratio":
			ratio = d
		}
	}
	if ns == nil || ratio == nil {
		t.Fatalf("missing deltas: %+v", c.Deltas)
	}
	if pct := ns.Pct(); pct < 49.9 || pct > 50.1 {
		t.Fatalf("ns/op pct %v", pct)
	}
	if ratio.Pct() != 0 {
		t.Fatalf("ratio pct %v", ratio.Pct())
	}

	if regs := c.Regressions(20); len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("regressions(20): %+v", regs)
	}
	if regs := c.Regressions(60); len(regs) != 0 {
		t.Fatalf("regressions(60): %+v", regs)
	}
}

func TestAddDerived(t *testing.T) {
	rep := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkNativeExecution", NsPerOp: 200},
		{Name: "BenchmarkCompressedExecution", NsPerOp: 220},
		{Name: "BenchmarkSampledExecution", NsPerOp: 231,
			Metrics: map[string]float64{"steps/op": 16000, "faststeps/op": 15840}},
	}}
	rep.AddDerived()
	comp, _ := rep.Find("BenchmarkCompressedExecution")
	if got := comp.Metrics["compressed_vs_native_ratio"]; got != 1.1 {
		t.Fatalf("compressed_vs_native_ratio = %v", got)
	}
	samp, _ := rep.Find("BenchmarkSampledExecution")
	if got := samp.Metrics["sampled_profiling_overhead_ratio"]; got != 1.05 {
		t.Fatalf("sampled_profiling_overhead_ratio = %v", got)
	}
	if got := samp.Metrics["fastpath_coverage"]; got != 0.99 {
		t.Fatalf("fastpath_coverage = %v", got)
	}
}

func TestAddDerivedPartialReport(t *testing.T) {
	// Each derivation is independent: with no native baseline, only the
	// sampling-derived metrics appear.
	rep := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkCompressedExecution", NsPerOp: 220},
		{Name: "BenchmarkSampledExecution", NsPerOp: 242,
			Metrics: map[string]float64{"steps/op": 100, "faststeps/op": 100}},
	}}
	rep.AddDerived()
	comp, _ := rep.Find("BenchmarkCompressedExecution")
	if _, ok := comp.Metrics["compressed_vs_native_ratio"]; ok {
		t.Fatal("ratio derived without its baseline")
	}
	samp, _ := rep.Find("BenchmarkSampledExecution")
	if got := samp.Metrics["sampled_profiling_overhead_ratio"]; got != 1.1 {
		t.Fatalf("sampled_profiling_overhead_ratio = %v", got)
	}
	if got := samp.Metrics["fastpath_coverage"]; got != 1 {
		t.Fatalf("fastpath_coverage = %v", got)
	}
}

func TestExceeded(t *testing.T) {
	rep := parseSample(t)
	over, err := rep.Exceeded([]Ceiling{{Metric: "ratio", Limit: 0.4}})
	if err != nil || len(over) != 1 || over[0].New != 0.45 {
		t.Fatalf("exceeded = %+v, err %v", over, err)
	}
	over, err = rep.Exceeded([]Ceiling{{Metric: "ratio", Limit: 0.5}})
	if err != nil || len(over) != 0 {
		t.Fatalf("under-ceiling = %+v, err %v", over, err)
	}
}

func TestExceededAbsentMetricListsPresent(t *testing.T) {
	rep := parseSample(t)
	_, err := rep.Exceeded([]Ceiling{{Metric: "no_such_metric", Limit: 1}})
	if err == nil {
		t.Fatal("absent ceiling metric accepted")
	}
	// The failure is self-diagnosing: it names the metrics that DO exist.
	for _, want := range []string{"no_such_metric", "ratio", "selbits-p99"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestMetricDeltaPctZeroOld(t *testing.T) {
	if p := (MetricDelta{Old: 0, New: 5}).Pct(); p != 100 {
		t.Fatalf("pct from zero = %v", p)
	}
	if p := (MetricDelta{Old: 0, New: 0}).Pct(); p != 0 {
		t.Fatalf("pct zero/zero = %v", p)
	}
}

package benchfmt

import (
	"math"
	"sort"
)

// DefaultAlpha is the significance level the -significant gate and the
// trend changepoint detector use: a delta counts as real only when the
// Mann-Whitney test rejects "same distribution" at p <= 0.05.
const DefaultAlpha = 0.05

// Dist summarizes one metric's samples across repeated runs
// (`go test -count=N`): the moments plus a 95% confidence interval on the
// mean. A single-sample distribution degenerates to its point value with
// zero spread, so every consumer can treat old single-sample reports and
// new multi-sample ones uniformly.
type Dist struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Stddev float64 `json:"stddev"` // sample standard deviation (n-1)
	CILow  float64 `json:"ci_low"`
	CIHigh float64 `json:"ci_high"` // 95% CI on the mean (Student t)
}

// NewDist computes the distribution of a sample set. An empty set yields
// the zero Dist (N=0).
func NewDist(samples []float64) Dist {
	d := Dist{N: len(samples)}
	if d.N == 0 {
		return d
	}
	d.Min, d.Max = samples[0], samples[0]
	var sum float64
	for _, v := range samples {
		sum += v
		if v < d.Min {
			d.Min = v
		}
		if v > d.Max {
			d.Max = v
		}
	}
	d.Mean = sum / float64(d.N)
	if d.N == 1 {
		d.CILow, d.CIHigh = d.Mean, d.Mean
		return d
	}
	var ss float64
	for _, v := range samples {
		dv := v - d.Mean
		ss += dv * dv
	}
	d.Stddev = math.Sqrt(ss / float64(d.N-1))
	half := tCrit(d.N-1) * d.Stddev / math.Sqrt(float64(d.N))
	d.CILow, d.CIHigh = d.Mean-half, d.Mean+half
	return d
}

// Overlaps reports whether the 95% confidence intervals of d and o
// intersect. Disjoint intervals are the trend store's step-detection
// criterion: the two means are distinguishable above run-to-run noise.
func (d Dist) Overlaps(o Dist) bool {
	return d.CILow <= o.CIHigh && o.CILow <= d.CIHigh
}

// tCrit returns the two-sided 97.5% Student-t critical value for the given
// degrees of freedom (so mean +- tCrit*stderr is a 95% CI). Exact table
// through df=30, the normal limit beyond — bench sample counts live at the
// small end where the t correction actually matters.
func tCrit(df int) float64 {
	table := [...]float64{
		1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
		6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
		11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
		16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
		21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
		26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
	}
	if df < 1 {
		return math.NaN()
	}
	if df < len(table) {
		return table[df]
	}
	return 1.960
}

// exactMaxN bounds the exact Mann-Whitney computation: up to 20 samples a
// side the null distribution is enumerated exactly; beyond that (or with
// ties, whose exact distribution depends on the tie pattern) the normal
// approximation with tie and continuity corrections takes over.
const exactMaxN = 20

// MannWhitneyU runs a two-sided Mann-Whitney U test (the significance
// test benchstat uses) on two independent sample sets and returns the
// p-value for the null hypothesis that they come from the same
// distribution. Small untied inputs get the exact permutation
// distribution — unit-tested against the published critical-value tables —
// larger or tied inputs the normal approximation with midranks, tie
// variance correction and continuity correction. Either side empty
// returns NaN: no data, no verdict.
func MannWhitneyU(x, y []float64) float64 {
	n1, n2 := len(x), len(y)
	if n1 == 0 || n2 == 0 {
		return math.NaN()
	}
	type obs struct {
		v   float64
		grp int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range x {
		all = append(all, obs{v, 0})
	}
	for _, v := range y {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks, and the Σ(t³-t) term for the tie variance correction.
	ranks := make([]float64, len(all))
	ties := false
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // mean of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		if t := j - i; t > 1 {
			ties = true
			tf := float64(t)
			tieTerm += tf*tf*tf - tf
		}
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.grp == 0 {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1*(n1+1))/2
	u2 := float64(n1*n2) - u1
	u := math.Min(u1, u2)

	if !ties && n1 <= exactMaxN && n2 <= exactMaxN {
		return exactP(int(u), n1, n2)
	}
	n := float64(n1 + n2)
	mu := float64(n1*n2) / 2
	sigma2 := float64(n1*n2) / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		return 1 // every observation tied: the sides are indistinguishable
	}
	z := (u - mu + 0.5) / math.Sqrt(sigma2) // continuity-corrected, z <= 0
	p := math.Erfc(-z / math.Sqrt2)         // = 2*Φ(z)
	return math.Min(p, 1)
}

// exactP is the exact two-sided p-value: twice the null probability of a
// U statistic at or below u, capped at 1 (the null distribution of U is
// symmetric about n1*n2/2).
func exactP(u, n1, n2 int) float64 {
	memo := map[[3]int]float64{}
	var cum float64
	for k := 0; k <= u; k++ {
		cum += countU(k, n1, n2, memo)
	}
	p := 2 * cum / binom(n1+n2, n1)
	return math.Min(p, 1)
}

// countU counts the orderings of n x-observations and m y-observations
// whose U statistic equals u, via the standard recurrence
// N(u;n,m) = N(u-m;n-1,m) + N(u;n,m-1): the largest observation is either
// an x (contributing m pairs) or a y (contributing none).
func countU(u, n, m int, memo map[[3]int]float64) float64 {
	if u < 0 {
		return 0
	}
	if n == 0 || m == 0 {
		if u == 0 {
			return 1
		}
		return 0
	}
	key := [3]int{u, n, m}
	if v, ok := memo[key]; ok {
		return v
	}
	v := countU(u-m, n-1, m, memo) + countU(u, n, m-1, memo)
	memo[key] = v
	return v
}

// binom computes C(n,k) in floating point — exact for every size the
// exact test reaches (C(40,20) ≈ 1.4e11 needs 38 bits).
func binom(n, k int) float64 {
	if k > n-k {
		k = n - k
	}
	v := 1.0
	for i := 1; i <= k; i++ {
		v = v * float64(n-k+i) / float64(i)
	}
	return v
}

package benchfmt

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestNewDistKnownValues(t *testing.T) {
	d := NewDist([]float64{1, 2, 3, 4, 5})
	if d.N != 5 {
		t.Fatalf("N = %d, want 5", d.N)
	}
	approx(t, "Mean", d.Mean, 3, 1e-12)
	if d.Min != 1 || d.Max != 5 {
		t.Errorf("Min/Max = %v/%v, want 1/5", d.Min, d.Max)
	}
	// sample stddev of {1..5} = sqrt(2.5)
	approx(t, "Stddev", d.Stddev, math.Sqrt(2.5), 1e-12)
	// 95% CI halfwidth = t(0.975, df=4) * sd/sqrt(5) = 2.776 * 0.7071... ≈ 1.963
	approx(t, "CI halfwidth", d.CIHigh-d.Mean, 1.963, 0.002)
	approx(t, "CI symmetry", d.Mean-d.CILow, d.CIHigh-d.Mean, 1e-12)
}

func TestNewDistSingleSample(t *testing.T) {
	d := NewDist([]float64{42})
	if d.N != 1 || d.Mean != 42 || d.Stddev != 0 {
		t.Fatalf("unexpected dist: %+v", d)
	}
	// CI collapses to the point: a single observation carries no spread.
	if d.CILow != 42 || d.CIHigh != 42 {
		t.Errorf("CI = [%v, %v], want [42, 42]", d.CILow, d.CIHigh)
	}
}

func TestDistOverlaps(t *testing.T) {
	a := Dist{CILow: 1, CIHigh: 3}
	b := Dist{CILow: 2.5, CIHigh: 5}
	c := Dist{CILow: 3.5, CIHigh: 4}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("a and c are disjoint")
	}
	// Touching endpoints count as overlap — cannot claim separation.
	d := Dist{CILow: 3, CIHigh: 4}
	if !a.Overlaps(d) {
		t.Error("touching intervals overlap")
	}
}

// TestMannWhitneyKnownTables pins the exact two-sided p-values against
// published Mann-Whitney tables for small samples.
func TestMannWhitneyKnownTables(t *testing.T) {
	// n1=n2=5, U=2: p = 2 * 4/252 = 0.031746...
	p := MannWhitneyU([]float64{1, 2, 3, 4, 7}, []float64{5, 6, 8, 9, 10})
	approx(t, "n=5/5 U=2", p, 2.0*4.0/252.0, 1e-9)

	// n1=n2=5, U=3: p = 2 * 7/252 = 0.055555...
	p = MannWhitneyU([]float64{1, 2, 3, 5, 7}, []float64{4, 6, 8, 9, 10})
	approx(t, "n=5/5 U=3", p, 2.0*7.0/252.0, 1e-9)

	// n1=n2=4, U=0 (complete separation): p = 2 * 1/70 = 0.028571...
	p = MannWhitneyU([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})
	approx(t, "n=4/4 U=0", p, 2.0/70.0, 1e-9)
}

func TestMannWhitneySymmetry(t *testing.T) {
	x := []float64{1, 2, 3, 4, 7}
	y := []float64{5, 6, 8, 9, 10}
	if MannWhitneyU(x, y) != MannWhitneyU(y, x) {
		t.Error("p-value must not depend on argument order")
	}
}

func TestMannWhitneyDegenerate(t *testing.T) {
	if p := MannWhitneyU(nil, []float64{1}); !math.IsNaN(p) {
		t.Errorf("empty side: p = %v, want NaN", p)
	}
	// All observations tied: zero variance, no evidence of difference.
	if p := MannWhitneyU([]float64{5, 5, 5}, []float64{5, 5, 5}); p != 1 {
		t.Errorf("all tied: p = %v, want 1", p)
	}
}

func TestMannWhitneyNormalApproximation(t *testing.T) {
	// Above exactMaxN the normal approximation kicks in. Two clearly
	// shifted samples must test significant; interleaved identical
	// distributions must not.
	var lo, hi, a, b []float64
	for i := 0; i < 25; i++ {
		lo = append(lo, 100+float64(i))
		hi = append(hi, 200+float64(i))
		a = append(a, float64(2*i))   // evens
		b = append(b, float64(2*i+1)) // odds, perfectly interleaved
	}
	if p := MannWhitneyU(lo, hi); p > 1e-6 {
		t.Errorf("shifted samples: p = %v, want ~0", p)
	}
	if p := MannWhitneyU(a, b); p < 0.5 {
		t.Errorf("interleaved samples: p = %v, want large", p)
	}
}

func TestMannWhitneyTies(t *testing.T) {
	// Ties force the midrank/normal path even at small n; the result
	// must stay a sane probability.
	p := MannWhitneyU([]float64{1, 2, 2, 3}, []float64{2, 3, 3, 4})
	if math.IsNaN(p) || p <= 0 || p > 1 {
		t.Errorf("tied samples: p = %v, want (0, 1]", p)
	}
}

// Package cache implements a parameterized set-associative instruction
// cache with LRU replacement, fed by the machine's fetch trace. It backs
// the extension experiment from the paper's introduction and future work
// (§1, §5; [Chen97a]): denser code means fewer instruction-cache misses.
package cache

import (
	"fmt"

	"repro/internal/stats"
)

// Config sizes the cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Assoc     int // 0 means fully associative
}

// Stats counts accesses at line granularity.
type Stats struct {
	Accesses int64
	Misses   int64
}

// Hits is the number of accesses served without a refill.
func (s Stats) Hits() int64 { return s.Accesses - s.Misses }

// MissRate is misses per access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint32
	valid bool
	used  int64 // LRU clock
}

// Cache is the simulator.
type Cache struct {
	cfg   Config
	sets  [][]line
	nsets int
	clock int64
	Stats Stats
}

// New validates the configuration and builds the cache.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a positive power of two", cfg.LineBytes)
	}
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%cfg.LineBytes != 0 {
		return nil, fmt.Errorf("cache: size %d not a multiple of line size", cfg.SizeBytes)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	assoc := cfg.Assoc
	if assoc <= 0 || assoc > lines {
		assoc = lines // fully associative
	}
	if lines%assoc != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, assoc)
	}
	nsets := lines / assoc
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets not a power of two", nsets)
	}
	c := &Cache{cfg: cfg, nsets: nsets}
	c.sets = make([][]line, nsets)
	for i := range c.sets {
		c.sets[i] = make([]line, assoc)
	}
	return c, nil
}

// Access touches [addr, addr+nbytes), accessing every line the range
// covers.
func (c *Cache) Access(addr uint32, nbytes int) {
	if nbytes <= 0 {
		return
	}
	lb := uint32(c.cfg.LineBytes)
	first := addr / lb
	last := (addr + uint32(nbytes) - 1) / lb
	for ln := first; ; ln++ {
		c.touchLine(ln)
		if ln == last {
			break
		}
	}
}

func (c *Cache) touchLine(lineAddr uint32) {
	c.clock++
	c.Stats.Accesses++
	set := c.sets[int(lineAddr)%c.nsets]
	tag := lineAddr / uint32(c.nsets)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = c.clock
			return
		}
		if set[i].used < set[victim].used || !set[i].valid && set[victim].valid {
			victim = i
		}
	}
	// Miss: fill the LRU (or an invalid) way.
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	c.Stats.Misses++
	set[victim] = line{tag: tag, valid: true, used: c.clock}
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = line{}
		}
	}
	c.clock = 0
	c.Stats = Stats{}
}

// Report adds the cache's totals to the recorder as the cache.accesses,
// cache.hits and cache.misses counters, making the I-cache model visible
// in stats output. Nil-safe on the recorder side.
func (c *Cache) Report(r *stats.Recorder) {
	r.Add("cache.accesses", c.Stats.Accesses)
	r.Add("cache.hits", c.Stats.Hits())
	r.Add("cache.misses", c.Stats.Misses)
}

// SamplePoint is one point of a cache hit/miss time series: the
// cumulative statistics after Access line accesses.
type SamplePoint struct {
	Access int64 `json:"access"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Sampler wraps a cache's Access as a machine TraceFetch hook and records
// the cumulative hit/miss curve every Every line accesses — the data
// behind a miss-rate-over-time plot.
type Sampler struct {
	Cache  *Cache
	Every  int64
	Points []SamplePoint

	last int64 // accesses at the previous sample
}

// NewSampler wraps the cache; every must be positive.
func NewSampler(c *Cache, every int64) (*Sampler, error) {
	if every <= 0 {
		return nil, fmt.Errorf("cache: sample interval %d not positive", every)
	}
	return &Sampler{Cache: c, Every: every}, nil
}

// Access forwards to the cache and samples the running totals. One call
// may touch several lines, so sampling triggers on crossing the interval
// rather than equality.
func (s *Sampler) Access(addr uint32, nbytes int) {
	s.Cache.Access(addr, nbytes)
	if st := s.Cache.Stats; st.Accesses-s.last >= s.Every {
		s.last = st.Accesses
		s.Points = append(s.Points, SamplePoint{
			Access: st.Accesses, Hits: st.Hits(), Misses: st.Misses,
		})
	}
}

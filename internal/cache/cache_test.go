package cache

import (
	"testing"

	"repro/internal/stats"
)

func mk(t *testing.T, size, line, assoc int) *Cache {
	t.Helper()
	c, err := New(Config{SizeBytes: size, LineBytes: line, Assoc: assoc})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 1024, LineBytes: 0},
		{SizeBytes: 1024, LineBytes: 24},
		{SizeBytes: 1000, LineBytes: 32},
		{SizeBytes: 0, LineBytes: 32},
		{SizeBytes: 1024, LineBytes: 32, Assoc: 3}, // 32 lines % 3 != 0
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestColdMissesThenHits(t *testing.T) {
	c := mk(t, 1024, 32, 1)
	for i := 0; i < 8; i++ {
		c.Access(uint32(i*32), 4)
	}
	if c.Stats.Misses != 8 || c.Stats.Accesses != 8 {
		t.Fatalf("cold: %+v", c.Stats)
	}
	for i := 0; i < 8; i++ {
		c.Access(uint32(i*32), 4)
	}
	if c.Stats.Misses != 8 || c.Stats.Accesses != 16 {
		t.Fatalf("warm: %+v", c.Stats)
	}
}

func TestDirectMappedConflicts(t *testing.T) {
	// 1KB direct-mapped, 32B lines = 32 sets. Addresses 0 and 1024 map to
	// the same set and evict each other forever.
	c := mk(t, 1024, 32, 1)
	for i := 0; i < 10; i++ {
		c.Access(0, 4)
		c.Access(1024, 4)
	}
	if c.Stats.Misses != 20 {
		t.Fatalf("conflict misses %d, want 20", c.Stats.Misses)
	}
}

func TestTwoWayAbsorbsConflict(t *testing.T) {
	c := mk(t, 1024, 32, 2)
	for i := 0; i < 10; i++ {
		c.Access(0, 4)
		c.Access(1024, 4)
	}
	if c.Stats.Misses != 2 {
		t.Fatalf("2-way misses %d, want 2 cold", c.Stats.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way set: A, B fill the set; touching A then inserting C must
	// evict B, not A.
	c := mk(t, 64, 32, 2) // a single set of 2 ways
	a, b, x := uint32(0), uint32(64), uint32(128)
	c.Access(a, 4) // miss
	c.Access(b, 4) // miss
	c.Access(a, 4) // hit, A most recent
	c.Access(x, 4) // miss, evicts B
	c.Access(a, 4) // hit
	c.Access(b, 4) // miss (was evicted)
	if c.Stats.Misses != 4 {
		t.Fatalf("misses %d, want 4", c.Stats.Misses)
	}
}

func TestStraddlingAccess(t *testing.T) {
	c := mk(t, 1024, 32, 1)
	c.Access(30, 4) // covers lines 0 and 1
	if c.Stats.Accesses != 2 || c.Stats.Misses != 2 {
		t.Fatalf("straddle: %+v", c.Stats)
	}
}

func TestFullyAssociative(t *testing.T) {
	c := mk(t, 128, 32, 0) // 4 lines fully associative
	for i := 0; i < 4; i++ {
		c.Access(uint32(i*4096), 4)
	}
	for i := 0; i < 4; i++ {
		c.Access(uint32(i*4096), 4)
	}
	if c.Stats.Misses != 4 {
		t.Fatalf("fully associative misses %d, want 4", c.Stats.Misses)
	}
}

func TestResetClears(t *testing.T) {
	c := mk(t, 1024, 32, 2)
	c.Access(0, 4)
	c.Reset()
	if c.Stats.Accesses != 0 {
		t.Fatal("stats survived reset")
	}
	c.Access(0, 4)
	if c.Stats.Misses != 1 {
		t.Fatal("contents survived reset")
	}
}

func TestMissRate(t *testing.T) {
	c := mk(t, 1024, 32, 1)
	if c.Stats.MissRate() != 0 {
		t.Fatal("empty miss rate")
	}
	c.Access(0, 4)
	c.Access(0, 4)
	if got := c.Stats.MissRate(); got != 0.5 {
		t.Fatalf("miss rate %f", got)
	}
}

// TestLRUAgainstReference drives the cache and an obviously-correct
// reference model (per-set slice with explicit recency ordering) with the
// same random access stream and requires identical hit/miss sequences.
func TestLRUAgainstReference(t *testing.T) {
	const (
		size  = 512
		line  = 32
		assoc = 4
	)
	c := mk(t, size, line, assoc)
	nsets := size / line / assoc

	type refSet []uint32 // most recent last
	ref := make([]refSet, nsets)
	refAccess := func(lineAddr uint32) bool { // returns hit
		set := &ref[int(lineAddr)%nsets]
		for i, tag := range *set {
			if tag == lineAddr {
				*set = append(append((*set)[:i:i], (*set)[i+1:]...), lineAddr)
				return true
			}
		}
		*set = append(*set, lineAddr)
		if len(*set) > assoc {
			*set = (*set)[1:]
		}
		return false
	}

	rng := uint32(12345)
	for i := 0; i < 20000; i++ {
		rng = rng*1664525 + 1013904223
		lineAddr := rng % 64 // 64 distinct lines over 16 cache slots
		missesBefore := c.Stats.Misses
		c.Access(lineAddr*line, 4)
		gotHit := c.Stats.Misses == missesBefore
		wantHit := refAccess(lineAddr)
		if gotHit != wantHit {
			t.Fatalf("access %d (line %d): cache hit=%v, reference hit=%v", i, lineAddr, gotHit, wantHit)
		}
	}
}

func TestZeroByteAccessIgnored(t *testing.T) {
	c := mk(t, 1024, 32, 1)
	c.Access(0, 0)
	if c.Stats.Accesses != 0 {
		t.Fatal("zero-byte access counted")
	}
}

func TestReportCounters(t *testing.T) {
	c := mk(t, 1024, 32, 1)
	c.Access(0, 4)  // miss
	c.Access(0, 4)  // hit
	c.Access(32, 4) // miss
	rec := stats.New()
	c.Report(rec)
	s := rec.Snapshot()
	if s.Counter("cache.accesses") != 3 || s.Counter("cache.hits") != 1 || s.Counter("cache.misses") != 2 {
		t.Fatalf("counters: %s", s.Summary())
	}
	c.Report(nil) // nil recorder must be a safe sink
}

func TestSampler(t *testing.T) {
	c := mk(t, 1024, 32, 1)
	s, err := NewSampler(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSampler(c, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
	for i := 0; i < 10; i++ {
		s.Access(uint32(i*32), 4) // every access a distinct line: all misses
	}
	if c.Stats.Accesses != 10 || c.Stats.Misses != 10 {
		t.Fatalf("cache stats: %+v", c.Stats)
	}
	if len(s.Points) != 2 {
		t.Fatalf("points: %+v", s.Points)
	}
	for i, p := range s.Points {
		if p.Access != int64(4*(i+1)) || p.Misses != p.Access || p.Hits != 0 {
			t.Fatalf("point %d: %+v", i, p)
		}
	}
}

func TestSamplerCrossingInterval(t *testing.T) {
	// A single Access spanning many lines must still produce a sample once
	// the cumulative count crosses the interval.
	c := mk(t, 1024, 32, 1)
	s, err := NewSampler(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Access(0, 7*32) // touches 7 or 8 lines in one call
	if len(s.Points) != 1 {
		t.Fatalf("points: %+v", s.Points)
	}
}

func TestSamplerZeroAccesses(t *testing.T) {
	// A run that never touches the cache produces no points and leaves the
	// totals untouched.
	c := mk(t, 1024, 32, 1)
	s, err := NewSampler(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 0 {
		t.Fatalf("points before any access: %+v", s.Points)
	}
	if c.Stats.Accesses != 0 || c.Stats.Misses != 0 {
		t.Fatalf("stats before any access: %+v", c.Stats)
	}
}

func TestSamplerSingleAccess(t *testing.T) {
	// One access with an interval of 1 yields exactly one point carrying
	// the cold miss.
	c := mk(t, 1024, 32, 1)
	s, err := NewSampler(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Access(0, 4)
	if len(s.Points) != 1 {
		t.Fatalf("points: %+v", s.Points)
	}
	p := s.Points[0]
	if p.Access != 1 || p.Misses != 1 || p.Hits != 0 {
		t.Fatalf("point: %+v", p)
	}
}

func TestSamplerIntervalLargerThanTrace(t *testing.T) {
	// An interval longer than the whole access trace never samples; the
	// curve is empty but the cache totals still record the run.
	c := mk(t, 1024, 32, 1)
	s, err := NewSampler(c, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s.Access(uint32(32*i), 4)
	}
	if len(s.Points) != 0 {
		t.Fatalf("points: %+v", s.Points)
	}
	if c.Stats.Accesses != 10 {
		t.Fatalf("accesses %d, want 10", c.Stats.Accesses)
	}
}

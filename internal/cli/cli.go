// Package cli holds small helpers shared by the command-line tools. Codec
// and scheme names resolve through the codec registry, so the tools accept
// exactly the set of registered encodings — adding a codec package updates
// every tool's vocabulary with no changes here.
package cli

import (
	"fmt"

	"repro/internal/codec"
	_ "repro/internal/codecs" // populate the registry
	"repro/internal/codeword"
)

// ParseCodec maps a user-facing codec name (or alias) to its codec.
func ParseCodec(s string) (codec.Codec, error) { return codec.ByName(s) }

// CodecNames lists the canonical codec names, in method-byte order.
func CodecNames() []string { return codec.Names() }

// ParseScheme maps user-facing scheme names to dictionary codeword
// schemes; it accepts exactly the registered dictionary codecs (and their
// aliases), rejecting non-dictionary codecs such as ccrp or lzw.
func ParseScheme(s string) (codeword.Scheme, error) {
	c, err := codec.ByName(s)
	if err != nil {
		return 0, fmt.Errorf("unknown scheme %q (want one of %s)", s, joinNames(SchemeNames()))
	}
	sc, ok := c.(codec.Schemed)
	if !ok {
		return 0, fmt.Errorf("codec %q is not a dictionary codeword scheme (want one of %s)",
			c.Name(), joinNames(SchemeNames()))
	}
	return sc.Scheme(), nil
}

// SchemeNames lists the dictionary-scheme codec names, in method-byte
// order.
func SchemeNames() []string {
	var out []string
	for _, c := range codec.Codecs() {
		if _, ok := c.(codec.Schemed); ok {
			out = append(out, c.Name())
		}
	}
	return out
}

func joinNames(names []string) string {
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

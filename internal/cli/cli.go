// Package cli holds small helpers shared by the command-line tools.
package cli

import (
	"fmt"
	"strings"

	"repro/internal/codeword"
)

// ParseScheme maps user-facing scheme names to codeword schemes.
func ParseScheme(s string) (codeword.Scheme, error) {
	switch strings.ToLower(s) {
	case "baseline", "2byte":
		return codeword.Baseline, nil
	case "onebyte", "1byte":
		return codeword.OneByte, nil
	case "nibble":
		return codeword.Nibble, nil
	case "liao":
		return codeword.Liao, nil
	}
	return 0, fmt.Errorf("unknown scheme %q (want baseline, onebyte, nibble or liao)", s)
}

// SchemeNames lists the accepted scheme names.
func SchemeNames() []string { return []string{"baseline", "onebyte", "nibble", "liao"} }

package cli

import (
	"testing"

	"repro/internal/codeword"
)

func TestParseScheme(t *testing.T) {
	cases := []struct {
		in   string
		want codeword.Scheme
		ok   bool
	}{
		{"baseline", codeword.Baseline, true},
		{"BASELINE", codeword.Baseline, true},
		{"2byte", codeword.Baseline, true},
		{"onebyte", codeword.OneByte, true},
		{"1byte", codeword.OneByte, true},
		{"nibble", codeword.Nibble, true},
		{"Nibble", codeword.Nibble, true},
		{"liao", codeword.Liao, true},
		{"huffman", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseScheme(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseScheme(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseScheme(%q) accepted", c.in)
		}
	}
	// Every advertised name must parse.
	for _, n := range SchemeNames() {
		if _, err := ParseScheme(n); err != nil {
			t.Errorf("advertised name %q does not parse", n)
		}
	}
}

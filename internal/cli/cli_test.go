package cli

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/codeword"
)

func TestParseScheme(t *testing.T) {
	cases := []struct {
		in   string
		want codeword.Scheme
		ok   bool
	}{
		{"baseline", codeword.Baseline, true},
		{"BASELINE", codeword.Baseline, true},
		{"2byte", codeword.Baseline, true},
		{"onebyte", codeword.OneByte, true},
		{"1byte", codeword.OneByte, true},
		{"nibble", codeword.Nibble, true},
		{"Nibble", codeword.Nibble, true},
		{"liao", codeword.Liao, true},
		{"huffman", 0, false},
		{"ccrp", 0, false}, // registered, but not a dictionary scheme
		{"lzw", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseScheme(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseScheme(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseScheme(%q) accepted", c.in)
		}
	}
	// Every advertised name must parse.
	for _, n := range SchemeNames() {
		if _, err := ParseScheme(n); err != nil {
			t.Errorf("advertised name %q does not parse", n)
		}
	}
}

// TestCodecNamesRoundTrip pins the registry's name round-trips: every
// registered codec parses back to itself by canonical name and by every
// alias, and every dictionary scheme's String() is its registry name.
func TestCodecNamesRoundTrip(t *testing.T) {
	if len(codec.Codecs()) < 6 {
		t.Fatalf("expected at least 6 registered codecs, have %v", CodecNames())
	}
	for _, c := range codec.Codecs() {
		got, err := ParseCodec(c.Name())
		if err != nil || got.Method() != c.Method() {
			t.Errorf("ParseCodec(%q) = %v, %v; want method %d", c.Name(), got, err, c.Method())
		}
		for _, a := range codec.Aliases(c.Name()) {
			got, err := ParseCodec(a)
			if err != nil || got.Method() != c.Method() {
				t.Errorf("ParseCodec(alias %q) = %v, %v; want method %d", a, got, err, c.Method())
			}
		}
		sc, ok := c.(codec.Schemed)
		if !ok {
			continue
		}
		if sc.Scheme().String() != c.Name() {
			t.Errorf("scheme %d String() = %q, registered as %q", sc.Scheme(), sc.Scheme().String(), c.Name())
		}
		s, err := ParseScheme(c.Name())
		if err != nil || s != sc.Scheme() {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v", c.Name(), s, err, sc.Scheme())
		}
	}
}

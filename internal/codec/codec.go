// Package codec defines the pluggable compression-codec registry: every
// encoding the pipeline supports — the paper's dictionary codeword schemes,
// the CCRP Huffman comparator, the LZW comparator — registers itself here
// under a stable one-byte method id and a canonical name, and every layer
// above (objfile framing, CLI parsing, the bench tables, the command-line
// tools) enumerates or dispatches through the registry instead of
// hard-coding scheme lists. Adding a codec means implementing Codec in its
// home package and calling Register from an init function; no other file
// changes.
//
// The shape follows ClickHouse's ICompressionCodec/CompressionFactory: a
// method byte stored in the serialized frame makes every image
// self-describing, so any tool can open any .ppz without being told its
// encoding.
package codec

import (
	"io"

	"repro/internal/codeword"
	"repro/internal/dictionary"
	"repro/internal/machine"
	"repro/internal/program"
	"repro/internal/sizeaudit"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Method is the stable one-byte codec id recorded in serialized image
// frames. Values are wire format: never renumber them. The dictionary
// schemes must keep their codeword.Scheme numeric values so version-1
// image files (whose header stored the raw scheme byte) keep their
// meaning.
type Method uint8

// Registered method bytes.
const (
	Baseline Method = 0 // 2-byte codewords (§4.1)
	OneByte  Method = 1 // 1-byte codewords (§4.1.2)
	Nibble   Method = 2 // 4/8/12/16-bit codewords (§4.1.3)
	Liao     Method = 3 // whole-instruction call dictionary (§2.4)
	CCRP     Method = 4 // per-cache-line Huffman with LAT [Wolfe92]
	LZW      Method = 5 // Unix compress(1) comparator (Fig. 11)
)

// Options carries the encoding parameters and observability sinks a codec
// may honor. Every field is optional; codecs ignore what does not apply to
// them (the dictionary-shape knobs mean nothing to CCRP or LZW).
type Options struct {
	// MaxEntries bounds a dictionary codec's entry budget; 0 means the
	// scheme maximum.
	MaxEntries int

	// MaxEntryLen bounds instructions per dictionary entry; 0 means the
	// paper's baseline of 4.
	MaxEntryLen int

	// Strategy selects the dictionary-building policy (ablation hook).
	Strategy dictionary.Strategy

	// DynProfile, when non-nil, supplies per-original-word execution
	// counts for profile-guided codeword ranking.
	DynProfile []int64

	// Stats, when non-nil, receives the codec's pipeline counters and
	// timers. Nil-safe pass-through; never affects the produced image.
	Stats *stats.Recorder

	// Trace, when non-nil, is the parent span for the codec's pipeline
	// phases. Nil-safe pass-through; never affects the produced image.
	Trace *trace.Span

	// Audit, when non-nil, receives one byte-provenance record per emitted
	// item. Nil-safe pass-through; never affects the produced image.
	// Callers Finish it with the image's CompressedBytes afterwards.
	Audit *sizeaudit.Emitter
}

// Image is a compressed program produced by a Codec. Concrete types carry
// the codec-specific payload (dictionary entries and marks, Huffman lines
// and LAT, an LZW blob); the interface is what the generic layers need for
// framing and size accounting.
type Image interface {
	// Method identifies the codec that produced (and can reopen) the image.
	Method() Method

	// CompressedBytes is the total compressed size including every
	// overhead the paper charges (dictionary, tables, padding).
	CompressedBytes() int

	// Ratio is Eq. 1: compressed size / original size.
	Ratio() float64
}

// Executable is implemented by images that can run on the simulator.
// Opening a .ppz and asserting this interface is how ccrun executes any
// encoding without knowing it in advance.
type Executable interface {
	Image

	// NewMachine builds a CPU executing the image with the codec's default
	// fetch-path configuration.
	NewMachine() (*machine.CPU, error)
}

// Auditable is implemented by images that can reconstruct their
// byte-provenance audit from serialized sideband metadata alone (no
// recompression) — the dictionary images' marks-based path.
type Auditable interface {
	Image
	SizeAudit() (*sizeaudit.Audit, error)
}

// Schemed is implemented by dictionary codecs (and their images) to expose
// the underlying codeword scheme. Layers that are specifically about the
// paper's dictionary method — scheme sweeps, the shared-ROM fleet tools,
// the memoizing bench corpus — use this to keep their scheme-keyed paths
// without enumerating codecs by name.
type Schemed interface {
	Scheme() codeword.Scheme
}

// Codec is one registered encoding. Implementations are stateless values;
// all per-run state lives in the returned images.
type Codec interface {
	// Method is the stable frame byte.
	Method() Method

	// Name is the canonical lower-case name used by CLIs, tables and audit
	// rows. ByName also accepts registered aliases.
	Name() string

	// Compress encodes a program. The program is not mutated.
	Compress(p *program.Program, opt Options) (Image, error)

	// Open deserializes an image payload previously written by WriteImage.
	// The stream excludes the container magic and frame header — the
	// objfile layer dispatches here after reading the method byte.
	Open(r io.Reader) (Image, error)

	// WriteImage serializes an image payload. The image must have been
	// produced by this codec.
	WriteImage(w io.Writer, img Image) error

	// Verify checks an image against the original program (structural
	// round-trip; the strongest check the codec supports).
	Verify(p *program.Program, img Image) error

	// Audit compresses with a live provenance emitter attached and returns
	// the finished, conservation-checked audit.
	Audit(p *program.Program, opt Options) (*sizeaudit.Audit, error)

	// MaxCompressedBytes is a conservative upper bound on the compressed
	// size of a program of originalBytes — the buffer-sizing hint for
	// streaming consumers (nothing in this repository needs it to be
	// tight).
	MaxCompressedBytes(originalBytes int) int
}

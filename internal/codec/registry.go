package codec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The registry. Codecs register from init functions in their home
// packages; lookups after package initialization are read-only, but the
// lock keeps Register safe for tests that build throwaway registrations.
var (
	regMu    sync.RWMutex
	byMethod = map[Method]Codec{}
	byName   = map[string]Codec{}
	aliasOf  = map[string]string{} // alias -> canonical name
)

// Register adds a codec under its method byte and canonical name, plus any
// extra accepted aliases. It panics on conflicts: double registration is a
// programming error best caught at init time.
func Register(c Codec, aliases ...string) {
	regMu.Lock()
	defer regMu.Unlock()
	name := strings.ToLower(c.Name())
	if name == "" {
		panic("codec: Register with empty name")
	}
	if prev, ok := byMethod[c.Method()]; ok {
		panic(fmt.Sprintf("codec: method %d registered twice (%s, %s)", c.Method(), prev.Name(), name))
	}
	if _, ok := byName[name]; ok {
		panic(fmt.Sprintf("codec: name %q registered twice", name))
	}
	byMethod[c.Method()] = c
	byName[name] = c
	for _, a := range aliases {
		a = strings.ToLower(a)
		if _, ok := byName[a]; ok {
			panic(fmt.Sprintf("codec: alias %q already registered", a))
		}
		byName[a] = c
		aliasOf[a] = name
	}
}

// ByMethod resolves a frame method byte.
func ByMethod(m Method) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byMethod[m]
	if !ok {
		return nil, fmt.Errorf("codec: unknown method byte %d", m)
	}
	return c, nil
}

// ByName resolves a canonical name or alias, case-insensitively.
func ByName(name string) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := byName[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("codec: unknown codec %q (want one of %s)",
			name, strings.Join(namesLocked(), ", "))
	}
	return c, nil
}

// Codecs lists every registered codec, ordered by method byte.
func Codecs() []Codec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Codec, 0, len(byMethod))
	for _, c := range byMethod {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Method() < out[j].Method() })
	return out
}

// Names lists the canonical codec names, ordered by method byte.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	type mn struct {
		m Method
		n string
	}
	tmp := make([]mn, 0, len(byMethod))
	for m, c := range byMethod {
		tmp = append(tmp, mn{m, strings.ToLower(c.Name())})
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i].m < tmp[j].m })
	out := make([]string, len(tmp))
	for i, t := range tmp {
		out[i] = t.n
	}
	return out
}

// Aliases lists the extra accepted names for a canonical codec name,
// sorted; empty when the codec has none.
func Aliases(canonical string) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []string
	for a, n := range aliasOf {
		if n == strings.ToLower(canonical) {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Package codecs links every built-in codec into the registry. Import it
// for side effects (the database/sql driver pattern):
//
//	import _ "repro/internal/codecs"
//
// The codec implementations register themselves from init functions in
// their home packages; this hub only exists so generic layers (objfile,
// cli) can guarantee a fully populated registry without importing each
// encoding package by name.
package codecs

import (
	_ "repro/internal/core"    // dictionary schemes: baseline, onebyte, nibble, liao
	_ "repro/internal/huffman" // ccrp
	_ "repro/internal/lzw"     // lzw
)

package codeword

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ppc"
)

func TestSchemeParameters(t *testing.T) {
	cases := []struct {
		s        Scheme
		unit     int
		maxE     int
		rawUnits int
	}{
		{Baseline, 16, 8192, 2},
		{OneByte, 8, 32, 4},
		{Nibble, 4, 8760, 9},
		{Liao, 32, 65536, 1},
	}
	for _, c := range cases {
		if c.s.UnitBits() != c.unit {
			t.Errorf("%v unit %d", c.s, c.s.UnitBits())
		}
		if c.s.MaxEntries() != c.maxE {
			t.Errorf("%v max entries %d", c.s, c.s.MaxEntries())
		}
		if c.s.RawInsnUnits() != c.rawUnits {
			t.Errorf("%v raw units %d", c.s, c.s.RawInsnUnits())
		}
	}
}

func TestNibbleCodewordBits(t *testing.T) {
	// Fig. 10: 8 four-bit, 48 eight-bit, 512 twelve-bit, 8192 sixteen-bit.
	counts := map[int]int{}
	for rank := 0; rank < Nibble.MaxEntries(); rank++ {
		counts[Nibble.CodewordBits(rank)]++
	}
	want := map[int]int{4: 8, 8: 48, 12: 512, 16: 8192}
	for bits, n := range want {
		if counts[bits] != n {
			t.Errorf("%d-bit codewords: %d, want %d", bits, counts[bits], n)
		}
	}
	// Monotone in rank.
	prev := 0
	for rank := 0; rank < Nibble.MaxEntries(); rank++ {
		b := Nibble.CodewordBits(rank)
		if b < prev {
			t.Fatalf("CodewordBits not monotone at rank %d", rank)
		}
		prev = b
	}
}

func TestStreamRoundTripAllSchemes(t *testing.T) {
	words := []uint32{
		ppc.Lbz(9, 0, 28), ppc.Clrlwi(11, 9, 24), ppc.Addi(0, 11, 1),
		ppc.Blr(), ppc.Sc(), ppc.Stw(18, 0, 28),
	}
	for _, s := range []Scheme{Baseline, OneByte, Nibble, Liao} {
		t.Run(s.String(), func(t *testing.T) {
			w := NewWriter(s)
			type rec struct {
				isCw bool
				rank int
				word uint32
				unit int
			}
			var recs []rec
			ranks := []int{0, 1, s.MaxEntries() - 1, s.MaxEntries() / 2}
			for i := 0; i < 40; i++ {
				u := w.Units()
				if i%3 == 0 {
					rank := ranks[i/3%len(ranks)]
					if err := w.Codeword(rank); err != nil {
						t.Fatal(err)
					}
					recs = append(recs, rec{isCw: true, rank: rank, unit: u})
				} else {
					word := words[i%len(words)]
					if err := w.Raw(word); err != nil {
						t.Fatal(err)
					}
					recs = append(recs, rec{word: word, unit: u})
				}
			}
			r := NewReader(s, w.Bytes(), w.Units())
			for _, rc := range recs {
				it, err := r.At(rc.unit)
				if err != nil {
					t.Fatalf("At(%d): %v", rc.unit, err)
				}
				if it.IsCodeword != rc.isCw {
					t.Fatalf("At(%d): kind mismatch", rc.unit)
				}
				if rc.isCw && it.Rank != rc.rank {
					t.Fatalf("At(%d): rank %d want %d", rc.unit, it.Rank, rc.rank)
				}
				if !rc.isCw && it.Word != rc.word {
					t.Fatalf("At(%d): word %08x want %08x", rc.unit, it.Word, rc.word)
				}
				if got := s.CodewordUnits(rc.rank); rc.isCw && it.Units != got {
					t.Fatalf("At(%d): units %d want %d", rc.unit, it.Units, got)
				}
				if !rc.isCw && it.Units != s.RawInsnUnits() {
					t.Fatalf("At(%d): raw units %d", rc.unit, it.Units)
				}
			}
		})
	}
}

// TestStreamSequentialQuick: random item sequences decode back exactly by
// walking the stream unit-by-unit.
func TestStreamSequentialQuick(t *testing.T) {
	words := []uint32{
		ppc.Addi(3, 3, 1), ppc.Lwz(9, 4, 28), ppc.Mr(31, 3), ppc.Blr(),
	}
	f := func(seed int64, schemeRaw uint8) bool {
		s := Scheme(schemeRaw % 4)
		rng := rand.New(rand.NewSource(seed))
		w := NewWriter(s)
		var wantKind []bool
		var wantRank []int
		var wantWord []uint32
		for i := 0; i < 60; i++ {
			if rng.Intn(2) == 0 {
				rank := rng.Intn(s.MaxEntries())
				if w.Codeword(rank) != nil {
					return false
				}
				wantKind = append(wantKind, true)
				wantRank = append(wantRank, rank)
				wantWord = append(wantWord, 0)
			} else {
				word := words[rng.Intn(len(words))]
				if w.Raw(word) != nil {
					return false
				}
				wantKind = append(wantKind, false)
				wantRank = append(wantRank, 0)
				wantWord = append(wantWord, word)
			}
		}
		r := NewReader(s, w.Bytes(), w.Units())
		u := 0
		for i := range wantKind {
			it, err := r.At(u)
			if err != nil {
				return false
			}
			if it.IsCodeword != wantKind[i] {
				return false
			}
			if it.IsCodeword && it.Rank != wantRank[i] {
				return false
			}
			if !it.IsCodeword && it.Word != wantWord[i] {
				return false
			}
			u += it.Units
		}
		return u == w.Units()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestEveryRankRoundTrips exhaustively encodes and decodes every codeword
// rank of every scheme — the nibble class boundaries (8/56/568/8760) are
// where off-by-ones would hide.
func TestEveryRankRoundTrips(t *testing.T) {
	for _, s := range []Scheme{Baseline, OneByte, Nibble, Liao} {
		w := NewWriter(s)
		offsets := make([]int, s.MaxEntries())
		for rank := 0; rank < s.MaxEntries(); rank++ {
			offsets[rank] = w.Units()
			if err := w.Codeword(rank); err != nil {
				t.Fatalf("%v rank %d: %v", s, rank, err)
			}
		}
		r := NewReader(s, w.Bytes(), w.Units())
		for rank := 0; rank < s.MaxEntries(); rank++ {
			it, err := r.At(offsets[rank])
			if err != nil {
				t.Fatalf("%v rank %d decode: %v", s, rank, err)
			}
			if !it.IsCodeword || it.Rank != rank {
				t.Fatalf("%v rank %d decoded as %+v", s, rank, it)
			}
			if it.Units != s.CodewordUnits(rank) {
				t.Fatalf("%v rank %d units %d, want %d", s, rank, it.Units, s.CodewordUnits(rank))
			}
		}
	}
}

func TestWriterRejectsBadInput(t *testing.T) {
	w := NewWriter(Baseline)
	if err := w.Codeword(-1); err == nil {
		t.Error("negative rank accepted")
	}
	if err := w.Codeword(Baseline.MaxEntries()); err == nil {
		t.Error("overflow rank accepted")
	}
	// A word starting with an escape byte cannot be emitted raw in
	// byte-granular schemes.
	bad := uint32(ppc.EscapeBytes()[0]) << 24
	if err := w.Raw(bad); err == nil {
		t.Error("escape-leading raw word accepted")
	}
	// The nibble scheme does not care: its escape is a nibble.
	nw := NewWriter(Nibble)
	if err := nw.Raw(bad); err != nil {
		t.Errorf("nibble Raw: %v", err)
	}
}

func TestReaderBoundsErrors(t *testing.T) {
	w := NewWriter(Nibble)
	if err := w.Codeword(0); err != nil {
		t.Fatal(err)
	}
	r := NewReader(Nibble, w.Bytes(), w.Units())
	if _, err := r.At(5); err == nil {
		t.Error("out-of-range nibble read accepted")
	}
	// Truncated raw instruction.
	w2 := NewWriter(Nibble)
	if err := w2.Raw(ppc.Nop()); err != nil {
		t.Fatal(err)
	}
	r2 := NewReader(Nibble, w2.Bytes(), 4) // lie about the length
	if _, err := r2.At(0); err == nil {
		t.Error("truncated stream decode accepted")
	}
}

func TestSizeBytes(t *testing.T) {
	w := NewWriter(Nibble)
	if err := w.Codeword(3); err != nil { // 1 nibble
		t.Fatal(err)
	}
	if w.SizeBytes() != 1 {
		t.Errorf("1 nibble -> %d bytes", w.SizeBytes())
	}
	if err := w.Raw(ppc.Nop()); err != nil { // +9 nibbles = 10 total
		t.Fatal(err)
	}
	if w.SizeBytes() != 5 {
		t.Errorf("10 nibbles -> %d bytes", w.SizeBytes())
	}
	bw := NewWriter(Baseline)
	if err := bw.Codeword(300); err != nil {
		t.Fatal(err)
	}
	if err := bw.Raw(ppc.Nop()); err != nil {
		t.Fatal(err)
	}
	if bw.SizeBytes() != 6 || bw.Units() != 3 {
		t.Errorf("baseline: %d bytes %d units", bw.SizeBytes(), bw.Units())
	}
}

func TestDictBytes(t *testing.T) {
	if got := DictBytes(nil); got != DictHeaderBytes {
		t.Errorf("empty dictionary %d bytes", got)
	}
	// 2 entries of 1 and 4 instructions: 4 + (1+4) + (1+16) = 26.
	if got := DictBytes([]int{1, 4}); got != 26 {
		t.Errorf("DictBytes = %d, want 26", got)
	}
}

func TestEscapeBytesDoNotCollideWithText(t *testing.T) {
	// Every escape byte must have a reserved primary opcode; every valid
	// instruction must not start with one.
	for _, b := range ppc.EscapeBytes() {
		if !ppc.IsReservedOpcode(b >> 2) {
			t.Errorf("escape byte %02x has legal opcode", b)
		}
	}
	for _, w := range []uint32{ppc.Addi(1, 2, 3), ppc.Blr(), ppc.Sc(), ppc.Rlwinm(1, 2, 3, 4, 5)} {
		if ppc.IsEscapeByte(byte(w >> 24)) {
			t.Errorf("instruction %08x starts with escape byte", w)
		}
	}
}

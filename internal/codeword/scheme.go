// Package codeword defines the codeword encodings of the paper and the
// packed unit streams that carry them:
//
//   - Baseline (§4.1): 2-byte codewords — an escape byte built from one of
//     PowerPC's 8 illegal primary opcodes plus an index byte, giving up to
//     32×256 = 8192 codewords. Uncompressed instructions appear verbatim.
//   - OneByte (§4.1.2): 1-byte codewords drawn from the 32 escape byte
//     values, for small dictionaries (8–32 entries, 128–512 bytes).
//   - Nibble (§4.1.3, Fig. 10): variable-length codewords of 4, 8, 12 or
//     16 bits aligned to 4-bit units; one nibble is the escape introducing
//     a 36-bit uncompressed instruction. Shortest codewords go to the most
//     frequent dictionary entries.
//   - Liao (§2.4): whole-instruction (32-bit) call-dictionary codewords,
//     the comparison baseline. Single instructions can never profit, which
//     reproduces the paper's criticism.
//
// All streams decode unambiguously from any item boundary because a valid
// instruction's first byte never carries an illegal primary opcode.
package codeword

import "fmt"

// Scheme selects a codeword encoding.
type Scheme uint8

// The four schemes.
const (
	Baseline Scheme = iota
	OneByte
	Nibble
	Liao
)

// String is the scheme's canonical name — the same string the codec
// registry registers it under, so names round-trip: cli.ParseScheme(
// s.String()) == s for every scheme.
func (s Scheme) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case OneByte:
		return "onebyte"
	case Nibble:
		return "nibble"
	case Liao:
		return "liao"
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// Nibble-scheme codeword classes (Fig. 10). The first nibble selects the
// class; class capacities are 8, 48, 512 and 8192 entries.
const (
	nib4Lim  = 8                 // first nibbles 0..7: 4-bit codewords
	nib8Lim  = nib4Lim + 3*16    // first nibbles 8..10: 8-bit codewords
	nib12Lim = nib8Lim + 2*256   // first nibbles 11..12: 12-bit codewords
	nib16Lim = nib12Lim + 2*4096 // first nibbles 13..14: 16-bit codewords
	// First nibble 15 escapes to an uncompressed 36-bit instruction.
	nibEscape = 0xF
)

// UnitBits is the stream alignment unit — the size of the smallest
// codeword. Branch offsets of compressed programs are reinterpreted in
// this unit (§3.2.2).
func (s Scheme) UnitBits() int {
	switch s {
	case Baseline:
		return 16
	case OneByte:
		return 8
	case Nibble:
		return 4
	case Liao:
		return 32
	}
	panic("codeword: unknown scheme")
}

// MaxEntries is the codeword-space capacity.
func (s Scheme) MaxEntries() int {
	switch s {
	case Baseline:
		return 32 * 256
	case OneByte:
		return 32
	case Nibble:
		return nib16Lim
	case Liao:
		return 1 << 16
	}
	panic("codeword: unknown scheme")
}

// CodewordBits returns the encoded size of the codeword for the entry with
// the given rank. It is non-decreasing in rank, as the greedy builder
// requires.
func (s Scheme) CodewordBits(rank int) int {
	switch s {
	case Baseline:
		return 16
	case OneByte:
		return 8
	case Liao:
		return 32
	case Nibble:
		switch {
		case rank < nib4Lim:
			return 4
		case rank < nib8Lim:
			return 8
		case rank < nib12Lim:
			return 12
		default:
			return 16
		}
	}
	panic("codeword: unknown scheme")
}

// CodewordUnits is CodewordBits expressed in stream units.
func (s Scheme) CodewordUnits(rank int) int { return s.CodewordBits(rank) / s.UnitBits() }

// RawInsnUnits is the stream size of an uncompressed instruction: 32 bits,
// except for the nibble scheme where an escape nibble precedes it.
func (s Scheme) RawInsnUnits() int {
	if s == Nibble {
		return 9
	}
	return 32 / s.UnitBits()
}

// EscapeBits is the portion of one codeword spent marking "this is a
// codeword" rather than selecting an entry: the illegal-opcode escape byte
// (baseline and one-byte), the escape-class nibble, or Liao's 6-bit
// primary opcode.
func (s Scheme) EscapeBits() int {
	switch s {
	case Baseline, OneByte:
		return 8
	case Nibble:
		return 4
	case Liao:
		return 6
	}
	return 0
}

// EntryOverheadBits is the per-entry dictionary serialization overhead
// charged to the compressed size: a one-byte instruction count.
const EntryOverheadBits = 8

// DictHeaderBytes is the fixed dictionary serialization header.
const DictHeaderBytes = 4

// DictBytes is the serialized size of a dictionary with the given entry
// lengths (in instructions).
func DictBytes(entryLens []int) int {
	n := DictHeaderBytes
	for _, k := range entryLens {
		n += 1 + 4*k
	}
	return n
}

package codeword

import (
	"fmt"

	"repro/internal/ppc"
)

// escapeBytes caches ppc.EscapeBytes(); escapeIndex inverts it.
var (
	escapeBytes = ppc.EscapeBytes()
	escapeIndex = func() map[byte]int {
		m := make(map[byte]int, 32)
		for i, b := range escapeBytes {
			m[b] = i
		}
		return m
	}()
)

// Writer packs codewords and raw instructions into a unit stream.
type Writer struct {
	scheme  Scheme
	nibbles []byte // one nibble per element (low 4 bits used); packed on Bytes()
	bytes   []byte // used by byte-granular schemes
	units   int
}

// NewWriter creates a stream writer for the scheme.
func NewWriter(s Scheme) *Writer { return &Writer{scheme: s} }

// Units returns the stream length so far in scheme units.
func (w *Writer) Units() int { return w.units }

// Codeword appends the codeword for an entry rank.
func (w *Writer) Codeword(rank int) error {
	s := w.scheme
	if rank < 0 || rank >= s.MaxEntries() {
		return fmt.Errorf("codeword: rank %d out of range for %v", rank, s)
	}
	switch s {
	case Baseline:
		w.bytes = append(w.bytes, escapeBytes[rank>>8], byte(rank&0xFF))
		w.units++
	case OneByte:
		w.bytes = append(w.bytes, escapeBytes[rank])
		w.units++
	case Liao:
		// A call-dictionary instruction: illegal primary opcode 0 with the
		// entry index in the low bits.
		word := uint32(rank)
		w.bytes = append(w.bytes, byte(word>>24), byte(word>>16), byte(word>>8), byte(word))
		w.units++
	case Nibble:
		switch {
		case rank < nib4Lim:
			w.nib(byte(rank))
		case rank < nib8Lim:
			v := rank - nib4Lim
			w.nib(byte(8 + v>>4))
			w.nib(byte(v & 0xF))
		case rank < nib12Lim:
			v := rank - nib8Lim
			w.nib(byte(11 + v>>8))
			w.nib(byte(v >> 4 & 0xF))
			w.nib(byte(v & 0xF))
		default:
			v := rank - nib12Lim
			w.nib(byte(13 + v>>12))
			w.nib(byte(v >> 8 & 0xF))
			w.nib(byte(v >> 4 & 0xF))
			w.nib(byte(v & 0xF))
		}
	}
	return nil
}

// Raw appends an uncompressed instruction.
func (w *Writer) Raw(word uint32) error {
	s := w.scheme
	switch s {
	case Baseline, OneByte, Liao:
		if ppc.IsEscapeByte(byte(word >> 24)) {
			return fmt.Errorf("codeword: raw word %08x starts with an escape byte", word)
		}
		w.bytes = append(w.bytes, byte(word>>24), byte(word>>16), byte(word>>8), byte(word))
		w.units += s.RawInsnUnits()
	case Nibble:
		w.nib(nibEscape)
		for shift := 28; shift >= 0; shift -= 4 {
			w.nib(byte(word >> uint(shift) & 0xF))
		}
	}
	return nil
}

func (w *Writer) nib(v byte) {
	w.nibbles = append(w.nibbles, v&0xF)
	w.units++
}

// Bytes returns the packed stream, padded to a whole byte with zero
// nibbles for the nibble scheme.
func (w *Writer) Bytes() []byte {
	if w.scheme != Nibble {
		return w.bytes
	}
	out := make([]byte, (len(w.nibbles)+1)/2)
	for i, v := range w.nibbles {
		if i%2 == 0 {
			out[i/2] |= v << 4
		} else {
			out[i/2] |= v
		}
	}
	return out
}

// SizeBytes is the stream size in whole bytes.
func (w *Writer) SizeBytes() int {
	if w.scheme == Nibble {
		return (w.units + 1) / 2
	}
	return w.units * w.scheme.UnitBits() / 8
}

// Item is one decoded stream element.
type Item struct {
	IsCodeword bool
	Rank       int    // dictionary entry rank (codewords)
	Word       uint32 // raw instruction (non-codewords)
	Units      int    // stream units consumed
}

// Reader decodes a packed unit stream. Decoding is positional: any item
// boundary is a valid decode point, which is what lets branches target
// codewords directly.
type Reader struct {
	scheme Scheme
	stream []byte
	units  int
}

// NewReader wraps a packed stream of the given length in units.
func NewReader(s Scheme, stream []byte, units int) *Reader {
	return &Reader{scheme: s, stream: stream, units: units}
}

// Units returns the stream length in units.
func (r *Reader) Units() int { return r.units }

func (r *Reader) nibAt(u int) (byte, error) {
	if u < 0 || u >= r.units || u/2 >= len(r.stream) {
		return 0, fmt.Errorf("codeword: nibble %d outside stream of %d units (%d bytes)",
			u, r.units, len(r.stream))
	}
	b := r.stream[u/2]
	if u%2 == 0 {
		return b >> 4, nil
	}
	return b & 0xF, nil
}

func (r *Reader) byteAt(u int) (byte, error) {
	if u < 0 || u >= len(r.stream) {
		return 0, fmt.Errorf("codeword: byte %d outside stream of %d bytes", u, len(r.stream))
	}
	return r.stream[u], nil
}

// At decodes the item starting at the given unit offset.
func (r *Reader) At(unit int) (Item, error) {
	switch r.scheme {
	case Baseline:
		b0, err := r.byteAt(unit * 2)
		if err != nil {
			return Item{}, err
		}
		if idx, ok := escapeIndex[b0]; ok {
			b1, err := r.byteAt(unit*2 + 1)
			if err != nil {
				return Item{}, err
			}
			return Item{IsCodeword: true, Rank: idx<<8 | int(b1), Units: 1}, nil
		}
		w, err := r.word(unit * 2)
		if err != nil {
			return Item{}, err
		}
		return Item{Word: w, Units: 2}, nil
	case OneByte:
		b0, err := r.byteAt(unit)
		if err != nil {
			return Item{}, err
		}
		if idx, ok := escapeIndex[b0]; ok {
			return Item{IsCodeword: true, Rank: idx, Units: 1}, nil
		}
		w, err := r.word(unit)
		if err != nil {
			return Item{}, err
		}
		return Item{Word: w, Units: 4}, nil
	case Liao:
		w, err := r.word(unit * 4)
		if err != nil {
			return Item{}, err
		}
		if ppc.IsEscapeByte(byte(w >> 24)) {
			return Item{IsCodeword: true, Rank: int(w & 0xFFFF), Units: 1}, nil
		}
		return Item{Word: w, Units: 1}, nil
	case Nibble:
		n0, err := r.nibAt(unit)
		if err != nil {
			return Item{}, err
		}
		read := func(count int) (int, error) {
			v := 0
			for i := 1; i <= count; i++ {
				ni, err := r.nibAt(unit + i)
				if err != nil {
					return 0, err
				}
				v = v<<4 | int(ni)
			}
			return v, nil
		}
		switch {
		case n0 < 8:
			return Item{IsCodeword: true, Rank: int(n0), Units: 1}, nil
		case n0 <= 10:
			v, err := read(1)
			if err != nil {
				return Item{}, err
			}
			return Item{IsCodeword: true, Rank: nib4Lim + int(n0-8)<<4 + v, Units: 2}, nil
		case n0 <= 12:
			v, err := read(2)
			if err != nil {
				return Item{}, err
			}
			return Item{IsCodeword: true, Rank: nib8Lim + int(n0-11)<<8 + v, Units: 3}, nil
		case n0 <= 14:
			v, err := read(3)
			if err != nil {
				return Item{}, err
			}
			return Item{IsCodeword: true, Rank: nib12Lim + int(n0-13)<<12 + v, Units: 4}, nil
		default:
			var w uint32
			for i := 1; i <= 8; i++ {
				ni, err := r.nibAt(unit + i)
				if err != nil {
					return Item{}, err
				}
				w = w<<4 | uint32(ni)
			}
			return Item{Word: w, Units: 9}, nil
		}
	}
	return Item{}, fmt.Errorf("codeword: unknown scheme %v", r.scheme)
}

// word reads a big-endian instruction word at a byte offset.
func (r *Reader) word(off int) (uint32, error) {
	if off < 0 || off+4 > len(r.stream) {
		return 0, fmt.Errorf("codeword: word at byte %d outside stream", off)
	}
	return uint32(r.stream[off])<<24 | uint32(r.stream[off+1])<<16 |
		uint32(r.stream[off+2])<<8 | uint32(r.stream[off+3]), nil
}

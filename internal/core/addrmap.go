package core

import (
	"fmt"
	"sort"
)

// AddrMap is the compressed↔native address map of one image: a bidirectional
// mapping between absolute unit addresses in compressed space and absolute
// byte addresses in the original program's text, derived from the marks the
// branch-patching machinery records for every stream item. Resolution is
// item granularity — an address inside a codeword's expansion or a
// far-branch stub maps to the item's start — which is exactly what
// symbolized attribution needs: any unit address inside a function's items
// lands back inside that function's native address range.
type AddrMap struct {
	base      uint32 // unit-space base of the image
	textBase  uint32 // byte-space base of the original text
	units     []int  // ascending unit offsets, one per stream item
	origs     []int  // parallel: original word index of each item
	unitsEnd  int    // total units in the stream
	origWords int    // original text length in words
}

// AddrMap builds the map from the image's marks. It fails on images
// stripped of their sideband metadata (no marks), which cannot be mapped.
func (img *Image) AddrMap() (*AddrMap, error) {
	if len(img.Marks) == 0 {
		return nil, fmt.Errorf("core: image %s carries no marks; cannot build address map", img.Name)
	}
	m := &AddrMap{
		base:      img.Base,
		textBase:  img.TextBase,
		units:     make([]int, len(img.Marks)),
		origs:     make([]int, len(img.Marks)),
		unitsEnd:  img.Units,
		origWords: img.OriginalBytes / 4,
	}
	for i, mk := range img.Marks {
		m.units[i] = mk.Unit
		m.origs[i] = mk.Orig
	}
	return m, nil
}

// NativeAddr maps an absolute unit address in compressed space to the
// absolute byte address of the original instruction the containing stream
// item was emitted for. It reports false outside the compressed text.
func (m *AddrMap) NativeAddr(unitAddr uint32) (uint32, bool) {
	rel := int(unitAddr) - int(m.base)
	if rel < 0 || rel >= m.unitsEnd {
		return 0, false
	}
	// Floor item: the last mark with Unit <= rel.
	i := sort.SearchInts(m.units, rel+1) - 1
	if i < 0 {
		return 0, false
	}
	return m.textBase + 4*uint32(m.origs[i]), true
}

// UnitAddr maps an absolute byte address in original text space to the
// absolute unit address of the stream item covering it. Words absorbed
// into the middle of a codeword's sequence map to the codeword itself. It
// reports false outside the original text.
func (m *AddrMap) UnitAddr(nativeAddr uint32) (uint32, bool) {
	rel := int(nativeAddr) - int(m.textBase)
	if rel < 0 || rel/4 >= m.origWords {
		return 0, false
	}
	word := rel / 4
	// Items are emitted in original order, so origs is ascending; floor
	// item: the last mark with Orig <= word.
	i := sort.SearchInts(m.origs, word+1) - 1
	if i < 0 {
		return 0, false
	}
	return m.base + uint32(m.units[i]), true
}

package core

import (
	"testing"

	"repro/internal/codeword"
	"repro/internal/synth"
)

func compressedImage(t *testing.T, name string) *Image {
	t.Helper()
	p, err := synth.Generate(name)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	img, err := Compress(p, Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	return img
}

func TestAddrMapRoundTrip(t *testing.T) {
	img := compressedImage(t, "compress")
	m, err := img.AddrMap()
	if err != nil {
		t.Fatalf("AddrMap: %v", err)
	}

	words := img.OriginalBytes / 4
	for w := 0; w < words; w++ {
		native := img.TextBase + 4*uint32(w)
		unit, ok := m.UnitAddr(native)
		if !ok {
			t.Fatalf("UnitAddr(%#x) not mapped", native)
		}
		if unit < img.Base || unit >= img.Base+uint32(img.Units) {
			t.Fatalf("UnitAddr(%#x) = %#x outside compressed text", native, unit)
		}
		// Mapping back lands on the covering item's first original word —
		// at or before the word we started from (floor semantics), and
		// close enough to stay in the same few-instruction item.
		back, ok := m.NativeAddr(unit)
		if !ok {
			t.Fatalf("NativeAddr(%#x) not mapped", unit)
		}
		if back > native {
			t.Errorf("NativeAddr(UnitAddr(%#x)) = %#x overshoots", native, back)
		}
		if native-back > 64 {
			t.Errorf("NativeAddr(UnitAddr(%#x)) = %#x too far back", native, back)
		}
	}
}

func TestAddrMapUnitCoverage(t *testing.T) {
	img := compressedImage(t, "li")
	m, err := img.AddrMap()
	if err != nil {
		t.Fatalf("AddrMap: %v", err)
	}
	// Every unit address inside the stream maps to some original text
	// address; stub and codeword interiors floor to their item's origin.
	for u := 0; u < img.Units; u++ {
		native, ok := m.NativeAddr(img.Base + uint32(u))
		if !ok {
			t.Fatalf("NativeAddr(base+%d) not mapped", u)
		}
		if native < img.TextBase || native >= img.TextBase+uint32(img.OriginalBytes) {
			t.Fatalf("NativeAddr(base+%d) = %#x outside original text", u, native)
		}
	}
}

func TestAddrMapBounds(t *testing.T) {
	img := compressedImage(t, "compress")
	m, err := img.AddrMap()
	if err != nil {
		t.Fatalf("AddrMap: %v", err)
	}
	if _, ok := m.NativeAddr(img.Base - 1); ok {
		t.Error("NativeAddr below base should fail")
	}
	if _, ok := m.NativeAddr(img.Base + uint32(img.Units)); ok {
		t.Error("NativeAddr at end of stream should fail")
	}
	if _, ok := m.UnitAddr(img.TextBase - 4); ok {
		t.Error("UnitAddr below text should fail")
	}
	if _, ok := m.UnitAddr(img.TextBase + uint32(img.OriginalBytes)); ok {
		t.Error("UnitAddr at end of text should fail")
	}
}

func TestAddrMapRequiresMarks(t *testing.T) {
	img := compressedImage(t, "compress")
	img.Marks = nil
	if _, err := img.AddrMap(); err == nil {
		t.Error("AddrMap on a stripped image should fail")
	}
	if _, err := img.GuestSymTab(); err == nil {
		t.Error("GuestSymTab on a stripped image should fail")
	}
}

// TestAddrMapFloorEdges drives the floor searches over a hand-built image
// whose first mark sits past the origin, exercising the edge cases a real
// compression never produces: an address before the first mark, exact item
// boundaries, and the one-past-the-end addresses on both sides.
func TestAddrMapFloorEdges(t *testing.T) {
	img := &Image{
		Name:          "synthetic",
		Base:          0x100,
		TextBase:      0x1000,
		Units:         100,
		OriginalBytes: 40, // 10 words
		Marks: []Mark{
			{Unit: 10, Orig: 2, Kind: MarkRaw},
			{Unit: 20, Orig: 5, Kind: MarkCodeword},
			{Unit: 50, Orig: 9, Kind: MarkRaw},
		},
	}
	m, err := img.AddrMap()
	if err != nil {
		t.Fatalf("AddrMap: %v", err)
	}

	nativeCases := []struct {
		unit uint32
		want uint32
		ok   bool
	}{
		{img.Base + 9, 0, false},                 // inside stream but before the first mark
		{img.Base + 10, img.TextBase + 8, true},  // exact first-item boundary
		{img.Base + 19, img.TextBase + 8, true},  // last unit of the first item
		{img.Base + 20, img.TextBase + 20, true}, // exact interior boundary
		{img.Base + 50, img.TextBase + 36, true}, // exact last-item boundary
		{img.Base + 99, img.TextBase + 36, true}, // last unit of the stream
		{img.Base + 100, 0, false},               // one past the stream
		{img.Base - 1, 0, false},                 // below base
	}
	for _, c := range nativeCases {
		got, ok := m.NativeAddr(c.unit)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("NativeAddr(%#x) = %#x,%v; want %#x,%v", c.unit, got, ok, c.want, c.ok)
		}
	}

	unitCases := []struct {
		native uint32
		want   uint32
		ok     bool
	}{
		{img.TextBase, 0, false},                 // word 0: before the first mapped word
		{img.TextBase + 4, 0, false},             // word 1: still before
		{img.TextBase + 8, img.Base + 10, true},  // word 2: exact first item
		{img.TextBase + 16, img.Base + 10, true}, // word 4: floors to the first item
		{img.TextBase + 20, img.Base + 20, true}, // word 5: exact boundary
		{img.TextBase + 36, img.Base + 50, true}, // word 9: last item
		{img.TextBase + 40, 0, false},            // one past the text
	}
	for _, c := range unitCases {
		got, ok := m.UnitAddr(c.native)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("UnitAddr(%#x) = %#x,%v; want %#x,%v", c.native, got, ok, c.want, c.ok)
		}
	}
}

// TestMarksMonotone is the property the floor searches (and the size
// audit's extent math) rely on: across every benchmark and scheme, marks
// start at the stream origin with the first original word, advance
// strictly in both unit and original space, and stay inside the stream.
func TestMarksMonotone(t *testing.T) {
	schemes := []codeword.Scheme{codeword.Baseline, codeword.OneByte, codeword.Nibble, codeword.Liao}
	for _, name := range synth.BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := synth.Generate(name)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			for _, s := range schemes {
				img, err := Compress(p.Clone(), Options{Scheme: s, MaxEntryLen: 4})
				if err != nil {
					t.Fatalf("%v: Compress: %v", s, err)
				}
				if len(img.Marks) == 0 {
					t.Fatalf("%v: no marks", s)
				}
				if img.Marks[0].Unit != 0 || img.Marks[0].Orig != 0 {
					t.Fatalf("%v: first mark %+v not at origin", s, img.Marks[0])
				}
				for i := 1; i < len(img.Marks); i++ {
					prev, cur := img.Marks[i-1], img.Marks[i]
					if cur.Unit <= prev.Unit {
						t.Fatalf("%v: mark %d unit %d not after %d", s, i, cur.Unit, prev.Unit)
					}
					if cur.Orig <= prev.Orig {
						t.Fatalf("%v: mark %d orig %d not after %d", s, i, cur.Orig, prev.Orig)
					}
				}
				last := img.Marks[len(img.Marks)-1]
				if last.Unit >= img.Units {
					t.Fatalf("%v: last mark at unit %d outside stream of %d", s, last.Unit, img.Units)
				}
				if last.Orig >= img.OriginalBytes/4 {
					t.Fatalf("%v: last mark for word %d outside text of %d words", s, last.Orig, img.OriginalBytes/4)
				}
			}
		})
	}
}

func TestGuestSymTabRequiresSymbols(t *testing.T) {
	img := compressedImage(t, "compress")
	img.OrigSymbols = nil
	if _, err := img.GuestSymTab(); err == nil {
		t.Error("GuestSymTab without original symbols should fail")
	}
}

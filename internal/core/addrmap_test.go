package core

import (
	"testing"

	"repro/internal/codeword"
	"repro/internal/synth"
)

func compressedImage(t *testing.T, name string) *Image {
	t.Helper()
	p, err := synth.Generate(name)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	img, err := Compress(p, Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	return img
}

func TestAddrMapRoundTrip(t *testing.T) {
	img := compressedImage(t, "compress")
	m, err := img.AddrMap()
	if err != nil {
		t.Fatalf("AddrMap: %v", err)
	}

	words := img.OriginalBytes / 4
	for w := 0; w < words; w++ {
		native := img.TextBase + 4*uint32(w)
		unit, ok := m.UnitAddr(native)
		if !ok {
			t.Fatalf("UnitAddr(%#x) not mapped", native)
		}
		if unit < img.Base || unit >= img.Base+uint32(img.Units) {
			t.Fatalf("UnitAddr(%#x) = %#x outside compressed text", native, unit)
		}
		// Mapping back lands on the covering item's first original word —
		// at or before the word we started from (floor semantics), and
		// close enough to stay in the same few-instruction item.
		back, ok := m.NativeAddr(unit)
		if !ok {
			t.Fatalf("NativeAddr(%#x) not mapped", unit)
		}
		if back > native {
			t.Errorf("NativeAddr(UnitAddr(%#x)) = %#x overshoots", native, back)
		}
		if native-back > 64 {
			t.Errorf("NativeAddr(UnitAddr(%#x)) = %#x too far back", native, back)
		}
	}
}

func TestAddrMapUnitCoverage(t *testing.T) {
	img := compressedImage(t, "li")
	m, err := img.AddrMap()
	if err != nil {
		t.Fatalf("AddrMap: %v", err)
	}
	// Every unit address inside the stream maps to some original text
	// address; stub and codeword interiors floor to their item's origin.
	for u := 0; u < img.Units; u++ {
		native, ok := m.NativeAddr(img.Base + uint32(u))
		if !ok {
			t.Fatalf("NativeAddr(base+%d) not mapped", u)
		}
		if native < img.TextBase || native >= img.TextBase+uint32(img.OriginalBytes) {
			t.Fatalf("NativeAddr(base+%d) = %#x outside original text", u, native)
		}
	}
}

func TestAddrMapBounds(t *testing.T) {
	img := compressedImage(t, "compress")
	m, err := img.AddrMap()
	if err != nil {
		t.Fatalf("AddrMap: %v", err)
	}
	if _, ok := m.NativeAddr(img.Base - 1); ok {
		t.Error("NativeAddr below base should fail")
	}
	if _, ok := m.NativeAddr(img.Base + uint32(img.Units)); ok {
		t.Error("NativeAddr at end of stream should fail")
	}
	if _, ok := m.UnitAddr(img.TextBase - 4); ok {
		t.Error("UnitAddr below text should fail")
	}
	if _, ok := m.UnitAddr(img.TextBase + uint32(img.OriginalBytes)); ok {
		t.Error("UnitAddr at end of text should fail")
	}
}

func TestAddrMapRequiresMarks(t *testing.T) {
	img := compressedImage(t, "compress")
	img.Marks = nil
	if _, err := img.AddrMap(); err == nil {
		t.Error("AddrMap on a stripped image should fail")
	}
	if _, err := img.GuestSymTab(); err == nil {
		t.Error("GuestSymTab on a stripped image should fail")
	}
}

func TestGuestSymTabRequiresSymbols(t *testing.T) {
	img := compressedImage(t, "compress")
	img.OrigSymbols = nil
	if _, err := img.GuestSymTab(); err == nil {
		t.Error("GuestSymTab without original symbols should fail")
	}
}

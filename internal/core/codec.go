package core

import (
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/codeword"
	"repro/internal/dictionary"
	"repro/internal/machine"
	"repro/internal/program"
	"repro/internal/sizeaudit"
	"repro/internal/wire"
)

// The four dictionary schemes register themselves as codecs; their method
// bytes equal the raw codeword.Scheme values, which is what version-1
// image files stored, so old files keep their meaning under the new
// self-describing framing.
func init() {
	codec.Register(schemeCodec{codeword.Baseline}, "2byte")
	codec.Register(schemeCodec{codeword.OneByte}, "1byte")
	codec.Register(schemeCodec{codeword.Nibble})
	codec.Register(schemeCodec{codeword.Liao})
}

// Method identifies the dictionary codec that produced the image.
func (img *Image) Method() codec.Method { return codec.Method(img.Scheme) }

// NewMachine builds a CPU executing the image with the default (on-chip
// dictionary) fetch path — the codec.Executable hook behind ccrun's
// any-encoding dispatch.
func (img *Image) NewMachine() (*machine.CPU, error) { return NewMachine(img) }

// WriteImagePayload serializes a dictionary image body: everything the
// PPCZ container stores after its frame header, including the
// verification marks (sideband metadata). The layout is the version-1
// PPCZ body, unchanged, so both container versions share one coder.
func WriteImagePayload(dst io.Writer, img *Image) error {
	w := wire.NewWriter(dst)
	w.Str(img.Name)
	w.U8(uint8(img.Scheme))
	w.U32(uint32(img.Units))
	w.Blob(img.Stream)
	w.U32(img.Base)
	w.U32(img.EntryUnit)
	w.U32(uint32(len(img.Entries)))
	for _, e := range img.Entries {
		w.U8(uint8(len(e.Words)))
		for _, x := range e.Words {
			w.U32(x)
		}
		w.U32(uint32(e.Uses))
	}
	w.U32(img.DataBase)
	w.Blob(img.Data)
	w.U32(uint32(len(img.JumpTableSlots)))
	for _, s := range img.JumpTableSlots {
		w.U32(uint32(s))
	}
	w.U32(uint32(len(img.Symbols)))
	for _, s := range img.Symbols {
		w.Str(s.Name)
		w.U32(uint32(s.Word))
	}
	w.U32(uint32(len(img.Marks)))
	for _, m := range img.Marks {
		w.U32(uint32(m.Unit))
		w.U32(uint32(m.Orig))
		w.U8(uint8(m.Kind))
	}
	w.U32(uint32(img.OriginalBytes))
	w.U32(uint32(img.StreamBytes))
	w.U32(uint32(img.DictionaryBytes))
	for _, v := range []int{
		img.Stats.Items, img.Stats.CodewordItems, img.Stats.RawItems,
		img.Stats.StubBranches, img.Stats.CoveredInsns,
		img.Stats.CodewordBits, img.Stats.EscapeBits, img.Stats.RawBits,
	} {
		w.U32(uint32(v))
	}
	w.U32(img.TextBase)
	w.U32(uint32(len(img.OrigSymbols)))
	for _, s := range img.OrigSymbols {
		w.Str(s.Name)
		w.U32(uint32(s.Word))
	}
	return w.Err()
}

// ReadImagePayload deserializes a dictionary image body written by
// WriteImagePayload.
func ReadImagePayload(src io.Reader) (*Image, error) {
	r := wire.NewReader(src)
	img := &Image{}
	img.Name = r.Str()
	img.Scheme = codeword.Scheme(r.U8())
	img.Units = int(r.U32())
	img.Stream = r.Blob()
	img.Base = r.U32()
	img.EntryUnit = r.U32()
	nent := r.Count(int(r.U32()), "entry")
	for i := 0; i < nent && r.Err() == nil; i++ {
		k := int(r.U8())
		words := make([]uint32, k)
		for j := range words {
			words[j] = r.U32()
		}
		uses := int(r.U32())
		img.Entries = append(img.Entries, dictionary.Entry{Words: words, Uses: uses})
	}
	img.DataBase = r.U32()
	img.Data = r.Blob()
	njt := r.Count(int(r.U32()), "jump-table slot")
	for i := 0; i < njt && r.Err() == nil; i++ {
		img.JumpTableSlots = append(img.JumpTableSlots, int(r.U32()))
	}
	nsym := r.Count(int(r.U32()), "symbol")
	for i := 0; i < nsym && r.Err() == nil; i++ {
		name := r.Str()
		img.Symbols = append(img.Symbols, program.Symbol{Name: name, Word: int(r.U32())})
	}
	nmarks := r.Count(int(r.U32()), "mark")
	for i := 0; i < nmarks && r.Err() == nil; i++ {
		m := Mark{Unit: int(r.U32()), Orig: int(r.U32()), Kind: MarkKind(r.U8())}
		img.Marks = append(img.Marks, m)
	}
	img.OriginalBytes = int(r.U32())
	img.StreamBytes = int(r.U32())
	img.DictionaryBytes = int(r.U32())
	for _, dst := range []*int{
		&img.Stats.Items, &img.Stats.CodewordItems, &img.Stats.RawItems,
		&img.Stats.StubBranches, &img.Stats.CoveredInsns,
		&img.Stats.CodewordBits, &img.Stats.EscapeBits, &img.Stats.RawBits,
	} {
		*dst = int(r.U32())
	}
	img.TextBase = r.U32()
	nosym := r.Count(int(r.U32()), "original symbol")
	for i := 0; i < nosym && r.Err() == nil; i++ {
		name := r.Str()
		img.OrigSymbols = append(img.OrigSymbols, program.Symbol{Name: name, Word: int(r.U32())})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return img, nil
}

// schemeCodec adapts one dictionary codeword scheme to the codec
// interface.
type schemeCodec struct {
	scheme codeword.Scheme
}

// Method is the frame byte — the raw scheme value, by construction.
func (c schemeCodec) Method() codec.Method { return codec.Method(c.scheme) }

// Name is the scheme's canonical name.
func (c schemeCodec) Name() string { return c.scheme.String() }

// Scheme exposes the underlying codeword scheme (codec.Schemed), the hook
// scheme-keyed layers such as the bench corpus cache use.
func (c schemeCodec) Scheme() codeword.Scheme { return c.scheme }

// options maps the generic codec options onto the dictionary pipeline's.
func (c schemeCodec) options(opt codec.Options) Options {
	return Options{
		Scheme:      c.scheme,
		MaxEntries:  opt.MaxEntries,
		MaxEntryLen: opt.MaxEntryLen,
		Strategy:    opt.Strategy,
		DynProfile:  opt.DynProfile,
		Stats:       opt.Stats,
		Trace:       opt.Trace,
		Audit:       opt.Audit,
	}
}

// Compress runs the full dictionary pipeline on a private clone.
func (c schemeCodec) Compress(p *program.Program, opt codec.Options) (codec.Image, error) {
	return Compress(p.Clone(), c.options(opt))
}

// Open deserializes an image payload and checks it belongs to this codec.
func (c schemeCodec) Open(r io.Reader) (codec.Image, error) {
	img, err := ReadImagePayload(r)
	if err != nil {
		return nil, err
	}
	if img.Scheme != c.scheme {
		return nil, fmt.Errorf("core: image scheme %v does not match codec %v", img.Scheme, c.scheme)
	}
	return img, nil
}

// WriteImage serializes an image produced by this codec.
func (c schemeCodec) WriteImage(w io.Writer, img codec.Image) error {
	di, ok := img.(*Image)
	if !ok {
		return fmt.Errorf("core: %T is not a dictionary image", img)
	}
	if di.Scheme != c.scheme {
		return fmt.Errorf("core: image scheme %v does not match codec %v", di.Scheme, c.scheme)
	}
	return WriteImagePayload(w, di)
}

// Verify runs the structural verifier against the original program.
func (c schemeCodec) Verify(p *program.Program, img codec.Image) error {
	di, ok := img.(*Image)
	if !ok {
		return fmt.Errorf("core: %T is not a dictionary image", img)
	}
	return Verify(p, di)
}

// Audit reconstructs the byte-provenance audit from the image's marks —
// bit-identical to a live emitter attached during compression, without
// recompressing (the memoized-image fast path the bench tables rely on).
func (c schemeCodec) Audit(p *program.Program, opt codec.Options) (*sizeaudit.Audit, error) {
	img, err := Compress(p.Clone(), c.options(opt))
	if err != nil {
		return nil, err
	}
	return img.SizeAudit()
}

// MaxCompressedBytes: in the worst case nothing compresses, every
// instruction is emitted raw, and every one of them is a conditional far
// branch expanded to a condStubLen-instruction stub. Loose, but a true
// bound.
func (c schemeCodec) MaxCompressedBytes(originalBytes int) int {
	insns := (originalBytes + 3) / 4
	units := insns * condStubLen * c.scheme.RawInsnUnits()
	return (units*c.scheme.UnitBits()+7)/8 + codeword.DictHeaderBytes
}

// Package core implements the paper's contribution: post-compilation
// dictionary compression of PowerPC programs (§3). It builds the greedy
// dictionary over basic-block-confined sequences, replaces occurrences
// with codewords in one of the supported encodings, lays the result out at
// codeword-unit alignment, repatches every relative-branch offset in unit
// granularity (§3.2.2), rewrites out-of-range branches through
// register-indirect stubs, patches jump tables in the data section, and
// accounts for the dictionary in the compressed size (§4). It also
// provides the decompressor, the structural verifier, and the compressed
// fetch frontend of Figure 3 for the machine simulator.
package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"

	"repro/internal/codeword"
	"repro/internal/dictionary"
	"repro/internal/machine"
	"repro/internal/ppc"
	"repro/internal/program"
	"repro/internal/sizeaudit"
	"repro/internal/stats"
	"repro/internal/trace"
)

// CompressedBase is the base address of compressed text in unit space.
// Branch fields hold unit displacements, so the base only matters for
// absolute values (jump tables, LR/CTR contents).
const CompressedBase = 0x0010_0000

// Options selects the encoding and dictionary shape.
type Options struct {
	// Scheme is the codeword encoding (baseline 2-byte by default).
	Scheme codeword.Scheme

	// MaxEntries bounds the dictionary; 0 means the scheme's maximum.
	MaxEntries int

	// MaxEntryLen bounds instructions per entry; 0 means the paper's
	// baseline of 4.
	MaxEntryLen int

	// Strategy selects the dictionary-building policy (ablation hook);
	// the zero value is the paper's greedy algorithm in its indexed
	// implementation. dictionary.GreedyReference selects the
	// rescan-everything oracle, which must produce an identical image.
	Strategy dictionary.Strategy

	// DynProfile, when non-nil, holds per-original-word execution counts
	// (from a profiling run). Codeword ranks are then assigned by dynamic
	// fetch frequency instead of static use count, so the shortest
	// codewords cover the most-executed sequences — minimizing run-time
	// fetch traffic at a possible small cost in static size. Length must
	// equal the program's text length.
	DynProfile []int64

	// Stats, when non-nil, receives pipeline observability: phase timers
	// (core.analyze, core.build, core.encode, core.patch) and the
	// dictionary builder's counters and histograms. It never affects the
	// produced image.
	Stats *stats.Recorder

	// Trace, when non-nil, is the parent span under which Compress nests
	// one span per pipeline phase (mirroring the Stats phase timers), with
	// the dictionary build's own phase spans below core.build. Like
	// Stats, it never affects the produced image.
	Trace *trace.Span

	// Audit, when non-nil, receives one byte-provenance record per emitted
	// stream item plus the stream padding, dictionary storage and header —
	// the size-attribution sideband behind ccomp -audit. Like Stats it is
	// nil-safe and never affects the produced image; callers Finish it with
	// the image's CompressedBytes after Compress returns.
	Audit *sizeaudit.Emitter
}

// Normalized resolves the option defaults: MaxEntryLen 0 becomes the
// paper's baseline of 4, and MaxEntries 0 (or anything beyond the scheme's
// codeword space) becomes the scheme maximum. Two Options that normalize
// equal always produce identical images, which is what cache keys must be
// computed over.
func (o Options) Normalized() Options {
	if o.MaxEntryLen == 0 {
		o.MaxEntryLen = 4
	}
	if o.MaxEntries == 0 || o.MaxEntries > o.Scheme.MaxEntries() {
		o.MaxEntries = o.Scheme.MaxEntries()
	}
	return o
}

// Fingerprint is a stable hex hash of the normalized image-shaping
// options (scheme, dictionary bounds, strategy, and any dynamic profile).
// Two Options that fingerprint equal produce identical images, so run
// bundles and cache layers can use it as the configuration identity
// without serializing the options themselves.
func (o Options) Fingerprint() string {
	n := o.Normalized()
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%d/%d/%d", n.Scheme, n.MaxEntries, n.MaxEntryLen, n.Strategy)
	for _, v := range n.DynProfile {
		fmt.Fprintf(h, "/%d", v)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Mark records where an original instruction landed in the stream; it is
// sideband metadata for verification and disassembly, not part of the
// compressed size.
type Mark struct {
	Unit int // stream unit offset of the item
	Orig int // original text word index (sequence start for codewords)

	// Kind describes the item.
	Kind MarkKind
}

// MarkKind classifies stream items.
type MarkKind uint8

// Stream item kinds.
const (
	MarkRaw      MarkKind = iota // uncompressed non-branch instruction
	MarkCodeword                 // dictionary codeword
	MarkBranch                   // patched relative branch
	MarkStub                     // far branch expanded to an indirect stub
)

// Stats break the compressed program down for Figure 9.
type Stats struct {
	Items         int
	CodewordItems int
	RawItems      int // uncompressed instructions incl. branches
	StubBranches  int // far branches rewritten through registers
	CoveredInsns  int // original instructions absorbed into codewords

	// Figure 9 decomposition, in bits of the final stream.
	CodewordBits int // total codeword bits (incl. escape portion)
	EscapeBits   int // escape portion of the codewords
	RawBits      int // uncompressed instruction bits (incl. nibble escapes)
}

// Image is a compressed program.
type Image struct {
	Name   string
	Scheme codeword.Scheme

	Stream []byte
	Units  int

	// Entries are ranked by use count (most frequent first) so the
	// shortest codewords cover the hottest sequences.
	Entries []dictionary.Entry

	Base      uint32 // unit-space base address
	EntryUnit uint32 // absolute unit address of the entry point

	Data           []byte // data section with repatched jump tables
	DataBase       uint32
	JumpTableSlots []int

	Symbols []program.Symbol // Word field holds the *unit* offset

	// TextBase and OrigSymbols preserve the original program's text base
	// address and full symbol table (Word = original text word index), so a
	// compressed image can be symbolized in native terms through its
	// AddrMap — the guest profiler's requirement for producing profiles
	// diffable against an uncompressed run.
	TextBase    uint32
	OrigSymbols []program.Symbol

	Marks []Mark

	OriginalBytes   int
	StreamBytes     int
	DictionaryBytes int

	Stats Stats

	// predecode caches the decoded execution table (built lazily by
	// Predecode). Sideband only: never serialized, never part of the
	// compressed size; duplicate concurrent builds are benign.
	predecode atomic.Pointer[machine.Predecode]
}

// CompressedBytes is the total compressed size: stream plus dictionary,
// per the paper's accounting ("All compressed program sizes include the
// overhead of the dictionary").
func (img *Image) CompressedBytes() int { return img.StreamBytes + img.DictionaryBytes }

// Ratio is Eq. 1: compressed size / original size.
func (img *Image) Ratio() float64 {
	if img.OriginalBytes == 0 {
		return 0
	}
	return float64(img.CompressedBytes()) / float64(img.OriginalBytes)
}

// markByUnit finds the mark starting at an absolute unit address.
func (img *Image) markByUnit(abs uint32) (Mark, bool) {
	rel := int(abs - img.Base)
	i := sort.Search(len(img.Marks), func(i int) bool { return img.Marks[i].Unit >= rel })
	if i < len(img.Marks) && img.Marks[i].Unit == rel {
		return img.Marks[i], true
	}
	return Mark{}, false
}

// markers computes the compressibility and leader vectors for a program:
// §3.2.1 — relative branches are never compressed (their offsets must be
// rewritten); link-setting branches are excluded too because a return
// into the middle of a dictionary entry is unaddressable.
func markers(p *program.Program) (compressible []bool, an *program.Analysis, err error) {
	an, err = program.Analyze(p)
	if err != nil {
		return nil, nil, err
	}
	compressible = make([]bool, len(p.Text))
	for i, w := range p.Text {
		compressible[i] = !ppc.IsRelativeBranch(w) && !(ppc.IsBranch(w) && ppc.IsCall(w))
	}
	return compressible, an, nil
}

// Markers computes the §3.2.1 compressibility and basic-block leader
// vectors for a program — the inputs dictionary.Build needs beyond the
// text itself. Exported for benchmarks and tools that drive the
// dictionary builder directly.
func Markers(p *program.Program) (compressible, leader []bool, err error) {
	comp, an, err := markers(p)
	if err != nil {
		return nil, nil, err
	}
	return comp, an.Leader, nil
}

// CompressFixed compresses a program against a pre-built dictionary (a
// ROM dictionary shared across programs, for instance). Entry order is
// preserved — codeword ranks must mean the same thing to every program
// sharing the dictionary — and the scheme must have room for them all.
func CompressFixed(p *program.Program, entries []dictionary.Entry, opt Options) (*Image, error) {
	opt = opt.Normalized()
	if len(entries) > opt.Scheme.MaxEntries() {
		return nil, fmt.Errorf("core: %d entries exceed %v's codeword space", len(entries), opt.Scheme)
	}
	compressible, an, err := markers(p)
	if err != nil {
		return nil, err
	}
	res, err := dictionary.Apply(p.Text, entries, dictionary.Config{
		Compressible: compressible,
		Leader:       an.Leader,
	})
	if err != nil {
		return nil, err
	}
	// Identity ranking: the shared dictionary's order is fixed.
	rank := reranked{entries: res.Entries, of: make([]int, len(res.Entries))}
	for i := range rank.of {
		rank.of[i] = i
	}
	return assemble(p, opt, res, rank)
}

// BuildSharedDictionary runs the greedy builder over the concatenation of
// several programs and returns a single dictionary (most-used entries
// first) suitable for CompressFixed on each of them — the fleet-wide ROM
// dictionary deployment.
func BuildSharedDictionary(programs []*program.Program, opt Options) ([]dictionary.Entry, error) {
	opt = opt.Normalized()
	var text []uint32
	var compressible, leaders []bool
	for _, p := range programs {
		comp, an, err := markers(p)
		if err != nil {
			return nil, err
		}
		text = append(text, p.Text...)
		compressible = append(compressible, comp...)
		leaders = append(leaders, an.Leader...)
	}
	res, err := dictionary.Build(text, dictionary.Config{
		MaxEntries:        opt.MaxEntries,
		MaxEntryLen:       opt.MaxEntryLen,
		CodewordBits:      opt.Scheme.CodewordBits,
		EntryOverheadBits: codeword.EntryOverheadBits,
		Compressible:      compressible,
		Leader:            leaders,
		Strategy:          opt.Strategy,
	})
	if err != nil {
		return nil, err
	}
	rank := rerank(res, nil)
	return rank.entries, nil
}

// Compress runs the full pipeline.
func Compress(p *program.Program, opt Options) (*Image, error) {
	opt = opt.Normalized()
	n := len(p.Text)
	stopAnalyze := opt.Stats.Time("core.analyze")
	spAnalyze := opt.Trace.Child("core.analyze")
	compressible, an, err := markers(p)
	spAnalyze.End()
	stopAnalyze()
	if err != nil {
		return nil, err
	}

	stopBuild := opt.Stats.Time("core.build")
	spBuild := opt.Trace.Child("core.build")
	res, err := dictionary.Build(p.Text, dictionary.Config{
		MaxEntries:        opt.MaxEntries,
		MaxEntryLen:       opt.MaxEntryLen,
		CodewordBits:      opt.Scheme.CodewordBits,
		EntryOverheadBits: codeword.EntryOverheadBits,
		Compressible:      compressible,
		Leader:            an.Leader,
		Strategy:          opt.Strategy,
		Stats:             opt.Stats,
		Trace:             spBuild,
	})
	spBuild.End()
	stopBuild()
	if err != nil {
		return nil, err
	}

	// Re-rank entries so the most frequent sequences receive the shortest
	// codewords (§3.1.3) — by static use count, or by dynamic fetch count
	// when a profile is supplied; remap item references.
	if opt.DynProfile != nil && len(opt.DynProfile) != n {
		return nil, fmt.Errorf("core: profile length %d != text length %d", len(opt.DynProfile), n)
	}
	rank := rerank(res, opt.DynProfile)
	return assemble(p, opt, res, rank)
}

// assemble runs the scheme-dependent back half of the pipeline: layout,
// emission, branch patching, jump-table repatching and accounting.
func assemble(p *program.Program, opt Options, res *dictionary.Result, rank reranked) (*Image, error) {
	an, err := program.Analyze(p)
	if err != nil {
		return nil, err
	}
	img := &Image{
		Name:           p.Name,
		Scheme:         opt.Scheme,
		Entries:        rank.entries,
		Base:           CompressedBase,
		Data:           append([]byte(nil), p.Data...),
		DataBase:       p.DataBase,
		JumpTableSlots: append([]int(nil), p.JumpTableSlots...),
		TextBase:       p.TextBase,
		OrigSymbols:    append([]program.Symbol(nil), p.Symbols...),
		OriginalBytes:  p.SizeBytes(),
	}

	stopEncode := opt.Stats.Time("core.encode")
	spEncode := opt.Trace.Child("core.encode")
	lay, err := layout(p, an, res.Items, rank.of, opt.Scheme)
	if err != nil {
		spEncode.End()
		stopEncode()
		return nil, err
	}
	err = emit(img, p, res.Items, rank.of, lay, opt)
	spEncode.End()
	stopEncode()
	if err != nil {
		return nil, err
	}

	defer opt.Stats.Time("core.patch")()
	defer opt.Trace.Child("core.patch").End()
	// Patch jump tables to absolute unit addresses in compressed space.
	jts, err := p.JumpTableTargets()
	if err != nil {
		return nil, err
	}
	for i, slot := range img.JumpTableSlots {
		u, ok := lay.unitOf[jts[i]]
		if !ok {
			return nil, fmt.Errorf("core: jump table target word %d is not an item start", jts[i])
		}
		putBE32(img.Data[slot:], img.Base+uint32(u))
	}

	// Symbols and entry point.
	for _, s := range p.Symbols {
		if u, ok := lay.unitOf[s.Word]; ok {
			img.Symbols = append(img.Symbols, program.Symbol{Name: s.Name, Word: u})
		}
	}
	eu, ok := lay.unitOf[p.Entry]
	if !ok {
		return nil, fmt.Errorf("core: entry word %d is not an item start", p.Entry)
	}
	img.EntryUnit = img.Base + uint32(eu)

	img.DictionaryBytes = codeword.DictBytes(entryLens(img.Entries))
	img.Stats.CoveredInsns = res.CoveredInsns
	// The dictionary's serialized storage and fixed header are overhead no
	// single function owns; they complete the audit's accounting of
	// CompressedBytes (stream + dictionary).
	opt.Audit.Global(sizeaudit.Dict, sizeaudit.DictRow,
		int64(img.DictionaryBytes-codeword.DictHeaderBytes)*8)
	opt.Audit.Global(sizeaudit.Header, sizeaudit.HeaderRow, int64(codeword.DictHeaderBytes)*8)
	return img, nil
}

// reranked carries the frequency-ordered dictionary.
type reranked struct {
	entries []dictionary.Entry
	of      []int // old index -> new rank
}

func rerank(res *dictionary.Result, profile []int64) reranked {
	weight := make([]int64, len(res.Entries))
	for i, e := range res.Entries {
		weight[i] = int64(e.Uses)
	}
	if profile != nil {
		// Dynamic weight: how often each entry's codeword is fetched,
		// approximated by the execution count of the sequence's first
		// instruction summed over all replaced occurrences.
		for i := range weight {
			weight[i] = 0
		}
		for _, it := range res.Items {
			if it.IsCodeword {
				weight[it.Entry] += profile[it.OrigIdx]
			}
		}
	}
	order := make([]int, len(res.Entries))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weight[order[a]] > weight[order[b]]
	})
	r := reranked{
		entries: make([]dictionary.Entry, len(order)),
		of:      make([]int, len(order)),
	}
	for newIdx, oldIdx := range order {
		r.entries[newIdx] = res.Entries[oldIdx]
		r.of[oldIdx] = newIdx
	}
	return r
}

func entryLens(entries []dictionary.Entry) []int {
	out := make([]int, len(entries))
	for i, e := range entries {
		out[i] = len(e.Words)
	}
	return out
}

func putBE32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

package core

import (
	"testing"

	"repro/internal/codeword"
	"repro/internal/dictionary"
	"repro/internal/machine"
	"repro/internal/ppc"
	"repro/internal/program"
	"repro/internal/synth"
)

var allSchemes = []codeword.Scheme{codeword.Baseline, codeword.OneByte, codeword.Nibble, codeword.Liao}

func TestCompressVerifyAllBenchmarksAllSchemes(t *testing.T) {
	for _, name := range synth.BenchmarkNames() {
		p, err := synth.Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range allSchemes {
			s := s
			opt := Options{Scheme: s}
			if s == codeword.OneByte {
				opt.MaxEntries = 32
			}
			img, err := Compress(p.Clone(), opt)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, s, err)
			}
			if err := Verify(p, img); err != nil {
				t.Fatalf("%s/%v: verify: %v", name, s, err)
			}
			if img.Ratio() >= 1.0 && s != codeword.Liao && s != codeword.OneByte {
				t.Errorf("%s/%v: ratio %.3f did not compress", name, s, img.Ratio())
			}
			if img.Ratio() <= 0 {
				t.Errorf("%s/%v: ratio %.3f nonsensical", name, s, img.Ratio())
			}
			exp, err := img.Decompress()
			if err != nil {
				t.Fatalf("%s/%v: decompress: %v", name, s, err)
			}
			if len(exp) < len(p.Text) {
				t.Errorf("%s/%v: decompressed %d < original %d words", name, s, len(exp), len(p.Text))
			}
		}
	}
}

func TestCompressedExecutionMatchesOriginal(t *testing.T) {
	// The paper's whole premise: the compressed program processor produces
	// identical behavior. Run every benchmark under every scheme.
	for _, name := range synth.BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := synth.Generate(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range allSchemes {
				opt := Options{Scheme: s}
				if s == codeword.OneByte {
					opt.MaxEntries = 32
				}
				img, err := Compress(p.Clone(), opt)
				if err != nil {
					t.Fatalf("%v: %v", s, err)
				}
				orig, comp, err := RunBoth(p, img, 200_000_000)
				if err != nil {
					t.Fatalf("%v: %v", s, err)
				}
				if img.Stats.StubBranches == 0 {
					// With no stubs the dynamic instruction streams must
					// be identical, not merely output-equivalent.
					if orig.Stats.Steps != comp.Stats.Steps {
						t.Errorf("%v: step counts differ with no stubs: %d vs %d",
							s, orig.Stats.Steps, comp.Stats.Steps)
					}
					if orig.Stats.TakenBranches != comp.Stats.TakenBranches {
						t.Errorf("%v: taken-branch counts differ with no stubs: %d vs %d",
							s, orig.Stats.TakenBranches, comp.Stats.TakenBranches)
					}
					if orig.Stats.Syscalls != comp.Stats.Syscalls {
						t.Errorf("%v: syscall counts differ: %d vs %d",
							s, orig.Stats.Syscalls, comp.Stats.Syscalls)
					}
				}
				// The compressed image must fetch fewer program-memory
				// bytes — that is the density win.
				if comp.Stats.FetchedBytes >= orig.Stats.FetchedBytes {
					t.Errorf("%v: compressed fetch traffic %d >= original %d",
						s, comp.Stats.FetchedBytes, orig.Stats.FetchedBytes)
				}
			}
		})
	}
}

func TestRatioOrderingAcrossSchemes(t *testing.T) {
	// Nibble beats baseline (shorter codewords), and both beat Liao
	// (which cannot compress single instructions) — §4.1.3 and §2.4.
	p, err := synth.Generate("ijpeg")
	if err != nil {
		t.Fatal(err)
	}
	ratio := map[codeword.Scheme]float64{}
	for _, s := range []codeword.Scheme{codeword.Baseline, codeword.Nibble, codeword.Liao} {
		img, err := Compress(p.Clone(), Options{Scheme: s})
		if err != nil {
			t.Fatal(err)
		}
		ratio[s] = img.Ratio()
	}
	t.Logf("ratios: baseline %.3f nibble %.3f liao %.3f",
		ratio[codeword.Baseline], ratio[codeword.Nibble], ratio[codeword.Liao])
	if ratio[codeword.Nibble] >= ratio[codeword.Baseline] {
		t.Errorf("nibble %.3f not better than baseline %.3f", ratio[codeword.Nibble], ratio[codeword.Baseline])
	}
	if ratio[codeword.Baseline] >= ratio[codeword.Liao] {
		t.Errorf("baseline %.3f not better than liao %.3f", ratio[codeword.Baseline], ratio[codeword.Liao])
	}
}

func TestMoreCodewordsNeverHurt(t *testing.T) {
	// Fig. 5's monotonicity: growing the codeword budget can only improve
	// (or hold) the ratio.
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for _, n := range []int{16, 64, 256, 1024, 4096, 8192} {
		img, err := Compress(p.Clone(), Options{Scheme: codeword.Baseline, MaxEntries: n})
		if err != nil {
			t.Fatal(err)
		}
		if img.Ratio() > prev+1e-9 {
			t.Errorf("ratio rose from %.4f to %.4f at %d codewords", prev, img.Ratio(), n)
		}
		prev = img.Ratio()
	}
}

// buildFarBranch constructs a program whose conditional branch cannot
// reach its target at fine-unit resolution, forcing the stub path.
func buildFarBranch(t *testing.T, filler int) *program.Program {
	t.Helper()
	b := program.NewBuilder("far")
	f := b.Func("main")
	f.Emit(ppc.Li(3, 7))
	f.Emit(ppc.Cmpwi(0, 3, 0))
	f.Branch(ppc.Bgt(0, 0), "far") // taken
	f.Emit(ppc.Li(3, 111))         // skipped
	f.Branch(ppc.B(0), "exit")
	// Unique filler words so nothing compresses and the distance stays.
	for i := 0; i < filler; i++ {
		f.Emit(ppc.Xori(4, 4, int32(i%0x7FFF)))
		f.Emit(ppc.Addi(5, 5, int32(i%200+1)))
	}
	f.Label("far")
	f.Emit(ppc.Li(3, 42))
	f.Label("exit")
	f.Emit(ppc.Li(0, machine.SysExit))
	f.Emit(ppc.Sc())
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFarBranchStub(t *testing.T) {
	// 3000 filler pairs ≈ 6000 raw instructions ≈ 54000 nibble units:
	// far beyond the ±8192-unit reach of a 14-bit field at 4-bit
	// resolution.
	p := buildFarBranch(t, 3000)
	img, err := Compress(p.Clone(), Options{Scheme: codeword.Nibble})
	if err != nil {
		t.Fatal(err)
	}
	if img.Stats.StubBranches == 0 {
		t.Fatal("no stub generated for a far branch")
	}
	if err := Verify(p, img); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if _, _, err := RunBoth(p, img, 1_000_000); err != nil {
		t.Fatalf("behavioral: %v", err)
	}
	cpu, err := NewMachine(img)
	if err != nil {
		t.Fatal(err)
	}
	status, err := cpu.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if status != 42 {
		t.Fatalf("far branch not taken through stub: status %d", status)
	}
}

func TestNearBranchNoStub(t *testing.T) {
	p := buildFarBranch(t, 10)
	img, err := Compress(p.Clone(), Options{Scheme: codeword.Nibble})
	if err != nil {
		t.Fatal(err)
	}
	if img.Stats.StubBranches != 0 {
		t.Fatalf("%d stubs generated for near branches", img.Stats.StubBranches)
	}
}

func TestRelativeBranchesNeverCompressed(t *testing.T) {
	p, err := synth.Generate("li")
	if err != nil {
		t.Fatal(err)
	}
	img, err := Compress(p.Clone(), Options{Scheme: codeword.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	for rank, e := range img.Entries {
		for _, w := range e.Words {
			if ppc.IsRelativeBranch(w) {
				t.Fatalf("entry %d contains relative branch %s", rank, ppc.Disassemble(w))
			}
			if ppc.IsBranch(w) && ppc.IsCall(w) {
				t.Fatalf("entry %d contains linking branch %s", rank, ppc.Disassemble(w))
			}
		}
	}
}

func TestEntriesRankedByFrequency(t *testing.T) {
	p, err := synth.Generate("go")
	if err != nil {
		t.Fatal(err)
	}
	img, err := Compress(p.Clone(), Options{Scheme: codeword.Nibble})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(img.Entries); i++ {
		if img.Entries[i].Uses > img.Entries[i-1].Uses {
			t.Fatalf("entries not frequency-ranked at %d: %d > %d",
				i, img.Entries[i].Uses, img.Entries[i-1].Uses)
		}
	}
}

func TestStatsDecomposition(t *testing.T) {
	p, err := synth.Generate("m88ksim")
	if err != nil {
		t.Fatal(err)
	}
	img, err := Compress(p.Clone(), Options{Scheme: codeword.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	st := img.Stats
	if st.Items != st.CodewordItems+st.RawItems-st.StubBranches*(condStubLen-1) &&
		st.Items > st.CodewordItems+st.RawItems {
		t.Logf("items=%d cw=%d raw=%d stubs=%d", st.Items, st.CodewordItems, st.RawItems, st.StubBranches)
	}
	// Stream bits must decompose exactly into codeword + raw bits (modulo
	// final byte padding).
	gotBits := st.CodewordBits + st.RawBits
	streamBits := img.Units * img.Scheme.UnitBits()
	if gotBits != streamBits {
		t.Fatalf("bit decomposition %d != stream %d", gotBits, streamBits)
	}
	if st.EscapeBits != 8*st.CodewordItems {
		t.Fatalf("escape bits %d for %d codewords", st.EscapeBits, st.CodewordItems)
	}
	if img.StreamBytes != (streamBits+7)/8 {
		t.Fatalf("stream bytes %d for %d bits", img.StreamBytes, streamBits)
	}
	if img.CompressedBytes() != img.StreamBytes+img.DictionaryBytes {
		t.Fatal("compressed size does not include the dictionary")
	}
}

func TestMaxEntryLenRespected(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	for _, maxLen := range []int{1, 2, 4, 8} {
		img, err := Compress(p.Clone(), Options{Scheme: codeword.Baseline, MaxEntryLen: maxLen})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range img.Entries {
			if len(e.Words) > maxLen {
				t.Fatalf("entry of %d words with max %d", len(e.Words), maxLen)
			}
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	img, err := Compress(p.Clone(), Options{Scheme: codeword.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, img); err != nil {
		t.Fatal(err)
	}
	// Corrupt one dictionary entry word.
	img.Entries[0].Words[0] ^= 4
	if err := Verify(p, img); err == nil {
		t.Fatal("corrupted dictionary passed verification")
	}
	img.Entries[0].Words[0] ^= 4
	// Corrupt a jump table slot.
	if len(img.JumpTableSlots) > 0 {
		slot := img.JumpTableSlots[0]
		img.Data[slot+3] ^= 1
		if err := Verify(p, img); err == nil {
			t.Fatal("corrupted jump table passed verification")
		}
		img.Data[slot+3] ^= 1
	}
	// Corrupt the entry point.
	img.EntryUnit++
	if err := Verify(p, img); err == nil {
		t.Fatal("corrupted entry point passed verification")
	}
}

func TestCompressFixedSharedDictionary(t *testing.T) {
	opt := Options{Scheme: codeword.Baseline, MaxEntryLen: 4}
	var progs []*program.Program
	for _, name := range []string{"compress", "li"} {
		p, err := synth.Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, p)
	}
	shared, err := BuildSharedDictionary(progs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(shared) == 0 {
		t.Fatal("empty shared dictionary")
	}
	for _, p := range progs {
		img, err := CompressFixed(p.Clone(), shared, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(p, img); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if _, _, err := RunBoth(p, img, 200_000_000); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		// Entry order must be exactly the shared dictionary's.
		if len(img.Entries) != len(shared) {
			t.Fatalf("%s: %d entries, want %d", p.Name, len(img.Entries), len(shared))
		}
		for i := range shared {
			if len(img.Entries[i].Words) != len(shared[i].Words) {
				t.Fatalf("%s: entry %d reordered", p.Name, i)
			}
			for j := range shared[i].Words {
				if img.Entries[i].Words[j] != shared[i].Words[j] {
					t.Fatalf("%s: entry %d word %d differs", p.Name, i, j)
				}
			}
		}
	}
}

func TestCompressFixedRejectsOversizedDictionary(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	big := make([]dictionary.Entry, codeword.OneByte.MaxEntries()+1)
	for i := range big {
		big[i] = dictionary.Entry{Words: []uint32{ppc.Addi(3, 3, int32(i))}}
	}
	if _, err := CompressFixed(p.Clone(), big, Options{Scheme: codeword.OneByte}); err == nil {
		t.Fatal("oversized dictionary accepted")
	}
}

func TestSmallDictionaryConfigs(t *testing.T) {
	// §4.1.2: 8/16/32-entry one-byte dictionaries still help.
	p, err := synth.Generate("perl")
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for _, n := range []int{8, 16, 32} {
		img, err := Compress(p.Clone(), Options{Scheme: codeword.OneByte, MaxEntries: n})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(p, img); err != nil {
			t.Fatal(err)
		}
		if img.Ratio() >= 1.0 {
			t.Errorf("%d entries: ratio %.3f — no benefit", n, img.Ratio())
		}
		if img.Ratio() > prev+1e-9 {
			t.Errorf("ratio rose with more entries: %.4f -> %.4f", prev, img.Ratio())
		}
		prev = img.Ratio()
		if len(img.Entries) > n {
			t.Errorf("dictionary has %d entries, budget %d", len(img.Entries), n)
		}
		dictBytes := codeword.DictBytes(entryLens(img.Entries))
		if dictBytes > codeword.DictHeaderBytes+n*(1+16) {
			t.Errorf("dictionary %d bytes exceeds the small-dictionary bound", dictBytes)
		}
	}
}

package core

import (
	"fmt"

	"repro/internal/codeword"
	"repro/internal/machine"
	"repro/internal/program"
)

// CompressedFrontend is Figure 3's fetch path: it consumes codeword units
// from compressed program memory, expanding codewords through the on-chip
// dictionary in the decode stage. PC values are absolute unit addresses;
// relative-branch displacement fields are interpreted in units.
type CompressedFrontend struct {
	img *Image
	rdr *codeword.Reader

	pc    uint32   // unit address of the item being (or about to be) fetched
	queue []uint32 // remaining instructions of the current dictionary entry
	qNext uint32   // unit address following the current item
	qAddr uint32   // unit address of the current item

	// dictBase, when nonzero, models the dictionary living in program
	// memory rather than on-chip (§3.3 discusses both placements): each
	// expanded instruction then costs a 4-byte fetch from the dictionary
	// region. entryOff maps entry rank to its byte offset there.
	dictBase uint32
	entryOff []uint32
	qRank    int
	qIdx     int
}

// NewCompressedFrontend wraps an image for execution.
func NewCompressedFrontend(img *Image) *CompressedFrontend {
	return &CompressedFrontend{
		img: img,
		rdr: codeword.NewReader(img.Scheme, img.Stream, img.Units),
		pc:  img.EntryUnit,
	}
}

var _ machine.Frontend = (*CompressedFrontend)(nil)

// SetDictInMemory switches the traffic model to a memory-resident
// dictionary at the given byte base address: dictionary expansions fetch
// their instructions from memory instead of being free. Use before Run.
func (f *CompressedFrontend) SetDictInMemory(base uint32) {
	f.dictBase = base
	f.entryOff = make([]uint32, len(f.img.Entries))
	off := uint32(0)
	for i, e := range f.img.Entries {
		f.entryOff[i] = off
		off += uint32(4 * len(e.Words))
	}
}

// Reset positions fetch at an entry address.
func (f *CompressedFrontend) Reset(entry uint32) error { return f.SetPC(entry) }

// SetPC redirects fetch to an absolute unit address (branch target).
// Dictionary expansion in progress is abandoned, exactly as a taken branch
// inside an entry abandons the rest of the entry.
func (f *CompressedFrontend) SetPC(addr uint32) error {
	if addr < f.img.Base || addr >= f.img.Base+uint32(f.img.Units) {
		return fmt.Errorf("core: jump to %#x outside compressed text [%#x,%#x)",
			addr, f.img.Base, f.img.Base+uint32(f.img.Units))
	}
	f.pc = addr
	f.queue = nil
	return nil
}

// RelTarget interprets branch displacement fields at codeword-unit
// granularity (§3.2.2).
func (f *CompressedFrontend) RelTarget(cia uint32, field int32) uint32 {
	return cia + uint32(field)
}

// PC returns the current fetch unit address.
func (f *CompressedFrontend) PC() uint32 { return f.pc }

// SetRawPC repositions fetch without validation and abandons any expansion
// in progress — the fused loop's resynchronization hook. A bad address
// faults on the next Fetch.
func (f *CompressedFrontend) SetRawPC(pc uint32) {
	f.pc = pc
	f.queue = nil
}

// Predecode returns the image's predecoded table, or nil when this
// frontend cannot use one: a memory-resident dictionary makes every
// expanded instruction a distinct memory access the table does not model,
// and an expansion already in progress holds queue state a table restart
// would drop.
func (f *CompressedFrontend) Predecode() *machine.Predecode {
	if f.dictBase != 0 || len(f.queue) > 0 {
		return nil
	}
	return f.img.Predecode()
}

var _ machine.PredecodedFrontend = (*CompressedFrontend)(nil)

// Fetch returns the next instruction, expanding codewords as needed.
func (f *CompressedFrontend) Fetch() (machine.FetchInfo, error) {
	if len(f.queue) > 0 {
		w := f.queue[0]
		f.queue = f.queue[1:]
		f.qIdx++
		fi := machine.FetchInfo{
			Word: w,
			CIA:  f.qAddr,
			// Mid-entry successors are unaddressable; only the final
			// instruction of an entry has a meaningful Next.
			Next:   f.qNext,
			NextOK: len(f.queue) == 0,
			// Dictionary expansion: no program-memory traffic with an
			// on-chip dictionary; a 4-byte dictionary fetch otherwise.
			MemBytes: 0,
		}
		if f.dictBase != 0 {
			fi.MemAddr = f.dictBase + f.entryOff[f.qRank] + uint32(4*f.qIdx)
			fi.MemBytes = 4
		}
		return fi, nil
	}
	it, err := f.rdr.At(int(f.pc - f.img.Base))
	if err != nil {
		return machine.FetchInfo{}, err
	}
	cia := f.pc
	next := f.pc + uint32(it.Units)
	memAddr := f.byteAddr(cia)
	memBytes := (it.Units*f.img.Scheme.UnitBits() + 7) / 8
	f.pc = next
	if !it.IsCodeword {
		return machine.FetchInfo{
			Word: it.Word, CIA: cia, Next: next, NextOK: true,
			MemAddr: memAddr, MemBytes: memBytes,
		}, nil
	}
	if it.Rank >= len(f.img.Entries) {
		return machine.FetchInfo{}, fmt.Errorf("core: codeword %d exceeds dictionary", it.Rank)
	}
	words := f.img.Entries[it.Rank].Words
	f.queue = words[1:]
	f.qAddr = cia
	f.qNext = next
	f.qRank = it.Rank
	f.qIdx = 0
	fi := machine.FetchInfo{
		Word: words[0], CIA: cia, Next: next, NextOK: len(words) == 1,
		MemAddr: memAddr, MemBytes: memBytes,
		EntryRank: it.Rank, EntryLen: len(words),
	}
	if f.dictBase != 0 {
		// With a memory-resident dictionary, the first expanded word costs
		// a dictionary access on top of the codeword fetch.
		fi.MemAddr2 = f.dictBase + f.entryOff[it.Rank]
		fi.MemBytes2 = 4
	}
	return fi, nil
}

// byteAddr maps a unit address to the byte address of the underlying
// program memory, for cache modeling.
func (f *CompressedFrontend) byteAddr(unitAddr uint32) uint32 {
	rel := unitAddr - f.img.Base
	return f.img.Base + rel*uint32(f.img.Scheme.UnitBits())/8
}

// NewMachineDictInMemory builds a CPU whose traffic model places the
// dictionary in program memory at the given base address instead of
// on-chip (see Image.Frontend semantics and §3.3).
func NewMachineDictInMemory(img *Image, dictBase uint32) (*machine.CPU, error) {
	cpu, err := NewMachine(img)
	if err != nil {
		return nil, err
	}
	cpu.Frontend().(*CompressedFrontend).SetDictInMemory(dictBase)
	return cpu, nil
}

// NewMachine builds a CPU executing the compressed image, with data and
// stack mapped exactly as for the original program.
func NewMachine(img *Image) (*machine.CPU, error) {
	mem := machine.NewMemory()
	data := make([]byte, len(img.Data)+1<<16)
	copy(data, img.Data)
	if err := mem.Map("data", img.DataBase, data); err != nil {
		return nil, err
	}
	if err := mem.Map("stack", 0x7FF0_0000-1<<20, make([]byte, 1<<20)); err != nil {
		return nil, err
	}
	fe := NewCompressedFrontend(img)
	cpu := machine.New(mem, fe)
	if err := fe.Reset(img.EntryUnit); err != nil {
		return nil, err
	}
	cpu.GPR[1] = 0x7FF0_0000 - 64
	if err := cpu.SnapshotReset(); err != nil {
		return nil, err
	}
	return cpu, nil
}

// RunBoth executes the original program and its compressed image and
// checks behavioral equivalence: identical syscall output and exit status.
// It returns both CPUs for further inspection (fetch statistics, etc.).
func RunBoth(p *program.Program, img *Image, maxSteps int64) (*machine.CPU, *machine.CPU, error) {
	orig, err := machine.NewForProgram(p)
	if err != nil {
		return nil, nil, err
	}
	st1, err := orig.Run(maxSteps)
	if err != nil {
		return nil, nil, fmt.Errorf("core: original execution: %w", err)
	}
	comp, err := NewMachine(img)
	if err != nil {
		return nil, nil, err
	}
	st2, err := comp.Run(maxSteps)
	if err != nil {
		return nil, nil, fmt.Errorf("core: compressed execution: %w", err)
	}
	if st1 != st2 {
		return orig, comp, fmt.Errorf("core: exit status differs: %d vs %d", st1, st2)
	}
	if string(orig.Output()) != string(comp.Output()) {
		return orig, comp, fmt.Errorf("core: output differs: %q vs %q", orig.Output(), comp.Output())
	}
	return orig, comp, nil
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/codeword"
	"repro/internal/ppc"
	"repro/internal/program"
	"repro/internal/synth"
)

func compress(t *testing.T, name string, scheme codeword.Scheme) (*Image, int) {
	t.Helper()
	p, err := synth.Generate(name)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Compress(p.Clone(), Options{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	return img, len(p.Text)
}

func TestFrontendSequentialWalk(t *testing.T) {
	// Fetching straight through the stream (ignoring control flow) must
	// produce exactly the decompressed instruction sequence with
	// consistent CIA/Next chaining.
	img, _ := compress(t, "compress", codeword.Nibble)
	want, err := img.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	fe := NewCompressedFrontend(img)
	if err := fe.Reset(img.Base); err != nil {
		t.Fatal(err)
	}
	var got []uint32
	prevEnd := img.Base
	for len(got) < len(want) {
		fi, err := fe.Fetch()
		if err != nil {
			t.Fatalf("fetch %d: %v", len(got), err)
		}
		got = append(got, fi.Word)
		if fi.CIA < img.Base || fi.CIA >= img.Base+uint32(img.Units) {
			t.Fatalf("CIA %#x outside stream", fi.CIA)
		}
		if fi.CIA > prevEnd {
			t.Fatalf("fetch gap: CIA %#x after end %#x", fi.CIA, prevEnd)
		}
		if fi.NextOK {
			prevEnd = fi.Next
		}
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("word %d: fetched %08x, decompressed %08x", i, got[i], want[i])
		}
	}
}

func TestFrontendNextOKSemantics(t *testing.T) {
	img, _ := compress(t, "li", codeword.Baseline)
	fe := NewCompressedFrontend(img)
	if err := fe.Reset(img.Base); err != nil {
		t.Fatal(err)
	}
	sawMidEntry := false
	inEntry := false
	for i := 0; i < 2000; i++ {
		fi, err := fe.Fetch()
		if err != nil {
			break
		}
		if inEntry {
			// Continuation words come from the on-chip dictionary: no
			// program-memory traffic, and CIA stays at the codeword.
			sawMidEntry = true
			if fi.MemBytes != 0 {
				t.Fatal("dictionary-expanded instruction charged memory traffic")
			}
		}
		inEntry = !fi.NextOK
	}
	if !sawMidEntry {
		t.Skip("no multi-instruction entry in the walked prefix")
	}
}

func TestFrontendSetPCValidation(t *testing.T) {
	img, _ := compress(t, "compress", codeword.Nibble)
	fe := NewCompressedFrontend(img)
	if err := fe.SetPC(img.Base - 1); err == nil {
		t.Error("jump below stream accepted")
	}
	if err := fe.SetPC(img.Base + uint32(img.Units)); err == nil {
		t.Error("jump past stream accepted")
	}
	if err := fe.SetPC(img.EntryUnit); err != nil {
		t.Errorf("entry jump rejected: %v", err)
	}
}

func TestFrontendBranchAbandonsEntry(t *testing.T) {
	// After SetPC, the expansion queue must be dropped: the next fetch
	// comes from the new address, not from a stale entry.
	img, _ := compress(t, "li", codeword.Baseline)
	fe := NewCompressedFrontend(img)
	if err := fe.Reset(img.Base); err != nil {
		t.Fatal(err)
	}
	// Find a multi-instruction codeword and fetch its first word only.
	var entryAddr uint32
	found := false
	for i := 0; i < 5000 && !found; i++ {
		fi, err := fe.Fetch()
		if err != nil {
			t.Fatal(err)
		}
		if !fi.NextOK {
			found = true
			entryAddr = fi.CIA
		}
	}
	if !found {
		t.Skip("no multi-instruction entry found")
	}
	// Mid-entry now; branch to the entry point.
	if err := fe.SetPC(img.EntryUnit); err != nil {
		t.Fatal(err)
	}
	fi, err := fe.Fetch()
	if err != nil {
		t.Fatal(err)
	}
	if fi.CIA != img.EntryUnit {
		t.Fatalf("fetch after SetPC came from %#x (entry was %#x, abandoned codeword at %#x)",
			fi.CIA, img.EntryUnit, entryAddr)
	}
}

func TestFrontendTrafficAccounting(t *testing.T) {
	// Walking the whole stream must charge exactly one access per item
	// and (approximately) the stream's bytes in total.
	img, _ := compress(t, "compress", codeword.Baseline)
	fe := NewCompressedFrontend(img)
	if err := fe.Reset(img.Base); err != nil {
		t.Fatal(err)
	}
	want, _ := img.Decompress()
	bytes := 0
	accesses := 0
	for n := 0; n < len(want); n++ {
		fi, err := fe.Fetch()
		if err != nil {
			t.Fatal(err)
		}
		if fi.MemBytes > 0 {
			accesses++
			bytes += fi.MemBytes
		}
	}
	if accesses != img.Stats.Items {
		t.Fatalf("%d accesses for %d items", accesses, img.Stats.Items)
	}
	if bytes != img.StreamBytes {
		t.Fatalf("charged %d bytes, stream is %d", bytes, img.StreamBytes)
	}
}

func TestFrontendDictInMemoryAccounting(t *testing.T) {
	img, _ := compress(t, "compress", codeword.Nibble)
	fe := NewCompressedFrontend(img)
	fe.SetDictInMemory(0x0080_0000)
	if err := fe.Reset(img.Base); err != nil {
		t.Fatal(err)
	}
	want, _ := img.Decompress()
	dictAccesses := 0
	for n := 0; n < len(want); n++ {
		fi, err := fe.Fetch()
		if err != nil {
			t.Fatal(err)
		}
		if fi.MemBytes2 > 0 {
			if fi.MemAddr2 < 0x0080_0000 {
				t.Fatalf("dictionary access below base: %#x", fi.MemAddr2)
			}
			dictAccesses++
		}
		if !fi.NextOK && fi.MemBytes == 0 && fi.MemBytes2 == 0 {
			t.Fatal("mid-entry fetch free despite memory-resident dictionary")
		}
	}
	// Every expanded instruction beyond... at minimum, the codeword count
	// of first-words must have charged dictionary accesses.
	if dictAccesses < img.Stats.CodewordItems {
		t.Fatalf("only %d dictionary accesses for %d codewords", dictAccesses, img.Stats.CodewordItems)
	}
}

// TestVerifyCatchesUnitCorruption: flipping the contents of any single
// stream unit must be detected by Verify (or fail decode outright).
func TestVerifyCatchesUnitCorruption(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []codeword.Scheme{codeword.Baseline, codeword.Nibble} {
		img, err := Compress(p.Clone(), Options{Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(p, img); err != nil {
			t.Fatal(err)
		}
		f := func(unitRaw uint32, flipRaw uint8) bool {
			unit := int(unitRaw) % img.Units
			flip := byte(flipRaw%15) + 1 // nonzero nibble/byte flip
			mutate(img, scheme, unit, flip)
			defer mutate(img, scheme, unit, flip) // restore
			return Verify(p, img) != nil
		}
		cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(17))}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%v: corruption survived verification: %v", scheme, err)
		}
	}
}

// mutate XORs a unit's bits in place, driven by the scheme's unit width
// (sub-byte units flip the addressed nibble; byte-multiple units flip
// their first byte).
func mutate(img *Image, scheme codeword.Scheme, unit int, flip byte) {
	if scheme.UnitBits() < 8 {
		b := unit / 2
		if unit%2 == 0 {
			img.Stream[b] ^= flip << 4
		} else {
			img.Stream[b] ^= flip & 0xF
		}
		return
	}
	bytesPer := scheme.UnitBits() / 8
	img.Stream[unit*bytesPer] ^= flip
}

func TestDecompressOnTruncatedStream(t *testing.T) {
	img, _ := compress(t, "compress", codeword.Nibble)
	img.Stream = img.Stream[:len(img.Stream)/2]
	if _, err := img.Decompress(); err == nil {
		t.Fatal("truncated stream decompressed")
	}
}

func TestStubRegisterIsScratch(t *testing.T) {
	// The far-branch stub clobbers r12; confirm the synthetic compiler
	// never holds r12 live across basic-block boundaries by checking that
	// no generated program reads r12 before writing it within a block.
	p, err := synth.Generate("gcc")
	if err != nil {
		t.Fatal(err)
	}
	an, err := program.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range an.Blocks() {
		written := false
		for i := blk.Start; i < blk.End; i++ {
			inst := ppc.Decode(p.Text[i])
			reads, writes := ppc.RegUses(inst)
			if !written && reads.Has(12) {
				// r12 read before any write in this block would make it
				// live-in, which the stub assumption forbids.
				t.Fatalf("word %d (%s) reads r12 live-in to its block", i, inst)
			}
			if writes.Has(12) {
				written = true
			}
		}
	}
}

package core

import (
	"fmt"

	"repro/internal/guestprof"
)

// GuestSymTab builds the symbol table that symbolizes a compressed run in
// native terms. Function names and boundaries come from the original
// program's symbols (preserved on the image at compress time), and every
// compressed-space PC is translated through the image's address map before
// resolution — so a profile of the compressed image attributes cycles to
// the same function names as a native run of the same program, and the two
// profiles diff directly.
func (img *Image) GuestSymTab() (*guestprof.SymTab, error) {
	m, err := img.AddrMap()
	if err != nil {
		return nil, err
	}
	if len(img.OrigSymbols) == 0 {
		return nil, fmt.Errorf("core: image %s carries no original symbols; cannot symbolize", img.Name)
	}
	funcs := make([]guestprof.Func, len(img.OrigSymbols))
	for i, s := range img.OrigSymbols {
		funcs[i] = guestprof.Func{Name: s.Name, Start: img.TextBase + 4*uint32(s.Word)}
	}
	t := guestprof.NewSymTab(funcs, img.TextBase, img.TextBase+uint32(img.OriginalBytes))
	return t.WithTranslate(m.NativeAddr), nil
}

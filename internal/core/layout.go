package core

import (
	"fmt"

	"repro/internal/codeword"
	"repro/internal/dictionary"
	"repro/internal/ppc"
	"repro/internal/program"
	"repro/internal/sizeaudit"
)

// stub shape: a far conditional branch becomes
//
//	bc   !cond, .+stub     ; skip the stub when the branch falls through
//	lis  r12, hi(target)   ; materialize the absolute unit address
//	ori  r12, r12, lo(target)
//	mtctr r12
//	bctr                   ; bctrl when the original branch linked
//
// Unconditional far branches drop the leading bc. This is the paper's
// "branches requiring larger ranges are modified to load their targets
// through jump tables" fallback, realized with an inline materialization;
// it relies on r12 being a code-generator temporary that is never live
// across basic-block boundaries (true for the synthetic compiler, and the
// kind of compiler cooperation the paper assumes).
const (
	stubRegister  = 12
	condStubLen   = 5 // instructions
	uncondStubLen = 4
)

// stubLen returns the stub length in instructions for a branch word.
func stubLen(w uint32) int {
	if ppc.IsConditional(w) {
		return condStubLen
	}
	return uncondStubLen
}

// canStub reports whether the branch can be rewritten: CTR-decrementing
// branches cannot (the stub clobbers CTR).
func canStub(w uint32) bool {
	i := ppc.Decode(w)
	if i.Op == ppc.OpBc && i.BO&4 == 0 {
		return false
	}
	return true
}

// layoutResult fixes every item's stream position.
type layoutResult struct {
	itemUnit []int       // per item: unit offset
	unitOf   map[int]int // original word index (item start) -> unit offset
	expanded map[int]bool
	units    int
}

// layout assigns unit offsets, iterating until every unexpanded branch
// displacement fits its field. Expansions only grow the program and are
// never revoked, so the iteration terminates.
func layout(p *program.Program, an *program.Analysis, items []dictionary.Item,
	rankOf []int, scheme codeword.Scheme) (*layoutResult, error) {
	lay := &layoutResult{expanded: map[int]bool{}}
	raw := scheme.RawInsnUnits()
	for pass := 0; ; pass++ {
		if pass > len(items)+2 {
			return nil, fmt.Errorf("core: branch layout did not converge")
		}
		lay.itemUnit = make([]int, len(items))
		lay.unitOf = make(map[int]int, len(items))
		u := 0
		for ii, it := range items {
			lay.itemUnit[ii] = u
			lay.unitOf[it.OrigIdx] = u
			switch {
			case it.IsCodeword:
				u += scheme.CodewordUnits(rankOf[it.Entry])
			case lay.expanded[ii]:
				u += stubLen(it.Word) * raw
			default:
				u += raw
			}
		}
		lay.units = u

		changed := false
		for ii, it := range items {
			if it.IsCodeword || lay.expanded[ii] || !ppc.IsRelativeBranch(it.Word) {
				continue
			}
			target, ok := an.Target[it.OrigIdx]
			if !ok {
				return nil, fmt.Errorf("core: branch at word %d has no analyzed target", it.OrigIdx)
			}
			tu, ok := lay.unitOf[target]
			if !ok {
				return nil, fmt.Errorf("core: branch target word %d is not an item start", target)
			}
			field := int32(tu - lay.itemUnit[ii])
			if ppc.FitsField(it.Word, field) {
				continue
			}
			if !canStub(it.Word) {
				return nil, fmt.Errorf("core: CTR-decrementing branch at word %d needs expansion", it.OrigIdx)
			}
			lay.expanded[ii] = true
			changed = true
		}
		if !changed {
			return lay, nil
		}
	}
}

// emit writes the stream, patching branch fields and expanding stubs, and
// fills marks, stats and the byte-provenance audit.
func emit(img *Image, p *program.Program, items []dictionary.Item, rankOf []int, lay *layoutResult, opt Options) error {
	an, err := program.Analyze(p)
	if err != nil {
		return err
	}
	scheme := img.Scheme
	w := codeword.NewWriter(scheme)
	rawBitsPer := scheme.RawInsnUnits() * scheme.UnitBits()
	var stubBits int64
	for ii, it := range items {
		if w.Units() != lay.itemUnit[ii] {
			return fmt.Errorf("core: layout drift at item %d: %d != %d", ii, w.Units(), lay.itemUnit[ii])
		}
		img.Stats.Items++
		switch {
		case it.IsCodeword:
			rank := rankOf[it.Entry]
			if err := w.Codeword(rank); err != nil {
				return err
			}
			img.Marks = append(img.Marks, Mark{Unit: lay.itemUnit[ii], Orig: it.OrigIdx, Kind: MarkCodeword})
			img.Stats.CodewordItems++
			img.Stats.CodewordBits += scheme.CodewordBits(rank)
			img.Stats.EscapeBits += scheme.EscapeBits()
			opt.Audit.AtWord(sizeaudit.Codeword, it.OrigIdx, int64(scheme.CodewordBits(rank)))

		case ppc.IsRelativeBranch(it.Word):
			target := an.Target[it.OrigIdx]
			tu := lay.unitOf[target]
			if lay.expanded[ii] {
				if err := emitStub(w, it.Word, img.Base+uint32(tu), scheme); err != nil {
					return err
				}
				img.Marks = append(img.Marks, Mark{Unit: lay.itemUnit[ii], Orig: it.OrigIdx, Kind: MarkStub})
				img.Stats.StubBranches++
				img.Stats.RawItems += stubLen(it.Word)
				img.Stats.RawBits += stubLen(it.Word) * rawBitsPer
				opt.Audit.AtWord(sizeaudit.Stub, it.OrigIdx, int64(stubLen(it.Word)*rawBitsPer))
				stubBits += int64(stubLen(it.Word) * rawBitsPer)
				break
			}
			field := int32(tu - lay.itemUnit[ii])
			nw, err := ppc.SetField(it.Word, field)
			if err != nil {
				return fmt.Errorf("core: patching branch at word %d: %v", it.OrigIdx, err)
			}
			if err := w.Raw(nw); err != nil {
				return err
			}
			img.Marks = append(img.Marks, Mark{Unit: lay.itemUnit[ii], Orig: it.OrigIdx, Kind: MarkBranch})
			img.Stats.RawItems++
			img.Stats.RawBits += rawBitsPer
			opt.Audit.AtWord(sizeaudit.Raw, it.OrigIdx, int64(rawBitsPer))

		default:
			if err := w.Raw(it.Word); err != nil {
				return err
			}
			img.Marks = append(img.Marks, Mark{Unit: lay.itemUnit[ii], Orig: it.OrigIdx, Kind: MarkRaw})
			img.Stats.RawItems++
			img.Stats.RawBits += rawBitsPer
			opt.Audit.AtWord(sizeaudit.Raw, it.OrigIdx, int64(rawBitsPer))
		}
	}
	if w.Units() != lay.units {
		return fmt.Errorf("core: final layout drift: %d != %d", w.Units(), lay.units)
	}
	img.Stream = w.Bytes()
	img.Units = w.Units()
	img.StreamBytes = w.SizeBytes()
	// Final alignment padding (the nibble scheme's half-byte round-up; zero
	// for byte-granular schemes) completes the stream accounting.
	opt.Audit.Global(sizeaudit.Padding, sizeaudit.PadRow,
		int64(img.StreamBytes*8-img.Units*scheme.UnitBits()))
	// The Liao comparator's codewords model dictionary calls, so its
	// far-branch machinery is call-stub overhead worth a dedicated counter
	// (the paper's §2.4 criticism quantified); mirror the dictionary
	// builder's convention of materializing the counter even at zero.
	if scheme == codeword.Liao {
		opt.Stats.Add("calldict.stub_bytes", stubBits/8)
	}
	return nil
}

// emitStub writes the register-indirect far-branch sequence.
func emitStub(w *codeword.Writer, branch uint32, targetAbs uint32, scheme codeword.Scheme) error {
	i := ppc.Decode(branch)
	if ppc.IsConditional(branch) {
		// Invert the condition sense (BO bit 8) and skip the stub body.
		skip := int32(condStubLen * scheme.RawInsnUnits())
		inv := ppc.Bc(i.BO^8, i.BI, 0)
		nw, err := ppc.SetField(inv, skip)
		if err != nil {
			return err
		}
		if err := w.Raw(nw); err != nil {
			return err
		}
	}
	hi := int32(int16(uint16(targetAbs >> 16)))
	lo := int32(targetAbs & 0xFFFF)
	for _, word := range []uint32{
		ppc.Lis(stubRegister, hi),
		ppc.Ori(stubRegister, stubRegister, lo),
		ppc.Mtctr(stubRegister),
	} {
		if err := w.Raw(word); err != nil {
			return err
		}
	}
	last := ppc.Bctr()
	if i.LK {
		last = ppc.Bctrl()
	}
	return w.Raw(last)
}

package core

import (
	"repro/internal/codeword"
	"repro/internal/machine"
	"repro/internal/ppc"
)

// Predecode returns the image's decoded execution table: one slot per
// stream unit (the compressed PC space addresses every unit, so branches
// may target any offset — each is decoded positionally exactly as
// codeword.Reader.At would), plus the expansion cache holding every
// dictionary entry decoded once. The table is built on first use and
// cached on the image; it reads only immutable image state, so concurrent
// builders race benignly toward identical tables.
func (img *Image) Predecode() *machine.Predecode {
	if pd := img.predecode.Load(); pd != nil {
		return pd
	}
	pd := buildPredecode(img)
	img.predecode.Store(pd)
	return pd
}

func buildPredecode(img *Image) *machine.Predecode {
	pd := &machine.Predecode{
		Base:    img.Base,
		Shift:   0, // unit-addressed: one slot per unit
		Slots:   make([]machine.PredecodedSlot, img.Units),
		Entries: make([]machine.PredecodedEntry, len(img.Entries)),
	}
	for r, e := range img.Entries {
		insts := make([]ppc.Inst, len(e.Words))
		for k, w := range e.Words {
			insts[k] = ppc.Decode(w)
		}
		pd.Entries[r] = machine.PredecodedEntry{Insts: insts, Words: e.Words}
	}
	rdr := codeword.NewReader(img.Scheme, img.Stream, img.Units)
	unitBits := img.Scheme.UnitBits()
	for u := 0; u < img.Units; u++ {
		s := &pd.Slots[u]
		it, err := rdr.At(u)
		if err != nil {
			// Torn or off-end decode at this offset: the slow path owns
			// the exact fault if execution ever lands here.
			s.Fault = true
			continue
		}
		next := img.Base + uint32(u+it.Units)
		memBytes := (it.Units*unitBits + 7) / 8
		if !it.IsCodeword {
			inst := ppc.Decode(it.Word)
			if inst.Op == ppc.OpInvalid {
				s.Fault = true
				continue
			}
			*s = machine.PredecodedSlot{
				Inst: inst, Next: next,
				Rank: -1, MemBytes: uint8(memBytes), EntryLen: 1,
			}
			continue
		}
		words := entryWords(img, it.Rank)
		if words == nil || len(words) > 255 ||
			pd.Entries[it.Rank].Insts[0].Op == ppc.OpInvalid {
			s.Fault = true
			continue
		}
		*s = machine.PredecodedSlot{
			Inst: pd.Entries[it.Rank].Insts[0], Next: next,
			Rank: int32(it.Rank), MemBytes: uint8(memBytes),
			EntryLen: uint8(len(words)),
		}
	}
	return pd
}

// entryWords resolves a codeword rank to its entry, nil when the rank is
// out of range or the entry is empty (both are slow-path faults).
func entryWords(img *Image, rank int) []uint32 {
	if rank < 0 || rank >= len(img.Entries) || len(img.Entries[rank].Words) == 0 {
		return nil
	}
	return img.Entries[rank].Words
}

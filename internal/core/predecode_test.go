package core

import (
	"bytes"
	"testing"

	"repro/internal/codeword"
	"repro/internal/machine"
	"repro/internal/ppc"
)

func TestPredecodeMatchesReader(t *testing.T) {
	// Every slot of the predecoded table must describe exactly what
	// codeword.Reader.At decodes at that unit offset — including interior
	// offsets of multi-unit items, which the compressed PC space can
	// legally address.
	for _, scheme := range []codeword.Scheme{
		codeword.Baseline, codeword.OneByte, codeword.Nibble, codeword.Liao,
	} {
		img, _ := compress(t, "compress", scheme)
		pd := img.Predecode()
		if pd != img.Predecode() {
			t.Fatalf("%v: table not cached on the image", scheme)
		}
		if pd.Base != img.Base || pd.Shift != 0 || len(pd.Slots) != img.Units {
			t.Fatalf("%v: table shape base=%#x shift=%d slots=%d", scheme, pd.Base, pd.Shift, len(pd.Slots))
		}
		rdr := codeword.NewReader(img.Scheme, img.Stream, img.Units)
		unitBits := img.Scheme.UnitBits()
		for u := 0; u < img.Units; u++ {
			s := pd.Slots[u]
			it, err := rdr.At(u)
			if err != nil {
				if !s.Fault {
					t.Fatalf("%v: unit %d: reader faults (%v), slot does not", scheme, u, err)
				}
				continue
			}
			wantNext := img.Base + uint32(u+it.Units)
			wantMem := uint8((it.Units*unitBits + 7) / 8)
			if !it.IsCodeword {
				inst := ppc.Decode(it.Word)
				if inst.Op == ppc.OpInvalid {
					if !s.Fault {
						t.Fatalf("%v: unit %d: invalid raw word not a Fault slot", scheme, u)
					}
					continue
				}
				if s.Fault || s.Inst != inst || s.Next != wantNext ||
					s.Rank != -1 || s.EntryLen != 1 || s.MemBytes != wantMem {
					t.Fatalf("%v: unit %d: raw slot %+v, item %+v", scheme, u, s, it)
				}
				continue
			}
			if it.Rank >= len(img.Entries) || len(img.Entries[it.Rank].Words) == 0 {
				// A torn decode can read a rank the dictionary does not
				// have; the slow path owns that fault.
				if !s.Fault {
					t.Fatalf("%v: unit %d: rank %d beyond dictionary not a Fault slot", scheme, u, it.Rank)
				}
				continue
			}
			words := img.Entries[it.Rank].Words
			if s.Fault {
				t.Fatalf("%v: unit %d: decodable codeword marked Fault", scheme, u)
			}
			if s.Rank != int32(it.Rank) || int(s.EntryLen) != len(words) ||
				s.Next != wantNext || s.MemBytes != wantMem || s.Inst != ppc.Decode(words[0]) {
				t.Fatalf("%v: unit %d: codeword slot %+v, item %+v", scheme, u, s, it)
			}
			e := pd.Entries[it.Rank]
			if len(e.Insts) != len(words) {
				t.Fatalf("%v: entry %d cache holds %d insts for %d words", scheme, it.Rank, len(e.Insts), len(words))
			}
			for k, w := range words {
				if e.Words[k] != w || e.Insts[k] != ppc.Decode(w) {
					t.Fatalf("%v: entry %d word %d cached wrong", scheme, it.Rank, k)
				}
			}
		}
	}
}

func TestFastSlowParityCompressed(t *testing.T) {
	// A bare compressed machine (fused fast loop) and a hooked one
	// (instrumented Step path) over the same image must agree on
	// everything the architecture defines, with expansion exercised.
	for _, scheme := range []codeword.Scheme{codeword.Baseline, codeword.Nibble} {
		img, _ := compress(t, "compress", scheme)
		fast, err := NewMachine(img)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := NewMachine(img)
		if err != nil {
			t.Fatal(err)
		}
		var hooked int64
		slow.TraceStep = func(machine.StepInfo) { hooked++ }
		fs, ferr := fast.Run(50_000_000)
		ss, serr := slow.Run(50_000_000)
		if ferr != nil || serr != nil {
			t.Fatalf("%v: run errors: fast %v, slow %v", scheme, ferr, serr)
		}
		if fs != ss {
			t.Fatalf("%v: status fast %d, slow %d", scheme, fs, ss)
		}
		if !bytes.Equal(fast.Output(), slow.Output()) {
			t.Fatalf("%v: outputs differ (%d vs %d bytes)", scheme, len(fast.Output()), len(slow.Output()))
		}
		if fast.Stats != slow.Stats {
			t.Fatalf("%v: stats fast %+v, slow %+v", scheme, fast.Stats, slow.Stats)
		}
		if hooked != slow.Stats.Steps || hooked == 0 {
			t.Fatalf("%v: TraceStep fired %d times for %d steps", scheme, hooked, slow.Stats.Steps)
		}
		if fast.Stats.Expanded == 0 {
			t.Fatalf("%v: no dictionary expansion exercised", scheme)
		}
	}
}

func TestMidItemJumpParity(t *testing.T) {
	// Jump into the interior of a multi-unit item: SetPC accepts any
	// in-range unit address, and what lives there is a torn decode the
	// slow path resolves positionally. The fast path must produce the
	// byte-identical outcome, whether that is an error or a (garbage but
	// deterministic) execution.
	img, _ := compress(t, "compress", codeword.Nibble)
	rdr := codeword.NewReader(img.Scheme, img.Stream, img.Units)
	mid := uint32(0)
	found := false
	for u := 0; u < img.Units; {
		it, err := rdr.At(u)
		if err != nil {
			break
		}
		if it.Units > 1 {
			mid = img.Base + uint32(u) + 1
			found = true
			break
		}
		u += it.Units
	}
	if !found {
		t.Skip("no multi-unit item in the stream")
	}
	type outcome struct {
		status int32
		errStr string
		out    string
		stats  machine.Stats
	}
	run := func(hook bool) outcome {
		cpu, err := NewMachine(img)
		if err != nil {
			t.Fatal(err)
		}
		if hook {
			cpu.TraceExec = func(uint32, uint32) {}
		}
		if err := cpu.Frontend().SetPC(mid); err != nil {
			t.Fatalf("mid-item SetPC rejected: %v", err)
		}
		st, err := cpu.Run(5000)
		o := outcome{status: st, out: string(cpu.Output()), stats: cpu.Stats}
		if err != nil {
			o.errStr = err.Error()
		}
		return o
	}
	if fast, slow := run(false), run(true); fast != slow {
		t.Fatalf("mid-item divergence at %#x:\nfast %+v\nslow %+v", mid, fast, slow)
	}
}

func TestPredecodeUnavailable(t *testing.T) {
	img, _ := compress(t, "compress", codeword.Nibble)
	fe := NewCompressedFrontend(img)
	if fe.Predecode() == nil {
		t.Fatal("plain frontend refused to predecode")
	}
	fe.SetDictInMemory(0x0080_0000)
	if fe.Predecode() != nil {
		t.Fatal("memory-resident dictionary must force the instrumented path")
	}

	// The refusal is not silent: a whole Run on such a machine lands in
	// the frontend_refused bail counter with zero fast-path coverage.
	cpu, err := NewMachineDictInMemory(img, 0x0080_0000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if got := cpu.Fast.Bails[machine.BailFrontendRefused]; got != 1 {
		t.Fatalf("frontend_refused bail %d after a refused run (bails: %s)", got, cpu.Fast.BailSummary())
	}
	if cpu.Fast.Steps != 0 || cpu.Fast.Coverage(cpu.Stats.Steps) != 0 {
		t.Fatalf("refused run reports fast-path work: %+v", cpu.Fast)
	}

	// Mid-expansion, the queue holds state a table restart would drop.
	// A fetch-walk index cannot predict where the machine parks: a taken
	// branch as the budgeted instruction drops the queue via SetPC. So
	// budget an instrumented machine out one step at a time until ITS OWN
	// frontend refuses the table.
	mcpu, err := NewMachine(img)
	if err != nil {
		t.Fatal(err)
	}
	mcpu.TraceExec = func(uint32, uint32) {}
	mfe := mcpu.Frontend().(machine.PredecodedFrontend)
	parked := false
	for k := int64(1); k <= 5000; k++ {
		if _, err := mcpu.Run(k); err == nil {
			break // program exited before parking mid-expansion
		}
		if mfe.Predecode() == nil {
			parked = true
			break
		}
	}
	if !parked {
		t.Skip("no step budget parks this program mid-expansion")
	}
	// Run-level visibility: detach the hook, and the resumed Run is
	// refused the table — counted, not silent.
	mcpu.TraceExec = nil
	if _, err := mcpu.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if got := mcpu.Fast.Bails[machine.BailFrontendRefused]; got != 1 {
		t.Fatalf("frontend_refused bail %d after mid-expansion resume (bails: %s)",
			got, mcpu.Fast.BailSummary())
	}
	if mcpu.Fast.Steps != 0 {
		t.Fatalf("mid-expansion resume reports fast-path steps: %+v", mcpu.Fast)
	}
}

package core

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/guestprof"
	"repro/internal/machine"
	"repro/internal/ppc"
	"repro/internal/sizeaudit"
	"repro/internal/stats"
)

// EntryHeat is one dictionary entry's execution profile: how often the
// machine began expanding it, alongside the static facts from compression
// (length, occurrences replaced, disassembly).
type EntryHeat struct {
	Rank  int      `json:"rank"`
	Count int64    `json:"count"` // expansions begun during execution
	Len   int      `json:"len"`   // instructions in the entry
	Uses  int      `json:"uses"`  // static occurrences replaced at compress time
	Insns []string `json:"insns"` // disassembled entry instructions
}

// CacheProfile is the I-cache's end-of-run totals plus the sampled
// hit/miss time series (empty when no sampler was attached).
type CacheProfile struct {
	Accesses int64               `json:"accesses"`
	Hits     int64               `json:"hits"`
	Misses   int64               `json:"misses"`
	MissRate float64             `json:"miss_rate"`
	Curve    []cache.SamplePoint `json:"curve,omitempty"`
}

// FastPathProfile is the fused-loop telemetry section of a RunProfile:
// how much of the run the fast path supplied and why it exited (or was
// refused), from the machine's always-on FastStats.
type FastPathProfile struct {
	Steps     int64            `json:"steps"`      // instructions the fused loop executed
	SlowSteps int64            `json:"slow_steps"` // instructions from the instrumented path
	Coverage  float64          `json:"coverage"`   // Steps over total steps
	Epochs    int64            `json:"epochs,omitempty"`
	EpochHist *stats.Histogram `json:"epoch_hist,omitempty"` // epoch lengths (sampled runs)
	Bails     map[string]int64 `json:"bails,omitempty"`      // exits/refusals by reason
}

// RunProfile is the per-run execution profile behind ccrun -profile: the
// machine's counters, fast-path coverage and bail accounting, the
// dictionary-entry heat map (hottest first), the expansion-length
// histogram and, when a cache was simulated, its miss curve. All fields
// are JSON-serializable.
type RunProfile struct {
	Name          string           `json:"name"`
	Steps         int64            `json:"steps"`
	Expanded      int64            `json:"expanded"`
	MemFetches    int64            `json:"mem_fetches"`
	FetchedBytes  int64            `json:"fetched_bytes"`
	Fastpath      FastPathProfile  `json:"fastpath"`
	HotEntries    []EntryHeat      `json:"hot_entries,omitempty"`
	ExpansionHist *stats.Histogram `json:"expansion_hist,omitempty"`
	Cache         *CacheProfile    `json:"cache,omitempty"`

	// Guest is the symbolized per-function guest profile, present when a
	// guestprof.Profiler was attached to the run (ccrun -guestprof).
	Guest *guestprof.Profile `json:"guest,omitempty"`

	// Size is the static byte-provenance audit of the image being run,
	// present when requested (ccrun -sizeaudit) and the image carries marks.
	Size *sizeaudit.Audit `json:"size,omitempty"`
}

// HotEntriesTotal sums the heat map's expansion counts.
func (p RunProfile) HotEntriesTotal() int64 {
	var n int64
	for _, e := range p.HotEntries {
		n += e.Count
	}
	return n
}

// CollectRunProfile assembles a RunProfile after cpu.Run completed. img
// may be nil (uncompressed run: no heat map or expansion histogram), as
// may ic and curve (no cache section) — the profile simply omits those
// sections. snap should be the snapshot of the recorder attached as
// cpu.Record; its machine.expansion_len histogram becomes ExpansionHist.
func CollectRunProfile(img *Image, cpu *machine.CPU, snap stats.Snapshot, ic *cache.Cache, curve []cache.SamplePoint) RunProfile {
	p := RunProfile{
		Steps:        cpu.Stats.Steps,
		Expanded:     cpu.Stats.Expanded,
		MemFetches:   cpu.Stats.MemFetches,
		FetchedBytes: cpu.Stats.FetchedBytes,
		Fastpath: FastPathProfile{
			Steps:     cpu.Fast.Steps,
			SlowSteps: cpu.Stats.Steps - cpu.Fast.Steps,
			Coverage:  cpu.Fast.Coverage(cpu.Stats.Steps),
			Epochs:    cpu.Fast.Epochs,
			Bails:     cpu.Fast.BailMap(),
		},
	}
	if h, ok := snap.Hists["machine.fastpath.epoch_len"]; ok {
		hc := h
		p.Fastpath.EpochHist = &hc
	}
	if img != nil {
		p.Name = img.Name
		for rank, e := range img.Entries {
			var n int64
			if rank < len(cpu.Heat) {
				n = cpu.Heat[rank]
			}
			if n == 0 {
				continue
			}
			insns := make([]string, len(e.Words))
			for i, w := range e.Words {
				insns[i] = ppc.Disassemble(w)
			}
			p.HotEntries = append(p.HotEntries, EntryHeat{
				Rank:  rank,
				Count: n,
				Len:   len(e.Words),
				Uses:  e.Uses,
				Insns: insns,
			})
		}
		sort.SliceStable(p.HotEntries, func(i, j int) bool {
			return p.HotEntries[i].Count > p.HotEntries[j].Count
		})
	}
	if h, ok := snap.Hists["machine.expansion_len"]; ok {
		hc := h
		p.ExpansionHist = &hc
	}
	if ic != nil {
		p.Cache = &CacheProfile{
			Accesses: ic.Stats.Accesses,
			Hits:     ic.Stats.Hits(),
			Misses:   ic.Stats.Misses,
			MissRate: ic.Stats.MissRate(),
			Curve:    curve,
		}
	}
	return p
}

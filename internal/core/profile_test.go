package core

import (
	"encoding/json"
	"testing"

	"repro/internal/cache"
	"repro/internal/codeword"
	"repro/internal/stats"
	"repro/internal/synth"
)

// TestCollectRunProfile compresses and runs a synthetic benchmark with
// full instrumentation attached and checks the profile carries a
// non-empty heat map, expansion histogram and cache miss curve.
func TestCollectRunProfile(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	img, err := Compress(p.Clone(), Options{Scheme: codeword.Nibble})
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Entries) == 0 {
		t.Fatal("compression produced no dictionary entries")
	}
	cpu, err := NewMachine(img)
	if err != nil {
		t.Fatal(err)
	}
	rec := stats.New()
	cpu.Record = rec
	cpu.EnableHeat(len(img.Entries))
	ic, err := cache.New(cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	smp, err := cache.NewSampler(ic, 256)
	if err != nil {
		t.Fatal(err)
	}
	cpu.TraceFetch = smp.Access
	if _, err := cpu.Run(10_000_000); err != nil {
		t.Fatal(err)
	}

	prof := CollectRunProfile(img, cpu, rec.Snapshot(), ic, smp.Points)
	if prof.Name != img.Name {
		t.Fatalf("Name = %q, want %q", prof.Name, img.Name)
	}
	if prof.Steps == 0 || prof.Expanded == 0 {
		t.Fatalf("empty machine counters: steps=%d expanded=%d", prof.Steps, prof.Expanded)
	}
	if len(prof.HotEntries) == 0 {
		t.Fatal("empty dictionary-entry heat map")
	}
	for i, e := range prof.HotEntries {
		if e.Count <= 0 {
			t.Fatalf("HotEntries[%d] has count %d", i, e.Count)
		}
		if len(e.Insns) != e.Len {
			t.Fatalf("HotEntries[%d]: %d insns for len %d", i, len(e.Insns), e.Len)
		}
		if i > 0 && prof.HotEntries[i-1].Count < e.Count {
			t.Fatal("heat map not sorted hottest-first")
		}
	}
	if prof.ExpansionHist == nil || prof.ExpansionHist.Count == 0 {
		t.Fatal("empty expansion histogram")
	}
	if prof.ExpansionHist.Count != prof.HotEntriesTotal() {
		t.Fatalf("expansion histogram count %d != heat map total %d",
			prof.ExpansionHist.Count, prof.HotEntriesTotal())
	}
	if prof.Cache == nil || prof.Cache.Accesses == 0 {
		t.Fatal("empty cache profile")
	}
	if prof.Cache.Hits+prof.Cache.Misses != prof.Cache.Accesses {
		t.Fatalf("cache accounting: %d hits + %d misses != %d accesses",
			prof.Cache.Hits, prof.Cache.Misses, prof.Cache.Accesses)
	}
	if len(prof.Cache.Curve) == 0 {
		t.Fatal("empty cache miss curve")
	}

	// The profile must survive a JSON round trip (it is ccrun's output).
	raw, err := json.Marshal(prof)
	if err != nil {
		t.Fatal(err)
	}
	var back RunProfile
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Steps != prof.Steps || len(back.HotEntries) != len(prof.HotEntries) {
		t.Fatal("profile changed across JSON round trip")
	}
}

// TestCollectRunProfileNilSections checks the collector tolerates missing
// instrumentation: no image, no cache, empty snapshot.
func TestCollectRunProfileNilSections(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	img, err := Compress(p.Clone(), Options{Scheme: codeword.Nibble})
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewMachine(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	prof := CollectRunProfile(nil, cpu, stats.Snapshot{}, nil, nil)
	if prof.Steps == 0 {
		t.Fatal("machine counters not collected")
	}
	if prof.HotEntries != nil || prof.ExpansionHist != nil || prof.Cache != nil {
		t.Fatal("optional sections present without their inputs")
	}
	// With an image but no heat map enabled, entries all count zero and
	// the heat map stays empty rather than listing cold entries.
	prof = CollectRunProfile(img, cpu, stats.Snapshot{}, nil, nil)
	if len(prof.HotEntries) != 0 {
		t.Fatalf("heat map has %d entries without EnableHeat", len(prof.HotEntries))
	}
}

package core

import (
	"fmt"

	"repro/internal/codeword"
	"repro/internal/sizeaudit"
)

// SizeAudit reconstructs the byte-provenance audit of a compressed image
// from its sideband marks — no recompression needed, so it works on a .ppz
// read back from disk. Each mark's stream extent (to the next mark, or the
// stream end) is exactly the item's encoded size in units, classified by
// the mark's kind and attributed to the original function containing the
// item's first instruction; stream padding, dictionary storage and the
// header complete the accounting. The result is bit-identical to the audit
// an Options.Audit emitter collects during Compress (asserted in tests),
// and always satisfies the conservation invariant Check verifies.
func (img *Image) SizeAudit() (*sizeaudit.Audit, error) {
	if len(img.Marks) == 0 {
		return nil, fmt.Errorf("core: image %s carries no marks; cannot audit", img.Name)
	}
	if len(img.OrigSymbols) == 0 {
		return nil, fmt.Errorf("core: image %s carries no original symbols; cannot audit", img.Name)
	}
	funcs := make([]sizeaudit.Func, len(img.OrigSymbols))
	for i, s := range img.OrigSymbols {
		funcs[i] = sizeaudit.Func{Name: s.Name, Start: 4 * uint32(s.Word)}
	}
	em := sizeaudit.NewEmitter(funcs, uint32(img.OriginalBytes))
	ub := img.Scheme.UnitBits()
	for i, m := range img.Marks {
		end := img.Units
		if i+1 < len(img.Marks) {
			end = img.Marks[i+1].Unit
		}
		if end < m.Unit {
			return nil, fmt.Errorf("core: image %s: marks not monotone at item %d", img.Name, i)
		}
		var cl sizeaudit.Class
		switch m.Kind {
		case MarkCodeword:
			cl = sizeaudit.Codeword
		case MarkStub:
			cl = sizeaudit.Stub
		default: // MarkRaw, MarkBranch
			cl = sizeaudit.Raw
		}
		em.AtWord(cl, m.Orig, int64(end-m.Unit)*int64(ub))
	}
	em.Global(sizeaudit.Padding, sizeaudit.PadRow, int64(img.StreamBytes*8-img.Units*ub))
	em.Global(sizeaudit.Dict, sizeaudit.DictRow,
		int64(img.DictionaryBytes-codeword.DictHeaderBytes)*8)
	em.Global(sizeaudit.Header, sizeaudit.HeaderRow, int64(codeword.DictHeaderBytes)*8)
	a := em.Finish(img.Name, img.Scheme.String(), img.CompressedBytes(), img.OriginalBytes)
	if err := a.Check(); err != nil {
		return nil, err
	}
	return a, nil
}

package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/codeword"
	"repro/internal/ppc"
	"repro/internal/program"
)

// Decompress expands the whole stream back into a flat instruction
// sequence: codewords expand through the dictionary, everything else
// appears verbatim (with branch fields holding unit displacements and far
// branches as stubs). Used by the disassembler and by sanity checks.
func (img *Image) Decompress() ([]uint32, error) {
	rdr := codeword.NewReader(img.Scheme, img.Stream, img.Units)
	var out []uint32
	for u := 0; u < img.Units; {
		it, err := rdr.At(u)
		if err != nil {
			return nil, err
		}
		if it.IsCodeword {
			if it.Rank >= len(img.Entries) {
				return nil, fmt.Errorf("core: codeword rank %d exceeds dictionary size %d", it.Rank, len(img.Entries))
			}
			out = append(out, img.Entries[it.Rank].Words...)
		} else {
			out = append(out, it.Word)
		}
		u += it.Units
	}
	return out, nil
}

// Verify structurally checks an image against the original program:
//
//  1. the marks tile the stream exactly, in original program order;
//  2. every codeword expands to the original instruction subsequence;
//  3. every raw instruction matches the original word;
//  4. every patched branch preserves all non-offset bits and its unit
//     displacement resolves to the item holding the original target;
//  5. every stub matches the expansion template and materializes the
//     absolute unit address of the original target;
//  6. every jump-table slot points at the item of its original target;
//  7. the entry point maps to the original entry.
//
// Together with behavioral equivalence (running both images on the
// simulator), this is the evidence that compression is semantics-
// preserving.
func Verify(p *program.Program, img *Image) error {
	an, err := program.Analyze(p)
	if err != nil {
		return err
	}
	rdr := codeword.NewReader(img.Scheme, img.Stream, img.Units)

	// Pass 1: tiling and per-item equivalence.
	nextOrig := 0
	nextUnit := 0
	for mi, m := range img.Marks {
		if m.Unit != nextUnit {
			return fmt.Errorf("core: mark %d at unit %d, expected %d (stream not tiled)", mi, m.Unit, nextUnit)
		}
		if m.Orig != nextOrig {
			return fmt.Errorf("core: mark %d covers word %d, expected %d (program order broken)", mi, m.Orig, nextOrig)
		}
		it, err := rdr.At(m.Unit)
		if err != nil {
			return err
		}
		switch m.Kind {
		case MarkCodeword:
			if !it.IsCodeword {
				return fmt.Errorf("core: mark %d: expected codeword", mi)
			}
			if it.Rank >= len(img.Entries) {
				return fmt.Errorf("core: mark %d: codeword rank %d exceeds dictionary size %d",
					mi, it.Rank, len(img.Entries))
			}
			words := img.Entries[it.Rank].Words
			for j, w := range words {
				if p.Text[m.Orig+j] != w {
					return fmt.Errorf("core: entry %d word %d mismatches original at %d", it.Rank, j, m.Orig+j)
				}
			}
			nextOrig += len(words)
			nextUnit += it.Units

		case MarkRaw:
			if it.IsCodeword || it.Word != p.Text[m.Orig] {
				return fmt.Errorf("core: raw word at unit %d differs from original %d", m.Unit, m.Orig)
			}
			nextOrig++
			nextUnit += it.Units

		case MarkBranch:
			if it.IsCodeword {
				return fmt.Errorf("core: mark %d: expected branch", mi)
			}
			orig := p.Text[m.Orig]
			if it.Word&^branchFieldMask(orig) != orig&^branchFieldMask(orig) {
				return fmt.Errorf("core: branch at %d corrupted outside offset field", m.Orig)
			}
			field, _, ok := ppc.FieldValue(it.Word)
			if !ok {
				return fmt.Errorf("core: branch mark %d does not decode as a relative branch", mi)
			}
			tm, ok := img.markByUnit(img.Base + uint32(m.Unit) + uint32(field))
			if !ok {
				return fmt.Errorf("core: branch at %d targets unit %d: not an item", m.Orig, m.Unit+int(field))
			}
			if tm.Orig != an.Target[m.Orig] {
				return fmt.Errorf("core: branch at %d retargeted: word %d instead of %d", m.Orig, tm.Orig, an.Target[m.Orig])
			}
			nextOrig++
			nextUnit += it.Units

		case MarkStub:
			units, err := verifyStub(p, img, an, rdr, m)
			if err != nil {
				return err
			}
			nextOrig++
			nextUnit += units
		}
	}
	if nextOrig != len(p.Text) {
		return fmt.Errorf("core: marks cover %d of %d original words", nextOrig, len(p.Text))
	}
	if nextUnit != img.Units {
		return fmt.Errorf("core: marks cover %d of %d stream units", nextUnit, img.Units)
	}

	// Pass 2: jump tables.
	jts, err := p.JumpTableTargets()
	if err != nil {
		return err
	}
	for i, slot := range img.JumpTableSlots {
		v := binary.BigEndian.Uint32(img.Data[slot:])
		tm, ok := img.markByUnit(v)
		if !ok {
			return fmt.Errorf("core: jump table slot %d points at %#x: not an item", slot, v)
		}
		if tm.Orig != jts[i] {
			return fmt.Errorf("core: jump table slot %d retargeted: word %d instead of %d", slot, tm.Orig, jts[i])
		}
	}

	// Pass 3: entry point.
	em, ok := img.markByUnit(img.EntryUnit)
	if !ok || em.Orig != p.Entry {
		return fmt.Errorf("core: entry unit %#x does not map to original entry %d", img.EntryUnit, p.Entry)
	}
	return nil
}

// branchFieldMask returns the displacement-field mask of a branch word.
func branchFieldMask(w uint32) uint32 {
	switch ppc.PrimaryOpcode(w) {
	case 18: // I-form
		return 0x03FFFFFC
	case 16: // B-form
		return 0x0000FFFC
	}
	return 0
}

// verifyStub checks the far-branch expansion and returns its stream units.
func verifyStub(p *program.Program, img *Image, an *program.Analysis, rdr *codeword.Reader, m Mark) (int, error) {
	orig := p.Text[m.Orig]
	want := an.Target[m.Orig]
	n := stubLen(orig)
	words := make([]uint32, 0, n)
	u := m.Unit
	for i := 0; i < n; i++ {
		it, err := rdr.At(u)
		if err != nil {
			return 0, err
		}
		if it.IsCodeword {
			return 0, fmt.Errorf("core: stub at unit %d contains a codeword", m.Unit)
		}
		words = append(words, it.Word)
		u += it.Units
	}
	idx := 0
	if ppc.IsConditional(orig) {
		inv := ppc.Decode(words[0])
		o := ppc.Decode(orig)
		if inv.Op != ppc.OpBc || inv.BO != o.BO^8 || inv.BI != o.BI {
			return 0, fmt.Errorf("core: stub at %d has wrong guard", m.Orig)
		}
		idx = 1
	}
	lis := ppc.Decode(words[idx])
	ori := ppc.Decode(words[idx+1])
	mtctr := ppc.Decode(words[idx+2])
	last := ppc.Decode(words[idx+3])
	if lis.Op != ppc.OpAddis || ori.Op != ppc.OpOri || mtctr.Op != ppc.OpMtspr || mtctr.SPR != ppc.SprCTR {
		return 0, fmt.Errorf("core: stub at %d malformed", m.Orig)
	}
	addr := uint32(lis.Imm)<<16 | uint32(ori.Imm)
	tm, ok := img.markByUnit(addr)
	if !ok || tm.Orig != want {
		return 0, fmt.Errorf("core: stub at %d targets %#x (word %d), want word %d", m.Orig, addr, tm.Orig, want)
	}
	if last.Op != ppc.OpBcctr || last.LK != ppc.Decode(orig).LK {
		return 0, fmt.Errorf("core: stub at %d has wrong transfer", m.Orig)
	}
	return u - m.Unit, nil
}

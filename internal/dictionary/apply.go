package dictionary

import (
	"fmt"
)

// Apply rewrites text against a fixed, pre-built dictionary instead of
// constructing one: at each position the longest matching entry is
// replaced, subject to the same compressibility and basic-block rules as
// Build. This is the deployment mode where a dictionary lives in ROM and
// is shared by several programs (or by future versions of one program).
//
// The result's Entries are the input entries in the same order — ranks
// must stay stable across every program sharing the dictionary — with
// Uses recounted for this text (possibly zero).
func Apply(text []uint32, entries []Entry, cfg Config) (*Result, error) {
	n := len(text)
	if len(cfg.Compressible) != n || len(cfg.Leader) != n {
		return nil, fmt.Errorf("dictionary: marker slices must match text length %d", n)
	}

	// Index entries by first word, longest first.
	type cand struct {
		idx int
		len int
	}
	byFirst := make(map[uint32][]cand)
	for i, e := range entries {
		if len(e.Words) == 0 {
			return nil, fmt.Errorf("dictionary: entry %d is empty", i)
		}
		byFirst[e.Words[0]] = append(byFirst[e.Words[0]], cand{idx: i, len: len(e.Words)})
	}
	for _, cs := range byFirst {
		for i := 1; i < len(cs); i++ {
			for j := i; j > 0 && cs[j].len > cs[j-1].len; j-- {
				cs[j], cs[j-1] = cs[j-1], cs[j]
			}
		}
	}

	res := &Result{Entries: make([]Entry, len(entries))}
	for i, e := range entries {
		res.Entries[i] = Entry{Words: e.Words}
	}

	matches := func(pos int, e Entry) bool {
		if pos+len(e.Words) > n {
			return false
		}
		for j, w := range e.Words {
			if text[pos+j] != w || !cfg.Compressible[pos+j] {
				return false
			}
			if j > 0 && cfg.Leader[pos+j] {
				return false
			}
		}
		return true
	}

	for pos := 0; pos < n; {
		replaced := false
		if cfg.Compressible[pos] {
			for _, c := range byFirst[text[pos]] {
				if matches(pos, entries[c.idx]) {
					res.Items = append(res.Items, Item{IsCodeword: true, Entry: c.idx, OrigIdx: pos})
					res.Entries[c.idx].Uses++
					res.CoveredInsns += c.len
					pos += c.len
					replaced = true
					break
				}
			}
		}
		if !replaced {
			res.Items = append(res.Items, Item{Word: text[pos], OrigIdx: pos})
			pos++
		}
	}
	return res, nil
}

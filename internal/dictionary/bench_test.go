package dictionary

// Microbenchmarks of the builder internals over synthetic text with
// controlled redundancy. The corpus-level Build/Compress benchmarks
// (BenchmarkDictionaryBuild, BenchmarkCompressSweep at the repository
// root) are the numbers recorded in BENCH_dictionary.json; these isolate
// enumeration from selection.

import (
	"math/rand"
	"testing"
)

// synthText builds n words from a vocabulary small enough that sequences
// repeat heavily, with sparse leaders — the shape real benchmarks have.
func synthText(n int) (text []uint32, comp, lead []bool) {
	rng := rand.New(rand.NewSource(42))
	text = make([]uint32, n)
	comp = make([]bool, n)
	lead = make([]bool, n)
	for i := 0; i < n; i++ {
		text[i] = 0x38000000 | uint32(rng.Intn(64))
		comp[i] = rng.Intn(12) != 0
		lead[i] = rng.Intn(16) == 0
	}
	if n > 0 {
		lead[0] = true
	}
	return text, comp, lead
}

func benchConfig(comp, lead []bool) Config {
	return Config{
		MaxEntries:        8192,
		MaxEntryLen:       4,
		CodewordBits:      func(int) int { return 16 },
		EntryOverheadBits: 16,
		Compressible:      comp,
		Leader:            lead,
	}
}

func benchBuild(b *testing.B, n int, strat Strategy) {
	text, comp, lead := synthText(n)
	cfg := benchConfig(comp, lead)
	cfg.Strategy = strat
	b.SetBytes(int64(4 * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(text, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildIndexed2k(b *testing.B)    { benchBuild(b, 2_000, Greedy) }
func BenchmarkBuildIndexed20k(b *testing.B)   { benchBuild(b, 20_000, Greedy) }
func BenchmarkBuildReference2k(b *testing.B)  { benchBuild(b, 2_000, GreedyReference) }
func BenchmarkBuildReference20k(b *testing.B) { benchBuild(b, 20_000, GreedyReference) }

func BenchmarkEnumerateIndexed(b *testing.B) {
	text, comp, lead := synthText(20_000)
	cfg := benchConfig(comp, lead)
	b.SetBytes(int64(4 * len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := newIndex(text, cfg)
		if len(ix.cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

func BenchmarkEnumerateReference(b *testing.B) {
	text, comp, lead := synthText(20_000)
	cfg := benchConfig(comp, lead)
	b.SetBytes(int64(4 * len(text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cands := enumerate(text, cfg)
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

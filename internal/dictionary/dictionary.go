// Package dictionary implements the paper's greedy dictionary construction
// (§3.1): enumerate candidate instruction sequences inside basic blocks,
// then repeatedly select the candidate with the largest immediate savings,
// replacing all of its non-overlapping occurrences, until the codeword
// space is exhausted or nothing saves bytes.
//
// Optimal selection is NP-complete [Storer77]; like the paper we are
// greedy. Because a candidate's savings only decreases as other selections
// consume its occurrences (and as codewords get longer with rank), a lazy
// re-evaluation max-heap finds the true maximum each round without
// rescanning every candidate.
//
// Two interchangeable implementations of the greedy policy live here. The
// default (index.go) interns candidates behind a rolling 64-bit hash and
// maintains an occurrence index so selections invalidate only the
// candidates they actually touch; the reference implementation (below)
// is the direct transcription of the paper's algorithm, kept as the
// differential oracle — both must produce byte-identical results on every
// input (enforced by differential and fuzz tests).
package dictionary

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Config parameterizes one dictionary build.
type Config struct {
	// MaxEntries bounds the number of dictionary entries (the codeword
	// space). Zero or negative means unlimited.
	MaxEntries int

	// MaxEntryLen bounds instructions per entry (the paper sweeps 1..8).
	MaxEntryLen int

	// CodewordBits returns the encoded size of the codeword that will
	// represent the rank-th selected entry (rank counts from 0). It must
	// be non-decreasing in rank for the lazy heap to remain exact.
	CodewordBits func(rank int) int

	// EntryOverheadBits is the per-entry serialization overhead charged to
	// the dictionary, beyond the entry's raw instruction bytes.
	EntryOverheadBits int

	// Compressible marks words that may join a dictionary entry. Relative
	// branches are excluded by the compressor (§3.2.1); callers may
	// exclude more.
	Compressible []bool

	// Leader marks basic-block starts. Sequences must lie within a block:
	// they may begin at a leader but never span one, so branches can
	// target codewords but not the middle of an encoded sequence.
	Leader []bool

	// Strategy selects the entry-selection policy; the default is the
	// paper's greedy algorithm.
	Strategy Strategy

	// Stats, when non-nil, receives build observability counters:
	// dict.candidates (sequences enumerated), dict.heap_pops,
	// dict.reevaluations (stale candidates re-queued with refreshed
	// savings), dict.entries (entries selected), and — from the indexed
	// builder — dict.invalidations (occurrences killed by coverage),
	// dict.dirty_skips (heap pops served from an exact cached use count,
	// no occurrence rescan) and dict.hash_collisions (distinct sequences
	// sharing a 64-bit enumeration hash). It also receives the
	// dict.selection_bits histogram: the savings (in bits) of each
	// selected entry at the moment of its selection — the paper's
	// usage-vs-size distribution. Counter values are implementation
	// observability; only the Result is contractual.
	Stats *stats.Recorder

	// Trace, when non-nil, is the parent span under which the build emits
	// its phase spans: dict.enumerate (candidate enumeration),
	// dict.select (the greedy selection loop) and dict.commit (assembling
	// the rewritten item sequence). Like Stats, it never affects the
	// Result.
	Trace *trace.Span

	// degradeHash, set only by tests, collapses the indexed builder's
	// candidate hash to its low byte so the collision chain is exercised
	// constantly. It must never change the produced Result.
	degradeHash bool
}

// Strategy is the dictionary-entry selection policy.
type Strategy uint8

// Selection policies.
const (
	// Greedy re-evaluates savings after every selection (the paper's
	// algorithm, §3.1.1). Implemented by the indexed builder: hash-keyed
	// enumeration, incremental invalidation through an occurrence index,
	// and a dirty-bit lazy heap. Byte-identical to GreedyReference.
	Greedy Strategy = iota

	// StaticOrder ranks candidates once by their initial savings and
	// selects in that fixed order — the ablation baseline showing what
	// greedy's re-evaluation buys.
	StaticOrder

	// GreedyReference is the direct transcription of the paper's greedy
	// algorithm (string-keyed enumeration, full occurrence rescans). It
	// is the differential oracle for Greedy: same output, none of the
	// indexing. Select it to cross-check the indexed builder or to
	// measure what the index buys.
	GreedyReference
)

// Entry is one selected dictionary entry.
type Entry struct {
	Words []uint32
	// Uses is the number of occurrences replaced in the program.
	Uses int
}

// SizeBytes is the raw size of the entry's instructions.
func (e Entry) SizeBytes() int { return 4 * len(e.Words) }

// Item is one element of the rewritten program: either an uncompressed
// instruction or a codeword referencing a dictionary entry.
type Item struct {
	IsCodeword bool
	Entry      int    // valid when IsCodeword
	Word       uint32 // valid when !IsCodeword
	OrigIdx    int    // original text word index (sequence start for codewords)
}

// Result is the outcome of a build.
type Result struct {
	Entries []Entry
	Items   []Item

	// CoveredInsns counts original instructions absorbed into codewords.
	CoveredInsns int
}

// Build runs the selected algorithm over the program text.
func Build(text []uint32, cfg Config) (*Result, error) {
	n := len(text)
	if len(cfg.Compressible) != n || len(cfg.Leader) != n {
		return nil, fmt.Errorf("dictionary: marker slices must match text length %d", n)
	}
	if cfg.MaxEntryLen < 1 {
		return nil, fmt.Errorf("dictionary: MaxEntryLen %d", cfg.MaxEntryLen)
	}
	if cfg.CodewordBits == nil {
		return nil, fmt.Errorf("dictionary: CodewordBits required")
	}
	maxEntries := cfg.MaxEntries
	if maxEntries <= 0 {
		maxEntries = int(^uint(0) >> 1)
	}
	switch cfg.Strategy {
	case Greedy:
		return buildIndexed(text, cfg, maxEntries), nil
	case GreedyReference:
		return buildReference(text, cfg, maxEntries), nil
	case StaticOrder:
		return buildStatic(text, cfg, maxEntries), nil
	default:
		return nil, fmt.Errorf("dictionary: unknown strategy %d", cfg.Strategy)
	}
}

// buildReference is the paper's greedy algorithm as originally written:
// every re-evaluation rescans the candidate's full occurrence list against
// the covered vector.
func buildReference(text []uint32, cfg Config, maxEntries int) *Result {
	spE := cfg.Trace.Child("dict.enumerate")
	cands := enumerate(text, cfg)
	spE.SetInt("candidates", int64(len(cands))).End()
	cfg.Stats.Add("dict.candidates", int64(len(cands)))
	covered := make([]bool, len(text))
	coverEntry := newCoverEntry(len(text))
	res := &Result{}

	spS := cfg.Trace.Child("dict.select")
	rank := 0
	h := &candHeap{}
	heap.Init(h)
	for _, c := range cands {
		c.val = value(c, covered, cfg, rank)
		if c.val > 0 {
			heap.Push(h, c)
		}
	}
	for h.Len() > 0 && rank < maxEntries {
		c := heap.Pop(h).(*cand)
		cfg.Stats.Add("dict.heap_pops", 1)
		v := value(c, covered, cfg, rank)
		if v <= 0 {
			continue // stale and now worthless; drop
		}
		if v < c.val {
			// Stale: re-queue with the refreshed value. Values only
			// ever decrease, so when a popped candidate's value is
			// current it really is the maximum.
			c.val = v
			heap.Push(h, c)
			cfg.Stats.Add("dict.reevaluations", 1)
			continue
		}
		if selectCand(c, rank, covered, coverEntry, res) {
			cfg.Stats.ObserveValue("dict.selection_bits", int64(v))
			rank++
		}
	}
	cfg.Stats.Add("dict.entries", int64(rank))
	spS.SetInt("entries", int64(rank)).End()
	spC := cfg.Trace.Child("dict.commit")
	assembleItems(text, covered, coverEntry, res)
	spC.End()
	return res
}

// buildStatic ranks candidates once by initial savings and selects in that
// fixed order (the ablation baseline).
func buildStatic(text []uint32, cfg Config, maxEntries int) *Result {
	spE := cfg.Trace.Child("dict.enumerate")
	cands := enumerate(text, cfg)
	spE.SetInt("candidates", int64(len(cands))).End()
	cfg.Stats.Add("dict.candidates", int64(len(cands)))
	covered := make([]bool, len(text))
	coverEntry := newCoverEntry(len(text))
	res := &Result{}

	spS := cfg.Trace.Child("dict.select")
	for _, c := range cands {
		c.val = value(c, covered, cfg, 0)
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].val > cands[j].val })
	rank := 0
	for _, c := range cands {
		if rank >= maxEntries {
			break
		}
		v := value(c, covered, cfg, rank)
		if v <= 0 {
			continue
		}
		if selectCand(c, rank, covered, coverEntry, res) {
			cfg.Stats.ObserveValue("dict.selection_bits", int64(v))
			rank++
		}
	}
	cfg.Stats.Add("dict.entries", int64(rank))
	spS.SetInt("entries", int64(rank)).End()
	spC := cfg.Trace.Child("dict.commit")
	assembleItems(text, covered, coverEntry, res)
	spC.End()
	return res
}

// selectCand replaces all non-overlapping free occurrences of c and
// records it as the entry with the given rank. It reports whether anything
// was replaced.
func selectCand(c *cand, rank int, covered []bool, coverEntry []int, res *Result) bool {
	uses := occScan(c, covered, func(p int) {
		for j := p; j < p+c.k; j++ {
			covered[j] = true
		}
		coverEntry[p] = rank
	})
	if uses == 0 {
		return false
	}
	res.Entries = append(res.Entries, Entry{Words: c.words, Uses: uses})
	res.CoveredInsns += uses * c.k
	return true
}

// newCoverEntry allocates the word→entry-rank vector (-1 = uncovered).
func newCoverEntry(n int) []int {
	ce := make([]int, n)
	for i := range ce {
		ce[i] = -1
	}
	return ce
}

// assembleItems builds the rewritten item sequence from the coverage
// vectors; shared by every builder so they can only differ in selection.
func assembleItems(text []uint32, covered []bool, coverEntry []int, res *Result) {
	for i := range text {
		if e := coverEntry[i]; e >= 0 {
			res.Items = append(res.Items, Item{IsCodeword: true, Entry: e, OrigIdx: i})
			continue
		}
		if covered[i] {
			continue // interior of a replaced sequence
		}
		res.Items = append(res.Items, Item{Word: text[i], OrigIdx: i})
	}
}

// cand is one candidate sequence of the reference builder.
type cand struct {
	words  []uint32
	k      int    // sequence length in instructions
	pos    []int  // sorted occurrence start indices
	val    int    // cached savings in bits
	key    string // byte key, for deterministic ordering
	serial int    // tie-break rank
}

// enumerate collects every compressible sequence of length 1..MaxEntryLen
// that lies within a basic block.
func enumerate(text []uint32, cfg Config) []*cand {
	byKey := make(map[string]*cand)
	var keyBuf []byte
	for i := range text {
		if !cfg.Compressible[i] {
			continue
		}
		keyBuf = keyBuf[:0]
		for k := 1; k <= cfg.MaxEntryLen && i+k <= len(text); k++ {
			j := i + k - 1
			if !cfg.Compressible[j] {
				break
			}
			if k > 1 && cfg.Leader[j] {
				break // would span into the next basic block
			}
			var wb [4]byte
			binary.BigEndian.PutUint32(wb[:], text[j])
			keyBuf = append(keyBuf, wb[:]...)
			key := string(keyBuf)
			c := byKey[key]
			if c == nil {
				c = &cand{k: k, words: append([]uint32(nil), text[i:i+k]...)}
				byKey[key] = c
			}
			c.pos = append(c.pos, i)
		}
	}
	out := make([]*cand, 0, len(byKey))
	for key, c := range byKey {
		c.key = key
		out = append(out, c)
	}
	// Deterministic total order: map iteration is random, and the greedy
	// loop must break savings ties identically on every run (otherwise
	// parameter sweeps like Fig. 5 jitter).
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	for serial, c := range out {
		c.serial = serial
	}
	return out
}

// free reports whether words p..p+k-1 are all uncovered.
func free(covered []bool, p, k int) bool {
	for j := p; j < p+k; j++ {
		if covered[j] {
			return false
		}
	}
	return true
}

// occScan is the reference builder's single occurrence walk, shared by
// value (count mode, nil commit) and selectCand (commit mode): visit the
// sorted occurrence list, skip starts overlapping an occurrence already
// accepted in this scan, skip starts touching covered words, accept the
// rest. The two modes cannot drift apart because committing only covers
// words at or before `last`, which later occurrences are already barred
// from by the overlap check.
func occScan(c *cand, covered []bool, commit func(p int)) int {
	uses := 0
	last := -1
	for _, p := range c.pos {
		if p < last+1 {
			continue
		}
		if !free(covered, p, c.k) {
			continue
		}
		if commit != nil {
			commit(p)
		}
		uses++
		last = p + c.k - 1
	}
	return uses
}

// value computes the candidate's current savings in bits.
func value(c *cand, covered []bool, cfg Config, rank int) int {
	return savings(occScan(c, covered, nil), c.k, cfg, rank)
}

// savings is the paper's §3.1 objective: each replaced occurrence trades
// 32·k instruction bits for one codeword, and the dictionary must store
// the sequence once plus serialization overhead.
func savings(uses, k int, cfg Config, rank int) int {
	if uses == 0 {
		return 0
	}
	cw := cfg.CodewordBits(rank)
	return uses*(32*k-cw) - (32*k + cfg.EntryOverheadBits)
}

// candHeap is a max-heap over cached savings.
type candHeap []*cand

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].val != h[j].val {
		return h[i].val > h[j].val
	}
	return h[i].serial < h[j].serial
}
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(*cand)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

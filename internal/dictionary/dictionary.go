// Package dictionary implements the paper's greedy dictionary construction
// (§3.1): enumerate candidate instruction sequences inside basic blocks,
// then repeatedly select the candidate with the largest immediate savings,
// replacing all of its non-overlapping occurrences, until the codeword
// space is exhausted or nothing saves bytes.
//
// Optimal selection is NP-complete [Storer77]; like the paper we are
// greedy. Because a candidate's savings only decreases as other selections
// consume its occurrences (and as codewords get longer with rank), a lazy
// re-evaluation max-heap finds the true maximum each round without
// rescanning every candidate.
package dictionary

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Config parameterizes one dictionary build.
type Config struct {
	// MaxEntries bounds the number of dictionary entries (the codeword
	// space). Zero or negative means unlimited.
	MaxEntries int

	// MaxEntryLen bounds instructions per entry (the paper sweeps 1..8).
	MaxEntryLen int

	// CodewordBits returns the encoded size of the codeword that will
	// represent the rank-th selected entry (rank counts from 0). It must
	// be non-decreasing in rank for the lazy heap to remain exact.
	CodewordBits func(rank int) int

	// EntryOverheadBits is the per-entry serialization overhead charged to
	// the dictionary, beyond the entry's raw instruction bytes.
	EntryOverheadBits int

	// Compressible marks words that may join a dictionary entry. Relative
	// branches are excluded by the compressor (§3.2.1); callers may
	// exclude more.
	Compressible []bool

	// Leader marks basic-block starts. Sequences must lie within a block:
	// they may begin at a leader but never span one, so branches can
	// target codewords but not the middle of an encoded sequence.
	Leader []bool

	// Strategy selects the entry-selection policy; the default is the
	// paper's greedy algorithm.
	Strategy Strategy

	// Stats, when non-nil, receives build observability counters:
	// dict.candidates (sequences enumerated), dict.heap_pops,
	// dict.reevaluations (stale candidates re-queued with refreshed
	// savings), dict.entries (entries selected).
	Stats *stats.Recorder
}

// Strategy is the dictionary-entry selection policy.
type Strategy uint8

// Selection policies.
const (
	// Greedy re-evaluates savings after every selection (the paper's
	// algorithm, §3.1.1).
	Greedy Strategy = iota

	// StaticOrder ranks candidates once by their initial savings and
	// selects in that fixed order — the ablation baseline showing what
	// greedy's re-evaluation buys.
	StaticOrder
)

// Entry is one selected dictionary entry.
type Entry struct {
	Words []uint32
	// Uses is the number of occurrences replaced in the program.
	Uses int
}

// SizeBytes is the raw size of the entry's instructions.
func (e Entry) SizeBytes() int { return 4 * len(e.Words) }

// Item is one element of the rewritten program: either an uncompressed
// instruction or a codeword referencing a dictionary entry.
type Item struct {
	IsCodeword bool
	Entry      int    // valid when IsCodeword
	Word       uint32 // valid when !IsCodeword
	OrigIdx    int    // original text word index (sequence start for codewords)
}

// Result is the outcome of a build.
type Result struct {
	Entries []Entry
	Items   []Item

	// CoveredInsns counts original instructions absorbed into codewords.
	CoveredInsns int
}

// Build runs the greedy algorithm over the program text.
func Build(text []uint32, cfg Config) (*Result, error) {
	n := len(text)
	if len(cfg.Compressible) != n || len(cfg.Leader) != n {
		return nil, fmt.Errorf("dictionary: marker slices must match text length %d", n)
	}
	if cfg.MaxEntryLen < 1 {
		return nil, fmt.Errorf("dictionary: MaxEntryLen %d", cfg.MaxEntryLen)
	}
	if cfg.CodewordBits == nil {
		return nil, fmt.Errorf("dictionary: CodewordBits required")
	}
	maxEntries := cfg.MaxEntries
	if maxEntries <= 0 {
		maxEntries = int(^uint(0) >> 1)
	}

	cands := enumerate(text, cfg)
	cfg.Stats.Add("dict.candidates", int64(len(cands)))
	covered := make([]bool, n)
	res := &Result{}
	coverEntry := make([]int, n)
	for i := range coverEntry {
		coverEntry[i] = -1
	}

	// selectCand replaces all non-overlapping free occurrences of c and
	// records it as the entry with the given rank. It reports whether
	// anything was replaced.
	selectCand := func(c *cand, rank int) bool {
		uses := 0
		last := -1
		for _, p := range c.pos {
			if p < last+1 {
				continue
			}
			if !free(covered, p, c.k) {
				continue
			}
			for j := p; j < p+c.k; j++ {
				covered[j] = true
			}
			coverEntry[p] = rank
			uses++
			last = p + c.k - 1
		}
		if uses == 0 {
			return false
		}
		res.Entries = append(res.Entries, Entry{Words: c.words, Uses: uses})
		res.CoveredInsns += uses * c.k
		return true
	}

	rank := 0
	switch cfg.Strategy {
	case Greedy:
		h := &candHeap{}
		heap.Init(h)
		for _, c := range cands {
			c.val = value(c, covered, cfg, rank)
			if c.val > 0 {
				heap.Push(h, c)
			}
		}
		for h.Len() > 0 && rank < maxEntries {
			c := heap.Pop(h).(*cand)
			cfg.Stats.Add("dict.heap_pops", 1)
			v := value(c, covered, cfg, rank)
			if v <= 0 {
				continue // stale and now worthless; drop
			}
			if v < c.val {
				// Stale: re-queue with the refreshed value. Values only
				// ever decrease, so when a popped candidate's value is
				// current it really is the maximum.
				c.val = v
				heap.Push(h, c)
				cfg.Stats.Add("dict.reevaluations", 1)
				continue
			}
			if selectCand(c, rank) {
				rank++
			}
		}
	case StaticOrder:
		for _, c := range cands {
			c.val = value(c, covered, cfg, 0)
		}
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].val > cands[j].val })
		for _, c := range cands {
			if rank >= maxEntries {
				break
			}
			if value(c, covered, cfg, rank) <= 0 {
				continue
			}
			if selectCand(c, rank) {
				rank++
			}
		}
	default:
		return nil, fmt.Errorf("dictionary: unknown strategy %d", cfg.Strategy)
	}

	cfg.Stats.Add("dict.entries", int64(rank))

	// Assemble the rewritten item sequence.
	for i := 0; i < n; i++ {
		if e := coverEntry[i]; e >= 0 {
			res.Items = append(res.Items, Item{IsCodeword: true, Entry: e, OrigIdx: i})
			continue
		}
		if covered[i] {
			continue // interior of a replaced sequence
		}
		res.Items = append(res.Items, Item{Word: text[i], OrigIdx: i})
	}
	return res, nil
}

// cand is one candidate sequence.
type cand struct {
	words  []uint32
	k      int    // sequence length in instructions
	pos    []int  // sorted occurrence start indices
	val    int    // cached savings in bits
	idx    int    // heap index
	key    string // byte key, for deterministic ordering
	serial int    // tie-break rank
}

// enumerate collects every compressible sequence of length 1..MaxEntryLen
// that lies within a basic block.
func enumerate(text []uint32, cfg Config) []*cand {
	byKey := make(map[string]*cand)
	var keyBuf []byte
	for i := range text {
		if !cfg.Compressible[i] {
			continue
		}
		keyBuf = keyBuf[:0]
		for k := 1; k <= cfg.MaxEntryLen && i+k <= len(text); k++ {
			j := i + k - 1
			if !cfg.Compressible[j] {
				break
			}
			if k > 1 && cfg.Leader[j] {
				break // would span into the next basic block
			}
			var wb [4]byte
			binary.BigEndian.PutUint32(wb[:], text[j])
			keyBuf = append(keyBuf, wb[:]...)
			key := string(keyBuf)
			c := byKey[key]
			if c == nil {
				c = &cand{k: k, words: append([]uint32(nil), text[i:i+k]...)}
				byKey[key] = c
			}
			c.pos = append(c.pos, i)
		}
	}
	out := make([]*cand, 0, len(byKey))
	for key, c := range byKey {
		c.key = key
		out = append(out, c)
	}
	// Deterministic total order: map iteration is random, and the greedy
	// loop must break savings ties identically on every run (otherwise
	// parameter sweeps like Fig. 5 jitter).
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	for serial, c := range out {
		c.serial = serial
	}
	return out
}

// free reports whether words p..p+k-1 are all uncovered.
func free(covered []bool, p, k int) bool {
	for j := p; j < p+k; j++ {
		if covered[j] {
			return false
		}
	}
	return true
}

// value computes the candidate's current savings in bits: each replaced
// occurrence trades 32·k instruction bits for one codeword, and the
// dictionary must store the sequence once plus serialization overhead.
func value(c *cand, covered []bool, cfg Config, rank int) int {
	uses := 0
	last := -1
	for _, p := range c.pos {
		if p < last+1 {
			continue
		}
		if !free(covered, p, c.k) {
			continue
		}
		uses++
		last = p + c.k - 1
	}
	if uses == 0 {
		return 0
	}
	cw := cfg.CodewordBits(rank)
	return uses*(32*c.k-cw) - (32*c.k + cfg.EntryOverheadBits)
}

// candHeap is a max-heap over cached savings.
type candHeap []*cand

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(i, j int) bool {
	if h[i].val != h[j].val {
		return h[i].val > h[j].val
	}
	return h[i].serial < h[j].serial
}
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *candHeap) Push(x interface{}) { c := x.(*cand); c.idx = len(*h); *h = append(*h, c) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

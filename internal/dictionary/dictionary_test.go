package dictionary

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ppc"
)

// fixedCost returns a constant codeword size.
func fixedCost(bits int) func(int) int { return func(int) int { return bits } }

// open marks everything compressible with no interior leaders.
func open(n int) ([]bool, []bool) {
	comp := make([]bool, n)
	lead := make([]bool, n)
	for i := range comp {
		comp[i] = true
	}
	lead[0] = true
	return comp, lead
}

func build(t *testing.T, text []uint32, cfg Config) *Result {
	t.Helper()
	r, err := Build(text, cfg)
	if err != nil {
		t.Fatal(err)
	}
	verifyReconstruction(t, text, r)
	return r
}

// verifyReconstruction expands the item stream back through the dictionary
// and requires exact equality with the original text — the core invariant.
func verifyReconstruction(t *testing.T, text []uint32, r *Result) {
	t.Helper()
	var out []uint32
	for _, it := range r.Items {
		if it.IsCodeword {
			if it.Entry < 0 || it.Entry >= len(r.Entries) {
				t.Fatalf("item references entry %d of %d", it.Entry, len(r.Entries))
			}
			out = append(out, r.Entries[it.Entry].Words...)
			continue
		}
		out = append(out, it.Word)
	}
	if len(out) != len(text) {
		t.Fatalf("reconstruction length %d != %d", len(out), len(text))
	}
	for i := range out {
		if out[i] != text[i] {
			t.Fatalf("reconstruction differs at %d: %08x != %08x", i, out[i], text[i])
		}
	}
}

func TestSingleRepeatedInstruction(t *testing.T) {
	// 10 identical instructions, 16-bit codewords: one entry, all replaced.
	w := ppc.Addi(3, 3, 1)
	text := make([]uint32, 10)
	for i := range text {
		text[i] = w
	}
	comp, lead := open(10)
	r := build(t, text, Config{
		MaxEntryLen: 1, MaxEntries: 256,
		CodewordBits: fixedCost(16), EntryOverheadBits: 16,
		Compressible: comp, Leader: lead,
	})
	if len(r.Entries) != 1 || r.Entries[0].Uses != 10 {
		t.Fatalf("entries %+v", r.Entries)
	}
	if r.CoveredInsns != 10 {
		t.Fatalf("covered %d", r.CoveredInsns)
	}
}

func TestUnprofitableNotSelected(t *testing.T) {
	// Two occurrences of a single instruction with a 16-bit codeword save
	// 2×16 bits but cost 32+16 dictionary bits: a net loss — skip.
	w := ppc.Addi(3, 3, 7)
	text := []uint32{w, ppc.Nop(), w}
	comp, lead := open(3)
	r := build(t, text, Config{
		MaxEntryLen: 1, MaxEntries: 256,
		CodewordBits: fixedCost(16), EntryOverheadBits: 16,
		Compressible: comp, Leader: lead,
	})
	for _, e := range r.Entries {
		if len(e.Words) == 1 && e.Words[0] == w {
			t.Fatal("unprofitable singleton selected")
		}
	}
}

func TestSequencePreferredOverSingles(t *testing.T) {
	// A 4-instruction sequence repeated 8 times: replacing the whole
	// sequence saves more than replacing constituents.
	seq := []uint32{ppc.Lbz(9, 0, 28), ppc.Clrlwi(11, 9, 24), ppc.Addi(0, 11, 1), ppc.Cmplwi(1, 0, 8)}
	var text []uint32
	for i := 0; i < 8; i++ {
		text = append(text, seq...)
		text = append(text, ppc.Addi(4, 4, int32(i))) // spacer, unique
	}
	comp, lead := open(len(text))
	r := build(t, text, Config{
		MaxEntryLen: 4, MaxEntries: 256,
		CodewordBits: fixedCost(16), EntryOverheadBits: 16,
		Compressible: comp, Leader: lead,
	})
	if len(r.Entries) == 0 {
		t.Fatal("nothing selected")
	}
	if len(r.Entries[0].Words) != 4 || r.Entries[0].Uses != 8 {
		t.Fatalf("first entry %d words %d uses", len(r.Entries[0].Words), r.Entries[0].Uses)
	}
}

func TestLeaderBoundsSequences(t *testing.T) {
	// The same pair repeats, but a leader splits the middle occurrence: no
	// entry may span it.
	a, b := ppc.Add(3, 3, 4), ppc.Subf(5, 6, 7)
	text := []uint32{a, b, a, b, a, b}
	comp := []bool{true, true, true, true, true, true}
	lead := []bool{true, false, false, true, false, false}
	lead[4] = true // split the third pair: [a] | [b a] | [b]? keep simple: leader at 4
	r := build(t, text, Config{
		MaxEntryLen: 4, MaxEntries: 256,
		CodewordBits: fixedCost(8), EntryOverheadBits: 16,
		Compressible: comp, Leader: lead,
	})
	for _, e := range r.Entries {
		if len(e.Words) == 1 {
			continue
		}
		// Verify no replaced occurrence straddles index 3 or 4.
		for _, it := range r.Items {
			if it.IsCodeword && len(r.Entries[it.Entry].Words) > 1 {
				start := it.OrigIdx
				end := start + len(r.Entries[it.Entry].Words)
				for _, ldr := range []int{3, 4} {
					if start < ldr && end > ldr {
						t.Fatalf("entry spans leader at %d (start %d end %d)", ldr, start, end)
					}
				}
			}
		}
	}
}

func TestIncompressibleExcluded(t *testing.T) {
	w := ppc.Addi(3, 3, 1)
	br := ppc.Beq(0, 8)
	text := []uint32{w, br, w, br, w, br}
	comp := []bool{true, false, true, false, true, false}
	lead := []bool{true, false, true, false, true, false}
	r := build(t, text, Config{
		MaxEntryLen: 4, MaxEntries: 256,
		CodewordBits: fixedCost(8), EntryOverheadBits: 16,
		Compressible: comp, Leader: lead,
	})
	for _, it := range r.Items {
		if !it.IsCodeword && it.Word == br {
			continue
		}
	}
	for _, e := range r.Entries {
		for _, ew := range e.Words {
			if ew == br {
				t.Fatal("incompressible word entered the dictionary")
			}
		}
	}
	// The three w's should still compress (8-bit codeword: 3×24 − 48 > 0).
	if len(r.Entries) != 1 || r.Entries[0].Uses != 3 {
		t.Fatalf("entries: %+v", r.Entries)
	}
}

func TestMaxEntriesRespected(t *testing.T) {
	// Many distinct repeated words; entry budget of 4.
	var text []uint32
	for v := int32(0); v < 20; v++ {
		w := ppc.Addi(3, 3, v)
		for j := 0; j < 5; j++ {
			text = append(text, w)
		}
	}
	comp, lead := open(len(text))
	r := build(t, text, Config{
		MaxEntryLen: 1, MaxEntries: 4,
		CodewordBits: fixedCost(8), EntryOverheadBits: 16,
		Compressible: comp, Leader: lead,
	})
	if len(r.Entries) != 4 {
		t.Fatalf("%d entries, budget 4", len(r.Entries))
	}
}

func TestRankDependentCosts(t *testing.T) {
	// Nibble-style schedule: first entries get 4-bit codewords. The most
	// frequent candidate must land at rank 0.
	hot := ppc.Lwz(9, 4, 28)
	cold := ppc.Stw(18, 0, 28)
	var text []uint32
	for i := 0; i < 50; i++ {
		text = append(text, hot)
	}
	for i := 0; i < 10; i++ {
		text = append(text, cold)
	}
	comp, lead := open(len(text))
	sched := func(rank int) int {
		if rank < 8 {
			return 4
		}
		return 16
	}
	r := build(t, text, Config{
		MaxEntryLen: 1, MaxEntries: 8760,
		CodewordBits: sched, EntryOverheadBits: 16,
		Compressible: comp, Leader: lead,
	})
	if len(r.Entries) < 2 {
		t.Fatalf("entries %d", len(r.Entries))
	}
	if r.Entries[0].Words[0] != hot || r.Entries[0].Uses != 50 {
		t.Fatalf("rank 0 is %08x uses %d", r.Entries[0].Words[0], r.Entries[0].Uses)
	}
}

func TestOverlapWithinCandidate(t *testing.T) {
	// aaaa: the pair "aa" occurs at 0,1,2 but only two disjoint
	// replacements exist.
	a := ppc.Add(3, 3, 3)
	text := []uint32{a, a, a, a}
	comp, lead := open(4)
	r := build(t, text, Config{
		MaxEntryLen: 2, MaxEntries: 16,
		CodewordBits: fixedCost(8), EntryOverheadBits: 16,
		Compressible: comp, Leader: lead,
	})
	// Whatever was selected, reconstruction already checked. Confirm no
	// entry claims more uses than physically possible.
	for _, e := range r.Entries {
		if len(e.Words)*e.Uses > 4 {
			t.Fatalf("entry claims %d×%d words from a 4-word program", e.Uses, len(e.Words))
		}
	}
}

func TestConfigValidation(t *testing.T) {
	text := []uint32{ppc.Nop()}
	comp, lead := open(1)
	if _, err := Build(text, Config{MaxEntryLen: 0, CodewordBits: fixedCost(8), Compressible: comp, Leader: lead}); err == nil {
		t.Error("MaxEntryLen 0 accepted")
	}
	if _, err := Build(text, Config{MaxEntryLen: 1, Compressible: comp, Leader: lead}); err == nil {
		t.Error("nil CodewordBits accepted")
	}
	if _, err := Build(text, Config{MaxEntryLen: 1, CodewordBits: fixedCost(8), Compressible: comp[:0], Leader: lead}); err == nil {
		t.Error("mismatched markers accepted")
	}
	if _, err := Build(text, Config{MaxEntryLen: 1, CodewordBits: fixedCost(8), Compressible: comp, Leader: lead, Strategy: Strategy(99)}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestApplyFixedDictionary(t *testing.T) {
	a, b, x := ppc.Add(3, 3, 4), ppc.Subf(5, 6, 7), ppc.Nop()
	entries := []Entry{
		{Words: []uint32{a, b}}, // longer entry, should win at matches
		{Words: []uint32{a}},
		{Words: []uint32{x}}, // never present: zero uses, retained
	}
	text := []uint32{a, b, a, ppc.Mr(9, 3), a, b}
	comp, lead := open(len(text))
	r, err := Apply(text, entries, Config{Compressible: comp, Leader: lead})
	if err != nil {
		t.Fatal(err)
	}
	verifyReconstruction(t, text, r)
	if r.Entries[0].Uses != 2 {
		t.Errorf("pair entry used %d times, want 2", r.Entries[0].Uses)
	}
	if r.Entries[1].Uses != 1 {
		t.Errorf("single entry used %d times, want 1", r.Entries[1].Uses)
	}
	if r.Entries[2].Uses != 0 {
		t.Errorf("absent entry used %d times", r.Entries[2].Uses)
	}
	if len(r.Entries) != 3 {
		t.Errorf("entries dropped: %d", len(r.Entries))
	}
}

func TestApplyRespectsMarkers(t *testing.T) {
	a, b := ppc.Add(3, 3, 4), ppc.Subf(5, 6, 7)
	entries := []Entry{{Words: []uint32{a, b}}}
	text := []uint32{a, b, a, b}
	comp := []bool{true, true, true, true}
	lead := []bool{true, false, false, true} // leader splits the second pair
	r, err := Apply(text, entries, Config{Compressible: comp, Leader: lead})
	if err != nil {
		t.Fatal(err)
	}
	verifyReconstruction(t, text, r)
	if r.Entries[0].Uses != 1 {
		t.Errorf("entry used %d times across a leader, want 1", r.Entries[0].Uses)
	}
	// Incompressible first word blocks a match entirely.
	comp[0] = false
	lead = []bool{true, false, false, false}
	r, err = Apply(text, entries, Config{Compressible: comp, Leader: lead})
	if err != nil {
		t.Fatal(err)
	}
	verifyReconstruction(t, text, r)
	if r.Entries[0].Uses != 1 {
		t.Errorf("entry used %d times, want 1 (second pair only)", r.Entries[0].Uses)
	}
}

func TestApplyErrors(t *testing.T) {
	text := []uint32{ppc.Nop()}
	comp, lead := open(1)
	if _, err := Apply(text, []Entry{{}}, Config{Compressible: comp, Leader: lead}); err == nil {
		t.Error("empty entry accepted")
	}
	if _, err := Apply(text, nil, Config{Compressible: comp[:0], Leader: lead}); err == nil {
		t.Error("mismatched markers accepted")
	}
}

// TestReconstructionQuick is the property test: for random programs with
// random compressibility and leader patterns, expansion through the
// dictionary always reproduces the original text exactly — under every
// selection strategy.
func TestReconstructionQuick(t *testing.T) {
	words := []uint32{
		ppc.Addi(3, 3, 1), ppc.Lwz(9, 4, 28), ppc.Stw(18, 0, 28),
		ppc.Add(3, 3, 4), ppc.Nop(), ppc.Blr(), ppc.Mr(31, 3),
	}
	strategies := []Strategy{Greedy, StaticOrder, GreedyReference}
	f := func(seed int64, nRaw uint8, maxLenRaw uint8, stratRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		maxLen := int(maxLenRaw)%8 + 1
		text := make([]uint32, n)
		comp := make([]bool, n)
		lead := make([]bool, n)
		for i := range text {
			text[i] = words[rng.Intn(len(words))]
			comp[i] = rng.Intn(10) != 0
			lead[i] = rng.Intn(8) == 0
		}
		lead[0] = true
		r, err := Build(text, Config{
			MaxEntryLen: maxLen, MaxEntries: 64,
			CodewordBits: fixedCost(8), EntryOverheadBits: 16,
			Compressible: comp, Leader: lead,
			Strategy: strategies[int(stratRaw)%len(strategies)],
		})
		if err != nil {
			return false
		}
		var out []uint32
		for _, it := range r.Items {
			if it.IsCodeword {
				out = append(out, r.Entries[it.Entry].Words...)
			} else {
				out = append(out, it.Word)
			}
		}
		if len(out) != len(text) {
			return false
		}
		for i := range out {
			if out[i] != text[i] {
				return false
			}
		}
		// Incompressible words must never be inside entries.
		for _, it := range r.Items {
			if it.IsCodeword {
				k := len(r.Entries[it.Entry].Words)
				for j := it.OrigIdx; j < it.OrigIdx+k; j++ {
					if !comp[j] {
						return false
					}
					if j > it.OrigIdx && lead[j] {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

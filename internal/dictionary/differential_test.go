package dictionary_test

// Differential tests: the indexed greedy builder (the default Strategy)
// must produce byte-identical results to the reference transcription of
// the paper's algorithm on every synth benchmark and configuration — the
// paper's figures must not move by a single byte when the implementation
// changes. `make check` runs these explicitly (the `diff` target).

import (
	"reflect"
	"testing"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/stats"
	"repro/internal/synth"
)

// assertIdenticalBuilds runs both greedy implementations over one input
// and requires deeply equal Results. It returns the indexed builder's
// counters for callers that assert on observability.
func assertIdenticalBuilds(t *testing.T, text []uint32, cfg dictionary.Config) stats.Snapshot {
	t.Helper()
	rec := stats.New()
	cfg.Strategy = dictionary.Greedy
	cfg.Stats = rec
	got, err := dictionary.Build(text, cfg)
	if err != nil {
		t.Fatalf("indexed build: %v", err)
	}
	cfg.Strategy = dictionary.GreedyReference
	cfg.Stats = nil
	want, err := dictionary.Build(text, cfg)
	if err != nil {
		t.Fatalf("reference build: %v", err)
	}
	if !reflect.DeepEqual(got.Entries, want.Entries) {
		t.Fatalf("entries diverge: indexed %d entries, reference %d", len(got.Entries), len(want.Entries))
	}
	if !reflect.DeepEqual(got.Items, want.Items) {
		t.Fatalf("items diverge: indexed %d items, reference %d", len(got.Items), len(want.Items))
	}
	if got.CoveredInsns != want.CoveredInsns {
		t.Fatalf("covered %d != %d", got.CoveredInsns, want.CoveredInsns)
	}
	return rec.Snapshot()
}

func benchmarkInput(t *testing.T, name string) ([]uint32, dictionary.Config) {
	t.Helper()
	p, err := synth.Generate(name)
	if err != nil {
		t.Fatal(err)
	}
	comp, lead, err := core.Markers(p)
	if err != nil {
		t.Fatal(err)
	}
	return p.Text, dictionary.Config{
		MaxEntries:        codeword.Baseline.MaxEntries(),
		MaxEntryLen:       4,
		CodewordBits:      codeword.Baseline.CodewordBits,
		EntryOverheadBits: codeword.EntryOverheadBits,
		Compressible:      comp,
		Leader:            lead,
	}
}

// TestIndexedMatchesReferenceSynth is the acceptance differential: all
// eight benchmarks, baseline configuration.
func TestIndexedMatchesReferenceSynth(t *testing.T) {
	for _, name := range synth.BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			text, cfg := benchmarkInput(t, name)
			s := assertIdenticalBuilds(t, text, cfg)
			if s.Counter("dict.entries") == 0 {
				t.Error("no entries selected — differential is vacuous")
			}
			if s.Counter("dict.invalidations") == 0 {
				t.Error("no invalidations recorded — the inverted index did no work")
			}
			for _, c := range []string{"dict.dirty_skips", "dict.hash_collisions", "dict.heap_pops"} {
				if _, ok := s.Counters[c]; !ok {
					t.Errorf("counter %s not recorded", c)
				}
			}
		})
	}
}

// TestIndexedMatchesReferenceSweep varies the parameters the paper sweeps
// (entry length, codeword budget, cost schedule) on the two smallest
// benchmarks.
func TestIndexedMatchesReferenceSweep(t *testing.T) {
	for _, name := range []string{"compress", "li"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			text, base := benchmarkInput(t, name)
			for _, maxLen := range []int{1, 2, 8} {
				cfg := base
				cfg.MaxEntryLen = maxLen
				assertIdenticalBuilds(t, text, cfg)
			}
			for _, maxEntries := range []int{16, 64, 0} {
				cfg := base
				cfg.MaxEntries = maxEntries
				assertIdenticalBuilds(t, text, cfg)
			}
			nibble := base
			nibble.CodewordBits = codeword.Nibble.CodewordBits
			nibble.MaxEntries = codeword.Nibble.MaxEntries()
			assertIdenticalBuilds(t, text, nibble)
		})
	}
}

// TestCompressStrategyParity lifts the differential to the whole pipeline:
// a full core.Compress with the indexed builder must produce the same
// image bytes as with the reference builder.
func TestCompressStrategyParity(t *testing.T) {
	p, err := synth.Generate("li")
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []codeword.Scheme{codeword.Baseline, codeword.Nibble} {
		indexed, err := core.Compress(p.Clone(), core.Options{Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := core.Compress(p.Clone(), core.Options{Scheme: scheme, Strategy: dictionary.GreedyReference})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(indexed.Stream, ref.Stream) {
			t.Errorf("%v: stream bytes diverge", scheme)
		}
		if !reflect.DeepEqual(indexed.Entries, ref.Entries) {
			t.Errorf("%v: dictionaries diverge", scheme)
		}
		if indexed.CompressedBytes() != ref.CompressedBytes() {
			t.Errorf("%v: size %d != %d", scheme, indexed.CompressedBytes(), ref.CompressedBytes())
		}
	}
}

package dictionary

// Fuzz differential: random texts, compressibility masks and leader masks
// are fed to the indexed and reference greedy builders, which must agree
// exactly — including when the candidate hash is deliberately degraded to
// a single byte so the collision chain carries essentially all lookups.
// The seed corpus runs on every plain `go test`.

import (
	"reflect"
	"testing"

	"repro/internal/stats"
)

// fuzzVocab is a small instruction vocabulary so short fuzz inputs still
// produce repeating sequences worth compressing.
var fuzzVocab = [8]uint32{
	0x38630001, // addi r3,r3,1
	0x80690004, // lwz r3,4(r9)
	0x90690008, // stw r3,8(r9)
	0x7c632214, // add r3,r3,r4
	0x60000000, // nop
	0x7c6802a6, // mflr r3
	0x54631838, // rlwinm r3,r3,3,...
	0x3880ffff, // li r4,-1
}

// fuzzInput derives a bounded build input from raw bytes: three bits of
// vocabulary, two bits steering compressibility (mostly on), the rest
// leaders (sparse).
func fuzzInput(data []byte) (text []uint32, comp, lead []bool) {
	n := len(data)
	if n > 512 {
		n = 512
	}
	text = make([]uint32, n)
	comp = make([]bool, n)
	lead = make([]bool, n)
	for i := 0; i < n; i++ {
		b := data[i]
		text[i] = fuzzVocab[b&7]
		comp[i] = b&0x18 != 0x18
		lead[i] = b&0xe0 == 0xe0
	}
	if n > 0 {
		lead[0] = true
	}
	return text, comp, lead
}

// steppedCost is a non-trivial, non-decreasing codeword schedule (the
// contract CodewordBits must obey).
func steppedCost(rank int) int {
	switch {
	case rank < 4:
		return 4
	case rank < 16:
		return 8
	default:
		return 16
	}
}

func mustBuild(t *testing.T, text []uint32, cfg Config) *Result {
	t.Helper()
	r, err := Build(text, cfg)
	if err != nil {
		t.Fatalf("build strategy %d: %v", cfg.Strategy, err)
	}
	return r
}

func assertSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Entries, want.Entries) {
		t.Fatalf("%s: entries diverge", label)
	}
	if !reflect.DeepEqual(got.Items, want.Items) {
		t.Fatalf("%s: items diverge", label)
	}
	if got.CoveredInsns != want.CoveredInsns {
		t.Fatalf("%s: covered %d != %d", label, got.CoveredInsns, want.CoveredInsns)
	}
}

func FuzzBuildDifferential(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(4))
	f.Add([]byte{1, 2, 1, 2, 1, 2, 1, 2, 1, 2}, uint8(2))
	f.Add([]byte{7, 7, 0x9f, 7, 7, 0xe1, 7, 7, 7, 0x18, 7, 7}, uint8(8))
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 1, 4, 1, 5, 9, 2, 6}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, maxLenRaw uint8) {
		text, comp, lead := fuzzInput(data)
		if len(text) == 0 {
			t.Skip()
		}
		cfg := Config{
			MaxEntries:        48,
			MaxEntryLen:       int(maxLenRaw)%8 + 1,
			CodewordBits:      steppedCost,
			EntryOverheadBits: 16,
			Compressible:      comp,
			Leader:            lead,
		}
		cfg.Strategy = GreedyReference
		want := mustBuild(t, text, cfg)
		cfg.Strategy = Greedy
		got := mustBuild(t, text, cfg)
		assertSameResult(t, "indexed vs reference", got, want)

		// Degraded hash: every bucket collides, output must not move.
		cfg.degradeHash = true
		rec := stats.New()
		cfg.Stats = rec
		degraded := mustBuild(t, text, cfg)
		assertSameResult(t, "degraded hash", degraded, want)
		if _, ok := rec.Snapshot().Counters["dict.hash_collisions"]; !ok {
			t.Error("dict.hash_collisions not recorded")
		}
	})
}

// TestDegradedHashCollisions pins the collision path deterministically:
// with the hash collapsed to one byte and far more than 256 distinct
// sequences, chains must both collide heavily and resolve correctly.
func TestDegradedHashCollisions(t *testing.T) {
	var text []uint32
	for i := 0; i < 600; i++ {
		text = append(text, 0x38600000|uint32(i), 0x38600000|uint32(i)) // each word appears twice in a row
	}
	n := len(text)
	comp := make([]bool, n)
	lead := make([]bool, n)
	for i := range comp {
		comp[i] = true
	}
	lead[0] = true
	cfg := Config{
		MaxEntries:        0,
		MaxEntryLen:       3,
		CodewordBits:      func(int) int { return 8 },
		EntryOverheadBits: 16,
		Compressible:      comp,
		Leader:            lead,
	}
	cfg.Strategy = GreedyReference
	want := mustBuild(t, text, cfg)

	cfg.Strategy = Greedy
	cfg.degradeHash = true
	rec := stats.New()
	cfg.Stats = rec
	got := mustBuild(t, text, cfg)
	assertSameResult(t, "degraded hash", got, want)
	if c := rec.Snapshot().Counter("dict.hash_collisions"); c == 0 {
		t.Error("degraded hash produced no collisions — the chain path was not exercised")
	}

	// And the real hash on the same input should collide rarely or never.
	cfg.degradeHash = false
	rec2 := stats.New()
	cfg.Stats = rec2
	got2 := mustBuild(t, text, cfg)
	assertSameResult(t, "real hash", got2, want)
	if c := rec2.Snapshot().Counter("dict.hash_collisions"); c > 4 {
		t.Errorf("real 64-bit hash collided %d times on a toy input", c)
	}
}

// The indexed greedy builder: the default implementation of the paper's
// §3.1 algorithm, rebuilt around an occurrence index so selection is
// incremental instead of rescan-everything.
//
// Three mechanisms replace the reference builder's hot spots:
//
//  1. Enumeration interns candidates behind a rolling 64-bit FNV-1a hash
//     of the big-endian instruction words — no per-(position,length)
//     string key is ever allocated. Hash buckets chain and compare the
//     actual words, so a 64-bit collision can never merge two distinct
//     sequences (dict.hash_collisions counts them).
//
//  2. A start-position → occurrences inverted index makes invalidation
//     exact: the moment a selection covers a word range, every candidate
//     occurrence overlapping that range is tombstoned and its candidate
//     marked dirty. Coverage is therefore fully encoded in the occurrence
//     lists themselves — a live occurrence is free by construction — so
//     re-valuing a candidate never walks covered words at all.
//
//  3. Each candidate carries its live-occurrence count and a cached
//     greedy use count that stays exact while the candidate is clean.
//     A heap pop of a clean candidate recomputes savings from the cached
//     uses in O(1) (dict.dirty_skips); only dirty candidates rescan their
//     occurrence list, and that rescan compacts tombstones out so dead
//     occurrences are skipped once and never revisited — the "next free
//     position" role the covered-word walk played in the reference.
//
// The heap discipline is unchanged from the reference: cached savings are
// upper bounds (uses only shrink, CodewordBits is non-decreasing in rank),
// so a popped candidate whose exact value matches its cached key is the
// true maximum of the round, with ties broken by the same deterministic
// serial order (word-lexicographic, identical to the reference's
// big-endian byte-key sort). Both builders must produce byte-identical
// Results on every input; differential and fuzz tests enforce it.
package dictionary

import (
	"container/heap"
	"math"
)

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// rollHash folds one big-endian instruction word into the rolling
// candidate hash — byte-for-byte the FNV-1a hash of the reference
// builder's string key, with zero allocation.
func rollHash(h uint64, w uint32) uint64 {
	h = (h ^ uint64(w>>24)) * fnvPrime64
	h = (h ^ uint64(w>>16&0xff)) * fnvPrime64
	h = (h ^ uint64(w>>8&0xff)) * fnvPrime64
	h = (h ^ uint64(w&0xff)) * fnvPrime64
	return h
}

// icand is one interned candidate of the indexed builder.
type icand struct {
	words  []uint32
	k      int32
	serial int32   // deterministic tie-break rank (word-lexicographic)
	pos    []int32 // sorted occurrence starts; -1 tombstones dead ones
	from   int32   // scans start here: index of the first live occurrence
	live   int32   // occurrences not yet tombstoned
	uses   int32   // cached greedy non-overlap count; exact while !dirty
	val    int     // heap key: savings computed from uses at a past rank
	dirty  bool    // an occurrence died since uses was computed
	dead   bool    // worthless, fully covered, or already selected
	next   *icand  // hash-bucket collision chain
}

// occRef locates one occurrence inside its candidate's position list.
type occRef struct {
	c   *icand
	idx int32
}

// index is the enumeration result plus the inverted occurrence index.
type index struct {
	cands  []*icand // creation order during enumeration, then re-sorted to serial order
	occ    []occRef // occurrence refs grouped by start position
	occOff []int32  // start position → occ[occOff[p]:occOff[p+1]]
	maxLen int

	invalidations int64
	collisions    int64

	// Allocation arenas. Candidates are numerous and tiny, so each gets
	// carved out of a fixed-capacity chunk instead of its own heap object:
	// the icand record itself, its interned words, and an initial
	// posArenaCap-slot occurrence list (longer lists spill to the heap via
	// ordinary append). Chunks are never grown in place — when one fills, a
	// fresh chunk is started — so pointers and sub-slices handed out earlier
	// stay valid for the life of the build.
	candSlab  []icand
	wordArena []uint32
	posArena  []int32
}

const (
	candSlabCap  = 1024
	wordArenaCap = 4096
	posArenaCap  = 4 // initial pos capacity per candidate
)

// buildIndexed runs the indexed greedy algorithm. Output is byte-identical
// to buildReference.
func buildIndexed(text []uint32, cfg Config, maxEntries int) *Result {
	n := len(text)
	if n >= math.MaxInt32 {
		// Occurrence starts are int32; nothing real comes within two
		// orders of magnitude of this.
		return buildReference(text, cfg, maxEntries)
	}
	spE := cfg.Trace.Child("dict.enumerate")
	ix := newIndex(text, cfg)
	spE.SetInt("candidates", int64(len(ix.cands))).End()
	cfg.Stats.Add("dict.candidates", int64(len(ix.cands)))
	cfg.Stats.Add("dict.hash_collisions", ix.collisions)

	covered := make([]bool, n)
	coverEntry := newCoverEntry(n)
	res := &Result{}

	spS := cfg.Trace.Child("dict.select")
	rank := 0
	var pops, reevals, dirtySkips int64
	h := make(icandHeap, 0, len(ix.cands))
	for _, c := range ix.cands {
		c.uses = initialUses(c)
		c.val = savings(int(c.uses), int(c.k), cfg, rank)
		if c.val > 0 {
			h = append(h, c)
		}
	}
	heap.Init(&h)
	for h.Len() > 0 && rank < maxEntries {
		c := heap.Pop(&h).(*icand)
		pops++
		if c.dead {
			continue
		}
		if c.dirty {
			rescan(c)
		} else {
			dirtySkips++
		}
		v := savings(int(c.uses), int(c.k), cfg, rank)
		if v <= 0 {
			c.dead = true
			continue
		}
		if v < c.val {
			c.val = v
			heap.Push(&h, c)
			reevals++
			continue
		}
		ix.commit(c, rank, covered, coverEntry, res)
		cfg.Stats.ObserveValue("dict.selection_bits", int64(v))
		c.dead = true
		rank++
	}
	cfg.Stats.Add("dict.heap_pops", pops)
	cfg.Stats.Add("dict.reevaluations", reevals)
	cfg.Stats.Add("dict.dirty_skips", dirtySkips)
	cfg.Stats.Add("dict.invalidations", ix.invalidations)
	cfg.Stats.Add("dict.entries", int64(rank))
	spS.SetInt("entries", int64(rank)).End()
	spC := cfg.Trace.Child("dict.commit")
	assembleItems(text, covered, coverEntry, res)
	spC.End()
	return res
}

// newIndex enumerates every compressible in-block sequence of length
// 1..MaxEntryLen, interning candidates by rolling hash, and records the
// inverted start-position index used for incremental invalidation.
func newIndex(text []uint32, cfg Config) *index {
	n := len(text)
	ix := &index{
		maxLen: cfg.MaxEntryLen,
		occ:    make([]occRef, 0, 2*n),
		occOff: make([]int32, n+1),
	}
	hashMask := ^uint64(0)
	if cfg.degradeHash {
		hashMask = 0xff
	}
	byHash := make(map[uint64]*icand, n)
	for i := 0; i < n; i++ {
		ix.occOff[i] = int32(len(ix.occ))
		if !cfg.Compressible[i] {
			continue
		}
		h := fnvOffset64
		for k := 1; k <= ix.maxLen && i+k <= n; k++ {
			j := i + k - 1
			if !cfg.Compressible[j] {
				break
			}
			if k > 1 && cfg.Leader[j] {
				break // would span into the next basic block
			}
			h = rollHash(h, text[j])
			c := ix.intern(byHash, h&hashMask, text[i:i+k])
			c.pos = append(c.pos, int32(i))
			ix.occ = append(ix.occ, occRef{c: c, idx: int32(len(c.pos) - 1)})
		}
	}
	ix.occOff[n] = int32(len(ix.occ))
	for _, c := range ix.cands {
		c.live = int32(len(c.pos))
	}
	// Deterministic serials matching the reference builder exactly: a
	// word-lexicographic compare (shorter prefix first) orders candidates
	// identically to sorting their big-endian byte keys.
	sortCandsByWords(ix.cands)
	for s, c := range ix.cands {
		c.serial = int32(s)
	}
	return ix
}

// intern returns the candidate for seq, creating it on first sight.
// Buckets are keyed by the full 64-bit hash; the chain compare of the
// actual words makes collisions harmless (merely counted).
func (ix *index) intern(byHash map[uint64]*icand, h uint64, seq []uint32) *icand {
	head := byHash[h]
	for c := head; c != nil; c = c.next {
		if int(c.k) == len(seq) && equalWords(c.words, seq) {
			return c
		}
	}
	c := ix.newCand(seq)
	c.next = head
	if head != nil {
		ix.collisions++
	}
	byHash[h] = c
	ix.cands = append(ix.cands, c)
	return c
}

// newCand carves a candidate record, its interned words, and an initial
// occurrence-list reservation out of the index arenas.
func (ix *index) newCand(seq []uint32) *icand {
	if len(ix.candSlab) == cap(ix.candSlab) {
		ix.candSlab = make([]icand, 0, candSlabCap)
	}
	ix.candSlab = append(ix.candSlab, icand{k: int32(len(seq))})
	c := &ix.candSlab[len(ix.candSlab)-1]

	if cap(ix.wordArena)-len(ix.wordArena) < len(seq) {
		ix.wordArena = make([]uint32, 0, wordArenaCap)
	}
	w := len(ix.wordArena)
	ix.wordArena = append(ix.wordArena, seq...)
	c.words = ix.wordArena[w:len(ix.wordArena):len(ix.wordArena)]

	if cap(ix.posArena)-len(ix.posArena) < posArenaCap {
		ix.posArena = make([]int32, 0, posArenaCap*candSlabCap)
	}
	p := len(ix.posArena)
	c.pos = ix.posArena[p : p : p+posArenaCap]
	ix.posArena = ix.posArena[:p+posArenaCap]
	return c
}

// initialUses is the greedy non-overlap count before anything is covered.
func initialUses(c *icand) int32 {
	var uses int32
	last := int32(-1)
	for _, p := range c.pos {
		if p <= last {
			continue
		}
		uses++
		last = p + c.k - 1
	}
	return uses
}

// rescan recomputes the cached use count of a dirty candidate. Tombstones
// stay in place — the inverted index holds stable positions into pos — but
// the skip pointer advances past the leading dead run so repeated rescans
// of a mostly-consumed candidate start at its first live occurrence
// instead of re-walking covered territory. Every live occurrence is free
// by construction: cover tombstones all occurrences overlapping a range at
// the moment the range is covered.
func rescan(c *icand) {
	var uses int32
	last := int32(-1)
	from := c.from
	atFront := true
	for i := int(c.from); i < len(c.pos); i++ {
		p := c.pos[i]
		if p < 0 {
			if atFront {
				from = int32(i) + 1
			}
			continue
		}
		atFront = false
		if p <= last {
			continue
		}
		uses++
		last = p + c.k - 1
	}
	c.from = from
	c.uses = uses
	c.dirty = false
}

// commit records c as the entry with the given rank, covering each
// accepted occurrence and invalidating — through the inverted index —
// exactly the occurrences that overlap the newly covered words.
func (ix *index) commit(c *icand, rank int, covered []bool, coverEntry []int, res *Result) {
	uses := 0
	last := int32(-1)
	k := int(c.k)
	for i := int(c.from); i < len(c.pos); i++ {
		p := c.pos[i]
		if p < 0 || p <= last { // tombstoned (possibly by an earlier cover in this loop) or overlapping
			continue
		}
		ix.cover(int(p), k, covered)
		coverEntry[p] = rank
		uses++
		last = p + c.k - 1
	}
	res.Entries = append(res.Entries, Entry{Words: c.words, Uses: uses})
	res.CoveredInsns += uses * k
}

// cover marks words p..p+k-1 covered and tombstones every candidate
// occurrence overlapping that range: an occurrence starting at j with
// length kc overlaps iff j < p+k and j+kc > p, so only starts in
// [p-maxLen+1, p+k) need visiting.
func (ix *index) cover(p, k int, covered []bool) {
	for j := p; j < p+k; j++ {
		covered[j] = true
	}
	lo := p - ix.maxLen + 1
	if lo < 0 {
		lo = 0
	}
	for j := lo; j < p+k; j++ {
		for _, r := range ix.occ[ix.occOff[j]:ix.occOff[j+1]] {
			c := r.c
			if c.pos[r.idx] < 0 {
				continue // already dead
			}
			if j < p && int(c.k) <= p-j {
				continue // ends before the covered range
			}
			c.pos[r.idx] = -1
			c.live--
			c.dirty = true
			if c.live == 0 {
				c.dead = true
			}
			ix.invalidations++
		}
	}
}

// equalWords reports a == b elementwise.
func equalWords(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// lessWords is the word-lexicographic order (shorter prefix first) —
// identical to comparing the sequences' big-endian byte strings.
func lessWords(a, b []uint32) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// sortCandsByWords sorts candidates word-lexicographically. Keys are
// unique, so any comparison sort yields the same total order; this is a
// bespoke merge sort to avoid sort.Slice's interface overhead on the
// builder's one O(m log m) step.
func sortCandsByWords(cands []*icand) {
	if len(cands) < 2 {
		return
	}
	buf := make([]*icand, len(cands))
	mergeSortCands(cands, buf)
}

func mergeSortCands(s, buf []*icand) {
	if len(s) < 2 {
		return
	}
	m := len(s) / 2
	mergeSortCands(s[:m], buf[:m])
	mergeSortCands(s[m:], buf[m:])
	copy(buf, s)
	i, j := 0, m
	for k := range s {
		switch {
		case i >= m:
			s[k] = buf[j]
			j++
		case j >= len(s):
			s[k] = buf[i]
			i++
		case lessWords(buf[j].words, buf[i].words):
			s[k] = buf[j]
			j++
		default:
			s[k] = buf[i]
			i++
		}
	}
}

// icandHeap is a max-heap over cached savings, serial ascending on ties —
// the same discipline as the reference builder's heap.
type icandHeap []*icand

func (h icandHeap) Len() int { return len(h) }
func (h icandHeap) Less(i, j int) bool {
	if h[i].val != h[j].val {
		return h[i].val > h[j].val
	}
	return h[i].serial < h[j].serial
}
func (h icandHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *icandHeap) Push(x interface{}) { *h = append(*h, x.(*icand)) }
func (h *icandHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

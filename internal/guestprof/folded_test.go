package guestprof_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/guestprof"
	"repro/internal/synth"
)

var update = flag.Bool("update", false, "rewrite the folded-stack golden")

// compressedFolded runs one benchmark under the nibble scheme from scratch
// (fresh program, image, machine, profiler) and returns its folded stacks.
func compressedFolded(t *testing.T, name string) string {
	t.Helper()
	p, err := synth.Generate(name)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	img, err := core.Compress(p, core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	sym, err := img.GuestSymTab()
	if err != nil {
		t.Fatalf("GuestSymTab: %v", err)
	}
	cpu, err := core.NewMachine(img)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	prof := guestprof.New(sym)
	prof.Attach(cpu)
	if _, err := cpu.Run(200_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var sb strings.Builder
	if err := prof.WriteFolded(&sb); err != nil {
		t.Fatalf("WriteFolded: %v", err)
	}
	return sb.String()
}

// TestFoldedDeterministic pins the property run-bundle checksums rest on:
// identical executions produce byte-identical folded stacks. Two fully
// independent runs must agree with each other, and with a checked-in
// golden so drift across code changes is a visible diff, not a silently
// changed checksum.
func TestFoldedDeterministic(t *testing.T) {
	got := compressedFolded(t, "compress")
	if again := compressedFolded(t, "compress"); again != got {
		t.Errorf("two identical runs disagree:\n%s\nvs:\n%s", got, again)
	}

	path := filepath.Join("testdata", "compress.nibble.folded")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/guestprof -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("folded stacks drifted from golden (rerun with -update if intended):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

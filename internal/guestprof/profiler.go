package guestprof

import (
	"repro/internal/cache"
	"repro/internal/machine"
)

// Counts is the attribution vector the profiler maintains per call-tree
// node and reports per function.
type Counts struct {
	Cycles      int64 `json:"cycles"`                 // instructions executed (machine steps)
	FetchBytes  int64 `json:"fetch_bytes"`            // program-memory bytes fetched
	Expansions  int64 `json:"expansions,omitempty"`   // codeword expansions begun
	Expanded    int64 `json:"expanded,omitempty"`     // instructions supplied by the dictionary
	CacheMisses int64 `json:"cache_misses,omitempty"` // I-cache misses (when a cache is observed)
}

func (c *Counts) add(d Counts) {
	c.Cycles += d.Cycles
	c.FetchBytes += d.FetchBytes
	c.Expansions += d.Expansions
	c.Expanded += d.Expanded
	c.CacheMisses += d.CacheMisses
}

// rootFn is the call-tree root's sentinel id; it can never equal a
// FuncOf result (-1 is the unknown function, >= 0 are known functions).
const rootFn = -2

// node is one call-tree position: a function reached through a distinct
// stack of callers. Counts accumulate on the node; reports aggregate them
// per function (flat) and per path (cumulative, folded stacks).
type node struct {
	fn     int
	parent *node
	kids   map[int]*node
	c      Counts
}

func (n *node) child(fn int) *node {
	if k, ok := n.kids[fn]; ok {
		return k
	}
	k := &node{fn: fn, parent: n}
	if n.kids == nil {
		n.kids = map[int]*node{}
	}
	n.kids[fn] = k
	return k
}

// frame is one live stack entry: the call-tree node plus the return
// address the frame's call recorded (0 for frames not created by a call).
type frame struct {
	n   *node
	ret uint32
}

// Profiler attributes execution to guest functions. Create with New,
// connect with Attach (and ObserveCache when an I-cache is simulated),
// run the machine, then export with Profile, WriteTop or WriteFolded.
// A Profiler is single-run state: profile one CPU per Profiler.
type Profiler struct {
	sym   *SymTab
	cache *cache.Cache
	root  *node
	stack []frame

	lastMisses int64
}

// New creates a profiler resolving addresses through sym.
func New(sym *SymTab) *Profiler {
	p := &Profiler{sym: sym, root: &node{fn: rootFn}}
	p.stack = append(p.stack, frame{n: p.root})
	return p
}

// ObserveCache attributes the cache's miss deltas to the executing
// function. The cache must be the one fed by the CPU's TraceFetch hook;
// fetch accesses happen before TraceStep fires, so each instruction's
// misses land on its own attribution.
func (p *Profiler) ObserveCache(c *cache.Cache) {
	p.cache = c
	if c != nil {
		p.lastMisses = c.Stats.Misses
	}
}

// Attach connects the profiler to a CPU's TraceStep hook, chaining any
// hook already installed.
func (p *Profiler) Attach(cpu *machine.CPU) {
	if prev := cpu.TraceStep; prev != nil {
		cpu.TraceStep = func(si machine.StepInfo) {
			prev(si)
			p.Step(si)
		}
		return
	}
	cpu.TraceStep = p.Step
}

// Step consumes one executed instruction. Exactly one cycle is attributed
// per call, so summed per-function cycles always equal the machine's step
// count.
func (p *Profiler) Step(si machine.StepInfo) {
	fn := p.sym.FuncOf(si.CIA)
	top := len(p.stack) - 1
	if cur := p.stack[top].n; cur.fn != fn {
		if cur == p.root {
			// First attributed instruction: open the entry function's frame.
			p.stack = append(p.stack, frame{n: p.root.child(fn)})
			top++
		} else {
			// Control moved across a function boundary without a call or
			// return (a tail jump, or fallthrough): replace the top frame,
			// keeping its return address.
			p.stack[top].n = cur.parent.child(fn)
		}
	}
	n := p.stack[top].n
	n.c.Cycles++
	n.c.FetchBytes += int64(si.MemBytes) + int64(si.MemBytes2)
	if si.EntryLen > 0 {
		n.c.Expansions++
	}
	if si.MemBytes == 0 {
		n.c.Expanded++
	}
	if p.cache != nil {
		if m := p.cache.Stats.Misses; m != p.lastMisses {
			n.c.CacheMisses += m - p.lastMisses
			p.lastMisses = m
		}
	}

	switch si.Branch {
	case machine.BranchCall:
		callee := p.sym.FuncOf(si.Target)
		p.stack = append(p.stack, frame{n: n.child(callee), ret: si.Next})
	case machine.BranchReturn:
		// Pop the frame whose call will resume at the return target, plus
		// anything above it (frames abandoned by unmatched calls). An
		// unmatched return is treated as a jump; the next step's boundary
		// check re-synchronizes the top frame.
		for i := len(p.stack) - 1; i > 0; i-- {
			if p.stack[i].ret == si.Target {
				p.stack = p.stack[:i]
				break
			}
		}
	}
}

// Depth reports the current live stack depth (excluding the root frame),
// for tests and diagnostics.
func (p *Profiler) Depth() int { return len(p.stack) - 1 }

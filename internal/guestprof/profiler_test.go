package guestprof_test

import (
	"strings"
	"testing"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/guestprof"
	"repro/internal/machine"
	"repro/internal/ppc"
	"repro/internal/program"
	"repro/internal/synth"
)

// buildCallers links a three-level program with fully predictable control
// flow: main calls mid twice, mid calls leaf once per call.
func buildCallers(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("callers")

	main := b.Func("main")
	main.Emit(ppc.Li(3, 0))
	main.Call("mid")
	main.Call("mid")
	main.Emit(ppc.Li(0, machine.SysExit))
	main.Emit(ppc.Sc())

	mid := b.Func("mid")
	mid.BeginPrologue()
	mid.Emit(ppc.Mflr(0))
	mid.Emit(ppc.Stw(0, 8, 1))
	mid.Emit(ppc.Stwu(1, -16, 1))
	mid.EndPrologue()
	mid.Call("leaf")
	mid.BeginEpilogue()
	mid.Emit(ppc.Addi(1, 1, 16))
	mid.Emit(ppc.Lwz(0, 8, 1))
	mid.Emit(ppc.Mtlr(0))
	mid.Emit(ppc.Blr())
	mid.EndEpilogue()

	leaf := b.Func("leaf")
	leaf.Emit(ppc.Addi(3, 3, 1))
	leaf.Emit(ppc.Blr())

	p, err := b.Link()
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return p
}

// profiledRun executes the program natively with a profiler attached.
func profiledRun(t *testing.T, p *program.Program) (*machine.CPU, *guestprof.Profiler) {
	t.Helper()
	cpu, err := machine.NewForProgram(p)
	if err != nil {
		t.Fatalf("NewForProgram: %v", err)
	}
	prof := guestprof.New(guestprof.NewProgramSymTab(p))
	prof.Attach(cpu)
	if _, err := cpu.Run(10_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return cpu, prof
}

func flatCycleSum(pr *guestprof.Profile) int64 {
	var n int64
	for _, f := range pr.Funcs {
		n += f.Flat.Cycles
	}
	return n
}

func TestFoldedGolden(t *testing.T) {
	p := buildCallers(t)
	cpu, prof := profiledRun(t, p)

	// Exact step accounting: main executes li, two bl, li, sc (5); each of
	// the two mid calls executes 4 prologue + bl + 4 epilogue + blr... the
	// builder's prologue/epilogue markers only bracket, they add nothing.
	// Rather than re-deriving the instruction count here, the golden output
	// pins it: any change to attribution, stack tracking, or the folded
	// format shows up as a diff against this literal.
	var sb strings.Builder
	if err := prof.WriteFolded(&sb); err != nil {
		t.Fatalf("WriteFolded: %v", err)
	}
	const want = `main 5
main;mid 16
main;mid;leaf 4
`
	if sb.String() != want {
		t.Errorf("folded output:\n%s\nwant:\n%s", sb.String(), want)
	}
	if got := flatCycleSum(prof.Profile("callers")); got != cpu.Stats.Steps {
		t.Errorf("flat cycles %d != steps %d", got, cpu.Stats.Steps)
	}
}

func TestTopTableAndCumulative(t *testing.T) {
	p := buildCallers(t)
	cpu, prof := profiledRun(t, p)
	pr := prof.Profile("callers")

	if pr.Total.Cycles != cpu.Stats.Steps {
		t.Fatalf("Total.Cycles %d != steps %d", pr.Total.Cycles, cpu.Stats.Steps)
	}
	mainFP, ok := pr.FuncByName("main")
	if !ok {
		t.Fatal("main missing from profile")
	}
	// main is on the stack for every cycle of the run.
	if mainFP.Cum.Cycles != cpu.Stats.Steps {
		t.Errorf("main cum %d != steps %d", mainFP.Cum.Cycles, cpu.Stats.Steps)
	}
	mid, ok := pr.FuncByName("mid")
	if !ok {
		t.Fatal("mid missing from profile")
	}
	if mid.Cum.Cycles != mid.Flat.Cycles+4 { // leaf's 4 cycles nest under mid
		t.Errorf("mid cum %d, want flat %d + 4", mid.Cum.Cycles, mid.Flat.Cycles)
	}

	var sb strings.Builder
	if err := pr.WriteTop(&sb, 2); err != nil {
		t.Fatalf("WriteTop: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"flat%", "mid", "TOTAL", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("top table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "leaf") {
		t.Errorf("top 2 table should not include leaf:\n%s", out)
	}
}

func TestRecursionCumulativeCountsOnce(t *testing.T) {
	b := program.NewBuilder("fact")
	main := b.Func("main")
	main.Emit(ppc.Li(3, 6))
	main.Call("fact")
	main.Emit(ppc.Li(0, machine.SysExit))
	main.Emit(ppc.Sc())

	f := b.Func("fact")
	f.BeginPrologue()
	f.Emit(ppc.Mflr(0))
	f.Emit(ppc.Stw(0, 8, 1))
	f.Emit(ppc.Stwu(1, -32, 1))
	f.Emit(ppc.Stmw(31, 28, 1))
	f.EndPrologue()
	f.Emit(ppc.Mr(31, 3))
	f.Emit(ppc.Cmpwi(0, 3, 1))
	f.Branch(ppc.Bgt(0, 0), "recurse")
	f.Emit(ppc.Li(3, 1))
	f.Branch(ppc.B(0), "out")
	f.Label("recurse")
	f.Emit(ppc.Addi(3, 31, -1))
	f.Call("fact")
	f.Emit(ppc.Mullw(3, 3, 31))
	f.Label("out")
	f.BeginEpilogue()
	f.Emit(ppc.Lmw(31, 28, 1))
	f.Emit(ppc.Addi(1, 1, 32))
	f.Emit(ppc.Lwz(0, 8, 1))
	f.Emit(ppc.Mtlr(0))
	f.Emit(ppc.Blr())
	f.EndEpilogue()

	p, err := b.Link()
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	cpu, prof := profiledRun(t, p)
	pr := prof.Profile("fact")

	if got := flatCycleSum(pr); got != cpu.Stats.Steps || pr.Total.Cycles != cpu.Stats.Steps {
		t.Fatalf("conservation: flat sum %d total %d steps %d", got, pr.Total.Cycles, cpu.Stats.Steps)
	}
	fact, ok := pr.FuncByName("fact")
	if !ok {
		t.Fatal("fact missing from profile")
	}
	// Recursion: every fact frame nests under another fact frame, but each
	// cycle inside the recursion must count toward fact's cumulative exactly
	// once — cum can never exceed the run's total.
	if fact.Cum.Cycles > pr.Total.Cycles {
		t.Errorf("fact cum %d exceeds total %d (recursion double-counted)", fact.Cum.Cycles, pr.Total.Cycles)
	}
	if fact.Cum.Cycles <= fact.Flat.Cycles/2 {
		t.Errorf("fact cum %d implausibly small vs flat %d", fact.Cum.Cycles, fact.Flat.Cycles)
	}
	if prof.Depth() != 1 { // everything returned; only main's entry frame remains
		t.Errorf("final stack depth %d, want 1", prof.Depth())
	}
}

// TestConservationAllBenchmarks is the acceptance check: for every synth
// benchmark, in both the native and the compressed run, the profiler's
// summed per-function cycles exactly equal the machine's step count — the
// profiler observes every step and attributes each exactly once.
func TestConservationAllBenchmarks(t *testing.T) {
	for _, name := range synth.BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := synth.Generate(name)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}

			// Native run.
			cpu, err := machine.NewForProgram(p)
			if err != nil {
				t.Fatalf("NewForProgram: %v", err)
			}
			nprof := guestprof.New(guestprof.NewProgramSymTab(p))
			nprof.Attach(cpu)
			if _, err := cpu.Run(200_000_000); err != nil {
				t.Fatalf("native Run: %v", err)
			}
			npr := nprof.Profile(name)
			if got := flatCycleSum(npr); got != cpu.Stats.Steps {
				t.Errorf("native: flat cycles %d != steps %d", got, cpu.Stats.Steps)
			}
			if npr.Total.Cycles != cpu.Stats.Steps {
				t.Errorf("native: total %d != steps %d", npr.Total.Cycles, cpu.Stats.Steps)
			}

			// Compressed run, symbolized through the address map.
			img, err := core.Compress(p.Clone(), core.Options{Scheme: codeword.Nibble, MaxEntryLen: 4})
			if err != nil {
				t.Fatalf("Compress: %v", err)
			}
			sym, err := img.GuestSymTab()
			if err != nil {
				t.Fatalf("GuestSymTab: %v", err)
			}
			ccpu, err := core.NewMachine(img)
			if err != nil {
				t.Fatalf("NewMachine: %v", err)
			}
			cprof := guestprof.New(sym)
			cprof.Attach(ccpu)
			if _, err := ccpu.Run(200_000_000); err != nil {
				t.Fatalf("compressed Run: %v", err)
			}
			cpr := cprof.Profile(name)
			if got := flatCycleSum(cpr); got != ccpu.Stats.Steps {
				t.Errorf("compressed: flat cycles %d != steps %d", got, ccpu.Stats.Steps)
			}
			if cpr.Total.Cycles != ccpu.Stats.Steps {
				t.Errorf("compressed: total %d != steps %d", cpr.Total.Cycles, ccpu.Stats.Steps)
			}

			// Symbolization: the compressed profile must name the same
			// functions as the native one (that is the point of the address
			// map) and leave nothing unattributed.
			native := map[string]bool{}
			for _, f := range npr.Funcs {
				native[f.Name] = true
			}
			var unknown int64
			for _, f := range cpr.Funcs {
				if f.Name == guestprof.UnknownName {
					unknown += f.Flat.Cycles
					continue
				}
				if !native[f.Name] {
					t.Errorf("compressed profile names %q, absent from native profile", f.Name)
				}
			}
			if unknown != 0 {
				t.Errorf("compressed run left %d cycles unsymbolized", unknown)
			}
		})
	}
}

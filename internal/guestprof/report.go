package guestprof

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// FuncProfile is one function's attribution: flat (instructions executing
// inside the function itself) and cumulative (instructions executing while
// the function was anywhere on the call stack, counted once per cycle even
// under recursion).
type FuncProfile struct {
	Name string `json:"name"`
	Flat Counts `json:"flat"`
	Cum  Counts `json:"cum"`
}

// Profile is the JSON-serializable result of a profiled run. Functions are
// ordered hottest-first by flat cycles (ties by name), and Total is the
// exact sum of every function's flat counts — equal to the machine's step
// count for cycles.
type Profile struct {
	Name  string        `json:"name,omitempty"`
	Total Counts        `json:"total"`
	Funcs []FuncProfile `json:"funcs,omitempty"`
}

// FuncByName finds a function's row, for native-vs-compressed diffing.
func (p *Profile) FuncByName(name string) (FuncProfile, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return FuncProfile{}, false
}

// walk visits every call-tree node depth-first in deterministic (function
// id) order, passing the path of function ids from the root's child down
// to the node itself.
func (p *Profiler) walk(visit func(path []int, c Counts)) {
	var path []int
	var dfs func(n *node)
	dfs = func(n *node) {
		path = append(path, n.fn)
		visit(path, n.c)
		ids := make([]int, 0, len(n.kids))
		for fn := range n.kids {
			ids = append(ids, fn)
		}
		sort.Ints(ids)
		for _, fn := range ids {
			dfs(n.kids[fn])
		}
		path = path[:len(path)-1]
	}
	ids := make([]int, 0, len(p.root.kids))
	for fn := range p.root.kids {
		ids = append(ids, fn)
	}
	sort.Ints(ids)
	for _, fn := range ids {
		dfs(p.root.kids[fn])
	}
}

// Profile aggregates the call tree into per-function flat and cumulative
// counts. The name labels the run (benchmark name, image name, …).
func (p *Profiler) Profile(name string) *Profile {
	nf := p.sym.NumFuncs()
	flat := make([]Counts, nf+1) // index fn+1; 0 is the unknown function
	cum := make([]Counts, nf+1)
	onPath := make([]int, nf+1)
	prof := &Profile{Name: name}
	p.walk(func(path []int, c Counts) {
		// One pass per node: flat to the node's own function, cumulative to
		// every *distinct* function on the path (recursion counts once).
		for _, fn := range path {
			onPath[fn+1]++
		}
		flat[path[len(path)-1]+1].add(c)
		for _, fn := range path {
			if onPath[fn+1] > 0 {
				cum[fn+1].add(c)
				onPath[fn+1] = -1 << 30 // visited marker for this node
			}
		}
		for _, fn := range path {
			onPath[fn+1] = 0
		}
		prof.Total.add(c)
	})
	for i := range flat {
		if flat[i] == (Counts{}) && cum[i] == (Counts{}) {
			continue
		}
		prof.Funcs = append(prof.Funcs, FuncProfile{
			Name: p.sym.Name(i - 1),
			Flat: flat[i],
			Cum:  cum[i],
		})
	}
	sort.SliceStable(prof.Funcs, func(a, b int) bool {
		if prof.Funcs[a].Flat.Cycles != prof.Funcs[b].Flat.Cycles {
			return prof.Funcs[a].Flat.Cycles > prof.Funcs[b].Flat.Cycles
		}
		return prof.Funcs[a].Name < prof.Funcs[b].Name
	})
	return prof
}

// WriteFolded emits the call tree as folded stacks — one line per distinct
// stack with its cycle count ("main;compress;emit 1234"), the input format
// of standard flamegraph tooling. Lines are sorted lexicographically so
// output is deterministic; zero-cycle interior nodes are omitted (their
// descendants still carry the full path).
func (p *Profiler) WriteFolded(w io.Writer) error {
	var lines []string
	var sb strings.Builder
	p.walk(func(path []int, c Counts) {
		if c.Cycles == 0 {
			return
		}
		sb.Reset()
		for i, fn := range path {
			if i > 0 {
				sb.WriteByte(';')
			}
			sb.WriteString(p.sym.Name(fn))
		}
		fmt.Fprintf(&sb, " %d", c.Cycles)
		lines = append(lines, sb.String())
	})
	sort.Strings(lines)
	for _, ln := range lines {
		if _, err := fmt.Fprintln(w, ln); err != nil {
			return err
		}
	}
	return nil
}

// WriteTop renders the hottest n functions (by flat cycles) as an aligned
// text table with flat/cumulative cycle shares and the expansion and
// memory-traffic columns.
func (prof *Profile) WriteTop(w io.Writer, n int) error {
	if n <= 0 || n > len(prof.Funcs) {
		n = len(prof.Funcs)
	}
	total := prof.Total.Cycles
	pctOf := func(v int64) string {
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(v)/float64(total))
	}
	rows := [][]string{{"flat", "flat%", "cum", "cum%", "fetch-bytes", "expansions", "misses", "function"}}
	for _, f := range prof.Funcs[:n] {
		rows = append(rows, []string{
			fmt.Sprint(f.Flat.Cycles), pctOf(f.Flat.Cycles),
			fmt.Sprint(f.Cum.Cycles), pctOf(f.Cum.Cycles),
			fmt.Sprint(f.Flat.FetchBytes), fmt.Sprint(f.Flat.Expansions),
			fmt.Sprint(f.Flat.CacheMisses), f.Name,
		})
	}
	rows = append(rows, []string{
		fmt.Sprint(prof.Total.Cycles), "100.0%", fmt.Sprint(prof.Total.Cycles), "100.0%",
		fmt.Sprint(prof.Total.FetchBytes), fmt.Sprint(prof.Total.Expansions),
		fmt.Sprint(prof.Total.CacheMisses), "TOTAL",
	})
	width := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	for _, r := range rows {
		var sb strings.Builder
		for i, cell := range r {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == len(r)-1 { // function name: left-aligned, unpadded
				sb.WriteString(cell)
				continue
			}
			sb.WriteString(strings.Repeat(" ", width[i]-len(cell)))
			sb.WriteString(cell)
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

package guestprof

import (
	"sort"

	"repro/internal/machine"
)

// SampledProfiler reconstructs a flat per-function guest profile from the
// fast path's drained per-slot traffic (machine.EnableEpochSampling),
// without ever forcing the machine off the fused loop.
//
// Attribution is exact for every step the fast loop supplied: each
// instruction — including dictionary-expansion continuations — is
// attributed to the fetch address of its slot, which is precisely the CIA
// the exact Step-path profiler sees for the same instructions (all
// continuations of a codeword share its address). So on a run the fast
// loop covers fully, the sampled flat profile equals the exact profiler's
// flat profile, counter for counter; steps executed on the instrumented
// path are the only loss, and FastStats.Coverage reports their share.
// What sampling cannot see is the call stack, so profiles are flat-only
// (each function's Cum equals its Flat) and CacheMisses stays zero (cache
// simulation needs the per-fetch hook, which is a slow-path feature).
type SampledProfiler struct {
	sym  *SymTab
	flat []Counts // index fn+1; 0 is the unknown function
	heat []int64  // dictionary-entry fetches by rank

	// funcOf memoizes per-table slot-to-function resolution, so steady
	// state does one array read per touched slot per epoch.
	funcOf map[*machine.Predecode][]int32
}

var _ machine.EpochObserver = (*SampledProfiler)(nil)

// NewSampled creates a sampled profiler resolving addresses through sym
// (for compressed images, the symbol table GuestSymTab already translates
// unit addresses). Connect it with cpu.EnableEpochSampling(rec, p).
func NewSampled(sym *SymTab) *SampledProfiler {
	return &SampledProfiler{
		sym:    sym,
		flat:   make([]Counts, sym.NumFuncs()+1),
		funcOf: map[*machine.Predecode][]int32{},
	}
}

// resolve returns (building and memoizing on first sight of a table) the
// function id of every slot.
func (p *SampledProfiler) resolve(pd *machine.Predecode) []int32 {
	if f, ok := p.funcOf[pd]; ok {
		return f
	}
	f := make([]int32, len(pd.Slots))
	for i := range f {
		f[i] = int32(p.sym.FuncOf(pd.Base + uint32(i)<<pd.Shift))
	}
	p.funcOf[pd] = f
	return f
}

// ObserveEpoch implements machine.EpochObserver: folds one epoch's slot
// traffic into the flat profile and the heat map. Only the touched slots
// are visited, so the fold costs what the epoch executed.
func (p *SampledProfiler) ObserveEpoch(pd *machine.Predecode, tr []machine.SlotTraffic, touched []int32) {
	fns := p.resolve(pd)
	for _, i := range touched {
		t := &tr[i]
		s := &pd.Slots[i]
		c := &p.flat[fns[i]+1]
		c.Cycles += int64(t.Steps)
		c.FetchBytes += int64(t.Fetches) * int64(s.MemBytes)
		c.Expanded += int64(t.Steps - t.Fetches)
		if s.Rank >= 0 {
			c.Expansions += int64(t.Fetches)
			if n := int(s.Rank) + 1; n > len(p.heat) {
				p.heat = append(p.heat, make([]int64, n-len(p.heat))...)
			}
			p.heat[s.Rank] += int64(t.Fetches)
		}
	}
}

// Profile aggregates the drained traffic into the same report shape the
// exact profiler produces. Sampled profiles observe no call stacks, so
// each function's Cum equals its Flat and Total sums the flat counts
// (equal to the fast loop's step count for cycles).
func (p *SampledProfiler) Profile(name string) *Profile {
	prof := &Profile{Name: name}
	for i, c := range p.flat {
		if c == (Counts{}) {
			continue
		}
		prof.Funcs = append(prof.Funcs, FuncProfile{Name: p.sym.Name(i - 1), Flat: c, Cum: c})
		prof.Total.add(c)
	}
	sort.SliceStable(prof.Funcs, func(a, b int) bool {
		if prof.Funcs[a].Flat.Cycles != prof.Funcs[b].Flat.Cycles {
			return prof.Funcs[a].Flat.Cycles > prof.Funcs[b].Flat.Cycles
		}
		return prof.Funcs[a].Name < prof.Funcs[b].Name
	})
	return prof
}

// Heat returns the reconstructed dictionary-entry heat map (index = rank):
// for the covered steps, exactly what the machine's heat hook would have
// counted on the instrumented path.
func (p *SampledProfiler) Heat() []int64 { return p.heat }

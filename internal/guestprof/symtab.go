// Package guestprof is an exact (non-sampling) profiler for the simulated
// guest machine: it observes every executed instruction through the CPU's
// TraceStep hook, tracks the guest call stack from link-setting branches
// and blr returns, and attributes cycles, fetched program-memory bytes,
// dictionary-expansion work and I-cache misses to symbolized guest
// functions — flat and cumulative. Because attribution is exact, the
// per-function cycle totals sum to the machine's step count, in both
// native and compressed runs; a compressed run symbolizes through the
// image's compressed↔native address map, so both profiles name the same
// functions and diff directly. Exporters: a text top-N table, folded
// stacks for standard flamegraph tooling, and a JSON profile that merges
// into core.RunProfile.
package guestprof

import (
	"sort"

	"repro/internal/program"
)

// UnknownName labels addresses no symbol covers.
const UnknownName = "[unknown]"

// Func is one symbolized function: its name and start address in the
// symbol table's lookup space (native byte addresses for programs).
type Func struct {
	Name  string
	Start uint32
}

// SymTab resolves guest PCs to functions. Lookups optionally pass through
// a translation first (the compressed frontend's unit-address space maps
// to native text addresses this way), then floor-resolve against the
// sorted function starts. A PC outside [lo, hi) — or one the translation
// rejects — resolves to the unknown function.
type SymTab struct {
	funcs     []Func // sorted by Start
	lo, hi    uint32 // text bounds in lookup space
	translate func(pc uint32) (uint32, bool)
}

// NewSymTab builds a table over functions covering [lo, hi) in lookup
// space. The slice is copied and sorted by start address.
func NewSymTab(funcs []Func, lo, hi uint32) *SymTab {
	fs := append([]Func(nil), funcs...)
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Start < fs[j].Start })
	return &SymTab{funcs: fs, lo: lo, hi: hi}
}

// NewProgramSymTab builds the native symbol table of a linked program:
// lookup space is absolute text byte addresses.
func NewProgramSymTab(p *program.Program) *SymTab {
	funcs := make([]Func, len(p.Symbols))
	for i, s := range p.Symbols {
		funcs[i] = Func{Name: s.Name, Start: p.WordAddr(s.Word)}
	}
	return NewSymTab(funcs, p.TextBase, p.TextBase+uint32(4*len(p.Text)))
}

// WithTranslate returns a table that maps each PC through f before
// resolving it — the hook compressed images use to land unit addresses on
// native symbols.
func (t *SymTab) WithTranslate(f func(pc uint32) (uint32, bool)) *SymTab {
	u := *t
	u.translate = f
	return &u
}

// NumFuncs is the number of known functions; ids are 0..NumFuncs()-1.
func (t *SymTab) NumFuncs() int { return len(t.funcs) }

// FuncOf resolves a PC to a function id, or -1 when no symbol covers it.
func (t *SymTab) FuncOf(pc uint32) int {
	if t.translate != nil {
		var ok bool
		if pc, ok = t.translate(pc); !ok {
			return -1
		}
	}
	if pc < t.lo || pc >= t.hi {
		return -1
	}
	// Floor function: last start <= pc.
	i := sort.Search(len(t.funcs), func(i int) bool { return t.funcs[i].Start > pc }) - 1
	return i // -1 when pc precedes the first symbol
}

// Name returns a function's name; -1 (and any out-of-range id) yields the
// unknown marker.
func (t *SymTab) Name(id int) string {
	if id < 0 || id >= len(t.funcs) {
		return UnknownName
	}
	return t.funcs[id].Name
}

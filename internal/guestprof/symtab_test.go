package guestprof

import "testing"

func TestSymTabFuncOf(t *testing.T) {
	tab := NewSymTab([]Func{
		{Name: "b", Start: 0x120},
		{Name: "a", Start: 0x100}, // out of order on purpose: NewSymTab sorts
		{Name: "c", Start: 0x200},
	}, 0x100, 0x300)

	cases := []struct {
		pc   uint32
		want string
	}{
		{0x0FC, UnknownName}, // below text
		{0x100, "a"},
		{0x11C, "a"},
		{0x120, "b"},
		{0x1FC, "b"},
		{0x200, "c"},
		{0x2FC, "c"},
		{0x300, UnknownName}, // end of text is exclusive
	}
	for _, c := range cases {
		if got := tab.Name(tab.FuncOf(c.pc)); got != c.want {
			t.Errorf("FuncOf(%#x) = %q, want %q", c.pc, got, c.want)
		}
	}
	if tab.NumFuncs() != 3 {
		t.Errorf("NumFuncs = %d, want 3", tab.NumFuncs())
	}
}

func TestSymTabBeforeFirstSymbol(t *testing.T) {
	// Text begins before the first symbol: those addresses are in bounds
	// but uncovered.
	tab := NewSymTab([]Func{{Name: "f", Start: 0x110}}, 0x100, 0x120)
	if got := tab.FuncOf(0x104); got != -1 {
		t.Errorf("FuncOf(0x104) = %d, want -1", got)
	}
	if got := tab.Name(tab.FuncOf(0x110)); got != "f" {
		t.Errorf("FuncOf(0x110) = %q, want f", got)
	}
}

func TestSymTabWithTranslate(t *testing.T) {
	base := NewSymTab([]Func{{Name: "f", Start: 0x100}}, 0x100, 0x200)
	shifted := base.WithTranslate(func(pc uint32) (uint32, bool) {
		if pc < 0x1000 {
			return 0, false
		}
		return pc - 0x1000, true
	})

	if got := shifted.Name(shifted.FuncOf(0x1100)); got != "f" {
		t.Errorf("translated FuncOf(0x1100) = %q, want f", got)
	}
	if got := shifted.FuncOf(0x80); got != -1 {
		t.Errorf("rejected translation should be unknown, got %d", got)
	}
	// The original table is unaffected by the derived view.
	if got := base.Name(base.FuncOf(0x100)); got != "f" {
		t.Errorf("base table broken after WithTranslate: %q", got)
	}
}

func TestNameOutOfRange(t *testing.T) {
	tab := NewSymTab(nil, 0, 0)
	if got := tab.Name(-1); got != UnknownName {
		t.Errorf("Name(-1) = %q", got)
	}
	if got := tab.Name(5); got != UnknownName {
		t.Errorf("Name(5) = %q", got)
	}
}

package huffman

import (
	"fmt"

	"repro/internal/sizeaudit"
	"repro/internal/stats"
)

// CCRP models the Compressed Code RISC Processor [Wolfe92][Wolfe94]: a
// single Huffman code trained on the whole program's instruction bytes
// compresses each cache line independently; compressed lines are padded to
// byte boundaries (the cache refill engine needs byte-addressable line
// starts); and a Line Address Table maps each uncompressed line address to
// its compressed location. The paper's §2.3 criticism — byte-granularity
// coding plus LAT overhead — falls straight out of this model.
type CCRP struct {
	LineSize int // uncompressed bytes per cache line (Wolfe used 32)

	// LATBytesPerLine models the compact LAT encoding: Wolfe's scheme
	// stores one full address per group of 8 lines plus short offsets,
	// roughly 3 bytes per line.
	LATBytesPerLine float64

	// Stats, when non-nil, receives the overhead components every
	// compression records (ccrp.lines, ccrp.raw_lines, ccrp.lat_bytes,
	// ccrp.code_table_bytes) — the same recorder convention the dictionary
	// builder uses, nil-safe and free when absent.
	Stats *stats.Recorder

	// Audit, when non-nil, receives per-byte provenance as lines are
	// encoded: Huffman-coded bytes as Codeword bits (the symbol's exact
	// code length), raw-fallback lines as Raw, per-line byte round-up as
	// Padding, and the LAT and code-length table as Table globals.
	Audit *sizeaudit.Emitter
}

// DefaultCCRP is the configuration used for the Ext. A comparison.
func DefaultCCRP() CCRP { return CCRP{LineSize: 32, LATBytesPerLine: 3} }

// Result summarizes a CCRP compression run.
type CCRPResult struct {
	OriginalBytes   int
	CompressedBytes int // padded compressed lines
	LATBytes        int
	Lines           int
	CodeTableBytes  int // shipped dictionary: code lengths per symbol
}

// TotalBytes includes line data, LAT and the code table.
func (r CCRPResult) TotalBytes() int { return r.CompressedBytes + r.LATBytes + r.CodeTableBytes }

// Ratio is compressed/original.
func (r CCRPResult) Ratio() float64 {
	if r.OriginalBytes == 0 {
		return 0
	}
	return float64(r.TotalBytes()) / float64(r.OriginalBytes)
}

// Compress runs the CCRP model over the program text bytes.
func (c CCRP) Compress(text []byte) (CCRPResult, error) {
	if c.LineSize <= 0 {
		return CCRPResult{}, fmt.Errorf("huffman: bad line size %d", c.LineSize)
	}
	var freq [256]int64
	for _, b := range text {
		freq[b]++
	}
	code, err := Build(&freq)
	if err != nil {
		return CCRPResult{}, err
	}
	res := CCRPResult{
		OriginalBytes:  len(text),
		CodeTableBytes: 256, // one code length byte per symbol
	}
	rawLines := 0
	for off := 0; off < len(text); off += c.LineSize {
		end := off + c.LineSize
		if end > len(text) {
			end = len(text)
		}
		line := text[off:end]
		bits := code.EncodedBits(line)
		bytes := (bits + 7) / 8 // pad each line to a byte boundary
		if bytes > len(line) {
			bytes = len(line) // a line never stored expanded (store raw)
			rawLines++
		}
		res.CompressedBytes += bytes
		res.Lines++
	}
	res.LATBytes = int(float64(res.Lines) * c.LATBytesPerLine)
	c.recordStats(res, rawLines)
	return res, nil
}

// recordStats publishes the overhead components into the attached
// recorder; counters materialize even at zero so snapshots always carry
// the full component set.
func (c CCRP) recordStats(res CCRPResult, rawLines int) {
	c.Stats.Add("ccrp.lines", int64(res.Lines))
	c.Stats.Add("ccrp.raw_lines", int64(rawLines))
	c.Stats.Add("ccrp.lat_bytes", int64(res.LATBytes))
	c.Stats.Add("ccrp.code_table_bytes", int64(res.CodeTableBytes))
}

// Verify round-trips every line through the real encoder/decoder to show
// the model's sizes are achievable, not just estimated.
func (c CCRP) Verify(text []byte) error {
	var freq [256]int64
	for _, b := range text {
		freq[b]++
	}
	code, err := Build(&freq)
	if err != nil {
		return err
	}
	for off := 0; off < len(text); off += c.LineSize {
		end := off + c.LineSize
		if end > len(text) {
			end = len(text)
		}
		line := text[off:end]
		enc := code.Encode(line)
		dec, err := code.Decode(enc, len(line))
		if err != nil {
			return fmt.Errorf("huffman: line at %d: %v", off, err)
		}
		for i := range line {
			if dec[i] != line[i] {
				return fmt.Errorf("huffman: line at %d differs at byte %d", off, i)
			}
		}
	}
	return nil
}

package huffman

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/program"
	"repro/internal/sizeaudit"
)

// CCRPImage is an executable compressed program in the CCRP style
// [Wolfe92]: the text is Huffman-compressed per cache line; instruction
// addresses are unchanged (the icache holds decompressed lines), and a
// Line Address Table maps line numbers to compressed blobs. Unlike the
// dictionary method, no branch patching is needed — the cost is moved to
// the refill path.
type CCRPImage struct {
	Name     string
	LineSize int
	TextBase uint32
	NumWords int
	Entry    uint32

	Code  *Code
	Lines [][]byte // compressed or raw payload per line
	Raw   []bool   // true when the line is stored uncompressed

	Data          []byte
	DataBase      uint32
	OriginalBytes int
	LATBytesPer   float64
}

// BuildCCRPImage compresses a program's text per line.
func BuildCCRPImage(p *program.Program, cfg CCRP) (*CCRPImage, error) {
	if cfg.LineSize <= 0 || cfg.LineSize%4 != 0 {
		return nil, fmt.Errorf("huffman: line size %d must be a positive multiple of 4", cfg.LineSize)
	}
	text := p.TextBytes()
	var freq [256]int64
	for _, b := range text {
		freq[b]++
	}
	code, err := Build(&freq)
	if err != nil {
		return nil, err
	}
	img := &CCRPImage{
		Name:          p.Name,
		LineSize:      cfg.LineSize,
		TextBase:      p.TextBase,
		NumWords:      len(p.Text),
		Entry:         p.EntryAddr(),
		Code:          code,
		Data:          append([]byte(nil), p.Data...),
		DataBase:      p.DataBase,
		OriginalBytes: p.SizeBytes(),
		LATBytesPer:   cfg.LATBytesPerLine,
	}
	rawLines := 0
	for off := 0; off < len(text); off += cfg.LineSize {
		end := off + cfg.LineSize
		if end > len(text) {
			end = len(text)
		}
		line := text[off:end]
		enc := code.Encode(line)
		if len(enc) >= len(line) {
			img.Lines = append(img.Lines, append([]byte(nil), line...))
			img.Raw = append(img.Raw, true)
			rawLines++
			for i := range line {
				cfg.Audit.At(sizeaudit.Raw, uint32(off+i), 8)
			}
		} else {
			img.Lines = append(img.Lines, enc)
			img.Raw = append(img.Raw, false)
			for i, b := range line {
				cfg.Audit.At(sizeaudit.Codeword, uint32(off+i), int64(code.Lens[b]))
			}
			// The byte round-up at the end of the line belongs to whichever
			// function owns the line start — close enough for a sub-byte
			// remainder, and it keeps the accounting exact.
			cfg.Audit.At(sizeaudit.Padding, uint32(off),
				int64(len(enc))*8-int64(code.EncodedBits(line)))
		}
	}
	latBytes := img.CompressedBytes() - 256
	for _, l := range img.Lines {
		latBytes -= len(l)
	}
	cfg.Audit.Global(sizeaudit.Table, sizeaudit.LATRow, int64(latBytes)*8)
	cfg.Audit.Global(sizeaudit.Table, sizeaudit.CodeTableRow, 256*8)
	cfg.recordStats(CCRPResult{
		Lines:          len(img.Lines),
		LATBytes:       latBytes,
		CodeTableBytes: 256,
	}, rawLines)
	return img, nil
}

// CompressedBytes counts line payloads, the LAT and the code table.
func (img *CCRPImage) CompressedBytes() int {
	n := 256 // code-length table
	for _, l := range img.Lines {
		n += len(l)
	}
	n += int(float64(len(img.Lines)) * img.LATBytesPer)
	return n
}

// Ratio is compressed/original.
func (img *CCRPImage) Ratio() float64 {
	if img.OriginalBytes == 0 {
		return 0
	}
	return float64(img.CompressedBytes()) / float64(img.OriginalBytes)
}

// decodeLine expands line ln into words.
func (img *CCRPImage) decodeLine(ln int) ([]uint32, error) {
	if ln < 0 || ln >= len(img.Lines) {
		return nil, fmt.Errorf("huffman: line %d out of range", ln)
	}
	nbytes := img.LineSize
	if rem := img.NumWords*4 - ln*img.LineSize; rem < nbytes {
		nbytes = rem
	}
	var raw []byte
	if img.Raw[ln] {
		raw = img.Lines[ln]
	} else {
		dec, err := img.Code.Decode(img.Lines[ln], nbytes)
		if err != nil {
			return nil, fmt.Errorf("huffman: line %d: %w", ln, err)
		}
		raw = dec
	}
	words := make([]uint32, nbytes/4)
	for i := range words {
		words[i] = uint32(raw[4*i])<<24 | uint32(raw[4*i+1])<<16 |
			uint32(raw[4*i+2])<<8 | uint32(raw[4*i+3])
	}
	return words, nil
}

// CCRPFrontend is the CCRP fetch path: instruction addresses are the
// original ones; a small direct-mapped buffer of decompressed lines stands
// in for the instruction cache, and a miss charges the compressed line's
// bytes as memory traffic.
type CCRPFrontend struct {
	img   *CCRPImage
	pc    uint32
	ways  int
	tags  []int // cached line number per way, -1 empty
	lines [][]uint32

	// Misses counts refills (line decompressions).
	Misses int64
}

// NewCCRPFrontend builds the fetch path with the given number of cached
// decompressed lines.
func NewCCRPFrontend(img *CCRPImage, cacheLines int) *CCRPFrontend {
	if cacheLines < 1 {
		cacheLines = 1
	}
	f := &CCRPFrontend{
		img:   img,
		ways:  cacheLines,
		tags:  make([]int, cacheLines),
		lines: make([][]uint32, cacheLines),
	}
	for i := range f.tags {
		f.tags[i] = -1
	}
	return f
}

var _ machine.Frontend = (*CCRPFrontend)(nil)

// Reset positions fetch.
func (f *CCRPFrontend) Reset(entry uint32) error { return f.SetPC(entry) }

// SetPC redirects fetch; addresses are original text addresses.
func (f *CCRPFrontend) SetPC(addr uint32) error {
	lo := f.img.TextBase
	hi := lo + uint32(4*f.img.NumWords)
	if addr < lo || addr >= hi || addr%4 != 0 {
		return fmt.Errorf("huffman: jump to %#x outside text [%#x,%#x)", addr, lo, hi)
	}
	f.pc = addr
	return nil
}

// RelTarget: standard word-scaled displacement — CCRP needs no control
// unit changes, which was its selling point.
func (f *CCRPFrontend) RelTarget(cia uint32, field int32) uint32 {
	return cia + uint32(field)*4
}

// Fetch serves the instruction at PC, refilling through the decompressor
// on a line miss.
func (f *CCRPFrontend) Fetch() (machine.FetchInfo, error) {
	off := int(f.pc - f.img.TextBase)
	ln := off / f.img.LineSize
	way := ln % f.ways
	fi := machine.FetchInfo{CIA: f.pc, Next: f.pc + 4, NextOK: true}
	if f.tags[way] != ln {
		words, err := f.img.decodeLine(ln)
		if err != nil {
			return machine.FetchInfo{}, err
		}
		f.tags[way] = ln
		f.lines[way] = words
		f.Misses++
		fi.MemAddr = f.img.TextBase + uint32(ln*f.img.LineSize)
		fi.MemBytes = len(f.img.Lines[ln]) // compressed bytes cross memory
	}
	idx := off % f.img.LineSize / 4
	if idx >= len(f.lines[way]) {
		return machine.FetchInfo{}, fmt.Errorf("huffman: fetch at %#x beyond line", f.pc)
	}
	fi.Word = f.lines[way][idx]
	f.pc += 4
	return fi, nil
}

// NewCCRPMachine builds a CPU executing the CCRP image.
func NewCCRPMachine(img *CCRPImage, cacheLines int) (*machine.CPU, error) {
	mem := machine.NewMemory()
	data := make([]byte, len(img.Data)+1<<16)
	copy(data, img.Data)
	if err := mem.Map("data", img.DataBase, data); err != nil {
		return nil, err
	}
	if err := mem.Map("stack", 0x7FF0_0000-1<<20, make([]byte, 1<<20)); err != nil {
		return nil, err
	}
	fe := NewCCRPFrontend(img, cacheLines)
	cpu := machine.New(mem, fe)
	if err := fe.Reset(img.Entry); err != nil {
		return nil, err
	}
	cpu.GPR[1] = 0x7FF0_0000 - 64
	return cpu, nil
}

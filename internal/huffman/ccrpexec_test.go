package huffman

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/synth"
)

func TestCCRPImageSizesMatchModel(t *testing.T) {
	// The executable image and the analytic model must agree on the
	// compressed size (the model also caps lines at raw size).
	p, err := synth.Generate("li")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultCCRP()
	img, err := BuildCCRPImage(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := cfg.Compress(p.TextBytes())
	if err != nil {
		t.Fatal(err)
	}
	if img.CompressedBytes() != model.TotalBytes() {
		t.Fatalf("executable image %d bytes, model %d", img.CompressedBytes(), model.TotalBytes())
	}
	if img.Ratio() >= 1 {
		t.Fatalf("ratio %.3f", img.Ratio())
	}
}

func TestCCRPExecutionMatchesOriginal(t *testing.T) {
	for _, name := range []string{"compress", "li", "go"} {
		p, err := synth.Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		orig, err := machine.NewForProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		st1, err := orig.Run(200_000_000)
		if err != nil {
			t.Fatal(err)
		}

		img, err := BuildCCRPImage(p, DefaultCCRP())
		if err != nil {
			t.Fatal(err)
		}
		cpu, err := NewCCRPMachine(img, 64)
		if err != nil {
			t.Fatal(err)
		}
		st2, err := cpu.Run(200_000_000)
		if err != nil {
			t.Fatalf("%s: CCRP execution: %v", name, err)
		}
		if st1 != st2 || string(orig.Output()) != string(cpu.Output()) {
			t.Fatalf("%s: behavior differs: %d/%q vs %d/%q",
				name, st1, orig.Output(), st2, cpu.Output())
		}
		if orig.Stats.Steps != cpu.Stats.Steps {
			t.Fatalf("%s: dynamic instruction counts differ: %d vs %d",
				name, orig.Stats.Steps, cpu.Stats.Steps)
		}
		// Misses must have occurred and charged compressed-line traffic.
		fe := cpu.Frontend().(*CCRPFrontend)
		if fe.Misses == 0 || cpu.Stats.FetchedBytes == 0 {
			t.Fatalf("%s: no refill traffic recorded", name)
		}
		// Compressed refills move fewer bytes than raw refills would.
		rawRefill := fe.Misses * int64(img.LineSize)
		if cpu.Stats.FetchedBytes >= rawRefill {
			t.Fatalf("%s: refill traffic %d not below raw %d", name, cpu.Stats.FetchedBytes, rawRefill)
		}
	}
}

func TestCCRPTinyCacheStillCorrect(t *testing.T) {
	// A single-line buffer thrashes but must stay correct.
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	img, err := BuildCCRPImage(p, DefaultCCRP())
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewCCRPMachine(img, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	tiny, err := NewCCRPMachine(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tiny.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if string(big.Output()) != string(tiny.Output()) {
		t.Fatal("cache size changed program behavior")
	}
	bigFE := big.Frontend().(*CCRPFrontend)
	tinyFE := tiny.Frontend().(*CCRPFrontend)
	if tinyFE.Misses <= bigFE.Misses {
		t.Fatalf("tiny cache misses %d not above big cache %d", tinyFE.Misses, bigFE.Misses)
	}
}

func TestCCRPFrontendValidation(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	img, err := BuildCCRPImage(p, DefaultCCRP())
	if err != nil {
		t.Fatal(err)
	}
	fe := NewCCRPFrontend(img, 4)
	if err := fe.SetPC(img.TextBase - 4); err == nil {
		t.Error("jump below text accepted")
	}
	if err := fe.SetPC(img.TextBase + 2); err == nil {
		t.Error("unaligned jump accepted")
	}
	if _, err := BuildCCRPImage(p, CCRP{LineSize: 30}); err == nil {
		t.Error("non-multiple-of-4 line size accepted")
	}
}

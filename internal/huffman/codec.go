package huffman

import (
	"fmt"
	"io"
	"math"

	"repro/internal/codec"
	"repro/internal/machine"
	"repro/internal/program"
	"repro/internal/sizeaudit"
	"repro/internal/wire"
)

func init() {
	codec.Register(ccrpCodec{})
}

// DefaultCacheLines is the decompressed-line buffer size a self-describing
// CCRP image executes with when the caller supplies no configuration (the
// codec.Executable path); 64 lines of 32 bytes matches the execution
// benchmarks' 2 KB buffer.
const DefaultCacheLines = 64

// Method identifies the CCRP codec in image frames.
func (img *CCRPImage) Method() codec.Method { return codec.CCRP }

// NewMachine builds a CPU executing the image with DefaultCacheLines
// decompressed lines buffered.
func (img *CCRPImage) NewMachine() (*machine.CPU, error) {
	return NewCCRPMachine(img, DefaultCacheLines)
}

// WriteCCRPImagePayload serializes a CCRP image body (the bytes after the
// PPCZ frame header).
func WriteCCRPImagePayload(dst io.Writer, img *CCRPImage) error {
	w := wire.NewWriter(dst)
	w.Str(img.Name)
	w.U32(uint32(img.LineSize))
	w.U32(img.TextBase)
	w.U32(uint32(img.NumWords))
	w.U32(img.Entry)
	w.Bytes(img.Code.Lens[:])
	w.U32(uint32(len(img.Lines)))
	for ln, l := range img.Lines {
		raw := uint8(0)
		if img.Raw[ln] {
			raw = 1
		}
		w.U8(raw)
		w.Blob(l)
	}
	w.Blob(img.Data)
	w.U32(img.DataBase)
	w.U32(uint32(img.OriginalBytes))
	w.U64(math.Float64bits(img.LATBytesPer))
	return w.Err()
}

// ReadCCRPImagePayload deserializes a CCRP image body.
func ReadCCRPImagePayload(src io.Reader) (*CCRPImage, error) {
	r := wire.NewReader(src)
	img := &CCRPImage{}
	img.Name = r.Str()
	img.LineSize = int(r.U32())
	img.TextBase = r.U32()
	img.NumWords = int(r.U32())
	img.Entry = r.U32()
	var lens [256]uint8
	copy(lens[:], r.Bytes(256))
	nlines := r.Count(int(r.U32()), "line")
	for i := 0; i < nlines && r.Err() == nil; i++ {
		img.Raw = append(img.Raw, r.U8() != 0)
		img.Lines = append(img.Lines, r.Blob())
	}
	img.Data = r.Blob()
	img.DataBase = r.U32()
	img.OriginalBytes = int(r.U32())
	img.LATBytesPer = math.Float64frombits(r.U64())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if img.LineSize <= 0 || img.LineSize%4 != 0 {
		return nil, fmt.Errorf("huffman: bad line size %d in image", img.LineSize)
	}
	code, err := NewCodeFromLens(lens)
	if err != nil {
		return nil, err
	}
	img.Code = code
	return img, nil
}

// ccrpCodec adapts the CCRP model to the codec interface with the Ext. A
// configuration (DefaultCCRP).
type ccrpCodec struct{}

func (ccrpCodec) Method() codec.Method { return codec.CCRP }
func (ccrpCodec) Name() string         { return "ccrp" }

func cfgFor(opt codec.Options) CCRP {
	cfg := DefaultCCRP()
	cfg.Stats = opt.Stats
	cfg.Audit = opt.Audit
	return cfg
}

// Compress builds a CCRP image; the dictionary-shape options do not apply
// and are ignored.
func (ccrpCodec) Compress(p *program.Program, opt codec.Options) (codec.Image, error) {
	return BuildCCRPImage(p, cfgFor(opt))
}

// Open deserializes a CCRP image payload.
func (ccrpCodec) Open(r io.Reader) (codec.Image, error) { return ReadCCRPImagePayload(r) }

// WriteImage serializes a CCRP image payload.
func (ccrpCodec) WriteImage(w io.Writer, img codec.Image) error {
	ci, ok := img.(*CCRPImage)
	if !ok {
		return fmt.Errorf("huffman: %T is not a CCRP image", img)
	}
	return WriteCCRPImagePayload(w, ci)
}

// Verify decodes every stored line and compares it against the original
// text — the image-level equivalent of CCRP.Verify.
func (ccrpCodec) Verify(p *program.Program, img codec.Image) error {
	ci, ok := img.(*CCRPImage)
	if !ok {
		return fmt.Errorf("huffman: %T is not a CCRP image", img)
	}
	if ci.NumWords != len(p.Text) {
		return fmt.Errorf("huffman: image holds %d words, program %d", ci.NumWords, len(p.Text))
	}
	wordsPerLine := ci.LineSize / 4
	for ln := range ci.Lines {
		words, err := ci.decodeLine(ln)
		if err != nil {
			return err
		}
		for i, w := range words {
			if orig := p.Text[ln*wordsPerLine+i]; w != orig {
				return fmt.Errorf("huffman: line %d word %d: %#x != %#x", ln, i, w, orig)
			}
		}
	}
	return nil
}

// Audit recompresses with a live provenance emitter and returns the
// conservation-checked audit.
func (ccrpCodec) Audit(p *program.Program, opt codec.Options) (*sizeaudit.Audit, error) {
	em := sizeaudit.NewProgramEmitter(p)
	cfg := cfgFor(opt)
	cfg.Audit = em
	img, err := BuildCCRPImage(p, cfg)
	if err != nil {
		return nil, err
	}
	a := em.Finish(p.Name, "ccrp", img.CompressedBytes(), p.SizeBytes())
	if err := a.Check(); err != nil {
		return nil, err
	}
	return a, nil
}

// MaxCompressedBytes: lines never expand (raw fallback), so the bound is
// the text plus the LAT and code table.
func (ccrpCodec) MaxCompressedBytes(originalBytes int) int {
	cfg := DefaultCCRP()
	lines := (originalBytes + cfg.LineSize - 1) / cfg.LineSize
	return originalBytes + int(float64(lines)*cfg.LATBytesPerLine) + 256
}

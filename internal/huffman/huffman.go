// Package huffman implements a canonical Huffman byte coder and the CCRP
// model of Wolfe & Chanin [Wolfe92]: instruction bytes are Huffman-encoded
// per cache line, lines are padded to byte boundaries, and a Line Address
// Table (LAT) maps uncompressed line addresses to compressed locations.
// This is the related-work comparator of §2.3.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// maxCodeLen bounds canonical code lengths so codes fit comfortably in a
// uint64 accumulator. Program byte distributions stay far below this.
const maxCodeLen = 56

// Code is a canonical Huffman code table.
type Code struct {
	Lens  [256]uint8  // code length per symbol, 0 = absent
	Codes [256]uint64 // canonical code value per symbol
}

// hnode is a Huffman tree node; sym is -1 for internal nodes.
type hnode struct {
	weight      int64
	sym         int
	left, right int
}

// Build constructs a canonical Huffman code from byte frequencies.
func Build(freq *[256]int64) (*Code, error) {
	var nodes []hnode
	var live []int
	for s, f := range freq {
		if f > 0 {
			nodes = append(nodes, hnode{weight: f, sym: s, left: -1, right: -1})
			live = append(live, len(nodes)-1)
		}
	}
	if len(live) == 0 {
		return nil, errors.New("huffman: empty input")
	}
	c := &Code{}
	if len(live) == 1 {
		// Degenerate alphabet: one symbol, one-bit code.
		c.Lens[nodes[live[0]].sym] = 1
		assignCanonical(c)
		return c, nil
	}
	h := &nodeHeap{nodes: &nodes, idx: live}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(int)
		b := heap.Pop(h).(int)
		nodes = append(nodes, hnode{weight: nodes[a].weight + nodes[b].weight, sym: -1, left: a, right: b})
		heap.Push(h, len(nodes)-1)
	}
	root := h.idx[0]
	// Depth-first code length assignment.
	type visit struct {
		n     int
		depth uint8
	}
	stack := []visit{{root, 0}}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[v.n]
		if nd.sym >= 0 {
			if v.depth == 0 {
				v.depth = 1
			}
			if v.depth > maxCodeLen {
				return nil, fmt.Errorf("huffman: code length %d exceeds limit", v.depth)
			}
			c.Lens[nd.sym] = v.depth
			continue
		}
		stack = append(stack, visit{nd.left, v.depth + 1}, visit{nd.right, v.depth + 1})
	}
	assignCanonical(c)
	return c, nil
}

// NewCodeFromLens rebuilds a canonical code from its per-symbol lengths —
// the form the code table is serialized in (the canonical property means
// lengths alone determine the code values).
func NewCodeFromLens(lens [256]uint8) (*Code, error) {
	c := &Code{Lens: lens}
	n := 0
	for s, l := range lens {
		if l > maxCodeLen {
			return nil, fmt.Errorf("huffman: symbol %d code length %d exceeds limit", s, l)
		}
		if l > 0 {
			n++
		}
	}
	if n == 0 {
		return nil, errors.New("huffman: empty code table")
	}
	assignCanonical(c)
	return c, nil
}

// nodeHeap orders node indices by weight (ties by index for determinism).
type nodeHeap struct {
	nodes *[]hnode
	idx   []int
}

func (h *nodeHeap) Len() int { return len(h.idx) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.idx[i], h.idx[j]
	na, nb := (*h.nodes)[a], (*h.nodes)[b]
	if na.weight != nb.weight {
		return na.weight < nb.weight
	}
	return a < b
}
func (h *nodeHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *nodeHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.idx
	n := len(old)
	v := old[n-1]
	h.idx = old[:n-1]
	return v
}

// assignCanonical fills Codes from Lens using the canonical ordering
// (shorter codes first, ties by symbol value).
func assignCanonical(c *Code) {
	type sl struct {
		sym int
		l   uint8
	}
	var syms []sl
	for s, l := range c.Lens {
		if l > 0 {
			syms = append(syms, sl{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].sym < syms[j].sym
	})
	code := uint64(0)
	prevLen := uint8(0)
	for _, s := range syms {
		code <<= s.l - prevLen
		c.Codes[s.sym] = code
		code++
		prevLen = s.l
	}
}

// EncodedBits returns the encoded size of data in bits under the code.
func (c *Code) EncodedBits(data []byte) int {
	bits := 0
	for _, b := range data {
		bits += int(c.Lens[b])
	}
	return bits
}

// Encode compresses data (MSB-first bit packing).
func (c *Code) Encode(data []byte) []byte {
	var out []byte
	var acc uint64
	var nacc uint
	for _, b := range data {
		l := uint(c.Lens[b])
		acc = acc<<l | c.Codes[b]
		nacc += l
		for nacc >= 8 {
			out = append(out, byte(acc>>(nacc-8)))
			nacc -= 8
		}
	}
	if nacc > 0 {
		out = append(out, byte(acc<<(8-nacc)))
	}
	return out
}

// Decode expands exactly n symbols from the encoded stream.
func (c *Code) Decode(enc []byte, n int) ([]byte, error) {
	// Build a canonical decode table: for each length, the first code and
	// the symbol list in canonical order.
	type lenClass struct {
		first uint64
		syms  []byte
	}
	classes := map[uint8]*lenClass{}
	var lens []uint8
	{
		type sl struct {
			sym int
			l   uint8
		}
		var syms []sl
		for s, l := range c.Lens {
			if l > 0 {
				syms = append(syms, sl{s, l})
			}
		}
		sort.Slice(syms, func(i, j int) bool {
			if syms[i].l != syms[j].l {
				return syms[i].l < syms[j].l
			}
			return syms[i].sym < syms[j].sym
		})
		code := uint64(0)
		prevLen := uint8(0)
		for _, s := range syms {
			code <<= s.l - prevLen
			cl := classes[s.l]
			if cl == nil {
				cl = &lenClass{first: code}
				classes[s.l] = cl
				lens = append(lens, s.l)
			}
			cl.syms = append(cl.syms, byte(s.sym))
			code++
			prevLen = s.l
		}
	}
	out := make([]byte, 0, n)
	var acc uint64
	var nacc uint
	pos := 0
	for len(out) < n {
		matched := false
		for _, l := range lens {
			for nacc < uint(l) {
				if pos >= len(enc) {
					if len(out) == n {
						return out, nil
					}
					return nil, errors.New("huffman: truncated stream")
				}
				acc = acc<<8 | uint64(enc[pos])
				pos++
				nacc += 8
			}
			v := acc >> (nacc - uint(l))
			cl := classes[l]
			if v >= cl.first && v < cl.first+uint64(len(cl.syms)) {
				out = append(out, cl.syms[v-cl.first])
				acc &= 1<<(nacc-uint(l)) - 1
				nacc -= uint(l)
				matched = true
				break
			}
		}
		if !matched {
			return nil, errors.New("huffman: invalid code")
		}
	}
	return out, nil
}

package huffman

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/synth"
)

func freqOf(data []byte) *[256]int64 {
	var f [256]int64
	for _, b := range data {
		f[b]++
	}
	return &f
}

func TestBuildEmptyErrors(t *testing.T) {
	var f [256]int64
	if _, err := Build(&f); err == nil {
		t.Fatal("empty frequency table accepted")
	}
}

func TestSingleSymbol(t *testing.T) {
	data := bytes.Repeat([]byte{42}, 100)
	c, err := Build(freqOf(data))
	if err != nil {
		t.Fatal(err)
	}
	if c.Lens[42] != 1 {
		t.Fatalf("single symbol got %d-bit code", c.Lens[42])
	}
	enc := c.Encode(data)
	if len(enc) != 13 { // 100 bits -> 13 bytes
		t.Fatalf("encoded %d bytes", len(enc))
	}
	dec, err := c.Decode(enc, 100)
	if err != nil || !bytes.Equal(dec, data) {
		t.Fatalf("round trip: %v", err)
	}
}

func TestKraftInequality(t *testing.T) {
	// Canonical code lengths must satisfy Kraft with equality for a full
	// tree (>= 2 symbols).
	data := []byte("abracadabra alakazam")
	c, err := Build(freqOf(data))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, l := range c.Lens {
		if l > 0 {
			sum += 1 / float64(uint64(1)<<l)
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("Kraft sum %f", sum)
	}
}

func TestPrefixFree(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog 0123456789")
	c, err := Build(freqOf(data))
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 256; a++ {
		if c.Lens[a] == 0 {
			continue
		}
		for b := 0; b < 256; b++ {
			if a == b || c.Lens[b] == 0 || c.Lens[a] > c.Lens[b] {
				continue
			}
			// code a must not prefix code b.
			if c.Codes[b]>>(c.Lens[b]-c.Lens[a]) == c.Codes[a] {
				t.Fatalf("code of %d prefixes code of %d", a, b)
			}
		}
	}
}

func TestOptimalityAgainstSkew(t *testing.T) {
	// A strongly skewed distribution must give the hot symbol the
	// shortest code.
	var f [256]int64
	f['x'] = 1000
	f['y'] = 10
	f['z'] = 10
	f['w'] = 1
	c, err := Build(&f)
	if err != nil {
		t.Fatal(err)
	}
	if c.Lens['x'] != 1 {
		t.Fatalf("hot symbol has %d-bit code", c.Lens['x'])
	}
	if c.Lens['w'] < c.Lens['y'] {
		t.Fatal("rare symbol shorter than common one")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint16, alpha uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := int(alpha)%255 + 1
		data := make([]byte, int(n)%4000+1)
		for i := range data {
			data[i] = byte(rng.Intn(a))
		}
		c, err := Build(freqOf(data))
		if err != nil {
			return false
		}
		enc := c.Encode(data)
		if len(enc)*8 < c.EncodedBits(data) {
			return false
		}
		dec, err := c.Decode(enc, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(dec, data)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	var f [256]int64
	f['a'], f['b'], f['c'] = 5, 3, 1
	c, err := Build(&f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode([]byte{}, 3); err == nil {
		t.Fatal("empty stream decoded 3 symbols")
	}
}

func TestCCRPOnBenchmark(t *testing.T) {
	p, err := synth.Generate("li")
	if err != nil {
		t.Fatal(err)
	}
	text := p.TextBytes()
	model := DefaultCCRP()
	res, err := model.Compress(text)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines != (len(text)+31)/32 {
		t.Fatalf("lines %d for %d bytes", res.Lines, len(text))
	}
	if res.Ratio() <= 0 || res.Ratio() >= 1.1 {
		t.Fatalf("CCRP ratio %.3f implausible", res.Ratio())
	}
	if res.LATBytes == 0 || res.CodeTableBytes == 0 {
		t.Fatal("overheads not accounted")
	}
	t.Logf("li: CCRP ratio %.3f (lines %.3f, LAT %.3f of original)",
		res.Ratio(), float64(res.CompressedBytes)/float64(len(text)),
		float64(res.LATBytes)/float64(len(text)))
	if err := model.Verify(text); err != nil {
		t.Fatalf("per-line verify: %v", err)
	}
}

func TestCCRPLineNeverExpands(t *testing.T) {
	// Adversarial text: uniform bytes compress poorly; lines must be
	// stored raw rather than expanded.
	rng := rand.New(rand.NewSource(9))
	text := make([]byte, 4096)
	for i := range text {
		text[i] = byte(rng.Intn(256))
	}
	res, err := DefaultCCRP().Compress(text)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressedBytes > len(text) {
		t.Fatalf("lines expanded: %d > %d", res.CompressedBytes, len(text))
	}
}

func TestCCRPBadConfig(t *testing.T) {
	if _, err := (CCRP{LineSize: 0}).Compress([]byte{1}); err == nil {
		t.Fatal("zero line size accepted")
	}
}

package lzw

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/program"
	"repro/internal/sizeaudit"
	"repro/internal/wire"
)

func init() {
	codec.Register(lzwCodec{}, "compress")
}

// Image is a whole-text LZW compression of a program. It is a size
// comparator, not an executable encoding: LZW's sequential decode offers
// no random access, which is exactly the paper's Figure 11 point.
type Image struct {
	Name          string
	OriginalBytes int
	Blob          []byte // the LZW stream over the program's text bytes
}

// Method identifies the LZW codec in image frames.
func (img *Image) Method() codec.Method { return codec.LZW }

// CompressedBytes is the stream length.
func (img *Image) CompressedBytes() int { return len(img.Blob) }

// Ratio is compressed/original.
func (img *Image) Ratio() float64 {
	if img.OriginalBytes == 0 {
		return 0
	}
	return float64(img.CompressedBytes()) / float64(img.OriginalBytes)
}

// WriteImagePayload serializes an LZW image body.
func WriteImagePayload(dst io.Writer, img *Image) error {
	w := wire.NewWriter(dst)
	w.Str(img.Name)
	w.U32(uint32(img.OriginalBytes))
	w.Blob(img.Blob)
	return w.Err()
}

// ReadImagePayload deserializes an LZW image body.
func ReadImagePayload(src io.Reader) (*Image, error) {
	r := wire.NewReader(src)
	img := &Image{}
	img.Name = r.Str()
	img.OriginalBytes = int(r.U32())
	img.Blob = r.Blob()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return img, nil
}

// lzwCodec adapts the compressor to the codec interface.
type lzwCodec struct{}

func (lzwCodec) Method() codec.Method { return codec.LZW }
func (lzwCodec) Name() string         { return "lzw" }

// Compress encodes the program's text bytes; the dictionary-shape options
// do not apply and are ignored.
func (lzwCodec) Compress(p *program.Program, opt codec.Options) (codec.Image, error) {
	return &Image{
		Name:          p.Name,
		OriginalBytes: p.SizeBytes(),
		Blob:          CompressAudited(p.TextBytes(), opt.Stats, opt.Audit),
	}, nil
}

// Open deserializes an LZW image payload.
func (lzwCodec) Open(r io.Reader) (codec.Image, error) { return ReadImagePayload(r) }

// WriteImage serializes an LZW image payload.
func (lzwCodec) WriteImage(w io.Writer, img codec.Image) error {
	li, ok := img.(*Image)
	if !ok {
		return fmt.Errorf("lzw: %T is not an LZW image", img)
	}
	return WriteImagePayload(w, li)
}

// Verify decompresses the stream and compares it to the program text.
func (lzwCodec) Verify(p *program.Program, img codec.Image) error {
	li, ok := img.(*Image)
	if !ok {
		return fmt.Errorf("lzw: %T is not an LZW image", img)
	}
	got, err := Decompress(li.Blob)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, p.TextBytes()) {
		return fmt.Errorf("lzw: decompressed text differs from program %s", p.Name)
	}
	return nil
}

// Audit compresses with a live provenance emitter and returns the
// conservation-checked audit.
func (lzwCodec) Audit(p *program.Program, opt codec.Options) (*sizeaudit.Audit, error) {
	em := sizeaudit.NewProgramEmitter(p)
	out := CompressAudited(p.TextBytes(), opt.Stats, em)
	a := em.Finish(p.Name, "lzw", len(out), p.SizeBytes())
	if err := a.Check(); err != nil {
		return nil, err
	}
	return a, nil
}

// MaxCompressedBytes: the worst case emits one code per input byte at the
// maximum 16-bit width, plus the flush round-up.
func (lzwCodec) MaxCompressedBytes(originalBytes int) int {
	return 2*originalBytes + 2
}

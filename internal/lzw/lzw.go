// Package lzw implements the Unix compress(1) algorithm family: LZW with
// variable code width growing from 9 to 16 bits and a dictionary reset
// when compression degrades. It is the adaptive-dictionary comparator of
// the paper's Figure 11 ("we extracted the instruction bytes from the
// benchmarks and compressed them with Unix Compress").
//
// The implementation is self-contained (no compress/lzw dependency) so the
// reproduction owns its baseline end to end.
package lzw

import (
	"errors"
	"fmt"

	"repro/internal/sizeaudit"
	"repro/internal/stats"
)

const (
	minBits   = 9
	maxBits   = 16
	clearCode = 256 // emitted to reset the dictionary
	firstCode = 257
)

// bitWriter packs variable-width codes LSB-first (as compress does).
type bitWriter struct {
	out  []byte
	acc  uint32
	nacc uint
}

func (w *bitWriter) write(code, bits uint32) {
	w.acc |= code << w.nacc
	w.nacc += uint(bits)
	for w.nacc >= 8 {
		w.out = append(w.out, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
}

func (w *bitWriter) flush() []byte {
	if w.nacc > 0 {
		w.out = append(w.out, byte(w.acc))
		w.acc, w.nacc = 0, 0
	}
	return w.out
}

// bitReader unpacks variable-width codes LSB-first.
type bitReader struct {
	in   []byte
	pos  int
	acc  uint32
	nacc uint
}

func (r *bitReader) read(bits uint) (uint32, error) {
	for r.nacc < bits {
		if r.pos >= len(r.in) {
			return 0, errors.New("lzw: truncated stream")
		}
		r.acc |= uint32(r.in[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
	v := r.acc & (1<<bits - 1)
	r.acc >>= bits
	r.nacc -= bits
	return v, nil
}

// Compress encodes data with LZW, growing code widths 9..16 bits and
// emitting a clear code whenever the table fills and the recent
// compression ratio worsens.
func Compress(data []byte) []byte {
	return compress(data, nil, nil)
}

// CompressAudited is Compress with observability attached: rec receives
// the overhead counters (lzw.dict_resets, lzw.codes, lzw.literal_codes)
// and em one provenance record per emitted code — string-table codes as
// Codeword bits at the span's first input byte, single-byte literals as
// Raw, clear codes as Dict, and the final flush round-up as Padding. Both
// may be nil (each layer is nil-safe), and the output is byte-identical
// to Compress.
func CompressAudited(data []byte, rec *stats.Recorder, em *sizeaudit.Emitter) []byte {
	return compress(data, rec, em)
}

func compress(data []byte, rec *stats.Recorder, em *sizeaudit.Emitter) []byte {
	rec.Add("lzw.dict_resets", 0) // materialize: zero resets is a finding
	w := &bitWriter{}
	table := make(map[string]uint32, 1<<12)
	reset := func() uint32 {
		for k := range table {
			delete(table, k)
		}
		for i := 0; i < 256; i++ {
			table[string([]byte{byte(i)})] = uint32(i)
		}
		return firstCode
	}
	next := reset()
	bits := uint32(minBits)

	if len(data) == 0 {
		return w.flush()
	}
	// checkGap controls how often the adaptive reset is considered.
	const checkGap = 4096
	lastCheck := 0
	lastOutLen := 0

	// spanStart is the input offset of cur's first byte: each emitted code
	// covers data[spanStart:i], so its bits are attributed there.
	var bitsWritten, codes, literals int64
	emit := func(code, width uint32, spanStart int) {
		w.write(code, width)
		bitsWritten += int64(width)
		codes++
		cls := sizeaudit.Codeword
		if code < clearCode {
			cls = sizeaudit.Raw
			literals++
		}
		em.At(cls, uint32(spanStart), int64(width))
	}

	spanStart := 0
	cur := string(data[:1])
	for i := 1; i < len(data); i++ {
		c := data[i]
		// NB: string(c) would UTF-8-encode the byte; splice it verbatim.
		ext := cur + string([]byte{c})
		if _, ok := table[ext]; ok {
			cur = ext
			continue
		}
		emit(table[cur], bits, spanStart)
		if next < 1<<maxBits {
			table[ext] = next
			next++
			if next == 1<<bits+1 && bits < maxBits {
				bits++
			}
		} else if i-lastCheck > checkGap {
			// Table full: reset when output is growing faster than input
			// consumed since the last check (compression degrading).
			outGrew := len(w.out) - lastOutLen
			if outGrew > (i-lastCheck)*9/10 {
				w.write(clearCode, bits)
				bitsWritten += int64(bits)
				em.Global(sizeaudit.Dict, sizeaudit.ResetRow, int64(bits))
				rec.Add("lzw.dict_resets", 1)
				next = reset()
				bits = minBits
			}
			lastCheck = i
			lastOutLen = len(w.out)
		}
		cur = string([]byte{c})
		spanStart = i
	}
	emit(table[cur], bits, spanStart)
	out := w.flush()
	em.Global(sizeaudit.Padding, sizeaudit.PadRow, int64(len(out))*8-bitsWritten)
	rec.Add("lzw.codes", codes)
	rec.Add("lzw.literal_codes", literals)
	return out
}

// Decompress inverts Compress.
func Decompress(data []byte) ([]byte, error) {
	r := &bitReader{in: data}
	var out []byte

	var table [][]byte
	reset := func() {
		table = table[:0]
		for i := 0; i < 256; i++ {
			table = append(table, []byte{byte(i)})
		}
		table = append(table, nil) // clear code placeholder
	}
	reset()
	bits := uint(minBits)

	var prev []byte
	for {
		// The encoder widens codes after inserting entry 1<<bits; the
		// decoder's table runs one entry behind, so it must widen when its
		// table reaches 1<<bits, before reading the next code.
		for len(table) >= 1<<bits && bits < maxBits {
			bits++
		}
		code, err := r.read(bits)
		if err != nil {
			// Natural end of stream.
			return out, nil
		}
		if code == clearCode {
			reset()
			bits = minBits
			prev = nil
			continue
		}
		var cur []byte
		switch {
		case int(code) < len(table) && code != clearCode:
			cur = table[code]
		case int(code) == len(table) && prev != nil:
			// The KwKwK case.
			cur = append(append([]byte{}, prev...), prev[0])
		default:
			return nil, fmt.Errorf("lzw: bad code %d (table %d)", code, len(table))
		}
		out = append(out, cur...)
		if prev != nil && len(table) < 1<<maxBits {
			entry := append(append([]byte{}, prev...), cur[0])
			table = append(table, entry)
		}
		prev = cur
	}
}

// Ratio is the compressed/original size ratio for data.
func Ratio(data []byte) float64 { return RatioRecorded(data, nil) }

// RatioRecorded is Ratio with the overhead counters published into rec.
func RatioRecorded(data []byte, rec *stats.Recorder) float64 {
	if len(data) == 0 {
		return 1
	}
	return float64(len(compress(data, rec, nil))) / float64(len(data))
}

package lzw

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/synth"
)

func roundTrip(t *testing.T, data []byte) {
	t.Helper()
	c := Compress(data)
	d, err := Decompress(c)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(d, data) {
		i := 0
		for i < len(d) && i < len(data) && d[i] == data[i] {
			i++
		}
		t.Fatalf("round trip failed: lengths %d vs %d, first diff at %d", len(d), len(data), i)
	}
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{255},
		[]byte("a"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaa"),
		[]byte("abcabcabcabcabcabc"),
		[]byte("to be or not to be that is the question"),
		bytes.Repeat([]byte{1, 2, 3, 4}, 1000),
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestKwKwKCase(t *testing.T) {
	// The classic corner: "ababab..." forces the code-equals-table-size
	// path immediately.
	roundTrip(t, []byte("abababababababababab"))
	roundTrip(t, bytes.Repeat([]byte("ab"), 5000))
}

func TestWidthGrowth(t *testing.T) {
	// Force the table past several width bumps with low-redundancy data.
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 300_000)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	roundTrip(t, data)
}

func TestTableFullAndReset(t *testing.T) {
	// Data whose statistics change midway: repetitive, then random, then
	// repetitive again — exercising the adaptive clear-code path.
	rng := rand.New(rand.NewSource(4))
	var data []byte
	data = append(data, bytes.Repeat([]byte("the quick brown fox "), 20_000)...)
	noise := make([]byte, 400_000)
	for i := range noise {
		noise[i] = byte(rng.Intn(256))
	}
	data = append(data, noise...)
	data = append(data, bytes.Repeat([]byte("jumps over the lazy dog "), 20_000)...)
	roundTrip(t, data)
}

func TestCompressesRedundantData(t *testing.T) {
	data := bytes.Repeat([]byte("instruction stream "), 2000)
	if r := Ratio(data); r > 0.2 {
		t.Errorf("ratio %.3f on highly redundant data", r)
	}
	rng := rand.New(rand.NewSource(5))
	noise := make([]byte, 64_000)
	for i := range noise {
		noise[i] = byte(rng.Intn(256))
	}
	if r := Ratio(noise); r < 1.0 {
		t.Logf("ratio %.3f on noise (expected near or above 1)", r)
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	// A stream whose first code is beyond the virgin table must error.
	w := &bitWriter{}
	w.write(300, 9) // code 300 > 257 with empty table
	if _, err := Decompress(w.flush()); err == nil {
		t.Fatal("garbage stream accepted")
	}
}

func TestRatioOnBenchmarkText(t *testing.T) {
	// Fig. 11's comparator: Unix compress on raw instruction bytes should
	// land in the same neighborhood as the paper (roughly half the size).
	p, err := synth.Generate("ijpeg")
	if err != nil {
		t.Fatal(err)
	}
	r := Ratio(p.TextBytes())
	t.Logf("ijpeg instruction bytes: LZW ratio %.3f", r)
	if r < 0.05 || r > 0.95 {
		t.Errorf("LZW ratio %.3f implausible for instruction bytes", r)
	}
	roundTrip(t, p.TextBytes())
}

// TestRoundTripQuick: random strings over small and large alphabets.
func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint16, alphabet uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := int(alphabet)%255 + 1
		data := make([]byte, int(n)%5000)
		for i := range data {
			data[i] = byte(rng.Intn(a))
		}
		c := Compress(data)
		d, err := Decompress(c)
		if err != nil {
			return false
		}
		return bytes.Equal(d, data)
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

package machine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ppc"
	"repro/internal/program"
)

// refState is an independent model of the integer ALU, deliberately
// written against the architecture manual rather than the interpreter so
// the two implementations can cross-check each other.
type refState struct {
	gpr [32]uint32
}

func (r *refState) exec(w uint32) bool {
	i := ppc.Decode(w)
	g := &r.gpr
	ra0 := func() uint32 {
		if i.RA == 0 {
			return 0
		}
		return g[i.RA]
	}
	switch i.Op {
	case ppc.OpAddi:
		g[i.RT] = ra0() + uint32(i.Imm)
	case ppc.OpAddis:
		g[i.RT] = ra0() + uint32(i.Imm)<<16
	case ppc.OpOri:
		g[i.RA] = g[i.RT] | uint32(uint16(i.Imm))
	case ppc.OpOris:
		g[i.RA] = g[i.RT] | uint32(uint16(i.Imm))<<16
	case ppc.OpXori:
		g[i.RA] = g[i.RT] ^ uint32(uint16(i.Imm))
	case ppc.OpAndiRc:
		g[i.RA] = g[i.RT] & uint32(uint16(i.Imm))
	case ppc.OpAdd:
		g[i.RT] = g[i.RA] + g[i.RB]
	case ppc.OpSubf:
		g[i.RT] = g[i.RB] - g[i.RA]
	case ppc.OpNeg:
		g[i.RT] = ^g[i.RA] + 1
	case ppc.OpMullw:
		g[i.RT] = uint32(int64(int32(g[i.RA])) * int64(int32(g[i.RB])))
	case ppc.OpDivw:
		a, b := int32(g[i.RA]), int32(g[i.RB])
		if b == 0 || (a == -1<<31 && b == -1) {
			g[i.RT] = 0
		} else {
			g[i.RT] = uint32(a / b)
		}
	case ppc.OpAnd:
		g[i.RA] = g[i.RT] & g[i.RB]
	case ppc.OpOr:
		g[i.RA] = g[i.RT] | g[i.RB]
	case ppc.OpXor:
		g[i.RA] = g[i.RT] ^ g[i.RB]
	case ppc.OpNor:
		g[i.RA] = ^(g[i.RT] | g[i.RB])
	case ppc.OpSlw:
		n := g[i.RB] & 63
		if n > 31 {
			g[i.RA] = 0
		} else {
			g[i.RA] = g[i.RT] << n
		}
	case ppc.OpSrw:
		n := g[i.RB] & 63
		if n > 31 {
			g[i.RA] = 0
		} else {
			g[i.RA] = g[i.RT] >> n
		}
	case ppc.OpSraw:
		n := g[i.RB] & 63
		if n > 31 {
			n = 31
		}
		g[i.RA] = uint32(int32(g[i.RT]) >> n)
	case ppc.OpSrawi:
		g[i.RA] = uint32(int32(g[i.RT]) >> i.SH)
	case ppc.OpExtsb:
		v := g[i.RT] & 0xFF
		if v&0x80 != 0 {
			v |= 0xFFFFFF00
		}
		g[i.RA] = v
	case ppc.OpExtsh:
		v := g[i.RT] & 0xFFFF
		if v&0x8000 != 0 {
			v |= 0xFFFF0000
		}
		g[i.RA] = v
	case ppc.OpRlwinm:
		// Independent formulation: explicit rotate, mask enumerated bit
		// by bit in IBM numbering.
		r := g[i.RT]
		if i.SH != 0 {
			r = g[i.RT]<<i.SH | g[i.RT]>>(32-uint32(i.SH))
		}
		var mask uint32
		b := uint32(i.MB)
		for {
			mask |= 1 << (31 - b)
			if b == uint32(i.ME) {
				break
			}
			b = (b + 1) % 32
		}
		g[i.RA] = r & mask
	default:
		return false
	}
	return true
}

// aluOps generates one random ALU instruction over low registers.
func aluOp(rng *rand.Rand) uint32 {
	r := func() uint8 { return uint8(3 + rng.Intn(8)) }
	imm := func() int32 { return int32(rng.Intn(1 << 16)) }
	simm := func() int32 { return int32(rng.Intn(1<<16)) - 1<<15 }
	switch rng.Intn(22) {
	case 0:
		return ppc.Addi(r(), r(), simm())
	case 1:
		return ppc.Addis(r(), r(), simm())
	case 2:
		return ppc.Ori(r(), r(), imm())
	case 3:
		return ppc.Oris(r(), r(), imm())
	case 4:
		return ppc.Xori(r(), r(), imm())
	case 5:
		return ppc.AndiRc(r(), r(), imm())
	case 6:
		return ppc.Add(r(), r(), r())
	case 7:
		return ppc.Subf(r(), r(), r())
	case 8:
		return ppc.Neg(r(), r())
	case 9:
		return ppc.Mullw(r(), r(), r())
	case 10:
		return ppc.Divw(r(), r(), r())
	case 11:
		return ppc.And(r(), r(), r())
	case 12:
		return ppc.Or(r(), r(), r())
	case 13:
		return ppc.Xor(r(), r(), r())
	case 14:
		return ppc.Nor(r(), r(), r())
	case 15:
		return ppc.Slw(r(), r(), r())
	case 16:
		return ppc.Srw(r(), r(), r())
	case 17:
		return ppc.Sraw(r(), r(), r())
	case 18:
		return ppc.Srawi(r(), r(), uint8(rng.Intn(32)))
	case 19:
		return ppc.Extsb(r(), r())
	case 20:
		return ppc.Extsh(r(), r())
	default:
		return ppc.Rlwinm(r(), r(), uint8(rng.Intn(32)), uint8(rng.Intn(32)), uint8(rng.Intn(32)))
	}
}

// TestALUDifferential cross-checks the interpreter against the reference
// model on random straight-line programs with random initial registers.
func TestALUDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		// Random program.
		n := 5 + rng.Intn(40)
		words := make([]uint32, 0, n)
		for i := 0; i < n; i++ {
			words = append(words, aluOp(rng))
		}

		// Build and run on the machine.
		b := program.NewBuilder("diff")
		f := b.Func("main")
		var init [32]uint32
		for r := 3; r <= 10; r++ {
			v := rng.Uint32()
			init[r] = v
			f.Emit(ppc.Lis(uint8(r), int32(int16(uint16(v>>16)))))
			f.Emit(ppc.Ori(uint8(r), uint8(r), int32(v&0xFFFF)))
		}
		for _, w := range words {
			f.Emit(w)
		}
		f.Emit(ppc.Li(0, SysExit))
		f.Emit(ppc.Sc())
		p, err := b.Link()
		if err != nil {
			t.Log(err)
			return false
		}
		cpu, err := NewForProgram(p)
		if err != nil {
			t.Log(err)
			return false
		}
		if _, err := cpu.Run(10000); err != nil {
			t.Log(err)
			return false
		}

		// Run the reference.
		ref := &refState{gpr: init}
		for _, w := range words {
			if !ref.exec(w) {
				t.Logf("reference cannot execute %s", ppc.Disassemble(w))
				return false
			}
		}

		// r0 and r3 are clobbered by the exit syscall setup (li r0; and
		// r3 holds the exit argument unchanged); compare r3..r10.
		for r := 3; r <= 10; r++ {
			if cpu.GPR[r] != ref.gpr[r] {
				for _, w := range words {
					t.Logf("  %s", ppc.Disassemble(w))
				}
				t.Logf("r%d: machine %08x, reference %08x", r, cpu.GPR[r], ref.gpr[r])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Fast-path telemetry: bail-reason accounting and epoch sampling for the
// fused fetch+execute loop. The loop itself (predecode.go) touches none of
// the observability machinery directly — it calls the beginFast/drainEpoch/
// endFast helpers here, which run only at epoch boundaries and exits, so
// per-step cost stays at one integer comparison the loop already paid for
// the budget check. `make lint-fastpath` enforces that split.
package machine

import (
	"repro/internal/stats"
	"repro/internal/trace"
)

// BailReason classifies how a Run's fast-path attempt ended — or why it
// never started. Every Run increments exactly one Bails counter per
// fast-loop exit (plus one per refused or hook-forced entry), so the
// counters explain any coverage shortfall.
type BailReason uint8

// Fast-path exit and refusal reasons.
const (
	BailExit             BailReason = iota // program performed SysExit inside the loop
	BailBudget                             // step budget exhausted inside the loop
	BailFaultSlot                          // PC landed on a slot predecode marked undecodable
	BailOffTable                           // PC left the table or hit a misaligned interior offset
	BailSelfModifiedText                   // a store invalidated the table mid-run
	BailExecFault                          // an instruction faulted architecturally
	BailHookAttached                       // a hook forced the instrumented Step path for the whole Run
	BailFrontendRefused                    // frontend had no usable predecode table

	numBailReasons
)

var bailNames = [numBailReasons]string{
	"exit",
	"budget",
	"fault_slot",
	"off_table",
	"self_modified_text",
	"exec_fault",
	"hook_attached",
	"frontend_refused",
}

func (r BailReason) String() string {
	if int(r) < len(bailNames) {
		return bailNames[r]
	}
	return "unknown"
}

// FastStats accumulates the always-on fast-path telemetry across Runs
// (Reset clears it alongside Stats).
type FastStats struct {
	Steps  int64                 // instructions executed by the fused loop
	Epochs int64                 // telemetry epochs drained (0 unless sampling is enabled)
	Bails  [numBailReasons]int64 // fast-path exits and refusals by reason
}

// Coverage is the share of all executed instructions the fused loop
// supplied: Steps over totalSteps (normally Stats.Steps of the same CPU).
func (f *FastStats) Coverage(totalSteps int64) float64 {
	if totalSteps <= 0 {
		return 0
	}
	return float64(f.Steps) / float64(totalSteps)
}

// BailMap renders the non-zero bail counters keyed by reason name, the
// JSON-friendly form RunProfile embeds.
func (f *FastStats) BailMap() map[string]int64 {
	m := make(map[string]int64)
	for r, n := range f.Bails {
		if n != 0 {
			m[BailReason(r).String()] = n
		}
	}
	return m
}

// BailSummary renders the non-zero bail counters as "reason=n" pairs in
// enum order — a deterministic one-line form for logs and CLI summaries.
func (f *FastStats) BailSummary() string {
	var b []byte
	for r, n := range f.Bails {
		if n == 0 {
			continue
		}
		if len(b) > 0 {
			b = append(b, ' ')
		}
		b = append(b, BailReason(r).String()...)
		b = append(b, '=')
		var digits [20]byte
		i := len(digits)
		for v := n; ; {
			i--
			digits[i] = byte('0' + v%10)
			if v /= 10; v == 0 {
				break
			}
		}
		b = append(b, digits[i:]...)
	}
	if len(b) == 0 {
		return "none"
	}
	return string(b)
}

// SlotTraffic is one predecode slot's per-epoch execution traffic. Slots
// are shared across CPUs (the table is cached per image/text), so traffic
// lives in a per-CPU parallel array, drained and cleared every epoch.
// Counters are int32 on purpose — an epoch is bounded by the step budget,
// far below overflow, and the half-sized entries keep the traffic array's
// cache footprint out of the fused loop's way.
type SlotTraffic struct {
	Fetches int32 // table fetches that landed on the slot
	Steps   int32 // instructions the slot supplied (fetch + expansion continuations)
}

// EpochObserver consumes drained slot traffic at epoch boundaries. The
// traffic slice parallels pd.Slots; touched lists the indices with
// non-zero traffic (each exactly once, unordered), so folding an epoch
// costs the slots it executed, not the size of the table. Both slices are
// cleared and reused after the call returns — observers must fold them
// into their own state, not retain them.
type EpochObserver interface {
	ObserveEpoch(pd *Predecode, traffic []SlotTraffic, touched []int32)
}

// DefaultEpochSteps is the epoch length when CPU.EpochSteps is zero: long
// enough that draining is noise even on programs that never revisit a
// slot, short enough that /metrics and spans stay fresh (an epoch is the
// telemetry staleness bound).
const DefaultEpochSteps = 1 << 20

// EnableEpochSampling attaches epoch-grained telemetry sinks to the fast
// loop. Unlike the hooks, sampling does NOT force the instrumented Step
// path: the fused loop runs unchanged and, every EpochSteps instructions,
// adds its counters to rec (machine.fastpath.* plus the
// machine.fastpath.epoch_len histogram) and hands the per-slot traffic to
// obs. Either sink may be nil.
//
// Epochs are step-count intervals of the machine's lifetime, not of one
// Run: in the steady-state serving shape (Reset + Run per request) traffic
// keeps accumulating across Runs and drains only when an epoch fills —
// that cadence, not the request rate, bounds both the telemetry cost and
// its staleness. Call FlushEpoch before reading final results from the
// observer.
func (c *CPU) EnableEpochSampling(rec *stats.Recorder, obs EpochObserver) {
	c.FlushEpoch()
	c.sampleRec = rec
	c.sampleObs = obs
}

// FlushEpoch drains the partial epoch in flight, if any: the observer sees
// all traffic up to the last executed instruction and the epoch-length
// histogram gains the partial interval. A no-op when nothing accumulated.
func (c *CPU) FlushEpoch() {
	if c.sinceDrain > 0 {
		var tr []SlotTraffic
		if c.trafficPD != nil {
			tr = c.traffic[:len(c.trafficPD.Slots)]
		}
		c.drainEpoch(c.trafficPD, tr, c.sinceDrain, false)
		c.sinceDrain = 0
	}
}

// TraceEpochs emits one child span of parent per telemetry epoch,
// annotated with its step count and, on the final epoch of a fast-loop
// segment, the bail reason. Like EnableEpochSampling, it does not force
// the instrumented path.
func (c *CPU) TraceEpochs(parent *trace.Span) { c.epochParent = parent }

// samplingOn reports whether any epoch-grained sink is attached; when
// false the fast loop runs with zero telemetry work beyond Bails/Steps
// accounting at exits.
func (c *CPU) samplingOn() bool {
	return c.sampleRec != nil || c.sampleObs != nil || c.epochParent != nil
}

// epochLen is the configured epoch length in steps.
func (c *CPU) epochLen() int64 {
	if c.EpochSteps > 0 {
		return c.EpochSteps
	}
	return DefaultEpochSteps
}

// beginFast opens one fast-loop segment's telemetry: the per-slot traffic
// buffer (allocated once per CPU and reused across segments and Resets)
// and, unless one is already in flight, the epoch's span. Accumulated
// traffic is bound to the table it indexes, so a table change (rebuild
// after self-modified text, a different frontend) flushes the pending
// epoch against the old table first. Returns the traffic buffer, nil when
// no observer will consume it.
func (c *CPU) beginFast(pd *Predecode) []SlotTraffic {
	var tr []SlotTraffic
	if c.sampleObs != nil {
		if c.trafficPD != pd {
			c.FlushEpoch()
			c.trafficPD = pd
			if cap(c.traffic) < len(pd.Slots) {
				c.traffic = make([]SlotTraffic, len(pd.Slots))
			}
		}
		tr = c.traffic[:len(pd.Slots)]
	}
	if c.epochSpan == nil {
		c.beginEpochSpan()
	}
	return tr
}

// note logs the first touch of a slot, so draining scales with the slots
// an epoch executed. Out-of-line on purpose: the fused loop calls it only
// on a slot's 0->1 transition.
func (c *CPU) note(idx uint32) {
	c.touched = append(c.touched, int32(idx))
}

func (c *CPU) beginEpochSpan() {
	if c.epochParent != nil {
		c.epochSpan = c.epochParent.Child("machine.epoch")
	}
}

// drainEpoch closes one telemetry epoch of steps instructions: observes
// the epoch length, hands the slot traffic to the observer (clearing it
// for the next epoch), and finishes the epoch's span. When more is true
// the fast loop continues and the next epoch's span opens; empty epochs
// drain nothing.
func (c *CPU) drainEpoch(pd *Predecode, tr []SlotTraffic, steps int64, more bool) {
	if steps > 0 {
		c.Fast.Epochs++
		c.sampleRec.ObserveValue("machine.fastpath.epoch_len", steps)
		if c.sampleObs != nil && tr != nil {
			c.sampleObs.ObserveEpoch(pd, tr, c.touched)
			for _, i := range c.touched {
				tr[i] = SlotTraffic{}
			}
			c.touched = c.touched[:0]
		}
	}
	if c.epochSpan != nil {
		c.epochSpan.SetInt("steps", steps)
		c.epochSpan.End()
		c.epochSpan = nil
	}
	if more {
		c.beginEpochSpan()
	}
}

// endFast closes one fast-loop segment: accumulates the segment's steps
// into Fast.Steps and records why the loop exited. The epoch in flight is
// NOT drained — its traffic carries over to the next segment (or Run) so
// telemetry cost stays on the epoch cadence, not the Run rate; the span
// annotates each segment's bail as it happens. FlushEpoch forces the
// final partial epoch out.
func (c *CPU) endFast(reason BailReason, entrySteps, epochStart int64) {
	c.Fast.Steps += c.Stats.Steps - entrySteps
	c.Fast.Bails[reason]++
	if c.samplingOn() {
		c.sinceDrain += c.Stats.Steps - epochStart
		c.epochSpan.Set("bail", reason.String())
	}
}

// fastpathRec selects the recorder the machine.fastpath.* Run-delta export
// flows to: the epoch-sampling recorder when one is attached (the
// fast-path case), else the Record hook's recorder (so instrumented runs
// still report their hook_attached bail and zero coverage).
func (c *CPU) fastpathRec() *stats.Recorder {
	if c.sampleRec != nil {
		return c.sampleRec
	}
	return c.Record
}

// bailCounterNames precomputes the exported counter name of every bail
// reason, so per-Run export does no string building.
var bailCounterNames = func() (a [numBailReasons]string) {
	for r := range a {
		a[r] = "machine.fastpath.bail." + BailReason(r).String()
	}
	return
}()

// exportFastpath adds one Run's fast-path counter deltas to rec. Every
// bail counter is exported (including zeros) so OpenMetrics scrapes and
// snapshots always show the full reason vocabulary; slow_steps is the
// instrumented-path remainder, letting coverage be derived from any single
// recorder as steps/(steps+slow_steps).
func (c *CPU) exportFastpath(rec *stats.Recorder, before FastStats, stepsBefore int64) {
	fast := c.Fast.Steps - before.Steps
	rec.Add("machine.fastpath.steps", fast)
	rec.Add("machine.fastpath.slow_steps", c.Stats.Steps-stepsBefore-fast)
	rec.Add("machine.fastpath.epochs", c.Fast.Epochs-before.Epochs)
	for r := range c.Fast.Bails {
		rec.Add(bailCounterNames[r], c.Fast.Bails[r]-before.Bails[r])
	}
}

package machine

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ppc"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/trace"
)

// epochRecorder collects every drained epoch's traffic so tests can check
// conservation against the CPU's own counters. It also verifies the
// touched list's contract: exactly the slots with traffic, each once.
type epochRecorder struct {
	epochs  int
	steps   int64
	fetches int64
	bad     string
}

func (e *epochRecorder) ObserveEpoch(pd *Predecode, tr []SlotTraffic, touched []int32) {
	e.epochs++
	seen := map[int32]bool{}
	for _, i := range touched {
		if seen[i] {
			e.bad = "duplicate touched index"
		}
		seen[i] = true
		if tr[i].Steps == 0 {
			e.bad = "touched slot without traffic"
		}
		e.steps += int64(tr[i].Steps)
		e.fetches += int64(tr[i].Fetches)
	}
	for i := range tr {
		if tr[i].Steps != 0 && !seen[int32(i)] {
			e.bad = "slot with traffic missing from touched"
		}
	}
}

func TestFastStatsCleanRun(t *testing.T) {
	// A program that runs start to exit on the fast path: full coverage,
	// exactly one bail (exit), nothing else.
	cpu, err := NewForProgram(parityProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(10000); err != nil {
		t.Fatal(err)
	}
	if cpu.Fast.Steps != cpu.Stats.Steps || cpu.Fast.Steps == 0 {
		t.Fatalf("fast steps %d, total %d", cpu.Fast.Steps, cpu.Stats.Steps)
	}
	if cov := cpu.Fast.Coverage(cpu.Stats.Steps); cov != 1.0 {
		t.Fatalf("coverage %v, want 1.0", cov)
	}
	want := FastStats{Steps: cpu.Fast.Steps}
	want.Bails[BailExit] = 1
	if cpu.Fast != want {
		t.Fatalf("FastStats %+v, want %+v", cpu.Fast, want)
	}
	if s := cpu.Fast.BailSummary(); s != "exit=1" {
		t.Fatalf("BailSummary %q", s)
	}
	if m := cpu.Fast.BailMap(); len(m) != 1 || m["exit"] != 1 {
		t.Fatalf("BailMap %v", m)
	}
}

func TestBailReasonBudget(t *testing.T) {
	b := newSpinBuilder(t)
	cpu, err := NewForProgram(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(50); err == nil {
		t.Fatal("budget run did not error")
	}
	if cpu.Fast.Bails[BailBudget] != 1 || cpu.Fast.Steps != 50 {
		t.Fatalf("FastStats %+v", cpu.Fast)
	}
}

func TestBailReasonHookAttached(t *testing.T) {
	cpu, err := NewForProgram(parityProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	cpu.TraceStep = func(StepInfo) {}
	if _, err := cpu.Run(10000); err != nil {
		t.Fatal(err)
	}
	if cpu.Fast.Steps != 0 || cpu.Fast.Bails[BailHookAttached] != 1 {
		t.Fatalf("FastStats %+v", cpu.Fast)
	}
	if cov := cpu.Fast.Coverage(cpu.Stats.Steps); cov != 0 {
		t.Fatalf("coverage %v on a fully instrumented run", cov)
	}
}

// plainFrontend hides a frontend's predecode capability, standing in for
// any frontend configuration that cannot supply a table.
type plainFrontend struct{ Frontend }

func TestBailReasonFrontendRefused(t *testing.T) {
	p := parityProgram(t)
	cpu, err := NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	cpu.fe = plainFrontend{cpu.fe}
	if _, err := cpu.Run(10000); err != nil {
		t.Fatal(err)
	}
	if cpu.Fast.Steps != 0 || cpu.Fast.Bails[BailFrontendRefused] != 1 {
		t.Fatalf("FastStats %+v", cpu.Fast)
	}
}

func TestBailReasonSelfModifiedText(t *testing.T) {
	// Same self-patching program as TestFastPathSelfModifyingText; here we
	// assert the bail is classified, not just survived.
	cpu := selfModifyingCPU(t)
	if _, err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if cpu.Fast.Bails[BailSelfModifiedText] != 1 {
		t.Fatalf("FastStats %+v, want one self_modified_text bail", cpu.Fast)
	}
	if cpu.Fast.Steps == 0 || cpu.Fast.Steps == cpu.Stats.Steps {
		t.Fatalf("expected a split run, fast %d of %d", cpu.Fast.Steps, cpu.Stats.Steps)
	}
}

func TestEpochSamplingParity(t *testing.T) {
	// Epoch sampling must not perturb architecture or Stats: a bare
	// machine and a sampled one (tiny epochs, forcing many boundaries)
	// must agree on everything, and the drained traffic must conserve the
	// step and fetch totals exactly.
	p := parityProgram(t)
	bare, err := NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	rec := stats.New()
	obs := &epochRecorder{}
	sampled.EnableEpochSampling(rec, obs)
	sampled.EpochSteps = 7
	bs, berr := bare.Run(10000)
	ss, serr := sampled.Run(10000)
	if berr != nil || serr != nil {
		t.Fatalf("run errors: bare %v, sampled %v", berr, serr)
	}
	if bs != ss || !bytes.Equal(bare.Output(), sampled.Output()) {
		t.Fatalf("sampled run diverged: status %d vs %d", bs, ss)
	}
	if bare.Stats != sampled.Stats {
		t.Fatalf("stats: bare %+v, sampled %+v", bare.Stats, sampled.Stats)
	}
	if sampled.Fast.Steps != sampled.Stats.Steps {
		t.Fatalf("sampling knocked the run off the fast path: %+v", sampled.Fast)
	}
	if sampled.Fast.Bails[BailHookAttached] != 0 {
		t.Fatal("epoch sampling counted as a hook")
	}
	// The final partial epoch stays in flight until flushed; conservation
	// holds only over the flushed whole.
	sampled.FlushEpoch()
	if sampled.Fast.Epochs < 2 || int64(obs.epochs) != sampled.Fast.Epochs {
		t.Fatalf("epochs %d, observer saw %d", sampled.Fast.Epochs, obs.epochs)
	}
	if obs.steps != sampled.Stats.Steps {
		t.Fatalf("drained traffic steps %d, executed %d", obs.steps, sampled.Stats.Steps)
	}
	if obs.fetches != sampled.Stats.MemFetches {
		t.Fatalf("drained traffic fetches %d, MemFetches %d", obs.fetches, sampled.Stats.MemFetches)
	}
	if obs.bad != "" {
		t.Fatalf("touched-list contract violated: %s", obs.bad)
	}
	snap := rec.Snapshot()
	if got := snap.Counter("machine.fastpath.steps"); got != sampled.Fast.Steps {
		t.Fatalf("exported fastpath.steps %d, want %d", got, sampled.Fast.Steps)
	}
	if got := snap.Counter("machine.fastpath.slow_steps"); got != 0 {
		t.Fatalf("exported slow_steps %d on a pure fast run", got)
	}
	if got := snap.Counter("machine.fastpath.bail.exit"); got != 1 {
		t.Fatalf("exported bail.exit %d", got)
	}
	// Zero-valued bail counters materialize too, so exporters always show
	// the full vocabulary.
	if _, ok := snap.Counters["machine.fastpath.bail.budget"]; !ok {
		t.Fatal("zero bail counter not materialized in the snapshot")
	}
	h := snap.Hist("machine.fastpath.epoch_len")
	if h.Count != sampled.Fast.Epochs || h.Sum != sampled.Fast.Steps {
		t.Fatalf("epoch_len histogram count=%d sum=%d, want %d epochs, %d steps",
			h.Count, h.Sum, sampled.Fast.Epochs, sampled.Fast.Steps)
	}
}

func TestEpochSpans(t *testing.T) {
	tr := trace.New()
	root := tr.Root("run")
	cpu, err := NewForProgram(parityProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	cpu.EpochSteps = 10
	cpu.TraceEpochs(root)
	if _, err := cpu.Run(10000); err != nil {
		t.Fatal(err)
	}
	cpu.FlushEpoch()
	root.End()
	var epochs int
	var total int64
	sawBail := false
	for _, s := range tr.Spans() {
		if s.Name != "machine.epoch" {
			continue
		}
		epochs++
		if !s.Ended {
			t.Fatalf("unended epoch span %+v", s)
		}
		for _, a := range s.Attrs {
			if a.Key == "steps" {
				var v int64
				for _, ch := range a.Value {
					v = v*10 + int64(ch-'0')
				}
				total += v
			}
			if a.Key == "bail" && a.Value == "exit" {
				sawBail = true
			}
		}
	}
	if int64(epochs) != cpu.Fast.Epochs || epochs < 2 {
		t.Fatalf("%d epoch spans for %d epochs", epochs, cpu.Fast.Epochs)
	}
	if total != cpu.Fast.Steps {
		t.Fatalf("span step attrs sum to %d, fast steps %d", total, cpu.Fast.Steps)
	}
	if !sawBail {
		t.Fatal("final epoch span missing its bail attribute")
	}
}

func TestResetClearsFastStats(t *testing.T) {
	cpu, err := NewForProgram(parityProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	rec := stats.New()
	obs := &epochRecorder{}
	cpu.EnableEpochSampling(rec, obs)
	cpu.EpochSteps = 7
	if _, err := cpu.Run(10000); err != nil {
		t.Fatal(err)
	}
	first := cpu.Fast
	if err := cpu.Reset(); err != nil {
		t.Fatal(err)
	}
	if cpu.Fast != (FastStats{}) {
		t.Fatalf("Reset left FastStats %+v", cpu.Fast)
	}
	if _, err := cpu.Run(10000); err != nil {
		t.Fatal(err)
	}
	if cpu.Fast != first {
		t.Fatalf("rerun FastStats %+v, first run %+v", cpu.Fast, first)
	}
	// Run deltas accumulate in the recorder across the two runs.
	if got := rec.Snapshot().Counter("machine.fastpath.steps"); got != 2*first.Steps {
		t.Fatalf("accumulated fastpath.steps %d, want %d", got, 2*first.Steps)
	}
}

func TestEpochSpansRuns(t *testing.T) {
	// Epochs are intervals of the machine's lifetime, not of one Run: with
	// an epoch longer than a whole run, repeated Reset+Run cycles accumulate
	// traffic without draining, and one flush folds the lot. This is the
	// serving shape the ≤1.10× overhead gate measures — per-request cost
	// must not include a fold.
	cpu, err := NewForProgram(parityProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	rec := stats.New()
	obs := &epochRecorder{}
	cpu.EnableEpochSampling(rec, obs)
	cpu.EpochSteps = 1 << 30
	const runs = 3
	var total, fetches int64
	for i := 0; i < runs; i++ {
		if i > 0 {
			if err := cpu.Reset(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := cpu.Run(10000); err != nil {
			t.Fatal(err)
		}
		total += cpu.Stats.Steps
		fetches += cpu.Stats.MemFetches
	}
	if obs.epochs != 0 {
		t.Fatalf("epoch drained mid-serving: %d drains for runs shorter than the epoch", obs.epochs)
	}
	cpu.FlushEpoch()
	if obs.epochs != 1 {
		t.Fatalf("flush drained %d epochs, want 1", obs.epochs)
	}
	if obs.steps != total || obs.fetches != fetches {
		t.Fatalf("flushed traffic %d steps/%d fetches, executed %d/%d across %d runs",
			obs.steps, obs.fetches, total, fetches, runs)
	}
	if obs.bad != "" {
		t.Fatalf("touched-list contract violated: %s", obs.bad)
	}
	if h := rec.Snapshot().Hist("machine.fastpath.epoch_len"); h.Count != 1 || h.Sum != total {
		t.Fatalf("epoch_len histogram count=%d sum=%d, want one epoch of %d steps", h.Count, h.Sum, total)
	}
	// A second flush is a no-op.
	cpu.FlushEpoch()
	if obs.epochs != 1 {
		t.Fatal("empty flush drained an epoch")
	}
}

func TestBailSummaryEmpty(t *testing.T) {
	var f FastStats
	if s := f.BailSummary(); s != "none" {
		t.Fatalf("empty BailSummary %q", s)
	}
	f.Bails[BailExit] = 2
	f.Bails[BailOffTable] = 11
	if s := f.BailSummary(); s != "exit=2 off_table=11" {
		t.Fatalf("BailSummary %q", s)
	}
	if strings.Contains(BailSelfModifiedText.String(), " ") {
		t.Fatal("bail names must be single tokens")
	}
}

// newSpinBuilder links an infinite loop, for budget-bail tests.
func newSpinBuilder(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("spin")
	f := b.Func("main")
	f.Label("spin")
	f.Branch(ppc.B(0), "spin")
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// selfModifyingCPU builds the self-patching program of
// TestFastPathSelfModifyingText on a bare machine.
func selfModifyingCPU(t *testing.T) *CPU {
	t.Helper()
	b := program.NewBuilder("selfmod")
	f := b.Func("main")
	const patchIdx = 5
	patchAddr := uint32(program.DefaultTextBase + 4*patchIdx)
	newWord := ppc.Li(3, 42)
	f.Emit(ppc.Lis(9, int32(int16(patchAddr>>16))))
	f.Emit(ppc.Ori(9, 9, int32(patchAddr&0xFFFF)))
	f.Emit(ppc.Lis(10, int32(int16(newWord>>16))))
	f.Emit(ppc.Ori(10, 10, int32(newWord&0xFFFF)))
	f.Emit(ppc.Stw(10, 0, 9))
	f.Emit(ppc.Li(3, 1)) // patched to li r3,42 before it executes
	emitExit(f)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	return cpu
}

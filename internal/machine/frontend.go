package machine

import (
	"encoding/binary"
	"fmt"
)

// FetchInfo describes one fetched instruction.
type FetchInfo struct {
	Word uint32 // the 32-bit instruction to execute

	CIA  uint32 // address of this instruction in the frontend's PC space
	Next uint32 // address of the sequential successor (return address for LK)

	// NextOK is false when the successor is not addressable — an LK branch
	// in the middle of a dictionary entry. The compressor guarantees this
	// never happens for well-formed images; the machine faults if it does.
	NextOK bool

	// MemAddr/MemBytes describe the program-memory traffic of this fetch
	// for cache simulation. Instructions expanded from the on-chip
	// dictionary after the first report zero bytes (the codeword itself was
	// the only memory access).
	MemAddr  uint32
	MemBytes int

	// MemAddr2/MemBytes2 describe a secondary access (used when a
	// memory-resident dictionary is modeled: the codeword fetch and the
	// dictionary-entry fetch are distinct accesses).
	MemAddr2  uint32
	MemBytes2 int

	// EntryRank/EntryLen attribute the fetch to a dictionary entry when
	// it begins a codeword expansion: EntryLen is the entry's instruction
	// count (0 on every other fetch, including the expansion's
	// continuation fetches) and EntryRank its dictionary rank. They feed
	// the CPU's per-entry heat map and expansion-length histogram.
	EntryRank int
	EntryLen  int
}

// Frontend is the instruction-fetch abstraction of Figure 3: the normal
// path reads raw words from program memory; the compressed path consumes
// codeword units and expands them through the dictionary. PC spaces differ
// (byte addresses vs. codeword-unit addresses), so branch-target arithmetic
// lives behind RelTarget.
type Frontend interface {
	// Reset positions the frontend at the entry address.
	Reset(entry uint32) error
	// Fetch returns the next instruction and advances.
	Fetch() (FetchInfo, error)
	// SetPC redirects fetch to a branch target in the frontend's PC space.
	SetPC(addr uint32) error
	// RelTarget computes the target of a relative branch whose displacement
	// field (unscaled) is field, relative to the fetch address cia. The
	// normal frontend scales by 4; compressed frontends scale by their
	// codeword unit ("treat the branch offsets as aligned to the size of
	// the smallest codeword", §3.2.2).
	RelTarget(cia uint32, field int32) uint32
}

// NormalFrontend fetches uncompressed 32-bit instructions from memory.
type NormalFrontend struct {
	mem *Memory
	pc  uint32
	lo  uint32 // text bounds for early fault detection
	hi  uint32

	pd *Predecode // cached decode table for [lo, hi); see Predecode
}

// NewNormalFrontend builds the standard fetch path over text already
// mapped into mem at [base, base+4*words).
func NewNormalFrontend(mem *Memory, base uint32, words int) *NormalFrontend {
	return &NormalFrontend{mem: mem, lo: base, hi: base + uint32(4*words)}
}

// Reset positions fetch at the entry address.
func (f *NormalFrontend) Reset(entry uint32) error { return f.SetPC(entry) }

// SetPC redirects fetch.
func (f *NormalFrontend) SetPC(addr uint32) error {
	if addr < f.lo || addr >= f.hi || addr%4 != 0 {
		return fmt.Errorf("machine: jump to %#x outside text [%#x,%#x)", addr, f.lo, f.hi)
	}
	f.pc = addr
	return nil
}

// Fetch reads the word at PC and advances.
func (f *NormalFrontend) Fetch() (FetchInfo, error) {
	w, err := f.mem.Load32(f.pc)
	if err != nil {
		return FetchInfo{}, err
	}
	fi := FetchInfo{
		Word: w, CIA: f.pc, Next: f.pc + 4, NextOK: true,
		MemAddr: f.pc, MemBytes: 4,
	}
	f.pc += 4
	return fi, nil
}

// RelTarget scales the displacement field by the 4-byte instruction size.
func (f *NormalFrontend) RelTarget(cia uint32, field int32) uint32 {
	return cia + uint32(field)*4
}

// PC returns the current fetch address.
func (f *NormalFrontend) PC() uint32 { return f.pc }

// SetRawPC repositions fetch without validation — the fused loop's
// resynchronization hook. A bad address faults on the next Fetch with the
// same error SetPC would have produced.
func (f *NormalFrontend) SetRawPC(pc uint32) { f.pc = pc }

// Predecode returns the decode table for the text window, building it on
// first use and rebuilding it when a store has hit the window since (the
// store-generation check makes self-modifying code safe: the fused loop
// additionally bails out mid-run the moment text is written).
func (f *NormalFrontend) Predecode() *Predecode {
	gen := f.mem.WatchStores(f.lo, f.hi)
	if f.pd == nil || f.pd.gen != gen {
		f.pd = PredecodeText(f.mem, f.lo, f.hi)
		f.pd.gen = gen
	}
	return f.pd
}

var _ PredecodedFrontend = (*NormalFrontend)(nil)

// WordsToBytes serializes instruction words big-endian for mapping into
// memory.
func WordsToBytes(words []uint32) []byte {
	out := make([]byte, 4*len(words))
	for i, w := range words {
		binary.BigEndian.PutUint32(out[4*i:], w)
	}
	return out
}

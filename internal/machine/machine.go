// Package machine executes PowerPC-subset programs. It provides the CPU
// state and interpreter, a sparse memory, and the fetch-frontend interface
// of the paper's Figure 3: the same execution core runs either from normal
// program memory or from a compressed instruction stream expanded through a
// dictionary in the decode stage.
package machine

import (
	"bytes"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/ppc"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Syscall numbers (passed in r0; sc transfers to the host).
const (
	SysExit    = 0 // r3 = exit status
	SysPutchar = 1 // r3 = byte
	SysPutint  = 2 // r3 = signed integer, printed in decimal
	SysPuts    = 3 // r3 = address of NUL-terminated string
)

// Memory layout for stacks.
const (
	stackTop  = 0x7FF0_0000
	stackSize = 1 << 20
	heapExtra = 1 << 16 // slack beyond the data image for generated code
)

// Stats accumulates execution counters.
type Stats struct {
	Steps         int64 // instructions executed
	TakenBranches int64
	Syscalls      int64
	MemFetches    int64 // fetches that touched program memory
	FetchedBytes  int64 // program-memory bytes fetched
	Expanded      int64 // instructions produced by dictionary expansion (compressed mode)
}

// CPU is the architectural state plus the fetch frontend.
type CPU struct {
	GPR [32]uint32
	LR  uint32
	CTR uint32
	CR  uint32 // bit 0 (MSB) = CR field 0 bit LT, IBM numbering

	Mem *Memory

	fe  Frontend
	out bytes.Buffer

	// TraceFetch, when non-nil, receives the memory traffic of every fetch
	// (for cache simulation).
	TraceFetch func(addr uint32, nbytes int)

	// TraceExec, when non-nil, receives every executed instruction with
	// its fetch address (PC space of the active frontend).
	TraceExec func(cia uint32, word uint32)

	// TraceStep, when non-nil, receives every executed instruction after
	// its architectural effects: the FetchInfo plus the control transfer
	// the instruction performed (the guest profiler's hook). It fires once
	// per Step, even for the instruction that exits the program, so the
	// number of deliveries equals Stats.Steps.
	TraceStep func(StepInfo)

	// Record, when non-nil, receives the execution counters of every Run
	// (machine.steps, machine.expanded, machine.fetched_bytes — deltas per
	// Run, so repeated Runs on one CPU accumulate correctly) plus the
	// machine.expansion_len histogram: the entry length of every codeword
	// expansion the frontend begins.
	Record *stats.Recorder

	// Heat, when non-nil (enable with EnableHeat), accumulates the
	// dictionary-entry heat map: Heat[rank] counts the codeword fetches
	// that began expanding that entry.
	Heat []int64

	Stats Stats

	// Fast accumulates the fused fast loop's always-on telemetry: steps
	// it executed and every exit or refusal classified by BailReason.
	// Fast.Coverage(Stats.Steps) is the fast-path share of execution.
	Fast FastStats

	// EpochSteps bounds one telemetry epoch when epoch sampling is
	// enabled (EnableEpochSampling / TraceEpochs); zero selects
	// DefaultEpochSteps. Without sampling the fast loop runs unchunked.
	EpochSteps int64

	sampleRec   *stats.Recorder // epoch-sampling sink (EnableEpochSampling)
	sampleObs   EpochObserver   // per-slot traffic consumer (EnableEpochSampling)
	epochParent *trace.Span     // per-epoch span parent (TraceEpochs)
	epochSpan   *trace.Span     // span of the epoch in flight
	traffic     []SlotTraffic   // per-CPU slot counters, drained each epoch
	touched     []int32         // slots with traffic this epoch, first-touch order
	trafficPD   *Predecode      // table the accumulated traffic indexes
	sinceDrain  int64           // fast steps accumulated since the last drain

	branch takenBranch // control transfer of the instruction being executed
	exited bool
	status int32

	snap *resetState // architectural state SnapshotReset captured, for Reset
}

// resetState is the architectural state Reset restores: registers plus the
// entry PC. Memory contents are snapshotted by Memory.Snapshot.
type resetState struct {
	gpr [32]uint32
	lr  uint32
	ctr uint32
	cr  uint32
	pc  uint32
}

// BranchKind classifies the control transfer an executed instruction
// performed, as observed by TraceStep. Classification follows the link
// semantics of the PowerPC branch family: any taken branch that sets LR is
// a call (bl, bcl, bctrl, blrl), a taken bclr that does not set LR is a
// return (blr and its conditional variants), and every other taken branch
// — including bctr, which jump tables and far-branch stubs use — is a
// plain jump.
type BranchKind uint8

// Control-transfer kinds.
const (
	BranchNone   BranchKind = iota // no transfer (or branch not taken)
	BranchJump                     // taken branch without link (b, bc, bctr)
	BranchCall                     // taken branch with LK set
	BranchReturn                   // taken bclr without LK
)

// takenBranch records the transfer exec performed during the current Step.
type takenBranch struct {
	Kind   BranchKind
	Target uint32
}

// StepInfo is what TraceStep observers receive: the executed instruction's
// fetch description plus the control transfer it performed. Target and
// Next are addresses in the PC space of the active frontend (byte
// addresses on the normal path, absolute unit addresses on the compressed
// path), so call/return matching works identically in both modes.
type StepInfo struct {
	FetchInfo
	Branch BranchKind
	Target uint32 // PC-space branch target when Branch != BranchNone
}

// New creates a CPU over the given memory and frontend.
func New(mem *Memory, fe Frontend) *CPU {
	return &CPU{Mem: mem, fe: fe}
}

// NewForProgram maps a linked program into a fresh machine with the normal
// (uncompressed) fetch path, ready to Run.
func NewForProgram(p *program.Program) (*CPU, error) {
	mem := NewMemory()
	if err := mem.Map("text", p.TextBase, WordsToBytes(p.Text)); err != nil {
		return nil, err
	}
	data := make([]byte, len(p.Data)+heapExtra)
	copy(data, p.Data)
	if err := mem.Map("data", p.DataBase, data); err != nil {
		return nil, err
	}
	if err := mem.Map("stack", stackTop-stackSize, make([]byte, stackSize)); err != nil {
		return nil, err
	}
	fe := NewNormalFrontend(mem, p.TextBase, len(p.Text))
	cpu := New(mem, fe)
	if err := fe.Reset(p.EntryAddr()); err != nil {
		return nil, err
	}
	cpu.GPR[1] = stackTop - 64 // stack pointer with a red zone
	if err := cpu.SnapshotReset(); err != nil {
		return nil, err
	}
	return cpu, nil
}

// SnapshotReset captures the CPU's current architectural state — registers,
// PC, and every memory region's contents — as the state Reset restores.
// Constructors call it once setup is complete, so a freshly built machine
// can be Run repeatedly without re-mapping ~MBs of memory per run.
func (c *CPU) SnapshotReset() error {
	pcer, ok := c.fe.(interface{ PC() uint32 })
	if !ok {
		return fmt.Errorf("machine: frontend %T cannot report its PC for snapshot", c.fe)
	}
	c.Mem.Snapshot()
	c.snap = &resetState{gpr: c.GPR, lr: c.LR, ctr: c.CTR, cr: c.CR, pc: pcer.PC()}
	return nil
}

// Reset rewinds the machine to its SnapshotReset state: registers, memory,
// PC, accumulated output, exit state, Stats, and Fast all return to their
// post-construction values, reusing every allocation. Hooks (TraceFetch,
// TraceExec, TraceStep, Record, Heat) and epoch-sampling sinks are left
// attached.
func (c *CPU) Reset() error {
	if c.snap == nil {
		return fmt.Errorf("machine: Reset without a prior SnapshotReset")
	}
	if err := c.Mem.Reset(); err != nil {
		return err
	}
	c.GPR = c.snap.gpr
	c.LR = c.snap.lr
	c.CTR = c.snap.ctr
	c.CR = c.snap.cr
	c.out.Reset()
	c.Stats = Stats{}
	c.Fast = FastStats{}
	// The epoch in flight (sinceDrain, traffic, touched, epochSpan) is NOT
	// reset: epochs are intervals of the machine's lifetime, deliberately
	// spanning the Reset+Run request cycle so telemetry drains on the epoch
	// cadence rather than per request.
	c.branch = takenBranch{}
	c.exited = false
	c.status = 0
	return c.fe.Reset(c.snap.pc)
}

// EnableHeat allocates the dictionary-entry heat map for a dictionary of
// the given size; fetches attributed to an entry rank beyond it are
// dropped.
func (c *CPU) EnableHeat(entries int) { c.Heat = make([]int64, entries) }

// Output returns everything the program printed through syscalls.
func (c *CPU) Output() []byte { return c.out.Bytes() }

// Frontend returns the fetch frontend driving this CPU.
func (c *CPU) Frontend() Frontend { return c.fe }

// Exited reports whether the program performed SysExit, and its status.
func (c *CPU) Exited() (bool, int32) { return c.exited, c.status }

// Run executes until SysExit or the step budget is exhausted. It returns
// the exit status. Exceeding the budget or any architectural fault is an
// error.
//
// When every hook (TraceFetch/TraceExec/TraceStep/Record/Heat) is nil and
// the frontend supplies a predecode table, Run drives the fused
// fetch+execute fast loop; attaching any hook transparently selects the
// instrumented Step path, so observability features see every event.
// Epoch sampling (EnableEpochSampling, TraceEpochs) is deliberately NOT a
// hook: it observes the fast loop from its epoch boundaries, so sampled
// runs stay fused. Every Run classifies how the fast path ended — or why
// it never started — in Fast.Bails.
func (c *CPU) Run(maxSteps int64) (int32, error) {
	if c.Record != nil {
		before := c.Stats
		defer func() {
			c.Record.Add("machine.steps", c.Stats.Steps-before.Steps)
			c.Record.Add("machine.expanded", c.Stats.Expanded-before.Expanded)
			c.Record.Add("machine.fetched_bytes", c.Stats.FetchedBytes-before.FetchedBytes)
		}()
	}
	if rec := c.fastpathRec(); rec != nil {
		fastBefore, stepsBefore := c.Fast, c.Stats.Steps
		defer func() { c.exportFastpath(rec, fastBefore, stepsBefore) }()
	}
	if c.TraceFetch == nil && c.TraceExec == nil && c.TraceStep == nil &&
		c.Record == nil && c.Heat == nil {
		if fe, ok := c.fe.(PredecodedFrontend); ok {
			if pd := fe.Predecode(); pd != nil {
				st, done, err := c.runFast(fe, pd, maxSteps)
				if done {
					return st, err
				}
				// The fast loop bailed with work left (fault slot,
				// off-table PC, stale table): the instrumented loop
				// finishes the run, so faults have one implementation.
				return c.runSlow(maxSteps)
			}
		}
		c.Fast.Bails[BailFrontendRefused]++
	} else {
		c.Fast.Bails[BailHookAttached]++
	}
	return c.runSlow(maxSteps)
}

// runSlow is the instrumented reference loop: one Step per instruction,
// every hook honored. The fused fast loop delegates here whenever
// anything unusual happens, so faults and edge cases have exactly one
// implementation.
func (c *CPU) runSlow(maxSteps int64) (int32, error) {
	for c.Stats.Steps < maxSteps {
		if err := c.Step(); err != nil {
			return 0, err
		}
		if c.exited {
			return c.status, nil
		}
	}
	return 0, fmt.Errorf("machine: step budget of %d exhausted", maxSteps)
}

// traceAccess accounts one program-memory access of a fetch and forwards
// it to the TraceFetch hook. This is the single place FetchInfo's access
// contract is enforced: MemAddr/MemBytes is the primary access (the
// instruction or codeword fetch itself; MemBytes == 0 exactly when the
// instruction was expanded from an on-chip dictionary and touched no
// program memory), MemAddr2/MemBytes2 is the optional secondary access (a
// memory-resident dictionary-entry fetch). Each access flows through here
// exactly once, in fetch order, so Stats.MemFetches/FetchedBytes and the
// cache simulation agree on what the memory interface saw.
func (c *CPU) traceAccess(addr uint32, nbytes int) {
	c.Stats.MemFetches++
	c.Stats.FetchedBytes += int64(nbytes)
	if c.TraceFetch != nil {
		c.TraceFetch(addr, nbytes)
	}
}

// Step fetches and executes one instruction.
func (c *CPU) Step() error {
	fi, err := c.fe.Fetch()
	if err != nil {
		return err
	}
	c.Stats.Steps++
	if fi.MemBytes > 0 {
		c.traceAccess(fi.MemAddr, fi.MemBytes)
	} else {
		c.Stats.Expanded++
	}
	if fi.MemBytes2 > 0 {
		c.traceAccess(fi.MemAddr2, fi.MemBytes2)
	}
	if fi.EntryLen > 0 {
		if c.Heat != nil && fi.EntryRank < len(c.Heat) {
			c.Heat[fi.EntryRank]++
		}
		if c.Record != nil {
			c.Record.ObserveValue("machine.expansion_len", int64(fi.EntryLen))
		}
	}
	if c.TraceExec != nil {
		c.TraceExec(fi.CIA, fi.Word)
	}
	c.branch = takenBranch{}
	i := ppc.Decode(fi.Word)
	err = c.exec(&i, fi.Word, fi.CIA, fi.Next, fi.NextOK)
	if c.TraceStep != nil {
		c.TraceStep(StepInfo{FetchInfo: fi, Branch: c.branch.Kind, Target: c.branch.Target})
	}
	return err
}

// branchTo records a taken control transfer and redirects fetch. The
// recorded kind/target reach TraceStep observers after exec completes.
func (c *CPU) branchTo(target uint32, kind BranchKind) error {
	c.Stats.TakenBranches++
	c.branch = takenBranch{Kind: kind, Target: target}
	return c.fe.SetPC(target)
}

// exec applies one decoded instruction. cia/next/nextOK are the fetch
// addresses in the active frontend's PC space; word is the raw encoding,
// kept only for error text. Both the instrumented Step path and the fused
// fast loop call this, so architectural semantics live in one place.
func (c *CPU) exec(i *ppc.Inst, word, cia, next uint32, nextOK bool) error {
	g := &c.GPR
	switch i.Op {
	case ppc.OpInvalid:
		return fmt.Errorf("machine: illegal instruction %08x at %#x", word, cia)

	case ppc.OpAddi:
		g[i.RT] = c.regOrZero(i.RA) + uint32(i.Imm)
	case ppc.OpAddis:
		g[i.RT] = c.regOrZero(i.RA) + uint32(i.Imm)<<16
	case ppc.OpOri:
		g[i.RA] = g[i.RT] | uint32(uint16(i.Imm))
	case ppc.OpOris:
		g[i.RA] = g[i.RT] | uint32(uint16(i.Imm))<<16
	case ppc.OpAndiRc:
		g[i.RA] = g[i.RT] & uint32(uint16(i.Imm))
		c.setCR0(g[i.RA])
	case ppc.OpXori:
		g[i.RA] = g[i.RT] ^ uint32(uint16(i.Imm))

	case ppc.OpCmpwi:
		c.setCRSigned(i.CRF, int32(g[i.RA]), i.Imm)
	case ppc.OpCmplwi:
		c.setCRUnsigned(i.CRF, g[i.RA], uint32(uint16(i.Imm)))
	case ppc.OpCmpw:
		c.setCRSigned(i.CRF, int32(g[i.RA]), int32(g[i.RB]))
	case ppc.OpCmplw:
		c.setCRUnsigned(i.CRF, g[i.RA], g[i.RB])

	case ppc.OpLwz:
		v, err := c.Mem.Load32(c.regOrZero(i.RA) + uint32(i.Imm))
		if err != nil {
			return err
		}
		g[i.RT] = v
	case ppc.OpLbz:
		v, err := c.Mem.Load8(c.regOrZero(i.RA) + uint32(i.Imm))
		if err != nil {
			return err
		}
		g[i.RT] = uint32(v)
	case ppc.OpLhz:
		v, err := c.Mem.Load16(c.regOrZero(i.RA) + uint32(i.Imm))
		if err != nil {
			return err
		}
		g[i.RT] = uint32(v)
	case ppc.OpStw:
		if err := c.Mem.Store32(c.regOrZero(i.RA)+uint32(i.Imm), g[i.RT]); err != nil {
			return err
		}
	case ppc.OpStb:
		if err := c.Mem.Store8(c.regOrZero(i.RA)+uint32(i.Imm), uint8(g[i.RT])); err != nil {
			return err
		}
	case ppc.OpSth:
		if err := c.Mem.Store16(c.regOrZero(i.RA)+uint32(i.Imm), uint16(g[i.RT])); err != nil {
			return err
		}
	case ppc.OpStwu:
		ea := g[i.RA] + uint32(i.Imm)
		if err := c.Mem.Store32(ea, g[i.RT]); err != nil {
			return err
		}
		g[i.RA] = ea
	case ppc.OpLmw:
		ea := c.regOrZero(i.RA) + uint32(i.Imm)
		for r := int(i.RT); r <= 31; r++ {
			v, err := c.Mem.Load32(ea)
			if err != nil {
				return err
			}
			g[r] = v
			ea += 4
		}
	case ppc.OpStmw:
		ea := c.regOrZero(i.RA) + uint32(i.Imm)
		for r := int(i.RT); r <= 31; r++ {
			if err := c.Mem.Store32(ea, g[r]); err != nil {
				return err
			}
			ea += 4
		}
	case ppc.OpLwzx:
		v, err := c.Mem.Load32(c.regOrZero(i.RA) + g[i.RB])
		if err != nil {
			return err
		}
		g[i.RT] = v
	case ppc.OpStwx:
		if err := c.Mem.Store32(c.regOrZero(i.RA)+g[i.RB], g[i.RT]); err != nil {
			return err
		}
	case ppc.OpLbzx:
		v, err := c.Mem.Load8(c.regOrZero(i.RA) + g[i.RB])
		if err != nil {
			return err
		}
		g[i.RT] = uint32(v)
	case ppc.OpLhzx:
		v, err := c.Mem.Load16(c.regOrZero(i.RA) + g[i.RB])
		if err != nil {
			return err
		}
		g[i.RT] = uint32(v)
	case ppc.OpStbx:
		if err := c.Mem.Store8(c.regOrZero(i.RA)+g[i.RB], uint8(g[i.RT])); err != nil {
			return err
		}
	case ppc.OpSthx:
		if err := c.Mem.Store16(c.regOrZero(i.RA)+g[i.RB], uint16(g[i.RT])); err != nil {
			return err
		}

	case ppc.OpAdd:
		g[i.RT] = g[i.RA] + g[i.RB]
		if i.Rc {
			c.setCR0(g[i.RT])
		}
	case ppc.OpSubf:
		g[i.RT] = g[i.RB] - g[i.RA]
		if i.Rc {
			c.setCR0(g[i.RT])
		}
	case ppc.OpNeg:
		g[i.RT] = -g[i.RA]
		if i.Rc {
			c.setCR0(g[i.RT])
		}
	case ppc.OpMullw:
		g[i.RT] = uint32(int32(g[i.RA]) * int32(g[i.RB]))
		if i.Rc {
			c.setCR0(g[i.RT])
		}
	case ppc.OpDivw:
		a, b := int32(g[i.RA]), int32(g[i.RB])
		var q int32
		switch {
		case b == 0, a == math.MinInt32 && b == -1:
			q = 0 // architecturally undefined; pinned for determinism
		default:
			q = a / b
		}
		g[i.RT] = uint32(q)
		if i.Rc {
			c.setCR0(g[i.RT])
		}

	case ppc.OpAnd:
		g[i.RA] = g[i.RT] & g[i.RB]
		if i.Rc {
			c.setCR0(g[i.RA])
		}
	case ppc.OpOr:
		g[i.RA] = g[i.RT] | g[i.RB]
		if i.Rc {
			c.setCR0(g[i.RA])
		}
	case ppc.OpXor:
		g[i.RA] = g[i.RT] ^ g[i.RB]
		if i.Rc {
			c.setCR0(g[i.RA])
		}
	case ppc.OpNor:
		g[i.RA] = ^(g[i.RT] | g[i.RB])
		if i.Rc {
			c.setCR0(g[i.RA])
		}
	case ppc.OpSlw:
		sh := g[i.RB] & 0x3F
		if sh > 31 {
			g[i.RA] = 0
		} else {
			g[i.RA] = g[i.RT] << sh
		}
		if i.Rc {
			c.setCR0(g[i.RA])
		}
	case ppc.OpSrw:
		sh := g[i.RB] & 0x3F
		if sh > 31 {
			g[i.RA] = 0
		} else {
			g[i.RA] = g[i.RT] >> sh
		}
		if i.Rc {
			c.setCR0(g[i.RA])
		}
	case ppc.OpSraw:
		sh := g[i.RB] & 0x3F
		if sh > 31 {
			sh = 31
		}
		g[i.RA] = uint32(int32(g[i.RT]) >> sh)
		if i.Rc {
			c.setCR0(g[i.RA])
		}
	case ppc.OpSrawi:
		g[i.RA] = uint32(int32(g[i.RT]) >> i.SH)
		if i.Rc {
			c.setCR0(g[i.RA])
		}
	case ppc.OpExtsb:
		g[i.RA] = uint32(int32(int8(g[i.RT])))
		if i.Rc {
			c.setCR0(g[i.RA])
		}
	case ppc.OpExtsh:
		g[i.RA] = uint32(int32(int16(g[i.RT])))
		if i.Rc {
			c.setCR0(g[i.RA])
		}
	case ppc.OpRlwinm:
		r := bits.RotateLeft32(g[i.RT], int(i.SH))
		g[i.RA] = r & maskMBME(i.MB, i.ME)
		if i.Rc {
			c.setCR0(g[i.RA])
		}

	case ppc.OpMfspr:
		switch i.SPR {
		case ppc.SprLR:
			g[i.RT] = c.LR
		case ppc.SprCTR:
			g[i.RT] = c.CTR
		default:
			return fmt.Errorf("machine: mfspr %d unsupported", i.SPR)
		}
	case ppc.OpMtspr:
		switch i.SPR {
		case ppc.SprLR:
			c.LR = g[i.RT]
		case ppc.SprCTR:
			c.CTR = g[i.RT]
		default:
			return fmt.Errorf("machine: mtspr %d unsupported", i.SPR)
		}

	case ppc.OpB:
		if i.AA {
			return fmt.Errorf("machine: absolute branch at %#x unsupported", cia)
		}
		if i.LK {
			if !nextOK {
				return fmt.Errorf("machine: link branch with unaddressable successor at %#x", cia)
			}
			c.LR = next
		}
		return c.branchTo(c.fe.RelTarget(cia, i.Imm>>2), linkKind(i.LK))
	case ppc.OpBc:
		if i.AA {
			return fmt.Errorf("machine: absolute branch at %#x unsupported", cia)
		}
		taken := c.branchCond(i.BO, i.BI)
		if i.LK {
			if !nextOK {
				return fmt.Errorf("machine: link branch with unaddressable successor at %#x", cia)
			}
			c.LR = next
		}
		if taken {
			return c.branchTo(c.fe.RelTarget(cia, i.Imm>>2), linkKind(i.LK))
		}
	case ppc.OpBclr:
		taken := c.branchCond(i.BO, i.BI)
		target := c.LR
		if i.LK {
			if !nextOK {
				return fmt.Errorf("machine: link branch with unaddressable successor at %#x", cia)
			}
			c.LR = next
		}
		if taken {
			kind := BranchReturn
			if i.LK {
				kind = BranchCall
			}
			return c.branchTo(target, kind)
		}
	case ppc.OpBcctr:
		taken := c.branchCond(i.BO, i.BI)
		if i.LK {
			if !nextOK {
				return fmt.Errorf("machine: link branch with unaddressable successor at %#x", cia)
			}
			c.LR = next
		}
		if taken {
			return c.branchTo(c.CTR, linkKind(i.LK))
		}

	case ppc.OpSc:
		c.Stats.Syscalls++
		return c.syscall()

	default:
		return fmt.Errorf("machine: unimplemented op %v at %#x", i.Op, cia)
	}
	return nil
}

// linkKind maps a branch's LK bit to its transfer kind for non-bclr
// branches: setting the link register makes the transfer a call.
func linkKind(lk bool) BranchKind {
	if lk {
		return BranchCall
	}
	return BranchJump
}

// regOrZero implements the RA=0-means-zero convention of addi/addis and
// load/store effective-address computation.
func (c *CPU) regOrZero(ra uint8) uint32 {
	if ra == 0 {
		return 0
	}
	return c.GPR[ra]
}

// branchCond evaluates the BO/BI fields, decrementing CTR when required.
func (c *CPU) branchCond(bo, bi uint8) bool {
	ctrOK := true
	if bo&4 == 0 {
		c.CTR--
		ctrZero := c.CTR == 0
		ctrOK = ctrZero == (bo&2 != 0)
	}
	condOK := true
	if bo&16 == 0 {
		bit := c.CR>>(31-uint(bi))&1 == 1
		condOK = bit == (bo&8 != 0)
	}
	return ctrOK && condOK
}

func (c *CPU) setCRField(crf uint8, lt, gt, eq bool) {
	shift := 28 - 4*uint(crf)
	var v uint32
	if lt {
		v |= 8
	}
	if gt {
		v |= 4
	}
	if eq {
		v |= 2
	}
	c.CR = c.CR&^(uint32(0xF)<<shift) | v<<shift
}

func (c *CPU) setCRSigned(crf uint8, a, b int32) {
	c.setCRField(crf, a < b, a > b, a == b)
}

func (c *CPU) setCRUnsigned(crf uint8, a, b uint32) {
	c.setCRField(crf, a < b, a > b, a == b)
}

func (c *CPU) setCR0(v uint32) { c.setCRSigned(0, int32(v), 0) }

// CRBit returns CR bit i (IBM numbering, bit 0 = MSB).
func (c *CPU) CRBit(i uint8) bool { return c.CR>>(31-uint(i))&1 == 1 }

// maskMBME builds the rlwinm mask covering IBM bits MB..ME inclusive,
// wrapping when MB > ME.
func maskMBME(mb, me uint8) uint32 {
	m1 := ^uint32(0) >> mb
	var m2 uint32
	if me < 31 {
		m2 = ^uint32(0) >> (me + 1)
	}
	if mb <= me {
		return m1 &^ m2
	}
	return m1 | ^m2
}

func (c *CPU) syscall() error {
	switch c.GPR[0] {
	case SysExit:
		c.exited = true
		c.status = int32(c.GPR[3])
	case SysPutchar:
		c.out.WriteByte(byte(c.GPR[3]))
	case SysPutint:
		fmt.Fprintf(&c.out, "%d", int32(c.GPR[3]))
	case SysPuts:
		s, err := c.Mem.CString(c.GPR[3], 1<<16)
		if err != nil {
			return err
		}
		c.out.WriteString(s)
	default:
		return fmt.Errorf("machine: unknown syscall %d", c.GPR[0])
	}
	return nil
}

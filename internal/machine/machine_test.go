package machine

import (
	"testing"

	"repro/internal/ppc"
	"repro/internal/program"
)

// run links and executes a module, returning the CPU after exit.
func run(t *testing.T, b *program.Builder, maxSteps int64) *CPU {
	t.Helper()
	p, err := b.Link()
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	cpu, err := NewForProgram(p)
	if err != nil {
		t.Fatalf("NewForProgram: %v", err)
	}
	if _, err := cpu.Run(maxSteps); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return cpu
}

// emitExit appends the exit syscall with the status in r3.
func emitExit(f *program.FuncBuilder) {
	f.Emit(ppc.Li(0, SysExit))
	f.Emit(ppc.Sc())
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..10 with a bdnz loop, print, exit with the sum.
	b := program.NewBuilder("sum")
	f := b.Func("main")
	f.Emit(ppc.Li(3, 0))  // acc
	f.Emit(ppc.Li(4, 10)) // i
	f.Emit(ppc.Li(5, 10)) // count
	f.Emit(ppc.Mtctr(5))
	f.Label("loop")
	f.Emit(ppc.Add(3, 3, 4))
	f.Emit(ppc.Addi(4, 4, -1))
	f.Branch(ppc.Bdnz(0), "loop")
	f.Emit(ppc.Li(0, SysPutint))
	f.Emit(ppc.Sc())
	emitExit(f)

	cpu := run(t, b, 1000)
	exited, status := cpu.Exited()
	if !exited || status != 55 {
		t.Fatalf("exit %v status %d, want 55", exited, status)
	}
	if string(cpu.Output()) != "55" {
		t.Fatalf("output %q", cpu.Output())
	}
}

func TestRecursionAndStack(t *testing.T) {
	// Recursive factorial(6) = 720 exercising prologue/epilogue templates,
	// call/return, and stack discipline.
	b := program.NewBuilder("fact")

	main := b.Func("main")
	main.Emit(ppc.Li(3, 6))
	main.Call("fact")
	emitExit(main)

	f := b.Func("fact")
	f.BeginPrologue()
	f.Emit(ppc.Mflr(0))
	f.Emit(ppc.Stw(0, 8, 1))
	f.Emit(ppc.Stwu(1, -32, 1))
	f.Emit(ppc.Stmw(31, 28, 1))
	f.EndPrologue()
	f.Emit(ppc.Mr(31, 3))
	f.Emit(ppc.Cmpwi(0, 3, 1))
	f.Branch(ppc.Bgt(0, 0), "recurse")
	f.Emit(ppc.Li(3, 1))
	f.Branch(ppc.B(0), "out")
	f.Label("recurse")
	f.Emit(ppc.Addi(3, 3, -1))
	f.Call("fact")
	f.Emit(ppc.Mullw(3, 3, 31))
	f.Label("out")
	f.BeginEpilogue()
	f.Emit(ppc.Lmw(31, 28, 1))
	f.Emit(ppc.Addi(1, 1, 32))
	f.Emit(ppc.Lwz(0, 8, 1))
	f.Emit(ppc.Mtlr(0))
	f.Emit(ppc.Blr())
	f.EndEpilogue()

	cpu := run(t, b, 10000)
	if _, status := cpu.Exited(); status != 720 {
		t.Fatalf("fact(6) = %d, want 720", status)
	}
}

func TestJumpTableDispatch(t *testing.T) {
	// switch(i) for i = 0..2, accumulating distinct constants, exercising
	// the computed-goto sequence and data-section tables.
	b := program.NewBuilder("switch")
	f := b.Func("main")
	f.Emit(ppc.Li(31, 0)) // acc
	f.Emit(ppc.Li(30, 0)) // i
	f.Label("loop")
	f.Emit(ppc.Mr(3, 30))
	f.JumpTable(3, 11, 12, []string{"c0", "c1", "c2"})
	f.Label("c0")
	f.Emit(ppc.Addi(31, 31, 1))
	f.Branch(ppc.B(0), "next")
	f.Label("c1")
	f.Emit(ppc.Addi(31, 31, 20))
	f.Branch(ppc.B(0), "next")
	f.Label("c2")
	f.Emit(ppc.Addi(31, 31, 300))
	f.Label("next")
	f.Emit(ppc.Addi(30, 30, 1))
	f.Emit(ppc.Cmpwi(0, 30, 3))
	f.Branch(ppc.Blt(0, 0), "loop")
	f.Emit(ppc.Mr(3, 31))
	emitExit(f)

	cpu := run(t, b, 1000)
	if _, status := cpu.Exited(); status != 321 {
		t.Fatalf("switch acc = %d, want 321", status)
	}
}

func TestMemoryOps(t *testing.T) {
	// Store and reload bytes/halves/words, sign extension, shifts, masks.
	b := program.NewBuilder("mem")
	base := b.ReserveData(64, 4)
	f := b.Func("main")
	addr := uint32(program.DefaultDataBase + base)
	f.Emit(ppc.Lis(9, int32(int16(addr>>16))))
	f.Emit(ppc.Ori(9, 9, int32(addr&0xFFFF)))
	f.Emit(ppc.Li(3, -2)) // 0xFFFFFFFE
	f.Emit(ppc.Stw(3, 0, 9))
	f.Emit(ppc.Lbz(4, 3, 9))  // lowest byte of BE word: 0xFE
	f.Emit(ppc.Lhz(5, 2, 9))  // 0xFFFE
	f.Emit(ppc.Lwz(6, 0, 9))  // 0xFFFFFFFE
	f.Emit(ppc.Stb(4, 8, 9))  // write 0xFE
	f.Emit(ppc.Sth(5, 10, 9)) // write 0xFFFE
	f.Emit(ppc.Lwz(7, 8, 9))  // 0xFE00FFFE
	f.Emit(ppc.Extsb(10, 4))  // 0xFFFFFFFE
	f.Emit(ppc.Extsh(11, 5))  // 0xFFFFFFFE
	f.Emit(ppc.Srwi(12, 7, 24))
	f.Emit(ppc.Mr(3, 12))
	emitExit(f)

	cpu := run(t, b, 1000)
	if _, status := cpu.Exited(); status != 0xFE {
		t.Fatalf("r12 = %#x, want 0xFE", status)
	}
	if cpu.GPR[4] != 0xFE || cpu.GPR[5] != 0xFFFE || cpu.GPR[6] != 0xFFFFFFFE {
		t.Fatalf("loads: r4=%#x r5=%#x r6=%#x", cpu.GPR[4], cpu.GPR[5], cpu.GPR[6])
	}
	if cpu.GPR[7] != 0xFE00FFFE {
		t.Fatalf("r7 = %#x", cpu.GPR[7])
	}
	if cpu.GPR[10] != 0xFFFFFFFE || cpu.GPR[11] != 0xFFFFFFFE {
		t.Fatalf("extends: r10=%#x r11=%#x", cpu.GPR[10], cpu.GPR[11])
	}
}

func TestStringOutput(t *testing.T) {
	b := program.NewBuilder("hello")
	off := b.AppendData([]byte("hello, ppc\x00"))
	f := b.Func("main")
	addr := uint32(program.DefaultDataBase + off)
	f.Emit(ppc.Lis(3, int32(int16(addr>>16))))
	f.Emit(ppc.Ori(3, 3, int32(addr&0xFFFF)))
	f.Emit(ppc.Li(0, SysPuts))
	f.Emit(ppc.Sc())
	emitExit(f)

	cpu := run(t, b, 100)
	if got := string(cpu.Output()); got != "hello, ppc" {
		t.Fatalf("output %q", got)
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	b := program.NewBuilder("div")
	f := b.Func("main")
	f.Emit(ppc.Li(3, 100))
	f.Emit(ppc.Li(4, 7))
	f.Emit(ppc.Divw(5, 3, 4)) // 14
	f.Emit(ppc.Li(6, 0))
	f.Emit(ppc.Divw(7, 3, 6)) // div by zero -> 0
	f.Emit(ppc.Lis(8, -0x8000))
	f.Emit(ppc.Li(9, -1))
	f.Emit(ppc.Divw(10, 8, 9)) // overflow -> 0
	f.Emit(ppc.Mr(3, 5))
	emitExit(f)

	cpu := run(t, b, 100)
	if _, status := cpu.Exited(); status != 14 {
		t.Fatalf("100/7 = %d", status)
	}
	if cpu.GPR[7] != 0 || cpu.GPR[10] != 0 {
		t.Fatalf("edge cases: r7=%d r10=%d", cpu.GPR[7], cpu.GPR[10])
	}
}

func TestCRFieldsIndependent(t *testing.T) {
	b := program.NewBuilder("cr")
	f := b.Func("main")
	f.Emit(ppc.Li(3, 5))
	f.Emit(ppc.Cmpwi(0, 3, 9)) // cr0: LT
	f.Emit(ppc.Cmpwi(1, 3, 1)) // cr1: GT
	f.Emit(ppc.Cmpwi(7, 3, 5)) // cr7: EQ
	f.Emit(ppc.Li(3, 0))
	f.Branch(ppc.Bge(0, 0), "fail")
	f.Branch(ppc.Ble(1, 0), "fail")
	f.Branch(ppc.Bne(7, 0), "fail")
	f.Emit(ppc.Li(3, 1))
	f.Label("fail")
	emitExit(f)

	cpu := run(t, b, 100)
	if _, status := cpu.Exited(); status != 1 {
		t.Fatal("CR fields interfered")
	}
}

func TestUnsignedCompare(t *testing.T) {
	b := program.NewBuilder("ucmp")
	f := b.Func("main")
	f.Emit(ppc.Li(3, -1)) // 0xFFFFFFFF
	f.Emit(ppc.Cmplwi(0, 3, 1))
	f.Emit(ppc.Li(3, 0))
	f.Branch(ppc.Ble(0, 0), "out") // unsigned max is not <= 1
	f.Emit(ppc.Li(3, 1))
	f.Label("out")
	emitExit(f)

	cpu := run(t, b, 100)
	if _, status := cpu.Exited(); status != 1 {
		t.Fatal("unsigned compare treated as signed")
	}
}

func TestRlwinmSemantics(t *testing.T) {
	cases := []struct {
		sh, mb, me uint8
		in, want   uint32
	}{
		{0, 24, 31, 0xDEADBEEF, 0xEF},       // clrlwi 24
		{8, 0, 23, 0xDEADBEEF, 0xADBEEF00},  // slwi 8
		{24, 8, 31, 0xDEADBEEF, 0x00DEADBE}, // srwi 8
		{16, 0, 31, 0x12345678, 0x56781234}, // rotate 16
		{0, 28, 3, 0xFFFFFFFF, 0xF000000F},  // wrapped mask
	}
	for _, tc := range cases {
		b := program.NewBuilder("rlw")
		f := b.Func("main")
		f.Emit(ppc.Lis(4, int32(int16(tc.in>>16))))
		f.Emit(ppc.Ori(4, 4, int32(tc.in&0xFFFF)))
		f.Emit(ppc.Rlwinm(5, 4, tc.sh, tc.mb, tc.me))
		emitExit(f)
		cpu := run(t, b, 100)
		if cpu.GPR[5] != tc.want {
			t.Errorf("rlwinm sh=%d mb=%d me=%d on %#x = %#x, want %#x",
				tc.sh, tc.mb, tc.me, tc.in, cpu.GPR[5], tc.want)
		}
	}
}

func TestMaskMBME(t *testing.T) {
	cases := []struct {
		mb, me uint8
		want   uint32
	}{
		{0, 31, 0xFFFFFFFF},
		{24, 31, 0x000000FF},
		{0, 7, 0xFF000000},
		{8, 15, 0x00FF0000},
		{31, 31, 0x00000001},
		{0, 0, 0x80000000},
		{28, 3, 0xF000000F}, // wrap
	}
	for _, tc := range cases {
		if got := maskMBME(tc.mb, tc.me); got != tc.want {
			t.Errorf("maskMBME(%d,%d) = %#x, want %#x", tc.mb, tc.me, got, tc.want)
		}
	}
}

func TestStepBudget(t *testing.T) {
	b := program.NewBuilder("spin")
	f := b.Func("main")
	f.Label("loop")
	f.Branch(ppc.B(0), "loop")
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(100); err == nil {
		t.Fatal("infinite loop not caught by budget")
	}
}

func TestMemoryFault(t *testing.T) {
	b := program.NewBuilder("fault")
	f := b.Func("main")
	f.Emit(ppc.Li(9, 16)) // address 16: unmapped
	f.Emit(ppc.Lwz(3, 0, 9))
	emitExit(f)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(100); err == nil {
		t.Fatal("wild load not faulted")
	}
}

func TestJumpOutsideTextFaults(t *testing.T) {
	b := program.NewBuilder("wild")
	f := b.Func("main")
	f.Emit(ppc.Li(9, 0x100))
	f.Emit(ppc.Mtctr(9))
	f.Emit(ppc.Bctr())
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(100); err == nil {
		t.Fatal("wild jump not faulted")
	}
}

func TestStatsAndTrace(t *testing.T) {
	b := program.NewBuilder("stats")
	f := b.Func("main")
	f.Emit(ppc.Li(3, 0))
	f.Emit(ppc.Li(4, 3))
	f.Emit(ppc.Mtctr(4))
	f.Label("loop")
	f.Emit(ppc.Addi(3, 3, 1))
	f.Branch(ppc.Bdnz(0), "loop")
	emitExit(f)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	var traced int
	cpu.TraceFetch = func(addr uint32, n int) {
		traced++
		if n != 4 {
			t.Errorf("normal fetch of %d bytes", n)
		}
		if addr < p.TextBase {
			t.Errorf("fetch below text base: %#x", addr)
		}
	}
	if _, err := cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	if cpu.Stats.Steps == 0 || int64(traced) != cpu.Stats.MemFetches {
		t.Fatalf("stats: steps=%d traced=%d memfetches=%d", cpu.Stats.Steps, traced, cpu.Stats.MemFetches)
	}
	if cpu.Stats.TakenBranches != 2 { // bdnz taken twice
		t.Fatalf("taken branches = %d, want 2", cpu.Stats.TakenBranches)
	}
	if cpu.Stats.FetchedBytes != 4*cpu.Stats.MemFetches {
		t.Fatal("fetched bytes inconsistent")
	}
}

func TestTraceExec(t *testing.T) {
	b := program.NewBuilder("trace")
	f := b.Func("main")
	f.Emit(ppc.Li(3, 1))
	f.Emit(ppc.Addi(3, 3, 1))
	emitExit(f)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	var words []uint32
	var addrs []uint32
	cpu.TraceExec = func(cia uint32, w uint32) {
		addrs = append(addrs, cia)
		words = append(words, w)
	}
	if _, err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if int64(len(words)) != cpu.Stats.Steps {
		t.Fatalf("traced %d of %d steps", len(words), cpu.Stats.Steps)
	}
	if words[0] != ppc.Li(3, 1) || addrs[0] != p.EntryAddr() {
		t.Fatalf("first trace entry %08x at %#x", words[0], addrs[0])
	}
	for i := 1; i < len(addrs); i++ {
		if addrs[i] != addrs[i-1]+4 {
			t.Fatalf("trace addresses not sequential at %d", i)
		}
	}
}

// runExpectError builds a single-function program and requires Run to
// fail.
func runExpectError(t *testing.T, name string, emit func(f *program.FuncBuilder)) {
	t.Helper()
	b := program.NewBuilder(name)
	f := b.Func("main")
	emit(f)
	p, err := b.Link()
	if err != nil {
		t.Fatalf("%s: link: %v", name, err)
	}
	cpu, err := NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(1000); err == nil {
		t.Errorf("%s: expected an execution error", name)
	}
}

func TestExecutionFaults(t *testing.T) {
	runExpectError(t, "illegal", func(f *program.FuncBuilder) {
		f.Emit(0x00000000) // reserved opcode
	})
	runExpectError(t, "unknown-syscall", func(f *program.FuncBuilder) {
		f.Emit(ppc.Li(0, 99))
		f.Emit(ppc.Sc())
	})
	runExpectError(t, "unsupported-spr", func(f *program.FuncBuilder) {
		f.Emit(ppc.Encode(ppc.Inst{Op: ppc.OpMfspr, RT: 3, SPR: 1}))
	})
	runExpectError(t, "unsupported-mtspr", func(f *program.FuncBuilder) {
		f.Emit(ppc.Encode(ppc.Inst{Op: ppc.OpMtspr, RT: 3, SPR: 272}))
	})
	runExpectError(t, "absolute-branch", func(f *program.FuncBuilder) {
		f.Emit(ppc.Encode(ppc.Inst{Op: ppc.OpB, Imm: 0x100, AA: true}))
	})
	runExpectError(t, "store-fault", func(f *program.FuncBuilder) {
		f.Emit(ppc.Li(9, 64))
		f.Emit(ppc.Stw(3, 0, 9))
	})
	runExpectError(t, "blr-wild", func(f *program.FuncBuilder) {
		f.Emit(ppc.Li(9, 12))
		f.Emit(ppc.Mtlr(9))
		f.Emit(ppc.Blr())
	})
}

func TestIndexedMemoryOps(t *testing.T) {
	b := program.NewBuilder("idx")
	base := b.ReserveData(32, 4)
	f := b.Func("main")
	addr := uint32(program.DefaultDataBase + base)
	f.Emit(ppc.Lis(9, int32(int16(addr>>16))))
	f.Emit(ppc.Ori(9, 9, int32(addr&0xFFFF)))
	f.Emit(ppc.Li(10, 4)) // index
	f.Emit(ppc.Li(3, -2))
	f.Emit(ppc.Stbx(3, 9, 10)) // byte 0xFE at +4
	f.Emit(ppc.Li(11, 8))
	f.Emit(ppc.Sthx(3, 9, 11)) // half 0xFFFE at +8
	f.Emit(ppc.Lbzx(4, 9, 10)) // 0xFE
	f.Emit(ppc.Lhzx(5, 9, 11)) // 0xFFFE
	f.Emit(ppc.Add(3, 4, 5))   // 0xFE + 0xFFFE = 0x100FC
	emitExit(f)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	status, err := cpu.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if status != 0x100FC {
		t.Fatalf("indexed ops: %#x, want 0x100FC", status)
	}
}

func TestMemoryRegions(t *testing.T) {
	m := NewMemory()
	if err := m.Map("a", 0x1000, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if err := m.Map("b", 0x1008, make([]byte, 16)); err == nil {
		t.Fatal("overlap not detected")
	}
	if err := m.Map("c", 0x2000, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if err := m.Store32(0x1000, 0xCAFEBABE); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load32(0x1000)
	if err != nil || v != 0xCAFEBABE {
		t.Fatalf("load32: %v %#x", err, v)
	}
	hi, err := m.Load16(0x1000)
	if err != nil || hi != 0xCAFE {
		t.Fatalf("big-endian halfword: %#x", hi)
	}
	if _, err := m.Load32(0x100E); err == nil {
		t.Fatal("straddling load not faulted")
	}
	if _, err := m.Load8(0x3000); err == nil {
		t.Fatal("unmapped load not faulted")
	}
}

func TestCStringReads(t *testing.T) {
	m := NewMemory()
	if err := m.Map("d", 0x100, []byte("abc\x00def")); err != nil {
		t.Fatal(err)
	}
	s, err := m.CString(0x100, 16)
	if err != nil || s != "abc" {
		t.Fatalf("CString = %q, %v", s, err)
	}
	if _, err := m.CString(0x104, 3); err == nil {
		t.Fatal("unterminated string not detected")
	}
}

func TestTraceStepBranchClassification(t *testing.T) {
	// main calls leaf twice and exits; TraceStep must fire once per step
	// (conservation: deliveries == Stats.Steps) and classify the taken
	// transfers: bl = call, blr = return, b = jump.
	b := program.NewBuilder("branches")
	main := b.Func("main")
	main.Emit(ppc.Li(3, 0))
	main.Call("leaf")
	main.Branch(ppc.B(0), "tail")
	main.Label("tail")
	main.Call("leaf")
	emitExit(main)
	leaf := b.Func("leaf")
	leaf.Emit(ppc.Addi(3, 3, 1))
	leaf.Emit(ppc.Blr())

	p, err := b.Link()
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	cpu, err := NewForProgram(p)
	if err != nil {
		t.Fatalf("NewForProgram: %v", err)
	}
	var steps int64
	counts := map[BranchKind]int{}
	cpu.TraceStep = func(si StepInfo) {
		steps++
		counts[si.Branch]++
		if si.Branch != BranchNone && si.Target == 0 {
			t.Errorf("step at %#x: taken %v with zero target", si.CIA, si.Branch)
		}
	}
	if _, err := cpu.Run(1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if steps != cpu.Stats.Steps {
		t.Fatalf("TraceStep fired %d times, Stats.Steps %d", steps, cpu.Stats.Steps)
	}
	want := map[BranchKind]int{BranchCall: 2, BranchReturn: 2, BranchJump: 1}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("branch kind %v seen %d times, want %d", k, counts[k], n)
		}
	}
	if counts[BranchCall]+counts[BranchReturn]+counts[BranchJump] != int(cpu.Stats.TakenBranches) {
		t.Errorf("classified %d transfers, TakenBranches %d", counts[BranchCall]+counts[BranchReturn]+counts[BranchJump], cpu.Stats.TakenBranches)
	}
}

func TestTraceStepCountedBranchAndCtr(t *testing.T) {
	// bdnz is a taken jump while the counter runs, a non-branch on exit;
	// the jump-table dispatch ends in bctr, also a jump (no link).
	b := program.NewBuilder("ctr")
	main := b.Func("main")
	main.Emit(ppc.Li(3, 3))
	main.Emit(ppc.Mtctr(3))
	main.Label("loop")
	main.Branch(ppc.Bdnz(0), "loop")
	main.Emit(ppc.Li(3, 0))
	main.JumpTable(3, 11, 12, []string{"done"})
	main.Label("done")
	emitExit(main)

	p, err := b.Link()
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	cpu, err := NewForProgram(p)
	if err != nil {
		t.Fatalf("NewForProgram: %v", err)
	}
	counts := map[BranchKind]int{}
	cpu.TraceStep = func(si StepInfo) { counts[si.Branch]++ }
	if _, err := cpu.Run(1000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// bdnz takes twice (ctr 3→2→1, falls through on the third execution);
	// the table dispatch's bctr takes once. None of them link.
	if counts[BranchJump] != 3 {
		t.Errorf("jumps %d, want 3 (2 bdnz + 1 bctr)", counts[BranchJump])
	}
	if counts[BranchCall] != 0 || counts[BranchReturn] != 0 {
		t.Errorf("calls %d returns %d, want 0 each", counts[BranchCall], counts[BranchReturn])
	}
}

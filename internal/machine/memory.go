package machine

import (
	"encoding/binary"
	"fmt"
)

// Memory is a sparse big-endian byte-addressable memory built from disjoint
// regions (text, data, stack). Accesses outside any region fault, which
// turns wild pointers in generated code into test failures instead of
// silent corruption.
type Memory struct {
	regions []region
}

type region struct {
	name string
	base uint32
	data []byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{} }

// Map adds a region. Regions must not overlap.
func (m *Memory) Map(name string, base uint32, data []byte) error {
	end := uint64(base) + uint64(len(data))
	if end > 1<<32 {
		return fmt.Errorf("machine: region %s wraps the address space", name)
	}
	for _, r := range m.regions {
		rEnd := uint64(r.base) + uint64(len(r.data))
		if uint64(base) < rEnd && end > uint64(r.base) {
			return fmt.Errorf("machine: region %s overlaps %s", name, r.name)
		}
	}
	m.regions = append(m.regions, region{name: name, base: base, data: data})
	return nil
}

func (m *Memory) find(addr uint32, n int) ([]byte, error) {
	for _, r := range m.regions {
		if addr >= r.base && uint64(addr)+uint64(n) <= uint64(r.base)+uint64(len(r.data)) {
			off := addr - r.base
			return r.data[off : off+uint32(n)], nil
		}
	}
	return nil, fmt.Errorf("machine: fault at %#x (%d bytes)", addr, n)
}

// Load8 reads one byte.
func (m *Memory) Load8(addr uint32) (uint8, error) {
	b, err := m.find(addr, 1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Load16 reads a big-endian halfword.
func (m *Memory) Load16(addr uint32) (uint16, error) {
	b, err := m.find(addr, 2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

// Load32 reads a big-endian word.
func (m *Memory) Load32(addr uint32) (uint32, error) {
	b, err := m.find(addr, 4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// Store8 writes one byte.
func (m *Memory) Store8(addr uint32, v uint8) error {
	b, err := m.find(addr, 1)
	if err != nil {
		return err
	}
	b[0] = v
	return nil
}

// Store16 writes a big-endian halfword.
func (m *Memory) Store16(addr uint32, v uint16) error {
	b, err := m.find(addr, 2)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(b, v)
	return nil
}

// Store32 writes a big-endian word.
func (m *Memory) Store32(addr uint32, v uint32) error {
	b, err := m.find(addr, 4)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint32(b, v)
	return nil
}

// CString reads a NUL-terminated string of at most max bytes.
func (m *Memory) CString(addr uint32, max int) (string, error) {
	out := make([]byte, 0, 32)
	for i := 0; i < max; i++ {
		c, err := m.Load8(addr + uint32(i))
		if err != nil {
			return "", err
		}
		if c == 0 {
			return string(out), nil
		}
		out = append(out, c)
	}
	return "", fmt.Errorf("machine: unterminated string at %#x", addr)
}

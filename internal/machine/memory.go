package machine

import (
	"encoding/binary"
	"fmt"
)

// Memory is a sparse big-endian byte-addressable memory built from disjoint
// regions (text, data, stack). Accesses outside any region fault, which
// turns wild pointers in generated code into test failures instead of
// silent corruption.
type Memory struct {
	regions []region

	// storeGen counts stores into watched regions (see WatchStores). The
	// predecoded fetch path compares it per step to notice text modified
	// behind a decode table's back.
	storeGen uint64

	snapped bool   // Snapshot has run; Reset is permitted
	snapGen uint64 // storeGen at Snapshot time
}

type region struct {
	name string
	base uint32
	data []byte

	// init holds the pristine copy Reset restores; nil means the region
	// was all-zero at Snapshot time and is zero-filled instead (a 1MB
	// stack never earns a copy).
	init  []byte
	watch bool // stores here advance storeGen
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{} }

// Map adds a region. Regions must not overlap.
func (m *Memory) Map(name string, base uint32, data []byte) error {
	end := uint64(base) + uint64(len(data))
	if end > 1<<32 {
		return fmt.Errorf("machine: region %s wraps the address space", name)
	}
	for _, r := range m.regions {
		rEnd := uint64(r.base) + uint64(len(r.data))
		if uint64(base) < rEnd && end > uint64(r.base) {
			return fmt.Errorf("machine: region %s overlaps %s", name, r.name)
		}
	}
	m.regions = append(m.regions, region{name: name, base: base, data: data})
	return nil
}

func (m *Memory) find(addr uint32, n int) ([]byte, error) {
	for _, r := range m.regions {
		if addr >= r.base && uint64(addr)+uint64(n) <= uint64(r.base)+uint64(len(r.data)) {
			off := addr - r.base
			return r.data[off : off+uint32(n)], nil
		}
	}
	return nil, fmt.Errorf("machine: fault at %#x (%d bytes)", addr, n)
}

// findW is find for stores: a hit in a watched region advances the store
// generation before the caller writes through the returned slice.
func (m *Memory) findW(addr uint32, n int) ([]byte, error) {
	for i := range m.regions {
		r := &m.regions[i]
		if addr >= r.base && uint64(addr)+uint64(n) <= uint64(r.base)+uint64(len(r.data)) {
			if r.watch {
				m.storeGen++
			}
			off := addr - r.base
			return r.data[off : off+uint32(n)], nil
		}
	}
	return nil, fmt.Errorf("machine: fault at %#x (%d bytes)", addr, n)
}

// WatchStores marks every region overlapping [lo, hi) so that stores into
// it advance the store-generation counter, and returns the current
// generation. Predecode-table owners call it to learn whether text has
// changed since a table was built.
func (m *Memory) WatchStores(lo, hi uint32) uint64 {
	for i := range m.regions {
		r := &m.regions[i]
		rEnd := uint64(r.base) + uint64(len(r.data))
		if uint64(lo) < rEnd && uint64(hi) > uint64(r.base) {
			r.watch = true
		}
	}
	return m.storeGen
}

// Snapshot records each region's current contents as the state Reset
// restores. Regions that are all-zero at snapshot time (stacks, BSS) are
// recorded implicitly and zero-filled on Reset instead of copied.
func (m *Memory) Snapshot() {
	for i := range m.regions {
		r := &m.regions[i]
		if allZero(r.data) {
			r.init = nil
		} else {
			r.init = append([]byte(nil), r.data...)
		}
	}
	m.snapped = true
	m.snapGen = m.storeGen
}

// Reset restores every region to its Snapshot contents, reusing the
// backing arrays. If any watched store happened since the snapshot, the
// store generation advances once more: the restored bytes differ from
// what a predecode table built after that store saw.
func (m *Memory) Reset() error {
	if !m.snapped {
		return fmt.Errorf("machine: memory Reset without a prior Snapshot")
	}
	for i := range m.regions {
		r := &m.regions[i]
		if r.init == nil {
			clear(r.data)
		} else {
			copy(r.data, r.init)
		}
	}
	if m.storeGen != m.snapGen {
		m.storeGen++
		m.snapGen = m.storeGen
	}
	return nil
}

func allZero(b []byte) bool {
	for len(b) >= 8 {
		if binary.BigEndian.Uint64(b) != 0 {
			return false
		}
		b = b[8:]
	}
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// Load8 reads one byte.
func (m *Memory) Load8(addr uint32) (uint8, error) {
	b, err := m.find(addr, 1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

// Load16 reads a big-endian halfword.
func (m *Memory) Load16(addr uint32) (uint16, error) {
	b, err := m.find(addr, 2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

// Load32 reads a big-endian word.
func (m *Memory) Load32(addr uint32) (uint32, error) {
	b, err := m.find(addr, 4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

// Store8 writes one byte.
func (m *Memory) Store8(addr uint32, v uint8) error {
	b, err := m.findW(addr, 1)
	if err != nil {
		return err
	}
	b[0] = v
	return nil
}

// Store16 writes a big-endian halfword.
func (m *Memory) Store16(addr uint32, v uint16) error {
	b, err := m.findW(addr, 2)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint16(b, v)
	return nil
}

// Store32 writes a big-endian word.
func (m *Memory) Store32(addr uint32, v uint32) error {
	b, err := m.findW(addr, 4)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint32(b, v)
	return nil
}

// CString reads a NUL-terminated string of at most max bytes.
func (m *Memory) CString(addr uint32, max int) (string, error) {
	out := make([]byte, 0, 32)
	for i := 0; i < max; i++ {
		c, err := m.Load8(addr + uint32(i))
		if err != nil {
			return "", err
		}
		if c == 0 {
			return string(out), nil
		}
		out = append(out, c)
	}
	return "", fmt.Errorf("machine: unterminated string at %#x", addr)
}

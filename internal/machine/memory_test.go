package machine

import "testing"

// The store-generation watch is what lets the fused fast loop trust a
// predecode table: these tests pin its semantics for overlapping and
// adjacent regions and across Reset, the staleness paths runFast depends
// on.

func watchMem(t *testing.T) *Memory {
	t.Helper()
	m := NewMemory()
	if err := m.Map("text", 0x1000, make([]byte, 0x1000)); err != nil {
		t.Fatal(err)
	}
	if err := m.Map("text2", 0x2000, make([]byte, 0x1000)); err != nil {
		t.Fatal(err)
	}
	if err := m.Map("data", 0x4000, make([]byte, 0x1000)); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWatchStoresOverlappingRegions(t *testing.T) {
	// A watch range straddling two regions marks both; the unrelated data
	// region stays unwatched.
	m := watchMem(t)
	g0 := m.WatchStores(0x1800, 0x2800)
	if err := m.Store32(0x1804, 1); err != nil {
		t.Fatal(err)
	}
	if g1 := m.WatchStores(0, 0); g1 != g0+1 {
		t.Fatalf("store into first watched region: gen %d, want %d", g1, g0+1)
	}
	if err := m.Store32(0x2804, 1); err != nil {
		t.Fatal(err)
	}
	if g2 := m.WatchStores(0, 0); g2 != g0+2 {
		t.Fatalf("store into second watched region: gen %d, want %d", g2, g0+2)
	}
	if err := m.Store32(0x4000, 1); err != nil {
		t.Fatal(err)
	}
	if g3 := m.WatchStores(0, 0); g3 != g0+2 {
		t.Fatalf("store into unwatched data moved gen to %d", g3)
	}
}

func TestWatchStoresAdjacentRegion(t *testing.T) {
	// The watch interval is half-open: [0x1000, 0x2000) touches text but
	// not the region that begins exactly at 0x2000.
	m := watchMem(t)
	g0 := m.WatchStores(0x1000, 0x2000)
	if err := m.Store32(0x2000, 7); err != nil {
		t.Fatal(err)
	}
	if g := m.WatchStores(0, 0); g != g0 {
		t.Fatalf("store into adjacent region advanced gen %d -> %d", g0, g)
	}
	if err := m.Store32(0x1FFC, 7); err != nil {
		t.Fatal(err)
	}
	if g := m.WatchStores(0, 0); g != g0+1 {
		t.Fatalf("store into last watched word: gen %d, want %d", g, g0+1)
	}
	// Watching is idempotent: re-watching an already-watched region must
	// not double-count subsequent stores.
	m.WatchStores(0x1000, 0x2000)
	m.WatchStores(0x1800, 0x1801)
	if err := m.Store32(0x1800, 7); err != nil {
		t.Fatal(err)
	}
	if g := m.WatchStores(0, 0); g != g0+2 {
		t.Fatalf("re-watched store advanced gen to %d, want %d", g, g0+2)
	}
}

func TestWatchStoresResetInteraction(t *testing.T) {
	// Reset restores bytes a predecode table may have been built against
	// mid-run, so it must advance the generation when (and only when) a
	// watched store happened since Snapshot.
	m := watchMem(t)
	m.Snapshot()
	g0 := m.WatchStores(0x1000, 0x2000)

	// Clean snapshot, no stores: Reset restores identical bytes, so any
	// table built before it is still valid and the generation holds.
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if g := m.WatchStores(0, 0); g != g0 {
		t.Fatalf("Reset without stores advanced gen %d -> %d", g0, g)
	}

	// A watched store then Reset: the restored bytes differ from what a
	// table built after the store saw, so Reset advances once more.
	if err := m.Store32(0x1000, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	gStore := m.WatchStores(0, 0)
	if gStore != g0+1 {
		t.Fatalf("watched store: gen %d, want %d", gStore, g0+1)
	}
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if g := m.WatchStores(0, 0); g != gStore+1 {
		t.Fatalf("Reset after store: gen %d, want %d", g, gStore+1)
	}
	if v, err := m.Load32(0x1000); err != nil || v != 0 {
		t.Fatalf("Reset did not restore bytes: %#x, %v", v, err)
	}

	// An unwatched store does not dirty the generation, so the following
	// Reset holds it steady again.
	if err := m.Store32(0x4000, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	gAfter := m.WatchStores(0, 0)
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if g := m.WatchStores(0, 0); g != gAfter {
		t.Fatalf("Reset after unwatched store advanced gen %d -> %d", gAfter, g)
	}
}

package machine

import (
	"os"
	"strings"
	"testing"
)

// TestBailCountersRegistered pins the dynamically built fast-path counter
// names against the metric registry: the lint-metrics grep gate can only
// see literal names, so the "machine.fastpath.bail." + BailReason family
// is enumerated in internal/stats/metrics.txt by hand and this test keeps
// that enumeration complete. Adding a bail reason without registering its
// counter fails here.
func TestBailCountersRegistered(t *testing.T) {
	data, err := os.ReadFile("../stats/metrics.txt")
	if err != nil {
		t.Fatal(err)
	}
	registry := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			registry[line] = true
		}
	}
	for _, name := range bailCounterNames {
		if !registry[name] {
			t.Errorf("bail counter %q missing from internal/stats/metrics.txt", name)
		}
	}
	for _, name := range []string{
		"machine.fastpath.steps",
		"machine.fastpath.slow_steps",
		"machine.fastpath.epochs",
		"machine.fastpath.epoch_len",
	} {
		if !registry[name] {
			t.Errorf("fast-path metric %q missing from internal/stats/metrics.txt", name)
		}
	}
}

package machine

import (
	"fmt"

	"repro/internal/ppc"
)

// This file is the predecoded execution engine: the decode work the paper
// assigns to the fetch/decode hardware stage (codeword parsing, dictionary
// lookup, instruction decode) is done once, up front, into a flat table
// indexed by PC, and CPU.Run drives a fused fetch+execute loop over that
// table whenever no observability hook needs the per-fetch FetchInfo
// stream. The instrumented Step path remains the semantic reference; the
// fused loop bails back to it for anything unusual (fault slots, PCs
// outside the table, text modified behind the table's back) so every error
// message and edge case is produced by exactly one implementation.

// PredecodedSlot is one PC-indexed cell of a Predecode table: the decoded
// instruction at that address plus the fetch accounting the slow path
// would have produced for it. The layout is exactly 32 bytes — two slots
// per cache line — which matters: the fused loop's slot load is the one
// memory access the simulated fetch stage makes per instruction.
type PredecodedSlot struct {
	Inst ppc.Inst // decoded instruction (first instruction for a codeword)

	Next uint32 // PC of the sequential successor
	Rank int32  // dictionary entry rank; -1 for a raw instruction

	MemBytes uint8 // program-memory bytes this fetch accounts for
	EntryLen uint8 // instructions the slot expands to (1 when raw)

	// Fault marks an address the builder could not execute directly:
	// off-end or torn codeword decode, rank beyond the dictionary, or an
	// instruction that decodes to OpInvalid (its error text needs the raw
	// word the table no longer stores). The fused loop resolves such
	// addresses through the slow path, which reproduces the exact error.
	Fault bool
}

// PredecodedEntry is one dictionary entry decoded once at table-build
// time, streamed by index during expansion instead of re-sliced and
// re-decoded per fetch.
type PredecodedEntry struct {
	Insts []ppc.Inst
	Words []uint32
}

// Predecode is a flat decoded-instruction table over a frontend's PC
// space: slot i describes the instruction at Base + i<<Shift (Shift 2 for
// 4-byte native instructions, 0 for unit-addressed codeword streams).
type Predecode struct {
	Base  uint32
	Shift uint
	Slots []PredecodedSlot

	// Entries is the expansion cache, indexed by dictionary rank.
	Entries []PredecodedEntry

	// gen is the Memory store generation the table was built at; the
	// normal frontend rebuilds when stores have hit text since.
	gen uint64
}

// PredecodedFrontend is implemented by frontends whose text can be
// predecoded into a Predecode table, enabling the fused fast loop.
type PredecodedFrontend interface {
	Frontend

	// Predecode returns the table for the frontend's current text, or nil
	// when the frontend's configuration cannot use one (forcing the
	// instrumented path). The frontend owns caching and staleness.
	Predecode() *Predecode

	// PC returns the current fetch address.
	PC() uint32

	// SetRawPC repositions fetch without validation, resynchronizing the
	// frontend when the fused loop hands control back to the slow path;
	// the next Fetch then reproduces whatever fault the address implies.
	SetRawPC(pc uint32)
}

// PredecodeText builds the table for raw 32-bit text mapped at [lo, hi).
func PredecodeText(mem *Memory, lo, hi uint32) *Predecode {
	n := int(hi-lo) / 4
	pd := &Predecode{Base: lo, Shift: 2, Slots: make([]PredecodedSlot, n)}
	for i := 0; i < n; i++ {
		addr := lo + uint32(4*i)
		w, err := mem.Load32(addr)
		s := &pd.Slots[i]
		inst := ppc.Decode(w)
		if err != nil || inst.Op == ppc.OpInvalid {
			s.Fault = true
			continue
		}
		*s = PredecodedSlot{
			Inst: inst, Next: addr + 4,
			Rank: -1, MemBytes: 4, EntryLen: 1,
		}
	}
	return pd
}

// runFast is the fused fetch+execute loop. It requires every hook to be
// nil (checked by Run): with nobody observing per-fetch events, fetch
// reduces to a table index plus three counter adds, and expansion streams
// decoded instructions straight out of the entry cache. Stats produced
// here are identical to the slow path's: each table fetch is one memory
// fetch of MemBytes, each expansion continuation is one Expanded step with
// no traffic, and the budget is enforced before every instruction,
// including mid-expansion.
//
// Telemetry rides the loop for free. Without epoch sampling, stepLimit is
// just maxSteps and the boundary comparison is the budget check the loop
// always made. With sampling on, the loop runs in epochs: stepLimit drops
// to the next epoch boundary, per-slot traffic accumulates in tr (two
// array increments per fetch, one per continuation), and drainEpoch hands
// the counters out between epochs. Every exit goes through endFast, which
// classifies the bail; the partial epoch in flight carries over to the
// next segment or Run and FlushEpoch forces it out. The loop body itself
// never touches a sink — lint-fastpath keeps it that way.
//
// The (status, done, err) return tells Run whether the segment completed
// the program (done: exit, fault, or budget) or bailed with work left
// (fault slot, off-table PC, stale table) for the instrumented loop to
// finish.
func (c *CPU) runFast(fe PredecodedFrontend, pd *Predecode, maxSteps int64) (int32, bool, error) {
	pc := fe.PC()
	base, shift := pd.Base, pd.Shift
	limit := uint32(len(pd.Slots)) << shift
	gen := c.Mem.storeGen

	entrySteps := c.Stats.Steps
	epochStart := entrySteps
	stepLimit := maxSteps
	var tr []SlotTraffic
	if c.samplingOn() {
		tr = c.beginFast(pd)
		// The epoch in flight may already hold steps from earlier segments
		// or Runs; this segment runs out its remainder.
		if end := epochStart + c.epochLen() - c.sinceDrain; end < stepLimit {
			stepLimit = end
		}
	}
	for {
		if c.Stats.Steps >= stepLimit {
			if c.Stats.Steps >= maxSteps {
				c.endFast(BailBudget, entrySteps, epochStart)
				fe.SetRawPC(pc)
				return 0, true, fmt.Errorf("machine: step budget of %d exhausted", maxSteps)
			}
			// Epoch boundary: hand the telemetry out and keep running.
			c.drainEpoch(pd, tr, c.sinceDrain+c.Stats.Steps-epochStart, true)
			c.sinceDrain = 0
			epochStart = c.Stats.Steps
			if stepLimit = epochStart + c.epochLen(); stepLimit > maxSteps {
				stepLimit = maxSteps
			}
		}
		off := pc - base
		idx := off >> shift
		if off >= limit || idx<<shift != off || c.Mem.storeGen != gen {
			// Off-table or misaligned PC (e.g. sequential flow off the
			// end), or text modified since the table was built: let the
			// slow path produce the architectural outcome.
			reason := BailOffTable
			if c.Mem.storeGen != gen {
				reason = BailSelfModifiedText
			}
			c.endFast(reason, entrySteps, epochStart)
			fe.SetRawPC(pc)
			return 0, false, nil
		}
		s := &pd.Slots[idx]
		if s.Fault {
			c.endFast(BailFaultSlot, entrySteps, epochStart)
			fe.SetRawPC(pc)
			return 0, false, nil
		}
		c.Stats.Steps++
		c.Stats.MemFetches++
		c.Stats.FetchedBytes += int64(s.MemBytes)
		if tr != nil {
			t := &tr[idx]
			if t.Steps == 0 {
				c.note(idx)
			}
			t.Fetches++
			t.Steps++
		}
		c.branch = takenBranch{}
		n := int(s.EntryLen)
		// The word argument feeds only OpInvalid's error text, and
		// OpInvalid slots were marked Fault at build time.
		if err := c.exec(&s.Inst, 0, pc, s.Next, n == 1); err != nil {
			c.endFast(BailExecFault, entrySteps, epochStart)
			return 0, true, err
		}
		if n > 1 && !c.exited && c.branch.Kind == BranchNone {
			e := &pd.Entries[s.Rank]
			for k := 1; k < n; k++ {
				if c.Stats.Steps >= maxSteps {
					c.endFast(BailBudget, entrySteps, epochStart)
					fe.SetRawPC(s.Next)
					return 0, true, fmt.Errorf("machine: step budget of %d exhausted", maxSteps)
				}
				c.Stats.Steps++
				c.Stats.Expanded++
				if tr != nil {
					tr[idx].Steps++
				}
				c.branch = takenBranch{}
				if err := c.exec(&e.Insts[k], e.Words[k], pc, s.Next, k == n-1); err != nil {
					c.endFast(BailExecFault, entrySteps, epochStart)
					return 0, true, err
				}
				if c.exited || c.branch.Kind != BranchNone {
					break
				}
			}
		}
		if c.branch.Kind != BranchNone {
			// branchTo already validated and redirected the frontend.
			pc = c.branch.Target
		} else {
			pc = s.Next
		}
		if c.exited {
			c.endFast(BailExit, entrySteps, epochStart)
			fe.SetRawPC(pc)
			return c.status, true, nil
		}
	}
}

package machine

import (
	"bytes"
	"testing"

	"repro/internal/ppc"
	"repro/internal/program"
)

func TestResetReuse(t *testing.T) {
	// A program that reads, increments, and writes back a data-section
	// counter, then prints it: only if Reset restores memory, registers,
	// output, and stats does every rerun behave exactly like the first.
	b := program.NewBuilder("reset")
	base := b.ReserveData(16, 4)
	f := b.Func("main")
	addr := uint32(program.DefaultDataBase + base)
	f.Emit(ppc.Lis(9, int32(int16(addr>>16))))
	f.Emit(ppc.Ori(9, 9, int32(addr&0xFFFF)))
	f.Emit(ppc.Lwz(3, 0, 9)) // 0 on a pristine run
	f.Emit(ppc.Addi(3, 3, 1))
	f.Emit(ppc.Stw(3, 0, 9)) // left at 1; Reset must restore 0
	f.Emit(ppc.Li(0, SysPutint))
	f.Emit(ppc.Sc())
	emitExit(f)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := cpu.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != 1 {
		t.Fatalf("first run exited %d, want 1", st1)
	}
	out1 := append([]byte(nil), cpu.Output()...)
	stats1 := cpu.Stats
	for i := 0; i < 3; i++ {
		if err := cpu.Reset(); err != nil {
			t.Fatalf("Reset %d: %v", i, err)
		}
		st, err := cpu.Run(1000)
		if err != nil {
			t.Fatalf("rerun %d: %v", i, err)
		}
		if st != st1 {
			t.Fatalf("rerun %d exited %d, want %d (memory not restored)", i, st, st1)
		}
		if !bytes.Equal(cpu.Output(), out1) {
			t.Fatalf("rerun %d output %q, want %q", i, cpu.Output(), out1)
		}
		if cpu.Stats != stats1 {
			t.Fatalf("rerun %d stats %+v, want %+v", i, cpu.Stats, stats1)
		}
	}
}

func TestResetWithoutSnapshot(t *testing.T) {
	mem := NewMemory()
	if err := mem.Map("text", 0x1000, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	cpu := New(mem, NewNormalFrontend(mem, 0x1000, 4))
	if err := cpu.Reset(); err == nil {
		t.Fatal("Reset without a prior SnapshotReset accepted")
	}
}

// parityProgram is a small loop with calls, both branch polarities, and
// output — enough control flow to make a fast/slow divergence visible.
func parityProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("parity")
	main := b.Func("main")
	main.Emit(ppc.Li(3, 0))
	main.Emit(ppc.Li(4, 20))
	main.Emit(ppc.Mtctr(4))
	main.Label("loop")
	main.Call("step")
	main.Branch(ppc.Bdnz(0), "loop")
	main.Emit(ppc.Li(0, SysPutint))
	main.Emit(ppc.Sc())
	emitExit(main)
	step := b.Func("step")
	step.Emit(ppc.Addi(3, 3, 3))
	step.Emit(ppc.Blr())
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFastSlowParity(t *testing.T) {
	// The same program on two identical machines, one bare (eligible for
	// the fused fast loop) and one with a hook (forced onto the
	// instrumented Step path): outputs, status, and every counter must
	// agree, and the hook must fire once per step, proving the slow path
	// actually ran.
	p := parityProgram(t)
	fast, err := NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	var hooked int64
	slow.TraceStep = func(StepInfo) { hooked++ }
	fs, ferr := fast.Run(10000)
	ss, serr := slow.Run(10000)
	if ferr != nil || serr != nil {
		t.Fatalf("run errors: fast %v, slow %v", ferr, serr)
	}
	if fs != ss {
		t.Fatalf("status: fast %d, slow %d", fs, ss)
	}
	if !bytes.Equal(fast.Output(), slow.Output()) {
		t.Fatalf("output: fast %q, slow %q", fast.Output(), slow.Output())
	}
	if fast.Stats != slow.Stats {
		t.Fatalf("stats: fast %+v, slow %+v", fast.Stats, slow.Stats)
	}
	if hooked != slow.Stats.Steps || hooked == 0 {
		t.Fatalf("TraceStep fired %d times for %d steps", hooked, slow.Stats.Steps)
	}
}

func TestFastSlowErrorParity(t *testing.T) {
	// Faults and budget exhaustion must read identically from both paths:
	// the fast loop bails to the slow path instead of growing its own
	// error strings.
	cases := []struct {
		name string
		emit func(f *program.FuncBuilder)
	}{
		{"illegal", func(f *program.FuncBuilder) {
			f.Emit(ppc.Li(3, 1))
			f.Emit(0x00000000)
		}},
		{"budget", func(f *program.FuncBuilder) {
			f.Label("spin")
			f.Branch(ppc.B(0), "spin")
		}},
		{"run-off-end", func(f *program.FuncBuilder) {
			f.Emit(ppc.Li(3, 1)) // no exit: sequential flow leaves text
		}},
	}
	for _, tc := range cases {
		b := program.NewBuilder(tc.name)
		tc.emit(b.Func("main"))
		p, err := b.Link()
		if err != nil {
			t.Fatalf("%s: link: %v", tc.name, err)
		}
		fast, err := NewForProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := NewForProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		slow.TraceExec = func(uint32, uint32) {}
		_, ferr := fast.Run(100)
		_, serr := slow.Run(100)
		if ferr == nil || serr == nil {
			t.Fatalf("%s: expected errors, got fast %v, slow %v", tc.name, ferr, serr)
		}
		if ferr.Error() != serr.Error() {
			t.Fatalf("%s: fast error %q, slow error %q", tc.name, ferr, serr)
		}
	}
}

func TestPredecodeTextFaultSlots(t *testing.T) {
	mem := NewMemory()
	words := []uint32{ppc.Li(3, 1), 0x00000000, ppc.Li(3, 2)}
	if err := mem.Map("text", 0x1000, WordsToBytes(words)); err != nil {
		t.Fatal(err)
	}
	pd := PredecodeText(mem, 0x1000, 0x1000+uint32(4*len(words)))
	if len(pd.Slots) != len(words) {
		t.Fatalf("%d slots for %d words", len(pd.Slots), len(words))
	}
	s := pd.Slots[0]
	if s.Fault || s.Next != 0x1004 || s.Rank != -1 || s.EntryLen != 1 || s.MemBytes != 4 {
		t.Fatalf("slot 0: %+v", s)
	}
	if s.Inst != ppc.Decode(words[0]) {
		t.Fatalf("slot 0 decodes %+v", s.Inst)
	}
	if !pd.Slots[1].Fault {
		t.Fatal("illegal word not marked Fault")
	}
	if pd.Slots[2].Fault {
		t.Fatal("valid word after illegal one marked Fault")
	}
}

func TestPredecodeRebuildAfterStore(t *testing.T) {
	mem := NewMemory()
	if err := mem.Map("text", 0x1000, WordsToBytes([]uint32{ppc.Li(3, 1)})); err != nil {
		t.Fatal(err)
	}
	fe := NewNormalFrontend(mem, 0x1000, 1)
	pd := fe.Predecode()
	if pd == nil || pd.Slots[0].Inst.Imm != 1 {
		t.Fatalf("initial table: %+v", pd)
	}
	if fe.Predecode() != pd {
		t.Fatal("unchanged text rebuilt the table")
	}
	if err := mem.Store32(0x1000, ppc.Li(3, 2)); err != nil {
		t.Fatal(err)
	}
	pd2 := fe.Predecode()
	if pd2 == pd {
		t.Fatal("table not rebuilt after a store into text")
	}
	if pd2.Slots[0].Inst.Imm != 2 {
		t.Fatalf("rebuilt table decodes Imm %d, want 2", pd2.Slots[0].Inst.Imm)
	}
}

func TestFastPathSelfModifyingText(t *testing.T) {
	// The guest overwrites an instruction it has not executed yet. The
	// fused loop runs from a table built before the store; the per-step
	// store-generation check must notice and fall back to the slow path,
	// which fetches the patched word from memory.
	b := program.NewBuilder("selfmod")
	f := b.Func("main")
	const patchIdx = 5
	patchAddr := uint32(program.DefaultTextBase + 4*patchIdx)
	newWord := ppc.Li(3, 42)
	f.Emit(ppc.Lis(9, int32(int16(patchAddr>>16))))
	f.Emit(ppc.Ori(9, 9, int32(patchAddr&0xFFFF)))
	f.Emit(ppc.Lis(10, int32(int16(newWord>>16))))
	f.Emit(ppc.Ori(10, 10, int32(newWord&0xFFFF)))
	f.Emit(ppc.Stw(10, 0, 9))
	f.Emit(ppc.Li(3, 1)) // patchIdx: patched to li r3,42 before it executes
	emitExit(f)
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	if p.EntryAddr() != program.DefaultTextBase {
		t.Fatalf("entry %#x, patch offsets assume %#x", p.EntryAddr(), uint32(program.DefaultTextBase))
	}
	for _, hook := range []bool{false, true} {
		cpu, err := NewForProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		if hook {
			cpu.TraceExec = func(uint32, uint32) {}
		}
		status, err := cpu.Run(100)
		if err != nil {
			t.Fatalf("hook=%v: %v", hook, err)
		}
		if status != 42 {
			t.Fatalf("hook=%v: exited %d, want 42 (stale predecode table executed)", hook, status)
		}
	}
}

package objfile

import (
	"bytes"
	"testing"

	"repro/internal/codec"
	"repro/internal/machine"
	"repro/internal/synth"
)

// FuzzCodecRoundTrip drives every registered codec over fuzzer-shaped
// synthetic programs: compress, verify, serialize through the versioned
// frame, reopen from nothing but the method byte, and — for executable
// codecs — differentially execute the reopened image against the native
// program. Any divergence (payload drift across a round trip, a wrong
// method byte, differing output or exit status) fails.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(800))
	f.Add(int64(42), uint16(2500))
	f.Add(int64(1997), uint16(1400))
	f.Fuzz(func(t *testing.T, seed int64, size uint16) {
		prof, err := synth.ProfileFor("compress")
		if err != nil {
			t.Fatal(err)
		}
		prof.Seed = seed
		prof.TargetWords = 600 + int(size)%2400
		p, err := synth.GenerateProfile(prof)
		if err != nil {
			// Not every profile mutation yields a linkable program; that is
			// the generator's business, not the codecs'.
			t.Skip(err)
		}

		const maxSteps = 50_000_000
		native, err := machine.NewForProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		nativeStatus, err := native.Run(maxSteps)
		if err != nil {
			t.Skipf("native run: %v", err)
		}
		nativeOut := native.Output()

		for _, cd := range codec.Codecs() {
			img, err := cd.Compress(p, codec.Options{})
			if err != nil {
				t.Fatalf("%s: compress: %v", cd.Name(), err)
			}
			if err := cd.Verify(p, img); err != nil {
				t.Fatalf("%s: verify: %v", cd.Name(), err)
			}

			var frame bytes.Buffer
			if err := WriteImage(&frame, img); err != nil {
				t.Fatalf("%s: write frame: %v", cd.Name(), err)
			}
			got, err := OpenImage(bytes.NewReader(frame.Bytes()))
			if err != nil {
				t.Fatalf("%s: reopen: %v", cd.Name(), err)
			}
			if got.Method() != cd.Method() {
				t.Fatalf("%s: reopened method %#x, want %#x", cd.Name(), got.Method(), cd.Method())
			}
			var before, after bytes.Buffer
			if err := cd.WriteImage(&before, img); err != nil {
				t.Fatal(err)
			}
			if err := cd.WriteImage(&after, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(before.Bytes(), after.Bytes()) {
				t.Fatalf("%s: payload drifted across a serialize/reopen cycle", cd.Name())
			}

			ex, ok := got.(codec.Executable)
			if !ok {
				continue // size comparators have nothing to execute
			}
			cpu, err := ex.NewMachine()
			if err != nil {
				t.Fatalf("%s: new machine: %v", cd.Name(), err)
			}
			status, err := cpu.Run(maxSteps)
			if err != nil {
				t.Fatalf("%s: compressed run: %v", cd.Name(), err)
			}
			if status != nativeStatus {
				t.Fatalf("%s: exit status %d, native %d", cd.Name(), status, nativeStatus)
			}
			if !bytes.Equal(cpu.Output(), nativeOut) {
				t.Fatalf("%s: output diverged from native (%d vs %d bytes)",
					cd.Name(), len(cpu.Output()), len(nativeOut))
			}
		}
	})
}

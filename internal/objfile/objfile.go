// Package objfile serializes linked programs (PPX1) and compressed images
// (PPCZ) to byte streams, giving the command-line tools a stable on-disk
// interchange format. Everything is big-endian via encoding/binary.
package objfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/program"
)

// Magic numbers.
var (
	magicProgram = [4]byte{'P', 'P', 'X', '1'}
	magicImage   = [4]byte{'P', 'P', 'C', 'Z'}
	magicDict    = [4]byte{'P', 'P', 'D', 'X'}
)

// limits guard against garbage files allocating absurd buffers.
const (
	maxStr   = 1 << 12
	maxCount = 1 << 26
)

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u8(v uint8)   { w.bin(v) }
func (w *writer) u16(v uint16) { w.bin(v) }
func (w *writer) u32(v uint32) { w.bin(v) }
func (w *writer) bin(v interface{}) {
	if w.err == nil {
		w.err = binary.Write(w.w, binary.BigEndian, v)
	}
}
func (w *writer) bytes(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}
func (w *writer) str(s string) {
	if len(s) > maxStr {
		w.err = fmt.Errorf("objfile: string too long (%d)", len(s))
		return
	}
	w.u16(uint16(len(s)))
	w.bytes([]byte(s))
}
func (w *writer) words(ws []uint32) {
	w.u32(uint32(len(ws)))
	for _, x := range ws {
		w.u32(x)
	}
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u8() (v uint8)   { r.bin(&v); return }
func (r *reader) u16() (v uint16) { r.bin(&v); return }
func (r *reader) u32() (v uint32) { r.bin(&v); return }
func (r *reader) bin(v interface{}) {
	if r.err == nil {
		r.err = binary.Read(r.r, binary.BigEndian, v)
	}
}
func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > maxCount {
		r.err = fmt.Errorf("objfile: implausible length %d", n)
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return nil
	}
	return b
}
func (r *reader) str() string {
	n := int(r.u16())
	return string(r.bytes(n))
}
func (r *reader) words() []uint32 {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n > maxCount {
		r.err = fmt.Errorf("objfile: implausible word count %d", n)
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.u32()
	}
	return out
}

// WriteProgram serializes a linked program.
func WriteProgram(dst io.Writer, p *program.Program) error {
	w := &writer{w: bufio.NewWriter(dst)}
	w.bytes(magicProgram[:])
	w.str(p.Name)
	w.u32(p.TextBase)
	w.u32(p.DataBase)
	w.u32(uint32(p.Entry))
	w.words(p.Text)
	w.u32(uint32(len(p.Data)))
	w.bytes(p.Data)
	w.u32(uint32(len(p.Symbols)))
	for _, s := range p.Symbols {
		w.str(s.Name)
		w.u32(uint32(s.Word))
	}
	w.u32(uint32(len(p.JumpTableSlots)))
	for _, s := range p.JumpTableSlots {
		w.u32(uint32(s))
	}
	writeRanges(w, p.Prologue)
	writeRanges(w, p.Epilogue)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func writeRanges(w *writer, rs []program.Range) {
	w.u32(uint32(len(rs)))
	for _, r := range rs {
		w.u32(uint32(r.Start))
		w.u32(uint32(r.End))
	}
}

// ReadProgram deserializes and validates a program.
func ReadProgram(src io.Reader) (*program.Program, error) {
	r := &reader{r: bufio.NewReader(src)}
	magic := r.bytes(4)
	if r.err != nil {
		return nil, r.err
	}
	if string(magic) != string(magicProgram[:]) {
		return nil, fmt.Errorf("objfile: bad program magic %q", magic)
	}
	p := &program.Program{}
	p.Name = r.str()
	p.TextBase = r.u32()
	p.DataBase = r.u32()
	p.Entry = int(r.u32())
	p.Text = r.words()
	p.Data = r.bytes(int(r.u32()))
	nsym := int(r.u32())
	for i := 0; i < nsym && r.err == nil; i++ {
		name := r.str()
		p.Symbols = append(p.Symbols, program.Symbol{Name: name, Word: int(r.u32())})
	}
	njt := int(r.u32())
	for i := 0; i < njt && r.err == nil; i++ {
		p.JumpTableSlots = append(p.JumpTableSlots, int(r.u32()))
	}
	p.Prologue = readRanges(r)
	p.Epilogue = readRanges(r)
	if r.err != nil {
		return nil, r.err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("objfile: %w", err)
	}
	return p, nil
}

func readRanges(r *reader) []program.Range {
	n := int(r.u32())
	var out []program.Range
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, program.Range{Start: int(r.u32()), End: int(r.u32())})
	}
	return out
}

// WriteDictionary serializes a standalone (shared/ROM) dictionary.
func WriteDictionary(dst io.Writer, entries []dictionary.Entry) error {
	w := &writer{w: bufio.NewWriter(dst)}
	w.bytes(magicDict[:])
	w.u32(uint32(len(entries)))
	for _, e := range entries {
		if len(e.Words) > 255 {
			return fmt.Errorf("objfile: entry of %d words", len(e.Words))
		}
		w.u8(uint8(len(e.Words)))
		for _, x := range e.Words {
			w.u32(x)
		}
		w.u32(uint32(e.Uses))
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// ReadDictionary deserializes a standalone dictionary.
func ReadDictionary(src io.Reader) ([]dictionary.Entry, error) {
	r := &reader{r: bufio.NewReader(src)}
	magic := r.bytes(4)
	if r.err != nil {
		return nil, r.err
	}
	if string(magic) != string(magicDict[:]) {
		return nil, fmt.Errorf("objfile: bad dictionary magic %q", magic)
	}
	n := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	if n > maxCount {
		return nil, fmt.Errorf("objfile: implausible entry count %d", n)
	}
	out := make([]dictionary.Entry, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		k := int(r.u8())
		words := make([]uint32, k)
		for j := range words {
			words[j] = r.u32()
		}
		uses := int(r.u32())
		out = append(out, dictionary.Entry{Words: words, Uses: uses})
	}
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

// WriteImage serializes a compressed image, including the verification
// marks (sideband metadata).
func WriteImage(dst io.Writer, img *core.Image) error {
	w := &writer{w: bufio.NewWriter(dst)}
	w.bytes(magicImage[:])
	w.str(img.Name)
	w.u8(uint8(img.Scheme))
	w.u32(uint32(img.Units))
	w.u32(uint32(len(img.Stream)))
	w.bytes(img.Stream)
	w.u32(img.Base)
	w.u32(img.EntryUnit)
	w.u32(uint32(len(img.Entries)))
	for _, e := range img.Entries {
		w.u8(uint8(len(e.Words)))
		for _, x := range e.Words {
			w.u32(x)
		}
		w.u32(uint32(e.Uses))
	}
	w.u32(img.DataBase)
	w.u32(uint32(len(img.Data)))
	w.bytes(img.Data)
	w.u32(uint32(len(img.JumpTableSlots)))
	for _, s := range img.JumpTableSlots {
		w.u32(uint32(s))
	}
	w.u32(uint32(len(img.Symbols)))
	for _, s := range img.Symbols {
		w.str(s.Name)
		w.u32(uint32(s.Word))
	}
	w.u32(uint32(len(img.Marks)))
	for _, m := range img.Marks {
		w.u32(uint32(m.Unit))
		w.u32(uint32(m.Orig))
		w.u8(uint8(m.Kind))
	}
	w.u32(uint32(img.OriginalBytes))
	w.u32(uint32(img.StreamBytes))
	w.u32(uint32(img.DictionaryBytes))
	for _, v := range []int{
		img.Stats.Items, img.Stats.CodewordItems, img.Stats.RawItems,
		img.Stats.StubBranches, img.Stats.CoveredInsns,
		img.Stats.CodewordBits, img.Stats.EscapeBits, img.Stats.RawBits,
	} {
		w.u32(uint32(v))
	}
	w.u32(img.TextBase)
	w.u32(uint32(len(img.OrigSymbols)))
	for _, s := range img.OrigSymbols {
		w.str(s.Name)
		w.u32(uint32(s.Word))
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// ReadImage deserializes a compressed image.
func ReadImage(src io.Reader) (*core.Image, error) {
	r := &reader{r: bufio.NewReader(src)}
	magic := r.bytes(4)
	if r.err != nil {
		return nil, r.err
	}
	if string(magic) != string(magicImage[:]) {
		return nil, fmt.Errorf("objfile: bad image magic %q", magic)
	}
	img := &core.Image{}
	img.Name = r.str()
	img.Scheme = codeword.Scheme(r.u8())
	img.Units = int(r.u32())
	img.Stream = r.bytes(int(r.u32()))
	img.Base = r.u32()
	img.EntryUnit = r.u32()
	nent := int(r.u32())
	if nent > maxCount {
		return nil, fmt.Errorf("objfile: implausible entry count %d", nent)
	}
	for i := 0; i < nent && r.err == nil; i++ {
		k := int(r.u8())
		words := make([]uint32, k)
		for j := range words {
			words[j] = r.u32()
		}
		uses := int(r.u32())
		img.Entries = append(img.Entries, dictionary.Entry{Words: words, Uses: uses})
	}
	img.DataBase = r.u32()
	img.Data = r.bytes(int(r.u32()))
	njt := int(r.u32())
	for i := 0; i < njt && r.err == nil; i++ {
		img.JumpTableSlots = append(img.JumpTableSlots, int(r.u32()))
	}
	nsym := int(r.u32())
	for i := 0; i < nsym && r.err == nil; i++ {
		name := r.str()
		img.Symbols = append(img.Symbols, program.Symbol{Name: name, Word: int(r.u32())})
	}
	nmarks := int(r.u32())
	if nmarks > maxCount {
		return nil, fmt.Errorf("objfile: implausible mark count %d", nmarks)
	}
	for i := 0; i < nmarks && r.err == nil; i++ {
		m := core.Mark{Unit: int(r.u32()), Orig: int(r.u32()), Kind: core.MarkKind(r.u8())}
		img.Marks = append(img.Marks, m)
	}
	img.OriginalBytes = int(r.u32())
	img.StreamBytes = int(r.u32())
	img.DictionaryBytes = int(r.u32())
	for _, dst := range []*int{
		&img.Stats.Items, &img.Stats.CodewordItems, &img.Stats.RawItems,
		&img.Stats.StubBranches, &img.Stats.CoveredInsns,
		&img.Stats.CodewordBits, &img.Stats.EscapeBits, &img.Stats.RawBits,
	} {
		*dst = int(r.u32())
	}
	img.TextBase = r.u32()
	nosym := int(r.u32())
	for i := 0; i < nosym && r.err == nil; i++ {
		name := r.str()
		img.OrigSymbols = append(img.OrigSymbols, program.Symbol{Name: name, Word: int(r.u32())})
	}
	if r.err != nil {
		return nil, r.err
	}
	return img, nil
}

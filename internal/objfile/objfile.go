// Package objfile serializes linked programs (PPX1) and compressed images
// (PPCZ) to byte streams, giving the command-line tools a stable on-disk
// interchange format. Everything is big-endian via the wire primitives.
//
// The PPCZ container is versioned and self-describing. Version 2 frames
// are
//
//	"PPCZ" 0xFF version=2 method payload...
//
// where method is the codec registry's stable frame byte and the payload
// is that codec's image serialization, so any tool can open any image
// without being told its encoding. Version 1 files (dictionary images
// only) carried the body directly after the magic with the scheme byte
// inside the body; they are detected by their first post-magic byte — a
// name-length high byte, always below the 0xFF sentinel — and still load.
package objfile

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/codec"
	_ "repro/internal/codecs" // populate the registry for OpenImage
	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/program"
	"repro/internal/wire"
)

// Magic numbers.
var (
	magicProgram = [4]byte{'P', 'P', 'X', '1'}
	magicImage   = [4]byte{'P', 'P', 'C', 'Z'}
	magicDict    = [4]byte{'P', 'P', 'D', 'X'}
)

// PPCZ container versioning.
const (
	// ImageVersion is the current container version.
	ImageVersion = 2

	// frameSentinel introduces a versioned frame header. Version-1 files
	// cannot produce it there: the byte after the magic is the high byte of
	// a uint16 name length bounded by wire.MaxStr (1<<12).
	frameSentinel = 0xFF
)

// WriteProgram serializes a linked program.
func WriteProgram(dst io.Writer, p *program.Program) error {
	bw := bufio.NewWriter(dst)
	w := wire.NewWriter(bw)
	w.Bytes(magicProgram[:])
	w.Str(p.Name)
	w.U32(p.TextBase)
	w.U32(p.DataBase)
	w.U32(uint32(p.Entry))
	w.Words(p.Text)
	w.Blob(p.Data)
	w.U32(uint32(len(p.Symbols)))
	for _, s := range p.Symbols {
		w.Str(s.Name)
		w.U32(uint32(s.Word))
	}
	w.U32(uint32(len(p.JumpTableSlots)))
	for _, s := range p.JumpTableSlots {
		w.U32(uint32(s))
	}
	writeRanges(w, p.Prologue)
	writeRanges(w, p.Epilogue)
	if err := w.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

func writeRanges(w *wire.Writer, rs []program.Range) {
	w.U32(uint32(len(rs)))
	for _, r := range rs {
		w.U32(uint32(r.Start))
		w.U32(uint32(r.End))
	}
}

// ReadProgram deserializes and validates a program.
func ReadProgram(src io.Reader) (*program.Program, error) {
	r := wire.NewReader(bufio.NewReader(src))
	magic := r.Bytes(4)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if string(magic) != string(magicProgram[:]) {
		return nil, fmt.Errorf("objfile: bad program magic %q", magic)
	}
	p := &program.Program{}
	p.Name = r.Str()
	p.TextBase = r.U32()
	p.DataBase = r.U32()
	p.Entry = int(r.U32())
	p.Text = r.Words()
	p.Data = r.Blob()
	nsym := r.Count(int(r.U32()), "symbol")
	for i := 0; i < nsym && r.Err() == nil; i++ {
		name := r.Str()
		p.Symbols = append(p.Symbols, program.Symbol{Name: name, Word: int(r.U32())})
	}
	njt := r.Count(int(r.U32()), "jump-table slot")
	for i := 0; i < njt && r.Err() == nil; i++ {
		p.JumpTableSlots = append(p.JumpTableSlots, int(r.U32()))
	}
	p.Prologue = readRanges(r)
	p.Epilogue = readRanges(r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("objfile: %w", err)
	}
	return p, nil
}

func readRanges(r *wire.Reader) []program.Range {
	n := r.Count(int(r.U32()), "range")
	var out []program.Range
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, program.Range{Start: int(r.U32()), End: int(r.U32())})
	}
	return out
}

// WriteDictionary serializes a standalone (shared/ROM) dictionary.
func WriteDictionary(dst io.Writer, entries []dictionary.Entry) error {
	bw := bufio.NewWriter(dst)
	w := wire.NewWriter(bw)
	w.Bytes(magicDict[:])
	w.U32(uint32(len(entries)))
	for _, e := range entries {
		if len(e.Words) > 255 {
			return fmt.Errorf("objfile: entry of %d words", len(e.Words))
		}
		w.U8(uint8(len(e.Words)))
		for _, x := range e.Words {
			w.U32(x)
		}
		w.U32(uint32(e.Uses))
	}
	if err := w.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadDictionary deserializes a standalone dictionary.
func ReadDictionary(src io.Reader) ([]dictionary.Entry, error) {
	r := wire.NewReader(bufio.NewReader(src))
	magic := r.Bytes(4)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if string(magic) != string(magicDict[:]) {
		return nil, fmt.Errorf("objfile: bad dictionary magic %q", magic)
	}
	n := r.Count(int(r.U32()), "entry")
	if err := r.Err(); err != nil {
		return nil, err
	}
	out := make([]dictionary.Entry, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := int(r.U8())
		words := make([]uint32, k)
		for j := range words {
			words[j] = r.U32()
		}
		uses := int(r.U32())
		out = append(out, dictionary.Entry{Words: words, Uses: uses})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteImage serializes a compressed image of any registered codec as a
// current-version self-describing frame: the method byte in the header is
// all a reader needs to reconstruct the image.
func WriteImage(dst io.Writer, img codec.Image) error {
	c, err := codec.ByMethod(img.Method())
	if err != nil {
		return fmt.Errorf("objfile: %w", err)
	}
	bw := bufio.NewWriter(dst)
	w := wire.NewWriter(bw)
	w.Bytes(magicImage[:])
	w.U8(frameSentinel)
	w.U8(ImageVersion)
	w.U8(uint8(img.Method()))
	if err := w.Err(); err != nil {
		return err
	}
	if err := c.WriteImage(bw, img); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteImageV1 serializes a dictionary image as a version-1 frame (no
// header; the scheme byte lives in the body). Kept for interoperability
// with pre-versioning readers and as the writer side of the backward-
// compatibility tests; new files should use WriteImage.
func WriteImageV1(dst io.Writer, img *core.Image) error {
	bw := bufio.NewWriter(dst)
	if _, err := bw.Write(magicImage[:]); err != nil {
		return err
	}
	if err := core.WriteImagePayload(bw, img); err != nil {
		return err
	}
	return bw.Flush()
}

// OpenImage deserializes a compressed image of any version: the codec is
// inferred from the frame's method byte (version 2), or defaulted to the
// dictionary codec recorded in the old in-body scheme byte (version 1).
// Callers dispatch on the concrete type or on the codec.Executable /
// codec.Auditable facets.
func OpenImage(src io.Reader) (codec.Image, error) {
	br := bufio.NewReader(src)
	r := wire.NewReader(br)
	magic := r.Bytes(4)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if string(magic) != string(magicImage[:]) {
		return nil, fmt.Errorf("objfile: bad image magic %q", magic)
	}
	next, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("objfile: truncated image frame: %w", err)
	}
	if next[0] != frameSentinel {
		// Version 1: the body follows the magic directly; its scheme byte
		// selects the dictionary codec.
		return core.ReadImagePayload(br)
	}
	br.Discard(1)
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("objfile: truncated image frame: %w", err)
	}
	if version != ImageVersion {
		return nil, fmt.Errorf("objfile: unsupported image version %d (have %d)", version, ImageVersion)
	}
	method, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("objfile: truncated image frame: %w", err)
	}
	c, err := codec.ByMethod(codec.Method(method))
	if err != nil {
		return nil, fmt.Errorf("objfile: %w", err)
	}
	return c.Open(br)
}

// ReadImage deserializes a dictionary-scheme compressed image of either
// container version. It is the typed convenience over OpenImage for
// callers that specifically need the paper's dictionary method.
func ReadImage(src io.Reader) (*core.Image, error) {
	img, err := OpenImage(src)
	if err != nil {
		return nil, err
	}
	di, ok := img.(*core.Image)
	if !ok {
		return nil, fmt.Errorf("objfile: image is %T, not a dictionary image", img)
	}
	return di, nil
}

package objfile

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/synth"
)

func TestProgramRoundTrip(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Entry != p.Entry || q.TextBase != p.TextBase || q.DataBase != p.DataBase {
		t.Fatal("header fields differ")
	}
	if len(q.Text) != len(p.Text) {
		t.Fatalf("text %d vs %d", len(q.Text), len(p.Text))
	}
	for i := range q.Text {
		if q.Text[i] != p.Text[i] {
			t.Fatalf("text differs at %d", i)
		}
	}
	if !bytes.Equal(q.Data, p.Data) {
		t.Fatal("data differs")
	}
	if len(q.Symbols) != len(p.Symbols) || len(q.JumpTableSlots) != len(p.JumpTableSlots) {
		t.Fatal("tables differ")
	}
	if len(q.Prologue) != len(p.Prologue) || len(q.Epilogue) != len(p.Epilogue) {
		t.Fatal("ranges differ")
	}
}

func TestImageRoundTrip(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	img, err := core.Compress(p.Clone(), core.Options{Scheme: codeword.Nibble})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteImage(&buf, img); err != nil {
		t.Fatal(err)
	}
	q, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != img.Name || q.Scheme != img.Scheme || q.Units != img.Units ||
		q.Base != img.Base || q.EntryUnit != img.EntryUnit {
		t.Fatal("header fields differ")
	}
	if !bytes.Equal(q.Stream, img.Stream) || !bytes.Equal(q.Data, img.Data) {
		t.Fatal("payload differs")
	}
	if len(q.Entries) != len(img.Entries) || len(q.Marks) != len(img.Marks) {
		t.Fatal("tables differ")
	}
	if q.Stats != img.Stats {
		t.Fatalf("stats differ: %+v vs %+v", q.Stats, img.Stats)
	}
	if q.TextBase != img.TextBase || !reflect.DeepEqual(q.OrigSymbols, img.OrigSymbols) {
		t.Fatal("symbolization sideband differs")
	}
	// The round-tripped image must remain symbolizable: the guest profiler
	// depends on marks, text base and original symbols all surviving disk.
	if _, err := q.GuestSymTab(); err != nil {
		t.Fatalf("GuestSymTab after round trip: %v", err)
	}
	// The deserialized image must still verify against the original and
	// still execute equivalently.
	if err := core.Verify(p, q); err != nil {
		t.Fatalf("verify after round trip: %v", err)
	}
	if _, _, err := core.RunBoth(p, q, 100_000_000); err != nil {
		t.Fatalf("execution after round trip: %v", err)
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	q, err := synth.Generate("li")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := core.BuildSharedDictionary(
		[]*program.Program{p, q}, core.Options{Scheme: codeword.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDictionary(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDictionary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("%d entries, want %d", len(got), len(entries))
	}
	for i := range got {
		if got[i].Uses != entries[i].Uses || len(got[i].Words) != len(entries[i].Words) {
			t.Fatalf("entry %d differs", i)
		}
		for j := range got[i].Words {
			if got[i].Words[j] != entries[i].Words[j] {
				t.Fatalf("entry %d word %d differs", i, j)
			}
		}
	}
	// The reloaded dictionary still compresses and verifies.
	img, err := core.CompressFixed(p.Clone(), got, core.Options{Scheme: codeword.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(p, img); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDictionary(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Fatal("bad dictionary magic accepted")
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := ReadProgram(bytes.NewReader([]byte("JUNKJUNKJUNK"))); err == nil {
		t.Fatal("bad program magic accepted")
	}
	if _, err := ReadImage(bytes.NewReader([]byte("JUNKJUNKJUNK"))); err == nil {
		t.Fatal("bad image magic accepted")
	}
}

func TestTruncationRejected(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{3, 10, 100, len(full) / 2, len(full) - 1} {
		if _, err := ReadProgram(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestCorruptedProgramFailsValidation(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry point field (offset: magic 4 + str hdr 2 + name +
	// textBase 4 + dataBase 4).
	raw := buf.Bytes()
	off := 4 + 2 + len(p.Name) + 4 + 4
	raw[off] = 0xFF // entry far outside text
	if _, err := ReadProgram(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted entry accepted")
	}
}

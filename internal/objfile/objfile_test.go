package objfile

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/codec"
	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/synth"
)

func TestProgramRoundTrip(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Entry != p.Entry || q.TextBase != p.TextBase || q.DataBase != p.DataBase {
		t.Fatal("header fields differ")
	}
	if len(q.Text) != len(p.Text) {
		t.Fatalf("text %d vs %d", len(q.Text), len(p.Text))
	}
	for i := range q.Text {
		if q.Text[i] != p.Text[i] {
			t.Fatalf("text differs at %d", i)
		}
	}
	if !bytes.Equal(q.Data, p.Data) {
		t.Fatal("data differs")
	}
	if len(q.Symbols) != len(p.Symbols) || len(q.JumpTableSlots) != len(p.JumpTableSlots) {
		t.Fatal("tables differ")
	}
	if len(q.Prologue) != len(p.Prologue) || len(q.Epilogue) != len(p.Epilogue) {
		t.Fatal("ranges differ")
	}
}

func TestImageRoundTrip(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	img, err := core.Compress(p.Clone(), core.Options{Scheme: codeword.Nibble})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteImage(&buf, img); err != nil {
		t.Fatal(err)
	}
	q, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != img.Name || q.Scheme != img.Scheme || q.Units != img.Units ||
		q.Base != img.Base || q.EntryUnit != img.EntryUnit {
		t.Fatal("header fields differ")
	}
	if !bytes.Equal(q.Stream, img.Stream) || !bytes.Equal(q.Data, img.Data) {
		t.Fatal("payload differs")
	}
	if len(q.Entries) != len(img.Entries) || len(q.Marks) != len(img.Marks) {
		t.Fatal("tables differ")
	}
	if q.Stats != img.Stats {
		t.Fatalf("stats differ: %+v vs %+v", q.Stats, img.Stats)
	}
	if q.TextBase != img.TextBase || !reflect.DeepEqual(q.OrigSymbols, img.OrigSymbols) {
		t.Fatal("symbolization sideband differs")
	}
	// The round-tripped image must remain symbolizable: the guest profiler
	// depends on marks, text base and original symbols all surviving disk.
	if _, err := q.GuestSymTab(); err != nil {
		t.Fatalf("GuestSymTab after round trip: %v", err)
	}
	// The deserialized image must still verify against the original and
	// still execute equivalently.
	if err := core.Verify(p, q); err != nil {
		t.Fatalf("verify after round trip: %v", err)
	}
	if _, _, err := core.RunBoth(p, q, 100_000_000); err != nil {
		t.Fatalf("execution after round trip: %v", err)
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	q, err := synth.Generate("li")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := core.BuildSharedDictionary(
		[]*program.Program{p, q}, core.Options{Scheme: codeword.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDictionary(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDictionary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("%d entries, want %d", len(got), len(entries))
	}
	for i := range got {
		if got[i].Uses != entries[i].Uses || len(got[i].Words) != len(entries[i].Words) {
			t.Fatalf("entry %d differs", i)
		}
		for j := range got[i].Words {
			if got[i].Words[j] != entries[i].Words[j] {
				t.Fatalf("entry %d word %d differs", i, j)
			}
		}
	}
	// The reloaded dictionary still compresses and verifies.
	img, err := core.CompressFixed(p.Clone(), got, core.Options{Scheme: codeword.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Verify(p, img); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDictionary(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Fatal("bad dictionary magic accepted")
	}
}

// TestImageV1BackwardCompat: version-1 frames (no header, scheme byte in
// the body) must keep loading through both OpenImage and ReadImage, and
// must decode to exactly the image a current-version frame carries.
func TestImageV1BackwardCompat(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []codeword.Scheme{codeword.Baseline, codeword.OneByte, codeword.Nibble, codeword.Liao} {
		img, err := core.Compress(p.Clone(), core.Options{Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		var v1, v2 bytes.Buffer
		if err := WriteImageV1(&v1, img); err != nil {
			t.Fatal(err)
		}
		if err := WriteImage(&v2, img); err != nil {
			t.Fatal(err)
		}
		// The v2 frame is the v1 file with the 3-byte header spliced in
		// after the magic; the payload bytes are identical.
		if got, want := v2.Len(), v1.Len()+3; got != want {
			t.Fatalf("%v: v2 frame is %d bytes, want v1+header %d", scheme, got, want)
		}
		if !bytes.Equal(v2.Bytes()[7:], v1.Bytes()[4:]) {
			t.Fatalf("%v: v2 payload differs from v1 body", scheme)
		}
		from1, err := OpenImage(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatalf("%v: open v1: %v", scheme, err)
		}
		from2, err := OpenImage(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatalf("%v: open v2: %v", scheme, err)
		}
		if !reflect.DeepEqual(from1, from2) {
			t.Fatalf("%v: v1 and v2 decode to different images", scheme)
		}
		d1, ok := from1.(*core.Image)
		if !ok {
			t.Fatalf("%v: v1 frame decoded to %T", scheme, from1)
		}
		if d1.Scheme != scheme {
			t.Fatalf("%v: v1 frame decoded scheme %v", scheme, d1.Scheme)
		}
		if err := core.Verify(p, d1); err != nil {
			t.Fatalf("%v: verify v1-loaded image: %v", scheme, err)
		}
		// The typed reader accepts both container versions.
		for i, buf := range [][]byte{v1.Bytes(), v2.Bytes()} {
			if _, err := ReadImage(bytes.NewReader(buf)); err != nil {
				t.Fatalf("%v: ReadImage v%d: %v", scheme, i+1, err)
			}
		}
	}
}

// TestNonDictionaryImageRoundTrip: codecs without a codeword scheme
// (CCRP, LZW) round-trip through the versioned frame, reopening to an
// image of the same method with an identical re-serialization.
func TestNonDictionaryImageRoundTrip(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ccrp", "lzw"} {
		cd, err := codec.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		img, err := cd.Compress(p, codec.Options{})
		if err != nil {
			t.Fatalf("%s: compress: %v", name, err)
		}
		var frame bytes.Buffer
		if err := WriteImage(&frame, img); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := OpenImage(bytes.NewReader(frame.Bytes()))
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		if got.Method() != cd.Method() {
			t.Fatalf("%s: reopened method %#x, want %#x", name, got.Method(), cd.Method())
		}
		var before, after bytes.Buffer
		if err := cd.WriteImage(&before, img); err != nil {
			t.Fatal(err)
		}
		if err := cd.WriteImage(&after, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(before.Bytes(), after.Bytes()) {
			t.Fatalf("%s: payload changed across a round trip", name)
		}
		// The typed dictionary reader must refuse them with a clear error.
		if _, err := ReadImage(bytes.NewReader(frame.Bytes())); err == nil {
			t.Fatalf("%s: ReadImage accepted a non-dictionary image", name)
		}
	}
}

// TestImageFrameValidation: corrupt or unsupported frame headers are
// rejected rather than misparsed as payload.
func TestImageFrameValidation(t *testing.T) {
	frame := func(b ...byte) []byte { return append([]byte("PPCZ"), b...) }
	cases := []struct {
		name string
		data []byte
	}{
		{"unsupported version", frame(0xFF, ImageVersion+1, 0x00)},
		{"version zero", frame(0xFF, 0x00, 0x00)},
		{"unknown method", frame(0xFF, ImageVersion, 0xEE)},
		{"truncated after sentinel", frame(0xFF)},
		{"truncated after version", frame(0xFF, ImageVersion)},
	}
	for _, tc := range cases {
		if _, err := OpenImage(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := ReadProgram(bytes.NewReader([]byte("JUNKJUNKJUNK"))); err == nil {
		t.Fatal("bad program magic accepted")
	}
	if _, err := ReadImage(bytes.NewReader([]byte("JUNKJUNKJUNK"))); err == nil {
		t.Fatal("bad image magic accepted")
	}
}

func TestTruncationRejected(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{3, 10, 100, len(full) / 2, len(full) - 1} {
		if _, err := ReadProgram(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestCorruptedProgramFailsValidation(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry point field (offset: magic 4 + str hdr 2 + name +
	// textBase 4 + dataBase 4).
	raw := buf.Bytes()
	off := 4 + 2 + len(p.Name) + 4 + 4
	raw[off] = 0xFF // entry far outside text
	if _, err := ReadProgram(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted entry accepted")
	}
}

// Package obs is the run-bundle layer: one versioned, self-describing
// artifact per run that captures everything the system knows about it —
// identity, the stats snapshot with histograms, the Chrome trace, the
// execution profile, the symbolized guest profile (flat table + folded
// stacks) and the byte-provenance size audit — written atomically as a
// directory with a checksummed manifest, re-loadable with schema
// validation, diffable pairwise (Diff) and renderable as a standalone
// HTML or text report (cmd/ccreport). The Collector is the one sink the
// tools thread a run's telemetry through; the legacy per-artifact flags
// (-trace, -profile, -guestprof, -sizeaudit) are thin shims over it.
package obs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/guestprof"
	"repro/internal/sizeaudit"
	"repro/internal/stats"
)

// SchemaVersion is the bundle format version recorded in every manifest.
// Open rejects any other version: a bundle is a cross-run comparison
// artifact, so silently reading a different layout would poison diffs.
const SchemaVersion = 1

// ManifestFile is the manifest's name inside a bundle directory. Its
// presence is also how Write recognizes (and agrees to replace) an
// existing bundle.
const ManifestFile = "manifest.json"

// Identity names the run a bundle captured. Every field is caller-supplied
// metadata — none of it affects section contents, so two runs of the same
// execution produce byte-identical sections and differ only here.
type Identity struct {
	// Bench is the benchmark or input program id.
	Bench string `json:"bench"`

	// Codec is the canonical codec name ("nibble", "ccrp", …) or "native"
	// for an uncompressed run; Method is its registry frame byte.
	Codec  string `json:"codec,omitempty"`
	Method uint8  `json:"method,omitempty"`

	// OptionsHash fingerprints the normalized compression options
	// (core.Options.Fingerprint), so bundles compressed under different
	// dictionary shapes never silently compare as equals.
	OptionsHash string `json:"options_hash,omitempty"`

	// GoVersion and Timestamp record the producing toolchain and the
	// caller-supplied wall-clock instant. They live in the manifest only,
	// never in a section, keeping section checksums reproducible.
	GoVersion string `json:"go_version,omitempty"`
	Timestamp string `json:"timestamp,omitempty"`
}

// String renders the identity as "bench/codec" for report headers.
func (id Identity) String() string {
	if id.Codec == "" {
		return id.Bench
	}
	return id.Bench + "/" + id.Codec
}

// Section is one manifest entry: a named artifact file and its checksum.
type Section struct {
	Name   string `json:"name"`
	File   string `json:"file"`
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// Manifest is the bundle's index: schema version, run identity, and the
// checksummed section list. It is written last, so a bundle with a
// manifest is complete by construction.
type Manifest struct {
	Schema   int       `json:"schema"`
	Identity Identity  `json:"identity"`
	Sections []Section `json:"sections"`
}

// Bundle is the in-memory form of a run bundle. Every section is
// optional — a size-only codec has no execution sections, a native run
// has no audit — and absent sections simply do not appear in the written
// directory.
type Bundle struct {
	Identity Identity

	// Stats is the run's recorder snapshot (counters, phases, histograms).
	Stats *stats.Snapshot

	// Profile is the execution profile (fast-path coverage and bails, hot
	// dictionary entries, expansion histogram, cache curve). Its Guest and
	// Size fields are always nil inside a bundle — those artifacts are the
	// Guest and Audit sections.
	Profile *core.RunProfile

	// Guest is the symbolized per-function profile; GuestFolded its folded
	// call stacks (flamegraph input).
	Guest       *guestprof.Profile
	GuestFolded string

	// Audit is the byte-provenance size audit; AuditCSV its per-function
	// per-class CSV rendering.
	Audit    *sizeaudit.Audit
	AuditCSV string

	// Trace is the run's Chrome trace-event document, verbatim.
	Trace []byte
}

// section ids and files, in the order Write emits them.
const (
	secStats       = "stats"
	secProfile     = "profile"
	secGuest       = "guest"
	secGuestFolded = "guest_folded"
	secAudit       = "audit"
	secAuditCSV    = "audit_csv"
	secTrace       = "trace"
)

var sectionFiles = map[string]string{
	secStats:       "stats.json",
	secProfile:     "profile.json",
	secGuest:       "guest.json",
	secGuestFolded: "guest.folded",
	secAudit:       "audit.json",
	secAuditCSV:    "audit.csv",
	secTrace:       "trace.json",
}

// marshalJSON renders a section value as indented JSON with a trailing
// newline — the one canonical encoding, so rewriting a reopened bundle
// reproduces it byte for byte.
func marshalJSON(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// sections renders every present section to its canonical bytes, in
// manifest order.
func (b *Bundle) sections() ([]Section, [][]byte, error) {
	var secs []Section
	var blobs [][]byte
	add := func(name string, data []byte) {
		sum := sha256.Sum256(data)
		secs = append(secs, Section{
			Name:   name,
			File:   sectionFiles[name],
			SHA256: hex.EncodeToString(sum[:]),
			Bytes:  int64(len(data)),
		})
		blobs = append(blobs, data)
	}
	addJSON := func(name string, v any) error {
		data, err := marshalJSON(v)
		if err != nil {
			return fmt.Errorf("obs: marshaling %s: %w", name, err)
		}
		add(name, data)
		return nil
	}
	if b.Stats != nil {
		if err := addJSON(secStats, b.Stats); err != nil {
			return nil, nil, err
		}
	}
	if b.Profile != nil {
		if err := addJSON(secProfile, b.Profile); err != nil {
			return nil, nil, err
		}
	}
	if b.Guest != nil {
		if err := addJSON(secGuest, b.Guest); err != nil {
			return nil, nil, err
		}
	}
	if b.GuestFolded != "" {
		add(secGuestFolded, []byte(b.GuestFolded))
	}
	if b.Audit != nil {
		if err := addJSON(secAudit, b.Audit); err != nil {
			return nil, nil, err
		}
	}
	if b.AuditCSV != "" {
		add(secAuditCSV, []byte(b.AuditCSV))
	}
	if len(b.Trace) > 0 {
		add(secTrace, b.Trace)
	}
	return secs, blobs, nil
}

// Write persists the bundle as the directory dir, atomically: sections
// and manifest land in a temporary sibling directory that is renamed into
// place, so a crashed writer never leaves a half-bundle behind. An
// existing directory at dir is replaced only if it is itself a bundle
// (it contains a manifest); anything else is refused rather than deleted.
func Write(dir string, b *Bundle) error {
	secs, blobs, err := b.sections()
	if err != nil {
		return err
	}
	man := Manifest{Schema: SchemaVersion, Identity: b.Identity, Sections: secs}
	manData, err := marshalJSON(man)
	if err != nil {
		return fmt.Errorf("obs: marshaling manifest: %w", err)
	}

	parent := filepath.Dir(dir)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp(parent, ".obs-tmp-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp) // no-op after the successful rename
	for i, s := range secs {
		if err := os.WriteFile(filepath.Join(tmp, s.File), blobs[i], 0o644); err != nil {
			return err
		}
	}
	if err := os.WriteFile(filepath.Join(tmp, ManifestFile), manData, 0o644); err != nil {
		return err
	}
	if _, err := os.Stat(dir); err == nil {
		if _, err := os.Stat(filepath.Join(dir, ManifestFile)); err != nil {
			return fmt.Errorf("obs: refusing to replace %s: exists but is not a bundle (no %s)", dir, ManifestFile)
		}
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
	}
	return os.Rename(tmp, dir)
}

// Open loads a bundle directory, validating the manifest's schema version
// and every section's checksum. It is the strict inverse of Write: an
// opened bundle rewritten with Write reproduces the section files byte
// for byte.
func Open(dir string) (*Bundle, error) {
	manData, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("obs: %s is not a bundle: %w", dir, err)
	}
	var man Manifest
	if err := json.Unmarshal(manData, &man); err != nil {
		return nil, fmt.Errorf("obs: %s: corrupt manifest: %w", dir, err)
	}
	if man.Schema != SchemaVersion {
		return nil, fmt.Errorf("obs: %s: bundle schema version %d, this build reads %d", dir, man.Schema, SchemaVersion)
	}
	b := &Bundle{Identity: man.Identity}
	for _, s := range man.Sections {
		if want := sectionFiles[s.Name]; want == "" || want != s.File {
			return nil, fmt.Errorf("obs: %s: manifest names unknown section %q (file %q)", dir, s.Name, s.File)
		}
		data, err := os.ReadFile(filepath.Join(dir, s.File))
		if err != nil {
			return nil, fmt.Errorf("obs: %s: section %s: %w", dir, s.Name, err)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != s.SHA256 {
			return nil, fmt.Errorf("obs: %s: section %s: checksum mismatch (manifest %s, file %s)", dir, s.Name, s.SHA256, got)
		}
		if err := b.loadSection(s.Name, data); err != nil {
			return nil, fmt.Errorf("obs: %s: section %s: %w", dir, s.Name, err)
		}
	}
	return b, nil
}

// loadSection decodes one section's bytes into the bundle field.
func (b *Bundle) loadSection(name string, data []byte) error {
	switch name {
	case secStats:
		b.Stats = &stats.Snapshot{}
		return json.Unmarshal(data, b.Stats)
	case secProfile:
		b.Profile = &core.RunProfile{}
		return json.Unmarshal(data, b.Profile)
	case secGuest:
		b.Guest = &guestprof.Profile{}
		return json.Unmarshal(data, b.Guest)
	case secGuestFolded:
		b.GuestFolded = string(data)
	case secAudit:
		b.Audit = &sizeaudit.Audit{}
		return json.Unmarshal(data, b.Audit)
	case secAuditCSV:
		b.AuditCSV = string(data)
	case secTrace:
		b.Trace = data
	default: // unreachable: Open filters names through sectionFiles first
		return fmt.Errorf("unknown section %q", name)
	}
	return nil
}

// WriteJSONFile writes v as indented JSON to path; "-" selects stdout.
// It is the shared sink behind every tool's legacy JSON-artifact flag.
func WriteJSONFile(path string, v any) error {
	data, err := marshalJSON(v)
	if err != nil {
		return err
	}
	return writeFileOrStdout(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// WriteTextFile streams render's output to path; "-" selects stdout.
func WriteTextFile(path string, render func(io.Writer) error) error {
	return writeFileOrStdout(path, render)
}

func writeFileOrStdout(path string, render func(io.Writer) error) error {
	if path == "-" {
		return render(os.Stdout)
	}
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

package obs

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/guestprof"
	"repro/internal/sizeaudit"
	"repro/internal/stats"
)

// testBundle builds a small fully-populated bundle from hand-written
// sections: deterministic, no execution, exercises every section type.
func testBundle() *Bundle {
	rec := stats.New()
	rec.Add("machine.steps", 1000)
	rec.Add("machine.expanded", 120)
	stop := rec.Time("core.compress")
	stop()
	rec.Observe("machine.expansion_len", 2)
	rec.Observe("machine.expansion_len", 4)
	snap := rec.Snapshot()
	// The recorder's phase carries wall-clock nanos; pin them for
	// deterministic goldens.
	ph := snap.Phases["core.compress"]
	ph.Nanos = 1_500_000
	snap.Phases["core.compress"] = ph

	em := sizeaudit.NewEmitter([]sizeaudit.Func{
		{Name: "main", Start: 0},
		{Name: "helper", Start: 64},
	}, 128)
	em.AtWord(sizeaudit.Codeword, 0, 12)
	em.AtWord(sizeaudit.Raw, 1, 32)
	em.AtWord(sizeaudit.Codeword, 16, 16)
	em.Global(sizeaudit.Dict, sizeaudit.DictRow, 64)
	em.Global(sizeaudit.Header, sizeaudit.HeaderRow, 32)
	audit := em.Finish("demo", "nibble", 156/8+1, 128)

	return &Bundle{
		Identity: Identity{
			Bench:       "demo",
			Codec:       "nibble",
			Method:      2,
			OptionsHash: "00000000deadbeef",
			GoVersion:   "go1.24.0",
			Timestamp:   "2026-08-08T00:00:00Z",
		},
		Stats: &snap,
		Profile: &core.RunProfile{
			Name:         "demo",
			Steps:        1000,
			Expanded:     120,
			MemFetches:   900,
			FetchedBytes: 1800,
			Fastpath: core.FastPathProfile{
				Steps:     900,
				SlowSteps: 100,
				Coverage:  0.9,
				Bails:     map[string]int64{"exit": 1, "hook_attached": 2},
			},
			HotEntries: []core.EntryHeat{
				{Rank: 0, Count: 80, Len: 2, Uses: 7, Insns: []string{"mr r3,r30", "blr"}},
				{Rank: 3, Count: 40, Len: 1, Uses: 4, Insns: []string{"lis r11,32"}},
			},
		},
		Guest: &guestprof.Profile{
			Name:  "demo",
			Total: guestprof.Counts{Cycles: 1000, FetchBytes: 1800, Expansions: 60, Expanded: 120},
			Funcs: []guestprof.FuncProfile{
				{Name: "main", Flat: guestprof.Counts{Cycles: 700, FetchBytes: 1300, Expansions: 40, Expanded: 80},
					Cum: guestprof.Counts{Cycles: 1000, FetchBytes: 1800, Expansions: 60, Expanded: 120}},
				{Name: "helper", Flat: guestprof.Counts{Cycles: 300, FetchBytes: 500, Expansions: 20, Expanded: 40},
					Cum: guestprof.Counts{Cycles: 300, FetchBytes: 500, Expansions: 20, Expanded: 40}},
			},
		},
		GuestFolded: "main 700\nmain;helper 300\n",
		Audit:       audit,
		AuditCSV:    "name,class,bits\nmain,codeword,28\n",
		Trace:       []byte(`[{"name":"compress","ph":"X","ts":0,"dur":1500}]` + "\n"),
	}
}

func TestBundleRoundTripSynthetic(t *testing.T) {
	b := testBundle()
	dir := filepath.Join(t.TempDir(), "b")
	if err := Write(dir, b); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Errorf("round trip changed the bundle:\n got %+v\nwant %+v", got, b)
	}
}

func TestWriteReplacesOnlyBundles(t *testing.T) {
	b := testBundle()
	dir := filepath.Join(t.TempDir(), "b")
	if err := Write(dir, b); err != nil {
		t.Fatal(err)
	}
	// Overwriting an existing bundle is fine.
	if err := Write(dir, b); err != nil {
		t.Fatalf("rewriting an existing bundle: %v", err)
	}
	// A directory without a manifest is not a bundle: refuse, don't delete.
	plain := filepath.Join(t.TempDir(), "keep")
	if err := os.MkdirAll(plain, 0o755); err != nil {
		t.Fatal(err)
	}
	precious := filepath.Join(plain, "data.txt")
	if err := os.WriteFile(precious, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Write(plain, b); err == nil {
		t.Fatal("Write replaced a non-bundle directory")
	}
	if _, err := os.Stat(precious); err != nil {
		t.Fatalf("refused Write still removed existing data: %v", err)
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	write := func(t *testing.T) string {
		dir := filepath.Join(t.TempDir(), "b")
		if err := Write(dir, testBundle()); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	t.Run("missing manifest", func(t *testing.T) {
		dir := write(t)
		os.Remove(filepath.Join(dir, ManifestFile))
		if _, err := Open(dir); err == nil {
			t.Fatal("opened a directory with no manifest")
		}
	})
	t.Run("corrupt manifest", func(t *testing.T) {
		dir := write(t)
		if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt manifest") {
			t.Fatalf("want corrupt-manifest error, got %v", err)
		}
	})
	t.Run("wrong schema version", func(t *testing.T) {
		dir := write(t)
		man, err := os.ReadFile(filepath.Join(dir, ManifestFile))
		if err != nil {
			t.Fatal(err)
		}
		bad := strings.Replace(string(man), `"schema": 1`, `"schema": 99`, 1)
		if bad == string(man) {
			t.Fatal("schema field not found in manifest")
		}
		if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "schema version 99") {
			t.Fatalf("want schema-version error, got %v", err)
		}
	})
	t.Run("checksum mismatch", func(t *testing.T) {
		dir := write(t)
		path := filepath.Join(dir, "stats.json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, ' '), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("want checksum error, got %v", err)
		}
	})
	t.Run("unknown section", func(t *testing.T) {
		dir := write(t)
		man, err := os.ReadFile(filepath.Join(dir, ManifestFile))
		if err != nil {
			t.Fatal(err)
		}
		bad := strings.Replace(string(man), `"name": "stats"`, `"name": "exploit"`, 1)
		if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "unknown section") {
			t.Fatalf("want unknown-section error, got %v", err)
		}
	})
}

func TestNilCollectorIsDiscardSink(t *testing.T) {
	var c *Collector
	if c.Recorder() != nil || c.Tracer() != nil {
		t.Fatal("nil collector handed out non-nil sinks")
	}
	c.SetProfile(core.RunProfile{})
	c.SetGuest(nil, "")
	c.SetAudit(nil)
	b, err := c.Bundle()
	if err != nil || b != nil {
		t.Fatalf("nil collector Bundle = %v, %v; want nil, nil", b, err)
	}
	if err := c.Write(filepath.Join(t.TempDir(), "nope")); err != nil {
		t.Fatalf("nil collector Write: %v", err)
	}
}

package obs

import (
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/guestprof"
	"repro/internal/sizeaudit"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Collector is the single sink a run threads its telemetry through: it
// owns the stats recorder and tracer the run reports into, accumulates
// the per-run artifacts (profile, guest profile, size audit) as the tools
// produce them, and assembles everything into one Bundle. Like
// stats.Recorder, a nil *Collector is a valid sink that discards
// everything — callers thread it unconditionally and pay nothing when no
// bundle was requested.
type Collector struct {
	id      Identity
	rec     *stats.Recorder
	tracer  *trace.Tracer
	profile *core.RunProfile
	guest   *guestprof.Profile
	folded  string
	audit   *sizeaudit.Audit
}

// NewCollector creates a collector for one run. A missing GoVersion is
// filled from the running toolchain; Timestamp stays exactly as the
// caller passed it (possibly empty), so deterministic producers — tests,
// golden fixtures — control it fully.
func NewCollector(id Identity) *Collector {
	if id.GoVersion == "" {
		id.GoVersion = runtime.Version()
	}
	return &Collector{id: id, rec: stats.New(), tracer: trace.New()}
}

// Recorder returns the collector's stats recorder — nil (the valid
// discard-everything sink) on a nil collector.
func (c *Collector) Recorder() *stats.Recorder {
	if c == nil {
		return nil
	}
	return c.rec
}

// Tracer returns the collector's tracer — nil (tracing disabled) on a
// nil collector.
func (c *Collector) Tracer() *trace.Tracer {
	if c == nil {
		return nil
	}
	return c.tracer
}

// SetProfile stores the run's execution profile. A Guest or Size artifact
// still embedded in the profile (the legacy -profile document carries
// both) is split out into its own bundle section, so no artifact is
// stored twice.
func (c *Collector) SetProfile(p core.RunProfile) {
	if c == nil {
		return
	}
	if p.Guest != nil && c.guest == nil {
		c.guest = p.Guest
	}
	if p.Size != nil && c.audit == nil {
		c.audit = p.Size
	}
	p.Guest, p.Size = nil, nil
	if len(p.Fastpath.Bails) == 0 {
		p.Fastpath.Bails = nil
	}
	c.profile = &p
}

// SetGuest stores the symbolized guest profile and its folded stacks.
func (c *Collector) SetGuest(p *guestprof.Profile, folded string) {
	if c == nil {
		return
	}
	c.guest = p
	c.folded = folded
}

// SetAudit stores the byte-provenance size audit.
func (c *Collector) SetAudit(a *sizeaudit.Audit) {
	if c == nil {
		return
	}
	c.audit = a
}

// Bundle assembles the collected artifacts into their canonical bundle
// form: the recorder is snapshotted, the tracer rendered to Chrome
// trace-event bytes, the audit's CSV derived, and empty substructures
// normalized to their decoded (nil/absent) form so a bundle and its
// reopened copy are reflect.DeepEqual.
func (c *Collector) Bundle() (*Bundle, error) {
	if c == nil {
		return nil, nil
	}
	b := &Bundle{Identity: c.id, Profile: c.profile, Guest: c.guest, GuestFolded: c.folded, Audit: c.audit}
	if snap := c.rec.Snapshot(); len(snap.Counters) > 0 || len(snap.Phases) > 0 || len(snap.Hists) > 0 {
		canonSnapshot(&snap)
		b.Stats = &snap
	}
	if c.tracer.Len() > 0 {
		var sb strings.Builder
		if err := c.tracer.WriteChrome(&sb); err != nil {
			return nil, err
		}
		b.Trace = []byte(sb.String())
	}
	if c.audit != nil {
		var sb strings.Builder
		if err := c.audit.WriteCSV(&sb); err != nil {
			return nil, err
		}
		b.AuditCSV = sb.String()
	}
	return b, nil
}

// Write assembles and persists the bundle. A nil collector writes
// nothing and reports success, mirroring the nil-Recorder contract.
func (c *Collector) Write(dir string) error {
	if c == nil {
		return nil
	}
	b, err := c.Bundle()
	if err != nil {
		return err
	}
	return Write(dir, b)
}

// canonSnapshot drops empty maps, matching what decoding the snapshot's
// JSON produces (omitempty elides them).
func canonSnapshot(s *stats.Snapshot) {
	if len(s.Counters) == 0 {
		s.Counters = nil
	}
	if len(s.Phases) == 0 {
		s.Phases = nil
	}
	if len(s.Hists) == 0 {
		s.Hists = nil
	}
}

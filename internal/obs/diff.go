package obs

import (
	"sort"

	"repro/internal/benchfmt"
	"repro/internal/sizeaudit"
)

// Diff is the pairwise comparison of two bundles: every axis the paper's
// claims are stated over — size (total bytes, per-provenance-class bits),
// cycles (total steps, per-function guest deltas), and behavior (stats
// counters, histogram quantiles, fast-path bail shifts). Sections absent
// from either bundle simply yield empty slices.
type Diff struct {
	Old, New Identity

	// Metrics compares the two stats snapshots metric by metric —
	// counters, phase milliseconds (".ms") and histogram quantiles
	// (".p50"/".p99") shared by both sides — via benchfmt.Compare, so the
	// same delta machinery that gates BENCH trajectories drives bundle
	// diffs. MetricsOldOnly / MetricsNewOnly list names present on only
	// one side: schema drift a diff must surface, not hide.
	Metrics        []benchfmt.MetricDelta
	MetricsOldOnly []string
	MetricsNewOnly []string

	// Exec summarizes the execution profiles (nil without both).
	Exec *ExecDelta

	// Funcs is the per-function guest-profile delta (cycles and fetched
	// program-memory bytes), ordered by |Δcycles| descending.
	Funcs []FuncDelta

	// Classes is the per-provenance-class compressed-bit delta from the
	// size audits; Size their total-byte summary (nil without both).
	Classes []ClassDelta
	Size    *SizeDelta

	// Bails is the fast-path bail-reason shift between the two runs
	// (union of reasons; absent reasons count zero).
	Bails []benchfmt.MetricDelta
}

// ExecDelta compares the headline execution numbers of two profiles.
type ExecDelta struct {
	OldSteps, NewSteps       int64
	OldCoverage, NewCoverage float64
}

// FuncDelta is one function's movement between two guest profiles.
type FuncDelta struct {
	Name                         string
	OldCycles, NewCycles         int64
	OldFetchBytes, NewFetchBytes int64
}

// ClassDelta is one provenance class's compressed-bit movement between
// two size audits.
type ClassDelta struct {
	Class            string
	OldBits, NewBits int64
}

// SizeDelta summarizes the two audits' totals.
type SizeDelta struct {
	OldBytes, NewBytes int64
	OldRatio, NewRatio float64
}

// metricsName is the pseudo-benchmark name bundle snapshots compare
// under; benchfmt matches benchmarks by name, and a diff always compares
// exactly one run against one run.
const metricsName = "run"

// metricsReport flattens a bundle's stats snapshot into a one-benchmark
// benchfmt report: counters verbatim, phases as "<name>.ms", histograms
// as "<name>.p50"/"<name>.p99".
func metricsReport(b *Bundle) *benchfmt.Report {
	m := map[string]float64{}
	if b.Stats != nil {
		for k, v := range b.Stats.Counters {
			m[k] = float64(v)
		}
		for k, p := range b.Stats.Phases {
			m[k+".ms"] = float64(p.Nanos) / 1e6
		}
		for k, h := range b.Stats.Hists {
			m[k+".p50"] = float64(h.P50)
			m[k+".p99"] = float64(h.P99)
		}
	}
	return &benchfmt.Report{Benchmarks: []benchfmt.Benchmark{{Name: metricsName, Metrics: m}}}
}

// NewDiff compares two bundles section by section.
func NewDiff(old, new *Bundle) *Diff {
	d := &Diff{Old: old.Identity, New: new.Identity}
	d.diffMetrics(old, new)
	d.diffExec(old, new)
	d.diffGuest(old, new)
	d.diffAudit(old, new)
	d.diffBails(old, new)
	return d
}

func (d *Diff) diffMetrics(old, new *Bundle) {
	or, nr := metricsReport(old), metricsReport(new)
	cmp := benchfmt.Compare(or, nr)
	for _, md := range cmp.Deltas {
		if md.Metric == "ns/op" { // bundles carry no go-test timing; drop the synthetic row
			continue
		}
		d.Metrics = append(d.Metrics, md)
	}
	om, nm := or.Benchmarks[0].Metrics, nr.Benchmarks[0].Metrics
	for k := range om {
		if _, ok := nm[k]; !ok {
			d.MetricsOldOnly = append(d.MetricsOldOnly, k)
		}
	}
	for k := range nm {
		if _, ok := om[k]; !ok {
			d.MetricsNewOnly = append(d.MetricsNewOnly, k)
		}
	}
	sort.Strings(d.MetricsOldOnly)
	sort.Strings(d.MetricsNewOnly)
}

func (d *Diff) diffExec(old, new *Bundle) {
	if old.Profile == nil || new.Profile == nil {
		return
	}
	d.Exec = &ExecDelta{
		OldSteps: old.Profile.Steps, NewSteps: new.Profile.Steps,
		OldCoverage: old.Profile.Fastpath.Coverage, NewCoverage: new.Profile.Fastpath.Coverage,
	}
}

func (d *Diff) diffGuest(old, new *Bundle) {
	if old.Guest == nil || new.Guest == nil {
		return
	}
	type side struct{ cycles, bytes int64 }
	byName := map[string][2]side{}
	names := []string{}
	for _, f := range old.Guest.Funcs {
		s := byName[f.Name]
		s[0] = side{f.Flat.Cycles, f.Flat.FetchBytes}
		byName[f.Name] = s
	}
	for _, f := range new.Guest.Funcs {
		s := byName[f.Name]
		s[1] = side{f.Flat.Cycles, f.Flat.FetchBytes}
		byName[f.Name] = s
	}
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := byName[name]
		d.Funcs = append(d.Funcs, FuncDelta{
			Name:      name,
			OldCycles: s[0].cycles, NewCycles: s[1].cycles,
			OldFetchBytes: s[0].bytes, NewFetchBytes: s[1].bytes,
		})
	}
	sort.SliceStable(d.Funcs, func(i, j int) bool {
		di := abs64(d.Funcs[i].NewCycles - d.Funcs[i].OldCycles)
		dj := abs64(d.Funcs[j].NewCycles - d.Funcs[j].OldCycles)
		if di != dj {
			return di > dj
		}
		return d.Funcs[i].Name < d.Funcs[j].Name
	})
}

func (d *Diff) diffAudit(old, new *Bundle) {
	if old.Audit == nil || new.Audit == nil {
		return
	}
	oc, nc := old.Audit.ClassTotals(), new.Audit.ClassTotals()
	for _, cl := range sizeaudit.Classes() {
		d.Classes = append(d.Classes, ClassDelta{Class: cl.String(), OldBits: oc[cl], NewBits: nc[cl]})
	}
	d.Size = &SizeDelta{
		OldBytes: int64(old.Audit.TotalBytes), NewBytes: int64(new.Audit.TotalBytes),
		OldRatio: old.Audit.Ratio(), NewRatio: new.Audit.Ratio(),
	}
}

func (d *Diff) diffBails(old, new *Bundle) {
	var ob, nb map[string]int64
	if old.Profile != nil {
		ob = old.Profile.Fastpath.Bails
	}
	if new.Profile != nil {
		nb = new.Profile.Fastpath.Bails
	}
	if len(ob) == 0 && len(nb) == 0 {
		return
	}
	seen := map[string]bool{}
	var reasons []string
	for r := range ob {
		if !seen[r] {
			seen[r] = true
			reasons = append(reasons, r)
		}
	}
	for r := range nb {
		if !seen[r] {
			seen[r] = true
			reasons = append(reasons, r)
		}
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		d.Bails = append(d.Bails, benchfmt.MetricDelta{
			Bench: "fastpath", Metric: r, Old: float64(ob[r]), New: float64(nb[r]),
		})
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

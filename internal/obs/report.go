package obs

import (
	"fmt"
	"html/template"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sizeaudit"
)

// Report is the renderable form of a bundle or a diff: a title, an
// identity key/value block and a list of tables. One view-model feeds
// both output modes, so the HTML page and the text dump can never
// disagree about content.
type Report struct {
	Title  string
	Sub    string
	KV     [][2]string
	Tables []ReportTable
}

// ReportTable is one section of a report. Num marks the right-aligned
// (numeric) columns by index.
type ReportTable struct {
	Title string
	Note  string
	Head  []string
	Num   []bool
	Rows  [][]string

	// Figure is an optional pre-rendered HTML fragment (an inline SVG
	// chart, e.g. perfhist's trend sparklines) shown between the note and
	// the table in HTML output; text output carries the same content in
	// the table rows, so it omits the figure rather than approximating it.
	Figure template.HTML
}

// reportHTML is the single embedded template: a dependency-free,
// self-contained page (inline CSS, no scripts, no external fetches).
var reportHTML = template.Must(template.New("report").Parse(`<!doctype html>
<html><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
body{font:14px/1.45 system-ui,sans-serif;margin:2rem auto;max-width:72rem;padding:0 1rem;color:#1a1a1a}
h1{font-size:1.4rem}h2{font-size:1.05rem;margin:2rem 0 .25rem}
table{border-collapse:collapse;margin:.5rem 0}
th,td{padding:.15rem .6rem;border-bottom:1px solid #ddd;text-align:left;vertical-align:baseline}
th{border-bottom:1px solid #888}
td.num,th.num{text-align:right;font-variant-numeric:tabular-nums}
.note{color:#666;font-size:.85rem;max-width:60rem;margin:.25rem 0}
.kv td:first-child{color:#666}
</style></head><body>
<h1>{{.Title}}</h1>
{{if .Sub}}<p class="note">{{.Sub}}</p>{{end}}
<table class="kv">{{range .KV}}<tr><td>{{index . 0}}</td><td>{{index . 1}}</td></tr>
{{end}}</table>
{{range .Tables}}<h2>{{.Title}}</h2>
{{if .Note}}<p class="note">{{.Note}}</p>{{end}}{{with .Figure}}<div class="fig">{{.}}</div>{{end}}
{{$t := .}}<table>
<tr>{{range $i, $h := .Head}}<th{{if index $t.Num $i}} class="num"{{end}}>{{$h}}</th>{{end}}</tr>
{{range .Rows}}<tr>{{range $i, $c := .}}<td{{if index $t.Num $i}} class="num"{{end}}>{{$c}}</td>{{end}}</tr>
{{end}}</table>
{{end}}</body></html>
`))

// WriteHTML renders the report as a standalone HTML page.
func (r *Report) WriteHTML(w io.Writer) error { return reportHTML.Execute(w, r) }

// WriteText renders the report as aligned text tables — the same content
// as the HTML page, for terminals and golden tests.
func (r *Report) WriteText(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(r.Title + "\n")
	if r.Sub != "" {
		sb.WriteString(r.Sub + "\n")
	}
	for _, kv := range r.KV {
		fmt.Fprintf(&sb, "%s: %s\n", kv[0], kv[1])
	}
	if _, err := io.WriteString(w, sb.String()); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if _, err := fmt.Fprintf(w, "\n== %s ==\n", t.Title); err != nil {
			return err
		}
		if t.Note != "" {
			if _, err := fmt.Fprintf(w, "(%s)\n", t.Note); err != nil {
				return err
			}
		}
		if err := writeAlignedRows(w, t); err != nil {
			return err
		}
	}
	return nil
}

// writeAlignedRows prints head + rows with Num columns right-aligned.
func writeAlignedRows(w io.Writer, t ReportTable) error {
	rows := append([][]string{t.Head}, t.Rows...)
	width := make([]int, len(t.Head))
	for _, r := range rows {
		for i, cell := range r {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	for _, r := range rows {
		sb.Reset()
		for i, cell := range r {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := 0
			if i < len(width) {
				pad = width[i] - len(cell)
			}
			num := i < len(t.Num) && t.Num[i]
			if num {
				sb.WriteString(strings.Repeat(" ", pad))
				sb.WriteString(cell)
			} else if i == len(r)-1 { // trailing name column: unpadded
				sb.WriteString(cell)
			} else {
				sb.WriteString(cell)
				sb.WriteString(strings.Repeat(" ", pad))
			}
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " ")); err != nil {
			return err
		}
	}
	return nil
}

// ---- shared formatting ----

func fmtI(v int64) string { return strconv.FormatInt(v, 10) }

// fmtF prints a float compactly: integral values as integers, the rest
// with three decimals.
func fmtF(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// fmtBitsAsBytes renders a bit count as exact (possibly fractional) bytes.
func fmtBitsAsBytes(bits int64) string {
	if bits%8 == 0 {
		return strconv.FormatInt(bits/8, 10)
	}
	return strconv.FormatFloat(float64(bits)/8, 'f', -1, 64)
}

func fmtPct(num, den int64) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// fmtDelta renders new-old with an explicit sign.
func fmtDelta(old, new int64) string {
	d := new - old
	if d > 0 {
		return "+" + strconv.FormatInt(d, 10)
	}
	return strconv.FormatInt(d, 10)
}

// ---- bundle report ----

// maximum rows the report shows for the long tables; the full data stays
// in the bundle's JSON sections.
const (
	maxHotEntries = 10
	maxGuestRows  = 20
	maxAuditRows  = 15
	maxFuncDeltas = 20
)

// BundleReport builds the renderable report of one bundle.
func BundleReport(b *Bundle) *Report {
	r := &Report{Title: "run bundle: " + b.Identity.String()}
	r.KV = identityKV(b.Identity)
	var present []string
	for _, s := range []struct {
		name string
		ok   bool
	}{
		{secStats, b.Stats != nil}, {secProfile, b.Profile != nil},
		{secGuest, b.Guest != nil}, {secGuestFolded, b.GuestFolded != ""},
		{secAudit, b.Audit != nil}, {secAuditCSV, b.AuditCSV != ""},
		{secTrace, len(b.Trace) > 0},
	} {
		if s.ok {
			present = append(present, s.name)
		}
	}
	r.KV = append(r.KV, [2]string{"sections", strings.Join(present, ", ")})
	if len(b.Trace) > 0 {
		r.KV = append(r.KV, [2]string{"trace", fmtI(int64(len(b.Trace))) + " bytes (Chrome trace-event)"})
	}

	if b.Profile != nil {
		r.Tables = append(r.Tables, profileTable(b.Profile))
		if len(b.Profile.HotEntries) > 0 {
			r.Tables = append(r.Tables, hotEntriesTable(b))
		}
	}
	if b.Stats != nil {
		r.Tables = append(r.Tables, statsTables(b)...)
	}
	if b.Guest != nil {
		r.Tables = append(r.Tables, guestTable(b))
	}
	if b.Audit != nil {
		r.Tables = append(r.Tables, auditClassTable(b), auditFuncTable(b))
	}
	return r
}

func identityKV(id Identity) [][2]string {
	kv := [][2]string{{"bench", id.Bench}}
	if id.Codec != "" {
		kv = append(kv, [2]string{"codec", fmt.Sprintf("%s (method 0x%02x)", id.Codec, id.Method)})
	}
	if id.OptionsHash != "" {
		kv = append(kv, [2]string{"options", id.OptionsHash})
	}
	if id.GoVersion != "" {
		kv = append(kv, [2]string{"go", id.GoVersion})
	}
	if id.Timestamp != "" {
		kv = append(kv, [2]string{"time", id.Timestamp})
	}
	return kv
}

func profileTable(p *core.RunProfile) ReportTable {
	t := ReportTable{
		Title: "Execution",
		Head:  []string{"metric", "value"},
		Num:   []bool{false, true},
	}
	add := func(k, v string) { t.Rows = append(t.Rows, []string{k, v}) }
	add("steps", fmtI(p.Steps))
	add("expanded", fmtI(p.Expanded))
	add("mem fetches", fmtI(p.MemFetches))
	add("fetched bytes", fmtI(p.FetchedBytes))
	add("fastpath steps", fmtI(p.Fastpath.Steps))
	add("fastpath slow steps", fmtI(p.Fastpath.SlowSteps))
	add("fastpath coverage", fmt.Sprintf("%.4f", p.Fastpath.Coverage))
	if p.Fastpath.Epochs > 0 {
		add("fastpath epochs", fmtI(p.Fastpath.Epochs))
	}
	for _, reason := range sortedKeys(p.Fastpath.Bails) {
		add("bail "+reason, fmtI(p.Fastpath.Bails[reason]))
	}
	if p.Cache != nil {
		add("icache accesses", fmtI(p.Cache.Accesses))
		add("icache misses", fmtI(p.Cache.Misses))
		add("icache miss rate", fmt.Sprintf("%.4f", p.Cache.MissRate))
	}
	return t
}

func hotEntriesTable(b *Bundle) ReportTable {
	t := ReportTable{
		Title: "Hot dictionary entries",
		Note:  fmt.Sprintf("top %d by expansions begun; the full heat map is profile.json", maxHotEntries),
		Head:  []string{"rank", "count", "len", "uses", "instructions"},
		Num:   []bool{true, true, true, true, false},
	}
	for i, e := range b.Profile.HotEntries {
		if i == maxHotEntries {
			break
		}
		t.Rows = append(t.Rows, []string{
			fmtI(int64(e.Rank)), fmtI(e.Count), fmtI(int64(e.Len)), fmtI(int64(e.Uses)),
			strings.Join(e.Insns, "; "),
		})
	}
	return t
}

func statsTables(b *Bundle) []ReportTable {
	var out []ReportTable
	s := b.Stats
	if len(s.Counters) > 0 {
		t := ReportTable{Title: "Counters", Head: []string{"counter", "value"}, Num: []bool{false, true}}
		for _, k := range sortedKeys(s.Counters) {
			t.Rows = append(t.Rows, []string{k, fmtI(s.Counters[k])})
		}
		out = append(out, t)
	}
	if len(s.Phases) > 0 {
		t := ReportTable{Title: "Phases", Head: []string{"phase", "count", "total ms"}, Num: []bool{false, true, true}}
		keys := make([]string, 0, len(s.Phases))
		for k := range s.Phases {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := s.Phases[k]
			t.Rows = append(t.Rows, []string{k, fmtI(p.Count), fmt.Sprintf("%.3f", float64(p.Nanos)/1e6)})
		}
		out = append(out, t)
	}
	if len(s.Hists) > 0 {
		t := ReportTable{
			Title: "Histograms",
			Head:  []string{"histogram", "count", "min", "p50", "p90", "p99", "max"},
			Num:   []bool{false, true, true, true, true, true, true},
		}
		keys := make([]string, 0, len(s.Hists))
		for k := range s.Hists {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h := s.Hists[k]
			t.Rows = append(t.Rows, []string{
				k, fmtI(h.Count), fmtI(h.Min), fmtI(h.P50), fmtI(h.P90), fmtI(h.P99), fmtI(h.Max),
			})
		}
		out = append(out, t)
	}
	return out
}

func guestTable(b *Bundle) ReportTable {
	g := b.Guest
	t := ReportTable{
		Title: "Guest functions",
		Note:  fmt.Sprintf("top %d by flat cycles; the full profile is guest.json", maxGuestRows),
		Head:  []string{"flat", "flat%", "cum", "fetch bytes", "expansions", "dict insns", "function"},
		Num:   []bool{true, true, true, true, true, true, false},
	}
	for i, f := range g.Funcs {
		if i == maxGuestRows {
			break
		}
		t.Rows = append(t.Rows, []string{
			fmtI(f.Flat.Cycles), fmtPct(f.Flat.Cycles, g.Total.Cycles), fmtI(f.Cum.Cycles),
			fmtI(f.Flat.FetchBytes), fmtI(f.Flat.Expansions), fmtI(f.Flat.Expanded), f.Name,
		})
	}
	t.Rows = append(t.Rows, []string{
		fmtI(g.Total.Cycles), "100.0%", fmtI(g.Total.Cycles),
		fmtI(g.Total.FetchBytes), fmtI(g.Total.Expansions), fmtI(g.Total.Expanded), "TOTAL",
	})
	return t
}

func auditClassTable(b *Bundle) ReportTable {
	a := b.Audit
	title := fmt.Sprintf("Size audit: %d bytes", a.TotalBytes)
	if a.OriginalBytes > 0 {
		title += fmt.Sprintf(" of %d original (ratio %.3f)", a.OriginalBytes, a.Ratio())
	}
	t := ReportTable{
		Title: title,
		Head:  []string{"class", "bytes", "share"},
		Num:   []bool{false, true, true},
	}
	totals := a.ClassTotals()
	totalBits := int64(a.TotalBytes) * 8
	for _, cl := range sizeaudit.Classes() {
		if totals[cl] == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			cl.String(), fmtBitsAsBytes(totals[cl]), fmtPct(totals[cl], totalBits),
		})
	}
	return t
}

func auditFuncTable(b *Bundle) ReportTable {
	a := b.Audit
	t := ReportTable{
		Title: "Size audit: largest functions",
		Note:  fmt.Sprintf("top %d by compressed bits; the full attribution is audit.json / audit.csv", maxAuditRows),
		Head:  []string{"bytes", "share", "function"},
		Num:   []bool{true, true, false},
	}
	funcs := append([]sizeaudit.FuncSize(nil), a.Funcs...)
	sort.SliceStable(funcs, func(i, j int) bool {
		if ti, tj := funcs[i].Bits.Total(), funcs[j].Bits.Total(); ti != tj {
			return ti > tj
		}
		return funcs[i].Name < funcs[j].Name
	})
	totalBits := int64(a.TotalBytes) * 8
	for i, f := range funcs {
		if i == maxAuditRows {
			break
		}
		t.Rows = append(t.Rows, []string{fmtBitsAsBytes(f.Bits.Total()), fmtPct(f.Bits.Total(), totalBits), f.Name})
	}
	return t
}

// ---- diff report ----

// DiffReport builds the renderable report of a pairwise bundle diff.
func DiffReport(d *Diff) *Report {
	r := &Report{Title: fmt.Sprintf("bundle diff: %s -> %s", d.Old, d.New)}
	r.KV = [][2]string{
		{"old", diffSideKV(d.Old)},
		{"new", diffSideKV(d.New)},
	}
	if d.Size != nil {
		r.KV = append(r.KV, [2]string{"compressed size",
			fmt.Sprintf("%d -> %d bytes (%s, ratio %.3f -> %.3f)",
				d.Size.OldBytes, d.Size.NewBytes, fmtDelta(d.Size.OldBytes, d.Size.NewBytes),
				d.Size.OldRatio, d.Size.NewRatio)})
	}
	if d.Exec != nil {
		r.KV = append(r.KV, [2]string{"steps",
			fmt.Sprintf("%d -> %d (%s)", d.Exec.OldSteps, d.Exec.NewSteps, fmtDelta(d.Exec.OldSteps, d.Exec.NewSteps))})
		r.KV = append(r.KV, [2]string{"fastpath coverage",
			fmt.Sprintf("%.4f -> %.4f", d.Exec.OldCoverage, d.Exec.NewCoverage)})
	}

	if len(d.Classes) > 0 {
		t := ReportTable{
			Title: "Provenance classes",
			Note:  "compressed bits per class, from the size audits (shown as exact bytes)",
			Head:  []string{"class", "old", "new", "delta"},
			Num:   []bool{false, true, true, true},
		}
		for _, c := range d.Classes {
			if c.OldBits == 0 && c.NewBits == 0 {
				continue
			}
			t.Rows = append(t.Rows, []string{
				c.Class, fmtBitsAsBytes(c.OldBits), fmtBitsAsBytes(c.NewBits),
				fmtBitsDelta(c.OldBits, c.NewBits),
			})
		}
		r.Tables = append(r.Tables, t)
	}
	if len(d.Funcs) > 0 {
		t := ReportTable{
			Title: "Guest functions",
			Note:  fmt.Sprintf("per-function flat cycles and fetched program-memory bytes; top %d by |delta cycles|", maxFuncDeltas),
			Head:  []string{"old cycles", "new cycles", "delta", "old bytes", "new bytes", "function"},
			Num:   []bool{true, true, true, true, true, false},
		}
		for i, f := range d.Funcs {
			if i == maxFuncDeltas {
				t.Note += fmt.Sprintf(" (%d more omitted)", len(d.Funcs)-maxFuncDeltas)
				break
			}
			t.Rows = append(t.Rows, []string{
				fmtI(f.OldCycles), fmtI(f.NewCycles), fmtDelta(f.OldCycles, f.NewCycles),
				fmtI(f.OldFetchBytes), fmtI(f.NewFetchBytes), f.Name,
			})
		}
		r.Tables = append(r.Tables, t)
	}
	if len(d.Bails) > 0 {
		t := ReportTable{
			Title: "Fast-path bails",
			Head:  []string{"reason", "old", "new"},
			Num:   []bool{false, true, true},
		}
		for _, bd := range d.Bails {
			t.Rows = append(t.Rows, []string{bd.Metric, fmtF(bd.Old), fmtF(bd.New)})
		}
		r.Tables = append(r.Tables, t)
	}
	if len(d.Metrics) > 0 {
		t := ReportTable{
			Title: "Metrics",
			Note:  "stats counters, phase milliseconds (.ms) and histogram quantiles (.p50/.p99) shared by both bundles",
			Head:  []string{"metric", "old", "new", "delta%"},
			Num:   []bool{false, true, true, true},
		}
		for _, md := range d.Metrics {
			t.Rows = append(t.Rows, []string{md.Metric, fmtF(md.Old), fmtF(md.New), fmt.Sprintf("%+.1f%%", md.Pct())})
		}
		if len(d.MetricsOldOnly) > 0 {
			t.Note += "; only in old: " + strings.Join(d.MetricsOldOnly, ", ")
		}
		if len(d.MetricsNewOnly) > 0 {
			t.Note += "; only in new: " + strings.Join(d.MetricsNewOnly, ", ")
		}
		r.Tables = append(r.Tables, t)
	}
	return r
}

func diffSideKV(id Identity) string {
	s := id.String()
	if id.OptionsHash != "" {
		s += " options " + id.OptionsHash
	}
	if id.Timestamp != "" {
		s += " @ " + id.Timestamp
	}
	return s
}

// fmtBitsDelta renders new-old bits as signed exact bytes.
func fmtBitsDelta(old, new int64) string {
	d := new - old
	s := fmtBitsAsBytes(d)
	if d > 0 {
		s = "+" + s
	}
	return s
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/guestprof"
	"repro/internal/sizeaudit"
	"repro/internal/stats"
)

var update = flag.Bool("update", false, "rewrite the golden report files")

// testBundleNew is the "after" side for diff tests: same shape as
// testBundle with moved numbers, a function and a bail reason only it
// has, and a counter the old side lacks.
func testBundleNew() *Bundle {
	rec := stats.New()
	rec.Add("machine.steps", 1400)
	rec.Add("machine.expanded", 90)
	rec.Add("machine.fetched_bytes", 2100)
	rec.Observe("machine.expansion_len", 3)
	snap := rec.Snapshot()

	em := sizeaudit.NewEmitter([]sizeaudit.Func{
		{Name: "main", Start: 0},
		{Name: "helper", Start: 64},
	}, 128)
	em.AtWord(sizeaudit.Codeword, 0, 20)
	em.AtWord(sizeaudit.Raw, 1, 64)
	em.Global(sizeaudit.Table, sizeaudit.LATRow, 40)
	em.Global(sizeaudit.Header, sizeaudit.HeaderRow, 36)
	audit := em.Finish("demo", "ccrp", 20, 128)

	return &Bundle{
		Identity: Identity{
			Bench:     "demo",
			Codec:     "ccrp",
			Method:    4,
			GoVersion: "go1.24.0",
			Timestamp: "2026-08-08T01:00:00Z",
		},
		Stats: &snap,
		Profile: &core.RunProfile{
			Name:         "demo",
			Steps:        1400,
			Expanded:     90,
			MemFetches:   1200,
			FetchedBytes: 2100,
			Fastpath: core.FastPathProfile{
				Steps:     1390,
				SlowSteps: 10,
				Coverage:  0.9929,
				Bails:     map[string]int64{"exit": 1, "budget": 3},
			},
		},
		Guest: &guestprof.Profile{
			Name:  "demo",
			Total: guestprof.Counts{Cycles: 1400, FetchBytes: 2100},
			Funcs: []guestprof.FuncProfile{
				{Name: "main", Flat: guestprof.Counts{Cycles: 900, FetchBytes: 1500},
					Cum: guestprof.Counts{Cycles: 1400, FetchBytes: 2100}},
				{Name: "helper2", Flat: guestprof.Counts{Cycles: 500, FetchBytes: 600},
					Cum: guestprof.Counts{Cycles: 500, FetchBytes: 600}},
			},
		},
		Audit: audit,
	}
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create goldens)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden; rerun with -update if intended\n got: %q\nwant: %q",
			name, got, string(want))
	}
}

func TestBundleReportGolden(t *testing.T) {
	r := BundleReport(testBundle())
	var html, text strings.Builder
	if err := r.WriteHTML(&html); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "bundle.html", html.String())
	checkGolden(t, "bundle.txt", text.String())
}

func TestDiffReportGolden(t *testing.T) {
	d := NewDiff(testBundle(), testBundleNew())
	r := DiffReport(d)
	var html, text strings.Builder
	if err := r.WriteHTML(&html); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "diff.html", html.String())
	checkGolden(t, "diff.txt", text.String())
}

func TestDiffSemantics(t *testing.T) {
	old, new := testBundle(), testBundleNew()
	d := NewDiff(old, new)

	if d.Exec == nil || d.Exec.OldSteps != 1000 || d.Exec.NewSteps != 1400 {
		t.Fatalf("exec delta = %+v", d.Exec)
	}
	if d.Size == nil || d.Size.OldBytes != int64(old.Audit.TotalBytes) || d.Size.NewBytes != 20 {
		t.Fatalf("size delta = %+v", d.Size)
	}

	// Metrics: only names on both sides get deltas; one-sided names are
	// listed, not silently dropped.
	byMetric := map[string]bool{}
	for _, m := range d.Metrics {
		byMetric[m.Metric] = true
	}
	if !byMetric["machine.steps"] || !byMetric["machine.expanded"] {
		t.Errorf("shared counters missing from metric deltas: %v", d.Metrics)
	}
	foundNewOnly := false
	for _, n := range d.MetricsNewOnly {
		if n == "machine.fetched_bytes" {
			foundNewOnly = true
		}
	}
	if !foundNewOnly {
		t.Errorf("machine.fetched_bytes should be new-only, got %v", d.MetricsNewOnly)
	}
	foundOldOnly := false
	for _, n := range d.MetricsOldOnly {
		if n == "core.compress.ms" {
			foundOldOnly = true
		}
	}
	if !foundOldOnly {
		t.Errorf("core.compress.ms should be old-only, got %v", d.MetricsOldOnly)
	}

	// Guest functions: union of both sides, absent side counted zero,
	// ordered by |delta cycles| descending.
	funcs := map[string]FuncDelta{}
	for _, f := range d.Funcs {
		funcs[f.Name] = f
	}
	if f := funcs["helper"]; f.OldCycles != 300 || f.NewCycles != 0 {
		t.Errorf("helper delta = %+v", f)
	}
	if f := funcs["helper2"]; f.OldCycles != 0 || f.NewCycles != 500 {
		t.Errorf("helper2 delta = %+v", f)
	}
	for i := 1; i < len(d.Funcs); i++ {
		di := abs64(d.Funcs[i-1].NewCycles - d.Funcs[i-1].OldCycles)
		dj := abs64(d.Funcs[i].NewCycles - d.Funcs[i].OldCycles)
		if di < dj {
			t.Errorf("func deltas not ordered by |delta|: %v before %v", d.Funcs[i-1], d.Funcs[i])
		}
	}

	// Bails: union of reasons across both profiles.
	bails := map[string][2]float64{}
	for _, b := range d.Bails {
		bails[b.Metric] = [2]float64{b.Old, b.New}
	}
	if got := bails["hook_attached"]; got != [2]float64{2, 0} {
		t.Errorf("hook_attached bail delta = %v", got)
	}
	if got := bails["budget"]; got != [2]float64{0, 3} {
		t.Errorf("budget bail delta = %v", got)
	}

	// Classes: every provenance class with bits on either side appears.
	classes := map[string][2]int64{}
	for _, cl := range d.Classes {
		classes[cl.Class] = [2]int64{cl.OldBits, cl.NewBits}
	}
	if got := classes["dictionary"]; got[0] == 0 || got[1] != 0 {
		t.Errorf("dictionary class delta = %v", got)
	}
	if got := classes["table"]; got[0] != 0 || got[1] != 40 {
		t.Errorf("table class delta = %v", got)
	}
}

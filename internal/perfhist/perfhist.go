// Package perfhist is the repository's performance-history ledger: an
// append-only, schema-versioned JSONL store where every benchmarking run
// deposits one entry — the run's identity (git commit, caller-supplied
// timestamp, toolchain, CPU, options fingerprint) plus its aggregated
// benchfmt report, samples included. The ledger is the durable timeline
// behind `make bench-trend` and cmd/cctrend: where BENCH_*.json is one
// point and benchdiff a pairwise delta, the ledger answers per-metric
// time series, flags changepoints (mean steps whose 95% confidence
// intervals do not overlap), and ranks the worst recent regressions.
//
// Appends are atomic (a single O_APPEND write of one line), entries are
// validated both on append and on load, and unknown schema versions are
// rejected rather than misread — the ledger is a cross-run comparison
// artifact, like internal/obs bundles, and silently mixing layouts would
// poison every trend computed from it.
package perfhist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/benchfmt"
)

// SchemaVersion is the entry format version recorded in every ledger
// line. Load rejects any other version.
const SchemaVersion = 1

// Entry is one ledger line: the identity of a benchmarking run and its
// full aggregated report. Identity fields follow obs.Identity's
// convention — all caller-supplied metadata, none of it derived inside
// this package, so replaying the same report under the same identity
// produces a byte-identical line.
type Entry struct {
	Schema int `json:"schema"`

	// Commit is the git commit the measured tree was built from.
	Commit string `json:"commit"`

	// Timestamp is the caller-supplied RFC3339 instant of the run.
	Timestamp string `json:"timestamp"`

	// GoVersion and CPU record the producing toolchain and host.
	GoVersion string `json:"go_version,omitempty"`
	CPU       string `json:"cpu,omitempty"`

	// OptionsHash fingerprints the codec/options configuration the run
	// measured (core.Options.Fingerprint), when one applies.
	OptionsHash string `json:"options_hash,omitempty"`

	// Report is the run's aggregated benchfmt report, samples included.
	Report *benchfmt.Report `json:"report"`
}

// Validate checks the invariants every ledger entry must hold. Both
// Append and Load call it, so a malformed entry can neither enter the
// ledger nor be computed over.
func (e *Entry) Validate() error {
	if e.Schema != SchemaVersion {
		return fmt.Errorf("perfhist: entry schema version %d, this build reads %d", e.Schema, SchemaVersion)
	}
	if e.Commit == "" {
		return fmt.Errorf("perfhist: entry has no commit")
	}
	if _, err := time.Parse(time.RFC3339, e.Timestamp); err != nil {
		return fmt.Errorf("perfhist: entry timestamp %q is not RFC3339: %w", e.Timestamp, err)
	}
	if e.Report == nil || len(e.Report.Benchmarks) == 0 {
		return fmt.Errorf("perfhist: entry carries no benchmarks")
	}
	return nil
}

// Append validates the entry and appends it to the ledger at path as one
// JSON line, creating the file if needed. The write is a single
// O_APPEND syscall, so concurrent appenders interleave whole lines, and
// a validated ledger is never left with a torn entry.
func Append(path string, e *Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("perfhist: marshaling entry: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("perfhist: appending to %s: %w", path, err)
	}
	return f.Close()
}

// Load reads a ledger, validating every entry; errors name the file and
// the 1-based line that failed. Blank lines are ignored. Entries are
// returned in file (append) order — the ledger's chronology.
func Load(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var entries []Entry
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("perfhist: %s:%d: %w", path, line, err)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("perfhist: %s:%d: %w", path, line, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perfhist: %s: %w", path, err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("perfhist: %s: ledger holds no entries", path)
	}
	return entries, nil
}

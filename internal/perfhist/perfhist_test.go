package perfhist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

// entry builds a valid ledger entry whose single benchmark carries the
// given ns/op samples (multi-sample → real CI; one sample → point).
func entry(commit, ts string, ns ...float64) *Entry {
	b := benchfmt.Benchmark{Name: "BenchmarkX", NsPerOp: benchfmt.NewDist(ns).Mean}
	if len(ns) > 1 {
		b.Samples = map[string][]float64{benchfmt.MetricNs: ns}
	} else {
		b.NsPerOp = ns[0]
	}
	return &Entry{
		Schema: SchemaVersion, Commit: commit, Timestamp: ts,
		Report: &benchfmt.Report{Benchmarks: []benchfmt.Benchmark{b}},
	}
}

func TestAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	e1 := entry("aaaa111", "2026-08-01T10:00:00Z", 100, 101, 102)
	e2 := entry("bbbb222", "2026-08-02T10:00:00Z", 103, 104, 105)
	e2.GoVersion, e2.CPU, e2.OptionsHash = "go1.24.0", "Test CPU", "deadbeef"
	for _, e := range []*Entry{e1, e2} {
		if err := Append(path, e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(got))
	}
	if got[0].Commit != "aaaa111" || got[1].Commit != "bbbb222" {
		t.Fatalf("order lost: %q, %q", got[0].Commit, got[1].Commit)
	}
	if got[1].GoVersion != "go1.24.0" || got[1].CPU != "Test CPU" || got[1].OptionsHash != "deadbeef" {
		t.Fatalf("identity lost: %+v", got[1])
	}
	if s := got[0].Report.Benchmarks[0].Samples[benchfmt.MetricNs]; len(s) != 3 {
		t.Fatalf("samples lost: %v", s)
	}
}

func TestAppendRejectsInvalid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	cases := map[string]*Entry{
		"wrong schema":  {Schema: 99, Commit: "c", Timestamp: "2026-08-01T10:00:00Z", Report: entry("c", "2026-08-01T10:00:00Z", 1).Report},
		"no commit":     entry("", "2026-08-01T10:00:00Z", 1),
		"bad timestamp": entry("c", "yesterday", 1),
		"no report":     {Schema: SchemaVersion, Commit: "c", Timestamp: "2026-08-01T10:00:00Z"},
	}
	for name, e := range cases {
		if err := Append(path, e); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("rejected appends still created the ledger file")
	}
}

func TestLoadNamesPathAndLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	good := entry("aaaa111", "2026-08-01T10:00:00Z", 100)
	if err := Append(path, good); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Line 2 is a torn (truncated) entry.
	if _, err := f.WriteString(`{"schema":1,"commit":"bbbb` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = Load(path)
	if err == nil {
		t.Fatal("torn entry loaded")
	}
	if !strings.Contains(err.Error(), path+":2:") {
		t.Errorf("error %q does not name path and line 2", err)
	}
}

func TestLoadRejectsSchemaDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	line := `{"schema":2,"commit":"c","timestamp":"2026-08-01T10:00:00Z","report":{"benchmarks":[{"name":"B","iterations":1,"ns_per_op":1}]}}`
	if err := os.WriteFile(path, []byte(line+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if err == nil || !strings.Contains(err.Error(), "schema version 2") {
		t.Fatalf("schema drift not rejected: %v", err)
	}
}

func TestLoadEmptyLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := os.WriteFile(path, []byte("\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("blank-only ledger loaded")
	}
}

func TestTrendSeries(t *testing.T) {
	entries := []Entry{
		*entry("c1", "2026-08-01T10:00:00Z", 100, 101, 102),
		*entry("c2", "2026-08-02T10:00:00Z", 103, 104, 105),
		*entry("c3", "2026-08-03T10:00:00Z", 140, 141, 142),
	}
	// Second entry also carries a custom metric — the series must still
	// line up per metric, shorter where the metric is absent.
	entries[1].Report.Benchmarks[0].Metrics = map[string]float64{"ratio": 1.1}

	series := Trend(entries)
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2 (ns/op + ratio): %+v", len(series), series)
	}
	ns := series[0]
	if ns.Metric != benchfmt.MetricNs || len(ns.Points) != 3 {
		t.Fatalf("ns series: %+v", ns)
	}
	if ns.Points[0].Commit != "c1" || ns.Points[2].Commit != "c3" {
		t.Fatalf("point order: %+v", ns.Points)
	}
	if ns.Points[1].Index != 1 {
		t.Fatalf("ledger index: %+v", ns.Points[1])
	}
	ratio := series[1]
	if ratio.Metric != "ratio" || len(ratio.Points) != 1 {
		t.Fatalf("ratio series: %+v", ratio)
	}
	// c1→c2 is ~3%: means moved but CIs overlap-free? The spreads are
	// tight (sd=1), so the 40% step at c3 must flag and the 3% step too —
	// unless CIs overlap. Verify just the unambiguous one.
	found := false
	for _, cp := range ns.Changepoints {
		if cp == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("40%% step not flagged: changepoints %v", ns.Changepoints)
	}
}

func TestDetectStepsNoiseSuppression(t *testing.T) {
	mk := func(ns ...float64) Point {
		return Point{Dist: benchfmt.NewDist(ns)}
	}
	// Wide, overlapping CIs: an 8% mean drift must NOT flag.
	noisy := []Point{mk(100, 120, 90, 110), mk(108, 130, 95, 119)}
	if steps := detectSteps(noisy); len(steps) != 0 {
		t.Errorf("overlapping-CI drift flagged: %v", steps)
	}
	// Tight, disjoint CIs with a 40% step: must flag.
	stepped := []Point{mk(100, 101, 102), mk(140, 141, 142)}
	if steps := detectSteps(stepped); len(steps) != 1 || steps[0] != 1 {
		t.Errorf("genuine step missed: %v", steps)
	}
	// Disjoint CIs but sub-threshold shift (1%): must not flag.
	tiny := []Point{mk(100, 100.1, 100.2), mk(101, 101.1, 101.2)}
	if steps := detectSteps(tiny); len(steps) != 0 {
		t.Errorf("1%% drift flagged: %v", steps)
	}
}

func TestWorstRegressions(t *testing.T) {
	mk := func(bench, metric string, points ...benchfmt.Dist) Series {
		s := Series{Bench: bench, Metric: metric}
		for i, d := range points {
			s.Points = append(s.Points, Point{Index: i, Dist: d})
		}
		return s
	}
	d := func(ns ...float64) benchfmt.Dist { return benchfmt.NewDist(ns) }
	series := []Series{
		mk("A", "ns/op", d(100, 101), d(150, 151)), // +50%, disjoint CIs
		mk("B", "ns/op", d(100, 140), d(110, 160)), // +12.5%-ish, overlapping
		mk("C", "ns/op", d(100), d(90)),            // improved: excluded
		mk("D", "ns/op", d(100)),                   // single point: excluded
	}
	worst := WorstRegressions(series)
	if len(worst) != 2 {
		t.Fatalf("got %d regressions, want 2: %+v", len(worst), worst)
	}
	if worst[0].Bench != "A" || !worst[0].Significant {
		t.Errorf("worst[0]: %+v", worst[0])
	}
	if worst[1].Bench != "B" || worst[1].Significant {
		t.Errorf("worst[1]: %+v", worst[1])
	}
}

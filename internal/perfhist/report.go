package perfhist

import (
	"fmt"
	"html/template"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// maxWorstRows caps the worst-regression table; the full movement is in
// the per-benchmark timeline tables.
const maxWorstRows = 15

// Sparkline geometry. Fixed-pixel layout with fixed-decimal coordinate
// formatting keeps the SVG byte-deterministic for a given ledger.
const (
	sparkLabelW = 240 // metric-name gutter
	sparkPlotW  = 300 // plot area
	sparkValueW = 100 // last-value gutter
	sparkRowH   = 34  // per-metric row
	sparkPad    = 6   // vertical padding inside a row
)

// Chart colors — validated single-series palette: one blue for the mean
// line, its lightest sequential step for the 95% CI band, the reserved
// red for changepoint marks (a state, not a series), ink for text.
const (
	colLine   = "#2a78d6"
	colBand   = "#cde2fb"
	colStep   = "#e34948"
	colInk    = "#0b0b0b"
	colInkDim = "#52514e"
)

// TrendReport builds the renderable trend report for a ledger: an
// identity block, the worst-regressions table, then one timeline section
// per benchmark — an SVG small-multiples figure (one sparkline with CI
// band per metric, changepoints marked) over an aligned summary table.
// It reuses the obs report view-model, so HTML and text output can never
// disagree about content, and both are byte-deterministic for a fixed
// ledger.
func TrendReport(entries []Entry) *obs.Report {
	series := Trend(entries)
	r := &obs.Report{Title: fmt.Sprintf("perf trend: %d ledger entries", len(entries))}
	first, last := entries[0], entries[len(entries)-1]
	r.KV = [][2]string{
		{"commits", shortCommit(first.Commit) + " -> " + shortCommit(last.Commit)},
		{"span", first.Timestamp + " -> " + last.Timestamp},
		{"series", strconv.Itoa(len(series))},
	}
	if last.GoVersion != "" {
		r.KV = append(r.KV, [2]string{"go", last.GoVersion})
	}
	if last.CPU != "" {
		r.KV = append(r.KV, [2]string{"cpu", last.CPU})
	}

	if worst := WorstRegressions(series); len(worst) > 0 {
		r.Tables = append(r.Tables, worstTable(worst))
	}
	for _, bench := range benchOrder(series) {
		group := benchSeries(series, bench)
		r.Tables = append(r.Tables, timelineTable(bench, group))
	}
	return r
}

func worstTable(worst []Regression) obs.ReportTable {
	t := obs.ReportTable{
		Title: "Worst regressions (last entry vs previous)",
		Note:  "metrics that grew between the two most recent ledger entries; significant = the 95% CIs do not overlap",
		Head:  []string{"benchmark", "metric", "prev", "last", "delta", "significant"},
		Num:   []bool{false, false, true, true, true, false},
	}
	for i, w := range worst {
		if i == maxWorstRows {
			t.Note += fmt.Sprintf(" (%d more omitted)", len(worst)-maxWorstRows)
			break
		}
		sig := "no"
		if w.Significant {
			sig = "yes"
		}
		t.Rows = append(t.Rows, []string{
			w.Bench, w.Metric, fmtVal(w.From.Dist.Mean), fmtVal(w.To.Dist.Mean),
			fmt.Sprintf("%+.1f%%", w.Pct), sig,
		})
	}
	return t
}

// benchOrder returns the distinct benchmark names in series order.
func benchOrder(series []Series) []string {
	var order []string
	seen := map[string]bool{}
	for _, s := range series {
		if !seen[s.Bench] {
			seen[s.Bench] = true
			order = append(order, s.Bench)
		}
	}
	return order
}

func benchSeries(series []Series, bench string) []Series {
	var out []Series
	for _, s := range series {
		if s.Bench == bench {
			out = append(out, s)
		}
	}
	return out
}

func timelineTable(bench string, group []Series) obs.ReportTable {
	t := obs.ReportTable{
		Title:  "Timeline: " + bench,
		Head:   []string{"metric", "points", "first", "last", "delta", "changepoints"},
		Num:    []bool{false, true, true, true, true, false},
		Figure: sparklines(group),
	}
	for _, s := range group {
		firstD, lastD := s.Points[0].Dist, s.Last().Dist
		delta := "-"
		if firstD.Mean != 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(lastD.Mean-firstD.Mean)/firstD.Mean)
		}
		steps := "-"
		if len(s.Changepoints) > 0 {
			marks := make([]string, len(s.Changepoints))
			for i, cp := range s.Changepoints {
				marks[i] = "@" + shortCommit(s.Points[cp].Commit)
			}
			steps = strings.Join(marks, " ")
		}
		t.Rows = append(t.Rows, []string{
			s.Metric, strconv.Itoa(len(s.Points)), fmtVal(firstD.Mean), fmtVal(lastD.Mean), delta, steps,
		})
	}
	return t
}

// sparklines renders one benchmark's metrics as an SVG small-multiples
// figure: per metric a label, a sparkline of the mean with its 95% CI
// band, changepoint marks, and the last value. Each row scales its own
// y-axis (metrics differ by orders of magnitude); x is the ledger index,
// evenly spaced.
func sparklines(group []Series) template.HTML {
	width := sparkLabelW + sparkPlotW + sparkValueW
	height := sparkRowH * len(group)
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img">`,
		width, height, width, height)
	for row, s := range group {
		top := float64(row * sparkRowH)
		lo, hi := yRange(s.Points)
		// y maps value v into this row's padded band, larger = higher.
		y := func(v float64) float64 {
			frac := (v - lo) / (hi - lo)
			return top + float64(sparkRowH-sparkPad) - frac*float64(sparkRowH-2*sparkPad)
		}
		x := func(i int) float64 {
			if len(s.Points) == 1 {
				return sparkLabelW + float64(sparkPlotW)/2
			}
			return sparkLabelW + float64(i)*float64(sparkPlotW-12)/float64(len(s.Points)-1) + 6
		}
		// CI band: upper bounds left to right, then lower bounds back.
		if len(s.Points) > 1 {
			var pts []string
			for i, p := range s.Points {
				pts = append(pts, coord(x(i))+","+coord(y(p.Dist.CIHigh)))
			}
			for i := len(s.Points) - 1; i >= 0; i-- {
				pts = append(pts, coord(x(i))+","+coord(y(s.Points[i].Dist.CILow)))
			}
			fmt.Fprintf(&sb, `<polygon points="%s" fill="%s"/>`, strings.Join(pts, " "), colBand)
			var line []string
			for i, p := range s.Points {
				line = append(line, coord(x(i))+","+coord(y(p.Dist.Mean)))
			}
			fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`,
				strings.Join(line, " "), colLine)
		}
		for i, p := range s.Points {
			r := "2.5"
			fill := colLine
			title := fmt.Sprintf("%s @ %s: %s", s.Metric, shortCommit(p.Commit), fmtVal(p.Dist.Mean))
			if hasStep(s.Changepoints, i) {
				r, fill = "4", colStep
				title += " (changepoint)"
			}
			fmt.Fprintf(&sb, `<circle cx="%s" cy="%s" r="%s" fill="%s"><title>%s</title></circle>`,
				coord(x(i)), coord(y(p.Dist.Mean)), r, fill, template.HTMLEscapeString(title))
		}
		fmt.Fprintf(&sb, `<text x="0" y="%s" font-size="11" font-family="system-ui,sans-serif" fill="%s">%s</text>`,
			coord(top+float64(sparkRowH)/2+4), colInkDim, template.HTMLEscapeString(s.Metric))
		fmt.Fprintf(&sb, `<text x="%d" y="%s" font-size="11" font-family="system-ui,sans-serif" fill="%s" text-anchor="end">%s</text>`,
			width, coord(top+float64(sparkRowH)/2+4), colInk, template.HTMLEscapeString(fmtVal(s.Last().Dist.Mean)))
	}
	sb.WriteString(`</svg>`)
	return template.HTML(sb.String())
}

// yRange spans every point's CI, padded so a flat series still draws
// mid-band instead of degenerating to a zero-height scale.
func yRange(points []Point) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, p := range points {
		lo = math.Min(lo, p.Dist.CILow)
		hi = math.Max(hi, p.Dist.CIHigh)
	}
	if lo == hi {
		pad := math.Abs(lo) / 2
		if pad == 0 {
			pad = 1
		}
		lo, hi = lo-pad, hi+pad
	}
	return lo, hi
}

func hasStep(steps []int, i int) bool {
	j := sort.SearchInts(steps, i)
	return j < len(steps) && steps[j] == i
}

// coord formats an SVG coordinate with one fixed decimal — deterministic
// and fine-grained enough at sparkline scale.
func coord(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// fmtVal renders a metric value compactly (same contract as benchdiff's
// num): integers bare, large values without fractions, small ones with 4
// significant digits.
func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	if math.Abs(v) >= 1000 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

func shortCommit(c string) string {
	if len(c) > 7 {
		return c[:7]
	}
	return c
}

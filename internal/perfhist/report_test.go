package perfhist

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

var update = flag.Bool("update", false, "rewrite the golden trend files")

// testLedger is a synthetic four-entry ledger: two benchmarks, one with
// a custom metric, a genuine 40% step at the third entry, and a recent
// noise-only wobble — enough to exercise every table and the sparkline
// figure.
func testLedger() []Entry {
	mk := func(commit, ts string, execNs, buildNs []float64, ratio []float64) Entry {
		exec := benchfmt.Benchmark{Name: "BenchmarkCompressedExecution",
			NsPerOp: benchfmt.NewDist(execNs).Mean,
			Samples: map[string][]float64{benchfmt.MetricNs: execNs}}
		if ratio != nil {
			exec.Metrics = map[string]float64{"compressed_vs_native_ratio": benchfmt.NewDist(ratio).Mean}
			exec.Samples["compressed_vs_native_ratio"] = ratio
		}
		build := benchfmt.Benchmark{Name: "BenchmarkDictionaryBuild",
			NsPerOp: benchfmt.NewDist(buildNs).Mean,
			Samples: map[string][]float64{benchfmt.MetricNs: buildNs}}
		return Entry{
			Schema: SchemaVersion, Commit: commit, Timestamp: ts,
			GoVersion: "go1.24.0", CPU: "Test CPU @ 2.10GHz",
			Report: &benchfmt.Report{Goos: "linux", Goarch: "amd64", Pkg: "repro",
				CPU: "Test CPU @ 2.10GHz", Benchmarks: []benchfmt.Benchmark{exec, build}},
		}
	}
	return []Entry{
		mk("1111111aaaaaaaa", "2026-08-01T10:00:00Z",
			[]float64{1300, 1310, 1305}, []float64{900, 905, 910}, []float64{1.48, 1.49, 1.50}),
		mk("2222222bbbbbbbb", "2026-08-02T10:00:00Z",
			[]float64{1290, 1300, 1295}, []float64{902, 907, 912}, []float64{1.47, 1.48, 1.49}),
		mk("3333333cccccccc", "2026-08-03T10:00:00Z",
			[]float64{780, 785, 782}, []float64{905, 910, 915}, []float64{1.04, 1.05, 1.06}),
		mk("4444444dddddddd", "2026-08-04T10:00:00Z",
			[]float64{781, 786, 790}, []float64{930, 980, 1010}, []float64{1.05, 1.06, 1.07}),
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/perfhist -update` to create goldens)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden; rerun with -update if intended\n got: %q\nwant: %q",
			name, got, string(want))
	}
}

func TestTrendReportGolden(t *testing.T) {
	r := TrendReport(testLedger())
	var html, text strings.Builder
	if err := r.WriteHTML(&html); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trend.html", html.String())
	checkGolden(t, "trend.txt", text.String())
}

// TestTrendReportDeterministic renders the same ledger repeatedly —
// map iteration anywhere in the pipeline would flake this.
func TestTrendReportDeterministic(t *testing.T) {
	var first string
	for i := 0; i < 10; i++ {
		var html strings.Builder
		if err := TrendReport(testLedger()).WriteHTML(&html); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = html.String()
		} else if html.String() != first {
			t.Fatalf("render %d differs from render 0", i)
		}
	}
}

func TestTrendReportContent(t *testing.T) {
	r := TrendReport(testLedger())
	var html strings.Builder
	if err := r.WriteHTML(&html); err != nil {
		t.Fatal(err)
	}
	out := html.String()
	for _, want := range []string{
		"perf trend: 4 ledger entries",
		"1111111 -&gt; 4444444",    // commit span (escaped arrow)
		"Worst regressions",        // build slowed in the last entry
		"BenchmarkDictionaryBuild", // ...namely this one
		"Timeline: BenchmarkCompressedExecution",
		"compressed_vs_native_ratio", // custom metric series
		"<svg",                       // the sparkline figure made it into HTML
		"#2a78d6",                    // mean line color
		"#cde2fb",                    // CI band color
		"#e34948",                    // changepoint mark: the 40% exec step
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML output missing %q", want)
		}
	}
	// Text output carries the same tables but no figure markup.
	var text strings.Builder
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text.String(), "<svg") {
		t.Error("text output leaked SVG markup")
	}
	if !strings.Contains(text.String(), "Timeline: BenchmarkCompressedExecution") {
		t.Error("text output missing timeline table")
	}
}

package perfhist

import (
	"math"
	"sort"

	"repro/internal/benchfmt"
)

// minStepShift is the minimum relative mean movement a changepoint needs
// on top of disjoint confidence intervals. Single-sample entries have
// degenerate (zero-width) CIs, so without a floor every jitter between
// two such entries would flag; 2% is well under any shift the repo has
// ever cared about and well over formatting noise.
const minStepShift = 0.02

// Point is one ledger entry's observation of a metric.
type Point struct {
	// Index is the entry's position in the ledger (0-based).
	Index     int
	Commit    string
	Timestamp string
	Dist      benchfmt.Dist
}

// Series is one (benchmark, metric) time series across the ledger.
type Series struct {
	Bench  string
	Metric string

	// Points holds one observation per ledger entry that carries the
	// metric, in ledger order.
	Points []Point

	// Changepoints are positions in Points (not ledger indices) where a
	// step landed: the mean moved by at least minStepShift relative to
	// the previous point and the two 95% CIs do not overlap.
	Changepoints []int
}

// Last returns the most recent point.
func (s *Series) Last() Point { return s.Points[len(s.Points)-1] }

// Trend computes every (benchmark, metric) time series a ledger holds:
// ns/op plus each custom metric, ordered by benchmark then metric name.
// This is the query the render layer (cmd/cctrend) and the EXPERIMENTS
// trajectory tables are built on.
func Trend(entries []Entry) []Series {
	type key struct{ bench, metric string }
	byKey := map[key]*Series{}
	var order []key
	for idx, e := range entries {
		for bi := range e.Report.Benchmarks {
			b := &e.Report.Benchmarks[bi]
			metrics := []string{benchfmt.MetricNs}
			names := make([]string, 0, len(b.Metrics))
			for m := range b.Metrics {
				names = append(names, m)
			}
			sort.Strings(names)
			metrics = append(metrics, names...)
			for _, m := range metrics {
				d, ok := b.Dist(m)
				if !ok {
					continue
				}
				k := key{b.Name, m}
				s := byKey[k]
				if s == nil {
					s = &Series{Bench: b.Name, Metric: m}
					byKey[k] = s
					order = append(order, k)
				}
				s.Points = append(s.Points, Point{
					Index: idx, Commit: e.Commit, Timestamp: e.Timestamp, Dist: d,
				})
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].bench != order[j].bench {
			return order[i].bench < order[j].bench
		}
		return order[i].metric < order[j].metric
	})
	out := make([]Series, 0, len(order))
	for _, k := range order {
		s := byKey[k]
		s.Changepoints = detectSteps(s.Points)
		out = append(out, *s)
	}
	return out
}

// detectSteps flags point i when the mean stepped relative to point i-1:
// the movement exceeds minStepShift of the previous mean AND the two 95%
// confidence intervals are disjoint. CI overlap is the noise guard — two
// multi-sample runs whose intervals cross are indistinguishable, however
// far apart their means drifted — which makes this the simple
// step-detection variant of changepoint analysis: it finds level shifts,
// by construction never flagging inside a noise band.
func detectSteps(points []Point) []int {
	var steps []int
	for i := 1; i < len(points); i++ {
		prev, cur := points[i-1].Dist, points[i].Dist
		var shift float64
		if prev.Mean != 0 {
			shift = math.Abs(cur.Mean-prev.Mean) / math.Abs(prev.Mean)
		} else if cur.Mean != 0 {
			shift = 1
		}
		if shift >= minStepShift && !cur.Overlaps(prev) {
			steps = append(steps, i)
		}
	}
	return steps
}

// Regression is one series' movement between its last two points.
type Regression struct {
	Bench  string
	Metric string
	From   Point // second-to-last point
	To     Point // last point
	Pct    float64

	// Significant is true when the two points' 95% CIs are disjoint —
	// the movement is distinguishable from noise.
	Significant bool
}

// WorstRegressions ranks every series that grew between its last two
// points (growth is always the bad direction for the tracked metrics),
// worst first; ties break by benchmark then metric name so the table is
// deterministic.
func WorstRegressions(series []Series) []Regression {
	var out []Regression
	for i := range series {
		s := &series[i]
		if len(s.Points) < 2 {
			continue
		}
		from, to := s.Points[len(s.Points)-2], s.Points[len(s.Points)-1]
		if from.Dist.Mean == 0 || to.Dist.Mean <= from.Dist.Mean {
			continue
		}
		out = append(out, Regression{
			Bench: s.Bench, Metric: s.Metric, From: from, To: to,
			Pct:         100 * (to.Dist.Mean - from.Dist.Mean) / from.Dist.Mean,
			Significant: !to.Dist.Overlaps(from.Dist),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pct != out[j].Pct {
			return out[i].Pct > out[j].Pct
		}
		if out[i].Bench != out[j].Bench {
			return out[i].Bench < out[j].Bench
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// Package pipeline is a simple in-order timing model over the machine
// simulator: one cycle per instruction, a flush penalty per taken branch,
// a decode penalty per dictionary-expanded instruction (the variable-
// length decoder of §2.1's "decode efficiency" discussion), and a miss
// penalty per instruction-cache miss. It quantifies the paper's central
// trade — "the ability to compress instruction code is important, even at
// the cost of execution speed" — and where that cost flips into a win.
package pipeline

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/machine"
)

// Config parameterizes the model.
type Config struct {
	// BranchPenalty is the flush cost of a taken branch.
	BranchPenalty int64
	// ExpandPenalty is the extra decode cost per dictionary-expanded
	// instruction (0 for the normal fetch path).
	ExpandPenalty int64
	// MissPenalty is the refill cost per I-cache miss.
	MissPenalty int64
	// ICache sizes the instruction cache fed by the fetch trace.
	ICache cache.Config
}

// DefaultConfig is a small embedded core: 2-cycle taken-branch penalty,
// 1-cycle variable-length decode penalty, 1KB direct-mapped cache.
func DefaultConfig(missPenalty int64) Config {
	return Config{
		BranchPenalty: 2,
		ExpandPenalty: 1,
		MissPenalty:   missPenalty,
		ICache:        cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 1},
	}
}

// Report is the outcome of one timed run.
type Report struct {
	Cycles        int64
	Steps         int64
	TakenBranches int64
	Expanded      int64
	Misses        int64
}

// CPI is cycles per instruction.
func (r Report) CPI() float64 {
	if r.Steps == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Steps)
}

// Measure runs the CPU to completion under the model. The CPU must be
// freshly constructed (its fetch trace is consumed here).
func Measure(cpu *machine.CPU, cfg Config, maxSteps int64) (Report, error) {
	ic, err := cache.New(cfg.ICache)
	if err != nil {
		return Report{}, err
	}
	cpu.TraceFetch = ic.Access
	if _, err := cpu.Run(maxSteps); err != nil {
		return Report{}, fmt.Errorf("pipeline: %w", err)
	}
	r := Report{
		Steps:         cpu.Stats.Steps,
		TakenBranches: cpu.Stats.TakenBranches,
		Expanded:      cpu.Stats.Expanded,
		Misses:        ic.Stats.Misses,
	}
	r.Cycles = r.Steps +
		cfg.BranchPenalty*r.TakenBranches +
		cfg.ExpandPenalty*r.Expanded +
		cfg.MissPenalty*r.Misses
	return r, nil
}

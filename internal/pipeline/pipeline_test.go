package pipeline

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/synth"
)

func TestMeasureAccounting(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := machine.NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(10)
	r, err := Measure(cpu, cfg, 200_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Steps + cfg.BranchPenalty*r.TakenBranches + cfg.ExpandPenalty*r.Expanded + cfg.MissPenalty*r.Misses
	if r.Cycles != want {
		t.Fatalf("cycles %d, want %d", r.Cycles, want)
	}
	if r.Expanded != 0 {
		t.Fatalf("normal path reported %d expansions", r.Expanded)
	}
	if r.CPI() < 1 {
		t.Fatalf("CPI %f below 1", r.CPI())
	}
}

func TestCompressedPaysDecodeAndSavesMisses(t *testing.T) {
	p, err := synth.Generate("li")
	if err != nil {
		t.Fatal(err)
	}
	img, err := core.Compress(p.Clone(), core.Options{Scheme: codeword.Nibble})
	if err != nil {
		t.Fatal(err)
	}
	measure := func(mk func() (*machine.CPU, error), miss int64) Report {
		cpu, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		r, err := Measure(cpu, DefaultConfig(miss), 200_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	native := func() (*machine.CPU, error) { return machine.NewForProgram(p) }
	comp := func() (*machine.CPU, error) { return core.NewMachine(img) }

	// With free memory the compressed path can only lose (decode penalty).
	n0, c0 := measure(native, 0), measure(comp, 0)
	if c0.Cycles < n0.Cycles {
		t.Fatalf("compression faster with free memory: %d vs %d", c0.Cycles, n0.Cycles)
	}
	if c0.Expanded == 0 {
		t.Fatal("compressed run reported no expansions")
	}
	// With expensive memory the miss savings dominate.
	n50, c50 := measure(native, 50), measure(comp, 50)
	if c50.Cycles >= n50.Cycles {
		t.Fatalf("compression not faster at 50-cycle misses: %d vs %d", c50.Cycles, n50.Cycles)
	}
	if c50.Misses >= n50.Misses {
		t.Fatalf("compressed image missed more: %d vs %d", c50.Misses, n50.Misses)
	}
}

func TestMeasureBadCache(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := machine.NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.ICache = cache.Config{SizeBytes: 7, LineBytes: 3}
	if _, err := Measure(cpu, cfg, 1000); err == nil {
		t.Fatal("bad cache config accepted")
	}
}

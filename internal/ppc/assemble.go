package ppc

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses one instruction in the exact syntax Disassemble emits —
// standard PowerPC mnemonics including the simplified forms — and returns
// the encoded word. Assemble(Disassemble(w)) == w for every word that
// decodes under the subset, and ".long 0x…" round-trips arbitrary words.
func Assemble(src string) (uint32, error) {
	src = strings.TrimSpace(src)
	if src == "" {
		return 0, fmt.Errorf("ppc: empty instruction")
	}
	var mnem, rest string
	if i := strings.IndexAny(src, " \t"); i >= 0 {
		mnem, rest = src[:i], strings.TrimSpace(src[i+1:])
	} else {
		mnem = src
	}
	var ops []string
	if rest != "" {
		ops = strings.Split(rest, ",")
		for i := range ops {
			ops[i] = strings.TrimSpace(ops[i])
		}
	}
	w, err := assembleSafe(mnem, ops)
	if err != nil {
		return 0, fmt.Errorf("ppc: %q: %w", src, err)
	}
	return w, nil
}

// assembleSafe converts Encode's out-of-range panics (programming-error
// guards when driven from builders) into ordinary parse errors.
func assembleSafe(mnem string, ops []string) (w uint32, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return assembleOp(mnem, ops)
}

// AssembleAll parses one instruction per line, skipping blank lines and
// '#' comments.
func AssembleAll(src string) ([]uint32, error) {
	var out []uint32
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		w, err := Assemble(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		out = append(out, w)
	}
	return out, nil
}

// Operand parsers.

func parseReg(s string) (uint8, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseCR(s string) (uint8, error) {
	if !strings.HasPrefix(s, "cr") {
		return 0, fmt.Errorf("expected condition field, got %q", s)
	}
	n, err := strconv.Atoi(s[2:])
	if err != nil || n < 0 || n > 7 {
		return 0, fmt.Errorf("bad condition field %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -1<<31 || v > 1<<32-1 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}

// parseDisp handles the ".+0x10" / ".-0x10" relative-displacement syntax.
func parseDisp(s string) (int32, error) {
	if strings.HasPrefix(s, ".+") {
		v, err := strconv.ParseUint(s[2:], 0, 32)
		if err != nil {
			return 0, fmt.Errorf("bad displacement %q", s)
		}
		return int32(v), nil
	}
	if strings.HasPrefix(s, ".-") {
		v, err := strconv.ParseUint(s[2:], 0, 32)
		if err != nil {
			return 0, fmt.Errorf("bad displacement %q", s)
		}
		return -int32(v), nil
	}
	return 0, fmt.Errorf("bad displacement %q (want .+0x… or .-0x…)", s)
}

// parseMem handles the "d(rA)" addressing syntax.
func parseMem(s string) (int32, uint8, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("expected d(rA), got %q", s)
	}
	d, err := parseImm(s[:open])
	if err != nil {
		return 0, 0, err
	}
	ra, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return d, ra, nil
}

func needOps(ops []string, n int) error {
	if len(ops) != n {
		return fmt.Errorf("expected %d operands, got %d", n, len(ops))
	}
	return nil
}

func assembleOp(mnem string, ops []string) (uint32, error) {
	rc := false
	base := mnem
	// A trailing dot marks the record-condition form; andi. is inherently
	// recording and handled explicitly.
	if strings.HasSuffix(mnem, ".") && mnem != "andi." && mnem != ".long" {
		rc = true
		base = strings.TrimSuffix(mnem, ".")
	}
	withRc := func(w uint32, err error) (uint32, error) {
		if err != nil {
			return 0, err
		}
		if rc {
			w |= 1
		}
		return w, nil
	}

	switch base {
	case ".long":
		if err := needOps(ops, 1); err != nil {
			return 0, err
		}
		v, err := strconv.ParseUint(ops[0], 0, 32)
		if err != nil {
			return 0, fmt.Errorf("bad word %q", ops[0])
		}
		return uint32(v), nil

	case "nop":
		if err := needOps(ops, 0); err != nil {
			return 0, err
		}
		return Nop(), nil
	case "sc":
		if err := needOps(ops, 0); err != nil {
			return 0, err
		}
		return Sc(), nil
	case "blr", "blrl", "bctr", "bctrl":
		if err := needOps(ops, 0); err != nil {
			return 0, err
		}
		switch base {
		case "blr":
			return Blr(), nil
		case "blrl":
			return Encode(Inst{Op: OpBclr, BO: BoAlways, LK: true}), nil
		case "bctr":
			return Bctr(), nil
		default:
			return Bctrl(), nil
		}

	case "li", "lis":
		return asmRI(base, ops)
	case "addi", "addis":
		return asmRRI(base, ops)
	case "ori", "oris", "xori", "andi.":
		return asmLogicalImm(mnem, ops)
	case "mr":
		if err := needOps(ops, 2); err != nil {
			return 0, err
		}
		ra, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		return Mr(ra, rs), nil

	case "cmpwi", "cmplwi":
		if err := needOps(ops, 3); err != nil {
			return 0, err
		}
		crf, err := parseCR(ops[0])
		if err != nil {
			return 0, err
		}
		ra, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		imm, err := parseImm(ops[2])
		if err != nil {
			return 0, err
		}
		if base == "cmpwi" {
			return Cmpwi(crf, ra, imm), nil
		}
		return Cmplwi(crf, ra, imm), nil
	case "cmpw", "cmplw":
		if err := needOps(ops, 3); err != nil {
			return 0, err
		}
		crf, err := parseCR(ops[0])
		if err != nil {
			return 0, err
		}
		ra, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		rb, err := parseReg(ops[2])
		if err != nil {
			return 0, err
		}
		if base == "cmpw" {
			return Cmpw(crf, ra, rb), nil
		}
		return Cmplw(crf, ra, rb), nil

	case "lwz", "lbz", "lhz", "stw", "stb", "sth", "stwu", "lmw", "stmw":
		return asmMem(base, ops)
	case "lwzx", "stwx", "lbzx", "lhzx", "stbx", "sthx":
		return asmRRR3(base, ops, false)

	case "add", "subf", "mullw", "divw":
		return withRc(asmRRR3(base, ops, false))
	case "and", "or", "xor", "nor", "slw", "srw", "sraw":
		return withRc(asmRRR3(base, ops, true))
	case "neg":
		if err := needOps(ops, 2); err != nil {
			return 0, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		ra, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		return withRc(Neg(rd, ra), nil)
	case "extsb", "extsh":
		if err := needOps(ops, 2); err != nil {
			return 0, err
		}
		ra, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		if base == "extsb" {
			return withRc(Extsb(ra, rs), nil)
		}
		return withRc(Extsh(ra, rs), nil)
	case "srawi":
		if err := needOps(ops, 3); err != nil {
			return 0, err
		}
		ra, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		sh, err := parseImm(ops[2])
		if err != nil {
			return 0, err
		}
		return withRc(Srawi(ra, rs, uint8(sh&31)), nil)

	case "rlwinm":
		if err := needOps(ops, 5); err != nil {
			return 0, err
		}
		ra, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		var f [3]uint8
		for i := 0; i < 3; i++ {
			v, err := parseImm(ops[2+i])
			if err != nil {
				return 0, err
			}
			f[i] = uint8(v & 31)
		}
		return withRc(Rlwinm(ra, rs, f[0], f[1], f[2]), nil)
	case "clrlwi", "slwi", "srwi":
		if err := needOps(ops, 3); err != nil {
			return 0, err
		}
		ra, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		n, err := parseImm(ops[2])
		if err != nil {
			return 0, err
		}
		var w uint32
		switch base {
		case "clrlwi":
			w = Clrlwi(ra, rs, uint8(n&31))
		case "slwi":
			w = Slwi(ra, rs, uint8(n&31))
		default:
			w = Srwi(ra, rs, uint8(n&31))
		}
		return withRc(w, nil)

	case "b", "bl", "ba", "bla":
		return asmBranchI(base, ops)
	case "blt", "bgt", "beq", "bge", "ble", "bne",
		"bltl", "bgtl", "beql", "bgel", "blel", "bnel":
		return asmBranchCond(base, ops)
	case "bdnz", "bdnzl":
		if err := needOps(ops, 1); err != nil {
			return 0, err
		}
		d, err := parseDisp(ops[0])
		if err != nil {
			return 0, err
		}
		return Encode(Inst{Op: OpBc, BO: BoDnz, Imm: d, LK: base == "bdnzl"}), nil
	case "bc", "bcl", "bca", "bcla":
		if err := needOps(ops, 3); err != nil {
			return 0, err
		}
		bo, err := parseImm(ops[0])
		if err != nil {
			return 0, err
		}
		bi, err := parseImm(ops[1])
		if err != nil {
			return 0, err
		}
		aa := base == "bca" || base == "bcla"
		lk := base == "bcl" || base == "bcla"
		var d int32
		if aa {
			v, err := strconv.ParseUint(ops[2], 0, 32)
			if err != nil || v&3 != 0 {
				return 0, fmt.Errorf("bad absolute target %q", ops[2])
			}
			d = signExt(uint32(v)>>2&0x3FFF, 14) << 2
		} else {
			d, err = parseDisp(ops[2])
			if err != nil {
				return 0, err
			}
		}
		return Encode(Inst{Op: OpBc, BO: uint8(bo & 31), BI: uint8(bi & 31), Imm: d, AA: aa, LK: lk}), nil
	case "bclr", "bclrl", "bcctr", "bcctrl":
		if err := needOps(ops, 2); err != nil {
			return 0, err
		}
		bo, err := parseImm(ops[0])
		if err != nil {
			return 0, err
		}
		bi, err := parseImm(ops[1])
		if err != nil {
			return 0, err
		}
		op := OpBclr
		if strings.HasPrefix(base, "bcctr") {
			op = OpBcctr
		}
		return Encode(Inst{Op: op, BO: uint8(bo & 31), BI: uint8(bi & 31), LK: strings.HasSuffix(base, "l") && base != "bclr"}), nil

	case "mflr", "mtlr", "mfctr", "mtctr":
		if err := needOps(ops, 1); err != nil {
			return 0, err
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		switch base {
		case "mflr":
			return Mflr(r), nil
		case "mtlr":
			return Mtlr(r), nil
		case "mfctr":
			return Mfctr(r), nil
		default:
			return Mtctr(r), nil
		}
	case "mfspr":
		if err := needOps(ops, 2); err != nil {
			return 0, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		spr, err := parseImm(ops[1])
		if err != nil {
			return 0, err
		}
		return Encode(Inst{Op: OpMfspr, RT: rd, SPR: uint16(spr)}), nil
	case "mtspr":
		if err := needOps(ops, 2); err != nil {
			return 0, err
		}
		spr, err := parseImm(ops[0])
		if err != nil {
			return 0, err
		}
		rs, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		return Encode(Inst{Op: OpMtspr, RT: rs, SPR: uint16(spr)}), nil
	}
	return 0, fmt.Errorf("unknown mnemonic %q", mnem)
}

func asmRI(base string, ops []string) (uint32, error) {
	if err := needOps(ops, 2); err != nil {
		return 0, err
	}
	rd, err := parseReg(ops[0])
	if err != nil {
		return 0, err
	}
	imm, err := parseImm(ops[1])
	if err != nil {
		return 0, err
	}
	if base == "li" {
		return Li(rd, imm), nil
	}
	return Lis(rd, imm), nil
}

func asmRRI(base string, ops []string) (uint32, error) {
	if err := needOps(ops, 3); err != nil {
		return 0, err
	}
	rd, err := parseReg(ops[0])
	if err != nil {
		return 0, err
	}
	ra, err := parseReg(ops[1])
	if err != nil {
		return 0, err
	}
	imm, err := parseImm(ops[2])
	if err != nil {
		return 0, err
	}
	switch base {
	case "addi":
		return Addi(rd, ra, imm), nil
	case "addis":
		return Addis(rd, ra, imm), nil
	}
	return 0, fmt.Errorf("unsupported %q", base)
}

func asmLogicalImm(mnem string, ops []string) (uint32, error) {
	if err := needOps(ops, 3); err != nil {
		return 0, err
	}
	ra, err := parseReg(ops[0])
	if err != nil {
		return 0, err
	}
	rs, err := parseReg(ops[1])
	if err != nil {
		return 0, err
	}
	imm, err := parseImm(ops[2])
	if err != nil {
		return 0, err
	}
	switch mnem {
	case "ori":
		return Ori(ra, rs, imm), nil
	case "oris":
		return Oris(ra, rs, imm), nil
	case "xori":
		return Xori(ra, rs, imm), nil
	case "andi.":
		return AndiRc(ra, rs, imm), nil
	}
	return 0, fmt.Errorf("unsupported %q", mnem)
}

func asmMem(base string, ops []string) (uint32, error) {
	if err := needOps(ops, 2); err != nil {
		return 0, err
	}
	rt, err := parseReg(ops[0])
	if err != nil {
		return 0, err
	}
	d, ra, err := parseMem(ops[1])
	if err != nil {
		return 0, err
	}
	ops2 := map[string]Op{
		"lwz": OpLwz, "lbz": OpLbz, "lhz": OpLhz, "stw": OpStw,
		"stb": OpStb, "sth": OpSth, "stwu": OpStwu, "lmw": OpLmw, "stmw": OpStmw,
	}
	op, ok := ops2[base]
	if !ok {
		return 0, fmt.Errorf("unsupported %q", base)
	}
	return Encode(Inst{Op: op, RT: rt, RA: ra, Imm: d}), nil
}

// asmRRR3 parses three-register forms. logical selects the RA,RS,RB
// operand order used by and/or/xor/…; otherwise RT,RA,RB.
func asmRRR3(base string, ops []string, logical bool) (uint32, error) {
	if err := needOps(ops, 3); err != nil {
		return 0, err
	}
	var regs [3]uint8
	for i := range regs {
		r, err := parseReg(ops[i])
		if err != nil {
			return 0, err
		}
		regs[i] = r
	}
	if logical {
		switch base {
		case "and":
			return And(regs[0], regs[1], regs[2]), nil
		case "or":
			return Or(regs[0], regs[1], regs[2]), nil
		case "xor":
			return Xor(regs[0], regs[1], regs[2]), nil
		case "nor":
			return Nor(regs[0], regs[1], regs[2]), nil
		case "slw":
			return Slw(regs[0], regs[1], regs[2]), nil
		case "srw":
			return Srw(regs[0], regs[1], regs[2]), nil
		case "sraw":
			return Sraw(regs[0], regs[1], regs[2]), nil
		}
		return 0, fmt.Errorf("unsupported %q", base)
	}
	switch base {
	case "add":
		return Add(regs[0], regs[1], regs[2]), nil
	case "subf":
		return Subf(regs[0], regs[1], regs[2]), nil
	case "mullw":
		return Mullw(regs[0], regs[1], regs[2]), nil
	case "divw":
		return Divw(regs[0], regs[1], regs[2]), nil
	case "lwzx":
		return Lwzx(regs[0], regs[1], regs[2]), nil
	case "stwx":
		return Stwx(regs[0], regs[1], regs[2]), nil
	case "lbzx":
		return Lbzx(regs[0], regs[1], regs[2]), nil
	case "lhzx":
		return Lhzx(regs[0], regs[1], regs[2]), nil
	case "stbx":
		return Stbx(regs[0], regs[1], regs[2]), nil
	case "sthx":
		return Sthx(regs[0], regs[1], regs[2]), nil
	}
	return 0, fmt.Errorf("unsupported %q", base)
}

func asmBranchI(base string, ops []string) (uint32, error) {
	if err := needOps(ops, 1); err != nil {
		return 0, err
	}
	lk := base == "bl" || base == "bla"
	aa := base == "ba" || base == "bla"
	if aa {
		v, err := strconv.ParseUint(ops[0], 0, 32)
		if err != nil {
			return 0, fmt.Errorf("bad absolute target %q", ops[0])
		}
		if v&3 != 0 {
			return 0, fmt.Errorf("unaligned absolute target %q", ops[0])
		}
		return Encode(Inst{Op: OpB, Imm: signExt(uint32(v)>>2&0xFFFFFF, 24) << 2, AA: true, LK: lk}), nil
	}
	d, err := parseDisp(ops[0])
	if err != nil {
		return 0, err
	}
	return Encode(Inst{Op: OpB, Imm: d, LK: lk}), nil
}

func asmBranchCond(base string, ops []string) (uint32, error) {
	if err := needOps(ops, 2); err != nil {
		return 0, err
	}
	lk := strings.HasSuffix(base, "l") && base != "bl"
	name := strings.TrimSuffix(base, "l")
	crf, err := parseCR(ops[0])
	if err != nil {
		return 0, err
	}
	d, err := parseDisp(ops[1])
	if err != nil {
		return 0, err
	}
	var bo, bit uint8
	switch name {
	case "blt":
		bo, bit = BoTrue, CrLT
	case "bgt":
		bo, bit = BoTrue, CrGT
	case "beq":
		bo, bit = BoTrue, CrEQ
	case "bge":
		bo, bit = BoFalse, CrLT
	case "ble":
		bo, bit = BoFalse, CrGT
	case "bne":
		bo, bit = BoFalse, CrEQ
	default:
		return 0, fmt.Errorf("unsupported %q", base)
	}
	return Encode(Inst{Op: OpBc, BO: bo, BI: crf*4 + bit, Imm: d, LK: lk}), nil
}

package ppc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAssembleDisassembleQuick is the headline property: for every word
// that decodes under the subset, assembling its disassembly reproduces the
// word bit for bit.
func TestAssembleDisassembleQuick(t *testing.T) {
	f := func(w uint32) bool {
		if !Valid(w) {
			return true
		}
		s := Disassemble(w)
		back, err := Assemble(s)
		if err != nil {
			t.Logf("Assemble(%q) from %08x: %v", s, w, err)
			return false
		}
		if back != w {
			t.Logf("%08x -> %q -> %08x", w, s, back)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50000, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAssembleBuilders round-trips every builder-constructed instruction,
// covering forms random words hit rarely.
func TestAssembleBuilders(t *testing.T) {
	words := []uint32{
		Addi(3, 4, -12), Li(9, 200), Lis(12, 0x7fff), Addis(5, 6, -1),
		Ori(4, 5, 0xffff), Oris(4, 5, 0x1234), AndiRc(7, 8, 0xff), Xori(1, 2, 3),
		Nop(), Cmpwi(1, 0, 8), Cmplwi(1, 11, 7), Cmpw(0, 3, 4), Cmplw(7, 30, 31),
		Lwz(9, 4, 28), Lbz(9, 0, 28), Lhz(3, -2, 1), Stw(18, 0, 28), Stb(18, 0, 28),
		Sth(0, 100, 1), Stwu(1, -64, 1), Lmw(29, 52, 1), Stmw(29, 52, 1),
		Lwzx(3, 4, 5), Stwx(3, 4, 5),
		Add(0, 11, 1), Subf(3, 4, 5), Neg(3, 3), Mullw(3, 4, 5), Divw(3, 4, 5),
		And(3, 4, 5), Or(3, 4, 5), Mr(31, 3), Xor(3, 4, 5), Nor(3, 4, 4),
		Slw(3, 4, 5), Srw(3, 4, 5), Sraw(3, 4, 5), Srawi(3, 4, 2),
		Extsb(3, 4), Extsh(3, 4),
		Rlwinm(11, 9, 3, 5, 28), Clrlwi(11, 9, 24), Slwi(4, 4, 2), Srwi(4, 4, 2),
		B(0x1000), B(-0x1000), Bl(0x400),
		Ble(1, 0x40), Bgt(1, -0x40), Beq(0, 8), Bne(0, -8), Blt(2, 1024), Bge(2, -1024),
		Bdnz(-16), Bc(BoAlways, 0, 8),
		Blr(), Bctr(), Bctrl(),
		Mflr(0), Mtlr(0), Mfctr(12), Mtctr(12), Sc(),
		// Rc forms.
		Add(1, 2, 3) | 1, Or(4, 5, 6) | 1, Srawi(7, 8, 3) | 1, Rlwinm(1, 2, 3, 4, 5) | 1,
		// Data word.
		0x00000000,
	}
	for _, w := range words {
		s := Disassemble(w)
		back, err := Assemble(s)
		if err != nil {
			t.Errorf("Assemble(%q): %v", s, err)
			continue
		}
		if back != w {
			t.Errorf("%08x -> %q -> %08x", w, s, back)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"",
		"frobnicate r1,r2",
		"addi r1,r2",        // missing operand
		"addi r1,r2,r3",     // register where immediate expected
		"addi r99,r2,3",     // bad register
		"lwz r1,4(x2)",      // bad base register
		"lwz r1,4",          // missing parens
		"cmpwi r1,r2,3",     // cr field missing
		"b 0x10",            // relative branch needs .± syntax
		"ba 0x3",            // unaligned absolute
		"bdnz .+0x3",        // unaligned displacement
		".long zzz",         //
		"li r1,0x1ffffffff", // out of range
	}
	for _, s := range bad {
		if _, err := Assemble(s); err == nil {
			t.Errorf("Assemble(%q) accepted", s)
		}
	}
}

func TestAssembleAll(t *testing.T) {
	src := `
# a tiny routine
li   r3,0
li   r4,5
mtctr r4
add  r3,r3,r4    # accumulate
addi r4,r4,-1
bdnz .-0x8
blr
`
	words, err := AssembleAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 7 {
		t.Fatalf("assembled %d instructions", len(words))
	}
	if words[0] != Li(3, 0) || words[6] != Blr() {
		t.Fatal("wrong encodings")
	}
	if _, err := AssembleAll("nop\nbogus r1\n"); err == nil {
		t.Fatal("bad line accepted")
	}
}

func TestAssembleWhitespaceTolerance(t *testing.T) {
	for _, s := range []string{"  add   r1, r2 , r3  ", "add r1,r2,r3"} {
		w, err := Assemble(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if w != Add(1, 2, 3) {
			t.Fatalf("%q -> %08x", s, w)
		}
	}
}

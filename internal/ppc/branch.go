package ppc

import "fmt"

// Branch-analysis and field-patching helpers used by the CFG recovery pass
// and by the compressor's offset-repatching step.
//
// The paper's scheme never compresses PC-relative branches (I-form b/bl and
// B-form bc with AA=0) because their offset fields must be rewritten after
// compression. Indirect branches (bclr, bcctr) carry no offset and are
// compressed like ordinary instructions. After compression, the control
// unit interprets offset fields in units of the smallest codeword rather
// than in words, so the patcher writes unit displacements into LI/BD.

// Branch field widths.
const (
	LIBits = 24 // I-form displacement field width
	BDBits = 14 // B-form displacement field width
)

// IsRelativeBranch reports whether the word is a PC-relative branch (I-form
// or B-form with AA=0). These are excluded from dictionary compression.
func IsRelativeBranch(w uint32) bool {
	switch PrimaryOpcode(w) {
	case pocB, pocBc:
		return w>>1&1 == 0 // AA clear
	}
	return false
}

// IsBranch reports whether the word is any control-transfer instruction.
func IsBranch(w uint32) bool {
	switch PrimaryOpcode(w) {
	case pocB, pocBc:
		return true
	case pocXL:
		xo := w >> 1 & 0x3FF
		return xo == xlBclr || xo == xlBcctr
	}
	return false
}

// IsIndirectBranch reports whether the word transfers control through
// LR or CTR.
func IsIndirectBranch(w uint32) bool {
	if PrimaryOpcode(w) != pocXL {
		return false
	}
	xo := w >> 1 & 0x3FF
	return xo == xlBclr || xo == xlBcctr
}

// IsConditional reports whether the branch word is conditional (BO field
// other than branch-always).
func IsConditional(w uint32) bool {
	switch PrimaryOpcode(w) {
	case pocBc:
		return w>>21&0x1F != BoAlways
	case pocXL:
		return w>>21&0x1F != BoAlways
	}
	return false
}

// IsCall reports whether the word is a branch with LK set.
func IsCall(w uint32) bool { return IsBranch(w) && w&1 == 1 }

// RelDisplacement returns the byte displacement of a PC-relative branch.
// ok is false for non-relative-branch words.
func RelDisplacement(w uint32) (disp int32, ok bool) {
	switch PrimaryOpcode(w) {
	case pocB:
		if w>>1&1 == 1 {
			return 0, false
		}
		return signExt(w>>2&0xFFFFFF, LIBits) << 2, true
	case pocBc:
		if w>>1&1 == 1 {
			return 0, false
		}
		return signExt(w>>2&0x3FFF, BDBits) << 2, true
	}
	return 0, false
}

// FieldValue returns the raw signed value of the branch displacement field
// (LI or BD) without the implicit ×4 scaling. ok is false for
// non-relative-branch words.
func FieldValue(w uint32) (v int32, bits uint, ok bool) {
	switch PrimaryOpcode(w) {
	case pocB:
		return signExt(w>>2&0xFFFFFF, LIBits), LIBits, w>>1&1 == 0
	case pocBc:
		return signExt(w>>2&0x3FFF, BDBits), BDBits, w>>1&1 == 0
	}
	return 0, 0, false
}

// FitsField reports whether a raw field value v fits the displacement field
// of the given branch word.
func FitsField(w uint32, v int32) bool {
	switch PrimaryOpcode(w) {
	case pocB:
		return fitsSigned(v, LIBits)
	case pocBc:
		return fitsSigned(v, BDBits)
	}
	return false
}

// SetField writes a raw displacement field value into a relative branch
// word, preserving all other bits. It returns an error when v does not fit
// the field; callers handle overflow with the paper's jump-table fallback.
func SetField(w uint32, v int32) (uint32, error) {
	switch PrimaryOpcode(w) {
	case pocB:
		if !fitsSigned(v, LIBits) {
			return 0, fmt.Errorf("ppc: LI field value %d exceeds %d bits", v, LIBits)
		}
		return w&^uint32(0x03FFFFFC) | uint32(v)<<2&0x03FFFFFC, nil
	case pocBc:
		if !fitsSigned(v, BDBits) {
			return 0, fmt.Errorf("ppc: BD field value %d exceeds %d bits", v, BDBits)
		}
		return w&^uint32(0xFFFC) | uint32(v)<<2&0xFFFC, nil
	}
	return 0, fmt.Errorf("ppc: word %08x is not a relative branch", w)
}

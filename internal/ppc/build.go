package ppc

// Builder functions construct encoded instruction words directly. They are
// the assembler layer used by the synthetic code generator and by tests.
// Register arguments follow the disassembly operand order of each mnemonic.

// Addi builds addi rD,rA,simm. With ra==0 this is li rD,simm.
func Addi(rd, ra uint8, simm int32) uint32 {
	return Encode(Inst{Op: OpAddi, RT: rd, RA: ra, Imm: simm})
}

// Addis builds addis rD,rA,simm. With ra==0 this is lis rD,simm.
func Addis(rd, ra uint8, simm int32) uint32 {
	return Encode(Inst{Op: OpAddis, RT: rd, RA: ra, Imm: simm})
}

// Li builds li rD,simm (addi rD,0,simm).
func Li(rd uint8, simm int32) uint32 { return Addi(rd, 0, simm) }

// Lis builds lis rD,simm (addis rD,0,simm).
func Lis(rd uint8, simm int32) uint32 { return Addis(rd, 0, simm) }

// Ori builds ori rA,rS,uimm.
func Ori(ra, rs uint8, uimm int32) uint32 {
	return Encode(Inst{Op: OpOri, RT: rs, RA: ra, Imm: uimm})
}

// Oris builds oris rA,rS,uimm.
func Oris(ra, rs uint8, uimm int32) uint32 {
	return Encode(Inst{Op: OpOris, RT: rs, RA: ra, Imm: uimm})
}

// AndiRc builds andi. rA,rS,uimm.
func AndiRc(ra, rs uint8, uimm int32) uint32 {
	return Encode(Inst{Op: OpAndiRc, RT: rs, RA: ra, Imm: uimm})
}

// Xori builds xori rA,rS,uimm.
func Xori(ra, rs uint8, uimm int32) uint32 {
	return Encode(Inst{Op: OpXori, RT: rs, RA: ra, Imm: uimm})
}

// Nop builds the canonical PowerPC nop, ori 0,0,0.
func Nop() uint32 { return Ori(0, 0, 0) }

// Mr builds mr rA,rS (or rA,rS,rS).
func Mr(ra, rs uint8) uint32 { return Or(ra, rs, rs) }

// Cmpwi builds cmpwi crfD,rA,simm.
func Cmpwi(crf, ra uint8, simm int32) uint32 {
	return Encode(Inst{Op: OpCmpwi, CRF: crf, RA: ra, Imm: simm})
}

// Cmplwi builds cmplwi crfD,rA,uimm.
func Cmplwi(crf, ra uint8, uimm int32) uint32 {
	return Encode(Inst{Op: OpCmplwi, CRF: crf, RA: ra, Imm: uimm})
}

// Cmpw builds cmpw crfD,rA,rB.
func Cmpw(crf, ra, rb uint8) uint32 {
	return Encode(Inst{Op: OpCmpw, CRF: crf, RA: ra, RB: rb})
}

// Cmplw builds cmplw crfD,rA,rB.
func Cmplw(crf, ra, rb uint8) uint32 {
	return Encode(Inst{Op: OpCmplw, CRF: crf, RA: ra, RB: rb})
}

// Lwz builds lwz rD,d(rA).
func Lwz(rd uint8, d int32, ra uint8) uint32 {
	return Encode(Inst{Op: OpLwz, RT: rd, RA: ra, Imm: d})
}

// Lbz builds lbz rD,d(rA).
func Lbz(rd uint8, d int32, ra uint8) uint32 {
	return Encode(Inst{Op: OpLbz, RT: rd, RA: ra, Imm: d})
}

// Lhz builds lhz rD,d(rA).
func Lhz(rd uint8, d int32, ra uint8) uint32 {
	return Encode(Inst{Op: OpLhz, RT: rd, RA: ra, Imm: d})
}

// Stw builds stw rS,d(rA).
func Stw(rs uint8, d int32, ra uint8) uint32 {
	return Encode(Inst{Op: OpStw, RT: rs, RA: ra, Imm: d})
}

// Stb builds stb rS,d(rA).
func Stb(rs uint8, d int32, ra uint8) uint32 {
	return Encode(Inst{Op: OpStb, RT: rs, RA: ra, Imm: d})
}

// Sth builds sth rS,d(rA).
func Sth(rs uint8, d int32, ra uint8) uint32 {
	return Encode(Inst{Op: OpSth, RT: rs, RA: ra, Imm: d})
}

// Stwu builds stwu rS,d(rA).
func Stwu(rs uint8, d int32, ra uint8) uint32 {
	return Encode(Inst{Op: OpStwu, RT: rs, RA: ra, Imm: d})
}

// Lmw builds lmw rD,d(rA): loads rD..r31.
func Lmw(rd uint8, d int32, ra uint8) uint32 {
	return Encode(Inst{Op: OpLmw, RT: rd, RA: ra, Imm: d})
}

// Stmw builds stmw rS,d(rA): stores rS..r31.
func Stmw(rs uint8, d int32, ra uint8) uint32 {
	return Encode(Inst{Op: OpStmw, RT: rs, RA: ra, Imm: d})
}

// Lwzx builds lwzx rD,rA,rB.
func Lwzx(rd, ra, rb uint8) uint32 {
	return Encode(Inst{Op: OpLwzx, RT: rd, RA: ra, RB: rb})
}

// Stwx builds stwx rS,rA,rB.
func Stwx(rs, ra, rb uint8) uint32 {
	return Encode(Inst{Op: OpStwx, RT: rs, RA: ra, RB: rb})
}

// Lbzx builds lbzx rD,rA,rB.
func Lbzx(rd, ra, rb uint8) uint32 {
	return Encode(Inst{Op: OpLbzx, RT: rd, RA: ra, RB: rb})
}

// Lhzx builds lhzx rD,rA,rB.
func Lhzx(rd, ra, rb uint8) uint32 {
	return Encode(Inst{Op: OpLhzx, RT: rd, RA: ra, RB: rb})
}

// Stbx builds stbx rS,rA,rB.
func Stbx(rs, ra, rb uint8) uint32 {
	return Encode(Inst{Op: OpStbx, RT: rs, RA: ra, RB: rb})
}

// Sthx builds sthx rS,rA,rB.
func Sthx(rs, ra, rb uint8) uint32 {
	return Encode(Inst{Op: OpSthx, RT: rs, RA: ra, RB: rb})
}

// Add builds add rD,rA,rB.
func Add(rd, ra, rb uint8) uint32 {
	return Encode(Inst{Op: OpAdd, RT: rd, RA: ra, RB: rb})
}

// Subf builds subf rD,rA,rB (rD = rB - rA).
func Subf(rd, ra, rb uint8) uint32 {
	return Encode(Inst{Op: OpSubf, RT: rd, RA: ra, RB: rb})
}

// Neg builds neg rD,rA.
func Neg(rd, ra uint8) uint32 { return Encode(Inst{Op: OpNeg, RT: rd, RA: ra}) }

// Mullw builds mullw rD,rA,rB.
func Mullw(rd, ra, rb uint8) uint32 {
	return Encode(Inst{Op: OpMullw, RT: rd, RA: ra, RB: rb})
}

// Divw builds divw rD,rA,rB.
func Divw(rd, ra, rb uint8) uint32 {
	return Encode(Inst{Op: OpDivw, RT: rd, RA: ra, RB: rb})
}

// And builds and rA,rS,rB.
func And(ra, rs, rb uint8) uint32 {
	return Encode(Inst{Op: OpAnd, RT: rs, RA: ra, RB: rb})
}

// Or builds or rA,rS,rB.
func Or(ra, rs, rb uint8) uint32 {
	return Encode(Inst{Op: OpOr, RT: rs, RA: ra, RB: rb})
}

// Xor builds xor rA,rS,rB.
func Xor(ra, rs, rb uint8) uint32 {
	return Encode(Inst{Op: OpXor, RT: rs, RA: ra, RB: rb})
}

// Nor builds nor rA,rS,rB. Not rA,rS is Nor(ra, rs, rs).
func Nor(ra, rs, rb uint8) uint32 {
	return Encode(Inst{Op: OpNor, RT: rs, RA: ra, RB: rb})
}

// Slw builds slw rA,rS,rB.
func Slw(ra, rs, rb uint8) uint32 {
	return Encode(Inst{Op: OpSlw, RT: rs, RA: ra, RB: rb})
}

// Srw builds srw rA,rS,rB.
func Srw(ra, rs, rb uint8) uint32 {
	return Encode(Inst{Op: OpSrw, RT: rs, RA: ra, RB: rb})
}

// Sraw builds sraw rA,rS,rB.
func Sraw(ra, rs, rb uint8) uint32 {
	return Encode(Inst{Op: OpSraw, RT: rs, RA: ra, RB: rb})
}

// Srawi builds srawi rA,rS,sh.
func Srawi(ra, rs, sh uint8) uint32 {
	return Encode(Inst{Op: OpSrawi, RT: rs, RA: ra, SH: sh})
}

// Extsb builds extsb rA,rS.
func Extsb(ra, rs uint8) uint32 { return Encode(Inst{Op: OpExtsb, RT: rs, RA: ra}) }

// Extsh builds extsh rA,rS.
func Extsh(ra, rs uint8) uint32 { return Encode(Inst{Op: OpExtsh, RT: rs, RA: ra}) }

// Rlwinm builds rlwinm rA,rS,sh,mb,me.
func Rlwinm(ra, rs, sh, mb, me uint8) uint32 {
	return Encode(Inst{Op: OpRlwinm, RT: rs, RA: ra, SH: sh, MB: mb, ME: me})
}

// Clrlwi builds clrlwi rA,rS,n = rlwinm rA,rS,0,n,31.
func Clrlwi(ra, rs, n uint8) uint32 { return Rlwinm(ra, rs, 0, n, 31) }

// Slwi builds slwi rA,rS,n = rlwinm rA,rS,n,0,31-n.
func Slwi(ra, rs, n uint8) uint32 { return Rlwinm(ra, rs, n, 0, 31-n) }

// Srwi builds srwi rA,rS,n = rlwinm rA,rS,32-n,n,31.
func Srwi(ra, rs, n uint8) uint32 { return Rlwinm(ra, rs, 32-n, n, 31) }

// B builds b target (displacement in bytes, relative to this instruction).
func B(disp int32) uint32 { return Encode(Inst{Op: OpB, Imm: disp}) }

// Bl builds bl target.
func Bl(disp int32) uint32 { return Encode(Inst{Op: OpB, Imm: disp, LK: true}) }

// Bc builds bc BO,BI,target.
func Bc(bo, bi uint8, disp int32) uint32 {
	return Encode(Inst{Op: OpBc, BO: bo, BI: bi, Imm: disp})
}

// Conditional branch mnemonics on a CR field. disp is a byte displacement.

// Blt builds blt crN,target.
func Blt(crf uint8, disp int32) uint32 { return Bc(BoTrue, crf*4+CrLT, disp) }

// Bgt builds bgt crN,target.
func Bgt(crf uint8, disp int32) uint32 { return Bc(BoTrue, crf*4+CrGT, disp) }

// Beq builds beq crN,target.
func Beq(crf uint8, disp int32) uint32 { return Bc(BoTrue, crf*4+CrEQ, disp) }

// Bge builds bge crN,target.
func Bge(crf uint8, disp int32) uint32 { return Bc(BoFalse, crf*4+CrLT, disp) }

// Ble builds ble crN,target.
func Ble(crf uint8, disp int32) uint32 { return Bc(BoFalse, crf*4+CrGT, disp) }

// Bne builds bne crN,target.
func Bne(crf uint8, disp int32) uint32 { return Bc(BoFalse, crf*4+CrEQ, disp) }

// Bdnz builds bdnz target.
func Bdnz(disp int32) uint32 { return Bc(BoDnz, 0, disp) }

// Blr builds blr.
func Blr() uint32 { return Encode(Inst{Op: OpBclr, BO: BoAlways}) }

// Bctr builds bctr.
func Bctr() uint32 { return Encode(Inst{Op: OpBcctr, BO: BoAlways}) }

// Bctrl builds bctrl.
func Bctrl() uint32 { return Encode(Inst{Op: OpBcctr, BO: BoAlways, LK: true}) }

// Mflr builds mflr rD.
func Mflr(rd uint8) uint32 { return Encode(Inst{Op: OpMfspr, RT: rd, SPR: SprLR}) }

// Mtlr builds mtlr rS.
func Mtlr(rs uint8) uint32 { return Encode(Inst{Op: OpMtspr, RT: rs, SPR: SprLR}) }

// Mfctr builds mfctr rD.
func Mfctr(rd uint8) uint32 { return Encode(Inst{Op: OpMfspr, RT: rd, SPR: SprCTR}) }

// Mtctr builds mtctr rS.
func Mtctr(rs uint8) uint32 { return Encode(Inst{Op: OpMtspr, RT: rs, SPR: SprCTR}) }

// Sc builds sc.
func Sc() uint32 { return Encode(Inst{Op: OpSc}) }

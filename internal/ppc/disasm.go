package ppc

import (
	"fmt"
	"strings"
)

// Disassemble renders an instruction word using standard PowerPC mnemonics,
// including the common simplified forms (li, lis, nop, mr, blr, mflr, …).
// Invalid words render as ".long 0x…" so dumps of mixed code/data and of
// compressed streams stay readable.
func Disassemble(w uint32) string {
	i := Decode(w)
	switch i.Op {
	case OpInvalid:
		return fmt.Sprintf(".long 0x%08x", w)
	case OpAddi:
		if i.RA == 0 {
			return fmt.Sprintf("li r%d,%d", i.RT, i.Imm)
		}
		return fmt.Sprintf("addi r%d,r%d,%d", i.RT, i.RA, i.Imm)
	case OpAddis:
		if i.RA == 0 {
			return fmt.Sprintf("lis r%d,%d", i.RT, i.Imm)
		}
		return fmt.Sprintf("addis r%d,r%d,%d", i.RT, i.RA, i.Imm)
	case OpOri:
		if i.RT == 0 && i.RA == 0 && i.Imm == 0 {
			return "nop"
		}
		return fmt.Sprintf("ori r%d,r%d,%d", i.RA, i.RT, i.Imm)
	case OpOris:
		return fmt.Sprintf("oris r%d,r%d,%d", i.RA, i.RT, i.Imm)
	case OpAndiRc:
		return fmt.Sprintf("andi. r%d,r%d,%d", i.RA, i.RT, i.Imm)
	case OpXori:
		return fmt.Sprintf("xori r%d,r%d,%d", i.RA, i.RT, i.Imm)
	case OpCmpwi:
		return fmt.Sprintf("cmpwi cr%d,r%d,%d", i.CRF, i.RA, i.Imm)
	case OpCmplwi:
		return fmt.Sprintf("cmplwi cr%d,r%d,%d", i.CRF, i.RA, i.Imm)
	case OpCmpw:
		return fmt.Sprintf("cmpw cr%d,r%d,r%d", i.CRF, i.RA, i.RB)
	case OpCmplw:
		return fmt.Sprintf("cmplw cr%d,r%d,r%d", i.CRF, i.RA, i.RB)
	case OpLwz, OpLbz, OpLhz, OpStw, OpStb, OpSth, OpStwu, OpLmw, OpStmw:
		return fmt.Sprintf("%s r%d,%d(r%d)", i.Op.Name(), i.RT, i.Imm, i.RA)
	case OpLwzx, OpStwx, OpLbzx, OpLhzx, OpStbx, OpSthx:
		return fmt.Sprintf("%s r%d,r%d,r%d", i.Op.Name(), i.RT, i.RA, i.RB)
	case OpB:
		m := "b"
		if i.LK {
			m = "bl"
		}
		if i.AA {
			m += "a"
			return fmt.Sprintf("%s 0x%x", m, uint32(i.Imm))
		}
		return fmt.Sprintf("%s %s", m, dispStr(i.Imm))
	case OpBc:
		return disasmBc(i)
	case OpBclr:
		if i.BO == BoAlways && i.BI == 0 {
			if i.LK {
				return "blrl"
			}
			return "blr"
		}
		m := "bclr"
		if i.LK {
			m = "bclrl"
		}
		return fmt.Sprintf("%s %d,%d", m, i.BO, i.BI)
	case OpBcctr:
		if i.BO == BoAlways && i.BI == 0 {
			if i.LK {
				return "bctrl"
			}
			return "bctr"
		}
		m := "bcctr"
		if i.LK {
			m = "bcctrl"
		}
		return fmt.Sprintf("%s %d,%d", m, i.BO, i.BI)
	case OpAdd, OpSubf, OpMullw, OpDivw:
		return fmt.Sprintf("%s r%d,r%d,r%d", rcName(i), i.RT, i.RA, i.RB)
	case OpNeg:
		return fmt.Sprintf("%s r%d,r%d", rcName(i), i.RT, i.RA)
	case OpAnd, OpXor, OpNor, OpSlw, OpSrw, OpSraw:
		return fmt.Sprintf("%s r%d,r%d,r%d", rcName(i), i.RA, i.RT, i.RB)
	case OpOr:
		if i.RT == i.RB && !i.Rc {
			return fmt.Sprintf("mr r%d,r%d", i.RA, i.RT)
		}
		return fmt.Sprintf("%s r%d,r%d,r%d", rcName(i), i.RA, i.RT, i.RB)
	case OpSrawi:
		return fmt.Sprintf("%s r%d,r%d,%d", rcName(i), i.RA, i.RT, i.SH)
	case OpExtsb, OpExtsh:
		return fmt.Sprintf("%s r%d,r%d", rcName(i), i.RA, i.RT)
	case OpMfspr:
		switch i.SPR {
		case SprLR:
			return fmt.Sprintf("mflr r%d", i.RT)
		case SprCTR:
			return fmt.Sprintf("mfctr r%d", i.RT)
		}
		return fmt.Sprintf("mfspr r%d,%d", i.RT, i.SPR)
	case OpMtspr:
		switch i.SPR {
		case SprLR:
			return fmt.Sprintf("mtlr r%d", i.RT)
		case SprCTR:
			return fmt.Sprintf("mtctr r%d", i.RT)
		}
		return fmt.Sprintf("mtspr %d,r%d", i.SPR, i.RT)
	case OpRlwinm:
		if !i.Rc {
			switch {
			case i.SH == 0 && i.ME == 31:
				return fmt.Sprintf("clrlwi r%d,r%d,%d", i.RA, i.RT, i.MB)
			case i.MB == 0 && i.ME == 31-i.SH:
				return fmt.Sprintf("slwi r%d,r%d,%d", i.RA, i.RT, i.SH)
			case i.ME == 31 && i.SH == 32-i.MB:
				return fmt.Sprintf("srwi r%d,r%d,%d", i.RA, i.RT, i.MB)
			}
		}
		return fmt.Sprintf("%s r%d,r%d,%d,%d,%d", rcName(i), i.RA, i.RT, i.SH, i.MB, i.ME)
	case OpSc:
		return "sc"
	}
	return fmt.Sprintf(".long 0x%08x", w)
}

// rcName appends the record-condition dot for Rc-set encodings.
func rcName(i Inst) string {
	if i.Rc {
		return i.Op.Name() + "."
	}
	return i.Op.Name()
}

func disasmBc(i Inst) string {
	if i.AA {
		// Absolute conditional branches: generic form only.
		m := "bca"
		if i.LK {
			m = "bcla"
		}
		return fmt.Sprintf("%s %d,%d,0x%x", m, i.BO, i.BI, uint32(i.Imm))
	}
	crf := i.BI / 4
	bit := i.BI % 4
	var m string
	switch {
	case i.BO == BoTrue && bit == CrLT:
		m = "blt"
	case i.BO == BoTrue && bit == CrGT:
		m = "bgt"
	case i.BO == BoTrue && bit == CrEQ:
		m = "beq"
	case i.BO == BoFalse && bit == CrLT:
		m = "bge"
	case i.BO == BoFalse && bit == CrGT:
		m = "ble"
	case i.BO == BoFalse && bit == CrEQ:
		m = "bne"
	case i.BO == BoDnz && i.BI == 0:
		m = "bdnz"
		if i.LK {
			m += "l"
		}
		return fmt.Sprintf("%s %s", m, dispStr(i.Imm))
	default:
		m = "bc"
		if i.LK {
			m = "bcl"
		}
		return fmt.Sprintf("%s %d,%d,%s", m, i.BO, i.BI, dispStr(i.Imm))
	}
	if i.LK {
		m += "l"
	}
	return fmt.Sprintf("%s cr%d,%s", m, crf, dispStr(i.Imm))
}

func dispStr(d int32) string {
	if d < 0 {
		return fmt.Sprintf(".-0x%x", uint32(-d))
	}
	return fmt.Sprintf(".+0x%x", uint32(d))
}

// DisassembleAll renders a sequence of instruction words, one per line,
// with word-index prefixes. Used by the ccdis tool and by test failure
// output.
func DisassembleAll(words []uint32) string {
	var sb strings.Builder
	for idx, w := range words {
		fmt.Fprintf(&sb, "%6d: %08x  %s\n", idx, w, Disassemble(w))
	}
	return sb.String()
}

// Package ppc implements the 32-bit PowerPC instruction-set subset used by
// the code-compression study: authentic big-endian encodings for the D, I,
// B, X, XO, XL and M instruction forms, an assembler-style builder API, a
// decoder and disassembler, and the reserved (illegal) primary opcodes that
// form the escape bytes of the baseline compression scheme.
//
// The subset is executable: every opcode defined here has semantics in the
// machine package. Field layout follows the IBM convention where bit 0 is
// the most significant bit of the 32-bit word; the primary opcode occupies
// bits 0..5, i.e. (word >> 26) & 0x3F.
package ppc

import "fmt"

// Op identifies a decoded instruction's operation. The zero value OpInvalid
// marks words that do not decode under the subset (including words whose
// primary opcode is reserved for compression escapes).
type Op uint8

// Operations in the subset.
const (
	OpInvalid Op = iota

	// D-form arithmetic/logical with immediate.
	OpAddi  // addi rD,rA,SIMM (rA=0 reads as literal 0: li)
	OpAddis // addis rD,rA,SIMM (lis)
	OpOri   // ori rA,rS,UIMM (ori 0,0,0 is the canonical nop)
	OpOris  // oris rA,rS,UIMM
	OpAndiRc
	OpXori

	// D-form compares.
	OpCmpwi  // cmpwi crfD,rA,SIMM
	OpCmplwi // cmplwi crfD,rA,UIMM

	// D-form loads/stores.
	OpLwz
	OpLbz
	OpLhz
	OpStw
	OpStb
	OpSth
	OpStwu
	OpLmw
	OpStmw

	// I-form and B-form branches.
	OpB  // b/ba/bl/bla depending on AA/LK
	OpBc // conditional branch

	// XL-form branches through SPRs.
	OpBclr  // blr and conditional variants
	OpBcctr // bctr

	// XO-form integer arithmetic.
	OpAdd
	OpSubf
	OpNeg
	OpMullw
	OpDivw

	// X-form logical/shift/compare/extend.
	OpAnd
	OpOr // also mr rA,rS
	OpXor
	OpNor
	OpSlw
	OpSrw
	OpSraw
	OpSrawi
	OpCmpw
	OpCmplw
	OpExtsb
	OpExtsh
	OpLwzx
	OpStwx
	OpLbzx
	OpLhzx
	OpStbx
	OpSthx

	// Move to/from special purpose registers.
	OpMfspr // mflr, mfctr
	OpMtspr // mtlr, mtctr

	// M-form rotate.
	OpRlwinm

	// System call.
	OpSc

	opCount // sentinel
)

// Form classifies the encoding layout of an operation.
type Form uint8

// Encoding forms present in the subset.
const (
	FormD Form = iota
	FormI
	FormB
	FormXL
	FormX
	FormXO
	FormM
	FormSC
)

// Primary opcode values (bits 0..5).
const (
	pocCmplwi = 10
	pocCmpwi  = 11
	pocAddi   = 14
	pocAddis  = 15
	pocBc     = 16
	pocSc     = 17
	pocB      = 18
	pocXL     = 19
	pocRlwinm = 21
	pocOri    = 24
	pocOris   = 25
	pocXori   = 26
	pocAndiRc = 28
	pocX      = 31
	pocLwz    = 32
	pocLbz    = 34
	pocStw    = 36
	pocStwu   = 37
	pocStb    = 38
	pocLhz    = 40
	pocSth    = 44
	pocLmw    = 46
	pocStmw   = 47
)

// Extended opcodes under primary 31 (X-form, 10 bits) and XO-form (9 bits).
const (
	xoCmpw  = 0
	xoLwzx  = 23
	xoSlw   = 24
	xoAnd   = 28
	xoCmplw = 32
	xoLbzx  = 87
	xoNor   = 124
	xoStwx  = 151
	xoStbx  = 215
	xoLhzx  = 279
	xoSthx  = 407
	xoMfspr = 339
	xoXor   = 316
	xoMtspr = 467
	xoOr    = 444
	xoSrw   = 536
	xoSraw  = 792
	xoSrawi = 824
	xoExtsh = 922
	xoExtsb = 954

	xo9Subf  = 40
	xo9Neg   = 104
	xo9Mullw = 235
	xo9Add   = 266
	xo9Divw  = 491
)

// Extended opcodes under primary 19 (XL-form).
const (
	xlBclr  = 16
	xlBcctr = 528
)

// Special purpose register numbers.
const (
	SprLR  = 8
	SprCTR = 9
)

// Condition-register bit positions within a CR field.
const (
	CrLT = 0
	CrGT = 1
	CrEQ = 2
	CrSO = 3
)

// Common BO field values for conditional branches.
const (
	BoFalse  = 4  // branch if CR bit is 0
	BoTrue   = 12 // branch if CR bit is 1
	BoDnz    = 16 // decrement CTR, branch if CTR != 0
	BoAlways = 20 // branch unconditionally
)

// opInfo carries per-operation metadata.
type opInfo struct {
	name string
	form Form
}

var opTable = [opCount]opInfo{
	OpInvalid: {"<invalid>", FormD},
	OpAddi:    {"addi", FormD},
	OpAddis:   {"addis", FormD},
	OpOri:     {"ori", FormD},
	OpOris:    {"oris", FormD},
	OpAndiRc:  {"andi.", FormD},
	OpXori:    {"xori", FormD},
	OpCmpwi:   {"cmpwi", FormD},
	OpCmplwi:  {"cmplwi", FormD},
	OpLwz:     {"lwz", FormD},
	OpLbz:     {"lbz", FormD},
	OpLhz:     {"lhz", FormD},
	OpStw:     {"stw", FormD},
	OpStb:     {"stb", FormD},
	OpSth:     {"sth", FormD},
	OpStwu:    {"stwu", FormD},
	OpLmw:     {"lmw", FormD},
	OpStmw:    {"stmw", FormD},
	OpB:       {"b", FormI},
	OpBc:      {"bc", FormB},
	OpBclr:    {"bclr", FormXL},
	OpBcctr:   {"bcctr", FormXL},
	OpAdd:     {"add", FormXO},
	OpSubf:    {"subf", FormXO},
	OpNeg:     {"neg", FormXO},
	OpMullw:   {"mullw", FormXO},
	OpDivw:    {"divw", FormXO},
	OpAnd:     {"and", FormX},
	OpOr:      {"or", FormX},
	OpXor:     {"xor", FormX},
	OpNor:     {"nor", FormX},
	OpSlw:     {"slw", FormX},
	OpSrw:     {"srw", FormX},
	OpSraw:    {"sraw", FormX},
	OpSrawi:   {"srawi", FormX},
	OpCmpw:    {"cmpw", FormX},
	OpCmplw:   {"cmplw", FormX},
	OpExtsb:   {"extsb", FormX},
	OpExtsh:   {"extsh", FormX},
	OpLwzx:    {"lwzx", FormX},
	OpStwx:    {"stwx", FormX},
	OpLbzx:    {"lbzx", FormX},
	OpLhzx:    {"lhzx", FormX},
	OpStbx:    {"stbx", FormX},
	OpSthx:    {"sthx", FormX},
	OpMfspr:   {"mfspr", FormX},
	OpMtspr:   {"mtspr", FormX},
	OpRlwinm:  {"rlwinm", FormM},
	OpSc:      {"sc", FormSC},
}

// Name returns the base mnemonic of the operation.
func (op Op) Name() string {
	if op >= opCount {
		return "<bad>"
	}
	return opTable[op].name
}

// Form returns the encoding form of the operation.
func (op Op) Form() Form {
	if op >= opCount {
		return FormD
	}
	return opTable[op].form
}

func (op Op) String() string { return op.Name() }

// ReservedOpcodes lists the eight primary opcode values that are illegal in
// the 32-bit PowerPC subset and are therefore available as compression
// escapes, per the paper ("PowerPC has 8 illegal 6-bit opcodes").
var ReservedOpcodes = [8]uint8{0, 1, 4, 5, 6, 22, 56, 57}

// IsReservedOpcode reports whether the 6-bit primary opcode is one of the
// eight reserved values.
func IsReservedOpcode(poc uint8) bool {
	switch poc {
	case 0, 1, 4, 5, 6, 22, 56, 57:
		return true
	}
	return false
}

// EscapeBytes returns the 32 byte values whose top six bits are a reserved
// primary opcode. A compressed-program fetch unit recognizes a codeword by
// its first byte being one of these values ("By using all 8 illegal opcodes
// and all possible patterns of the remaining 2 bits in the byte, we can
// have up to 32 different escape bytes").
func EscapeBytes() []byte {
	out := make([]byte, 0, 32)
	for _, poc := range ReservedOpcodes {
		for low := 0; low < 4; low++ {
			out = append(out, poc<<2|uint8(low))
		}
	}
	return out
}

// IsEscapeByte reports whether b marks the start of a codeword, i.e. its
// top six bits are a reserved primary opcode.
func IsEscapeByte(b byte) bool { return IsReservedOpcode(b >> 2) }

// PrimaryOpcode extracts bits 0..5 of an instruction word.
func PrimaryOpcode(w uint32) uint8 { return uint8(w >> 26) }

// Inst is a decoded instruction. Fields are populated according to the
// operation's form; unused fields are zero. RT doubles as RS for store and
// logical forms where the source register occupies bits 6..10.
type Inst struct {
	Op      Op
	RT      uint8 // RT or RS (bits 6..10)
	RA      uint8
	RB      uint8
	CRF     uint8 // crfD for compares
	BO      uint8
	BI      uint8
	SH      uint8 // shift amount (srawi, rlwinm)
	MB      uint8
	ME      uint8
	SPR     uint16
	Imm     int32 // SIMM sign-extended, UIMM zero-extended, or branch displacement in bytes
	AA      bool
	LK      bool
	Rc      bool
	Syscall bool // true for sc
}

func (i Inst) String() string { return Disassemble(Encode(i)) }

// signExt16 sign-extends the low 16 bits of v.
func signExt16(v uint32) int32 { return int32(int16(uint16(v))) }

// signExt extends an n-bit two's-complement value.
func signExt(v uint32, n uint) int32 {
	shift := 32 - n
	return int32(v<<shift) >> shift
}

// fitsSigned reports whether v fits in an n-bit two's-complement field.
func fitsSigned(v int32, n uint) bool {
	lim := int32(1) << (n - 1)
	return v >= -lim && v < lim
}

// Encode packs a decoded instruction back into its 32-bit word. Encoding an
// instruction produced by Decode always round-trips. Encode panics on an
// Inst whose fields are out of range, since that indicates a programming
// error in a code generator rather than bad input data.
func Encode(i Inst) uint32 {
	reg := func(r uint8) uint32 {
		if r > 31 {
			panic(fmt.Sprintf("ppc: register %d out of range in %s", r, i.Op))
		}
		return uint32(r)
	}
	b2u := func(b bool) uint32 {
		if b {
			return 1
		}
		return 0
	}
	switch i.Op {
	case OpAddi, OpAddis, OpLwz, OpLbz, OpLhz, OpStw, OpStb, OpSth, OpStwu, OpLmw, OpStmw:
		if !fitsSigned(i.Imm, 16) {
			panic(fmt.Sprintf("ppc: immediate %d out of range in %s", i.Imm, i.Op))
		}
		return dPrimary(i.Op)<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 | uint32(uint16(i.Imm))
	case OpOri, OpOris, OpAndiRc, OpXori:
		if i.Imm < 0 || i.Imm > 0xFFFF {
			panic(fmt.Sprintf("ppc: uimm %d out of range in %s", i.Imm, i.Op))
		}
		// Logical D-forms put RS in bits 6..10 and RA in bits 11..15.
		return dPrimary(i.Op)<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 | uint32(uint16(i.Imm))
	case OpCmpwi:
		if !fitsSigned(i.Imm, 16) {
			panic(fmt.Sprintf("ppc: immediate %d out of range in cmpwi", i.Imm))
		}
		return pocCmpwi<<26 | uint32(i.CRF&7)<<23 | reg(i.RA)<<16 | uint32(uint16(i.Imm))
	case OpCmplwi:
		if i.Imm < 0 || i.Imm > 0xFFFF {
			panic(fmt.Sprintf("ppc: uimm %d out of range in cmplwi", i.Imm))
		}
		return pocCmplwi<<26 | uint32(i.CRF&7)<<23 | reg(i.RA)<<16 | uint32(uint16(i.Imm))
	case OpB:
		// Imm is a byte displacement; the LI field holds Imm>>2 in the
		// standard encoding. Compression re-scales this field: see SetLIField.
		if i.Imm&3 != 0 || !fitsSigned(i.Imm>>2, 24) {
			panic(fmt.Sprintf("ppc: branch displacement %d unencodable", i.Imm))
		}
		return pocB<<26 | uint32(i.Imm)&0x03FFFFFC | b2u(i.AA)<<1 | b2u(i.LK)
	case OpBc:
		if i.Imm&3 != 0 || !fitsSigned(i.Imm>>2, 14) {
			panic(fmt.Sprintf("ppc: conditional branch displacement %d unencodable", i.Imm))
		}
		return pocBc<<26 | uint32(i.BO&0x1F)<<21 | uint32(i.BI&0x1F)<<16 |
			uint32(i.Imm)&0xFFFC | b2u(i.AA)<<1 | b2u(i.LK)
	case OpBclr:
		return pocXL<<26 | uint32(i.BO&0x1F)<<21 | uint32(i.BI&0x1F)<<16 | xlBclr<<1 | b2u(i.LK)
	case OpBcctr:
		return pocXL<<26 | uint32(i.BO&0x1F)<<21 | uint32(i.BI&0x1F)<<16 | xlBcctr<<1 | b2u(i.LK)
	case OpAdd, OpSubf, OpMullw, OpDivw:
		return pocX<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 | reg(i.RB)<<11 | xo9(i.Op)<<1 | b2u(i.Rc)
	case OpNeg:
		return pocX<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 | xo9Neg<<1 | b2u(i.Rc)
	case OpAnd, OpOr, OpXor, OpNor, OpSlw, OpSrw, OpSraw:
		return pocX<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 | reg(i.RB)<<11 | xo10(i.Op)<<1 | b2u(i.Rc)
	case OpSrawi:
		return pocX<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 | uint32(i.SH&0x1F)<<11 | xoSrawi<<1 | b2u(i.Rc)
	case OpCmpw:
		return pocX<<26 | uint32(i.CRF&7)<<23 | reg(i.RA)<<16 | reg(i.RB)<<11 | xoCmpw<<1
	case OpCmplw:
		return pocX<<26 | uint32(i.CRF&7)<<23 | reg(i.RA)<<16 | reg(i.RB)<<11 | xoCmplw<<1
	case OpExtsb:
		return pocX<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 | xoExtsb<<1 | b2u(i.Rc)
	case OpExtsh:
		return pocX<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 | xoExtsh<<1 | b2u(i.Rc)
	case OpLwzx:
		return pocX<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 | reg(i.RB)<<11 | xoLwzx<<1
	case OpStwx:
		return pocX<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 | reg(i.RB)<<11 | xoStwx<<1
	case OpLbzx:
		return pocX<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 | reg(i.RB)<<11 | xoLbzx<<1
	case OpLhzx:
		return pocX<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 | reg(i.RB)<<11 | xoLhzx<<1
	case OpStbx:
		return pocX<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 | reg(i.RB)<<11 | xoStbx<<1
	case OpSthx:
		return pocX<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 | reg(i.RB)<<11 | xoSthx<<1
	case OpMfspr:
		return pocX<<26 | reg(i.RT)<<21 | sprField(i.SPR)<<11 | xoMfspr<<1
	case OpMtspr:
		return pocX<<26 | reg(i.RT)<<21 | sprField(i.SPR)<<11 | xoMtspr<<1
	case OpRlwinm:
		return pocRlwinm<<26 | reg(i.RT)<<21 | reg(i.RA)<<16 |
			uint32(i.SH&0x1F)<<11 | uint32(i.MB&0x1F)<<6 | uint32(i.ME&0x1F)<<1 | b2u(i.Rc)
	case OpSc:
		return pocSc<<26 | 2
	}
	panic(fmt.Sprintf("ppc: cannot encode op %v", i.Op))
}

func dPrimary(op Op) uint32 {
	switch op {
	case OpAddi:
		return pocAddi
	case OpAddis:
		return pocAddis
	case OpOri:
		return pocOri
	case OpOris:
		return pocOris
	case OpAndiRc:
		return pocAndiRc
	case OpXori:
		return pocXori
	case OpLwz:
		return pocLwz
	case OpLbz:
		return pocLbz
	case OpLhz:
		return pocLhz
	case OpStw:
		return pocStw
	case OpStb:
		return pocStb
	case OpSth:
		return pocSth
	case OpStwu:
		return pocStwu
	case OpLmw:
		return pocLmw
	case OpStmw:
		return pocStmw
	}
	panic("ppc: not a D-form op")
}

func xo9(op Op) uint32 {
	switch op {
	case OpAdd:
		return xo9Add
	case OpSubf:
		return xo9Subf
	case OpMullw:
		return xo9Mullw
	case OpDivw:
		return xo9Divw
	}
	panic("ppc: not an XO-form op")
}

func xo10(op Op) uint32 {
	switch op {
	case OpAnd:
		return xoAnd
	case OpOr:
		return xoOr
	case OpXor:
		return xoXor
	case OpNor:
		return xoNor
	case OpSlw:
		return xoSlw
	case OpSrw:
		return xoSrw
	case OpSraw:
		return xoSraw
	}
	panic("ppc: not an X-form logical op")
}

// sprField packs a 10-bit SPR number into the split field layout used by
// mfspr/mtspr (low five bits in the high half of the field).
func sprField(spr uint16) uint32 {
	return uint32(spr&0x1F)<<5 | uint32(spr>>5)&0x1F
}

func sprUnfield(f uint32) uint16 {
	return uint16(f>>5&0x1F) | uint16(f&0x1F)<<5
}

// Decode cracks a 32-bit instruction word. Words that do not match the
// subset decode to an Inst with Op == OpInvalid; callers treat such words
// as data or as compression escapes.
func Decode(w uint32) Inst {
	poc := PrimaryOpcode(w)
	rt := uint8(w >> 21 & 0x1F)
	ra := uint8(w >> 16 & 0x1F)
	rb := uint8(w >> 11 & 0x1F)
	switch poc {
	case pocAddi:
		return Inst{Op: OpAddi, RT: rt, RA: ra, Imm: signExt16(w)}
	case pocAddis:
		return Inst{Op: OpAddis, RT: rt, RA: ra, Imm: signExt16(w)}
	case pocOri:
		return Inst{Op: OpOri, RT: rt, RA: ra, Imm: int32(w & 0xFFFF)}
	case pocOris:
		return Inst{Op: OpOris, RT: rt, RA: ra, Imm: int32(w & 0xFFFF)}
	case pocAndiRc:
		return Inst{Op: OpAndiRc, RT: rt, RA: ra, Imm: int32(w & 0xFFFF), Rc: true}
	case pocXori:
		return Inst{Op: OpXori, RT: rt, RA: ra, Imm: int32(w & 0xFFFF)}
	case pocCmpwi:
		if rt&3 != 0 { // reserved bit and L must be zero
			break
		}
		return Inst{Op: OpCmpwi, CRF: uint8(w >> 23 & 7), RA: ra, Imm: signExt16(w)}
	case pocCmplwi:
		if rt&3 != 0 {
			break
		}
		return Inst{Op: OpCmplwi, CRF: uint8(w >> 23 & 7), RA: ra, Imm: int32(w & 0xFFFF)}
	case pocLwz:
		return Inst{Op: OpLwz, RT: rt, RA: ra, Imm: signExt16(w)}
	case pocLbz:
		return Inst{Op: OpLbz, RT: rt, RA: ra, Imm: signExt16(w)}
	case pocLhz:
		return Inst{Op: OpLhz, RT: rt, RA: ra, Imm: signExt16(w)}
	case pocStw:
		return Inst{Op: OpStw, RT: rt, RA: ra, Imm: signExt16(w)}
	case pocStb:
		return Inst{Op: OpStb, RT: rt, RA: ra, Imm: signExt16(w)}
	case pocSth:
		return Inst{Op: OpSth, RT: rt, RA: ra, Imm: signExt16(w)}
	case pocStwu:
		return Inst{Op: OpStwu, RT: rt, RA: ra, Imm: signExt16(w)}
	case pocLmw:
		return Inst{Op: OpLmw, RT: rt, RA: ra, Imm: signExt16(w)}
	case pocStmw:
		return Inst{Op: OpStmw, RT: rt, RA: ra, Imm: signExt16(w)}
	case pocB:
		return Inst{Op: OpB, Imm: signExt(w>>2&0xFFFFFF, 24) << 2, AA: w>>1&1 == 1, LK: w&1 == 1}
	case pocBc:
		return Inst{Op: OpBc, BO: rt, BI: ra, Imm: signExt(w>>2&0x3FFF, 14) << 2,
			AA: w>>1&1 == 1, LK: w&1 == 1}
	case pocSc:
		if w == pocSc<<26|2 {
			return Inst{Op: OpSc, Syscall: true}
		}
	case pocRlwinm:
		return Inst{Op: OpRlwinm, RT: rt, RA: ra, SH: rb,
			MB: uint8(w >> 6 & 0x1F), ME: uint8(w >> 1 & 0x1F), Rc: w&1 == 1}
	case pocXL:
		if rb != 0 { // BH and reserved bits must be zero
			break
		}
		switch w >> 1 & 0x3FF {
		case xlBclr:
			return Inst{Op: OpBclr, BO: rt, BI: ra, LK: w&1 == 1}
		case xlBcctr:
			return Inst{Op: OpBcctr, BO: rt, BI: ra, LK: w&1 == 1}
		}
	case pocX:
		rc := w&1 == 1
		switch w >> 1 & 0x3FF {
		case xoCmpw:
			if rt&3 != 0 || rc {
				break
			}
			return Inst{Op: OpCmpw, CRF: uint8(w >> 23 & 7), RA: ra, RB: rb}
		case xoCmplw:
			if rt&3 != 0 || rc {
				break
			}
			return Inst{Op: OpCmplw, CRF: uint8(w >> 23 & 7), RA: ra, RB: rb}
		case xoAnd:
			return Inst{Op: OpAnd, RT: rt, RA: ra, RB: rb, Rc: rc}
		case xoOr:
			return Inst{Op: OpOr, RT: rt, RA: ra, RB: rb, Rc: rc}
		case xoXor:
			return Inst{Op: OpXor, RT: rt, RA: ra, RB: rb, Rc: rc}
		case xoNor:
			return Inst{Op: OpNor, RT: rt, RA: ra, RB: rb, Rc: rc}
		case xoSlw:
			return Inst{Op: OpSlw, RT: rt, RA: ra, RB: rb, Rc: rc}
		case xoSrw:
			return Inst{Op: OpSrw, RT: rt, RA: ra, RB: rb, Rc: rc}
		case xoSraw:
			return Inst{Op: OpSraw, RT: rt, RA: ra, RB: rb, Rc: rc}
		case xoSrawi:
			return Inst{Op: OpSrawi, RT: rt, RA: ra, SH: rb, Rc: rc}
		case xoExtsb:
			if rb != 0 {
				break
			}
			return Inst{Op: OpExtsb, RT: rt, RA: ra, Rc: rc}
		case xoExtsh:
			if rb != 0 {
				break
			}
			return Inst{Op: OpExtsh, RT: rt, RA: ra, Rc: rc}
		case xoLwzx:
			if rc {
				break
			}
			return Inst{Op: OpLwzx, RT: rt, RA: ra, RB: rb}
		case xoStwx:
			if rc {
				break
			}
			return Inst{Op: OpStwx, RT: rt, RA: ra, RB: rb}
		case xoLbzx:
			if rc {
				break
			}
			return Inst{Op: OpLbzx, RT: rt, RA: ra, RB: rb}
		case xoLhzx:
			if rc {
				break
			}
			return Inst{Op: OpLhzx, RT: rt, RA: ra, RB: rb}
		case xoStbx:
			if rc {
				break
			}
			return Inst{Op: OpStbx, RT: rt, RA: ra, RB: rb}
		case xoSthx:
			if rc {
				break
			}
			return Inst{Op: OpSthx, RT: rt, RA: ra, RB: rb}
		case xoMfspr:
			if rc {
				break
			}
			return Inst{Op: OpMfspr, RT: rt, SPR: sprUnfield(w >> 11 & 0x3FF)}
		case xoMtspr:
			if rc {
				break
			}
			return Inst{Op: OpMtspr, RT: rt, SPR: sprUnfield(w >> 11 & 0x3FF)}
		}
		if w>>10&1 == 1 {
			break // OE forms are outside the subset
		}
		switch w >> 1 & 0x1FF {
		case xo9Add:
			return Inst{Op: OpAdd, RT: rt, RA: ra, RB: rb, Rc: rc}
		case xo9Subf:
			return Inst{Op: OpSubf, RT: rt, RA: ra, RB: rb, Rc: rc}
		case xo9Neg:
			if rb != 0 {
				break
			}
			return Inst{Op: OpNeg, RT: rt, RA: ra, Rc: rc}
		case xo9Mullw:
			return Inst{Op: OpMullw, RT: rt, RA: ra, RB: rb, Rc: rc}
		case xo9Divw:
			return Inst{Op: OpDivw, RT: rt, RA: ra, RB: rb, Rc: rc}
		}
	}
	return Inst{Op: OpInvalid}
}

// Valid reports whether the word decodes under the subset.
func Valid(w uint32) bool { return Decode(w).Op != OpInvalid }

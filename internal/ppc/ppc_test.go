package ppc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		word uint32
	}{
		{"addi", Addi(3, 4, -12)},
		{"li", Li(9, 200)},
		{"lis", Lis(12, 0x7fff)},
		{"addis", Addis(5, 6, -1)},
		{"ori", Ori(4, 5, 0xffff)},
		{"oris", Oris(4, 5, 0x1234)},
		{"andi.", AndiRc(7, 8, 0xff)},
		{"xori", Xori(1, 2, 3)},
		{"nop", Nop()},
		{"cmpwi", Cmpwi(1, 0, 8)},
		{"cmplwi", Cmplwi(1, 11, 7)},
		{"cmpw", Cmpw(0, 3, 4)},
		{"cmplw", Cmplw(7, 30, 31)},
		{"lwz", Lwz(9, 4, 28)},
		{"lbz", Lbz(9, 0, 28)},
		{"lhz", Lhz(3, -2, 1)},
		{"stw", Stw(18, 0, 28)},
		{"stb", Stb(18, 0, 28)},
		{"sth", Sth(0, 100, 1)},
		{"stwu", Stwu(1, -64, 1)},
		{"lmw", Lmw(29, 52, 1)},
		{"stmw", Stmw(29, 52, 1)},
		{"lwzx", Lwzx(3, 4, 5)},
		{"stwx", Stwx(3, 4, 5)},
		{"add", Add(0, 11, 1)},
		{"subf", Subf(3, 4, 5)},
		{"neg", Neg(3, 3)},
		{"mullw", Mullw(3, 4, 5)},
		{"divw", Divw(3, 4, 5)},
		{"and", And(3, 4, 5)},
		{"or", Or(3, 4, 5)},
		{"mr", Mr(31, 3)},
		{"xor", Xor(3, 4, 5)},
		{"nor", Nor(3, 4, 4)},
		{"slw", Slw(3, 4, 5)},
		{"srw", Srw(3, 4, 5)},
		{"sraw", Sraw(3, 4, 5)},
		{"srawi", Srawi(3, 4, 2)},
		{"extsb", Extsb(3, 4)},
		{"extsh", Extsh(3, 4)},
		{"rlwinm", Rlwinm(11, 9, 3, 5, 28)},
		{"clrlwi", Clrlwi(11, 9, 24)},
		{"slwi", Slwi(4, 4, 2)},
		{"srwi", Srwi(4, 4, 2)},
		{"b", B(0x1000)},
		{"b back", B(-0x1000)},
		{"bl", Bl(0x400)},
		{"bc ble", Ble(1, 0x40)},
		{"bc bgt", Bgt(1, -0x40)},
		{"beq", Beq(0, 8)},
		{"bne", Bne(0, -8)},
		{"blt", Blt(2, 1024)},
		{"bge", Bge(2, -1024)},
		{"bdnz", Bdnz(-16)},
		{"blr", Blr()},
		{"bctr", Bctr()},
		{"bctrl", Bctrl()},
		{"mflr", Mflr(0)},
		{"mtlr", Mtlr(0)},
		{"mfctr", Mfctr(12)},
		{"mtctr", Mtctr(12)},
		{"sc", Sc()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			inst := Decode(c.word)
			if inst.Op == OpInvalid {
				t.Fatalf("%s: word %08x decodes as invalid", c.name, c.word)
			}
			re := Encode(inst)
			if re != c.word {
				t.Fatalf("%s: round trip %08x -> %+v -> %08x", c.name, c.word, inst, re)
			}
		})
	}
}

// TestDecodeEncodeQuick is the property test: for every word that decodes
// as valid, re-encoding the decoded form must reproduce the word exactly.
func TestDecodeEncodeQuick(t *testing.T) {
	f := func(w uint32) bool {
		inst := Decode(w)
		if inst.Op == OpInvalid {
			return true
		}
		return Encode(inst) == w
	}
	cfg := &quick.Config{MaxCount: 20000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestReservedOpcodesAreInvalid(t *testing.T) {
	for _, poc := range ReservedOpcodes {
		// Any word with a reserved primary opcode must decode invalid,
		// whatever its low bits are.
		for _, low := range []uint32{0, 1, 0x03FFFFFF, 0x2AAAAAA} {
			w := uint32(poc)<<26 | low
			if Valid(w) {
				t.Errorf("word %08x with reserved opcode %d decodes as valid", w, poc)
			}
		}
	}
}

func TestEscapeBytes(t *testing.T) {
	eb := EscapeBytes()
	if len(eb) != 32 {
		t.Fatalf("expected 32 escape bytes, got %d", len(eb))
	}
	seen := map[byte]bool{}
	for _, b := range eb {
		if seen[b] {
			t.Fatalf("duplicate escape byte %02x", b)
		}
		seen[b] = true
		if !IsEscapeByte(b) {
			t.Errorf("escape byte %02x not recognized", b)
		}
	}
	// No valid instruction's first byte may be an escape byte.
	words := []uint32{Addi(3, 4, 5), Lwz(9, 0, 28), B(16), Blr(), Sc(), Rlwinm(1, 2, 3, 4, 5)}
	for _, w := range words {
		if IsEscapeByte(byte(w >> 24)) {
			t.Errorf("valid instruction %08x starts with escape byte", w)
		}
	}
}

func TestBranchClassification(t *testing.T) {
	tests := []struct {
		word                  uint32
		rel, branch, indirect bool
	}{
		{B(64), true, true, false},
		{Bl(64), true, true, false},
		{Ble(1, -4), true, true, false},
		{Blr(), false, true, true},
		{Bctr(), false, true, true},
		{Add(1, 2, 3), false, false, false},
		{Lwz(1, 0, 2), false, false, false},
	}
	for _, tc := range tests {
		if got := IsRelativeBranch(tc.word); got != tc.rel {
			t.Errorf("IsRelativeBranch(%s) = %v, want %v", Disassemble(tc.word), got, tc.rel)
		}
		if got := IsBranch(tc.word); got != tc.branch {
			t.Errorf("IsBranch(%s) = %v, want %v", Disassemble(tc.word), got, tc.branch)
		}
		if got := IsIndirectBranch(tc.word); got != tc.indirect {
			t.Errorf("IsIndirectBranch(%s) = %v, want %v", Disassemble(tc.word), got, tc.indirect)
		}
	}
}

func TestIsCall(t *testing.T) {
	if !IsCall(Bl(8)) {
		t.Error("bl not classified as call")
	}
	if IsCall(B(8)) {
		t.Error("b classified as call")
	}
	if !IsCall(Bctrl()) {
		t.Error("bctrl not classified as call")
	}
	if IsCall(Blr()) {
		t.Error("blr classified as call")
	}
}

func TestRelDisplacement(t *testing.T) {
	for _, d := range []int32{0, 4, -4, 1024, -32768, 32764} {
		w := Bc(BoTrue, 6, d)
		got, ok := RelDisplacement(w)
		if !ok || got != d {
			t.Errorf("bc disp %d: got %d ok=%v", d, got, ok)
		}
	}
	for _, d := range []int32{0, 4, -4, 1 << 20, -(1 << 22)} {
		w := B(d)
		got, ok := RelDisplacement(w)
		if !ok || got != d {
			t.Errorf("b disp %d: got %d ok=%v", d, got, ok)
		}
	}
	if _, ok := RelDisplacement(Blr()); ok {
		t.Error("blr has a displacement?")
	}
}

func TestSetField(t *testing.T) {
	w := Ble(1, 0x40) // field value 0x10
	v, bits, ok := FieldValue(w)
	if !ok || v != 0x10 || bits != BDBits {
		t.Fatalf("FieldValue = %d,%d,%v", v, bits, ok)
	}
	// Reinterpret offsets at byte granularity: field 0x40 means 0x40 units.
	nw, err := SetField(w, 0x40)
	if err != nil {
		t.Fatal(err)
	}
	nv, _, _ := FieldValue(nw)
	if nv != 0x40 {
		t.Fatalf("after SetField, field = %d", nv)
	}
	// BO/BI must be preserved.
	oi, ni := Decode(w), Decode(nw)
	if oi.BO != ni.BO || oi.BI != ni.BI || oi.LK != ni.LK {
		t.Fatal("SetField corrupted non-offset fields")
	}
	// Overflow must error.
	if _, err := SetField(w, 1<<13); err == nil {
		t.Error("BD overflow not detected")
	}
	if _, err := SetField(B(0), 1<<23); err == nil {
		t.Error("LI overflow not detected")
	}
	if _, err := SetField(Blr(), 0); err == nil {
		t.Error("SetField on non-branch did not error")
	}
}

// TestSetFieldQuick: writing any in-range value into a branch and reading
// it back is the identity, and never corrupts other fields.
func TestSetFieldQuick(t *testing.T) {
	f := func(raw int32, cond bool) bool {
		var w uint32
		var lim int32
		if cond {
			w = Bne(1, 0)
			lim = 1 << (BDBits - 1)
		} else {
			w = Bl(0)
			lim = 1 << (LIBits - 1)
		}
		v := raw % lim
		nw, err := SetField(w, v)
		if err != nil {
			return false
		}
		got, _, ok := FieldValue(nw)
		return ok && got == v
	}
	cfg := &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDisassemble(t *testing.T) {
	cases := []struct {
		word uint32
		want string
	}{
		{Lbz(9, 0, 28), "lbz r9,0(r28)"},
		{Clrlwi(11, 9, 24), "clrlwi r11,r9,24"},
		{Addi(0, 11, 1), "addi r0,r11,1"},
		{Cmplwi(1, 0, 8), "cmplwi cr1,r0,8"},
		{Ble(1, 0x1c8), "ble cr1,.+0x1c8"},
		{Bgt(1, -0x34), "bgt cr1,.-0x34"},
		{Lwz(9, 4, 28), "lwz r9,4(r28)"},
		{Stb(18, 0, 28), "stb r18,0(r28)"},
		{B(0x38), "b .+0x38"},
		{Li(3, 1), "li r3,1"},
		{Nop(), "nop"},
		{Mr(31, 3), "mr r31,r3"},
		{Blr(), "blr"},
		{Mflr(0), "mflr r0"},
		{Mtctr(12), "mtctr r12"},
		{Sc(), "sc"},
		{uint32(0x00000000), ".long 0x00000000"},
		{Srawi(4, 3, 2), "srawi r4,r3,2"},
		{Slwi(5, 6, 2), "slwi r5,r6,2"},
		{Bdnz(-16), "bdnz .-0x10"},
	}
	for _, c := range cases {
		if got := Disassemble(c.word); got != c.want {
			t.Errorf("Disassemble(%08x) = %q, want %q", c.word, got, c.want)
		}
	}
}

func TestEncodePanicsOnBadFields(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad reg", func() { Encode(Inst{Op: OpAdd, RT: 32}) })
	mustPanic("bad simm", func() { Encode(Inst{Op: OpAddi, Imm: 1 << 20}) })
	mustPanic("bad uimm", func() { Encode(Inst{Op: OpOri, Imm: -1}) })
	mustPanic("unaligned branch", func() { Encode(Inst{Op: OpB, Imm: 3}) })
	mustPanic("branch too far", func() { Encode(Inst{Op: OpBc, Imm: 1 << 20}) })
}

func TestPrimaryOpcode(t *testing.T) {
	if PrimaryOpcode(Addi(1, 2, 3)) != 14 {
		t.Error("addi primary opcode != 14")
	}
	if PrimaryOpcode(Lwz(1, 0, 2)) != 32 {
		t.Error("lwz primary opcode != 32")
	}
}

func TestConditionalClassification(t *testing.T) {
	if !IsConditional(Beq(0, 8)) {
		t.Error("beq not conditional")
	}
	if IsConditional(Bc(BoAlways, 0, 8)) {
		t.Error("bc always is conditional")
	}
	if IsConditional(Blr()) {
		t.Error("blr conditional")
	}
	if IsConditional(B(8)) {
		t.Error("b conditional")
	}
}

func TestDisassembleAll(t *testing.T) {
	out := DisassembleAll([]uint32{Li(3, 1), Blr()})
	for _, want := range []string{"li r3,1", "blr", "0:", "1:"} {
		if !strings.Contains(out, want) {
			t.Errorf("DisassembleAll missing %q in %q", want, out)
		}
	}
}

func TestOpNames(t *testing.T) {
	if OpAdd.Name() != "add" || OpRlwinm.Name() != "rlwinm" {
		t.Error("bad op names")
	}
	if Op(250).Name() != "<bad>" {
		t.Error("out-of-range op name")
	}
	if OpAdd.Form() != FormXO || OpLwz.Form() != FormD || Op(250).Form() != FormD {
		t.Error("bad forms")
	}
}

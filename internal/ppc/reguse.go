package ppc

// RegSet is a set of general-purpose registers.
type RegSet uint32

// Has reports membership.
func (s RegSet) Has(r uint8) bool { return s>>(r&31)&1 == 1 }

func (s *RegSet) add(r uint8) { *s |= 1 << (r & 31) }

// RegUses returns the GPRs an instruction reads and writes. The RA=0
// convention of addi/addis and load/store effective addresses is honored
// (r0 is not read there). Special registers (LR, CTR, CR) are outside the
// set; use the Op to reason about them.
func RegUses(i Inst) (reads, writes RegSet) {
	ra0 := func() {
		if i.RA != 0 {
			reads.add(i.RA)
		}
	}
	switch i.Op {
	case OpAddi, OpAddis:
		writes.add(i.RT)
		ra0()
	case OpOri, OpOris, OpAndiRc, OpXori:
		writes.add(i.RA)
		reads.add(i.RT)
	case OpCmpwi, OpCmplwi:
		reads.add(i.RA)
	case OpCmpw, OpCmplw:
		reads.add(i.RA)
		reads.add(i.RB)
	case OpLwz, OpLbz, OpLhz:
		writes.add(i.RT)
		ra0()
	case OpStw, OpStb, OpSth:
		reads.add(i.RT)
		ra0()
	case OpStwu:
		reads.add(i.RT)
		reads.add(i.RA)
		writes.add(i.RA)
	case OpLmw:
		for r := i.RT; ; r++ {
			writes.add(r)
			if r == 31 {
				break
			}
		}
		ra0()
	case OpStmw:
		for r := i.RT; ; r++ {
			reads.add(r)
			if r == 31 {
				break
			}
		}
		ra0()
	case OpLwzx, OpLbzx, OpLhzx:
		writes.add(i.RT)
		ra0()
		reads.add(i.RB)
	case OpStwx, OpStbx, OpSthx:
		reads.add(i.RT)
		ra0()
		reads.add(i.RB)
	case OpAdd, OpSubf, OpMullw, OpDivw:
		writes.add(i.RT)
		reads.add(i.RA)
		reads.add(i.RB)
	case OpNeg:
		writes.add(i.RT)
		reads.add(i.RA)
	case OpAnd, OpOr, OpXor, OpNor, OpSlw, OpSrw, OpSraw:
		writes.add(i.RA)
		reads.add(i.RT)
		reads.add(i.RB)
	case OpSrawi, OpRlwinm, OpExtsb, OpExtsh:
		writes.add(i.RA)
		reads.add(i.RT)
	case OpMfspr:
		writes.add(i.RT)
	case OpMtspr:
		reads.add(i.RT)
	case OpSc:
		// By the simulator's convention sc reads r0 (selector) and r3
		// (argument) and may be treated as clobbering r3.
		reads.add(0)
		reads.add(3)
	case OpB, OpBc, OpBclr, OpBcctr:
		// No GPR traffic; LR/CTR are special registers.
	}
	return reads, writes
}

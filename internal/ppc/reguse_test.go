package ppc

import "testing"

func rs(regs ...uint8) RegSet {
	var s RegSet
	for _, r := range regs {
		s.add(r)
	}
	return s
}

func TestRegUses(t *testing.T) {
	cases := []struct {
		word   uint32
		reads  RegSet
		writes RegSet
	}{
		{Addi(3, 4, 5), rs(4), rs(3)},
		{Li(3, 5), rs(), rs(3)}, // RA=0 means literal zero
		{Addis(9, 0, 2), rs(), rs(9)},
		{Ori(4, 5, 1), rs(5), rs(4)},
		{AndiRc(7, 8, 0xFF), rs(8), rs(7)},
		{Cmpwi(0, 3, 1), rs(3), rs()},
		{Cmpw(1, 3, 4), rs(3, 4), rs()},
		{Lwz(9, 4, 28), rs(28), rs(9)},
		{Lwz(9, 4, 0), rs(), rs(9)},
		{Stw(18, 0, 28), rs(18, 28), rs()},
		{Stwu(1, -32, 1), rs(1), rs(1)},
		{Lmw(29, 52, 1), rs(1), rs(29, 30, 31)},
		{Stmw(30, 24, 1), rs(1, 30, 31), rs()},
		{Lwzx(3, 4, 5), rs(4, 5), rs(3)},
		{Lbzx(3, 0, 5), rs(5), rs(3)},
		{Stbx(3, 4, 5), rs(3, 4, 5), rs()},
		{Add(3, 4, 5), rs(4, 5), rs(3)},
		{Neg(3, 4), rs(4), rs(3)},
		{Or(3, 4, 5), rs(4, 5), rs(3)},
		{Mr(31, 3), rs(3), rs(31)},
		{Srawi(4, 3, 2), rs(3), rs(4)},
		{Rlwinm(11, 9, 3, 5, 28), rs(9), rs(11)},
		{Extsb(3, 4), rs(4), rs(3)},
		{Mflr(0), rs(), rs(0)},
		{Mtctr(12), rs(12), rs()},
		{B(16), rs(), rs()},
		{Beq(0, 8), rs(), rs()},
		{Blr(), rs(), rs()},
		{Sc(), rs(0, 3), rs()},
	}
	for _, c := range cases {
		reads, writes := RegUses(Decode(c.word))
		if reads != c.reads || writes != c.writes {
			t.Errorf("%s: reads %032b writes %032b, want %032b / %032b",
				Disassemble(c.word), reads, writes, c.reads, c.writes)
		}
	}
}

// TestRegUsesWritesMatchExecution cross-checks the write sets against the
// interpreter: for straightforward ALU ops, exactly the registers RegUses
// reports as written may change (the read set is validated by the
// differential machine test).
func TestRegUsesHas(t *testing.T) {
	var s RegSet
	s.add(0)
	s.add(31)
	if !s.Has(0) || !s.Has(31) || s.Has(15) {
		t.Fatalf("RegSet membership broken: %032b", s)
	}
}

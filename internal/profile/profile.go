// Package profile implements the paper's static program analyses: the
// instruction-encoding redundancy measurements of Figure 1, the
// branch-offset field-usage study of Table 1, and the prologue/epilogue
// accounting of Table 3.
package profile

import (
	"sort"

	"repro/internal/ppc"
	"repro/internal/program"
)

// EncodingProfile is Figure 1's measurement plus the frequency-coverage
// curve behind the "1% of distinct words cover 30% of go" observation.
type EncodingProfile struct {
	TotalInsns int

	// DistinctEncodings is the number of distinct 32-bit instruction words.
	DistinctEncodings int

	// SingleUseInsns counts instructions whose bit pattern occurs exactly
	// once in the program; MultiUseInsns counts the rest. They sum to
	// TotalInsns.
	SingleUseInsns int
	MultiUseInsns  int

	// freqDesc holds occurrence counts of distinct encodings, descending.
	freqDesc []int
}

// SingleUseFrac is the fraction of program instructions with single-use
// encodings (the paper reports < 20% on average).
func (e *EncodingProfile) SingleUseFrac() float64 {
	if e.TotalInsns == 0 {
		return 0
	}
	return float64(e.SingleUseInsns) / float64(e.TotalInsns)
}

// MultiUseFrac is the complementary fraction.
func (e *EncodingProfile) MultiUseFrac() float64 {
	if e.TotalInsns == 0 {
		return 0
	}
	return float64(e.MultiUseInsns) / float64(e.TotalInsns)
}

// Coverage returns the fraction of all program instructions covered by the
// most frequent fracDistinct (0..1] of distinct encodings — e.g.
// Coverage(0.01) answers "how much of the program do the top 1% of
// instruction words account for".
func (e *EncodingProfile) Coverage(fracDistinct float64) float64 {
	if e.TotalInsns == 0 || len(e.freqDesc) == 0 {
		return 0
	}
	n := int(fracDistinct * float64(len(e.freqDesc)))
	if n < 1 {
		n = 1
	}
	if n > len(e.freqDesc) {
		n = len(e.freqDesc)
	}
	covered := 0
	for _, f := range e.freqDesc[:n] {
		covered += f
	}
	return float64(covered) / float64(e.TotalInsns)
}

// AnalyzeEncodings computes the Figure 1 measurement for a program.
func AnalyzeEncodings(p *program.Program) *EncodingProfile {
	freq := make(map[uint32]int, len(p.Text))
	for _, w := range p.Text {
		freq[w]++
	}
	e := &EncodingProfile{
		TotalInsns:        len(p.Text),
		DistinctEncodings: len(freq),
	}
	e.freqDesc = make([]int, 0, len(freq))
	for _, n := range freq {
		e.freqDesc = append(e.freqDesc, n)
		if n == 1 {
			e.SingleUseInsns++
		} else {
			e.MultiUseInsns += n
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(e.freqDesc)))
	return e
}

// BranchOffsetUsage is one row of Table 1: how many PC-relative branches
// would overflow their offset field if the field were reinterpreted at
// finer-than-word alignment (2-byte, 1-byte, 4-bit), which is exactly what
// the compressed-program control unit does (§3.2.2).
type BranchOffsetUsage struct {
	RelativeBranches int

	// TooNarrow[r] counts branches whose displacement no longer fits when
	// the field must express r-resolution targets. Index by Resolution.
	TooNarrow2Byte int
	TooNarrow1Byte int
	TooNarrow4Bit  int
}

// Frac2Byte returns the 2-byte-resolution overflow fraction.
func (b *BranchOffsetUsage) Frac2Byte() float64 { return frac(b.TooNarrow2Byte, b.RelativeBranches) }

// Frac1Byte returns the 1-byte-resolution overflow fraction.
func (b *BranchOffsetUsage) Frac1Byte() float64 { return frac(b.TooNarrow1Byte, b.RelativeBranches) }

// Frac4Bit returns the 4-bit-resolution overflow fraction.
func (b *BranchOffsetUsage) Frac4Bit() float64 { return frac(b.TooNarrow4Bit, b.RelativeBranches) }

func frac(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// AnalyzeBranchOffsets computes Table 1 for a program. A branch offset
// field that today holds displacement/4 must hold displacement/r for
// resolution r; the branch is "not wide enough" when that value exceeds
// the field.
func AnalyzeBranchOffsets(p *program.Program) *BranchOffsetUsage {
	u := &BranchOffsetUsage{}
	for _, w := range p.Text {
		v, _, ok := ppc.FieldValue(w)
		if !ok {
			continue
		}
		u.RelativeBranches++
		if !ppc.FitsField(w, v*2) {
			u.TooNarrow2Byte++
		}
		if !ppc.FitsField(w, v*4) {
			u.TooNarrow1Byte++
		}
		if !ppc.FitsField(w, v*8) {
			u.TooNarrow4Bit++
		}
	}
	return u
}

// PrologueEpilogue is one row of Table 3.
type PrologueEpilogue struct {
	TotalInsns    int
	PrologueInsns int
	EpilogueInsns int
}

// PrologueFrac is the prologue share of the program text.
func (t *PrologueEpilogue) PrologueFrac() float64 { return frac(t.PrologueInsns, t.TotalInsns) }

// EpilogueFrac is the epilogue share of the program text.
func (t *PrologueEpilogue) EpilogueFrac() float64 { return frac(t.EpilogueInsns, t.TotalInsns) }

// AnalyzePrologueEpilogue computes Table 3 from the compiler's markers.
func AnalyzePrologueEpilogue(p *program.Program) *PrologueEpilogue {
	t := &PrologueEpilogue{TotalInsns: len(p.Text)}
	for _, r := range p.Prologue {
		t.PrologueInsns += r.Len()
	}
	for _, r := range p.Epilogue {
		t.EpilogueInsns += r.Len()
	}
	return t
}

package profile

import (
	"testing"

	"repro/internal/ppc"
	"repro/internal/program"
	"repro/internal/synth"
)

// synthetic builds a trivial program with known encoding frequencies.
func synthetic(t *testing.T, words []uint32) *program.Program {
	t.Helper()
	b := program.NewBuilder("t")
	f := b.Func("main")
	for _, w := range words {
		f.Emit(w)
	}
	f.Emit(ppc.Blr())
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEncodingProfileCounts(t *testing.T) {
	// 3×addi(1), 2×addi(2), 1×addi(3), plus the blr terminator (1 use).
	w1, w2, w3 := ppc.Addi(3, 3, 1), ppc.Addi(3, 3, 2), ppc.Addi(3, 3, 3)
	p := synthetic(t, []uint32{w1, w1, w1, w2, w2, w3})
	e := AnalyzeEncodings(p)
	if e.TotalInsns != 7 {
		t.Fatalf("total %d", e.TotalInsns)
	}
	if e.DistinctEncodings != 4 {
		t.Fatalf("distinct %d", e.DistinctEncodings)
	}
	if e.SingleUseInsns != 2 { // w3 and blr
		t.Fatalf("single-use %d", e.SingleUseInsns)
	}
	if e.MultiUseInsns != 5 {
		t.Fatalf("multi-use %d", e.MultiUseInsns)
	}
	if e.SingleUseInsns+e.MultiUseInsns != e.TotalInsns {
		t.Fatal("fractions do not partition the program")
	}
	// Top 1 of 4 distinct encodings (25%) covers the 3 w1 instances.
	if got := e.Coverage(0.25); got < 3.0/7-1e-9 || got > 3.0/7+1e-9 {
		t.Fatalf("Coverage(0.25) = %v", got)
	}
	if e.Coverage(1.0) != 1.0 {
		t.Fatalf("Coverage(1.0) = %v", e.Coverage(1.0))
	}
}

func TestBranchOffsetUsageSynthetic(t *testing.T) {
	// Build branches with controlled displacements using raw field
	// patching. bc has a 14-bit field: displacement field values up to
	// ±8191 fit. A field value v survives resolution r when v*(4/r) fits.
	mk := func(field int32) uint32 {
		w, err := ppc.SetField(ppc.Beq(0, 0), field)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	b := program.NewBuilder("t")
	f := b.Func("main")
	// In-range branch targets are irrelevant here; bypass Link validation
	// by keeping displacement 0 words and analyzing raw text instead.
	f.Emit(ppc.Blr())
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	p.Text = []uint32{
		mk(100),  // fits all resolutions
		mk(3000), // 2-byte ok (6000), 1-byte out (12000), 4-bit out
		mk(5000), // 2-byte out (10000)
		ppc.Blr(),
	}
	u := AnalyzeBranchOffsets(p)
	if u.RelativeBranches != 3 {
		t.Fatalf("branches %d", u.RelativeBranches)
	}
	if u.TooNarrow2Byte != 1 || u.TooNarrow1Byte != 2 || u.TooNarrow4Bit != 2 {
		t.Fatalf("narrow counts: %d/%d/%d", u.TooNarrow2Byte, u.TooNarrow1Byte, u.TooNarrow4Bit)
	}
	// Monotonicity: finer resolution can only lose more branches.
	if u.TooNarrow2Byte > u.TooNarrow1Byte || u.TooNarrow1Byte > u.TooNarrow4Bit {
		t.Fatal("resolution monotonicity violated")
	}
}

func TestPrologueEpilogue(t *testing.T) {
	b := program.NewBuilder("t")
	f := b.Func("main")
	f.BeginPrologue()
	f.Emit(ppc.Mflr(0))
	f.Emit(ppc.Stw(0, 8, 1))
	f.EndPrologue()
	f.Emit(ppc.Li(3, 0))
	f.BeginEpilogue()
	f.Emit(ppc.Lwz(0, 8, 1))
	f.Emit(ppc.Mtlr(0))
	f.Emit(ppc.Blr())
	f.EndEpilogue()
	p, err := b.Link()
	if err != nil {
		t.Fatal(err)
	}
	pe := AnalyzePrologueEpilogue(p)
	if pe.PrologueInsns != 2 || pe.EpilogueInsns != 3 || pe.TotalInsns != 6 {
		t.Fatalf("%+v", pe)
	}
	if pe.PrologueFrac() <= 0 || pe.EpilogueFrac() <= 0 {
		t.Fatal("zero fractions")
	}
}

// TestCorpusShapes checks the paper's headline static observations on the
// generated corpus: single-use encodings well under half the program (the
// paper reports <20% on average), strong top-percentile coverage, small
// branch-overflow tails that grow as resolution shrinks, and a prologue+
// epilogue share near 12%.
func TestCorpusShapes(t *testing.T) {
	var sumSingle, sumCov, sumPE float64
	n := 0
	for _, name := range synth.BenchmarkNames() {
		p, err := synth.Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		e := AnalyzeEncodings(p)
		if e.SingleUseFrac() > 0.5 {
			t.Errorf("%s: single-use fraction %.2f implausibly high", name, e.SingleUseFrac())
		}
		cov10 := e.Coverage(0.10)
		if cov10 < 0.2 {
			t.Errorf("%s: top-10%% coverage only %.2f", name, cov10)
		}
		u := AnalyzeBranchOffsets(p)
		if u.RelativeBranches == 0 {
			t.Fatalf("%s: no relative branches?", name)
		}
		if u.TooNarrow2Byte > u.TooNarrow1Byte || u.TooNarrow1Byte > u.TooNarrow4Bit {
			t.Errorf("%s: overflow counts not monotone", name)
		}
		if u.Frac4Bit() > 0.5 {
			t.Errorf("%s: %.0f%% of branches overflow at 4-bit resolution — functions too large",
				name, 100*u.Frac4Bit())
		}
		pe := AnalyzePrologueEpilogue(p)
		if pe.PrologueInsns == 0 || pe.EpilogueInsns == 0 {
			t.Errorf("%s: missing prologue/epilogue markers", name)
		}
		sumSingle += e.SingleUseFrac()
		sumCov += cov10
		sumPE += pe.PrologueFrac() + pe.EpilogueFrac()
		n++
	}
	t.Logf("corpus means: single-use %.1f%%, top-10%% coverage %.1f%%, prologue+epilogue %.1f%%",
		100*sumSingle/float64(n), 100*sumCov/float64(n), 100*sumPE/float64(n))
	if sumSingle/float64(n) > 0.30 {
		t.Errorf("mean single-use fraction %.2f too high vs paper's <20%%", sumSingle/float64(n))
	}
	if avg := sumPE / float64(n); avg < 0.04 || avg > 0.30 {
		t.Errorf("mean prologue+epilogue share %.2f outside plausible band around paper's 12%%", avg)
	}
}

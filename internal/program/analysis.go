package program

import (
	"fmt"

	"repro/internal/ppc"
)

// Analysis is the post-compilation view the compressor needs: basic-block
// leaders, branch targets, and per-word classification. It is recovered
// from the linked binary (words + symbols + jump-table relocations), the
// same information a real post-compilation analyzer has.
type Analysis struct {
	// Leader[i] is true when text word i starts a basic block. Dictionary
	// entries may not span a leader (branches may target codewords but not
	// the middle of an encoded sequence, §3.1.1).
	Leader []bool

	// Target[i] holds the target word index for relative branches at i.
	Target map[int]int
}

// Analyze recovers basic-block structure from a linked program. Leaders
// are: function entries (symbols), the entry point, every relative-branch
// target, every jump-table target, and every instruction following any
// branch (conditional, unconditional or indirect).
func Analyze(p *Program) (*Analysis, error) {
	n := len(p.Text)
	a := &Analysis{
		Leader: make([]bool, n),
		Target: make(map[int]int),
	}
	if n == 0 {
		return a, nil
	}
	a.Leader[0] = true
	if p.Entry < n {
		a.Leader[p.Entry] = true
	}
	for _, s := range p.Symbols {
		a.Leader[s.Word] = true
	}
	jts, err := p.JumpTableTargets()
	if err != nil {
		return nil, err
	}
	for _, t := range jts {
		a.Leader[t] = true
	}
	for i, w := range p.Text {
		if ppc.IsRelativeBranch(w) {
			disp, _ := ppc.RelDisplacement(w)
			if disp%4 != 0 {
				return nil, fmt.Errorf("program: unaligned displacement at word %d", i)
			}
			t := i + int(disp)/4
			if t < 0 || t >= n {
				return nil, fmt.Errorf("program: branch at word %d exits text (target %d)", i, t)
			}
			a.Target[i] = t
			a.Leader[t] = true
		}
		if ppc.IsBranch(w) && i+1 < n {
			a.Leader[i+1] = true
		}
	}
	return a, nil
}

// Blocks returns the basic blocks as word-index ranges in layout order.
func (a *Analysis) Blocks() []Range {
	var out []Range
	start := -1
	for i := range a.Leader {
		if a.Leader[i] {
			if start >= 0 {
				out = append(out, Range{start, i})
			}
			start = i
		}
	}
	if start >= 0 {
		out = append(out, Range{start, len(a.Leader)})
	}
	return out
}

// BlockCount returns the number of basic blocks.
func (a *Analysis) BlockCount() int {
	n := 0
	for _, l := range a.Leader {
		if l {
			n++
		}
	}
	return n
}

package program

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ppc"
)

// AssembleSource builds a linked program from textual assembly. The
// format is one instruction per line in ppc.Assemble syntax, plus:
//
//	.program NAME        module name (optional, first line)
//	.entry NAME          entry function (optional, default first)
//	.func NAME           start a function
//	label:               bind a local label
//	b/bl/blt/… label     branches may name a local label or, for b/bl,
//	                     another function; numeric .±0x… displacements
//	                     still work
//	.data NAME           start a named data object; until the next
//	                     directive, fill it with:
//	.word v, v, …        32-bit big-endian values
//	.byte v, v, …        bytes
//	.asciz "text"        NUL-terminated string
//	la rD, NAME          pseudo-instruction: materialize a data object's
//	                     address (expands to lis+ori)
//	# comment            comments and blank lines are skipped
//
// Example:
//
//	.func main
//	    li   r3,5
//	    bl   double
//	    li   r0,0
//	    sc
//	.func double
//	    add  r3,r3,r3
//	    blr
func AssembleSource(src string) (*Program, error) {
	var b *Builder
	var f *FuncBuilder
	name := "asm"
	entry := ""
	funcs := map[string]bool{}
	dataAddr := map[string]uint32{}
	inData := false
	curData := ""

	// First pass: collect function names so branch operands can
	// distinguish calls from local labels.
	for _, line := range strings.Split(src, "\n") {
		line = stripComment(line)
		if rest, ok := cutDirective(line, ".func"); ok {
			funcs[rest] = true
		}
	}

	for ln, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		fail := func(err error) error { return fmt.Errorf("line %d: %w", ln+1, err) }
		switch {
		case strings.HasPrefix(line, ".program"):
			rest, _ := cutDirective(line, ".program")
			if rest == "" {
				return nil, fail(fmt.Errorf(".program needs a name"))
			}
			name = rest
		case strings.HasPrefix(line, ".entry"):
			rest, _ := cutDirective(line, ".entry")
			if rest == "" {
				return nil, fail(fmt.Errorf(".entry needs a name"))
			}
			entry = rest
		case strings.HasPrefix(line, ".func"):
			rest, _ := cutDirective(line, ".func")
			if rest == "" {
				return nil, fail(fmt.Errorf(".func needs a name"))
			}
			if b == nil {
				b = NewBuilder(name)
			}
			f = b.Func(rest)
			inData = false
		case strings.HasPrefix(line, ".data"):
			rest, _ := cutDirective(line, ".data")
			if rest == "" {
				return nil, fail(fmt.Errorf(".data needs a name"))
			}
			if b == nil {
				b = NewBuilder(name)
			}
			if _, dup := dataAddr[rest]; dup {
				return nil, fail(fmt.Errorf("duplicate data object %q", rest))
			}
			off := b.ReserveData(0, 4)
			dataAddr[rest] = uint32(DefaultDataBase + off)
			inData = true
			curData = rest
			f = nil
		case strings.HasPrefix(line, ".word"), strings.HasPrefix(line, ".byte"), strings.HasPrefix(line, ".asciz"):
			if !inData {
				return nil, fail(fmt.Errorf("%s outside a .data object", strings.Fields(line)[0]))
			}
			if err := appendDataLine(b, line); err != nil {
				return nil, fail(fmt.Errorf("in %s: %w", curData, err))
			}
		case strings.HasSuffix(line, ":"):
			if f == nil {
				return nil, fail(fmt.Errorf("label outside a function"))
			}
			f.Label(strings.TrimSuffix(line, ":"))
		default:
			if f == nil {
				return nil, fail(fmt.Errorf("instruction outside a function"))
			}
			if err := assembleLine(f, line, funcs, dataAddr); err != nil {
				return nil, fail(err)
			}
		}
	}
	if b == nil {
		return nil, fmt.Errorf("program: no .func in source")
	}
	if entry != "" {
		b.SetEntry(entry)
	}
	return b.Link()
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

// cutDirective matches ".dir rest" and returns the trimmed rest.
func cutDirective(line, dir string) (string, bool) {
	if line == dir {
		return "", true
	}
	if strings.HasPrefix(line, dir+" ") || strings.HasPrefix(line, dir+"\t") {
		return strings.TrimSpace(line[len(dir):]), true
	}
	return "", false
}

// appendDataLine parses one .word/.byte/.asciz content line into the
// current (last-reserved) data object.
func appendDataLine(b *Builder, line string) error {
	if rest, ok := cutDirective(line, ".asciz"); ok {
		s, err := strconv.Unquote(rest)
		if err != nil {
			return fmt.Errorf("bad string %s", rest)
		}
		b.AppendData(append([]byte(s), 0))
		return nil
	}
	word := strings.HasPrefix(line, ".word")
	rest := strings.TrimSpace(line[len(".word"):]) // ".byte" has equal length
	for _, fld := range strings.Split(rest, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(fld), 0, 64)
		if err != nil {
			return fmt.Errorf("bad value %q", strings.TrimSpace(fld))
		}
		if word {
			u := uint32(v)
			b.AppendData([]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)})
		} else {
			b.AppendData([]byte{byte(v)})
		}
	}
	return nil
}

// assembleLine emits one instruction, turning symbolic branch targets into
// builder fixups and expanding the la pseudo-instruction.
func assembleLine(f *FuncBuilder, line string, funcs map[string]bool, dataAddr map[string]uint32) error {
	mnem := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	if mnem == "la" {
		parts := strings.Split(rest, ",")
		if len(parts) != 2 {
			return fmt.Errorf("la needs rD,NAME")
		}
		regOp := strings.TrimSpace(parts[0])
		nameOp := strings.TrimSpace(parts[1])
		addr, ok := dataAddr[nameOp]
		if !ok {
			return fmt.Errorf("la references undefined data object %q", nameOp)
		}
		hi, err := ppc.Assemble(fmt.Sprintf("lis %s,%d", regOp, int32(int16(uint16(addr>>16)))))
		if err != nil {
			return err
		}
		lo, err := ppc.Assemble(fmt.Sprintf("ori %s,%s,%d", regOp, regOp, addr&0xFFFF))
		if err != nil {
			return err
		}
		f.Emit(hi)
		f.Emit(lo)
		return nil
	}
	// Does the final operand name a symbol rather than a displacement or
	// number? Only relative-branch mnemonics may use symbols.
	ops := []string{}
	if rest != "" {
		ops = strings.Split(rest, ",")
		for i := range ops {
			ops[i] = strings.TrimSpace(ops[i])
		}
	}
	if isBranchMnemonic(mnem) && len(ops) > 0 && isSymbol(ops[len(ops)-1]) {
		target := ops[len(ops)-1]
		ops[len(ops)-1] = ".+0x0" // placeholder displacement
		w, err := ppc.Assemble(mnem + " " + strings.Join(ops, ","))
		if err != nil {
			return err
		}
		if funcs[target] {
			switch mnem {
			case "bl":
				f.Call(target)
				return nil
			case "b":
				f.Goto(target)
				return nil
			default:
				return fmt.Errorf("conditional branch to another function %q", target)
			}
		}
		f.Branch(w, target)
		return nil
	}
	w, err := ppc.Assemble(line)
	if err != nil {
		return err
	}
	f.Emit(w)
	return nil
}

func isBranchMnemonic(m string) bool {
	switch m {
	case "b", "bl", "blt", "bgt", "beq", "bge", "ble", "bne",
		"bltl", "bgtl", "beql", "bgel", "blel", "bnel",
		"bdnz", "bdnzl", "bc", "bcl":
		return true
	}
	return false
}

// isSymbol reports whether the operand is a name (not a displacement,
// register or number).
func isSymbol(s string) bool {
	if s == "" || strings.HasPrefix(s, ".") || strings.HasPrefix(s, "-") {
		return false
	}
	c := s[0]
	if c >= '0' && c <= '9' {
		return false
	}
	// Registers and condition fields are operands, not symbols, but they
	// never appear as the *final* operand of a branch in this subset.
	return true
}

package program_test

// External test package: executing assembled source needs the machine,
// which imports program — so these tests live outside the package.

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/program"
)

func TestAssembledDataProgramExecutes(t *testing.T) {
	src := `
.data table
    .word 10, 20
.data msg
    .asciz "ok"

.func main
    la   r9, table
    lwz  r3, 0(r9)
    lwz  r4, 4(r9)
    add  r3, r3, r4    # 30
    la   r5, msg
    lbz  r6, 0(r5)     # 'o' = 111
    add  r3, r3, r6    # 141
    li   r0, 0
    sc
`
	p, err := program.AssembleSource(src)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := machine.NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	status, err := cpu.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if status != 141 {
		t.Fatalf("status %d, want 141", status)
	}
}

func TestAssembledPutsString(t *testing.T) {
	src := `
.data msg
    .asciz "hello from .data"

.func main
    la  r3, msg
    li  r0, 3          # puts
    sc
    li  r3, 0
    li  r0, 0
    sc
`
	p, err := program.AssembleSource(src)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := machine.NewForProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := string(cpu.Output()); got != "hello from .data" {
		t.Fatalf("output %q", got)
	}
}

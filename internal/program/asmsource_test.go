package program

import (
	"strings"
	"testing"

	"repro/internal/ppc"
)

const demoSource = `
.program demo
.entry main

.func main
    li   r3,5
    bl   double        # call another function
    mr   r31,r3
    cmpwi cr0,r31,10
    bne  cr0,fail
    li   r3,0
    b    out
fail:
    li   r3,1
out:
    li   r0,0          # exit syscall
    sc

.func double
    add  r3,r3,r3
    blr
`

func TestAssembleSource(t *testing.T) {
	p, err := AssembleSource(demoSource)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "demo" {
		t.Errorf("name %q", p.Name)
	}
	if len(p.Symbols) != 2 {
		t.Fatalf("symbols %v", p.Symbols)
	}
	if p.SymbolAt(p.Entry) != "main" {
		t.Errorf("entry symbol %q", p.SymbolAt(p.Entry))
	}
	// The bl must resolve to double's entry.
	found := false
	for i, w := range p.Text {
		if ppc.IsCall(w) && ppc.IsRelativeBranch(w) {
			d, _ := ppc.RelDisplacement(w)
			if p.SymbolAt(i+int(d)/4) == "double" {
				found = true
			}
		}
	}
	if !found {
		t.Error("bl double unresolved")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleSourceRoundTripsDisassembly(t *testing.T) {
	p, err := AssembleSource(demoSource)
	if err != nil {
		t.Fatal(err)
	}
	// Reassembling each disassembled instruction must reproduce the word
	// (branches now carry resolved numeric displacements).
	for i, w := range p.Text {
		s := ppc.Disassemble(w)
		back, err := ppc.Assemble(s)
		if err != nil {
			t.Fatalf("word %d %q: %v", i, s, err)
		}
		if back != w {
			t.Fatalf("word %d: %08x -> %q -> %08x", i, w, s, back)
		}
	}
}

func TestAssembleSourceData(t *testing.T) {
	src := `
.program data-demo
.data greeting
    .asciz "hi"
.data table
    .word 10, 20, -1
    .byte 0xFF, 2

.func main
    la   r9, table
    lwz  r3, 0(r9)     # 10
    lwz  r4, 4(r9)     # 20
    add  r3, r3, r4    # 30
    la   r9, greeting
    lbz  r5, 0(r9)     # 'h'
    add  r3, r3, r5    # 30 + 104 = 134
    li   r0, 0
    sc
`
	p, err := AssembleSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "data-demo" {
		t.Errorf("name %q", p.Name)
	}
	// greeting: "hi\0" (3 bytes) padded to 4; table at offset 4.
	if len(p.Data) < 4+12+2 {
		t.Fatalf("data section %d bytes", len(p.Data))
	}
	if string(p.Data[:2]) != "hi" || p.Data[2] != 0 {
		t.Errorf("greeting bytes %v", p.Data[:3])
	}
	if p.Data[4] != 0 || p.Data[7] != 10 || p.Data[11] != 20 {
		t.Errorf("table words %v", p.Data[4:12])
	}
	if p.Data[12] != 0xFF || p.Data[13] != 0xFF || p.Data[14] != 0xFF || p.Data[15] != 0xFF {
		t.Errorf("word -1 bytes %v", p.Data[12:16])
	}
	if p.Data[16] != 0xFF || p.Data[17] != 2 {
		t.Errorf(".byte values %v", p.Data[16:18])
	}
}

func TestAssembleSourceDataErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"word outside data", ".func f\nblr\n.word 1\n"},
		{"bad word", ".data d\n.word zz\n.func f\nblr\n"},
		{"bad string", ".data d\n.asciz nope\n.func f\nblr\n"},
		{"dup data", ".data d\n.word 1\n.data d\n.word 2\n.func f\nblr\n"},
		{"la unknown", ".func f\nla r3, ghost\nblr\n"},
		{"la malformed", ".func f\nla r3\nblr\n"},
		{"bare .data", ".data\n.func f\nblr\n"},
	}
	for _, c := range cases {
		if _, err := AssembleSource(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestAssembleSourceErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no func", "li r3,1\n"},
		{"label outside", "x:\n"},
		{"empty", ""},
		{"bad insn", ".func f\nbork r1\n"},
		{"undefined label", ".func f\nb nowhere\n"},
		{"cond to func", ".func f\nbeq cr0,g\nblr\n.func g\nblr\n"},
		{"bad entry", ".func f\nblr\n.entry zz\n"},
		{"bare directive", ".func\n"},
	}
	for _, c := range cases {
		if _, err := AssembleSource(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestAssembleSourceComments(t *testing.T) {
	src := `
# leading comment
.func main   # trailing comment is not supported on directives? keep simple
    nop
    sc
`
	// Directive lines with trailing comments are stripped by stripComment.
	p, err := AssembleSource(strings.ReplaceAll(src, "   # trailing comment is not supported on directives? keep simple", ""))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 2 {
		t.Fatalf("%d instructions", len(p.Text))
	}
}

package program

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ppc"
)

// Builder assembles a module from functions emitted with symbolic branch
// targets, then links everything into a Program. It is the interface
// between the synthetic compiler and the binary world.
type Builder struct {
	name     string
	funcs    []*FuncBuilder
	byName   map[string]*FuncBuilder
	data     []byte
	jtSlots  []int
	jtLabels []jtFixup // data-slot → label fixups resolved at link time
	entry    string
}

type jtFixup struct {
	slot  int    // byte offset in data
	fn    string // owning function (label scope)
	label string
}

// NewBuilder creates an empty module builder.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: map[string]*FuncBuilder{}}
}

// Func starts a new function and returns its builder. Function order
// determines layout order.
func (b *Builder) Func(name string) *FuncBuilder {
	if _, dup := b.byName[name]; dup {
		panic(fmt.Sprintf("program: duplicate function %q", name))
	}
	f := &FuncBuilder{mod: b, name: name, labels: map[string]int{}}
	b.funcs = append(b.funcs, f)
	b.byName[name] = f
	return f
}

// SetEntry selects the entry function (default: the first one).
func (b *Builder) SetEntry(fn string) { b.entry = fn }

// Words returns the number of instruction words emitted so far across all
// functions. Generators use it to grow modules toward a size target.
func (b *Builder) Words() int {
	n := 0
	for _, f := range b.funcs {
		n += len(f.words)
	}
	return n
}

// AppendData reserves initialized bytes in the data section and returns
// their byte offset.
func (b *Builder) AppendData(bytes []byte) int {
	off := len(b.data)
	b.data = append(b.data, bytes...)
	return off
}

// ReserveData reserves n zero bytes, aligned to align, returning the offset.
func (b *Builder) ReserveData(n, align int) int {
	for len(b.data)%align != 0 {
		b.data = append(b.data, 0)
	}
	off := len(b.data)
	b.data = append(b.data, make([]byte, n)...)
	return off
}

// AppendDataAligned appends initialized bytes at the given alignment and
// returns their offset.
func (b *Builder) AppendDataAligned(bytes []byte, align int) int {
	for len(b.data)%align != 0 {
		b.data = append(b.data, 0)
	}
	off := len(b.data)
	b.data = append(b.data, bytes...)
	return off
}

// FuncBuilder accumulates the instructions of one function.
type FuncBuilder struct {
	mod    *Builder
	name   string
	words  []uint32
	labels map[string]int // local label → word index within function

	// fixups to resolve at link time
	branches []branchFixup

	prologue []Range
	epilogue []Range
	markOpen int // -1 when no marker open
	markKind int // 0 none, 1 prologue, 2 epilogue
}

type branchFixup struct {
	word   int    // word index within function
	label  string // local label or function symbol
	global bool
}

// Len returns the number of words emitted so far.
func (f *FuncBuilder) Len() int { return len(f.words) }

// Emit appends a fully encoded instruction word.
func (f *FuncBuilder) Emit(w uint32) { f.words = append(f.words, w) }

// Label binds a local label at the current position.
func (f *FuncBuilder) Label(name string) {
	if _, dup := f.labels[name]; dup {
		panic(fmt.Sprintf("program: duplicate label %q in %s", name, f.name))
	}
	f.labels[name] = len(f.words)
}

// NewLabel generates a unique local label name.
func (f *FuncBuilder) NewLabel(prefix string) string {
	return fmt.Sprintf(".%s%d", prefix, len(f.branches)+len(f.labels)+len(f.words))
}

// Branch emits a relative branch word whose displacement will be resolved
// to the local label at link time. The word's displacement field must be
// zero on entry.
func (f *FuncBuilder) Branch(w uint32, label string) {
	if !ppc.IsRelativeBranch(w) {
		panic("program: Branch requires a relative branch word")
	}
	f.branches = append(f.branches, branchFixup{word: len(f.words), label: label})
	f.words = append(f.words, w)
}

// Call emits bl to a function symbol.
func (f *FuncBuilder) Call(fn string) {
	f.branches = append(f.branches, branchFixup{word: len(f.words), label: fn, global: true})
	f.words = append(f.words, ppc.Bl(0))
}

// Goto emits b to a function symbol (tail position).
func (f *FuncBuilder) Goto(fn string) {
	f.branches = append(f.branches, branchFixup{word: len(f.words), label: fn, global: true})
	f.words = append(f.words, ppc.B(0))
}

// BeginPrologue/EndPrologue bracket the standard entry template.
func (f *FuncBuilder) BeginPrologue() { f.markOpen, f.markKind = len(f.words), 1 }

// EndPrologue closes the prologue marker.
func (f *FuncBuilder) EndPrologue() {
	f.prologue = append(f.prologue, Range{f.markOpen, len(f.words)})
	f.markKind = 0
}

// BeginEpilogue/EndEpilogue bracket the standard exit template.
func (f *FuncBuilder) BeginEpilogue() { f.markOpen, f.markKind = len(f.words), 2 }

// EndEpilogue closes the epilogue marker.
func (f *FuncBuilder) EndEpilogue() {
	f.epilogue = append(f.epilogue, Range{f.markOpen, len(f.words)})
	f.markKind = 0
}

// JumpTable emits the canonical GCC-style computed-goto sequence for a
// switch on idxReg (0-based, caller bounds-checked), dispatching to the
// given local labels, and allocates the table in the data section:
//
//	lis   tmp, hi(table)
//	ori   tmp, tmp, lo(table)
//	slwi  tmp2, idxReg, 2
//	lwzx  tmp, tmp, tmp2
//	mtctr tmp
//	bctr
//
// The table slots are registered for post-compression patching, per the
// paper's assumption that jump tables live in .data and are patched with
// post-compression addresses.
func (f *FuncBuilder) JumpTable(idxReg, tmp, tmp2 uint8, labels []string) {
	off := f.mod.ReserveData(4*len(labels), 4)
	addr := uint32(DefaultDataBase + off)
	f.Emit(ppc.Lis(tmp, int32(int16(addr>>16))))
	f.Emit(ppc.Ori(tmp, tmp, int32(addr&0xFFFF)))
	f.Emit(ppc.Slwi(tmp2, idxReg, 2))
	f.Emit(ppc.Lwzx(tmp, tmp, tmp2))
	f.Emit(ppc.Mtctr(tmp))
	f.Emit(ppc.Bctr())
	for i, lab := range labels {
		slot := off + 4*i
		f.mod.jtSlots = append(f.mod.jtSlots, slot)
		f.mod.jtLabels = append(f.mod.jtLabels, jtFixup{slot: slot, fn: f.name, label: lab})
	}
}

// Link lays out all functions, resolves branch displacements and jump
// tables, and returns the linked Program.
func (b *Builder) Link() (*Program, error) {
	p := &Program{
		Name:     b.name,
		TextBase: DefaultTextBase,
		DataBase: DefaultDataBase,
	}
	starts := map[string]int{}
	for _, f := range b.funcs {
		if f.markKind != 0 {
			return nil, fmt.Errorf("program: %s has an unclosed marker", f.name)
		}
		start := len(p.Text)
		starts[f.name] = start
		p.Symbols = append(p.Symbols, Symbol{Name: f.name, Word: start})
		p.Text = append(p.Text, f.words...)
		for _, r := range f.prologue {
			p.Prologue = append(p.Prologue, Range{r.Start + start, r.End + start})
		}
		for _, r := range f.epilogue {
			p.Epilogue = append(p.Epilogue, Range{r.Start + start, r.End + start})
		}
	}
	// Resolve branch fixups.
	for _, f := range b.funcs {
		base := starts[f.name]
		for _, fx := range f.branches {
			var target int
			if fx.global {
				t, ok := starts[fx.label]
				if !ok {
					return nil, fmt.Errorf("program: %s calls undefined function %q", f.name, fx.label)
				}
				target = t
			} else {
				t, ok := f.labels[fx.label]
				if !ok {
					return nil, fmt.Errorf("program: undefined label %q in %s", fx.label, f.name)
				}
				target = base + t
			}
			at := base + fx.word
			disp := int32(target-at) * 4
			w := p.Text[at]
			nw, err := ppc.SetField(w, disp/4)
			if err != nil {
				return nil, fmt.Errorf("program: branch at %s+%d to %q: %v", f.name, fx.word, fx.label, err)
			}
			p.Text[at] = nw
		}
	}
	// Resolve jump tables.
	p.Data = append([]byte(nil), b.data...)
	p.JumpTableSlots = append([]int(nil), b.jtSlots...)
	for _, fx := range b.jtLabels {
		f := b.byName[fx.fn]
		t, ok := f.labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("program: jump table in %s references undefined label %q", fx.fn, fx.label)
		}
		addr := p.WordAddr(starts[fx.fn] + t)
		binary.BigEndian.PutUint32(p.Data[fx.slot:], addr)
	}
	// Entry point.
	entry := b.entry
	if entry == "" && len(b.funcs) > 0 {
		entry = b.funcs[0].name
	}
	e, ok := starts[entry]
	if !ok {
		return nil, fmt.Errorf("program: entry function %q not defined", entry)
	}
	p.Entry = e
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

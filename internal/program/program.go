// Package program models linked PowerPC object modules: the text section as
// instruction words, the data section, function symbols, jump tables, and
// the prologue/epilogue ranges the synthetic compiler marks. It provides
// the builder used by code generators, the linker that resolves symbolic
// branch targets into displacement fields, and the control-flow analysis
// (basic-block leader recovery) the compressor depends on.
package program

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/ppc"
)

// Default load addresses. Text and data live in disjoint regions; the
// machine package maps both.
const (
	DefaultTextBase = 0x0001_0000
	DefaultDataBase = 0x0020_0000
)

// Range is a half-open interval of text word indices.
type Range struct {
	Start, End int
}

// Len returns the number of words covered.
func (r Range) Len() int { return r.End - r.Start }

// Symbol names a text address (function entry).
type Symbol struct {
	Name string
	Word int // text word index
}

// Program is a linked module ready for execution, analysis or compression.
type Program struct {
	Name     string
	Text     []uint32
	Data     []byte
	TextBase uint32
	DataBase uint32
	Entry    int // word index of the entry point

	Symbols []Symbol

	// JumpTableSlots are byte offsets into Data of 4-byte big-endian slots
	// holding absolute text addresses (switch tables). The compressor
	// patches these after relocating code.
	JumpTableSlots []int

	// Prologue and Epilogue are the word ranges emitted by the standard
	// function entry/exit templates, used for the Table 3 analysis.
	Prologue []Range
	Epilogue []Range
}

// SizeBytes returns the text-section size in bytes — the "original size"
// denominator of the paper's compression ratio (Eq. 1).
func (p *Program) SizeBytes() int { return 4 * len(p.Text) }

// EntryAddr returns the absolute entry address.
func (p *Program) EntryAddr() uint32 { return p.TextBase + uint32(p.Entry)*4 }

// WordAddr returns the absolute address of a text word index.
func (p *Program) WordAddr(idx int) uint32 { return p.TextBase + uint32(idx)*4 }

// AddrWord converts an absolute text address to a word index.
func (p *Program) AddrWord(addr uint32) (int, error) {
	if addr < p.TextBase || addr >= p.TextBase+uint32(4*len(p.Text)) {
		return 0, fmt.Errorf("program: address %#x outside text", addr)
	}
	if (addr-p.TextBase)%4 != 0 {
		return 0, fmt.Errorf("program: address %#x not word aligned", addr)
	}
	return int((addr - p.TextBase) / 4), nil
}

// SymbolAt returns the name of the symbol at the word index, or "".
func (p *Program) SymbolAt(word int) string {
	for _, s := range p.Symbols {
		if s.Word == word {
			return s.Name
		}
	}
	return ""
}

// JumpTableTargets reads every jump-table slot and converts the stored
// addresses to text word indices.
func (p *Program) JumpTableTargets() ([]int, error) {
	out := make([]int, 0, len(p.JumpTableSlots))
	for _, off := range p.JumpTableSlots {
		if off < 0 || off+4 > len(p.Data) {
			return nil, fmt.Errorf("program: jump table slot %d outside data", off)
		}
		addr := binary.BigEndian.Uint32(p.Data[off:])
		w, err := p.AddrWord(addr)
		if err != nil {
			return nil, fmt.Errorf("program: jump table slot %d: %v", off, err)
		}
		out = append(out, w)
	}
	return out, nil
}

// Validate performs structural checks: entry in range, symbols sorted and
// in range, ranges well formed, jump-table slots resolvable, and every
// relative branch landing on a text word.
func (p *Program) Validate() error {
	n := len(p.Text)
	if n == 0 {
		return fmt.Errorf("program %s: empty text", p.Name)
	}
	if p.Entry < 0 || p.Entry >= n {
		return fmt.Errorf("program %s: entry %d out of range", p.Name, p.Entry)
	}
	if !sort.SliceIsSorted(p.Symbols, func(i, j int) bool { return p.Symbols[i].Word < p.Symbols[j].Word }) {
		return fmt.Errorf("program %s: symbols not sorted", p.Name)
	}
	for _, s := range p.Symbols {
		if s.Word < 0 || s.Word >= n {
			return fmt.Errorf("program %s: symbol %s out of range", p.Name, s.Name)
		}
	}
	for _, rs := range [][]Range{p.Prologue, p.Epilogue} {
		for _, r := range rs {
			if r.Start < 0 || r.End > n || r.Start > r.End {
				return fmt.Errorf("program %s: bad range %+v", p.Name, r)
			}
		}
	}
	if _, err := p.JumpTableTargets(); err != nil {
		return err
	}
	for idx, w := range p.Text {
		if !ppc.IsRelativeBranch(w) {
			continue
		}
		disp, _ := ppc.RelDisplacement(w)
		t := idx + int(disp)/4
		if disp%4 != 0 || t < 0 || t >= n {
			return fmt.Errorf("program %s: branch at word %d targets %d (out of range)", p.Name, idx, t)
		}
	}
	return nil
}

// Clone returns a deep copy. Compression mutates jump tables in data, so
// callers clone before compressing when they need the original intact.
func (p *Program) Clone() *Program {
	q := *p
	q.Text = append([]uint32(nil), p.Text...)
	q.Data = append([]byte(nil), p.Data...)
	q.Symbols = append([]Symbol(nil), p.Symbols...)
	q.JumpTableSlots = append([]int(nil), p.JumpTableSlots...)
	q.Prologue = append([]Range(nil), p.Prologue...)
	q.Epilogue = append([]Range(nil), p.Epilogue...)
	return &q
}

// TextBytes serializes the text section big-endian — the byte stream the
// whole-program comparators (LZW, Huffman) compress.
func (p *Program) TextBytes() []byte {
	out := make([]byte, 4*len(p.Text))
	for i, w := range p.Text {
		binary.BigEndian.PutUint32(out[4*i:], w)
	}
	return out
}

package program

import (
	"encoding/binary"
	"testing"

	"repro/internal/ppc"
)

// buildToy links a small two-function module exercising local branches,
// calls and a jump table.
func buildToy(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("toy")

	main := b.Func("main")
	main.BeginPrologue()
	main.Emit(ppc.Mflr(0))
	main.Emit(ppc.Stw(0, 8, 1))
	main.Emit(ppc.Stwu(1, -32, 1))
	main.EndPrologue()
	main.Emit(ppc.Li(3, 2))
	main.Call("helper")
	main.Emit(ppc.Cmpwi(0, 3, 0))
	main.Branch(ppc.Beq(0, 0), "skip")
	main.Emit(ppc.Li(4, 1))
	main.Label("skip")
	main.JumpTable(3, 11, 12, []string{"case0", "case1", "skip"})
	main.Label("case0")
	main.Emit(ppc.Li(5, 10))
	main.Branch(ppc.B(0), "done")
	main.Label("case1")
	main.Emit(ppc.Li(5, 20))
	main.Label("done")
	main.BeginEpilogue()
	main.Emit(ppc.Addi(1, 1, 32))
	main.Emit(ppc.Lwz(0, 8, 1))
	main.Emit(ppc.Mtlr(0))
	main.Emit(ppc.Blr())
	main.EndEpilogue()

	helper := b.Func("helper")
	helper.Emit(ppc.Addi(3, 3, 1))
	helper.Emit(ppc.Blr())

	p, err := b.Link()
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return p
}

func TestLinkResolvesBranches(t *testing.T) {
	p := buildToy(t)

	// Find the bl and check it targets helper's entry.
	helperStart := -1
	for _, s := range p.Symbols {
		if s.Name == "helper" {
			helperStart = s.Word
		}
	}
	if helperStart < 0 {
		t.Fatal("helper symbol missing")
	}
	found := false
	for i, w := range p.Text {
		if ppc.IsCall(w) && ppc.IsRelativeBranch(w) {
			disp, _ := ppc.RelDisplacement(w)
			if i+int(disp)/4 == helperStart {
				found = true
			}
		}
	}
	if !found {
		t.Error("bl to helper not resolved")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestJumpTableResolution(t *testing.T) {
	p := buildToy(t)
	if len(p.JumpTableSlots) != 3 {
		t.Fatalf("expected 3 jump-table slots, got %d", len(p.JumpTableSlots))
	}
	targets, err := p.JumpTableTargets()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range targets {
		if w <= 0 || w >= len(p.Text) {
			t.Errorf("jump table target %d out of range", w)
		}
	}
	// All three targets must be distinct except where labels coincide;
	// case0 != case1.
	if targets[0] == targets[1] {
		t.Error("case0 and case1 resolved to the same word")
	}
	// Slots hold absolute addresses.
	addr := binary.BigEndian.Uint32(p.Data[p.JumpTableSlots[0]:])
	if addr < p.TextBase {
		t.Errorf("slot contains %#x, below text base", addr)
	}
}

func TestAnalyzeLeaders(t *testing.T) {
	p := buildToy(t)
	a, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Leader[0] {
		t.Error("word 0 not a leader")
	}
	// Every relative branch target must be a leader.
	for i, w := range p.Text {
		if ppc.IsRelativeBranch(w) {
			disp, _ := ppc.RelDisplacement(w)
			if !a.Leader[i+int(disp)/4] {
				t.Errorf("branch target of word %d not a leader", i)
			}
			if i+1 < len(p.Text) && !a.Leader[i+1] {
				t.Errorf("fall-through after branch at %d not a leader", i)
			}
		}
	}
	// Jump table targets are leaders.
	jts, _ := p.JumpTableTargets()
	for _, w := range jts {
		if !a.Leader[w] {
			t.Errorf("jump table target %d not a leader", w)
		}
	}
	// Blocks tile the program exactly.
	blocks := a.Blocks()
	covered := 0
	prevEnd := 0
	for _, blk := range blocks {
		if blk.Start != prevEnd {
			t.Fatalf("blocks not contiguous at %d", blk.Start)
		}
		if blk.Len() <= 0 {
			t.Fatalf("empty block %+v", blk)
		}
		covered += blk.Len()
		prevEnd = blk.End
	}
	if covered != len(p.Text) {
		t.Errorf("blocks cover %d of %d words", covered, len(p.Text))
	}
	if a.BlockCount() != len(blocks) {
		t.Errorf("BlockCount %d != len(Blocks) %d", a.BlockCount(), len(blocks))
	}
}

func TestPrologueEpilogueRanges(t *testing.T) {
	p := buildToy(t)
	if len(p.Prologue) != 1 || len(p.Epilogue) != 1 {
		t.Fatalf("markers: %d prologue, %d epilogue", len(p.Prologue), len(p.Epilogue))
	}
	if p.Prologue[0].Len() != 3 {
		t.Errorf("prologue length %d, want 3", p.Prologue[0].Len())
	}
	if p.Epilogue[0].Len() != 4 {
		t.Errorf("epilogue length %d, want 4", p.Epilogue[0].Len())
	}
	// Epilogue ends with blr.
	last := p.Text[p.Epilogue[0].End-1]
	if !ppc.IsIndirectBranch(last) {
		t.Errorf("epilogue does not end in blr: %s", ppc.Disassemble(last))
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := buildToy(t)
	q := p.Clone()
	q.Text[0] = 0xDEADBEEF
	if p.Text[0] == 0xDEADBEEF {
		t.Error("Clone shares text")
	}
	if len(q.Data) > 0 {
		q.Data[0] ^= 0xFF
		if len(p.Data) > 0 && p.Data[0] == q.Data[0] {
			t.Error("Clone shares data")
		}
	}
}

func TestTextBytesBigEndian(t *testing.T) {
	p := buildToy(t)
	bs := p.TextBytes()
	if len(bs) != 4*len(p.Text) {
		t.Fatalf("TextBytes length %d", len(bs))
	}
	w0 := binary.BigEndian.Uint32(bs)
	if w0 != p.Text[0] {
		t.Errorf("first word %08x != %08x", w0, p.Text[0])
	}
}

func TestAddrConversions(t *testing.T) {
	p := buildToy(t)
	for _, idx := range []int{0, 1, len(p.Text) - 1} {
		addr := p.WordAddr(idx)
		back, err := p.AddrWord(addr)
		if err != nil || back != idx {
			t.Errorf("AddrWord(WordAddr(%d)) = %d, %v", idx, back, err)
		}
	}
	if _, err := p.AddrWord(p.TextBase - 4); err == nil {
		t.Error("address below text accepted")
	}
	if _, err := p.AddrWord(p.TextBase + 1); err == nil {
		t.Error("unaligned address accepted")
	}
}

func TestLinkErrors(t *testing.T) {
	t.Run("undefined label", func(t *testing.T) {
		b := NewBuilder("bad")
		f := b.Func("f")
		f.Branch(ppc.B(0), "nowhere")
		if _, err := b.Link(); err == nil {
			t.Error("expected error for undefined label")
		}
	})
	t.Run("undefined callee", func(t *testing.T) {
		b := NewBuilder("bad")
		f := b.Func("f")
		f.Call("ghost")
		f.Emit(ppc.Blr())
		if _, err := b.Link(); err == nil {
			t.Error("expected error for undefined callee")
		}
	})
	t.Run("bad entry", func(t *testing.T) {
		b := NewBuilder("bad")
		f := b.Func("f")
		f.Emit(ppc.Blr())
		b.SetEntry("ghost")
		if _, err := b.Link(); err == nil {
			t.Error("expected error for bad entry")
		}
	})
	t.Run("unclosed marker", func(t *testing.T) {
		b := NewBuilder("bad")
		f := b.Func("f")
		f.BeginPrologue()
		f.Emit(ppc.Blr())
		if _, err := b.Link(); err == nil {
			t.Error("expected error for unclosed marker")
		}
	})
	t.Run("duplicate function", func(t *testing.T) {
		b := NewBuilder("bad")
		b.Func("f")
		defer func() {
			if recover() == nil {
				t.Error("expected panic on duplicate function")
			}
		}()
		b.Func("f")
	})
	t.Run("duplicate label", func(t *testing.T) {
		b := NewBuilder("bad")
		f := b.Func("f")
		f.Label("x")
		defer func() {
			if recover() == nil {
				t.Error("expected panic on duplicate label")
			}
		}()
		f.Label("x")
	})
}

func TestValidateCatchesCorruption(t *testing.T) {
	p := buildToy(t)
	// Corrupt a jump-table slot to point outside text.
	binary.BigEndian.PutUint32(p.Data[p.JumpTableSlots[0]:], 0x4)
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted corrupted jump table")
	}
}

func TestSymbolAt(t *testing.T) {
	p := buildToy(t)
	if p.SymbolAt(0) != "main" {
		t.Errorf("SymbolAt(0) = %q", p.SymbolAt(0))
	}
	if p.SymbolAt(1) != "" {
		t.Errorf("SymbolAt(1) = %q", p.SymbolAt(1))
	}
}

// Conservation tests: for every synthetic benchmark under every encoding,
// the audit's attributed bits must sum to exactly the compressed image
// size with nothing unattributed — the package's central invariant. The
// dictionary schemes additionally assert that the live emitter threaded
// through core.Compress and the marks-based reconstruction from the
// finished image agree row for row.
package sizeaudit_test

import (
	"reflect"
	"testing"

	"repro/internal/codeword"
	"repro/internal/core"
	"repro/internal/huffman"
	"repro/internal/lzw"
	"repro/internal/sizeaudit"
	"repro/internal/synth"
)

var dictSchemes = []codeword.Scheme{
	codeword.Baseline, codeword.OneByte, codeword.Nibble, codeword.Liao,
}

func TestConservationDictionarySchemes(t *testing.T) {
	for _, name := range synth.BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := synth.Generate(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range dictSchemes {
				em := sizeaudit.NewProgramEmitter(p)
				img, err := core.Compress(p.Clone(), core.Options{
					Scheme: s, MaxEntryLen: 4, Audit: em,
				})
				if err != nil {
					t.Fatalf("%v: %v", s, err)
				}
				live := em.Finish(img.Name, s.String(), img.CompressedBytes(), img.OriginalBytes)
				if err := live.Check(); err != nil {
					t.Errorf("%v live emitter: %v", s, err)
				}
				rebuilt, err := img.SizeAudit()
				if err != nil {
					t.Fatalf("%v SizeAudit: %v", s, err)
				}
				if err := rebuilt.Check(); err != nil {
					t.Errorf("%v reconstruction: %v", s, err)
				}
				if !reflect.DeepEqual(live, rebuilt) {
					t.Errorf("%v: live audit and marks reconstruction disagree\nlive:    %+v\nrebuilt: %+v",
						s, live, rebuilt)
				}
			}
		})
	}
}

func TestConservationCCRP(t *testing.T) {
	for _, name := range synth.BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := synth.Generate(name)
			if err != nil {
				t.Fatal(err)
			}
			em := sizeaudit.NewProgramEmitter(p)
			cfg := huffman.DefaultCCRP()
			cfg.Audit = em
			img, err := huffman.BuildCCRPImage(p, cfg)
			if err != nil {
				t.Fatal(err)
			}
			a := em.Finish(name, "ccrp", img.CompressedBytes(), p.SizeBytes())
			if err := a.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConservationLZW(t *testing.T) {
	for _, name := range synth.BenchmarkNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p, err := synth.Generate(name)
			if err != nil {
				t.Fatal(err)
			}
			em := sizeaudit.NewProgramEmitter(p)
			out := lzw.CompressAudited(p.TextBytes(), nil, em)
			a := em.Finish(name, "lzw", len(out), p.SizeBytes())
			if err := a.Check(); err != nil {
				t.Fatal(err)
			}
			// The audited path must not perturb the encoding.
			plain := lzw.Compress(p.TextBytes())
			if len(plain) != len(out) {
				t.Fatalf("audited output %d bytes, plain %d", len(out), len(plain))
			}
		})
	}
}

func TestAuditProgramNative(t *testing.T) {
	p, err := synth.Generate("compress")
	if err != nil {
		t.Fatal(err)
	}
	a := sizeaudit.AuditProgram(p)
	if err := a.Check(); err != nil {
		t.Fatal(err)
	}
	totals := a.ClassTotals()
	if got, want := totals[sizeaudit.Raw], int64(p.SizeBytes())*8; got != want {
		t.Fatalf("native raw bits %d, want %d", got, want)
	}
	for _, c := range sizeaudit.Classes() {
		if c != sizeaudit.Raw && totals[c] != 0 {
			t.Fatalf("native audit has %d %v bits", totals[c], c)
		}
	}
}

package sizeaudit

import (
	"fmt"
	"io"
)

// DiffRow is one function's size on each side of a comparison, in bits.
// A side that lacks the function contributes zero and clears its presence
// flag (so "absent" and "present but empty" stay distinguishable).
type DiffRow struct {
	Name  string `json:"name"`
	ABits int64  `json:"a_bits"`
	BBits int64  `json:"b_bits"`
	InA   bool   `json:"in_a"`
	InB   bool   `json:"in_b"`
}

// Delta is B−A in bits: negative means side B is smaller.
func (r DiffRow) Delta() int64 { return r.BBits - r.ABits }

// AuditDiff compares two audits function by function — native vs
// compressed, or one encoding against another.
type AuditDiff struct {
	ALabel string    `json:"a"`
	BLabel string    `json:"b"`
	ATotal int64     `json:"a_total_bits"`
	BTotal int64     `json:"b_total_bits"`
	Rows   []DiffRow `json:"rows"`
}

// Diff matches the two audits' rows by function name: side A's row order
// first (native order when A is a native audit), then rows only B has.
func Diff(a, b *Audit) *AuditDiff {
	d := &AuditDiff{
		ALabel: fmt.Sprintf("%s (%s)", a.Name, a.Encoding),
		BLabel: fmt.Sprintf("%s (%s)", b.Name, b.Encoding),
		ATotal: a.AttributedBits(),
		BTotal: b.AttributedBits(),
	}
	seen := map[string]bool{}
	for _, fa := range a.Funcs {
		row := DiffRow{Name: fa.Name, ABits: fa.Bits.Total(), InA: true}
		if fb, ok := b.FuncByName(fa.Name); ok {
			row.BBits = fb.Bits.Total()
			row.InB = true
		}
		seen[fa.Name] = true
		d.Rows = append(d.Rows, row)
	}
	for _, fb := range b.Funcs {
		if seen[fb.Name] {
			continue
		}
		d.Rows = append(d.Rows, DiffRow{Name: fb.Name, BBits: fb.Bits.Total(), InB: true})
	}
	return d
}

// WriteTable renders the comparison as an aligned table: per-function
// sizes in bytes on both sides, the byte delta, and B/A. Rows a side lacks
// show "-" for that side.
func (d *AuditDiff) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "size diff: A=%s (%s bytes) vs B=%s (%s bytes)\n",
		d.ALabel, bytesStr(d.ATotal), d.BLabel, bytesStr(d.BTotal)); err != nil {
		return err
	}
	rows := [][]string{{"A-bytes", "B-bytes", "delta", "B/A", "function"}}
	addRow := func(name string, r DiffRow) {
		aCell, bCell, ratio := "-", "-", "-"
		if r.InA {
			aCell = bytesStr(r.ABits)
		}
		if r.InB {
			bCell = bytesStr(r.BBits)
		}
		if r.InA && r.InB && r.ABits != 0 {
			ratio = fmt.Sprintf("%.3f", float64(r.BBits)/float64(r.ABits))
		}
		delta := fmt.Sprintf("%+.1f", float64(r.Delta())/8)
		rows = append(rows, []string{aCell, bCell, delta, ratio, name})
	}
	for _, r := range d.Rows {
		addRow(r.Name, r)
	}
	addRow("TOTAL", DiffRow{ABits: d.ATotal, BBits: d.BTotal, InA: true, InB: true})
	return writeAligned(w, rows)
}

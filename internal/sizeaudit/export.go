package sizeaudit

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// bytesStr renders a bit count as bytes, exactly: whole byte counts print
// as integers, nibble-granular remainders keep their fractional part
// (multiples of 0.125, so the shortest float representation is exact).
func bytesStr(bits int64) string {
	if bits%8 == 0 {
		return strconv.FormatInt(bits/8, 10)
	}
	return strconv.FormatFloat(float64(bits)/8, 'f', -1, 64)
}

// writeAligned renders rows as right-aligned columns except the last
// (names), two spaces apart.
func writeAligned(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	width := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	for _, r := range rows {
		sb.Reset()
		for i, cell := range r {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == len(r)-1 { // name column: left-aligned, unpadded
				sb.WriteString(cell)
				continue
			}
			sb.WriteString(strings.Repeat(" ", width[i]-len(cell)))
			sb.WriteString(cell)
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders the audit as an aligned per-function text table with
// one column per provenance class (values in bytes) plus each row's total
// and share of the image.
func (a *Audit) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "size audit: %s (%s), %d bytes", a.Name, a.Encoding, a.TotalBytes); err != nil {
		return err
	}
	if a.OriginalBytes > 0 {
		if _, err := fmt.Fprintf(w, " of %d original (ratio %.3f)", a.OriginalBytes, a.Ratio()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	header := []string{"bytes", "share"}
	for _, c := range Classes() {
		header = append(header, c.String())
	}
	header = append(header, "function")
	rows := [][]string{header}
	total := int64(a.TotalBytes) * 8
	share := func(bits int64) string {
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(bits)/float64(total))
	}
	appendRow := func(name string, b ClassBits) {
		row := []string{bytesStr(b.Total()), share(b.Total())}
		for _, c := range Classes() {
			row = append(row, bytesStr(b[c]))
		}
		rows = append(rows, append(row, name))
	}
	for _, f := range a.Funcs {
		appendRow(f.Name, f.Bits)
	}
	appendRow("TOTAL", a.ClassTotals())
	return writeAligned(w, rows)
}

// WriteCSV emits one record per row — bench, encoding, function, per-class
// bit counts and the row total — with a header. Bit counts keep the
// records exact; divide by 8 for bytes.
func (a *Audit) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"name", "encoding", "function"}
	for _, c := range Classes() {
		header = append(header, c.String()+"_bits")
	}
	header = append(header, "total_bits")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, f := range a.Funcs {
		rec := []string{a.Name, a.Encoding, f.Name}
		for _, c := range Classes() {
			rec = append(rec, strconv.FormatInt(f.Bits[c], 10))
		}
		rec = append(rec, strconv.FormatInt(f.Bits.Total(), 10))
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFolded emits the audit as folded stacks — one line per non-empty
// (function, class) pair, "name;function;class bits" — the input format of
// standard flamegraph tooling (the same shape guestprof.WriteFolded uses
// for cycles, with bits as the count so values stay integral). Lines sort
// lexicographically for deterministic output.
func (a *Audit) WriteFolded(w io.Writer) error {
	var lines []string
	for _, f := range a.Funcs {
		for _, c := range Classes() {
			if f.Bits[c] == 0 {
				continue
			}
			lines = append(lines, fmt.Sprintf("%s;%s;%s %d", a.Name, f.Name, c, f.Bits[c]))
		}
	}
	sort.Strings(lines)
	for _, ln := range lines {
		if _, err := fmt.Fprintln(w, ln); err != nil {
			return err
		}
	}
	return nil
}

// Package sizeaudit is the static complement to the guest profiler: a
// Bloaty-style size-attribution layer that classifies every bit of a
// compressed image into a provenance class (codeword payload, escaped/raw
// instruction, far-branch or call stub, alignment padding, dictionary
// storage, address/code tables, headers) and attributes it to the original
// guest function that produced it, via a floor search over the program's
// symbol table. Encoders report into a nil-safe Emitter threaded like
// stats.Recorder — zero cost when off, never affecting the produced bytes
// — and the finished Audit carries a conservation invariant: the
// attributed bits sum exactly to the image size, with nothing left in an
// unknown row. Audits serialize to JSON, render as aligned tables, CSV and
// folded (flamegraph) stacks, and diff pairwise so "native vs compressed"
// or "encoding A vs encoding B" per-function deltas fall out directly.
package sizeaudit

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/program"
)

// Class is a byte-provenance class: why a bit exists in the compressed
// image.
type Class uint8

// The provenance classes. Every attributed bit carries exactly one.
const (
	// Codeword is encoded payload standing for original instructions: a
	// dictionary codeword (including its escape portion) or a Huffman-coded
	// instruction byte.
	Codeword Class = iota
	// Raw is an escaped or verbatim uncompressed instruction, including
	// patched relative branches and per-instruction escape markers.
	Raw
	// Stub is branch-rewrite machinery: far-branch register-indirect stubs
	// and call-dictionary stub instructions.
	Stub
	// Padding is alignment overhead: the nibble stream's final pad to a
	// byte boundary, CCRP's per-line pad bits, LZW's flush padding.
	Padding
	// Dict is dictionary entry storage (the decompressor's table).
	Dict
	// Table is address/code-table overhead: CCRP's Line Address Table and
	// Huffman code-length table.
	Table
	// Header is fixed serialization headers.
	Header

	numClasses = 7
)

// Classes lists every class in canonical (column) order.
func Classes() []Class {
	return []Class{Codeword, Raw, Stub, Padding, Dict, Table, Header}
}

// String names the class; the names are the JSON keys and table columns.
func (c Class) String() string {
	switch c {
	case Codeword:
		return "codeword"
	case Raw:
		return "raw"
	case Stub:
		return "stub"
	case Padding:
		return "padding"
	case Dict:
		return "dictionary"
	case Table:
		return "table"
	case Header:
		return "header"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// classByName inverts String for JSON decoding.
func classByName(name string) (Class, bool) {
	for _, c := range Classes() {
		if c.String() == name {
			return c, true
		}
	}
	return 0, false
}

// Pseudo-row names for overhead that no single guest function owns. They
// use bracket names (like guestprof's "[unknown]") so they can never
// collide with real symbols.
const (
	DictRow      = "[dictionary]" // dictionary entry storage
	HeaderRow    = "[header]"     // fixed serialization header
	PadRow       = "[padding]"    // whole-stream alignment padding
	LATRow       = "[lat]"        // CCRP line address table
	CodeTableRow = "[code-table]" // Huffman code-length table
	ResetRow     = "[dict-reset]" // LZW clear codes
	UnknownRow   = "[unknown]"    // attribution failure; must stay empty
)

// ClassBits holds per-class bit counts. It marshals as a JSON object keyed
// by class name, omitting zero classes.
type ClassBits [numClasses]int64

// Total sums every class.
func (b ClassBits) Total() int64 {
	var n int64
	for _, v := range b {
		n += v
	}
	return n
}

// MarshalJSON renders {"codeword": 123, ...} with zero classes omitted.
func (b ClassBits) MarshalJSON() ([]byte, error) {
	m := make(map[string]int64, numClasses)
	for _, c := range Classes() {
		if b[c] != 0 {
			m[c.String()] = b[c]
		}
	}
	return json.Marshal(m)
}

// UnmarshalJSON inverts MarshalJSON; unknown keys are an error so schema
// drift cannot pass silently.
func (b *ClassBits) UnmarshalJSON(data []byte) error {
	var m map[string]int64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*b = ClassBits{}
	for name, v := range m {
		c, ok := classByName(name)
		if !ok {
			return fmt.Errorf("sizeaudit: unknown class %q", name)
		}
		b[c] = v
	}
	return nil
}

// Func is one attribution target: a function name and its start offset in
// the original text section (bytes from the start of text).
type Func struct {
	Name  string
	Start uint32
}

// Emitter accumulates provenance records during encoding. All methods are
// no-ops on a nil *Emitter, so encoders thread it unconditionally — the
// same contract as stats.Recorder — and an Emitter never affects the bytes
// the encoder produces. An Emitter is not safe for concurrent use; each
// compression owns its own.
type Emitter struct {
	funcs  []Func      // sorted by Start
	limit  uint32      // text size in bytes; offsets at or past it are unknown
	rows   []ClassBits // parallel to funcs
	global map[string]*ClassBits
	order  []string // global row names in first-emit order
}

// NewEmitter builds an emitter over functions covering text offsets
// [0, limit). The slice is copied and sorted by start offset.
func NewEmitter(funcs []Func, limit uint32) *Emitter {
	fs := append([]Func(nil), funcs...)
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Start < fs[j].Start })
	return &Emitter{
		funcs:  fs,
		limit:  limit,
		rows:   make([]ClassBits, len(fs)),
		global: map[string]*ClassBits{},
	}
}

// NewProgramEmitter builds the emitter for a linked program: one target
// per symbol, offsets relative to the start of the text section.
func NewProgramEmitter(p *program.Program) *Emitter {
	funcs := make([]Func, len(p.Symbols))
	for i, s := range p.Symbols {
		funcs[i] = Func{Name: s.Name, Start: 4 * uint32(s.Word)}
	}
	return NewEmitter(funcs, uint32(4*len(p.Text)))
}

// At attributes bits of class c to the function covering the original text
// byte offset off (floor search: the last function starting at or before
// off). Offsets outside the text land in the unknown row, which the
// conservation check rejects.
func (e *Emitter) At(c Class, off uint32, bits int64) {
	if e == nil || bits == 0 {
		return
	}
	if off >= e.limit {
		e.Global(c, UnknownRow, bits)
		return
	}
	// Floor function: last start <= off.
	i := sort.Search(len(e.funcs), func(i int) bool { return e.funcs[i].Start > off }) - 1
	if i < 0 {
		e.Global(c, UnknownRow, bits)
		return
	}
	e.rows[i][c] += bits
}

// AtWord is At for word-granular encoders: offset = 4*word.
func (e *Emitter) AtWord(c Class, word int, bits int64) {
	if e == nil {
		return
	}
	e.At(c, 4*uint32(word), bits)
}

// Global attributes bits that no single function owns (dictionary storage,
// tables, headers, stream-level padding) to a named pseudo-row.
func (e *Emitter) Global(c Class, name string, bits int64) {
	if e == nil || bits == 0 {
		return
	}
	g := e.global[name]
	if g == nil {
		g = &ClassBits{}
		e.global[name] = g
		e.order = append(e.order, name)
	}
	g[c] += bits
}

// Finish assembles the audit: real functions in address order (empty rows
// dropped), then pseudo-rows in first-emit order. totalBytes is the
// complete compressed image size the attribution must account for;
// originalBytes the uncompressed text size (0 if not meaningful). A nil
// emitter finishes to nil.
func (e *Emitter) Finish(name, encoding string, totalBytes, originalBytes int) *Audit {
	if e == nil {
		return nil
	}
	a := &Audit{
		Name:          name,
		Encoding:      encoding,
		TotalBytes:    totalBytes,
		OriginalBytes: originalBytes,
	}
	for i, f := range e.funcs {
		if e.rows[i] == (ClassBits{}) {
			continue
		}
		a.Funcs = append(a.Funcs, FuncSize{Name: f.Name, Bits: e.rows[i]})
	}
	for _, n := range e.order {
		a.Funcs = append(a.Funcs, FuncSize{Name: n, Bits: *e.global[n]})
	}
	return a
}

// FuncSize is one audit row: a function (or pseudo-row) and its per-class
// bit counts.
type FuncSize struct {
	Name string    `json:"name"`
	Bits ClassBits `json:"bits"`
}

// Total is the row's bit total.
func (f FuncSize) Total() int64 { return f.Bits.Total() }

// Audit is the finished attribution of one compressed image: every bit of
// TotalBytes classified and attributed. Counts are bits, not bytes,
// because nibble-aligned codewords are not byte-granular; Bytes converts.
type Audit struct {
	Name          string     `json:"name"`
	Encoding      string     `json:"encoding"`
	TotalBytes    int        `json:"total_bytes"`
	OriginalBytes int        `json:"original_bytes,omitempty"`
	Funcs         []FuncSize `json:"funcs"`
}

// Bytes converts a bit count to (possibly fractional) bytes.
func Bytes(bits int64) float64 { return float64(bits) / 8 }

// AttributedBits sums every row.
func (a *Audit) AttributedBits() int64 {
	var n int64
	for _, f := range a.Funcs {
		n += f.Bits.Total()
	}
	return n
}

// ClassTotals sums the per-class bits across all rows.
func (a *Audit) ClassTotals() ClassBits {
	var t ClassBits
	for _, f := range a.Funcs {
		for c, v := range f.Bits {
			t[c] += v
		}
	}
	return t
}

// FuncByName finds a row, for diffing and tests.
func (a *Audit) FuncByName(name string) (FuncSize, bool) {
	for _, f := range a.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return FuncSize{}, false
}

// Ratio is compressed/original, 0 when the original size is unknown.
func (a *Audit) Ratio() float64 {
	if a.OriginalBytes == 0 {
		return 0
	}
	return float64(a.TotalBytes) / float64(a.OriginalBytes)
}

// Check asserts the conservation invariant: the attributed bits sum to
// exactly 8×TotalBytes and nothing landed in the unknown row. Every
// encoder's audit must pass; a failure means the encoder leaked or
// double-counted bytes.
func (a *Audit) Check() error {
	for _, f := range a.Funcs {
		if f.Name == UnknownRow {
			return fmt.Errorf("sizeaudit: %s (%s): %d bits unattributed in %s",
				a.Name, a.Encoding, f.Bits.Total(), UnknownRow)
		}
	}
	if got, want := a.AttributedBits(), int64(a.TotalBytes)*8; got != want {
		return fmt.Errorf("sizeaudit: %s (%s): attributed %d bits, image has %d",
			a.Name, a.Encoding, got, want)
	}
	return nil
}

// AuditProgram is the native baseline audit: every text word is 32 raw
// bits attributed to its containing function. Diffing a compressed audit
// against it yields per-function compression deltas.
func AuditProgram(p *program.Program) *Audit {
	em := NewProgramEmitter(p)
	for i := range p.Text {
		em.AtWord(Raw, i, 32)
	}
	return em.Finish(p.Name, "native", p.SizeBytes(), p.SizeBytes())
}

package sizeaudit

import (
	"encoding/json"
	"strings"
	"testing"
)

func testFuncs() []Func {
	return []Func{{Name: "alpha", Start: 0}, {Name: "beta", Start: 16}, {Name: "gamma", Start: 40}}
}

func TestEmitterFloorSearch(t *testing.T) {
	em := NewEmitter(testFuncs(), 64)
	em.At(Codeword, 0, 10) // first byte of alpha
	em.At(Codeword, 15, 2) // last byte of alpha
	em.At(Raw, 16, 32)     // exact start of beta
	em.At(Raw, 39, 8)      // last byte of beta
	em.At(Stub, 40, 64)    // start of gamma
	em.At(Stub, 63, 4)     // last in-range offset
	em.At(Raw, 64, 8)      // == limit: unknown
	em.At(Raw, 1000, 8)    // far past limit: unknown
	em.Global(Dict, DictRow, 100)

	a := em.Finish("t", "test", 0, 0)
	want := map[string]int64{"alpha": 12, "beta": 40, "gamma": 68, UnknownRow: 16, DictRow: 100}
	if len(a.Funcs) != len(want) {
		t.Fatalf("got %d rows, want %d: %+v", len(a.Funcs), len(want), a.Funcs)
	}
	for name, bits := range want {
		f, ok := a.FuncByName(name)
		if !ok {
			t.Fatalf("missing row %q", name)
		}
		if f.Bits.Total() != bits {
			t.Errorf("%s: got %d bits, want %d", name, f.Bits.Total(), bits)
		}
	}
	if err := a.Check(); err == nil {
		t.Fatal("Check passed despite unknown row")
	}
}

func TestEmitterFuncBeforeFirstStart(t *testing.T) {
	// A gap before the first function: offsets there are unattributable.
	em := NewEmitter([]Func{{Name: "f", Start: 8}}, 64)
	em.At(Raw, 0, 8)
	em.At(Raw, 7, 8)
	em.At(Raw, 8, 8)
	a := em.Finish("t", "test", 0, 0)
	if f, ok := a.FuncByName(UnknownRow); !ok || f.Bits.Total() != 16 {
		t.Fatalf("pre-function bits not in unknown row: %+v", a.Funcs)
	}
	if f, ok := a.FuncByName("f"); !ok || f.Bits.Total() != 8 {
		t.Fatalf("function row wrong: %+v", a.Funcs)
	}
}

func TestNilEmitterIsNoOp(t *testing.T) {
	var em *Emitter
	em.At(Codeword, 0, 8)
	em.AtWord(Raw, 2, 8)
	em.Global(Dict, DictRow, 8)
	if a := em.Finish("t", "test", 0, 0); a != nil {
		t.Fatalf("nil emitter finished to %+v", a)
	}
}

func TestEmitterRowOrder(t *testing.T) {
	// Real functions come out in address order regardless of emit order;
	// globals in first-emit order; empty function rows are dropped.
	em := NewEmitter(testFuncs(), 64)
	em.Global(Header, HeaderRow, 8)
	em.At(Raw, 40, 8) // gamma before alpha
	em.At(Raw, 0, 8)
	em.Global(Dict, DictRow, 8)
	a := em.Finish("t", "test", 4, 0)
	got := make([]string, len(a.Funcs))
	for i, f := range a.Funcs {
		got[i] = f.Name
	}
	want := []string{"alpha", "gamma", HeaderRow, DictRow}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("row order %v, want %v", got, want)
	}
	if err := a.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestCheckConservation(t *testing.T) {
	em := NewEmitter(testFuncs(), 64)
	em.At(Codeword, 0, 15)
	a := em.Finish("t", "test", 2, 0) // 16 bits expected, 15 attributed
	if err := a.Check(); err == nil {
		t.Fatal("Check passed with missing bits")
	}
	em2 := NewEmitter(testFuncs(), 64)
	em2.At(Codeword, 0, 16)
	if err := em2.Finish("t", "test", 2, 0).Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestClassBitsJSONRoundTrip(t *testing.T) {
	var b ClassBits
	b[Codeword] = 100
	b[Padding] = 3
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "\"raw\"") {
		t.Fatalf("zero class serialized: %s", data)
	}
	var got ClassBits
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != b {
		t.Fatalf("round trip %v != %v", got, b)
	}
	if err := json.Unmarshal([]byte(`{"bogus": 1}`), &got); err == nil {
		t.Fatal("unknown class key accepted")
	}
}

func TestAuditJSONRoundTrip(t *testing.T) {
	em := NewEmitter(testFuncs(), 64)
	em.At(Codeword, 0, 12)
	em.At(Raw, 16, 32)
	em.Global(Dict, DictRow, 20)
	a := em.Finish("bench", "nibble", 8, 100)
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var got Audit
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != a.Name || got.Encoding != a.Encoding ||
		got.TotalBytes != a.TotalBytes || got.OriginalBytes != a.OriginalBytes ||
		got.AttributedBits() != a.AttributedBits() || len(got.Funcs) != len(a.Funcs) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, a)
	}
}

func TestDiff(t *testing.T) {
	emA := NewEmitter(testFuncs(), 64)
	emA.At(Raw, 0, 320)
	emA.At(Raw, 16, 160)
	a := emA.Finish("bench", "native", 60, 60)

	emB := NewEmitter(testFuncs(), 64)
	emB.At(Codeword, 0, 200)
	emB.At(Codeword, 40, 80)
	emB.Global(Dict, DictRow, 40)
	b := emB.Finish("bench", "nibble", 40, 60)

	d := Diff(a, b)
	byName := map[string]DiffRow{}
	for _, r := range d.Rows {
		byName[r.Name] = r
	}
	if r := byName["alpha"]; !r.InA || !r.InB || r.Delta() != 200-320 {
		t.Fatalf("alpha row %+v", r)
	}
	if r := byName["beta"]; !r.InA || r.InB || r.ABits != 160 {
		t.Fatalf("beta row %+v", r)
	}
	if r := byName["gamma"]; r.InA || !r.InB || r.BBits != 80 {
		t.Fatalf("gamma row %+v", r)
	}
	if r := byName[DictRow]; r.InA || !r.InB || r.BBits != 40 {
		t.Fatalf("dict row %+v", r)
	}
	var sb strings.Builder
	if err := d.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"alpha", "beta", "gamma", DictRow, "TOTAL", "-15.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff table missing %q:\n%s", want, out)
		}
	}
}

func TestExporters(t *testing.T) {
	em := NewEmitter(testFuncs(), 64)
	em.At(Codeword, 0, 13) // deliberately non-byte-aligned
	em.At(Raw, 16, 35)
	em.Global(Dict, DictRow, 32)
	a := em.Finish("bench", "nibble", 10, 100)
	if err := a.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}

	var tbl strings.Builder
	if err := a.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bench (nibble)", "10 bytes", "of 100 original",
		"alpha", "beta", DictRow, "TOTAL", "1.625"} { // 13 bits = 1.625 bytes, exactly
		if !strings.Contains(tbl.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, tbl.String())
		}
	}

	var csvb strings.Builder
	if err := a.WriteCSV(&csvb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvb.String()), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("csv has %d lines:\n%s", len(lines), csvb.String())
	}
	if !strings.HasPrefix(lines[0], "name,encoding,function,codeword_bits") {
		t.Fatalf("csv header: %s", lines[0])
	}

	var fold strings.Builder
	if err := a.WriteFolded(&fold); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bench;alpha;codeword 13", "bench;beta;raw 35",
		"bench;" + DictRow + ";dictionary 32"} {
		if !strings.Contains(fold.String(), want) {
			t.Fatalf("folded missing %q:\n%s", want, fold.String())
		}
	}
}

func TestBytesStrExact(t *testing.T) {
	cases := map[int64]string{0: "0", 8: "1", 16: "2", 4: "0.5", 13: "1.625", 12345 * 8: "12345"}
	for bits, want := range cases {
		if got := bytesStr(bits); got != want {
			t.Errorf("bytesStr(%d) = %q, want %q", bits, got, want)
		}
	}
}

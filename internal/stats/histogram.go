package stats

import "math/bits"

// histBuckets is the number of log2 buckets an accumulator carries:
// bucket 0 holds values <= 0, bucket i (1..64) holds values v with
// bits.Len64(v) == i, i.e. the range [2^(i-1), 2^i - 1].
const histBuckets = 65

// histAcc is the recorder-internal histogram accumulator.
type histAcc struct {
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [histBuckets]int64
}

// bucketIdx maps a value to its log2 bucket.
func bucketIdx(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketBounds returns the inclusive [lo, hi] value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	if i == 64 {
		return lo, int64(^uint64(0) >> 1)
	}
	return lo, int64(1)<<i - 1
}

func (h *histAcc) observe(v int64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketIdx(v)]++
}

// Bucket is one populated log2 bucket of a snapshot histogram, covering
// the inclusive value range [Lo, Hi].
type Bucket struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Histogram is the point-in-time, JSON-serializable form of a
// log2-bucketed value distribution. Quantiles are estimated by linear
// interpolation inside the containing bucket and clamped to the observed
// [Min, Max] — exact for distributions that fit one bucket, within a
// factor of two otherwise.
type Histogram struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`

	// Buckets lists the populated buckets in ascending value order.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean is the average observed value.
func (h Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the buckets.
func (h Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum int64
	for _, b := range h.Buckets {
		if cum+b.Count < rank {
			cum += b.Count
			continue
		}
		// Linear interpolation inside the bucket's value range.
		f := float64(rank-cum) / float64(b.Count)
		v := b.Lo + int64(f*float64(b.Hi-b.Lo))
		return clamp(v, h.Min, h.Max)
	}
	return h.Max
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// snapshot converts the accumulator to its exported form.
func (h *histAcc) snapshot() Histogram {
	out := Histogram{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		out.Buckets = append(out.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
	}
	out.P50 = out.Quantile(0.50)
	out.P90 = out.Quantile(0.90)
	out.P99 = out.Quantile(0.99)
	return out
}

// merge folds a snapshot histogram back into the accumulator (Recorder.
// Merge). Bucket Lo values map bijectively onto accumulator indices, so
// counts fold without loss; Min/Max/Sum merge exactly.
func (h *histAcc) merge(s Histogram) {
	if s.Count == 0 {
		return
	}
	if h.count == 0 || s.Min < h.min {
		h.min = s.Min
	}
	if h.count == 0 || s.Max > h.max {
		h.max = s.Max
	}
	h.count += s.Count
	h.sum += s.Sum
	for _, b := range s.Buckets {
		h.buckets[bucketIdx(b.Lo)] += b.Count
	}
}

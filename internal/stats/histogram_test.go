package stats

import (
	"encoding/json"
	"testing"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New()
	for v := int64(1); v <= 100; v++ {
		r.ObserveValue("h", v)
	}
	h := r.Snapshot().Hist("h")
	if h.Count != 100 || h.Sum != 5050 || h.Min != 1 || h.Max != 100 {
		t.Fatalf("histogram totals: %+v", h)
	}
	// 1..100 spans buckets [1,1], [2,3], ... [64,127]: 7 populated buckets.
	if len(h.Buckets) != 7 {
		t.Fatalf("buckets: %+v", h.Buckets)
	}
	var n int64
	for _, b := range h.Buckets {
		n += b.Count
	}
	if n != 100 {
		t.Fatalf("bucket counts sum to %d", n)
	}
	// Log-bucket quantiles are within a factor of two of the true value.
	if h.P50 < 32 || h.P50 > 64 {
		t.Errorf("p50 = %d, want within [32,64]", h.P50)
	}
	if h.P90 < 64 || h.P90 > 100 {
		t.Errorf("p90 = %d, want within [64,100]", h.P90)
	}
	if h.P99 < h.P90 || h.P99 > 100 {
		t.Errorf("p99 = %d (p90 %d)", h.P99, h.P90)
	}
}

func TestHistogramSingleValueExactQuantiles(t *testing.T) {
	r := New()
	for i := 0; i < 10; i++ {
		r.ObserveValue("h", 7)
	}
	h := r.Snapshot().Hist("h")
	// All mass in one bucket clamped by min==max: quantiles are exact.
	if h.P50 != 7 || h.P90 != 7 || h.P99 != 7 {
		t.Fatalf("quantiles: %+v", h)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	r := New()
	r.ObserveValue("h", 0)
	r.ObserveValue("h", -5)
	r.ObserveValue("h", 3)
	h := r.Snapshot().Hist("h")
	if h.Count != 3 || h.Min != -5 || h.Max != 3 || h.Sum != -2 {
		t.Fatalf("histogram: %+v", h)
	}
}

func TestHistogramMergeEqualsDirect(t *testing.T) {
	direct, a, b := New(), New(), New()
	for v := int64(1); v <= 50; v++ {
		direct.ObserveValue("h", v)
		a.ObserveValue("h", v)
	}
	for v := int64(51); v <= 100; v++ {
		direct.ObserveValue("h", v)
		b.ObserveValue("h", v)
	}
	merged := New()
	merged.Merge(a.Snapshot())
	merged.Merge(b.Snapshot())
	want, got := direct.Snapshot().Hist("h"), merged.Snapshot().Hist("h")
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if string(wj) != string(gj) {
		t.Fatalf("merged %s\nwant   %s", gj, wj)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	r := New()
	r.ObserveValue("lat", 10)
	r.ObserveValue("lat", 1000)
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	h := back.Hist("lat")
	if h.Count != 2 || h.Sum != 1010 || len(h.Buckets) != 2 {
		t.Fatalf("round trip: %+v", h)
	}
}

func TestNilRecorderHistogram(t *testing.T) {
	var r *Recorder
	r.ObserveValue("h", 42) // must not panic
	if s := r.Snapshot(); len(s.Hists) != 0 {
		t.Fatalf("nil recorder hists: %+v", s.Hists)
	}
}

package stats

import (
	"bufio"
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// readRegistry returns the metric names in metrics.txt, in file order.
func readRegistry(t *testing.T) []string {
	t.Helper()
	f, err := os.Open("metrics.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var names []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		names = append(names, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return names
}

// TestMetricsRegistryWellFormed pins the registry's shape: dotted
// lower-case names, sorted, no duplicates. The make lint-metrics gate
// greps source names against this file; a malformed registry would make
// that gate silently vacuous.
func TestMetricsRegistryWellFormed(t *testing.T) {
	names := readRegistry(t)
	if len(names) == 0 {
		t.Fatal("metrics.txt lists no metric names")
	}
	nameRE := regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+)+$`)
	seen := map[string]bool{}
	for _, n := range names {
		if !nameRE.MatchString(n) {
			t.Errorf("metrics.txt: %q is not a dotted lower-case metric name", n)
		}
		if seen[n] {
			t.Errorf("metrics.txt: %q listed twice", n)
		}
		seen[n] = true
	}
	if !sort.StringsAreSorted(names) {
		t.Error("metrics.txt: names are not sorted")
	}
}

package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteOpenMetrics renders a snapshot in the OpenMetrics / Prometheus text
// exposition format, so the experiment engine's counters, phase timers and
// histograms scrape straight into standard tooling:
//
//   - counters become "<name>_total"
//   - phases become a seconds counter "<name>_seconds_total" plus an
//     invocation counter "<name>_invocations_total"
//   - histograms become cumulative "<name>_bucket{le=...}" series with
//     _sum and _count, plus p50/p90/p99 gauges interpolated from the
//     log2 buckets
//
// Metric names are the recorder's dotted keys sanitized to the metric
// charset (dots and other separators map to underscores). Families are
// emitted in sorted name order and series in ascending le order, so output
// is deterministic for any snapshot. The stream ends with "# EOF" per the
// OpenMetrics spec.
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	var b strings.Builder

	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := metricName(k) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k])
	}

	names = names[:0]
	for k := range s.Phases {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		p := s.Phases[k]
		n := metricName(k)
		fmt.Fprintf(&b, "# TYPE %s_seconds_total counter\n%s_seconds_total %g\n",
			n, n, float64(p.Nanos)/1e9)
		fmt.Fprintf(&b, "# TYPE %s_invocations_total counter\n%s_invocations_total %d\n",
			n, n, p.Count)
	}

	names = names[:0]
	for k := range s.Hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Hists[k]
		n := metricName(k)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		var cum int64
		for _, bk := range h.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", n, bk.Hi, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", n, h.Count)
		for _, q := range []struct {
			p string
			v int64
		}{{"p50", h.P50}, {"p90", h.P90}, {"p99", h.P99}} {
			fmt.Fprintf(&b, "# TYPE %s_%s gauge\n%s_%s %d\n", n, q.p, n, q.p, q.v)
		}
	}

	b.WriteString("# EOF\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// metricName sanitizes a recorder key to the metric-name charset
// [a-zA-Z0-9_]; every run of other characters collapses to one underscore.
func metricName(key string) string {
	var b strings.Builder
	pendingSep := false
	for _, r := range key {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && b.Len() > 0)
		if !ok {
			pendingSep = b.Len() > 0
			continue
		}
		if pendingSep {
			b.WriteByte('_')
			pendingSep = false
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "metric"
	}
	return b.String()
}

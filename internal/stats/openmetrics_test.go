package stats

import (
	"strings"
	"testing"
	"time"
)

func TestWriteOpenMetricsGolden(t *testing.T) {
	r := New()
	r.Add("dict.candidates", 42)
	r.Add("machine.steps", 1000)
	r.Observe("core.compress", 1500*time.Millisecond)
	r.Observe("core.compress", 500*time.Millisecond)
	for _, v := range []int64{1, 2, 3, 4, 8, 100} {
		r.ObserveValue("dict.selection_bits", v)
	}

	var sb strings.Builder
	if err := WriteOpenMetrics(&sb, r.Snapshot()); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	const want = `# TYPE dict_candidates_total counter
dict_candidates_total 42
# TYPE machine_steps_total counter
machine_steps_total 1000
# TYPE core_compress_seconds_total counter
core_compress_seconds_total 2
# TYPE core_compress_invocations_total counter
core_compress_invocations_total 2
# TYPE dict_selection_bits histogram
dict_selection_bits_bucket{le="1"} 1
dict_selection_bits_bucket{le="3"} 3
dict_selection_bits_bucket{le="7"} 4
dict_selection_bits_bucket{le="15"} 5
dict_selection_bits_bucket{le="127"} 6
dict_selection_bits_bucket{le="+Inf"} 6
dict_selection_bits_sum 118
dict_selection_bits_count 6
# TYPE dict_selection_bits_p50 gauge
dict_selection_bits_p50 3
# TYPE dict_selection_bits_p90 gauge
dict_selection_bits_p90 15
# TYPE dict_selection_bits_p99 gauge
dict_selection_bits_p99 15
# EOF
`
	if sb.String() != want {
		t.Errorf("output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestWriteOpenMetricsEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteOpenMetrics(&sb, Snapshot{}); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	if sb.String() != "# EOF\n" {
		t.Errorf("empty snapshot output %q", sb.String())
	}
	// A nil recorder's snapshot exports the same way.
	var r *Recorder
	sb.Reset()
	if err := WriteOpenMetrics(&sb, r.Snapshot()); err != nil {
		t.Fatalf("WriteOpenMetrics(nil snapshot): %v", err)
	}
	if sb.String() != "# EOF\n" {
		t.Errorf("nil recorder output %q", sb.String())
	}
}

func TestMetricName(t *testing.T) {
	cases := map[string]string{
		"dict.selection_bits": "dict_selection_bits",
		"machine.steps":       "machine_steps",
		"a..b":                "a_b",
		"9lives":              "lives", // leading digit is not a valid start
		"":                    "metric",
		"...":                 "metric",
		"corpus.rows/sec":     "corpus_rows_sec",
	}
	for in, want := range cases {
		if got := metricName(in); got != want {
			t.Errorf("metricName(%q) = %q, want %q", in, got, want)
		}
	}
}
